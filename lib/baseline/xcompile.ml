open Lh_sql
module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type env_spec = (string * T.t) list

let resolve (spec : env_spec) (c : Ast.col_ref) =
  let hits =
    List.mapi (fun i (alias, table) -> (i, alias, table)) spec
    |> List.filter_map (fun (i, alias, table) ->
           match c.Ast.relation with
           | Some a when not (String.equal a alias) -> None
           | _ -> Option.map (fun col -> (i, col)) (Schema.find table.T.schema c.Ast.column))
  in
  match hits with
  | [ hit ] -> hit
  | [] -> unsupported "unknown column %s" c.Ast.column
  | _ -> unsupported "ambiguous column %s" c.Ast.column

let table_of spec i = snd (List.nth spec i)
let col_dtype spec (i, col) = (Schema.col (table_of spec i).T.schema col).Schema.dtype

let numeric_col spec (i, col) =
  let table = table_of spec i in
  match (table.T.cols.(col), col_dtype spec (i, col)) with
  | T.Fcol a, _ -> fun (env : int array) -> Array.unsafe_get a env.(i)
  | T.Icol _, Dtype.String -> unsupported "string column in numeric position"
  | T.Icol a, _ -> fun env -> float_of_int (Array.unsafe_get a env.(i))

let rec scalar spec e =
  match e with
  | Ast.Col c -> numeric_col spec (resolve spec c)
  | Ast.Int_lit n ->
      let v = float_of_int n in
      fun _ -> v
  | Ast.Float_lit v -> fun _ -> v
  | Ast.Date_lit d ->
      let v = float_of_int d in
      fun _ -> v
  | Ast.String_lit s -> unsupported "string literal %S in numeric position" s
  | Ast.Interval_day _ -> unsupported "unfolded interval"
  | Ast.Param i -> unsupported "unbound parameter $%d" i
  | Ast.Neg a ->
      let fa = scalar spec a in
      fun env -> -.fa env
  | Ast.Add (a, b) ->
      let fa = scalar spec a and fb = scalar spec b in
      fun env -> fa env +. fb env
  | Ast.Sub (a, b) ->
      let fa = scalar spec a and fb = scalar spec b in
      fun env -> fa env -. fb env
  | Ast.Mul (a, b) ->
      let fa = scalar spec a and fb = scalar spec b in
      fun env -> fa env *. fb env
  | Ast.Div (a, b) ->
      let fa = scalar spec a and fb = scalar spec b in
      fun env -> fa env /. fb env
  | Ast.Case_when (p, a, b) ->
      let fp = pred spec p in
      let fa = scalar spec a and fb = scalar spec b in
      fun env -> if fp env then fa env else fb env
  | Ast.Extract_year a -> (
      match a with
      | Ast.Col c ->
          let ((i, col) as rc) = resolve spec c in
          if col_dtype spec rc <> Dtype.Date then unsupported "EXTRACT(YEAR) from non-date";
          let codes = T.icol (table_of spec i) col in
          fun env -> float_of_int (Lh_storage.Date.year codes.(env.(i)))
      | _ -> unsupported "EXTRACT(YEAR) of a computed expression")

and pred spec p =
  match p with
  | Ast.And (a, b) ->
      let fa = pred spec a and fb = pred spec b in
      fun env -> fa env && fb env
  | Ast.Or (a, b) ->
      let fa = pred spec a and fb = pred spec b in
      fun env -> fa env || fb env
  | Ast.Not a ->
      let fa = pred spec a in
      fun env -> not (fa env)
  | Ast.Between (e, lo, hi) ->
      let fe = scalar spec e and flo = scalar spec lo and fhi = scalar spec hi in
      fun env ->
        let v = fe env in
        flo env <= v && v <= fhi env
  | Ast.Like (e, pat) ->
      let get = string_getter spec e in
      fun env -> Ast.like_match ~pattern:pat (get env)
  | Ast.Not_like (e, pat) ->
      let get = string_getter spec e in
      fun env -> not (Ast.like_match ~pattern:pat (get env))
  | Ast.Cmp (op, a, b) ->
      if is_stringy spec a || is_stringy spec b then string_cmp spec op a b
      else
        let fa = scalar spec a and fb = scalar spec b in
        let test =
          match op with
          | Ast.Eq -> ( = )
          | Ast.Ne -> ( <> )
          | Ast.Lt -> ( < )
          | Ast.Le -> ( <= )
          | Ast.Gt -> ( > )
          | Ast.Ge -> ( >= )
        in
        fun env -> test (fa env) (fb env)

and is_stringy spec = function
  | Ast.String_lit _ -> true
  | Ast.Col c -> col_dtype spec (resolve spec c) = Dtype.String
  | _ -> false

and string_getter spec = function
  | Ast.Col c ->
      let ((i, col) as rc) = resolve spec c in
      if col_dtype spec rc <> Dtype.String then unsupported "LIKE on non-string column";
      let table = table_of spec i in
      let codes = T.icol table col in
      fun env -> Lh_storage.Dict.decode table.T.dict codes.(env.(i))
  | _ -> unsupported "LIKE on a computed expression"

and string_cmp spec op a b =
  let eq =
    match op with
    | Ast.Eq -> true
    | Ast.Ne -> false
    | _ -> unsupported "order comparison on strings"
  in
  let code_of = function
    | Ast.Col c ->
        let i, col = resolve spec c in
        let codes = T.icol (table_of spec i) col in
        `Col (fun (env : int array) -> codes.(env.(i)))
    | Ast.String_lit s -> `Lit s
    | _ -> unsupported "string comparison on computed expressions"
  in
  match (code_of a, code_of b) with
  | `Col fa, `Col fb -> fun env -> eq = (fa env = fb env)
  | `Col f, `Lit s | `Lit s, `Col f -> (
      (* Every binding shares the engine dictionary. *)
      let dict = (table_of spec 0).T.dict in
      match Lh_storage.Dict.find dict s with
      | None -> fun _ -> not eq
      | Some code -> fun env -> eq = (f env = code))
  | `Lit s1, `Lit s2 ->
      let v = eq = String.equal s1 s2 in
      fun _ -> v

let code spec e =
  match e with
  | Ast.Col c -> (
      let i, col = resolve spec c in
      match (table_of spec i).T.cols.(col) with
      | T.Icol a -> fun (env : int array) -> a.(env.(i))
      | T.Fcol _ -> unsupported "GROUP BY on a float column")
  | Ast.Extract_year (Ast.Col c) ->
      let ((i, col) as rc) = resolve spec c in
      if col_dtype spec rc <> Dtype.Date then unsupported "EXTRACT(YEAR) from non-date";
      let codes = T.icol (table_of spec i) col in
      fun env -> Lh_storage.Date.year codes.(env.(i))
  | _ -> unsupported "GROUP BY expression must be a column or EXTRACT(YEAR FROM column)"

let code_dtype spec = function
  | Ast.Col c -> col_dtype spec (resolve spec c)
  | Ast.Extract_year _ -> Dtype.Int
  | _ -> unsupported "GROUP BY expression must be a column or EXTRACT(YEAR FROM column)"

let pred_aliases spec p =
  Ast.pred_columns p
  |> List.map (fun c ->
         let i, _ = resolve spec c in
         fst (List.nth spec i))
  |> List.sort_uniq compare
