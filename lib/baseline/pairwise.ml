open Lh_sql
module T = Lh_storage.Table
module Dtype = Lh_storage.Dtype
module Vec = Lh_util.Vec
module Obs = Lh_obs.Obs

(* Telemetry: the baselines report the same phase taxonomy as the main
   engine (plan / build / probe-or-materialize / aggregate) so paper
   comparisons can break a run down side by side. *)
let c_hash_builds = Obs.counter "baseline.hash_builds"
let c_joined = Obs.counter "baseline.rows_joined"

type mode = Pipelined | Materializing

let rec conjuncts = function Ast.And (a, b) -> conjuncts a @ conjuncts b | p -> [ p ]

(* A join step: attach [binding] to the bound prefix by probing a hash on
   [build_cols] (its columns) keyed by [probe] (evaluated on the bound
   environment). *)
type step = {
  binding : int;
  build_cols : int array array;  (* code columns of the new table forming the key *)
  probe_cols : (int * int array) array;  (* (bound binding, code column) per key part *)
  residuals : (int array -> bool) list;  (* predicates decidable once this binds *)
}

type plan = {
  base : int;
  steps : step list;
  base_residuals : (int array -> bool) list;
}

exception Unsupported of string

let key_of_build cols r = Array.map (fun c -> c.(r)) cols
let key_of_probe probes (env : int array) = Array.map (fun (b, c) -> c.(env.(b))) probes

let make_plan spec (q : Ast.query) =
  let n = List.length spec in
  let tables = Array.of_list (List.map snd spec) in
  let preds = match q.Ast.where with None -> [] | Some w -> conjuncts w in
  let alias_index a =
    match List.find_index (fun (al, _) -> String.equal al a) spec with
    | Some i -> i
    | None -> raise (Unsupported "unknown alias")
  in
  (* Split into single-binding filters, equi-joins, and residuals. *)
  let filters = Array.make n [] in
  let joins = ref [] in
  let residuals = ref [] in
  List.iter
    (fun p ->
      match Xcompile.pred_aliases spec p with
      | [ a ] -> filters.(alias_index a) <- p :: filters.(alias_index a)
      | _ -> (
          match p with
          | Ast.Cmp (Ast.Eq, Ast.Col ca, Ast.Col cb) ->
              let ia, cola = Xcompile.resolve spec ca and ib, colb = Xcompile.resolve spec cb in
              joins := (ia, cola, ib, colb) :: !joins
          | _ -> residuals := p :: !residuals))
    preds;
  (* Filtered row ids per binding (selection pushdown in both modes). *)
  let filtered =
    Array.init n (fun i ->
        let table = tables.(i) in
        match filters.(i) with
        | [] -> Array.init table.T.nrows Fun.id
        | ps ->
            let fs = List.map (Xcompile.pred spec) ps in
            let out = Vec.Int.create ~capacity:256 () in
            let env = Array.make n 0 in
            for r = 0 to table.T.nrows - 1 do
              env.(i) <- r;
              if List.for_all (fun f -> f env) fs then Vec.Int.push out r
            done;
            Vec.Int.to_array out)
  in
  (* Left-deep order: probe stream = largest filtered relation; then
     greedily attach the connected relation with the smallest estimated
     fanout (filtered rows per distinct value of its probe key) — the
     Selinger-style heuristic that prefers key-lookup joins. *)
  let base = ref 0 in
  for i = 1 to n - 1 do
    if Array.length filtered.(i) > Array.length filtered.(!base) then base := i
  done;
  let bound = Array.make n false in
  bound.(!base) <- true;
  let steps = ref [] in
  let remaining = ref (List.filter (fun i -> i <> !base) (List.init n Fun.id)) in
  let fanout i =
    (* distinct values of this relation's probe-key tuple over its
       filtered rows, given the currently bound relations *)
    let key_cols =
      List.filter_map
        (fun (ia, ca, ib, cb) ->
          if ia = i && bound.(ib) then Some ca
          else if ib = i && bound.(ia) then Some cb
          else None)
        !joins
    in
    let cols = List.map (fun c -> T.icol tables.(i) c) key_cols in
    let distinct = Hashtbl.create 256 in
    Array.iter
      (fun r -> Hashtbl.replace distinct (List.map (fun col -> col.(r)) cols) ())
      filtered.(i);
    float_of_int (Array.length filtered.(i)) /. float_of_int (max 1 (Hashtbl.length distinct))
  in
  while !remaining <> [] do
    let connected =
      List.filter
        (fun i ->
          List.exists
            (fun (ia, _, ib, _) -> (ia = i && bound.(ib)) || (ib = i && bound.(ia)))
            !joins)
        !remaining
    in
    let next =
      match connected with
      | [] -> raise (Unsupported "Cartesian product")
      | l ->
          let score i = (fanout i, Array.length filtered.(i)) in
          List.fold_left
            (fun best i -> if score i < score best then i else best)
            (List.hd l) (List.tl l)
    in
    let key_pairs =
      List.filter_map
        (fun (ia, ca, ib, cb) ->
          if ia = next && bound.(ib) then Some (ca, (ib, cb))
          else if ib = next && bound.(ia) then Some (cb, (ia, ca))
          else None)
        !joins
    in
    let build_cols = Array.of_list (List.map (fun (c, _) -> T.icol tables.(next) c) key_pairs) in
    let probe_cols =
      Array.of_list (List.map (fun (_, (b, c)) -> (b, T.icol tables.(b) c)) key_pairs)
    in
    bound.(next) <- true;
    (* Residual predicates decidable now. *)
    let ready, later =
      List.partition
        (fun p ->
          List.for_all (fun a -> bound.(alias_index a)) (Xcompile.pred_aliases spec p))
        !residuals
    in
    residuals := later;
    steps :=
      { binding = next; build_cols; probe_cols; residuals = List.map (Xcompile.pred spec) ready }
      :: !steps;
    remaining := List.filter (fun i -> i <> next) !remaining
  done;
  if !residuals <> [] then raise (Unsupported "residual predicate never became decidable");
  ({ base = !base; steps = List.rev !steps; base_residuals = [] }, filtered)

(* Aggregation of the joined stream, shared by both modes. *)
type agg = {
  gb_codes : (int array -> int) list;
  gb_dtypes : Dtype.t list;
  items : Ast.select_item array;
  item_fns : (int array -> float) option array;
  groups : (int list, float array * int array * int ref) Hashtbl.t;
      (* sums/mins/maxs/reach packed: [|sum0..; min0..; max0..; reach0..|],
         counts, total — reach is 1.0 once a non-zero argument was seen *)
  mutable visits : int;  (* joined tuples seen; flushed to a counter at the end *)
}

let make_agg spec (q : Ast.query) =
  {
    gb_codes = List.map (Xcompile.code spec) q.Ast.group_by;
    gb_dtypes = List.map (Xcompile.code_dtype spec) q.Ast.group_by;
    items = Array.of_list q.Ast.select;
    item_fns =
      Array.of_list
        (List.map
           (function
             | Ast.Plain _ | Ast.Aggregate (_, None, _) -> None
             | Ast.Aggregate (_, Some e, _) -> Some (Xcompile.scalar spec e))
           q.Ast.select);
    groups = Hashtbl.create 256;
    visits = 0;
  }

let agg_visit agg env =
  agg.visits <- agg.visits + 1;
  let nitems = Array.length agg.items in
  let key = List.map (fun f -> f env) agg.gb_codes in
  let sums, counts, total =
    match Hashtbl.find_opt agg.groups key with
    | Some g -> g
    | None ->
        let packed = Array.make (4 * nitems) 0.0 in
        for i = 0 to nitems - 1 do
          packed.(nitems + i) <- infinity;
          packed.((2 * nitems) + i) <- neg_infinity
        done;
        let g = (packed, Array.make nitems 0, ref 0) in
        Hashtbl.replace agg.groups key g;
        g
  in
  incr total;
  Array.iteri
    (fun i f ->
      match f with
      | None -> ()
      | Some f ->
          let v = f env in
          sums.(i) <- sums.(i) +. v;
          sums.(Array.length agg.items + i) <- Float.min sums.(Array.length agg.items + i) v;
          sums.((2 * Array.length agg.items) + i) <-
            Float.max sums.((2 * Array.length agg.items) + i) v;
          if v <> 0.0 then sums.((3 * Array.length agg.items) + i) <- 1.0;
          counts.(i) <- counts.(i) + 1)
    agg.item_fns

let agg_rows spec (q : Ast.query) agg =
  Obs.add c_joined agg.visits;
  Obs.span "baseline.aggregate" @@ fun () ->
  let nitems = Array.length agg.items in
  if Hashtbl.length agg.groups = 0 && q.Ast.group_by = [] then begin
    let packed = Array.make (4 * nitems) 0.0 in
    for i = 0 to nitems - 1 do
      packed.(nitems + i) <- infinity;
      packed.((2 * nitems) + i) <- neg_infinity
    done;
    Hashtbl.replace agg.groups [] (packed, Array.make nitems 0, ref 0)
  end;
  let dict = (snd (List.hd spec)).T.dict in
  let decode dtype code =
    match dtype with
    | Dtype.Int -> Dtype.VInt code
    | Dtype.Date -> Dtype.VDate code
    | Dtype.String -> Dtype.VString (Lh_storage.Dict.decode dict code)
    | Dtype.Float -> failwith "Pairwise: float GROUP BY column"
  in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg.groups []
  |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  |> List.map (fun (key, (packed, counts, total)) ->
         List.mapi
           (fun i item ->
             match item with
             | Ast.Plain (e, _) -> (
                 match
                   List.find_index
                     (fun g ->
                       g = e
                       ||
                       (* qualified and unqualified refs to the same column
                          must match; same-named columns of different
                          bindings must not *)
                       match (g, e) with
                       | Ast.Col a, Ast.Col b ->
                           Xcompile.resolve spec a = Xcompile.resolve spec b
                       | _ -> false)
                     q.Ast.group_by
                 with
                 | Some gi -> decode (List.nth agg.gb_dtypes gi) (List.nth key gi)
                 | None -> failwith "Pairwise: SELECT column not in GROUP BY")
             | Ast.Aggregate (Ast.Count, _, _) -> Dtype.VInt !total
             | Ast.Aggregate (Ast.Sum, _, _) -> Dtype.VFloat packed.(i)
             | Ast.Aggregate (Ast.Avg, _, _) ->
                 Dtype.VFloat
                   (if counts.(i) = 0 then 0.0 else packed.(i) /. float_of_int counts.(i))
             | Ast.Aggregate (Ast.Min, _, _) -> Dtype.VFloat packed.(nitems + i)
             | Ast.Aggregate (Ast.Max, _, _) -> Dtype.VFloat packed.((2 * nitems) + i)
             (* Semiring aggregates: same hardcoded semantics as Oracle
                (no dependency on the engine's registry). *)
             | Ast.Aggregate (Ast.Min_plus, Some _, _) -> Dtype.VFloat packed.(nitems + i)
             | Ast.Aggregate (Ast.Min_plus, None, _) ->
                 Dtype.VFloat (if !total > 0 then 0.0 else infinity)
             | Ast.Aggregate (Ast.Reaches, Some _, _) ->
                 Dtype.VInt (if packed.((3 * nitems) + i) <> 0.0 then 1 else 0)
             | Ast.Aggregate (Ast.Reaches, None, _) -> Dtype.VInt (if !total > 0 then 1 else 0)
             | Ast.Aggregate (Ast.Fold "sum_product", Some _, _) -> Dtype.VFloat packed.(i)
             | Ast.Aggregate (Ast.Fold "sum_product", None, _) ->
                 Dtype.VFloat (float_of_int !total)
             | Ast.Aggregate (Ast.Fold ("min" | "min_plus"), Some _, _) ->
                 Dtype.VFloat packed.(nitems + i)
             | Ast.Aggregate (Ast.Fold "min_plus", None, _) ->
                 Dtype.VFloat (if !total > 0 then 0.0 else infinity)
             | Ast.Aggregate (Ast.Fold "max", Some _, _) -> Dtype.VFloat packed.((2 * nitems) + i)
             | Ast.Aggregate (Ast.Fold "bool_or_and", Some _, _) ->
                 Dtype.VInt (if packed.((3 * nitems) + i) <> 0.0 then 1 else 0)
             | Ast.Aggregate (Ast.Fold "bool_or_and", None, _) ->
                 Dtype.VInt (if !total > 0 then 1 else 0)
             | Ast.Aggregate (Ast.Fold name, _, _) ->
                 failwith (Printf.sprintf "Pairwise: unknown semiring %S" name))
           (Array.to_list agg.items))

let query ~lookup ~mode ?(budget = Lh_util.Budget.unlimited) (q : Ast.query) =
  let spec = List.map (fun (tname, alias) -> (alias, lookup tname)) q.Ast.from in
  let n = List.length spec in
  Lh_util.Budget.start budget;
  let agg = make_agg spec q in
  if n = 1 then begin
    (* Pure scan. *)
    let plan_filters =
      match q.Ast.where with
      | None -> fun _ -> true
      | Some w -> Xcompile.pred spec w
    in
    let table = snd (List.hd spec) in
    Obs.span "baseline.scan" (fun () ->
        let env = Array.make 1 0 in
        for r = 0 to table.T.nrows - 1 do
          if r land 4095 = 0 then Lh_util.Budget.check budget;
          env.(0) <- r;
          if plan_filters env then agg_visit agg env
        done);
    agg_rows spec q agg
  end
  else begin
    let plan, filtered = Obs.span "baseline.plan" (fun () -> make_plan spec q) in
    (* Hash tables for every step (build side). *)
    let hashes =
      Obs.span "baseline.build" (fun () ->
          List.map
            (fun step ->
              Obs.incr c_hash_builds;
              let h : (int array, int list) Hashtbl.t =
                Hashtbl.create (max 16 (Array.length filtered.(step.binding)))
              in
              Array.iter
                (fun r ->
                  let key = key_of_build step.build_cols r in
                  Lh_util.Budget.check budget;
                  Hashtbl.replace h key
                    (r :: Option.value (Hashtbl.find_opt h key) ~default:[]))
                filtered.(step.binding);
              (step, h))
            plan.steps)
    in
    match mode with
    | Pipelined ->
        Obs.span "baseline.probe" (fun () ->
            let env = Array.make n 0 in
            let rec probe steps env =
              match steps with
              | [] -> agg_visit agg env
              | (step, h) :: rest ->
                  let key = key_of_probe step.probe_cols env in
                  (match Hashtbl.find_opt h key with
                  | None -> ()
                  | Some rows ->
                      List.iter
                        (fun r ->
                          env.(step.binding) <- r;
                          if List.for_all (fun f -> f env) step.residuals then probe rest env)
                        rows)
            in
            Array.iteri
              (fun i r ->
                if i land 1023 = 0 then Lh_util.Budget.check budget;
                env.(plan.base) <- r;
                probe hashes env)
              filtered.(plan.base));
        agg_rows spec q agg
    | Materializing ->
        (* Operator-at-a-time: materialize the full intermediate after
           every join (the MonetDB-style execution model). *)
        let current =
          Obs.span "baseline.materialize" (fun () ->
              let current =
                ref
                  (Array.map
                     (fun r ->
                       let env = Array.make n 0 in
                       env.(plan.base) <- r;
                       env)
                     filtered.(plan.base))
              in
              List.iter
                (fun (step, h) ->
                  let out = ref [] in
                  let count = ref 0 in
                  Array.iter
                    (fun env ->
                      incr count;
                      if !count land 255 = 0 then Lh_util.Budget.check budget;
                      let key = key_of_probe step.probe_cols env in
                      match Hashtbl.find_opt h key with
                      | None -> ()
                      | Some rows ->
                          List.iter
                            (fun r ->
                              let env' = Array.copy env in
                              env'.(step.binding) <- r;
                              if List.for_all (fun f -> f env') step.residuals then
                                out := env' :: !out)
                            rows)
                    !current;
                  current := Array.of_list (List.rev !out))
                hashes;
              !current)
        in
        Array.iter (fun env -> agg_visit agg env) current;
        agg_rows spec q agg
  end
