open Lh_sql
module T = Lh_storage.Table
module Dtype = Lh_storage.Dtype

let rec conjuncts = function Ast.And (a, b) -> conjuncts a @ conjuncts b | p -> [ p ]

type group_acc = {
  mutable count : int;
  sums : float array;  (* one per aggregate select item *)
  mins : float array;
  maxs : float array;
  reach : bool array;  (* some match had a non-zero argument (REACHES) *)
  counts : int array;  (* per-item COUNT *)
}

let agg_columns (q : Ast.query) =
  List.map (function Ast.Plain (_, n) -> n | Ast.Aggregate (_, _, n) -> n) q.Ast.select

let query ~lookup (q : Ast.query) =
  let spec = List.map (fun (tname, alias) -> (alias, lookup tname)) q.Ast.from in
  let n = List.length spec in
  let preds =
    match q.Ast.where with
    | None -> []
    | Some w ->
        List.map
          (fun p ->
            let aliases = Xcompile.pred_aliases spec p in
            let depth =
              List.fold_left
                (fun acc a ->
                  match List.find_index (fun (al, _) -> String.equal al a) spec with
                  | Some i -> max acc i
                  | None -> acc)
                0 aliases
            in
            (depth, Xcompile.pred spec p))
          (conjuncts w)
  in
  let gb_codes = List.map (Xcompile.code spec) q.Ast.group_by in
  let gb_dtypes = List.map (Xcompile.code_dtype spec) q.Ast.group_by in
  let items = Array.of_list q.Ast.select in
  let nitems = Array.length items in
  let item_fns =
    Array.map
      (function
        | Ast.Plain _ | Ast.Aggregate (_, None, _) -> None
        | Ast.Aggregate (_, Some e, _) -> Some (Xcompile.scalar spec e))
      items
  in
  let groups : (int list, group_acc) Hashtbl.t = Hashtbl.create 64 in
  let env = Array.make (max n 1) 0 in
  let visit () =
    let key = List.map (fun f -> f env) gb_codes in
    let acc =
      match Hashtbl.find_opt groups key with
      | Some a -> a
      | None ->
          let a =
            {
              count = 0;
              sums = Array.make nitems 0.0;
              mins = Array.make nitems infinity;
              maxs = Array.make nitems neg_infinity;
              reach = Array.make nitems false;
              counts = Array.make nitems 0;
            }
          in
          Hashtbl.replace groups key a;
          a
    in
    acc.count <- acc.count + 1;
    Array.iteri
      (fun i f ->
        match f with
        | None -> ()
        | Some f ->
            let v = f env in
            acc.sums.(i) <- acc.sums.(i) +. v;
            acc.mins.(i) <- Float.min acc.mins.(i) v;
            acc.maxs.(i) <- Float.max acc.maxs.(i) v;
            if v <> 0.0 then acc.reach.(i) <- true;
            acc.counts.(i) <- acc.counts.(i) + 1)
      item_fns
  in
  (* Predicates are checked right after the deepest binding they mention
     becomes bound. *)
  let rec walk_checked depth =
    if depth = n then visit ()
    else begin
      let _, table = List.nth spec depth in
      for r = 0 to table.T.nrows - 1 do
        env.(depth) <- r;
        if
          List.for_all
            (fun (d, f) -> if d = depth then f env else true)
            preds
        then walk_checked (depth + 1)
      done
    end
  in
  if n > 0 then walk_checked 0;
  (* Scalar aggregate over an empty input still yields one row. *)
  if Hashtbl.length groups = 0 && q.Ast.group_by = [] then begin
    let a =
      {
        count = 0;
        sums = Array.make nitems 0.0;
        mins = Array.make nitems infinity;
        maxs = Array.make nitems neg_infinity;
        reach = Array.make nitems false;
        counts = Array.make nitems 0;
      }
    in
    Hashtbl.replace groups [] a
  end;
  let gb_sigs =
    List.map
      (fun e ->
        (* signature for matching Plain items to GROUP BY positions *)
        e)
      q.Ast.group_by
  in
  let decode_code dtype code =
    match dtype with
    | Dtype.Int -> Dtype.VInt code
    | Dtype.Date -> Dtype.VDate code
    | Dtype.String -> Dtype.VString (Lh_storage.Dict.decode (snd (List.hd spec)).T.dict code)
    | Dtype.Float -> failwith "Oracle: float GROUP BY column"
  in
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
    |> List.map (fun (key, acc) ->
           List.mapi
             (fun i item ->
               match item with
               | Ast.Plain (e, _) -> (
                   match List.find_index (fun g -> g = e) gb_sigs with
                   | Some gi -> decode_code (List.nth gb_dtypes gi) (List.nth key gi)
                   | None -> (
                       (* The engines also accept a differently-spelled
                          reference to the same column; match structurally
                          on the unqualified column name. *)
                       match
                         List.find_index
                           (fun g ->
                             match (g, e) with
                             | Ast.Col a, Ast.Col b -> String.equal a.Ast.column b.Ast.column
                             | ga, eb -> ga = eb)
                           gb_sigs
                       with
                       | Some gi -> decode_code (List.nth gb_dtypes gi) (List.nth key gi)
                       | None -> failwith "Oracle: SELECT column not in GROUP BY"))
               | Ast.Aggregate (Ast.Count, _, _) -> Dtype.VInt acc.count
               | Ast.Aggregate (Ast.Sum, _, _) -> Dtype.VFloat acc.sums.(i)
               | Ast.Aggregate (Ast.Avg, _, _) ->
                   Dtype.VFloat (if acc.counts.(i) = 0 then 0.0 else acc.sums.(i) /. float_of_int acc.counts.(i))
               | Ast.Aggregate (Ast.Min, _, _) -> Dtype.VFloat acc.mins.(i)
               | Ast.Aggregate (Ast.Max, _, _) -> Dtype.VFloat acc.maxs.(i)
               (* Semiring aggregates, semantics hardcoded (this library
                  deliberately has no dependency on the engine's registry):
                  MIN_PLUS = min over matches (∞ when empty; the [*] form is
                  0 exactly when the group is non-empty), REACHES = 1 iff
                  some match has a non-zero argument. *)
               | Ast.Aggregate (Ast.Min_plus, Some _, _) -> Dtype.VFloat acc.mins.(i)
               | Ast.Aggregate (Ast.Min_plus, None, _) ->
                   Dtype.VFloat (if acc.count > 0 then 0.0 else infinity)
               | Ast.Aggregate (Ast.Reaches, Some _, _) ->
                   Dtype.VInt (if acc.reach.(i) then 1 else 0)
               | Ast.Aggregate (Ast.Reaches, None, _) ->
                   Dtype.VInt (if acc.count > 0 then 1 else 0)
               | Ast.Aggregate (Ast.Fold "sum_product", Some _, _) -> Dtype.VFloat acc.sums.(i)
               | Ast.Aggregate (Ast.Fold "sum_product", None, _) ->
                   Dtype.VFloat (float_of_int acc.count)
               | Ast.Aggregate (Ast.Fold ("min" | "min_plus"), Some _, _) ->
                   Dtype.VFloat acc.mins.(i)
               | Ast.Aggregate (Ast.Fold "min_plus", None, _) ->
                   Dtype.VFloat (if acc.count > 0 then 0.0 else infinity)
               | Ast.Aggregate (Ast.Fold "max", Some _, _) -> Dtype.VFloat acc.maxs.(i)
               | Ast.Aggregate (Ast.Fold "bool_or_and", Some _, _) ->
                   Dtype.VInt (if acc.reach.(i) then 1 else 0)
               | Ast.Aggregate (Ast.Fold "bool_or_and", None, _) ->
                   Dtype.VInt (if acc.count > 0 then 1 else 0)
               | Ast.Aggregate (Ast.Fold name, _, _) ->
                   failwith (Printf.sprintf "Oracle: unknown semiring %S" name))
             (Array.to_list items))
  in
  rows
