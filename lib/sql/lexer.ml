type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | PARAM of int
  | QMARK
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

exception Lex_error of string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        emit (IDENT (String.lowercase_ascii (String.sub input i (!j - i))));
        go !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit input.[!j] do
          incr j
        done;
        if !j < n && input.[!j] = '.' && !j + 1 < n && is_digit input.[!j + 1] then begin
          incr j;
          while !j < n && is_digit input.[!j] do
            incr j
          done;
          emit (FLOAT (float_of_string (String.sub input i (!j - i))))
        end
        else emit (INT (int_of_string (String.sub input i (!j - i))));
        go !j
      end
      else if c = '$' then begin
        let j = ref (i + 1) in
        while !j < n && is_digit input.[!j] do
          incr j
        done;
        if !j = i + 1 then
          raise (Lex_error (Printf.sprintf "expected a parameter number after '$' at offset %d" i));
        emit (PARAM (int_of_string (String.sub input (i + 1) (!j - i - 1))));
        go !j
      end
      else if c = '?' then begin
        emit QMARK;
        go (i + 1)
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then raise (Lex_error "unterminated string literal")
          else if input.[j] = '\'' then
            if j + 1 < n && input.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              str (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf input.[j];
            str (j + 1)
          end
        in
        let j = str (i + 1) in
        emit (STRING (Buffer.contents buf));
        go j
      end
      else begin
        let two = if i + 1 < n then String.sub input i 2 else "" in
        match two with
        | "<>" | "!=" ->
            emit NE;
            go (i + 2)
        | "<=" ->
            emit LE;
            go (i + 2)
        | ">=" ->
            emit GE;
            go (i + 2)
        | "--" ->
            (* line comment *)
            let rec eol j = if j >= n || input.[j] = '\n' then j else eol (j + 1) in
            go (eol i)
        | _ -> (
            let simple t =
              emit t;
              go (i + 1)
            in
            match c with
            | '(' -> simple LPAREN
            | ')' -> simple RPAREN
            | ',' -> simple COMMA
            | '.' -> simple DOT
            | '*' -> simple STAR
            | '+' -> simple PLUS
            | '-' -> simple MINUS
            | '/' -> simple SLASH
            | '=' -> simple EQ
            | '<' -> simple LT
            | '>' -> simple GT
            | ';' -> simple SEMI
            | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C at offset %d" c i)))
      end
  in
  go 0;
  emit EOF;
  Array.of_list (List.rev !tokens)

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | PARAM i -> Printf.sprintf "$%d" i
  | QMARK -> "?"
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | DOT -> "." | STAR -> "*"
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/"
  | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | SEMI -> ";" | EOF -> "<eof>"
