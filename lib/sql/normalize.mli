(** AST normalization for prepared statements and the plan cache.

    [lift_literals] hoists literal constants out of a query into fresh
    positional parameters so that two queries differing only in constants
    normalize to the same AST (and thus share a cached plan);
    [substitute] is its inverse, binding concrete values back in at
    execution time. *)

val literal_of_value : Lh_storage.Dtype.value -> Ast.expr
(** [VInt] → [Int_lit], [VFloat] → [Float_lit], [VString] → [String_lit],
    [VDate] → [Date_lit]. *)

val value_of_literal : Ast.expr -> Lh_storage.Dtype.value option
(** Inverse of {!literal_of_value}; [None] for non-literal expressions. *)

val subst_expr : (int -> Ast.expr) -> Ast.expr -> Ast.expr
(** Replace every [Param i] with [f i], leaving everything else intact. *)

val subst_pred : (int -> Ast.expr) -> Ast.pred -> Ast.pred

val subst_query : (int -> Ast.expr) -> Ast.query -> Ast.query

val substitute : Ast.query -> Lh_storage.Dtype.value list -> Ast.query
(** Bind parameters [$1 .. $n] to the given values (in order). Raises
    [Failure] when the query references a parameter index beyond the
    list. Extra values are ignored. *)

val lift_literals : Ast.query -> Ast.query * Lh_storage.Dtype.value list
(** Hoist literals in filter and aggregate-scalar positions into fresh
    parameters numbered from [max_param q + 1], returning the lifted
    query and the hoisted values in parameter order (so for a
    parameter-free input, [substitute] with that list round-trips).

    Literals whose concrete value (not just type) steers planning are
    deliberately left in place: divisors (right operand of [/]), CASE
    ELSE branches, EXTRACT(YEAR FROM _) subtrees, LIKE patterns, plain
    (non-aggregate) select items, and GROUP BY expressions. *)
