(** SQL tokenizer. Identifiers and keywords are lowercased (SQL is
    case-insensitive); string literal contents are preserved. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | PARAM of int  (** positional parameter [$n], 1-based *)
  | QMARK  (** anonymous positional parameter [?] *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | SEMI
  | EOF

exception Lex_error of string

val tokenize : string -> token array
(** The whole input as tokens, ending with [EOF]. Raises {!Lex_error} on
    unexpected characters or unterminated strings. *)

val token_to_string : token -> string
