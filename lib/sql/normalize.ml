(* AST normalization for the plan cache: hoist literals out of a query so
   that textually different queries sharing one plan shape normalize to the
   same parameterized AST, plus the inverse substitution used at bind time. *)

let literal_of_value : Lh_storage.Dtype.value -> Ast.expr = function
  | Lh_storage.Dtype.VInt i -> Ast.Int_lit i
  | Lh_storage.Dtype.VFloat f -> Ast.Float_lit f
  | Lh_storage.Dtype.VString s -> Ast.String_lit s
  | Lh_storage.Dtype.VDate d -> Ast.Date_lit d

let value_of_literal : Ast.expr -> Lh_storage.Dtype.value option = function
  | Ast.Int_lit i -> Some (Lh_storage.Dtype.VInt i)
  | Ast.Float_lit f -> Some (Lh_storage.Dtype.VFloat f)
  | Ast.String_lit s -> Some (Lh_storage.Dtype.VString s)
  | Ast.Date_lit d -> Some (Lh_storage.Dtype.VDate d)
  | _ -> None

(* --- substitution ------------------------------------------------------- *)

let rec subst_expr f e =
  match e with
  | Ast.Param i -> f i
  | Ast.Col _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.String_lit _ | Ast.Date_lit _
  | Ast.Interval_day _ ->
      e
  | Ast.Neg a -> Ast.Neg (subst_expr f a)
  | Ast.Add (a, b) -> Ast.Add (subst_expr f a, subst_expr f b)
  | Ast.Sub (a, b) -> Ast.Sub (subst_expr f a, subst_expr f b)
  | Ast.Mul (a, b) -> Ast.Mul (subst_expr f a, subst_expr f b)
  | Ast.Div (a, b) -> Ast.Div (subst_expr f a, subst_expr f b)
  | Ast.Case_when (p, a, b) -> Ast.Case_when (subst_pred f p, subst_expr f a, subst_expr f b)
  | Ast.Extract_year a -> Ast.Extract_year (subst_expr f a)

and subst_pred f p =
  match p with
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, subst_expr f a, subst_expr f b)
  | Ast.Between (e, lo, hi) -> Ast.Between (subst_expr f e, subst_expr f lo, subst_expr f hi)
  | Ast.Like (e, pat) -> Ast.Like (subst_expr f e, pat)
  | Ast.Not_like (e, pat) -> Ast.Not_like (subst_expr f e, pat)
  | Ast.And (a, b) -> Ast.And (subst_pred f a, subst_pred f b)
  | Ast.Or (a, b) -> Ast.Or (subst_pred f a, subst_pred f b)
  | Ast.Not q -> Ast.Not (subst_pred f q)

let subst_query f (q : Ast.query) =
  let item = function
    | Ast.Aggregate (a, Some e, alias) -> Ast.Aggregate (a, Some (subst_expr f e), alias)
    | Ast.Aggregate (_, None, _) as it -> it
    | Ast.Plain (e, alias) -> Ast.Plain (subst_expr f e, alias)
  in
  {
    q with
    Ast.select = List.map item q.Ast.select;
    where = Option.map (subst_pred f) q.Ast.where;
    group_by = List.map (subst_expr f) q.Ast.group_by;
  }

let substitute q (params : Lh_storage.Dtype.value list) =
  let vals = Array.of_list params in
  let n = Array.length vals in
  let lookup i =
    if i >= 1 && i <= n then literal_of_value vals.(i - 1)
    else failwith (Printf.sprintf "Normalize.substitute: no value for parameter $%d (have %d)" i n)
  in
  subst_query lookup q

(* --- literal lifting ---------------------------------------------------- *)

(* Positions where a literal's VALUE, not just its shape, decides the plan
   stay verbatim so the parameterized AST plans exactly like the original:
   the right operand of [/] (constant non-zero divisors compile away), the
   ELSE branch of CASE (the multi-relation rule needs ELSE 0), and
   EXTRACT(YEAR FROM _) subtrees (year filters fold to date ranges). *)
let lift_literals (q : Ast.query) =
  let next = ref (Ast.max_param q) in
  let acc = ref [] in
  let fresh v =
    incr next;
    acc := v :: !acc;
    Ast.Param !next
  in
  let rec expr e =
    match value_of_literal e with
    | Some v -> fresh v
    | None -> (
        match e with
        | Ast.Col _ | Ast.Param _ | Ast.Interval_day _ | Ast.Int_lit _ | Ast.Float_lit _
        | Ast.String_lit _ | Ast.Date_lit _ ->
            e
        | Ast.Neg a -> Ast.Neg (expr a)
        | Ast.Add (a, b) -> Ast.Add (expr a, expr b)
        | Ast.Sub (a, b) -> Ast.Sub (expr a, expr b)
        | Ast.Mul (a, b) -> Ast.Mul (expr a, expr b)
        | Ast.Div (a, b) -> Ast.Div (expr a, b)
        | Ast.Case_when (p, a, b) -> Ast.Case_when (pred p, expr a, b)
        | Ast.Extract_year _ -> e)
  and pred p =
    match p with
    | Ast.Cmp (op, a, b) -> Ast.Cmp (op, expr a, expr b)
    | Ast.Between (e, lo, hi) -> Ast.Between (expr e, expr lo, expr hi)
    | Ast.Like (e, pat) -> Ast.Like (expr e, pat)
    | Ast.Not_like (e, pat) -> Ast.Not_like (expr e, pat)
    | Ast.And (a, b) -> Ast.And (pred a, pred b)
    | Ast.Or (a, b) -> Ast.Or (pred a, pred b)
    | Ast.Not a -> Ast.Not (pred a)
  in
  let item = function
    | Ast.Aggregate (a, Some e, alias) -> Ast.Aggregate (a, Some (expr e), alias)
    | Ast.Aggregate (_, None, _) as it -> it
    | Ast.Plain _ as it -> it
  in
  let q' =
    {
      q with
      Ast.select = List.map item q.Ast.select;
      where = Option.map pred q.Ast.where;
    }
  in
  (q', List.rev !acc)
