exception Parse_error of string

(* [anon] numbers the anonymous [?] parameters left to right; [dollar]
   records that an explicit [$n] was seen — the two styles cannot be mixed
   in one statement (the [?]s' positions would be ambiguous). *)
type state = {
  tokens : Lexer.token array;
  mutable pos : int;
  mutable anon : int;
  mutable dollar : bool;
}

let fail msg = raise (Parse_error msg)
let peek st = st.tokens.(st.pos)
let peek2 st = if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else Lexer.EOF
let advance st = st.pos <- st.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else fail (Printf.sprintf "expected %s, found %s" what (Lexer.token_to_string (peek st)))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

(* Keywords are plain identifiers in the token stream. *)
let keyword st kw =
  match peek st with
  | Lexer.IDENT s when String.equal s kw ->
      advance st;
      true
  | _ -> false

let expect_keyword st kw =
  if not (keyword st kw) then
    fail (Printf.sprintf "expected %s, found %s" (String.uppercase_ascii kw)
            (Lexer.token_to_string (peek st)))

let expect_ident st what =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail (Printf.sprintf "expected %s, found %s" what (Lexer.token_to_string t))

let is_keyword s =
  List.mem s
    [ "select"; "from"; "where"; "group"; "by"; "and"; "or"; "not"; "as"; "between"; "like";
      "case"; "when"; "then"; "else"; "end"; "date"; "interval"; "extract" ]

let aggregates =
  [
    ("sum", Ast.Sum);
    ("count", Ast.Count);
    ("avg", Ast.Avg);
    ("min", Ast.Min);
    ("max", Ast.Max);
    ("min_plus", Ast.Min_plus);
    ("reaches", Ast.Reaches);
  ]

let parse_col_ref st =
  let first = expect_ident st "column name" in
  if accept st Lexer.DOT then
    let column = expect_ident st "column name" in
    { Ast.relation = Some first; column }
  else { Ast.relation = None; column = first }

let rec parse_expr_prec st = parse_additive st

and parse_additive st =
  let lhs = parse_multiplicative st in
  let rec loop lhs =
    if accept st Lexer.PLUS then loop (Ast.Add (lhs, parse_multiplicative st))
    else if accept st Lexer.MINUS then loop (Ast.Sub (lhs, parse_multiplicative st))
    else lhs
  in
  loop lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec loop lhs =
    if accept st Lexer.STAR then loop (Ast.Mul (lhs, parse_unary st))
    else if accept st Lexer.SLASH then loop (Ast.Div (lhs, parse_unary st))
    else lhs
  in
  loop lhs

and parse_unary st =
  if accept st Lexer.MINUS then Ast.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Ast.Int_lit i
  | Lexer.FLOAT f ->
      advance st;
      Ast.Float_lit f
  | Lexer.STRING s ->
      advance st;
      Ast.String_lit s
  | Lexer.PARAM i ->
      advance st;
      if st.anon > 0 then fail "cannot mix $n and ? parameters in one statement";
      if i < 1 then fail (Printf.sprintf "parameter $%d: parameters are numbered from $1" i);
      st.dollar <- true;
      Ast.Param i
  | Lexer.QMARK ->
      advance st;
      if st.dollar then fail "cannot mix $n and ? parameters in one statement";
      st.anon <- st.anon + 1;
      Ast.Param st.anon
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr_prec st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.IDENT "date" -> (
      advance st;
      match peek st with
      | Lexer.STRING s ->
          advance st;
          Ast.Date_lit (Lh_storage.Date.of_string s)
      | t -> fail (Printf.sprintf "expected date string, found %s" (Lexer.token_to_string t)))
  | Lexer.IDENT "interval" -> (
      advance st;
      match peek st with
      | Lexer.STRING s ->
          advance st;
          let n =
            match int_of_string_opt (String.trim s) with
            | Some n -> n
            | None -> fail (Printf.sprintf "malformed interval %S" s)
          in
          let unit_ = expect_ident st "interval unit" in
          (match unit_ with
          | "day" | "days" -> Ast.Interval_day n
          | "month" | "months" -> Ast.Interval_day (n * 30)
          | "year" | "years" -> Ast.Interval_day (n * 365)
          | u -> fail (Printf.sprintf "unsupported interval unit %s" u))
      | t -> fail (Printf.sprintf "expected interval string, found %s" (Lexer.token_to_string t)))
  | Lexer.IDENT "case" ->
      advance st;
      expect_keyword st "when";
      let p = parse_pred_prec st in
      expect_keyword st "then";
      let a = parse_expr_prec st in
      expect_keyword st "else";
      let b = parse_expr_prec st in
      expect_keyword st "end";
      Ast.Case_when (p, a, b)
  | Lexer.IDENT "extract" ->
      advance st;
      expect st Lexer.LPAREN "(";
      expect_keyword st "year";
      expect_keyword st "from";
      let e = parse_expr_prec st in
      expect st Lexer.RPAREN ")";
      Ast.Extract_year e
  | Lexer.IDENT name when not (is_keyword name) -> Ast.Col (parse_col_ref st)
  | t -> fail (Printf.sprintf "unexpected token %s in expression" (Lexer.token_to_string t))

and parse_pred_prec st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if keyword st "or" then Ast.Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_pred_atom st in
  if keyword st "and" then Ast.And (lhs, parse_and st) else lhs

and parse_pred_atom st =
  if keyword st "not" then Ast.Not (parse_pred_atom st)
  else if peek st = Lexer.LPAREN then begin
    (* Could open a nested predicate or a parenthesized expression; try the
       predicate first and backtrack (restoring the [?] counter too, so
       anonymous parameters consumed by the failed attempt are renumbered). *)
    let saved = st.pos in
    let saved_anon = st.anon in
    match
      advance st;
      let p = parse_pred_prec st in
      expect st Lexer.RPAREN ")";
      p
    with
    | p -> p
    | exception Parse_error _ ->
        st.pos <- saved;
        st.anon <- saved_anon;
        parse_comparison st
  end
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_expr_prec st in
  if keyword st "between" then begin
    let lo = parse_expr_prec st in
    expect_keyword st "and";
    let hi = parse_expr_prec st in
    Ast.Between (lhs, lo, hi)
  end
  else if keyword st "like" then
    match peek st with
    | Lexer.STRING p ->
        advance st;
        Ast.Like (lhs, p)
    | t -> fail (Printf.sprintf "expected pattern after LIKE, found %s" (Lexer.token_to_string t))
  else if peek st = Lexer.IDENT "not" && peek2 st = Lexer.IDENT "like" then begin
    advance st;
    advance st;
    match peek st with
    | Lexer.STRING p ->
        advance st;
        Ast.Not_like (lhs, p)
    | t -> fail (Printf.sprintf "expected pattern after NOT LIKE, found %s" (Lexer.token_to_string t))
  end
  else
    let op =
      match peek st with
      | Lexer.EQ -> Ast.Eq
      | Lexer.NE -> Ast.Ne
      | Lexer.LT -> Ast.Lt
      | Lexer.LE -> Ast.Le
      | Lexer.GT -> Ast.Gt
      | Lexer.GE -> Ast.Ge
      | t -> fail (Printf.sprintf "expected comparison operator, found %s" (Lexer.token_to_string t))
    in
    advance st;
    let rhs = parse_expr_prec st in
    Ast.Cmp (op, lhs, rhs)

let parse_select_item st idx =
  let parse_agg_arg st =
    if accept st Lexer.STAR then None else Some (Ast.fold_intervals (parse_expr_prec st))
  in
  let item =
    match peek st with
    | Lexer.IDENT name when List.mem_assoc name aggregates && peek2 st = Lexer.LPAREN ->
        let agg = List.assoc name aggregates in
        advance st;
        advance st;
        let arg = parse_agg_arg st in
        expect st Lexer.RPAREN ")";
        `Agg (agg, arg)
    | Lexer.IDENT "agg" when peek2 st = Lexer.LPAREN ->
        (* agg('name', e): fold [e] in the named registered semiring. The
           name must be a string literal — the parser cannot consult the
           registry, so resolution happens at planning time. *)
        advance st;
        advance st;
        let name =
          match peek st with
          | Lexer.STRING s ->
              advance st;
              s
          | t ->
              fail
                (Printf.sprintf "expected a semiring name string in agg(...), found %s"
                   (Lexer.token_to_string t))
        in
        expect st Lexer.COMMA ",";
        let arg = parse_agg_arg st in
        expect st Lexer.RPAREN ")";
        `Agg (Ast.Fold name, arg)
    | _ -> `Plain (Ast.fold_intervals (parse_expr_prec st))
  in
  let alias =
    if keyword st "as" then Some (expect_ident st "alias")
    else
      match peek st with
      | Lexer.IDENT name when not (is_keyword name) ->
          advance st;
          Some name
      | _ -> None
  in
  match (item, alias) with
  | `Agg (a, e), Some alias -> Ast.Aggregate (a, e, alias)
  | `Agg (a, e), None -> Ast.Aggregate (a, e, Printf.sprintf "col%d" idx)
  | `Plain (Ast.Col c), None -> Ast.Plain (Ast.Col c, c.Ast.column)
  | `Plain e, Some alias -> Ast.Plain (e, alias)
  | `Plain e, None -> Ast.Plain (e, Printf.sprintf "col%d" idx)

let parse_from_table st =
  let name = expect_ident st "table name" in
  let alias =
    if keyword st "as" then Some (expect_ident st "table alias")
    else
      match peek st with
      | Lexer.IDENT a when not (is_keyword a) ->
          advance st;
          Some a
      | _ -> None
  in
  (name, Option.value alias ~default:name)

let rec map_pred_exprs f = function
  | Ast.Cmp (op, a, b) -> Ast.Cmp (op, f a, f b)
  | Ast.Between (e, lo, hi) -> Ast.Between (f e, f lo, f hi)
  | Ast.Like (e, p) -> Ast.Like (f e, p)
  | Ast.Not_like (e, p) -> Ast.Not_like (f e, p)
  | Ast.And (a, b) -> Ast.And (map_pred_exprs f a, map_pred_exprs f b)
  | Ast.Or (a, b) -> Ast.Or (map_pred_exprs f a, map_pred_exprs f b)
  | Ast.Not p -> Ast.Not (map_pred_exprs f p)

let parse_query st =
  expect_keyword st "select";
  let rec items idx =
    let item = parse_select_item st idx in
    if accept st Lexer.COMMA then item :: items (idx + 1) else [ item ]
  in
  let select = items 0 in
  expect_keyword st "from";
  let rec tables () =
    let t = parse_from_table st in
    if accept st Lexer.COMMA then t :: tables () else [ t ]
  in
  let from = tables () in
  let where =
    if keyword st "where" then begin
      let p = parse_pred_prec st in
      Some (map_pred_exprs Ast.fold_intervals p)
    end
    else None
  in
  let group_by =
    if keyword st "group" then begin
      expect_keyword st "by";
      let rec cols () =
        let c = Ast.fold_intervals (parse_expr_prec st) in
        if accept st Lexer.COMMA then c :: cols () else [ c ]
      in
      cols ()
    end
    else []
  in
  ignore (accept st Lexer.SEMI);
  if peek st <> Lexer.EOF then
    fail (Printf.sprintf "trailing input at %s" (Lexer.token_to_string (peek st)));
  { Ast.select; from; where; group_by }

let with_state input f =
  let st = { tokens = Lexer.tokenize input; pos = 0; anon = 0; dollar = false } in
  f st

let parse input = with_state input parse_query

let parse_expr input =
  with_state input (fun st ->
      let e = Ast.fold_intervals (parse_expr_prec st) in
      if peek st <> Lexer.EOF then fail "trailing input after expression";
      e)

let parse_pred input =
  with_state input (fun st ->
      let p = parse_pred_prec st in
      if peek st <> Lexer.EOF then fail "trailing input after predicate";
      map_pred_exprs Ast.fold_intervals p)
