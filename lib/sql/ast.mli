(** Abstract syntax for the SQL 2008 subset LevelHeaded accepts (§III):
    single-block SELECT / FROM / WHERE / GROUP BY aggregate-join queries.
    ORDER BY is intentionally absent (the paper's TPC-H runs drop it). *)

type col_ref = { relation : string option; column : string }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Col of col_ref
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Date_lit of int  (** days since epoch; see {!Lh_storage.Date} *)
  | Interval_day of int  (** [INTERVAL 'n' DAY]; folded away before planning *)
  | Param of int
      (** positional parameter [$n] (1-based; [?] is numbered by the
          parser); bound to a literal before execution *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Case_when of pred * expr * expr  (** [CASE WHEN p THEN a ELSE b END] *)
  | Extract_year of expr

and pred =
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr  (** [e BETWEEN lo AND hi], inclusive *)
  | Like of expr * string  (** pattern with [%] and [_] wildcards *)
  | Not_like of expr * string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type agg =
  | Sum
  | Count
  | Avg
  | Min
  | Max
  | Min_plus  (** [MIN_PLUS(e)]: min over matches of [e] in the (min,+) semiring *)
  | Reaches  (** [REACHES(e)]: 1 iff some match has [e <> 0]; (∨,∧) semiring *)
  | Fold of string
      (** [agg('name', e)]: fold [e] in the named registered semiring
          (see {!Levelheaded.Semiring}); resolved at planning time *)

type select_item =
  | Aggregate of agg * expr option * string
      (** [None] expr means COUNT star; the string is the output alias *)
  | Plain of expr * string  (** non-aggregated output (must be grouped) *)

type query = {
  select : select_item list;
  from : (string * string) list;  (** (table name, binding alias) *)
  where : pred option;
  group_by : expr list;  (** columns or EXTRACT(YEAR FROM column) *)
}

val pp_expr : Format.formatter -> expr -> unit
val pp_pred : Format.formatter -> pred -> unit
val pp_query : Format.formatter -> query -> unit

val fold_intervals : expr -> expr
(** Constant-folds date ± interval arithmetic ([Date_lit] ±
    [Interval_day]) into plain [Date_lit]s; raises [Failure] when an
    interval survives in a non-date position. *)

val expr_columns : expr -> col_ref list
val pred_columns : pred -> col_ref list

val expr_params : expr -> int list
val pred_params : pred -> int list

val query_params : query -> int list
(** The distinct parameter indices appearing anywhere in the query,
    sorted ascending. *)

val max_param : query -> int
(** Highest parameter index used; [0] for a parameter-free query. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE semantics: [%] matches any run, [_] any single character. *)
