type col_ref = { relation : string option; column : string }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Col of col_ref
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Date_lit of int
  | Interval_day of int
  | Param of int
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Case_when of pred * expr * expr
  | Extract_year of expr

and pred =
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr
  | Like of expr * string
  | Not_like of expr * string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type agg = Sum | Count | Avg | Min | Max | Min_plus | Reaches | Fold of string

type select_item =
  | Aggregate of agg * expr option * string
  | Plain of expr * string

type query = {
  select : select_item list;
  from : (string * string) list;
  where : pred option;
  group_by : expr list;
}

let cmp_to_string = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pp_col fmt { relation; column } =
  match relation with
  | Some r -> Format.fprintf fmt "%s.%s" r column
  | None -> Format.pp_print_string fmt column

let rec pp_expr fmt = function
  | Col c -> pp_col fmt c
  | Int_lit i -> Format.pp_print_int fmt i
  | Float_lit f -> Format.fprintf fmt "%g" f
  | String_lit s -> Format.fprintf fmt "'%s'" s
  | Date_lit d -> Format.fprintf fmt "date '%s'" (Lh_storage.Date.to_string d)
  | Interval_day n -> Format.fprintf fmt "interval '%d' day" n
  | Param i -> Format.fprintf fmt "$%d" i
  | Neg e -> Format.fprintf fmt "(-%a)" pp_expr e
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp_expr a pp_expr b
  | Case_when (p, a, b) ->
      Format.fprintf fmt "case when %a then %a else %a end" pp_pred p pp_expr a pp_expr b
  | Extract_year e -> Format.fprintf fmt "extract(year from %a)" pp_expr e

and pp_pred fmt = function
  | Cmp (op, a, b) -> Format.fprintf fmt "%a %s %a" pp_expr a (cmp_to_string op) pp_expr b
  | Between (e, lo, hi) ->
      Format.fprintf fmt "%a between %a and %a" pp_expr e pp_expr lo pp_expr hi
  | Like (e, p) -> Format.fprintf fmt "%a like '%s'" pp_expr e p
  | Not_like (e, p) -> Format.fprintf fmt "%a not like '%s'" pp_expr e p
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp_pred a pp_pred b
  | Not p -> Format.fprintf fmt "not (%a)" pp_pred p

let agg_to_string = function
  | Sum -> "sum" | Count -> "count" | Avg -> "avg" | Min -> "min" | Max -> "max"
  | Min_plus -> "min_plus" | Reaches -> "reaches"
  (* Fold prints as the generic registry-dispatch form; see pp_query. *)
  | Fold name -> Printf.sprintf "agg('%s', …)" name

let pp_agg_call fmt a arg =
  match (a, arg) with
  | Fold name, Some e -> Format.fprintf fmt "agg('%s', %a)" name pp_expr e
  | Fold name, None -> Format.fprintf fmt "agg('%s', *)" name
  | _, Some e -> Format.fprintf fmt "%s(%a)" (agg_to_string a) pp_expr e
  | _, None -> Format.fprintf fmt "%s(*)" (agg_to_string a)

let pp_query fmt q =
  Format.fprintf fmt "select ";
  List.iteri
    (fun i item ->
      if i > 0 then Format.fprintf fmt ", ";
      match item with
      | Aggregate (a, arg, alias) ->
          Format.fprintf fmt "%a as %s" (fun fmt () -> pp_agg_call fmt a arg) () alias
      | Plain (e, alias) -> Format.fprintf fmt "%a as %s" pp_expr e alias)
    q.select;
  Format.fprintf fmt " from ";
  List.iteri
    (fun i (t, a) ->
      if i > 0 then Format.fprintf fmt ", ";
      if String.equal t a then Format.pp_print_string fmt t
      else Format.fprintf fmt "%s as %s" t a)
    q.from;
  (match q.where with None -> () | Some p -> Format.fprintf fmt " where %a" pp_pred p);
  match q.group_by with
  | [] -> ()
  | cols ->
      Format.fprintf fmt " group by ";
      List.iteri
        (fun i c ->
          if i > 0 then Format.fprintf fmt ", ";
          pp_expr fmt c)
        cols

(* Normalize to either a pure interval (day count) or an interval-free
   expression, folding date ± interval as we go. *)
let rec norm_intervals e =
  match e with
  | Interval_day n -> `I n
  | Add (a, b) -> (
      match (norm_intervals a, norm_intervals b) with
      | `E (Date_lit d), `I n | `I n, `E (Date_lit d) -> `E (Date_lit (d + n))
      | `I m, `I n -> `I (m + n)
      | `E x, `E y -> `E (Add (x, y))
      | _ -> failwith "Ast.fold_intervals: interval added to a non-date")
  | Sub (a, b) -> (
      match (norm_intervals a, norm_intervals b) with
      | `E (Date_lit d), `I n -> `E (Date_lit (d - n))
      | `I m, `I n -> `I (m - n)
      | `E x, `E y -> `E (Sub (x, y))
      | _ -> failwith "Ast.fold_intervals: interval subtracted from a non-date")
  | Col _ | Int_lit _ | Float_lit _ | String_lit _ | Date_lit _ | Param _ -> `E e
  | Neg a -> `E (Neg (strict a))
  | Mul (a, b) -> `E (Mul (strict a, strict b))
  | Div (a, b) -> `E (Div (strict a, strict b))
  | Case_when (p, a, b) -> `E (Case_when (p, strict a, strict b))
  | Extract_year a -> `E (Extract_year (strict a))

and strict e =
  match norm_intervals e with
  | `E x -> x
  | `I _ -> failwith "Ast.fold_intervals: interval outside date arithmetic"

let fold_intervals = strict

let rec expr_columns = function
  | Col c -> [ c ]
  | Int_lit _ | Float_lit _ | String_lit _ | Date_lit _ | Interval_day _ | Param _ -> []
  | Neg e | Extract_year e -> expr_columns e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> expr_columns a @ expr_columns b
  | Case_when (p, a, b) -> pred_columns p @ expr_columns a @ expr_columns b

and pred_columns = function
  | Cmp (_, a, b) -> expr_columns a @ expr_columns b
  | Between (e, lo, hi) -> expr_columns e @ expr_columns lo @ expr_columns hi
  | Like (e, _) | Not_like (e, _) -> expr_columns e
  | And (a, b) | Or (a, b) -> pred_columns a @ pred_columns b
  | Not p -> pred_columns p

let rec expr_params = function
  | Param i -> [ i ]
  | Col _ | Int_lit _ | Float_lit _ | String_lit _ | Date_lit _ | Interval_day _ -> []
  | Neg e | Extract_year e -> expr_params e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> expr_params a @ expr_params b
  | Case_when (p, a, b) -> pred_params p @ expr_params a @ expr_params b

and pred_params = function
  | Cmp (_, a, b) -> expr_params a @ expr_params b
  | Between (e, lo, hi) -> expr_params e @ expr_params lo @ expr_params hi
  | Like (e, _) | Not_like (e, _) -> expr_params e
  | And (a, b) | Or (a, b) -> pred_params a @ pred_params b
  | Not p -> pred_params p

let query_params q =
  let items =
    List.concat_map
      (function Aggregate (_, Some e, _) | Plain (e, _) -> expr_params e | Aggregate (_, None, _) -> [])
      q.select
  in
  let where = match q.where with Some p -> pred_params p | None -> [] in
  let gb = List.concat_map expr_params q.group_by in
  List.sort_uniq compare (items @ where @ gb)

let max_param q = List.fold_left max 0 (query_params q)

let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* Classic two-pointer LIKE matcher with backtracking on the last '%'. *)
  let rec go pi si star_pi star_si =
    if si >= ns then begin
      let rec only_percent pi = pi >= np || (pattern.[pi] = '%' && only_percent (pi + 1)) in
      only_percent pi
    end
    else if pi < np && pattern.[pi] = '%' then go (pi + 1) si (pi + 1) si
    else if pi < np && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (pi + 1) (si + 1) star_pi star_si
    else if star_pi >= 0 then go star_pi (star_si + 1) star_pi (star_si + 1)
    else false
  in
  go 0 0 (-1) (-1)
