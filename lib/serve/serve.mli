(** Concurrent query service over epoch-pinned snapshots.

    One {!Engine.t} owns ingest (the writer); readers never touch it.
    Every committed catalog state is frozen into an {e epoch} — an
    immutable {!Levelheaded.Engine.snapshot} tagged with the writer's
    generation counter. Sessions query view engines over these snapshots:

    - a query {e pins} the epoch it starts under; ingest that commits
      mid-query publishes a {e new} epoch without disturbing the pinned
      one, so the query observes exactly one catalog state end to end;
    - {!ingest_rows} / {!load_csv} build the next state install-on-success
      on the writer, freeze it, and swap it in atomically — a failed
      ingest (typed error, injected fault) leaves the served epoch
      untouched;
    - a superseded epoch is {e retired} and reclaimed once its pin count
      drops to zero; pinned epochs are never reclaimed.

    Admission control sits on the existing budget machinery: a bounded
    service-wide admission queue and a per-session outstanding cap, both
    rejecting with typed {!error} [Overloaded]; per-query time/memory
    limits come from [Config.budget], cloned per view so concurrent
    queries meter independently. Asynchronous work is scheduled on the
    shared domain pool's job lane ({!Lh_util.Pool.submit}) with one
    round-robin group per session, so no session starves another.

    Knobs: [LH_MAX_SESSIONS] (default 8) and [LH_QUEUE_DEPTH] (default
    32) seed {!create}'s defaults.

    Telemetry: [serve.*] counters, the [serve.queue_wait] histogram, and
    per-session query profiles flowing into the engine's slow-query log
    (install a sink with [?slow_log]). *)

module Engine := Levelheaded.Engine

type t
(** A service: one writer engine, the live epochs, the session table. *)

type session
(** A client session. A session runs one query at a time; concurrency
    comes from many sessions. Sessions are cheap; close them. *)

type error =
  | Overloaded of string
      (** admission rejected: queue full, session cap reached, or too
          many sessions *)
  | Closed of string  (** the service or session has been closed *)
  | Engine_error of Engine.Error.t  (** typed engine failure, passed through *)

exception Error of error

val error_to_string : error -> string

(** {1 Service lifecycle} *)

val create :
  ?config:Levelheaded.Config.t ->
  ?max_sessions:int ->
  ?queue_depth:int ->
  ?session_depth:int ->
  ?slow_log:(Levelheaded.Profile.t -> unit) ->
  ?store:Lh_durable.Store.t ->
  ?checkpoint_every:int ->
  Engine.t ->
  t
(** Wrap a writer engine and freeze its current catalog as the first
    epoch. The caller must stop using the engine directly for queries or
    ingest — the service owns it. [config] (default: the engine's)
    configures the view engines; its [budget] is cloned per view.
    [max_sessions] defaults to [LH_MAX_SESSIONS] (8), [queue_depth] — the
    service-wide cap on admitted-but-unfinished queries — to
    [LH_QUEUE_DEPTH] (32), [session_depth] — outstanding queries per
    session — to 8. [slow_log] receives the {!Levelheaded.Profile.t} of
    every query crossing [Config.slow_log_ms], any session.

    [store] attaches a durable store (see {!Lh_durable.Store}): every
    ingest is then logged to the WAL {e before} it is published, and the
    caller's acknowledgement implies the batch reached the configured
    sync point — restart recovery ({!Lh_durable.Store.open_dir} +
    {!Engine.restore} before [create]) lands on the last acknowledged
    state. [checkpoint_every] (default [LH_CHECKPOINT_EVERY], 0 = never)
    snapshots the whole catalog and resets the WAL every that many
    durable ingests. *)

val close : t -> unit
(** Close every session and refuse new work. Idempotent. In-flight
    queries finish; their sessions then report [Closed]. Closes the
    attached durable store (group-commit remainder fsynced). *)

val shutdown : ?deadline:float -> t -> bool
(** Graceful shutdown: mark the service closed (new sessions and queries
    get [Closed]), wait up to [deadline] seconds (default 5) for
    in-flight queries to drain, then {!close} — which flushes and fsyncs
    the WAL. Returns [false] when the deadline expired with queries
    still in flight (they still finish, but were not waited for).
    Idempotent. *)

val current_epoch : t -> int
(** The epoch new queries pin. Monotone non-decreasing. *)

val epochs : t -> (int * int * bool) list
(** Live (unreclaimed) epochs, newest first, as
    [(id, pins, retired)]. *)

(** {1 Sessions} *)

val open_session : t -> session
(** Raises {!Error} [Overloaded] at [max_sessions], [Closed] after
    {!close}. *)

val close_session : session -> unit
(** Releases the session's pin (if any) and its cached view engines.
    Idempotent. *)

val session_id : session -> int

val pin : session -> int
(** Pin the current epoch explicitly: subsequent queries of this session
    run against it even as ingest publishes newer epochs, and it cannot
    be reclaimed until {!unpin} (or {!close_session}). Returns the epoch
    id. Re-pinning moves the pin to the current epoch. *)

val unpin : session -> unit
(** Drop the explicit pin; subsequent queries pin the then-current epoch
    per query. No-op when not pinned. *)

val pinned_epoch : session -> int option

(** {1 Queries}

    All query entry points return typed results; engine failures arrive
    as [Engine_error] (budget overruns as
    [Engine_error Budget_exceeded]). *)

val query : session -> string -> (Lh_storage.Table.t, error) result
(** Admit, pin (unless {!pin}ned), execute against the pinned epoch's
    snapshot, unpin. Blocks the calling domain for the duration. *)

val query_epoch : session -> string -> (Lh_storage.Table.t * int, error) result
(** {!query} plus the epoch id the query actually ran under — the
    consistency oracle's anchor: re-running the same SQL sequentially
    against that epoch's snapshot must give a bit-identical result. *)

type 'a ticket
(** A pending asynchronous result. *)

val submit : session -> string -> (Lh_storage.Table.t * int, error) result ticket
(** Admission happens now (an [Overloaded]/[Closed] rejection is
    delivered through the ticket immediately); execution happens on the
    shared pool's job lane, fairly interleaved across sessions. *)

val await : 'a ticket -> 'a
(** Block until the submitted query finishes. *)

val poll : 'a ticket -> 'a option
(** Non-blocking {!await}. *)

(** {1 Prepared statements} *)

type prepared

val prepare : session -> string -> (prepared, error) result
(** Parse and plan against the session's current view. The plan is
    re-prepared transparently when a later execution runs under a newer
    epoch (same revalidation discipline as [Engine.prepare]). *)

val exec_prepared :
  prepared -> Lh_storage.Dtype.value list -> (Lh_storage.Table.t * int, error) result
(** Bind and execute under the session's pinned (or current) epoch;
    returns the result and the epoch it ran under. *)

(** {1 Ingest (writers)} *)

val ingest_rows :
  t ->
  name:string ->
  schema:Lh_storage.Schema.t ->
  Lh_storage.Dtype.value list list ->
  (int, error) result
(** Serialized with other writers. Builds the table install-on-success
    on the writer, freezes a new snapshot, publishes it as the new
    current epoch and retires the superseded one (reclaimed when its pin
    count reaches zero). Returns the new epoch id. On error nothing is
    published and the served epoch is unchanged. *)

val load_csv :
  t ->
  name:string ->
  schema:Lh_storage.Schema.t ->
  ?sep:char ->
  string ->
  (int, error) result
(** CSV variant of {!ingest_rows}. *)

(** {1 Introspection} *)

type stats = {
  st_sessions : int;  (** currently open sessions *)
  st_inflight : int;  (** admitted, unfinished queries *)
  st_epochs : int;  (** live (unreclaimed) epochs *)
  st_current : int;  (** current epoch id *)
}

val stats : t -> stats

(** Fault sites (see {!Lh_fault.Fault}): ["serve.admit"] fires on every
    admission decision before any accounting mutates; ["epoch.publish"]
    fires after the writer committed but before the swap — the ingest
    call errors, the served epoch is unchanged, and retrying the ingest
    recovers; ["epoch.retire"] fires before an epoch is reclaimed — the
    triggering caller errors, the epoch merely stays live until the next
    reclaim sweep. All three uphold the crash-only contract: a typed
    error to the one affected caller, every other session unaffected. *)
