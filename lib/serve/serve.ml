(* Concurrent query service over epoch-pinned snapshots. See serve.mli.

   Locking: [lock] guards the epoch table, the session table and the
   admission counters; [w_lock] serializes writers; each session's
   [s_lock] serializes its query execution (a session is a single logical
   caller — concurrency comes from many sessions). Lock order is
   s_lock -> lock and w_lock -> lock; [lock] is a leaf on both chains and
   never held across engine work. *)

module Engine = Levelheaded.Engine
module Config = Levelheaded.Config
module Profile = Levelheaded.Profile
module Obs = Lh_obs.Obs
module Hist = Lh_obs.Hist
module Fault = Lh_fault.Fault
module Pool = Lh_util.Pool
module Timing = Lh_util.Timing
module Store = Lh_durable.Store

let c_sessions = Obs.counter "serve.sessions"
let c_queries = Obs.counter "serve.queries"
let c_admitted = Obs.counter "serve.admitted"
let c_rejected = Obs.counter "serve.rejected"
let c_ingests = Obs.counter "serve.ingests"
let c_published = Obs.counter "epoch.published"
let c_retired = Obs.counter "epoch.retired"
let h_wait = Hist.histogram "serve.queue_wait"

(* Crash-only surface (see the mli's fault-site notes): admit fires
   before admission mutates anything, publish after the writer committed
   but before the swap, retire before an epoch is reclaimed. *)
let fault_admit = Fault.site "serve.admit"
let fault_publish = Fault.site "epoch.publish"
let fault_retire = Fault.site "epoch.retire"

type error =
  | Overloaded of string
  | Closed of string
  | Engine_error of Engine.Error.t

exception Error of error

let error_to_string = function
  | Overloaded m -> Printf.sprintf "overloaded: %s" m
  | Closed m -> Printf.sprintf "closed: %s" m
  | Engine_error e -> Engine.Error.to_string e

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Serve.Error: %s" (error_to_string e))
    | _ -> None)

(* Every failure a query path can see, folded to the typed surface. The
   service never lets an exception cross a session boundary: an unknown
   exception becomes a [Semantic] error rather than killing a worker. *)
let error_of_exn = function
  | Error e -> e
  | Engine.Error e -> Engine_error e
  | Fault.Injected site -> Engine_error (Engine.Error.Fault_injected site)
  | Lh_util.Budget.Timed_out | Lh_util.Budget.Out_of_memory_budget ->
      Engine_error Engine.Error.Budget_exceeded
  | exn -> Engine_error (Engine.Error.Semantic (Printexc.to_string exn))

type epoch = {
  e_id : int;
  e_snap : Engine.snapshot;
  mutable e_pins : int;
  mutable e_retired : bool;  (* superseded: reclaim when pins reach 0 *)
  mutable e_reclaimed : bool;
}

type t = {
  mutable writer : Engine.t;  (* mutated only on durable-ingest rollback *)
  w_lock : Mutex.t;
  lock : Mutex.t;
  mutable current : epoch;
  mutable live : epoch list;  (* unreclaimed, newest first *)
  mutable sessions : session list;
  mutable next_session : int;
  mutable inflight : int;  (* admitted, unfinished queries service-wide *)
  mutable closed : bool;
  max_sessions : int;
  queue_depth : int;
  session_depth : int;
  view_cfg : Config.t;
  slow_log : (Profile.t -> unit) option;
  store : Store.t option;  (* durable WAL + checkpoints; None = in-memory *)
  checkpoint_every : int;  (* durable ingests between checkpoints; 0 = never *)
  mutable since_checkpoint : int;
}

and session = {
  s_id : int;
  s_svc : t;
  s_lock : Mutex.t;
  mutable s_views : (int * Engine.t) list;  (* epoch id -> view engine *)
  mutable s_pin : epoch option;
  mutable s_outstanding : int;
  mutable s_closed : bool;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> default)
  | None -> default

let epoch_of_snapshot snap =
  {
    e_id = Engine.snapshot_epoch snap;
    e_snap = snap;
    e_pins = 0;
    e_retired = false;
    e_reclaimed = false;
  }

let create ?config ?max_sessions ?queue_depth ?(session_depth = 8) ?slow_log ?store
    ?checkpoint_every writer =
  let view_cfg = Option.value config ~default:(Engine.config writer) in
  let e = epoch_of_snapshot (Engine.snapshot writer) in
  {
    writer;
    w_lock = Mutex.create ();
    lock = Mutex.create ();
    current = e;
    live = [ e ];
    sessions = [];
    next_session = 0;
    inflight = 0;
    closed = false;
    max_sessions =
      (match max_sessions with Some n -> n | None -> env_int "LH_MAX_SESSIONS" 8);
    queue_depth = (match queue_depth with Some n -> n | None -> env_int "LH_QUEUE_DEPTH" 32);
    session_depth;
    view_cfg;
    slow_log;
    store;
    checkpoint_every =
      (match checkpoint_every with
      | Some n -> max 0 n
      | None -> env_int "LH_CHECKPOINT_EVERY" 0);
    since_checkpoint = 0;
  }

(* ------------------------------------------------------------------ *)
(* Epoch lifecycle. All called with [t.lock] held.                     *)

let reclaim_locked t e =
  if e.e_retired && e.e_pins = 0 && not e.e_reclaimed then begin
    Fault.hit fault_retire;
    e.e_reclaimed <- true;
    t.live <- List.filter (fun x -> x != e) t.live;
    Obs.incr c_retired
  end

let sweep_locked t =
  List.iter (fun e -> reclaim_locked t e) (List.filter (fun e -> e.e_retired) t.live)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)

let admit s =
  let t = s.s_svc in
  locked t.lock (fun () ->
      Obs.incr c_queries;
      Fault.hit fault_admit;
      if t.closed then raise (Error (Closed "service"));
      if s.s_closed then raise (Error (Closed "session"));
      if t.inflight >= t.queue_depth then begin
        Obs.incr c_rejected;
        raise (Error (Overloaded (Printf.sprintf "queue depth %d reached" t.queue_depth)))
      end;
      if s.s_outstanding >= t.session_depth then begin
        Obs.incr c_rejected;
        raise
          (Error (Overloaded (Printf.sprintf "session depth %d reached" t.session_depth)))
      end;
      t.inflight <- t.inflight + 1;
      s.s_outstanding <- s.s_outstanding + 1;
      Obs.incr c_admitted)

let try_admit s = match admit s with () -> Ok () | exception exn -> Result.Error (error_of_exn exn)

let release s =
  let t = s.s_svc in
  locked t.lock (fun () ->
      t.inflight <- t.inflight - 1;
      s.s_outstanding <- s.s_outstanding - 1)

(* ------------------------------------------------------------------ *)
(* Query execution                                                     *)

(* The epoch this query runs under, with its own transient pin — taken
   even when the session holds an explicit pin, so an [unpin] racing a
   submitted query can never let the epoch be reclaimed mid-query. *)
let pin_for_query s =
  let t = s.s_svc in
  locked t.lock (fun () ->
      let e = match s.s_pin with Some e -> e | None -> t.current in
      e.e_pins <- e.e_pins + 1;
      e)

(* One view engine per (session, epoch): private plan/trie/dense caches
   with session lifetime, so repeated shapes hit warm plans without any
   cross-session sharing. Called with [s_lock] held. Views of reclaimed
   epochs are pruned as newer ones are created. *)
let view_for s e =
  match List.assoc_opt e.e_id s.s_views with
  | Some v -> v
  | None ->
      let v = Engine.of_snapshot ~config:s.s_svc.view_cfg e.e_snap in
      (match s.s_svc.slow_log with
      | Some sink -> Engine.set_profile_sink v (Some sink)
      | None -> ());
      let live_ids =
        locked s.s_svc.lock (fun () -> List.map (fun e -> e.e_id) s.s_svc.live)
      in
      s.s_views <-
        (e.e_id, v) :: List.filter (fun (id, _) -> List.mem id live_ids) s.s_views;
      v

(* Unpin after a query. A retire fault surfaces to this caller — its
   query may have succeeded, but the crash-only contract only promises a
   typed error to the one affected session; the epoch merely stays live
   until the next sweep. *)
let unpin_after t e result =
  match locked t.lock (fun () ->
            e.e_pins <- e.e_pins - 1;
            reclaim_locked t e)
  with
  | () -> result
  | exception exn -> Result.Error (error_of_exn exn)

(* Core of every read: pin, run on the epoch's view, unpin. Called with
   [s_lock] held; never raises. *)
let query_epoch_locked s sql =
  let t = s.s_svc in
  let e = pin_for_query s in
  let result =
    match
      let v = view_for s e in
      Engine.query_result v sql
    with
    | Ok table -> Ok (table, e.e_id)
    | Result.Error err -> Result.Error (Engine_error err)
    | exception exn -> Result.Error (error_of_exn exn)
  in
  unpin_after t e result

let query_epoch s sql =
  match try_admit s with
  | Result.Error _ as e -> e
  | Ok () ->
      Fun.protect
        ~finally:(fun () -> release s)
        (fun () -> locked s.s_lock (fun () -> query_epoch_locked s sql))

let query s sql = Result.map fst (query_epoch s sql)

(* ------------------------------------------------------------------ *)
(* Asynchronous submission                                             *)

type 'a ticket = { tk_lock : Mutex.t; tk_cond : Condition.t; mutable tk_val : 'a option }

let ticket () = { tk_lock = Mutex.create (); tk_cond = Condition.create (); tk_val = None }

let fill tk v =
  locked tk.tk_lock (fun () ->
      tk.tk_val <- Some v;
      Condition.broadcast tk.tk_cond)

let await tk =
  locked tk.tk_lock (fun () ->
      while tk.tk_val = None do
        Condition.wait tk.tk_cond tk.tk_lock
      done;
      Option.get tk.tk_val)

let poll tk = locked tk.tk_lock (fun () -> tk.tk_val)

let submit s sql =
  let tk = ticket () in
  (match try_admit s with
  | Result.Error _ as e -> fill tk e
  | Ok () ->
      let t0 = Timing.monotonic_now () in
      Pool.submit (Pool.global ()) ~group:s.s_id (fun () ->
          Hist.observe h_wait (Timing.monotonic_now () -. t0);
          let r =
            try locked s.s_lock (fun () -> query_epoch_locked s sql)
            with exn -> Result.Error (error_of_exn exn)
          in
          (try release s with _ -> ());
          fill tk r));
  tk

(* ------------------------------------------------------------------ *)
(* Prepared statements                                                 *)

type prepared = {
  pr_s : session;
  pr_sql : string;
  mutable pr_cache : (int * Engine.stmt) option;  (* epoch id it was planned under *)
}

(* Plan (or re-plan) [p] against epoch [e]'s view. A statement planned
   under an older epoch is silently re-prepared — the service-level
   analogue of Engine's epoch-based statement revalidation. Called with
   [s_lock] held. *)
let stmt_for p e =
  match p.pr_cache with
  | Some (id, st) when id = e.e_id -> st
  | _ ->
      let st = Engine.prepare (view_for p.pr_s e) p.pr_sql in
      p.pr_cache <- Some (e.e_id, st);
      st

let prepare s sql =
  locked s.s_lock (fun () ->
      let t = s.s_svc in
      if locked t.lock (fun () -> t.closed || s.s_closed) then
        Result.Error (Closed "session")
      else begin
        let e = pin_for_query s in
        let p = { pr_s = s; pr_sql = sql; pr_cache = None } in
        let result =
          match stmt_for p e with
          | _ -> Ok p
          | exception exn -> Result.Error (error_of_exn exn)
        in
        unpin_after t e result
      end)

let exec_prepared p params =
  let s = p.pr_s in
  match try_admit s with
  | Result.Error _ as e -> e
  | Ok () ->
      Fun.protect
        ~finally:(fun () -> release s)
        (fun () ->
          locked s.s_lock (fun () ->
              let t = s.s_svc in
              let e = pin_for_query s in
              let result =
                match Engine.Stmt.exec (stmt_for p e) params with
                | table -> Ok (table, e.e_id)
                | exception exn -> Result.Error (error_of_exn exn)
              in
              unpin_after t e result))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)

let open_session t =
  locked t.lock (fun () ->
      if t.closed then raise (Error (Closed "service"));
      if List.length t.sessions >= t.max_sessions then begin
        Obs.incr c_rejected;
        raise (Error (Overloaded (Printf.sprintf "max sessions %d reached" t.max_sessions)))
      end;
      let s =
        {
          s_id = t.next_session;
          s_svc = t;
          s_lock = Mutex.create ();
          s_views = [];
          s_pin = None;
          s_outstanding = 0;
          s_closed = false;
        }
      in
      t.next_session <- t.next_session + 1;
      t.sessions <- s :: t.sessions;
      Obs.incr c_sessions;
      s)

let session_id s = s.s_id

let pin s =
  let t = s.s_svc in
  match
    locked t.lock (fun () ->
        if t.closed || s.s_closed then raise (Error (Closed "session"));
        let old = s.s_pin in
        let e = t.current in
        e.e_pins <- e.e_pins + 1;
        s.s_pin <- Some e;
        (match old with
        | Some oe ->
            oe.e_pins <- oe.e_pins - 1;
            reclaim_locked t oe
        | None -> ());
        e.e_id)
  with
  | id -> id
  | exception
      ((Fault.Injected _ | Lh_util.Budget.Timed_out | Lh_util.Budget.Out_of_memory_budget) as
       exn) ->
      raise (Error (error_of_exn exn))

let unpin s =
  let t = s.s_svc in
  match
    locked t.lock (fun () ->
        match s.s_pin with
        | None -> ()
        | Some e ->
            s.s_pin <- None;
            e.e_pins <- e.e_pins - 1;
            reclaim_locked t e)
  with
  | () -> ()
  | exception
      ((Fault.Injected _ | Lh_util.Budget.Timed_out | Lh_util.Budget.Out_of_memory_budget) as
       exn) ->
      raise (Error (error_of_exn exn))

let pinned_epoch s =
  locked s.s_svc.lock (fun () -> Option.map (fun e -> e.e_id) s.s_pin)

let close_session s =
  let t = s.s_svc in
  locked s.s_lock (fun () ->
      locked t.lock (fun () ->
          if not s.s_closed then begin
            s.s_closed <- true;
            t.sessions <- List.filter (fun x -> x != s) t.sessions;
            match s.s_pin with
            | Some e ->
                s.s_pin <- None;
                e.e_pins <- e.e_pins - 1;
                (* Cleanup path: a retire fault here leaves the epoch to
                   the next sweep rather than failing the close. *)
                (try reclaim_locked t e with
                | Fault.Injected _ | Lh_util.Budget.Timed_out
                | Lh_util.Budget.Out_of_memory_budget ->
                  ())
            | None -> ()
          end);
      s.s_views <- [])

let close t =
  let sessions = locked t.lock (fun () ->
        t.closed <- true;
        t.sessions)
  in
  List.iter close_session sessions;
  locked t.lock (fun () ->
      try sweep_locked t with
      | Fault.Injected _ | Lh_util.Budget.Timed_out | Lh_util.Budget.Out_of_memory_budget -> ());
  (* Release the WAL last: every acknowledged batch is already at its
     sync point, this only forces the group-commit remainder down. *)
  match t.store with Some st -> (try Store.close st with Unix.Unix_error _ -> ()) | None -> ()

(* Graceful shutdown: refuse new work immediately, give in-flight
   queries a bounded drain window, then flush and fsync the WAL. Safe to
   call from a signal handler's main-loop continuation (not from the
   handler itself) and idempotent — a second call finds the service
   closed and inflight already drained. Returns [true] when the drain
   completed inside the deadline. *)
let shutdown ?(deadline = 5.0) t =
  locked t.lock (fun () -> t.closed <- true);
  let t0 = Timing.monotonic_now () in
  let rec drain () =
    if locked t.lock (fun () -> t.inflight) = 0 then true
    else if Timing.monotonic_now () -. t0 >= deadline then false
    else begin
      Unix.sleepf 0.005;
      drain ()
    end
  in
  let drained = drain () in
  close t;
  drained

(* ------------------------------------------------------------------ *)
(* Ingest                                                              *)

(* Durable half of an ingest: append the committed table to the WAL
   (the record has reached the OS — the sync point — when [log_batch]
   returns) and take a periodic checkpoint of the whole catalog. Runs
   between writer commit and publish, so the acknowledgement the caller
   sees is ordered log → publish → ack. *)
let log_durable t (tbl : Lh_storage.Table.t) =
  match t.store with
  | None -> ()
  | Some st ->
      ignore
        (Store.log_batch st ~name:tbl.Lh_storage.Table.name
           ~schema:tbl.Lh_storage.Table.schema (Lh_storage.Table.to_rows tbl));
      t.since_checkpoint <- t.since_checkpoint + 1;
      if t.checkpoint_every > 0 && t.since_checkpoint >= t.checkpoint_every then begin
        Store.checkpoint st (Engine.dump t.writer);
        t.since_checkpoint <- 0
      end

let ingest_with t ingest =
  locked t.w_lock (fun () ->
      if locked t.lock (fun () -> t.closed) then Result.Error (Closed "service")
      else begin
        Obs.incr c_ingests;
        (* With a durable store attached, a failure after the writer
           committed but before the ack must leave no trace in memory:
           the recovered state may legitimately contain the unacked
           batch (it is complete on disk once logged), but the live
           writer rolls back to the published snapshot so a later
           checkpoint cannot leak never-logged state. *)
        let pre = match t.store with None -> None | Some _ -> Some (Engine.snapshot t.writer) in
        let rollback () =
          match pre with
          | Some snap -> t.writer <- Engine.of_snapshot ~config:(Engine.config t.writer) snap
          | None -> ()
        in
        match ingest () with
        | exception exn -> Result.Error (error_of_exn exn)
        | (tbl : Lh_storage.Table.t) -> (
            (* The writer has committed. A fault in the durable log, the
               checkpoint or the publish probe means the new state was
               never acknowledged: the caller gets a typed error, readers
               keep the old epoch, and retrying the ingest (idempotent
               re-register) publishes it. The retry reuses the failed
               attempt's WAL sequence number — safe because Wal.append
               truncates a frame whose sync point failed before the
               error escapes, and replay dedup is last-occurrence-wins
               as a backstop. *)
            match
              log_durable t tbl;
              Fault.hit fault_publish
            with
            | exception exn ->
                rollback ();
                Result.Error (error_of_exn exn)
            | () -> (
                let e = epoch_of_snapshot (Engine.snapshot t.writer) in
                locked t.lock (fun () ->
                    t.current.e_retired <- true;
                    t.current <- e;
                    t.live <- e :: t.live;
                    Obs.incr c_published);
                (* Sweep after the swap so a retire fault cannot
                   unpublish the new epoch. *)
                match locked t.lock (fun () -> sweep_locked t) with
                | () -> Ok e.e_id
                | exception exn -> Result.Error (error_of_exn exn)))
      end)

let ingest_rows t ~name ~schema rows =
  ingest_with t (fun () -> Engine.register_rows t.writer ~name ~schema rows)

let load_csv t ~name ~schema ?sep path =
  ingest_with t (fun () -> Engine.load_csv t.writer ~name ~schema ?sep path)

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let current_epoch t = locked t.lock (fun () -> t.current.e_id)

let epochs t =
  locked t.lock (fun () -> List.map (fun e -> (e.e_id, e.e_pins, e.e_retired)) t.live)

type stats = { st_sessions : int; st_inflight : int; st_epochs : int; st_current : int }

let stats t =
  locked t.lock (fun () ->
      {
        st_sessions = List.length t.sessions;
        st_inflight = t.inflight;
        st_epochs = List.length t.live;
        st_current = t.current.e_id;
      })
