type t = { dict : Lh_storage.Dict.t; tables : (string, Lh_storage.Table.t) Hashtbl.t }

let create () = { dict = Lh_storage.Dict.create (); tables = Hashtbl.create 16 }
let of_dict dict = { dict; tables = Hashtbl.create 16 }
let dict t = t.dict

let register t table =
  if table.Lh_storage.Table.dict != t.dict then
    failwith
      (Printf.sprintf "Catalog.register: table %s uses a foreign dictionary"
         table.Lh_storage.Table.name);
  Hashtbl.replace t.tables table.Lh_storage.Table.name table

let find t name = Hashtbl.find_opt t.tables name

let find_exn t name =
  match find t name with
  | Some table -> table
  | None -> failwith (Printf.sprintf "Catalog: unknown table %S" name)

let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort compare
let tables t = List.map (fun name -> Hashtbl.find t.tables name) (names t)

let load_csv t ~name ~schema ?domains ?sep path =
  let table = Lh_storage.Table.load_csv ~name ~schema ~dict:t.dict ?domains ?sep path in
  register t table;
  table
