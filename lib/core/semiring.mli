(** First-class semirings for the aggregation layer.

    The executor folds every aggregate slot as
    [acc ⊕ (coeff ⊗ f₁ ⊗ … ⊗ fₖ)] over the matches of the join, where
    the [fᵢ] are per-relation owned factors. Instantiating ⊕/⊗ turns the
    single WCOJ walk into SUM/COUNT/AVG/MIN/MAX (BI/LA), shortest paths
    ((min,+)), or reachability ((∨,∧)). See DESIGN.md "Semiring
    execution core". *)

(** What [x ⊕ x ⊕ … ⊕ x] (n copies) is. [Scale f] gives the closed form
    [f x n]; [Idem] collapses n copies to [x]; [Opaque] has no closed
    form and forces the streaming leaf (no count-only kernel, no
    multiplicity shortcut). *)
type card = Scale of (float -> float -> float) | Idem | Opaque

(** How an SQL expression under the aggregate splits into per-relation
    factors: [Dtimes] = ⊕ over +/-, ⊗ over × (the (+,×) path); [Dplus] =
    ⊗ over +/- (the (min,+) path); [Dbool] = single-alias 0/1 indicator;
    [Dsingle] = single-alias argument taken verbatim (MIN/MAX). *)
type decomp = Dtimes | Dplus | Dbool | Dsingle

type t = {
  name : string;
  zero : float;  (** ⊕ identity; the value of an empty fold *)
  one : float;  (** ⊗ identity; default slot coefficient *)
  add : float -> float -> float;  (** ⊕ *)
  mul : float -> float -> float;  (** ⊗ *)
  card : card;
  decomp : decomp;
}

val sum_product : t
(** (+,×): SUM / COUNT / AVG and the BLAS-dispatched LA path. *)

val min_times : t
(** (min,×), single-alias: the MIN aggregate. *)

val max_times : t
(** (max,×), single-alias: the MAX aggregate. *)

val min_plus : t
(** (min,+): shortest paths; the [MIN_PLUS(...)] aggregate. *)

val bool_or_and : t
(** Boolean (∨,∧) on 0/1 floats: reachability; [REACHES(...)]. *)

val register : t -> unit
(** Add a semiring to the global registry, selectable per query as
    [agg('name', expr)]. Raises [Invalid_argument] on a duplicate name. *)

val find : string -> t option
val names : unit -> string list

val scalable : t -> bool
(** Count-only-leaf soundness: true iff ⊕-folding n copies of a value
    has a closed form ([Scale]) or is idempotent ([Idem]). *)

val is_sum_product : t -> bool
val as_bool : float -> bool
