module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Trie = Lh_storage.Trie
module Set_ = Lh_set.Set
module Intersect = Lh_set.Intersect
module Vec = Lh_util.Vec
module Obs = Lh_obs.Obs
open Lh_sql

(* Telemetry probes (lib/obs). Registration is module-init-time; every
   probe below is a no-op branch while telemetry is disabled, and the
   per-tuple loops only touch plain [ctx] fields that are flushed into
   the atomic counters once per bag execution. *)
let c_cache_hit = Obs.counter "trie_cache.hit"
let c_cache_miss = Obs.counter "trie_cache.miss"
let c_trie_built = Obs.counter "trie.built"
let c_isect = Obs.counter "wcoj.intersections"
let c_ticks = Obs.counter "wcoj.leaf_ticks"
let c_budget_ticks = Obs.counter "budget.ticks"
let c_scan_rows = Obs.counter "scan.rows_scanned"
let c_count_only = Obs.counter "set.count_only"
let c_buffer_reuse = Obs.counter "set.buffer_reuse"
let g_domains = Obs.gauge "exec.domains_used"
let g_peak_words = Obs.gauge "gc.peak_live_words"
let h_trie_build = Lh_obs.Hist.histogram "phase.trie_build"

(* Probed unmasked (one atomic load when disarmed): fuzzer-scale queries
   produce far fewer than 1024 leaf ticks, so hanging the probe off the
   budget mask would leave the site unreachable exactly where the
   crashtest harness needs it. *)
let fault_leaf = Lh_fault.Fault.site "exec.wcoj.leaf"
let fault_scan = Lh_fault.Fault.site "exec.scan.row"

(* Fired once per count-only leaf invocation, before the count kernel
   runs — the crashtest drives a pinned count-mode query into it. *)
let fault_count = Lh_fault.Fault.site "exec.wcoj.count"

(* Fired once per leaf ⊕-fold into the group accumulator (hash, sorted or
   sparse path alike) — the semiring fold is the one place every
   aggregate value passes through, so arming it interrupts any
   aggregating query mid-fold. *)
let fault_fold = Lh_fault.Fault.site "exec.semiring.fold"

(* ------------------------------------------------------------------ *)
(* Physical planning                                                    *)

(* The kernel disposition resolved for one plan node: cached on the pnode
   (and therefore in the engine's plan cache, invalidated by its epoch
   machinery, which rebuilds pnodes on revalidation) and re-validated per
   execution against a cheap signature of the bound tries — bind-time
   filters can change trie statistics under the same plan. *)
type kernel_cache = { k_sig : string; k_mode : Compile.Leaf.mode }

type pnode = {
  pbag : Ghd.bag;
  porder : int list;
  prelaxed : bool;
  pmaterialized : int list;
  pchildren : pnode list;
  pcost : float;
  mutable pkernel : kernel_cache option;
}

let rec min_card (lq : Logical.t) (bag : Ghd.bag) =
  let own =
    List.fold_left
      (fun acc e -> min acc lq.Logical.edges.(e).Logical.table.T.nrows)
      max_int bag.Ghd.bag_edges
  in
  List.fold_left (fun acc c -> min acc (min_card lq c)) own bag.Ghd.children

let rel_infos (lq : Logical.t) ~dense_of (bag : Ghd.bag) =
  let base =
    List.map
      (fun e ->
        let edge = lq.Logical.edges.(e) in
        {
          Attr_order.rvertices = edge.Logical.vertices;
          rcard = edge.Logical.table.T.nrows;
          reselected = edge.Logical.eq_selected;
          rdense = dense_of edge;
        })
      bag.Ghd.bag_edges
  in
  let derived =
    List.map
      (fun (c : Ghd.bag) ->
        {
          Attr_order.rvertices = c.Ghd.interface;
          rcard = min_card lq c;
          reselected = false;
          rdense = false;
        })
      bag.Ghd.children
  in
  base @ derived

let physical (cfg : Config.t) (lq : Logical.t) ~dense_of (ghd : Ghd.t) =
  (* Weights come from all base relations of the query (§V-B, Ex. 5.3). *)
  let weights =
    Attr_order.vertex_weights
      (Array.to_list lq.Logical.edges
      |> List.map (fun (e : Logical.edge) ->
             {
               Attr_order.rvertices = e.Logical.vertices;
               rcard = e.Logical.table.T.nrows;
               reselected = e.Logical.eq_selected;
               rdense = dense_of e;
             }))
  in
  let group_keys =
    Array.to_list lq.Logical.group_by
    |> List.filter_map (function Logical.Group_key v -> Some v | Logical.Group_ann _ -> None)
    |> List.sort_uniq compare
  in
  let global_order = ref [] in
  let rec assign (bag : Ghd.bag) ~materialized =
    let rels = rel_infos lq ~dense_of bag in
    let res =
      Attr_order.choose ~policy:cfg.Config.attr_order ~relax:cfg.Config.relax_materialized_first
        ~rels ~weights ~vertices:bag.Ghd.bag_vertices ~materialized ~global_order:!global_order
    in
    let mats_in_order = List.filter (fun v -> List.mem v materialized) res.Attr_order.order in
    List.iter
      (fun v -> if not (List.mem v !global_order) then global_order := !global_order @ [ v ])
      mats_in_order;
    let children = List.map (fun c -> assign c ~materialized:c.Ghd.interface) bag.Ghd.children in
    {
      pbag = bag;
      porder = res.Attr_order.order;
      prelaxed = res.Attr_order.relaxed;
      pmaterialized = materialized;
      pchildren = children;
      pcost = res.Attr_order.ocost;
      pkernel = None;
    }
  in
  assign ghd.Ghd.root ~materialized:group_keys

(* ------------------------------------------------------------------ *)
(* Relation instances                                                   *)

type row = { gcodes : int array; slots : float array }

type xrel = {
  xtrie : Trie.t;
  xlevels : int list;  (* node positions this relation participates at *)
  xslot : int array;  (* global slot -> local vec index, -1 when not owned *)
  xcode_items : int array;  (* gitem id per local code position *)
}

type gsource = From_pos of int | From_rel of int * int

let table_resolver alias (table : T.t) (c : Ast.col_ref) =
  (match c.Ast.relation with
  | Some a when not (String.equal a alias) ->
      failwith (Printf.sprintf "internal: column %s.%s resolved against %s" a c.Ast.column alias)
  | _ -> ());
  Schema.find_exn table.T.schema c.Ast.column

let filtered_rows (edge : Logical.edge) =
  let n = edge.Logical.table.T.nrows in
  match edge.Logical.filter with
  | None -> Array.init n Fun.id
  | Some p ->
      let keep =
        Compile.pred edge.Logical.table
          ~resolve:(table_resolver edge.Logical.alias edge.Logical.table)
          p
      in
      let out = Vec.Int.create ~capacity:256 () in
      for r = 0 to n - 1 do
        if keep r then Vec.Int.push out r
      done;
      Vec.Int.to_array out

let alias_gitems (lq : Logical.t) alias =
  Array.to_list lq.Logical.group_by
  |> List.mapi (fun i g -> (i, g))
  |> List.filter_map (fun (i, g) ->
         match g with
         | Logical.Group_ann a when String.equal a.alias alias -> Some (i, a.expr)
         | Logical.Group_ann _ | Logical.Group_key _ -> None)

(* Hot-run trie cache (§VI-A measurement protocol: index creation is
   excluded, measurements are hot runs back-to-back).  The key captures
   everything that determines the trie's contents. *)
type trie_cache = (string, Trie.t) Hashtbl.t

let alias_gitems_sig (lq : Logical.t) alias =
  alias_gitems lq alias
  |> List.map (fun (i, e) -> Format.asprintf "%d:%a" i Ast.pp_expr e)
  |> String.concat ";"


let trie_signature (lq : Logical.t) ~order (edge : Logical.edge) =
  (* Key levels identified by their column indices: vertex ids are
     query-local and would collide across different queries. *)
  let levels =
    List.filter (fun v -> List.mem v edge.Logical.vertices) order
    |> List.map (fun v -> List.assoc v edge.Logical.vertex_cols)
  in
  let slots_sig =
    Array.to_list lq.Logical.slots
    |> List.mapi (fun j (s : Logical.slot) ->
           match List.assoc_opt edge.Logical.alias s.Logical.owners with
           | Some e -> Format.asprintf "%d:%s:%a" j s.Logical.sr.Semiring.name Ast.pp_expr e
           | None -> "")
    |> String.concat ";"
  in
  let gitems_sig =
    alias_gitems_sig lq edge.Logical.alias
  in
  Format.asprintf "%s/%d|%s|%s|%s|%s" edge.Logical.table.T.name edge.Logical.table.T.nrows
    (String.concat "," (List.map string_of_int levels))
    (match edge.Logical.filter with Some p -> Format.asprintf "%a" Ast.pp_pred p | None -> "")
    slots_sig gitems_sig

let build_base_xrel ?cache ~domains (lq : Logical.t) ~order (edge : Logical.edge) =
  let table = edge.Logical.table in
  let resolve = table_resolver edge.Logical.alias table in
  let levels_v = List.filter (fun v -> List.mem v edge.Logical.vertices) order in
  let gitems = alias_gitems lq edge.Logical.alias in
  let owned =
    Array.to_list lq.Logical.slots
    |> List.mapi (fun j s -> (j, s))
    |> List.filter_map (fun (j, (s : Logical.slot)) ->
           match List.assoc_opt edge.Logical.alias s.Logical.owners with
           | Some e -> Some (j, s.Logical.sr, e)
           | None -> None)
  in
  let build () =
    Obs.incr c_trie_built;
    Obs.span "trie.build" ~args:[ ("table", table.T.name) ]
      ~record:(Lh_obs.Hist.observe_always h_trie_build)
    @@ fun () ->
    let rows = filtered_rows edge in
    let keys =
      Array.of_list
        (List.map (fun v -> T.icol table (List.assoc v edge.Logical.vertex_cols)) levels_v)
    in
    let group_cols =
      Array.of_list
        (List.map
           (fun (_, expr) ->
             let f = Compile.code table ~resolve expr in
             Array.init table.T.nrows f)
           gitems)
    in
    let aggs =
      Array.of_list
        (List.map
           (fun (_, (sr : Semiring.t), e) -> (sr.Semiring.add, Compile.scalar table ~resolve e))
           owned)
    in
    Trie.build ~domains ~keys ~rows ~group_cols ~aggs ()
  in
  (* One extra entry for the pseudo-multiplicity slot child nodes compute:
     never owned by a base relation, so its factor is the multiplicity. *)
  let xslot = Array.make (Array.length lq.Logical.slots + 1) (-1) in
  List.iteri (fun local (j, _, _) -> xslot.(j) <- local) owned;
  let xtrie =
    (* Only filter-less tries are cached: they are the base indexes the
       §VI-A protocol builds at load time. Selections are query work and
       stay inside the measured run. *)
    match cache with
    | Some cache when edge.Logical.filter = None -> (
        let sig_ = trie_signature lq ~order edge in
        match Hashtbl.find_opt cache sig_ with
        | Some t ->
            Obs.incr c_cache_hit;
            t
        | None ->
            Obs.incr c_cache_miss;
            let t = build () in
            Hashtbl.replace cache sig_ t;
            t)
    | _ -> build ()
  in
  let positions =
    List.filteri (fun _ _ -> true) (List.mapi (fun i v -> (i, v)) order)
    |> List.filter_map (fun (i, v) -> if List.mem v levels_v then Some i else None)
  in
  { xtrie; xlevels = positions; xslot; xcode_items = Array.of_list (List.map fst gitems) }

(* ------------------------------------------------------------------ *)
(* WCOJ execution over one bag                                          *)

type bag_input = {
  rels : xrel array;
  npos : int;
  nslots_x : int;  (* includes the pseudo-multiplicity slot on child nodes *)
  srs_x : Semiring.t array;
  coeffs_x : float array;
  (* Per-slot semiring operations, pre-extracted so the hot loops never
     chase the record. *)
  adds_x : (float -> float -> float) array;  (* ⊕ *)
  muls_x : (float -> float -> float) array;  (* ⊗ *)
  zeros_x : float array;  (* ⊕ identity *)
  scales_x : (float -> float -> float) option array;
      (* Some f: the Scale cardinality law (⊕ⁿx = f x n); None: Idem or
         Opaque — see opaque_x *)
  opaque_x : bool array;  (* Opaque: ⊕ⁿx folded by literal repetition *)
  gb : gsource array;
  boundary : int option;  (* Some m: sorted-emit path with group prefix of length m *)
  spa_bound : int;  (* >=0 only for the relaxed sorted path *)
  relaxed_tail : bool;
  kmode : Compile.Leaf.mode;  (* innermost-position kernel disposition *)
}

(* The groups array every unit-leaf relation holds at every leaf value: the
   count-only path installs this shared instance instead of ranking into
   the trie per match. *)
let unit_groups = [| { Trie.codes = [||]; vec = [||]; mult = 1.0 } |]

(* Per-execution signature of everything the leaf disposition reads from
   the bound tries: the sorted-emit shape and, for each relation ending at
   the innermost position, whether its leaves are unit groups. Bind-time
   filters rebuild tries, so the pnode's cached disposition is checked
   against this string each execution. *)
let kernel_signature (rels : xrel array) ~npos ~boundary ~relaxed_tail =
  let b = Buffer.create (Array.length rels + 8) in
  Buffer.add_string b (match boundary with None -> "h" | Some m -> string_of_int m);
  Buffer.add_char b (if relaxed_tail then 'r' else '.');
  Array.iter
    (fun (r : xrel) ->
      let ends_last =
        match List.rev r.xlevels with last :: _ -> last = npos - 1 | [] -> false
      in
      Buffer.add_char b
        (if not ends_last then '-' else if r.xtrie.Trie.leaf_unit then 'u' else 'x'))
    rels;
  Buffer.contents b

(* Resolve the innermost-position kernel disposition for one plan node,
   going through the pnode's cache (same signature -> pinned closure set).
   Generic (specialization off) bypasses the cache: the toggle is
   execution-time and must not leak into cached plans. *)
let resolve_kmode (cfg : Config.t) (node : pnode) (rels : xrel array) ~npos ~srs ~gb ~boundary
    ~relaxed_tail =
  if (not cfg.Config.leaf_specialization) || npos = 0 then Compile.Leaf.Generic
  else begin
    let sig_ = kernel_signature rels ~npos ~boundary ~relaxed_tail in
    match node.pkernel with
    | Some k when String.equal k.k_sig sig_ -> k.k_mode
    | _ ->
        let leaf_unit =
          Array.for_all
            (fun (r : xrel) ->
              match List.rev r.xlevels with
              | last :: _ when last = npos - 1 -> r.xtrie.Trie.leaf_unit
              | _ -> true)
            rels
        in
        (* Count-only soundness per semiring: every slot must absorb the
           factor n either by closed form (Scale) or idempotence. *)
        let scalable = Array.for_all Semiring.scalable srs in
        let group_uses_last =
          Array.exists (function From_pos p -> p = npos - 1 | From_rel _ -> false) gb
        in
        let mode =
          Compile.Leaf.mode ~leaf_unit ~scalable ~relaxed_tail ~boundary ~group_uses_last ~npos
        in
        node.pkernel <- Some { k_sig = sig_; k_mode = mode };
        mode
  end

(* Per-domain mutable execution state. *)
type ctx = {
  stacks : Trie.node array array;
  cur_groups : Trie.group array array;
  vals : int array;
  picked : Trie.group array;
  scratch : float array;
  mutable ticks : int;
  mutable isects : int;  (* set intersections performed (2+ participants) *)
  (* specialized-kernel state *)
  ibufs : Vec.Int.t array;  (* per-position reusable intersection buffer *)
  itmps : Vec.Int.t array;  (* ping-pong partner for n-ary intersections *)
  ibuf_used : bool array;
  mutable count_leaves : int;  (* count-only leaf invocations *)
  mutable breuse : int;  (* buffered intersections that reused a warm buffer *)
  mutable count_n : float;  (* factor the count-only fold scales sum slots by *)
  mutable next_tick_check : int;  (* next ticks value that triggers a budget check *)
  (* hash path *)
  hash : (int array, float array) Hashtbl.t;
  (* sorted path *)
  out : row list ref;
  accum : float array;
  mutable touched : bool;
  (* relaxed sorted path: sparse accumulator over the last position *)
  spa : float array array;  (* slot -> value index -> accumulated *)
  spa_touched : Vec.Int.t;
  spa_in : bool array;
}

let make_ctx (input : bag_input) =
  let nrels = Array.length input.rels in
  {
    stacks =
      Array.map
        (fun (r : xrel) ->
          let st = Array.make (max (List.length r.xlevels) 1) r.xtrie.Trie.root in
          st)
        input.rels;
    cur_groups = Array.make nrels [||];
    vals = Array.make (max input.npos 1) 0;
    picked = Array.make nrels { Trie.codes = [||]; vec = [||]; mult = 1.0 };
    scratch = Array.make (max input.nslots_x 1) 0.0;
    ticks = 0;
    isects = 0;
    ibufs =
      (if input.kmode = Compile.Leaf.Generic then [||]
       else Array.init (max input.npos 1) (fun _ -> Vec.Int.create ()));
    itmps =
      (if input.kmode = Compile.Leaf.Generic then [||]
       else Array.init (max input.npos 1) (fun _ -> Vec.Int.create ()));
    ibuf_used = Array.make (max input.npos 1) false;
    count_leaves = 0;
    breuse = 0;
    count_n = 0.0;
    next_tick_check = 1024;
    hash = Hashtbl.create 256;
    out = ref [];
    accum = Array.make (max input.nslots_x 1) 0.0;
    touched = false;
    spa =
      (if input.spa_bound >= 0 then
         Array.init input.nslots_x (fun _ -> Array.make (input.spa_bound + 1) 0.0)
       else [||]);
    spa_touched = Vec.Int.create ();
    spa_in = (if input.spa_bound >= 0 then Array.make (input.spa_bound + 1) false else [||]);
  }

let exec_bag (cfg : Config.t) (input : bag_input) : row list =
  let nrels = Array.length input.rels in
  let npos = input.npos in
  let nslots = input.nslots_x in
  (* Participation tables: which relations take part at each position, at
     which of their trie levels, and whether it is their last level. *)
  let parts = Array.make (max npos 1) [||] in
  let plevel = Array.make (max npos 1) [||] in
  let plast = Array.make (max npos 1) [||] in
  for pos = 0 to npos - 1 do
    let here = ref [] in
    Array.iteri
      (fun ri (r : xrel) ->
        match List.find_index (( = ) pos) r.xlevels with
        | Some l -> here := (ri, l, l = List.length r.xlevels - 1) :: !here
        | None -> ())
      input.rels;
    let here = List.rev !here in
    parts.(pos) <- Array.of_list (List.map (fun (r, _, _) -> r) here);
    plevel.(pos) <- Array.of_list (List.map (fun (_, l, _) -> l) here);
    plast.(pos) <- Array.of_list (List.map (fun (_, _, last) -> last) here)
  done;
  let budget = cfg.Config.budget in

  (* --- leaf combinators ------------------------------------------- *)
  let emit_combo ctx fold =
    for j = 0 to nslots - 1 do
      let p = ref input.coeffs_x.(j) in
      let reps = ref 1.0 in
      for ri = 0 to nrels - 1 do
        let g = ctx.picked.(ri) in
        let local = input.rels.(ri).xslot.(j) in
        if local >= 0 then p := input.muls_x.(j) !p g.Trie.vec.(local)
        else
          (* Non-owner relation: its [mult] collapsed key tuples each
             contribute this combo once, i.e. the slot value repeats. The
             cardinality law absorbs the repetition: Scale has the closed
             form, Idem ignores it, Opaque accumulates the repeat count
             and ⊕-folds literally below. *)
          match input.scales_x.(j) with
          | Some f -> p := f !p g.Trie.mult
          | None -> if input.opaque_x.(j) then reps := !reps *. g.Trie.mult
      done;
      if input.opaque_x.(j) && !reps > 1.0 then begin
        (* ⊕ⁿx by literal repetition (x ⊕ … ⊕ x associates freely, so
           pre-folding into the scratch value is exact). Opaque semirings
           require integer multiplicities — base tables always have them;
           builtins are never Opaque. *)
        let n = max 1 (int_of_float (Float.round !reps)) in
        let x = !p in
        for _ = 2 to n do
          p := input.adds_x.(j) !p x
        done
      end;
      ctx.scratch.(j) <- !p
    done;
    fold ctx
  in
  let rec combos ctx ri fold =
    if ri = nrels then emit_combo ctx fold
    else
      let gs = ctx.cur_groups.(ri) in
      for gi = 0 to Array.length gs - 1 do
        ctx.picked.(ri) <- gs.(gi);
        combos ctx (ri + 1) fold
      done
  in
  let leaf ctx fold =
    Lh_fault.Fault.hit fault_leaf;
    ctx.ticks <- ctx.ticks + 1;
    if ctx.ticks land 1023 = 0 then begin
      Obs.incr c_budget_ticks;
      Lh_util.Budget.check budget
    end;
    (* Overwhelmingly common case: one leaf group per relation (no GROUP
       BY annotations on duplicate keys) — skip the combination search. *)
    let rec all_single ri =
      if ri = nrels then true
      else
        let gs = ctx.cur_groups.(ri) in
        if Array.length gs = 1 then begin
          ctx.picked.(ri) <- Array.unsafe_get gs 0;
          all_single (ri + 1)
        end
        else false
    in
    if all_single 0 then emit_combo ctx fold else combos ctx 0 fold
  in

  let build_key ctx =
    Array.map
      (function
        | From_pos p -> ctx.vals.(p)
        | From_rel (ri, cp) -> ctx.picked.(ri).Trie.codes.(cp))
      input.gb
  in

  (* fold functions per path *)
  let fold_hash ctx =
    let key = build_key ctx in
    match Hashtbl.find_opt ctx.hash key with
    | Some acc ->
        for j = 0 to nslots - 1 do
          acc.(j) <- input.adds_x.(j) acc.(j) ctx.scratch.(j)
        done
    | None -> Hashtbl.replace ctx.hash key (Array.copy ctx.scratch)
  in
  let fold_sorted ctx =
    ctx.touched <- true;
    for j = 0 to nslots - 1 do
      ctx.accum.(j) <- input.adds_x.(j) ctx.accum.(j) ctx.scratch.(j)
    done
  in
  let fold_spa ctx =
    let v = ctx.vals.(npos - 1) in
    if not ctx.spa_in.(v) then begin
      ctx.spa_in.(v) <- true;
      Vec.Int.push ctx.spa_touched v;
      for j = 0 to nslots - 1 do
        ctx.spa.(j).(v) <- input.zeros_x.(j)
      done
    end;
    for j = 0 to nslots - 1 do
      ctx.spa.(j).(v) <- input.adds_x.(j) ctx.spa.(j).(v) ctx.scratch.(j)
    done
  in

  (* --- descent ------------------------------------------------------ *)
  let advance ctx pos v =
    let rs = parts.(pos) and ls = plevel.(pos) and lasts = plast.(pos) in
    for k = 0 to Array.length rs - 1 do
      let ri = rs.(k) and l = ls.(k) in
      let node = ctx.stacks.(ri).(l) in
      let rank = Set_.rank node.Trie.set v in
      if lasts.(k) then ctx.cur_groups.(ri) <- node.Trie.groups.(rank)
      else ctx.stacks.(ri).(l + 1) <- node.Trie.children.(rank)
    done
  in
  let isect ctx pos =
    let rs = parts.(pos) and ls = plevel.(pos) in
    match Array.length rs with
    | 0 -> assert false
    | 1 -> ctx.stacks.(rs.(0)).(ls.(0)).Trie.set
    | 2 ->
        ctx.isects <- ctx.isects + 1;
        let a = ctx.stacks.(rs.(0)).(ls.(0)).Trie.set in
        let b = ctx.stacks.(rs.(1)).(ls.(1)).Trie.set in
        Intersect.inter a b
    | n ->
        ctx.isects <- ctx.isects + 1;
        let sets = List.init n (fun k -> ctx.stacks.(rs.(k)).(ls.(k)).Trie.set) in
        Intersect.inter_many sets
  in

  let prefix_key ctx m =
    (* Group key for the sorted path: the first m positions, plus the last
       one on the relaxed shape. *)
    if input.relaxed_tail then Array.init (m + 1) (fun i -> if i < m then ctx.vals.(i) else ctx.vals.(npos - 1))
    else Array.init m (fun i -> ctx.vals.(i))
  in

  let fold_for_leaf =
    let fold =
      match (input.boundary, input.relaxed_tail) with
      | None, _ -> fold_hash
      | Some _, false -> fold_sorted
      | Some _, true -> fold_spa
    in
    fun ctx ->
      Lh_fault.Fault.hit fault_fold;
      fold ctx
  in

  (* Count-only fold: the n innermost matches all contribute the same
     combo vector (unit leaf groups), so Scale-law slots take the closed
     form ⊕ⁿx = f x n ((+,×): scale by n) and Idem slots combine once.
     Opaque slots never reach here — Compile.Leaf.mode forces Stream. *)
  let fold_counted ctx =
    let nf = ctx.count_n in
    for j = 0 to nslots - 1 do
      match input.scales_x.(j) with
      | Some f -> ctx.scratch.(j) <- f ctx.scratch.(j) nf
      | None -> ()
    done;
    fold_for_leaf ctx
  in
  (* The count-only leaf: n matches folded in one leaf invocation. Ticks
     advance by n so the budget cadence matches the generic path. *)
  let leaf_counted ctx n =
    Lh_fault.Fault.hit fault_count;
    ctx.count_leaves <- ctx.count_leaves + 1;
    if n > 0 then begin
      ctx.ticks <- ctx.ticks + n;
      if ctx.ticks >= ctx.next_tick_check then begin
        ctx.next_tick_check <- ctx.ticks + 1024;
        Obs.incr c_budget_ticks;
        Lh_util.Budget.check budget
      end;
      ctx.count_n <- float_of_int n;
      let rs = parts.(npos - 1) in
      for k = 0 to Array.length rs - 1 do
        ctx.cur_groups.(rs.(k)) <- unit_groups
      done;
      let rec all_single ri =
        if ri = nrels then true
        else
          let gs = ctx.cur_groups.(ri) in
          if Array.length gs = 1 then begin
            ctx.picked.(ri) <- Array.unsafe_get gs 0;
            all_single (ri + 1)
          end
          else false
      in
      if all_single 0 then emit_combo ctx fold_counted else combos ctx 0 fold_counted
    end
  in
  (* Buffered intersection at [pos] into the position's pinned buffer:
     never allocates after warm-up (Vec clear keeps capacity). *)
  let inter_to_buf ctx pos =
    let buf = ctx.ibufs.(pos) in
    if ctx.ibuf_used.(pos) then ctx.breuse <- ctx.breuse + 1 else ctx.ibuf_used.(pos) <- true;
    ctx.isects <- ctx.isects + 1;
    let rs = parts.(pos) and ls = plevel.(pos) in
    (match Array.length rs with
    | 2 ->
        let a = ctx.stacks.(rs.(0)).(ls.(0)).Trie.set in
        let b = ctx.stacks.(rs.(1)).(ls.(1)).Trie.set in
        Intersect.inter_into buf a b
    | n ->
        let sets = List.init n (fun k -> ctx.stacks.(rs.(k)).(ls.(k)).Trie.set) in
        Intersect.inter_many_into buf ctx.itmps.(pos) sets);
    buf
  in

  let rec walk ctx pos ~wrapped =
    (* The boundary test comes first: when the GROUP BY covers every
       position, the flush must wrap the (empty) suffix at pos = npos. *)
    if (not wrapped) && input.boundary = Some pos then begin
      (* Entering the aggregated suffix: reset accumulators, run the
         subtree, then flush this group's row(s). *)
      (match input.relaxed_tail with
      | false ->
          for j = 0 to nslots - 1 do
            ctx.accum.(j) <- input.zeros_x.(j)
          done;
          ctx.touched <- false;
          walk ctx pos ~wrapped:true;
          (* A scalar aggregate (empty group key) yields its row even when
             nothing matched; grouped output only materializes matched
             groups. *)
          if ctx.touched || pos = 0 then
            ctx.out := { gcodes = prefix_key ctx pos; slots = Array.copy ctx.accum } :: !(ctx.out)
      | true ->
          Vec.Int.clear ctx.spa_touched;
          walk ctx pos ~wrapped:true;
          let touched = Vec.Int.to_array ctx.spa_touched in
          Array.sort compare touched;
          Array.iter
            (fun v ->
              let slots = Array.init nslots (fun j -> ctx.spa.(j).(v)) in
              let gcodes =
                Array.init (pos + 1) (fun i -> if i < pos then ctx.vals.(i) else v)
              in
              ctx.out := { gcodes; slots } :: !(ctx.out);
              ctx.spa_in.(v) <- false)
            touched)
    end
    else if pos = npos then leaf ctx fold_for_leaf
    else if pos = npos - 1 && input.kmode = Compile.Leaf.Count then begin
      (* Count-only innermost position: the intersection cardinality is the
         only thing the leaf needs — never materialize nor iterate it. *)
      let rs = parts.(pos) and ls = plevel.(pos) in
      let n =
        match Array.length rs with
        | 1 -> Set_.cardinality ctx.stacks.(rs.(0)).(ls.(0)).Trie.set
        | 2 ->
            ctx.isects <- ctx.isects + 1;
            let a = ctx.stacks.(rs.(0)).(ls.(0)).Trie.set in
            let b = ctx.stacks.(rs.(1)).(ls.(1)).Trie.set in
            Intersect.count a b
        | _ ->
            let buf = inter_to_buf ctx pos in
            Vec.Int.length buf
      in
      leaf_counted ctx n
    end
    else if Array.length parts.(pos) = 1 then begin
      (* Single participant: its own set is the intersection; iterate with
         the rank in hand instead of searching it back. *)
      let ri = parts.(pos).(0) and l = plevel.(pos).(0) in
      let node = ctx.stacks.(ri).(l) in
      let last = plast.(pos).(0) in
      Set_.iteri
        (fun rank v ->
          ctx.vals.(pos) <- v;
          if last then ctx.cur_groups.(ri) <- Array.unsafe_get node.Trie.groups rank
          else ctx.stacks.(ri).(l + 1) <- Array.unsafe_get node.Trie.children rank;
          walk ctx (pos + 1) ~wrapped:false)
        node.Trie.set
    end
    else if input.kmode <> Compile.Leaf.Generic then begin
      if pos = npos - 1 && Array.length parts.(pos) = 2 then begin
        (* Innermost two-way intersection: stream matches straight into
           leaf aggregation without touching a buffer. *)
        ctx.isects <- ctx.isects + 1;
        let rs = parts.(pos) and ls = plevel.(pos) in
        let a = ctx.stacks.(rs.(0)).(ls.(0)).Trie.set in
        let b = ctx.stacks.(rs.(1)).(ls.(1)).Trie.set in
        Intersect.foreach_inter
          (fun v ->
            ctx.vals.(pos) <- v;
            advance ctx pos v;
            walk ctx (pos + 1) ~wrapped:false)
          a b
      end
      else begin
        (* Interior (or n-ary innermost) position: intersect into the
           position's pinned buffer and iterate the live prefix. *)
        let buf = inter_to_buf ctx pos in
        let arr = Vec.Int.unsafe_inner buf in
        let len = Vec.Int.length buf in
        for i = 0 to len - 1 do
          let v = Array.unsafe_get arr i in
          ctx.vals.(pos) <- v;
          advance ctx pos v;
          walk ctx (pos + 1) ~wrapped:false
        done
      end
    end
    else begin
      let s = isect ctx pos in
      Set_.iter
        (fun v ->
          ctx.vals.(pos) <- v;
          advance ctx pos v;
          walk ctx (pos + 1) ~wrapped:false)
        s
    end
  in

  (* Scalar queries still flush once even when npos = 0-deep boundary and
     the relation set is empty of matches. *)
  let finalize ctx =
    match input.boundary with
    | None ->
        let rows = Hashtbl.fold (fun k v acc -> { gcodes = k; slots = v } :: acc) ctx.hash [] in
        if rows = [] && Array.length input.gb = 0 then
          (* scalar aggregate over an empty match set: one identity row
             (each slot's ⊕ identity: 0 for (+,×), ∞ for (min,+), …),
             same as the sorted-emit pos-0 wrap above *)
          [ { gcodes = [||]; slots = Array.copy input.zeros_x } ]
        else List.sort (fun a b -> compare a.gcodes b.gcodes) rows
    | Some _ -> List.rev !(ctx.out)
  in

  (* boundary = Some 0 with a relaxed tail is NOT a scalar query: the
     group key is the last position's value. It must run sequentially
     (the chunked walk would skip the pos-0 wrap). *)
  let scalar = input.boundary = Some 0 && not input.relaxed_tail in
  let must_be_sequential = input.boundary = Some 0 && input.relaxed_tail in
  let domains = max 1 cfg.Config.domains in
  (* Per-ctx tick/intersection tallies are plain fields; they reach the
     shared atomic counters exactly once per bag, here. *)
  let flush_stats ctx =
    if Obs.is_enabled () then begin
      Obs.add c_ticks ctx.ticks;
      Obs.add c_isect ctx.isects;
      Obs.add c_count_only ctx.count_leaves;
      Obs.add c_buffer_reuse ctx.breuse;
      Obs.set_max g_peak_words (Gc.quick_stat ()).Gc.heap_words
    end
  in
  let merge_stats a b =
    a.ticks <- a.ticks + b.ticks;
    a.isects <- a.isects + b.isects;
    a.count_leaves <- a.count_leaves + b.count_leaves;
    a.breuse <- a.breuse + b.breuse
  in
  Obs.set_max g_domains domains;
  if npos = 0 then begin
    (* Degenerate: no vertices (handled by the scan path normally). *)
    let ctx = make_ctx input in
    walk ctx 0 ~wrapped:false;
    flush_stats ctx;
    finalize ctx
  end
  else if domains = 1 || scalar || must_be_sequential then begin
    (* Sequential (scalar parallel merge handled below when domains>1). *)
    if domains > 1 && scalar then begin
      (* Parallel scalar: chunk the first intersection, merge accums. *)
      let proto = make_ctx input in
      let first = Set_.to_array (isect proto 0) in
      let merged =
        Lh_util.Parfor.map_reduce ~domains ~n:(Array.length first)
          ~init:(fun () ->
            let ctx = make_ctx input in
            for j = 0 to nslots - 1 do
              ctx.accum.(j) <- input.zeros_x.(j)
            done;
            ctx)
          ~body:(fun ctx i ->
            let v = first.(i) in
            ctx.vals.(0) <- v;
            advance ctx 0 v;
            walk ctx 1 ~wrapped:true)
          ~merge:(fun a b ->
            for j = 0 to nslots - 1 do
              a.accum.(j) <- input.adds_x.(j) a.accum.(j) b.accum.(j)
            done;
            a.touched <- a.touched || b.touched;
            merge_stats a b;
            a)
      in
      merge_stats merged proto;
      flush_stats merged;
      [ { gcodes = [||]; slots = Array.copy merged.accum } ]
    end
    else begin
      let ctx = make_ctx input in
      walk ctx 0 ~wrapped:false;
      flush_stats ctx;
      finalize ctx
    end
  end
  else begin
    (* Parallel over the outermost intersection (§III-D). *)
    let proto = make_ctx input in
    let first = Set_.to_array (isect proto 0) in
    let results =
      Lh_util.Parfor.map_reduce ~domains ~n:(Array.length first)
        ~init:(fun () -> make_ctx input)
        ~body:(fun ctx i ->
          let v = first.(i) in
          ctx.vals.(0) <- v;
          advance ctx 0 v;
          walk ctx 1 ~wrapped:false)
        ~merge:(fun a b ->
          (match input.boundary with
          | None ->
              Hashtbl.iter
                (fun k v ->
                  match Hashtbl.find_opt a.hash k with
                  | Some acc ->
                      for j = 0 to nslots - 1 do
                        acc.(j) <- input.adds_x.(j) acc.(j) v.(j)
                      done
                  | None -> Hashtbl.replace a.hash k v)
                b.hash
          | Some _ -> a.out := !(b.out) @ !(a.out));
          merge_stats a b;
          a)
    in
    merge_stats results proto;
    flush_stats results;
    finalize results
  end

(* ------------------------------------------------------------------ *)
(* Node orchestration (Yannakakis bottom-up)                            *)

(* The pseudo slot (child-bag multiplicity) always folds in (+,×). *)
let slot_arrays (lq : Logical.t) ~with_pseudo =
  let n = Array.length lq.Logical.slots in
  let total = if with_pseudo then n + 1 else n in
  let srs =
    Array.init total (fun j ->
        if j < n then lq.Logical.slots.(j).Logical.sr else Semiring.sum_product)
  in
  let coeffs =
    Array.init total (fun j -> if j < n then lq.Logical.slots.(j).Logical.coeff else 1.0)
  in
  (total, srs, coeffs)

(* Per-slot semiring operations unpacked into flat arrays for the hot loop. *)
let slot_ops (srs : Semiring.t array) =
  let adds = Array.map (fun sr -> sr.Semiring.add) srs in
  let muls = Array.map (fun sr -> sr.Semiring.mul) srs in
  let zeros = Array.map (fun sr -> sr.Semiring.zero) srs in
  let scales =
    Array.map
      (fun sr -> match sr.Semiring.card with Semiring.Scale f -> Some f | _ -> None)
      srs
  in
  let opaque = Array.map (fun sr -> sr.Semiring.card = Semiring.Opaque) srs in
  (adds, muls, zeros, scales, opaque)

(* Execute a child node and wrap its materialized result as a relation for
   the parent: keys = interface (in the parent's attribute-order order),
   annotations = every slot plus the multiplicity. *)
let rec exec_child cfg ?cache (lq : Logical.t) (node : pnode) ~parent_order =
  let iface_sorted =
    List.filter (fun v -> List.mem v node.pbag.Ghd.interface) parent_order
  in
  let gb_keys = List.map (fun v -> From_pos (pos_of node.porder v)) iface_sorted in
  let sub_gitems = subtree_gitems lq node in
  let rows, code_sources = run_bag cfg ?cache lq node ~gb_prefix:gb_keys ~with_pseudo:true in
  let nslots = Array.length lq.Logical.slots in
  let nkeys = List.length iface_sorted in
  let rows_arr = Array.of_list rows in
  let nrows = Array.length rows_arr in
  let keys = Array.init nkeys (fun k -> Array.init nrows (fun r -> rows_arr.(r).gcodes.(k))) in
  let ncodes = Array.length code_sources in
  let group_cols =
    Array.init ncodes (fun c -> Array.init nrows (fun r -> rows_arr.(r).gcodes.(nkeys + c)))
  in
  let aggs =
    Array.init nslots (fun j ->
        (lq.Logical.slots.(j).Logical.sr.Semiring.add, fun r -> rows_arr.(r).slots.(j)))
  in
  let mults r = rows_arr.(r).slots.(nslots) in
  let xtrie =
    if nkeys = 0 then invalid_arg "Executor: child node with empty interface"
    else begin
      Obs.incr c_trie_built;
      Obs.span "trie.build" ~args:[ ("table", "<child-bag>") ]
        ~record:(Lh_obs.Hist.observe_always h_trie_build)
      @@ fun () ->
      Trie.build ~domains:(max 1 cfg.Config.domains) ~keys ~rows:(Array.init nrows Fun.id)
        ~group_cols ~aggs ~mults ()
    end
  in
  let positions =
    List.filter_map
      (fun (i, v) -> if List.mem v iface_sorted then Some i else None)
      (List.mapi (fun i v -> (i, v)) parent_order)
  in
  ignore sub_gitems;
  {
    xtrie;
    xlevels = positions;
    (* Owns every real slot; the pseudo-mult slot of an enclosing child
       node reads this relation's multiplicity instead. *)
    xslot = Array.init (nslots + 1) (fun j -> if j < nslots then j else -1);
    xcode_items = code_sources;
  }

and pos_of order v =
  match List.find_index (( = ) v) order with
  | Some i -> i
  | None -> failwith "Executor: vertex missing from order"

and subtree_gitems (lq : Logical.t) (node : pnode) =
  (* gitem ids whose owning alias lives in this subtree. *)
  let rec aliases (n : pnode) =
    List.map (fun e -> lq.Logical.edges.(e).Logical.alias) n.pbag.Ghd.bag_edges
    @ List.concat_map aliases n.pchildren
  in
  let als = aliases node in
  Array.to_list lq.Logical.group_by
  |> List.mapi (fun i g -> (i, g))
  |> List.filter_map (fun (i, g) ->
         match g with
         | Logical.Group_ann a when List.mem a.alias als -> Some i
         | Logical.Group_ann _ | Logical.Group_key _ -> None)

(* Run the WCOJ for one node.  [gb_prefix] is the key part of the output
   (positions of materialized vertices for child nodes; the real GROUP BY
   sources at the root).  Returns the rows and, for child nodes, the gitem
   ids appended as code columns after the key part. *)
and run_bag cfg ?cache (lq : Logical.t) (node : pnode) ~gb_prefix ~with_pseudo =
  let order = node.porder in
  (* Children first (bottom-up). *)
  let derived = List.map (fun c -> exec_child cfg ?cache lq c ~parent_order:order) node.pchildren in
  let bases =
    List.map
      (fun e ->
        build_base_xrel ?cache ~domains:(max 1 cfg.Config.domains) lq ~order lq.Logical.edges.(e))
      node.pbag.Ghd.bag_edges
  in
  let rels = Array.of_list (bases @ derived) in
  (* Code sources: every gitem carried by some relation of this node. *)
  let code_sources = ref [] in
  Array.iteri
    (fun ri (r : xrel) ->
      Array.iteri (fun cp item -> code_sources := (item, From_rel (ri, cp)) :: !code_sources)
        r.xcode_items)
    rels;
  let code_sources = List.rev !code_sources in
  let gb, appended_items =
    if with_pseudo then
      (* child node: key = interface positions ++ all carried codes *)
      ( Array.of_list (gb_prefix @ List.map snd code_sources),
        Array.of_list (List.map fst code_sources) )
    else (Array.of_list gb_prefix, [||])
  in
  let nslots_x, srs_x, coeffs_x = slot_arrays lq ~with_pseudo in
  let adds_x, muls_x, zeros_x, scales_x, opaque_x = slot_ops srs_x in
  let npos = List.length order in
  (* Sorted-path eligibility (root only): all group sources are positions
     forming a prefix (optionally with the relaxed last-position tail). *)
  let boundary, relaxed_tail, spa_bound =
    if with_pseudo then (None, false, -1)
    else begin
      let positions =
        Array.to_list gb
        |> List.map (function From_pos p -> Some p | From_rel _ -> None)
      in
      if List.exists Option.is_none positions then (None, false, -1)
      else
        let ps = List.sort_uniq compare (List.map Option.get positions) in
        let m = List.length ps in
        if ps = List.init m Fun.id then (Some m, false, -1)
        else if
          npos >= 2 && m >= 1
          && ps = List.init (m - 1) Fun.id @ [ npos - 1 ]
        then begin
          (* relaxed shape: prefix of m-1 positions + the last position *)
          let bound =
            Array.fold_left
              (fun acc (r : xrel) ->
                match List.find_index (( = ) (npos - 1)) r.xlevels with
                | Some l -> max acc r.xtrie.Trie.level_max.(l)
                | None -> acc)
              0 rels
          in
          (Some (m - 1), true, bound)
        end
        else (None, false, -1)
    end
  in
  (* The sorted path emits key positions in walk order; it is only valid
     when the gb array lists those positions in that same order. *)
  let boundary, relaxed_tail, spa_bound =
    match boundary with
    | Some m ->
        let expected =
          if relaxed_tail then List.init m Fun.id @ [ npos - 1 ] else List.init m Fun.id
        in
        let actual = Array.to_list gb |> List.map (function From_pos p -> p | From_rel _ -> -1) in
        if actual = expected then (boundary, relaxed_tail, spa_bound) else (None, false, -1)
    | None -> (None, false, -1)
  in
  let input =
    {
      rels;
      npos;
      nslots_x;
      srs_x;
      coeffs_x;
      adds_x;
      muls_x;
      zeros_x;
      scales_x;
      opaque_x;
      gb;
      boundary;
      spa_bound;
      relaxed_tail;
      kmode = resolve_kmode cfg node rels ~npos ~srs:srs_x ~gb ~boundary ~relaxed_tail;
    }
  in
  let rows =
    Obs.span "wcoj.bag"
      ~args:
        [ ("rels", string_of_int (Array.length rels)); ("positions", string_of_int npos) ]
      (fun () -> exec_bag cfg input)
  in
  (rows, appended_items)

(* ------------------------------------------------------------------ *)

let rec run cfg ?cache (lq : Logical.t) (root : pnode) =
  (* Root group sources: GROUP BY items in order. *)
  let order = root.porder in
  (* run_bag needs per-gitem sources; key items come from positions, the
     annotation items from whichever relation of the node carries them —
     resolved after the xrels exist, so we pass placeholders and rewrite. *)
  let gb_prefix =
    Array.to_list lq.Logical.group_by
    |> List.map (function
         | Logical.Group_key v -> From_pos (pos_of order v)
         | Logical.Group_ann _ -> From_rel (-1, -1) (* patched in run_bag_root *))
  in
  (* Rebuild with correct annotation sources: duplicate the run_bag logic
     lightly by patching after relation construction would be invasive;
     instead exploit that child nodes carry their gitems as codes and base
     relations expose xcode_items: run_bag resolves From_rel (-1, -1)
     placeholders itself. *)
  let rows, _ = run_bag_root cfg ?cache lq root gb_prefix in
  rows

and run_bag_root (cfg : Config.t) ?cache lq (node : pnode) gb_prefix =
  (* Same as run_bag ~with_pseudo:false, but resolves annotation gitem
     sources against the built relations. *)
  let order = node.porder in
  let derived = List.map (fun c -> exec_child cfg ?cache lq c ~parent_order:order) node.pchildren in
  let bases =
    List.map
      (fun e ->
        build_base_xrel ?cache ~domains:(max 1 cfg.Config.domains) lq ~order lq.Logical.edges.(e))
      node.pbag.Ghd.bag_edges
  in
  let rels = Array.of_list (bases @ derived) in
  let where_is = Hashtbl.create 8 in
  Array.iteri
    (fun ri (r : xrel) ->
      Array.iteri (fun cp item -> Hashtbl.replace where_is item (ri, cp)) r.xcode_items)
    rels;
  let gb =
    Array.of_list
      (List.mapi
         (fun i src ->
           match src with
           | From_pos _ -> src
           | From_rel _ -> (
               match Hashtbl.find_opt where_is i with
               | Some (ri, cp) -> From_rel (ri, cp)
               | None -> failwith "Executor: GROUP BY annotation not carried by any relation"))
         gb_prefix)
  in
  let nslots_x, srs_x, coeffs_x = slot_arrays lq ~with_pseudo:false in
  let adds_x, muls_x, zeros_x, scales_x, opaque_x = slot_ops srs_x in
  let npos = List.length order in
  let boundary, relaxed_tail, spa_bound =
    let positions =
      Array.to_list gb |> List.map (function From_pos p -> Some p | From_rel _ -> None)
    in
    if not cfg.Config.sorted_emit then (None, false, -1)
    else if List.exists Option.is_none positions then (None, false, -1)
    else
      let actual = List.map Option.get positions in
      let m = List.length actual in
      if actual = List.init m Fun.id then (Some m, false, -1)
      else if npos >= 2 && m >= 1 && actual = List.init (m - 1) Fun.id @ [ npos - 1 ] then begin
        let bound =
          Array.fold_left
            (fun acc (r : xrel) ->
              match List.find_index (( = ) (npos - 1)) r.xlevels with
              | Some l -> max acc r.xtrie.Trie.level_max.(l)
              | None -> acc)
            0 rels
        in
        (Some (m - 1), true, bound)
      end
      else (None, false, -1)
  in
  let input =
    {
      rels;
      npos;
      nslots_x;
      srs_x;
      coeffs_x;
      adds_x;
      muls_x;
      zeros_x;
      scales_x;
      opaque_x;
      gb;
      boundary;
      spa_bound;
      relaxed_tail;
      kmode = resolve_kmode cfg node rels ~npos ~srs:srs_x ~gb ~boundary ~relaxed_tail;
    }
  in
  let rows =
    Obs.span "wcoj.bag"
      ~args:
        [ ("rels", string_of_int (Array.length rels)); ("positions", string_of_int npos) ]
      (fun () -> exec_bag cfg input)
  in
  (rows, [||])

(* ------------------------------------------------------------------ *)
(* Scan path: no vertices (e.g. TPC-H Q1 and Q6)                        *)

let run_scan cfg (lq : Logical.t) =
  (match Array.length lq.Logical.edges with
  | 1 -> ()
  | _ -> failwith "Executor.run_scan: scan path requires exactly one relation");
  let edge = lq.Logical.edges.(0) in
  let table = edge.Logical.table in
  let resolve = table_resolver edge.Logical.alias table in
  let rows = filtered_rows edge in
  Obs.add c_scan_rows (Array.length rows);
  let gitems = alias_gitems lq edge.Logical.alias in
  (* Every gitem must belong to this relation (there is only one). *)
  if List.length gitems <> Array.length lq.Logical.group_by then
    failwith "Executor.run_scan: GROUP BY key on a scan query";
  let code_fns = List.map (fun (_, e) -> Compile.code table ~resolve e) gitems in
  let nslots = Array.length lq.Logical.slots in
  let slot_fns =
    Array.map
      (fun (s : Logical.slot) ->
        match s.Logical.owners with
        | [] -> None
        | [ (_, e) ] -> Some (Compile.scalar table ~resolve e)
        | _ -> failwith "Executor.run_scan: multi-relation slot on a scan query")
      lq.Logical.slots
  in
  let srs = Array.map (fun (s : Logical.slot) -> s.Logical.sr) lq.Logical.slots in
  let coeffs = Array.map (fun (s : Logical.slot) -> s.Logical.coeff) lq.Logical.slots in
  let zeros = Array.map (fun sr -> sr.Semiring.zero) srs in
  let budget = cfg.Config.budget in
  let acc : (int array, float array) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      Lh_fault.Fault.hit fault_scan;
      if i land 4095 = 0 then begin
        Obs.incr c_budget_ticks;
        Lh_util.Budget.check budget
      end;
      let key = Array.of_list (List.map (fun f -> f r) code_fns) in
      let dest =
        match Hashtbl.find_opt acc key with
        | Some d -> d
        | None ->
            let d = Array.copy zeros in
            Hashtbl.replace acc key d;
            d
      in
      for j = 0 to nslots - 1 do
        let v =
          match slot_fns.(j) with
          | Some f -> srs.(j).Semiring.mul coeffs.(j) (f r)
          | None -> coeffs.(j)
        in
        dest.(j) <- srs.(j).Semiring.add dest.(j) v
      done)
    rows;
  if Array.length lq.Logical.group_by = 0 && Hashtbl.length acc = 0 then
    [ { gcodes = [||]; slots = Array.copy zeros } ]
  else
    Hashtbl.fold (fun k v l -> { gcodes = k; slots = v } :: l) acc []
    |> List.sort (fun a b -> compare a.gcodes b.gcodes)

let pp_plan (lq : Logical.t) fmt root =
  let vname v = lq.Logical.vertices.(v).Logical.vname in
  let rec go indent (n : pnode) =
    Format.fprintf fmt "%sorder: [%s]%s cost: %g; rels: %s@," indent
      (String.concat ", " (List.map vname n.porder))
      (if n.prelaxed then " (relaxed)" else "")
      n.pcost
      (String.concat ", "
         (List.map (fun e -> lq.Logical.edges.(e).Logical.alias) n.pbag.Ghd.bag_edges));
    List.iter (go (indent ^ "  ")) n.pchildren
  in
  Format.fprintf fmt "@[<v>";
  go "" root;
  Format.fprintf fmt "@]"
