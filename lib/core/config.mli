(** Engine configuration and ablation toggles.

    The defaults are the full LevelHeaded design. Each toggle disables one
    of the paper's optimizations so the micro-benchmarks (Table III) can
    measure its contribution, and so the "LogicBlox-like" comparison engine
    (a WCOJ engine without LevelHeaded's optimizations) can be expressed as
    a configuration. *)

type attr_order_policy =
  | Cost_based  (** the §V cost-based optimizer *)
  | Naive  (** first valid order (what a WCOJ engine without the optimizer,
               e.g. EmptyHeaded, might select) *)
  | Worst_cost  (** highest-cost valid order; used by Table III / Fig. 5 *)

type t = {
  attribute_elimination : bool;
      (** §IV-A: only referenced attributes enter the hypergraph and only
          referenced buffers are touched. Disabling also disables BLAS
          targeting (dense annotations are no longer isolated buffers). *)
  attr_order : attr_order_policy;
  relax_materialized_first : bool;  (** §V-A2 last-two-attribute swap *)
  sorted_emit : bool;
      (** stream GROUP BY prefixes with a sparse accumulator instead of
          hashing the output — the path that keeps SMM's output out of a
          hash table. Disable to measure its contribution. *)
  leaf_specialization : bool;
      (** pin layout-specialized WCOJ kernels per plan: buffered
          [inter_into] at interior trie positions, streaming
          [foreach_inter] leaves, and count-only leaves for count-star-shaped
          aggregates over duplicate-free relations. Execution-time only —
          changing it keeps cached plans (the kernel disposition is
          re-resolved per execution). Disable for the materializing
          baseline the [layouts] bench experiment measures against. *)
  blas_targeting : bool;  (** §III-D: hand dense LA kernels to the BLAS substrate *)
  ghd_heuristics : bool;  (** §IV-B tie-breaking among equal-FHW GHDs *)
  domains : int;
      (** worker domains for the outermost WCOJ loop, trie builds and BLAS
          kernels. [default] starts from [Lh_util.Parfor.default_domains]:
          1 unless the [LH_DOMAINS] environment variable overrides it. *)
  budget : Lh_util.Budget.t;  (** memory/time budget; checked cooperatively *)
  plan_cache_capacity : int;
      (** max entries in the engine's normalized-AST plan cache; [0]
          disables caching entirely. Default 64, overridable via the
          [LH_PLAN_CACHE] environment variable. *)
  slow_log_ms : float;
      (** slow-query threshold in milliseconds: when telemetry is enabled
          and a profile sink is installed ([Engine.set_profile_sink]),
          queries whose end-to-end latency meets the threshold are handed
          to the sink. [0.0] logs every query; [infinity] — the default —
          logs none. Overridable via the [LH_SLOW_MS] environment
          variable. Not a plan-shaping knob (changing it keeps cached
          plans). *)
  wal_sync : Lh_durable.Wal.sync;
      (** WAL group-commit fsync discipline for durable ingest (see
          [Lh_durable.Wal]): [Always] fsyncs per append, [Group n] every
          [n] appends, [Never] leaves it to the OS. Default from the
          [LH_WAL_SYNC] environment variable ([always] | [group[:N]] |
          [none]); [group:8] when unset. Not a plan-shaping knob. *)
}

val default : t
val logicblox_like : t
(** WCOJ engine without LevelHeaded's optimizations: no attribute
    elimination, naive attribute order, no relaxation, no leaf
    specialization, no BLAS targeting. *)
