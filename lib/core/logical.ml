open Lh_sql
module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Trie = Lh_storage.Trie

type vertex = { vname : string; vdtype : Dtype.t }

type edge = {
  alias : string;
  table : T.t;
  vertices : int list;
  vertex_cols : (int * int) list;
  filter : Ast.pred option;
  eq_selected : bool;
}

type gitem =
  | Group_key of int
  | Group_ann of { alias : string; expr : Ast.expr; dtype : Dtype.t }

type slot = {
  sr : Semiring.t;
  owners : (string * Ast.expr) list;
  coeff : float;
  dead : bool;
}

type output =
  | Out_group of int
  | Out_sum of int list
  | Out_avg of int list * int
  | Out_fold of int

type out_col = { oname : string; okind : output; odtype : Dtype.t }

type t = {
  bindings : (string * T.t) list;
  vertices : vertex array;
  edges : edge array;
  slots : slot array;
  group_by : gitem array;
  outputs : out_col list;
}

exception Unsupported_query of string
exception Unknown_table of string
exception Unknown_column of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported_query s)) fmt

(* ------------------------------------------------------------------ *)
(* Column resolution                                                    *)

type rcol = { ralias : string; rtable : T.t; rcol : int }

let resolver bindings (c : Ast.col_ref) =
  match c.Ast.relation with
  | Some alias -> (
      match List.assoc_opt alias bindings with
      | None -> raise (Unknown_table alias)
      | Some table -> (
          match Schema.find table.T.schema c.Ast.column with
          | Some i -> { ralias = alias; rtable = table; rcol = i }
          | None -> raise (Unknown_column (Printf.sprintf "%s.%s" alias c.Ast.column))))
  | None -> (
      let hits =
        List.filter_map
          (fun (alias, table) ->
            match Schema.find table.T.schema c.Ast.column with
            | Some i -> Some { ralias = alias; rtable = table; rcol = i }
            | None -> None)
          bindings
      in
      match hits with
      | [ r ] -> r
      | [] -> raise (Unknown_column c.Ast.column)
      | _ -> unsupported "ambiguous column %S (qualify it with an alias)" c.Ast.column)

let is_key r = Schema.is_key r.rtable.T.schema r.rcol
let col_dtype r = (Schema.col r.rtable.T.schema r.rcol).Schema.dtype
let col_name r = (Schema.col r.rtable.T.schema r.rcol).Schema.name

let expr_aliases resolve e =
  Ast.expr_columns e |> List.map (fun c -> (resolve c).ralias) |> List.sort_uniq compare

let pred_aliases resolve p =
  Ast.pred_columns p |> List.map (fun c -> (resolve c).ralias) |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* WHERE classification                                                 *)

let rec conjuncts = function
  | Ast.And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

type classified =
  | Join of rcol * rcol
  | Filter of string * Ast.pred  (* alias *)

let classify resolve p =
  match p with
  | Ast.Cmp (Ast.Eq, Ast.Col a, Ast.Col b) -> (
      let ra = resolve a and rb = resolve b in
      if String.equal ra.ralias rb.ralias then Filter (ra.ralias, p)
      else
        match (is_key ra, is_key rb) with
        | true, true ->
            if col_dtype ra <> col_dtype rb then
              unsupported "join between %s and %s with different types" (col_name ra) (col_name rb);
            Join (ra, rb)
        | _ ->
            unsupported "join condition %s = %s must equate two key columns (§III-A)" (col_name ra)
              (col_name rb))
  | _ -> (
      match pred_aliases resolve p with
      | [ alias ] -> Filter (alias, p)
      | [] -> unsupported "constant predicate is not supported"
      | aliases ->
          unsupported "predicate spanning relations %s is neither an equi-join nor a filter"
            (String.concat ", " aliases))

let rec has_eq_filter = function
  | Ast.Cmp (Ast.Eq, Ast.Col _, e) | Ast.Cmp (Ast.Eq, e, Ast.Col _) -> (
      (* A parameter is a constant-to-be: it always binds to a literal, so
         planning may rely on the equality selection being present. *)
      match e with Ast.Param _ -> true | _ -> Option.is_some (Compile.const_value e))
  | Ast.And (a, b) -> has_eq_filter a || has_eq_filter b
  | Ast.Or _ | Ast.Not _ | Ast.Cmp _ | Ast.Between _ | Ast.Like _ | Ast.Not_like _ -> false

(* ------------------------------------------------------------------ *)
(* Union-find over key columns -> vertices                              *)

module UF = struct
  type t = (string * int, string * int) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find (t : t) x =
    match Hashtbl.find_opt t x with
    | None -> x
    | Some p ->
        let root = find t p in
        Hashtbl.replace t x root;
        root

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then Hashtbl.replace t ra rb

  let touch t x = ignore (find t x)
end

(* Vertex display names: when every member column shares the suffix after
   its first underscore (TPC-H style: c_custkey, o_custkey), use that. *)
let vertex_name cols =
  let suffix name =
    match String.index_opt name '_' with
    | Some i when i + 1 < String.length name -> String.sub name (i + 1) (String.length name - i - 1)
    | _ -> name
  in
  match cols with
  | [] -> assert false
  | (_, first) :: _ ->
      let s = suffix first in
      if List.for_all (fun (_, n) -> String.equal (suffix n) s) cols then s else first

(* ------------------------------------------------------------------ *)
(* Aggregate decomposition (rule 3): expression -> sum of terms, each a
   product of single-relation factors.                                  *)

type term = { tcoeff : float; tfactors : (string * Ast.expr) list }

let const_float e =
  match Compile.const_value e with
  | Some v when Dtype.value_type v <> Dtype.String -> Some (Dtype.numeric v)
  | _ -> None

let merge_factors fs =
  (* Combine multiple factors of the same alias into one product. *)
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (alias, e) ->
      match Hashtbl.find_opt tbl alias with
      | None ->
          Hashtbl.replace tbl alias e;
          order := alias :: !order
      | Some prev -> Hashtbl.replace tbl alias (Ast.Mul (prev, e)))
    fs;
  List.rev_map (fun alias -> (alias, Hashtbl.find tbl alias)) !order

let rec decompose ~fallback resolve e : term list =
  let decompose = decompose ~fallback in
  match const_float e with
  | Some c -> [ { tcoeff = c; tfactors = [] } ]
  | None -> (
      match expr_aliases resolve e with
      | [ alias ] -> [ { tcoeff = 1.0; tfactors = [ (alias, e) ] } ]
      | [] when Ast.expr_params e <> [] ->
          (* Value known only at bind time: park it as a factor on an
             arbitrary relation — a row-wise constant summed with join
             multiplicity gives the same total whichever edge owns it. *)
          [ { tcoeff = 1.0; tfactors = [ (fallback, e) ] } ]
      | _ -> (
          match e with
          | Ast.Add (a, b) -> decompose resolve a @ decompose resolve b
          | Ast.Sub (a, b) -> decompose resolve a @ negate (decompose resolve b)
          | Ast.Neg a -> negate (decompose resolve a)
          | Ast.Mul (a, b) ->
              let ta = decompose resolve a and tb = decompose resolve b in
              List.concat_map
                (fun x ->
                  List.map
                    (fun y ->
                      { tcoeff = x.tcoeff *. y.tcoeff; tfactors = merge_factors (x.tfactors @ y.tfactors) })
                    tb)
                ta
          | Ast.Div (a, b) -> (
              match const_float b with
              | Some c when c <> 0.0 ->
                  List.map (fun t -> { t with tcoeff = t.tcoeff /. c }) (decompose resolve a)
              | _ -> unsupported "cannot decompose division by a multi-relation expression")
          | Ast.Case_when (p, a, b) -> (
              (* case when P(r) then X else 0  ==  indicator(P) * X *)
              match (pred_aliases resolve p, const_float b) with
              | [ palias ], Some 0.0 ->
                  let indicator = (palias, Ast.Case_when (p, Ast.Int_lit 1, Ast.Int_lit 0)) in
                  List.map
                    (fun t -> { t with tfactors = merge_factors (indicator :: t.tfactors) })
                    (decompose resolve a)
              | _ ->
                  unsupported
                    "CASE across relations is only supported as CASE WHEN single-relation-pred THEN expr ELSE 0")
          | Ast.Col _ | Ast.Int_lit _ | Ast.Float_lit _ | Ast.String_lit _ | Ast.Date_lit _
          | Ast.Interval_day _ | Ast.Extract_year _ | Ast.Param _ ->
              unsupported "aggregate expression spans relations in a way that cannot be decomposed"))

and negate terms = List.map (fun t -> { t with tcoeff = -.t.tcoeff }) terms

(* Additive decomposition for ⊗ = + semirings (Dplus, e.g. (min,+)):
   the argument must be a sum of single-relation addends; each addend
   becomes an owned factor and constants accumulate into the slot
   coefficient (the ⊗-seed — for (min,+) that is literal addition).
   Sound because + distributes over min/max unconditionally:
   min over matches of (f_a + f_b) = (min f_a) + (min f_b). *)
let decompose_plus ~fallback resolve e =
  let factors = ref [] in
  let const = ref 0.0 in
  let rec go sign e =
    match const_float e with
    | Some c -> const := !const +. (if sign then c else -.c)
    | None -> (
        let signed e = if sign then e else Ast.Neg e in
        match expr_aliases resolve e with
        | [ alias ] -> factors := (alias, signed e) :: !factors
        | [] when Ast.expr_params e <> [] ->
            (* Bind-time constant: park it on an arbitrary relation, like
               the multiplicative decomposition does. *)
            factors := (fallback, signed e) :: !factors
        | _ -> (
            match e with
            | Ast.Add (a, b) ->
                go sign a;
                go sign b
            | Ast.Sub (a, b) ->
                go sign a;
                go (not sign) b
            | Ast.Neg a -> go (not sign) a
            | _ ->
                unsupported
                  "(min,+) aggregate argument must be a sum of single-relation terms"))
  in
  go true e;
  (* Merge addends of the same alias into one owned expression. *)
  let tbl = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (alias, e) ->
      match Hashtbl.find_opt tbl alias with
      | None ->
          Hashtbl.replace tbl alias e;
          order := alias :: !order
      | Some prev -> Hashtbl.replace tbl alias (Ast.Add (prev, e)))
    (List.rev !factors);
  (List.rev_map (fun alias -> (alias, Hashtbl.find tbl alias)) !order, !const)

(* 0/1 indicator for the boolean semiring: [e <> 0]. *)
let booleanize e = Ast.Case_when (Ast.Cmp (Ast.Ne, e, Ast.Int_lit 0), Ast.Int_lit 1, Ast.Int_lit 0)

(* ------------------------------------------------------------------ *)
(* GROUP BY signatures: used to match plain SELECT items to GROUP BY
   items regardless of how the column was spelled.                      *)

type gsig = Sig_key of int | Sig_col of string * int | Sig_year of string * int

let gb_signature resolve vertex_of e =
  match e with
  | Ast.Col c -> (
      let r = resolve c in
      if is_key r then
        match vertex_of (r.ralias, r.rcol) with
        | Some v -> Sig_key v
        | None ->
            (* a key column that is neither joined nor grouped *)
            unsupported "SELECT key column %s is not in GROUP BY" (col_name r)
      else Sig_col (r.ralias, r.rcol))
  | Ast.Extract_year (Ast.Col c) ->
      let r = resolve c in
      if is_key r then unsupported "EXTRACT(YEAR) of a key column in GROUP BY";
      Sig_year (r.ralias, r.rcol)
  | _ -> unsupported "GROUP BY item must be a column or EXTRACT(YEAR FROM column)"

(* ------------------------------------------------------------------ *)

let check_no_keys_in_aggregate resolve e =
  List.iter
    (fun c ->
      let r = resolve c in
      if is_key r then
        unsupported "key column %s cannot be aggregated (§III-A: keys cannot be aggregated)"
          (col_name r))
    (Ast.expr_columns e)

let translate catalog ~attribute_elimination (q : Ast.query) =
  if q.Ast.select = [] then unsupported "empty SELECT list";
  (* FROM bindings. *)
  let bindings =
    List.map
      (fun (tname, alias) ->
        match Catalog.find catalog tname with
        | Some table -> (alias, table)
        | None -> raise (Unknown_table tname))
      q.Ast.from
  in
  let dup =
    List.sort compare (List.map fst bindings)
    |> fun l -> List.exists2 String.equal (List.filteri (fun i _ -> i > 0) l)
                  (List.filteri (fun i _ -> i < List.length l - 1) l)
  in
  if dup then unsupported "duplicate relation alias in FROM";
  let resolve = resolver bindings in

  (* Classify WHERE. *)
  let cls = match q.Ast.where with None -> [] | Some p -> List.map (classify resolve) (conjuncts p) in
  let joins = List.filter_map (function Join (a, b) -> Some (a, b) | Filter _ -> None) cls in
  let filters = List.filter_map (function Filter (a, p) -> Some (a, p) | Join _ -> None) cls in

  (* Union-find joined key columns into vertex classes (rule 1). *)
  let uf = UF.create () in
  List.iter (fun (a, b) -> UF.union uf (a.ralias, a.rcol) (b.ralias, b.rcol)) joins;
  (* GROUP BY key columns are vertices too, even when un-joined. *)
  List.iter
    (fun e ->
      match e with
      | Ast.Col c ->
          let r = resolve c in
          if is_key r then UF.touch uf (r.ralias, r.rcol)
      | _ -> ())
    q.Ast.group_by;
  (* Without attribute elimination, every key column of every bound table
     enters the hypergraph. *)
  if not attribute_elimination then
    List.iter
      (fun (alias, table) ->
        List.iter (fun i -> UF.touch uf (alias, i)) (Schema.key_indices table.T.schema))
      bindings;

  (* Materialize vertex classes. *)
  let class_members = Hashtbl.create 16 in
  let touched = Hashtbl.create 16 in
  let note (alias, col) =
    if not (Hashtbl.mem touched (alias, col)) then begin
      Hashtbl.replace touched (alias, col) ();
      let root = UF.find uf (alias, col) in
      let prev = Option.value (Hashtbl.find_opt class_members root) ~default:[] in
      Hashtbl.replace class_members root ((alias, col) :: prev)
    end
  in
  List.iter (fun (a, b) -> note (a.ralias, a.rcol); note (b.ralias, b.rcol)) joins;
  List.iter
    (fun e ->
      match e with
      | Ast.Col c ->
          let r = resolve c in
          if is_key r then note (r.ralias, r.rcol)
      | _ -> ())
    q.Ast.group_by;
  if not attribute_elimination then
    List.iter
      (fun (alias, table) ->
        List.iter (fun i -> note (alias, i)) (Schema.key_indices table.T.schema))
      bindings;

  (* Deterministic vertex numbering: order classes by first appearance in
     the bindings/schema order. *)
  let class_list =
    List.concat_map
      (fun (alias, table) ->
        List.filter_map
          (fun i ->
            let key = (alias, i) in
            if Hashtbl.mem touched key && UF.find uf key = key then Some key else None)
          (Schema.key_indices table.T.schema))
      bindings
    (* roots whose own column wasn't first in schema order still need a slot *)
    @ (Hashtbl.fold (fun root _ acc -> root :: acc) class_members [] |> List.sort compare)
  in
  let vertex_ids = Hashtbl.create 16 in
  let vertices_rev = ref [] in
  let nvertices = ref 0 in
  List.iter
    (fun root ->
      if not (Hashtbl.mem vertex_ids root) then begin
        let members = Hashtbl.find class_members root in
        let cols =
          List.map
            (fun (alias, col) ->
              let table = List.assoc alias bindings in
              (alias, (Schema.col table.T.schema col).Schema.name))
            members
        in
        let dtypes =
          List.sort_uniq compare
            (List.map
               (fun (alias, col) ->
                 (Schema.col (List.assoc alias bindings).T.schema col).Schema.dtype)
               members)
        in
        (match dtypes with
        | [ _ ] -> ()
        | _ -> unsupported "joined key columns disagree on type");
        Hashtbl.replace vertex_ids root !nvertices;
        vertices_rev := { vname = vertex_name cols; vdtype = List.hd dtypes } :: !vertices_rev;
        incr nvertices
      end)
    class_list;
  let vertices = Array.of_list (List.rev !vertices_rev) in
  let vertex_of key =
    if Hashtbl.mem touched key then Hashtbl.find_opt vertex_ids (UF.find uf key) else None
  in

  (* Disambiguate duplicate vertex display names. *)
  let seen_names = Hashtbl.create 16 in
  Array.iteri
    (fun i v ->
      match Hashtbl.find_opt seen_names v.vname with
      | None -> Hashtbl.replace seen_names v.vname 1
      | Some n ->
          Hashtbl.replace seen_names v.vname (n + 1);
          vertices.(i) <- { v with vname = Printf.sprintf "%s#%d" v.vname (n + 1) })
    vertices;

  (* Per-alias merged filters. *)
  let filter_of alias =
    match List.filter_map (fun (a, p) -> if String.equal a alias then Some p else None) filters with
    | [] -> None
    | p :: ps -> Some (List.fold_left (fun acc q -> Ast.And (acc, q)) p ps)
  in

  (* Edges (rule 1: hyperedges are the relations). *)
  let edges =
    List.map
      (fun (alias, table) ->
        let vcols =
          List.filter_map
            (fun i ->
              match vertex_of (alias, i) with Some v -> Some (v, i) | None -> None)
            (Schema.key_indices table.T.schema)
        in
        let filter = filter_of alias in
        {
          alias;
          table;
          vertices = List.map fst vcols;
          vertex_cols = vcols;
          filter;
          eq_selected = (match filter with Some p -> has_eq_filter p | None -> false);
        })
      bindings
    |> Array.of_list
  in

  (* Structural checks: no Cartesian products. *)
  let nedges = Array.length edges in
  if nedges > 1 then begin
    Array.iter
      (fun (e : edge) ->
        if e.vertices = [] then unsupported "relation %s does not join anything" e.alias)
      edges;
    (* Connectivity via shared vertices. *)
    let adj = Array.make (Array.length vertices) [] in
    Array.iteri (fun ei (e : edge) -> List.iter (fun v -> adj.(v) <- ei :: adj.(v)) e.vertices) edges;
    let seen = Array.make nedges false in
    let rec dfs ei =
      if not seen.(ei) then begin
        seen.(ei) <- true;
        List.iter (fun v -> List.iter dfs adj.(v)) edges.(ei).vertices
      end
    in
    dfs 0;
    if Array.exists not seen then unsupported "FROM clause is a Cartesian product (disconnected join graph)"
  end;

  (* GROUP BY items. *)
  let group_by =
    Array.of_list
      (List.map
         (fun e ->
           match gb_signature resolve vertex_of e with
           | Sig_key v -> Group_key v
           | Sig_col (alias, _) | Sig_year (alias, _) ->
               let table = List.assoc alias bindings in
               let dtype = Compile.code_dtype table ~resolve:(fun c -> (resolve c).rcol) e in
               Group_ann { alias; expr = e; dtype })
         q.Ast.group_by)
  in
  let gb_sigs = Array.of_list (List.map (gb_signature resolve vertex_of) q.Ast.group_by) in

  (* Slots and outputs. *)
  let slots = ref [] in
  let nslots = ref 0 in
  let add_slot s =
    slots := s :: !slots;
    incr nslots;
    !nslots - 1
  in
  let count_slot = ref None in
  let get_count_slot () =
    match !count_slot with
    | Some j -> j
    | None ->
        let j = add_slot { sr = Semiring.sum_product; owners = []; coeff = 1.0; dead = false } in
        count_slot := Some j;
        j
  in
  (* Owner for bind-time constants (pure-parameter factors); any edge works. *)
  let fallback = match bindings with (alias, _) :: _ -> alias | [] -> assert false in
  let decompose = decompose ~fallback in
  let decompose_plus = decompose_plus ~fallback in
  let slots_of_terms sr terms =
    List.map
      (fun t ->
        if t.tfactors = [] then add_slot { sr; owners = []; coeff = t.tcoeff; dead = false }
        else
          let owners =
            match t.tfactors with
            | (alias, e) :: rest when t.tcoeff <> 1.0 ->
                (alias, Ast.Mul (Ast.Float_lit t.tcoeff, e)) :: rest
            | fs -> fs
          in
          add_slot { sr; owners; coeff = sr.Semiring.one; dead = false })
      terms
  in
  (* One slot per decomposition class of the argument, given the semiring:
     Dtimes distributes ⊕ over +/- (possibly several slots, ⊕-folded by
     Out_sum); the others build a single slot read back by Out_fold. *)
  let fold_slot (sr : Semiring.t) arg what =
    match (sr.Semiring.decomp, arg) with
    | Semiring.Dplus, Some e ->
        let owners, const = decompose_plus resolve e in
        add_slot { sr; owners; coeff = sr.Semiring.mul sr.Semiring.one const; dead = false }
    | Semiring.Dbool, Some e -> (
        match expr_aliases resolve e with
        | [ alias ] ->
            add_slot { sr; owners = [ (alias, booleanize e) ]; coeff = sr.Semiring.one; dead = false }
        | [] -> (
            match const_float e with
            | Some c ->
                add_slot
                  { sr; owners = []; coeff = (if c <> 0.0 then 1.0 else 0.0); dead = false }
            | None -> unsupported "%s argument must reference a single relation" what)
        | _ -> unsupported "%s argument must reference a single relation" what)
    | Semiring.Dsingle, Some e -> (
        match expr_aliases resolve e with
        | [ alias ] ->
            add_slot { sr; owners = [ (alias, e) ]; coeff = sr.Semiring.one; dead = false }
        | _ -> unsupported "%s over multiple relations" what)
    | (Semiring.Dplus | Semiring.Dbool), None ->
        (* star argument: ⊗-identity per match — "does the group have a match". *)
        add_slot { sr; owners = []; coeff = sr.Semiring.one; dead = false }
    | Semiring.Dsingle, None -> unsupported "%s requires an argument" what
    | Semiring.Dtimes, _ -> assert false (* handled via slots_of_terms *)
  in
  let outputs =
    List.map
      (fun item ->
        match item with
        | Ast.Plain (e, name) -> (
            let s = gb_signature resolve vertex_of e in
            match Array.to_list gb_sigs |> List.mapi (fun i x -> (i, x))
                  |> List.find_opt (fun (_, x) -> x = s) with
            | Some (i, _) ->
                let odtype =
                  match group_by.(i) with
                  | Group_key v -> vertices.(v).vdtype
                  | Group_ann a -> a.dtype
                in
                { oname = name; okind = Out_group i; odtype }
            | None -> unsupported "SELECT column %s is not in GROUP BY" name)
        | Ast.Aggregate (agg, arg, name) -> (
            Option.iter (check_no_keys_in_aggregate resolve) arg;
            match (agg, arg) with
            | Ast.Count, _ ->
                { oname = name; okind = Out_sum [ get_count_slot () ]; odtype = Dtype.Int }
            | Ast.Sum, Some e ->
                {
                  oname = name;
                  okind = Out_sum (slots_of_terms Semiring.sum_product (decompose resolve e));
                  odtype = Dtype.Float;
                }
            | Ast.Avg, Some e ->
                (* AVG is the (sum, count) product semiring: two (+,×)
                   slots finalized as their quotient. *)
                let sums = slots_of_terms Semiring.sum_product (decompose resolve e) in
                { oname = name; okind = Out_avg (sums, get_count_slot ()); odtype = Dtype.Float }
            | Ast.Min, Some _ ->
                let j = fold_slot Semiring.min_times arg "MIN" in
                { oname = name; okind = Out_fold j; odtype = Dtype.Float }
            | Ast.Max, Some _ ->
                let j = fold_slot Semiring.max_times arg "MAX" in
                { oname = name; okind = Out_fold j; odtype = Dtype.Float }
            | Ast.Min_plus, _ ->
                let j = fold_slot Semiring.min_plus arg "MIN_PLUS" in
                { oname = name; okind = Out_fold j; odtype = Dtype.Float }
            | Ast.Reaches, _ ->
                let j = fold_slot Semiring.bool_or_and arg "REACHES" in
                { oname = name; okind = Out_fold j; odtype = Dtype.Int }
            | Ast.Fold srname, _ -> (
                match Semiring.find srname with
                | None ->
                    unsupported "unknown semiring %S (registered: %s)" srname
                      (String.concat ", " (Semiring.names ()))
                | Some sr -> (
                    match (sr.Semiring.decomp, arg) with
                    | Semiring.Dtimes, Some e ->
                        {
                          oname = name;
                          okind = Out_sum (slots_of_terms sr (decompose resolve e));
                          odtype = Dtype.Float;
                        }
                    | Semiring.Dtimes, None ->
                        (* ⊕-fold of ⊗-identity per match (COUNT generalized). *)
                        let j =
                          add_slot
                            { sr; owners = []; coeff = sr.Semiring.one; dead = false }
                        in
                        { oname = name; okind = Out_sum [ j ]; odtype = Dtype.Float }
                    | (Semiring.Dplus | Semiring.Dsingle), _ ->
                        let what = Printf.sprintf "agg('%s', ...)" srname in
                        let j = fold_slot sr arg what in
                        { oname = name; okind = Out_fold j; odtype = Dtype.Float }
                    | Semiring.Dbool, _ ->
                        let what = Printf.sprintf "agg('%s', ...)" srname in
                        let j = fold_slot sr arg what in
                        { oname = name; okind = Out_fold j; odtype = Dtype.Int }))
            | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
                unsupported "%s requires an argument" name))
      q.Ast.select
  in

  (* Without attribute elimination, unreferenced numeric annotations are
     evaluated into dead slots: the engine pays for scanning them. *)
  if not attribute_elimination then begin
    let referenced = Hashtbl.create 32 in
    let note_cols cols = List.iter (fun c -> let r = resolve c in Hashtbl.replace referenced (r.ralias, r.rcol) ()) cols in
    List.iter
      (function
        | Ast.Plain (e, _) -> note_cols (Ast.expr_columns e)
        | Ast.Aggregate (_, Some e, _) -> note_cols (Ast.expr_columns e)
        | Ast.Aggregate (_, None, _) -> ())
      q.Ast.select;
    Option.iter (fun p -> note_cols (Ast.pred_columns p)) q.Ast.where;
    List.iter (fun e -> note_cols (Ast.expr_columns e)) q.Ast.group_by;
    List.iter
      (fun (alias, table) ->
        List.iter
          (fun i ->
            let c = Schema.col table.T.schema i in
            if c.Schema.dtype <> Dtype.String && not (Hashtbl.mem referenced (alias, i)) then
              ignore
                (add_slot
                   {
                     sr = Semiring.sum_product;
                     owners = [ (alias, Ast.Col { Ast.relation = Some alias; column = c.Schema.name }) ];
                     coeff = 1.0;
                     dead = true;
                   }))
          (Schema.annotation_indices table.T.schema))
      bindings
  end;

  {
    bindings;
    vertices;
    edges;
    slots = Array.of_list (List.rev !slots);
    group_by;
    outputs;
  }

let bind_params t f =
  let edges =
    Array.map
      (fun (e : edge) ->
        match e.filter with
        | None -> e
        | Some p ->
            let p' = Normalize.subst_pred f p in
            { e with filter = Some p'; eq_selected = has_eq_filter p' })
      t.edges
  in
  let slots =
    Array.map
      (fun s -> { s with owners = List.map (fun (a, e) -> (a, Normalize.subst_expr f e)) s.owners })
      t.slots
  in
  let group_by =
    Array.map
      (function
        | Group_key _ as g -> g
        | Group_ann a -> Group_ann { a with expr = Normalize.subst_expr f a.expr })
      t.group_by
  in
  { t with edges; slots; group_by }

let edge_vertex_list t = Array.map (fun (e : edge) -> e.vertices) t.edges

let pp fmt t =
  Format.fprintf fmt "@[<v>hypergraph:@,";
  Array.iteri
    (fun i v -> Format.fprintf fmt "  v%d = %s : %s@," i v.vname (Dtype.to_string v.vdtype))
    t.vertices;
  Array.iter
    (fun (e : edge) ->
      Format.fprintf fmt "  %s(%s)%s%s@," e.alias
        (String.concat ", " (List.map (fun v -> t.vertices.(v).vname) e.vertices))
        (match e.filter with Some p -> Format.asprintf " σ[%a]" Ast.pp_pred p | None -> "")
        (if e.eq_selected then " [eq-selected]" else ""))
    t.edges;
  Format.fprintf fmt "slots: %d (%d dead)@," (Array.length t.slots)
    (Array.length (Array.of_list (List.filter (fun s -> s.dead) (Array.to_list t.slots))));
  (* One line per live aggregate slot so EXPLAIN shows the semiring the
     executor folds it in. *)
  Array.iteri
    (fun j s ->
      if not s.dead then
        Format.fprintf fmt "  s%d: %s coeff=%g owners=[%s]@," j s.sr.Semiring.name s.coeff
          (String.concat "; "
             (List.map (fun (a, e) -> Format.asprintf "%s: %a" a Ast.pp_expr e) s.owners)))
    t.slots;
  Format.fprintf fmt "group by:";
  Array.iter
    (fun g ->
      match g with
      | Group_key v -> Format.fprintf fmt " key:%s" t.vertices.(v).vname
      | Group_ann a -> Format.fprintf fmt " ann:%a" Ast.pp_expr a.expr)
    t.group_by;
  Format.fprintf fmt "@]"
