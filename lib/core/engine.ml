module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Obs = Lh_obs.Obs
module Hist = Lh_obs.Hist
module Ast = Lh_sql.Ast
module Normalize = Lh_sql.Normalize

let c_rows_emitted = Obs.counter "rows.emitted"
let c_dense_hit = Obs.counter "dense_cache.hit"
let c_dense_miss = Obs.counter "dense_cache.miss"
let c_plan_hit = Obs.counter "plan_cache.hit"
let c_plan_miss = Obs.counter "plan_cache.miss"
let c_plan_evict = Obs.counter "plan_cache.evict"
let c_profile_records = Obs.counter "profile.records"
let c_slowlog_lines = Obs.counter "slowlog.lines"

(* Latency histograms (lib/obs): end-to-end plus one per pipeline phase,
   fed by [~record] hooks on the existing spans — disabled runs still pay
   only the span's single atomic load. The trie-build and BLAS-kernel
   histograms are registered by Executor / Blas_bridge; re-registering by
   name here returns the same cells. *)
let h_query = Hist.histogram "query.latency"
let h_parse = Hist.histogram "phase.parse"
let h_plan = Hist.histogram "phase.plan"
let h_bind = Hist.histogram "phase.bind"
let h_scan = Hist.histogram "phase.scan"
let h_wcoj = Hist.histogram "phase.wcoj"
let h_blas = Hist.histogram "phase.blas"
let h_finalize = Hist.histogram "phase.finalize"

(* Per-query phase durations are recovered by diffing these histograms'
   running sums around the query (the engine is single-caller per
   instance, so the delta is exactly this query's work). *)
let profile_phases =
  [
    ("parse", h_parse);
    ("plan", h_plan);
    ("bind", h_bind);
    ("trie_build", Hist.histogram "phase.trie_build");
    ("scan", h_scan);
    ("wcoj", h_wcoj);
    ("blas", h_blas);
    ("blas_kernel", Hist.histogram "phase.blas_kernel");
    ("finalize", h_finalize);
  ]

(* Fault sites covering the engine's own control points; the executor,
   storage and BLAS layers register their sites locally. *)
let fault_query = Lh_fault.Fault.site "engine.query"
let fault_prepare = Lh_fault.Fault.site "engine.prepare"
let fault_bind = Lh_fault.Fault.site "engine.bind"
let fault_plan_fill = Lh_fault.Fault.site "plan_cache.fill"

(* ------------------------------------------------------------------ *)
(* Typed errors                                                         *)

module Error = struct
  type t =
    | Parse_error of string
    | Unsupported of string
    | Unknown_table of string
    | Unknown_column of string
    | Budget_exceeded
    | Semantic of string
    | Fault_injected of string

  let to_string = function
    | Parse_error m -> Printf.sprintf "parse error: %s" m
    | Unsupported m -> Printf.sprintf "unsupported query: %s" m
    | Unknown_table n -> Printf.sprintf "unknown table %S" n
    | Unknown_column n -> Printf.sprintf "unknown column %S" n
    | Budget_exceeded -> "budget exceeded"
    | Semantic m -> m
    | Fault_injected site -> Printf.sprintf "fault injected at site %S" site

  let pp fmt e = Format.pp_print_string fmt (to_string e)
end

exception Error of Error.t

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Engine.Error: %s" (Error.to_string e))
    | _ -> None)

let err e = raise (Error e)
let semantic fmt = Printf.ksprintf (fun s -> err (Error.Semantic s)) fmt

(* Budget exceptions deliberately pass through unclassified so callers
   (e.g. the benchmark harness) can distinguish OOM from timeout; anything
   else unrecognized is a bug and propagates raw. *)
let classify = function
  | Lh_sql.Lexer.Lex_error m | Lh_sql.Parser.Parse_error m -> Some (Error.Parse_error m)
  | Logical.Unknown_table n -> Some (Error.Unknown_table n)
  | Logical.Unknown_column n -> Some (Error.Unknown_column n)
  | Logical.Unsupported_query m | Compile.Unsupported m -> Some (Error.Unsupported m)
  | Lh_fault.Fault.Injected site -> Some (Error.Fault_injected site)
  | Failure m -> Some (Error.Semantic m)
  | _ -> None

let wrap f =
  try f () with
  | Error _ as e -> raise e
  | exn -> ( match classify exn with Some e -> err e | None -> raise exn)

(* ------------------------------------------------------------------ *)

type centry = { c_plan : plan; mutable c_used : int }

and plan = {
  p_ast : Ast.query;  (** parameterized (normalized) AST *)
  p_nparams : int;
  mutable p_lq : Logical.t;  (** unbound: filters/owners may hold [Param]s *)
  mutable p_ghd : Ghd.t option;  (** [None] on the scan path (no vertices) *)
  mutable p_pnode : Executor.pnode option;
  mutable p_epoch : int;
}

(* Accumulator for the in-flight query's profile: pipeline stages fill it
   in as facts become known (normalized text, cache disposition, chosen
   path). Only allocated when telemetry is enabled. *)
type prof_acc = {
  mutable a_sql : string;
  mutable a_plan : string;
  mutable a_path : string;
  mutable a_cache : string;
  mutable a_rows_in : int;
  mutable a_rows_out : int;
}

type t = {
  cat : Catalog.t;
  mutable cfg : Config.t;
  dense_cache : (string, Blas_bridge.dense_info option) Hashtbl.t;
  trie_cache : Executor.trie_cache;
  plans : (string, centry) Hashtbl.t;  (** normalized-AST text -> plan *)
  mutable plan_tick : int;  (** logical clock for LRU eviction *)
  mutable epoch : int;  (** bumped on catalog / plan-relevant config change *)
  mutable last_prof : Profile.t option;
  mutable prof_sink : (Profile.t -> unit) option;
  mutable prof : prof_acc option;  (** in-flight accumulator *)
}

type stmt = { s_eng : t; s_sql : string; s_plan : plan }

type path = Scan_path | Wcoj_path | Blas_path

type explain = { epath : path; efhw : float option; etext : string }

let create ?(config = Config.default) () =
  {
    cat = Catalog.create ();
    cfg = config;
    dense_cache = Hashtbl.create 8;
    trie_cache = Hashtbl.create 32;
    plans = Hashtbl.create 16;
    plan_tick = 0;
    epoch = 0;
    last_prof = None;
    prof_sink = None;
    prof = None;
  }

let last_profile t = t.last_prof
let set_profile_sink t sink = t.prof_sink <- sink

let config t = t.cfg
let catalog t = t.cat

let reset_plan_cache t = Hashtbl.reset t.plans

(* Only the knobs that shape the plan itself (hypergraph, GHD, attribute
   order) invalidate cached plans. Execution-time knobs (domains, budget,
   sorted_emit, capacity) don't; blas_targeting doesn't either because the
   BLAS-vs-WCOJ dispatch is re-checked at bind time against the live
   config. *)
let plan_relevant (c : Config.t) =
  ( c.Config.attribute_elimination,
    c.Config.attr_order,
    c.Config.relax_materialized_first,
    c.Config.ghd_heuristics )

let set_config t cfg =
  let changed = plan_relevant cfg <> plan_relevant t.cfg in
  t.cfg <- cfg;
  if changed then begin
    Hashtbl.reset t.plans;
    t.epoch <- t.epoch + 1
  end

(* (Re-)registering a name invalidates cached plans/tries for it. Every
   entry point that mutates the catalog must go through this: serving a
   cached trie or plan for a replaced table would silently return stale
   rows (plans capture table values in their bindings). *)
let invalidate_caches t =
  Hashtbl.reset t.trie_cache;
  Hashtbl.reset t.dense_cache;
  Hashtbl.reset t.plans;
  t.epoch <- t.epoch + 1

let register t table =
  invalidate_caches t;
  Catalog.register t.cat table
let dict t = Catalog.dict t.cat

(* Ingest entry points wrap like the query entry points do, so an aborted
   load (bad row, injected fault) surfaces as a typed [Error] with the
   catalog unchanged: the caches are dropped up front (cheap and
   idempotent) and the table is only registered after a fully successful
   build. *)
let register_rows t ~name ~schema rows =
  wrap (fun () ->
      invalidate_caches t;
      let table = T.of_rows ~name ~schema ~dict:(Catalog.dict t.cat) rows in
      Catalog.register t.cat table;
      table)

let load_csv t ~name ~schema ?sep path =
  wrap (fun () ->
      invalidate_caches t;
      Catalog.load_csv t.cat ~name ~schema ~domains:(max 1 t.cfg.Config.domains) ?sep path)

(* Durable-checkpoint writer and loader (see Lh_durable.Store): the dump
   decodes every relation back to rows in deterministic (sorted-name)
   order; restore is a batch of ordinary registrations, so replaying a
   recovered checkpoint + WAL suffix re-encodes strings against this
   engine's dictionary exactly like the original ingests did. *)
let dump t =
  List.map (fun tbl -> (tbl.T.name, tbl.T.schema, T.to_rows tbl)) (Catalog.tables t.cat)

let restore t batches =
  List.iter
    (fun (name, schema, rows) -> ignore (register_rows t ~name ~schema rows))
    batches

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type snapshot = { snap_epoch : int; snap_cat : Catalog.t; snap_cfg : Config.t }

let epoch t = t.epoch

(* Freeze the current catalog: one deep dictionary copy, every table
   repointed at it. Table columns are immutable after construction, so the
   snapshot shares them; only the dictionary — the one structure ingest
   keeps mutating — is copied. Must be called with no ingest in flight
   (the serving layer serializes writers). *)
let snapshot t =
  let dict = Lh_storage.Dict.copy (Catalog.dict t.cat) in
  let cat = Catalog.of_dict dict in
  List.iter
    (fun name -> Catalog.register cat (T.with_dict (Catalog.find_exn t.cat name) ~dict))
    (Catalog.names t.cat);
  { snap_epoch = t.epoch; snap_cat = cat; snap_cfg = t.cfg }

let snapshot_epoch s = s.snap_epoch

(* A read-only view engine over a snapshot: private caches and a private
   catalog (so a [query_into] on one view cannot race another), sharing the
   snapshot's frozen dictionary and table buffers. The budget is cloned —
   its per-run cells are mutable and views execute concurrently. The view's
   epoch is pinned to the snapshot's, so prepared statements created on a
   view never spuriously revalidate. *)
let of_snapshot ?config snap =
  let cat = Catalog.of_dict (Catalog.dict snap.snap_cat) in
  List.iter
    (fun name -> Catalog.register cat (Catalog.find_exn snap.snap_cat name))
    (Catalog.names snap.snap_cat);
  let cfg = Option.value config ~default:snap.snap_cfg in
  let cfg = { cfg with Config.budget = Lh_util.Budget.clone cfg.Config.budget } in
  {
    cat;
    cfg;
    dense_cache = Hashtbl.create 8;
    trie_cache = Hashtbl.create 32;
    plans = Hashtbl.create 16;
    plan_tick = 0;
    epoch = snap.snap_epoch;
    last_prof = None;
    prof_sink = None;
    prof = None;
  }

let dense_info t (table : T.t) =
  let key = Printf.sprintf "%s/%d" table.T.name table.T.nrows in
  match Hashtbl.find_opt t.dense_cache key with
  | Some i ->
      Obs.incr c_dense_hit;
      i
  | None ->
      Obs.incr c_dense_miss;
      let i = Blas_bridge.dense_rect table in
      Hashtbl.replace t.dense_cache key i;
      i

(* ------------------------------------------------------------------ *)
(* Per-query profiles                                                   *)

let note_cache t tag = match t.prof with Some a -> a.a_cache <- tag | None -> ()
let note_sql t sql = match t.prof with Some a -> a.a_sql <- sql | None -> ()

let outcome_of_exn exn =
  match exn with
  | Lh_util.Budget.Timed_out | Lh_util.Budget.Out_of_memory_budget -> Profile.Budget_overrun
  | Lh_fault.Fault.Injected site | Error (Error.Fault_injected site) ->
      Profile.Injected_fault site
  | Error Error.Budget_exceeded -> Profile.Budget_overrun
  | Error e -> Profile.Typed_error (Error.to_string e)
  | exn -> (
      match classify exn with
      | Some (Error.Fault_injected site) -> Profile.Injected_fault site
      | Some e -> Profile.Typed_error (Error.to_string e)
      | None -> Profile.Typed_error (Printexc.to_string exn))

let phase_sums () =
  List.map (fun (n, h) -> (n, (Hist.snapshot h).Hist.ssum_ns)) profile_phases

(* Wraps one query execution: when telemetry is enabled, assembles a
   {!Profile.t} for every outcome (success, typed error, injected fault,
   budget overrun), records the end-to-end latency histogram, and hands
   the record to the slow-query sink when the query met the threshold.
   When disabled the cost is the single [Obs.is_enabled] load. *)
let profiled t ~sql f =
  if not (Obs.is_enabled ()) then f ()
  else begin
    let acc =
      {
        a_sql = sql;
        a_plan = "none";
        a_path = "none";
        a_cache = "none";
        a_rows_in = 0;
        a_rows_out = 0;
      }
    in
    t.prof <- Some acc;
    let cbefore = Obs.snapshot () in
    let pbefore = phase_sums () in
    let gc0 = (Gc.quick_stat ()).Gc.major_words in
    let t0 = Lh_util.Timing.monotonic_now () in
    let finish outcome =
      let total = Lh_util.Timing.monotonic_now () -. t0 in
      Hist.observe_always h_query total;
      let phases =
        List.filter_map
          (fun ((n, after), (_, before)) ->
            let d = after - before in
            if d > 0 then Some (n, float_of_int d *. 1e-9) else None)
          (List.combine (phase_sums ()) pbefore)
      in
      let counters =
        List.filter
          (fun (n, v) -> v <> 0 && not (Obs.is_gauge n))
          (Obs.diff ~before:cbefore ~after:(Obs.snapshot ()))
      in
      let p =
        {
          Profile.p_sql = acc.a_sql;
          p_plan = acc.a_plan;
          p_path = acc.a_path;
          p_cache = acc.a_cache;
          p_epoch = t.epoch;
          p_rows_in = acc.a_rows_in;
          p_rows_out = acc.a_rows_out;
          p_domains = max 1 t.cfg.Config.domains;
          p_total_s = total;
          p_phases = phases;
          p_counters = counters;
          p_gc_major_words = (Gc.quick_stat ()).Gc.major_words -. gc0;
          p_outcome = outcome;
        }
      in
      t.prof <- None;
      t.last_prof <- Some p;
      Obs.incr c_profile_records;
      match t.prof_sink with
      | Some sink when total *. 1000.0 >= t.cfg.Config.slow_log_ms ->
          Obs.incr c_slowlog_lines;
          sink p
      | _ -> ()
    in
    match f () with
    | v ->
        finish Profile.Ok_result;
        v
    | exception exn ->
        finish (outcome_of_exn exn);
        raise exn
  end

(* ------------------------------------------------------------------ *)
(* Result assembly                                                      *)

let finalize_rows (lq : Logical.t) (rows : Executor.row list) ~dict ~name =
  let n = List.length rows in
  let rows_arr = Array.of_list rows in
  let columns =
    List.map
      (fun (o : Logical.out_col) ->
        match o.Logical.okind with
        | Logical.Out_group i ->
            T.Icol (Array.init n (fun r -> rows_arr.(r).Executor.gcodes.(i)))
        | Logical.Out_sum slots ->
            (* All listed slots share one semiring (Logical guarantees it);
               the decomposed per-slot folds are ⊕-combined here. *)
            let sr = lq.Logical.slots.(List.hd slots).Logical.sr in
            let value r =
              List.fold_left
                (fun acc j -> sr.Semiring.add acc rows_arr.(r).Executor.slots.(j))
                sr.Semiring.zero slots
            in
            if o.Logical.odtype = Dtype.Int then
              T.Icol (Array.init n (fun r -> int_of_float (Float.round (value r))))
            else T.Fcol (Array.init n value)
        | Logical.Out_avg (slots, cnt) ->
            T.Fcol
              (Array.init n (fun r ->
                   let c = rows_arr.(r).Executor.slots.(cnt) in
                   if c = 0.0 then 0.0
                   else
                     List.fold_left (fun acc j -> acc +. rows_arr.(r).Executor.slots.(j)) 0.0 slots
                     /. c))
        | Logical.Out_fold j ->
            let value r = rows_arr.(r).Executor.slots.(j) in
            if o.Logical.odtype = Dtype.Int then
              T.Icol (Array.init n (fun r -> int_of_float (Float.round (value r))))
            else T.Fcol (Array.init n value))
      lq.Logical.outputs
  in
  let schema =
    Schema.create
      (List.map
         (fun (o : Logical.out_col) ->
           let kind =
             match o.Logical.okind with
             | Logical.Out_group i -> (
                 match lq.Logical.group_by.(i) with
                 | Logical.Group_key _ -> Schema.Key
                 | Logical.Group_ann _ -> Schema.Annotation)
             | Logical.Out_sum _ | Logical.Out_avg _ | Logical.Out_fold _ -> Schema.Annotation
           in
           (o.Logical.oname, o.Logical.odtype, kind))
         lq.Logical.outputs)
  in
  T.create ~name ~schema ~dict (Array.of_list columns)

(* ------------------------------------------------------------------ *)

type decided =
  | Use_scan
  | Use_blas
  | Use_wcoj of Ghd.t * Executor.pnode

let blas_eligible t lq ~span_name =
  t.cfg.Config.blas_targeting && t.cfg.Config.attribute_elimination
  && Option.is_some
       (Obs.span span_name (fun () -> Blas_bridge.match_kernel lq ~dense_of:(dense_info t)))

let decide t (lq : Logical.t) =
  if Array.length lq.Logical.vertices = 0 then Use_scan
  else if blas_eligible t lq ~span_name:"plan.blas_match" then Use_blas
  else begin
    let ghd =
      Obs.span "plan.ghd" (fun () -> Ghd.plan lq ~heuristics:t.cfg.Config.ghd_heuristics)
    in
    let dense_of (e : Logical.edge) = Option.is_some (dense_info t e.Logical.table) in
    let pnode =
      Obs.span "plan.attr_order" (fun () -> Executor.physical t.cfg lq ~dense_of ghd)
    in
    Use_wcoj (ghd, pnode)
  end

let explain_of t lq decided =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "%a@." Logical.pp lq;
  let path, fhw =
    match decided with
    | Use_scan ->
        Format.fprintf fmt "path: columnar scan (no join keys)@.";
        (Scan_path, None)
    | Use_blas ->
        Format.fprintf fmt "path: dense BLAS kernel (attribute-eliminated buffers)@.";
        (Blas_path, None)
    | Use_wcoj (ghd, pnode) ->
        Format.fprintf fmt "%a@.%a@." (Ghd.pp lq) ghd (Executor.pp_plan lq) pnode;
        (Wcoj_path, Some ghd.Ghd.fhw)
  in
  Format.pp_print_flush fmt ();
  ignore t;
  { epath = path; efhw = fhw; etext = Buffer.contents buf }

let wcoj_summary (lq : Logical.t) (ghd : Ghd.t) (pnode : Executor.pnode) =
  let names =
    List.map (fun i -> lq.Logical.vertices.(i).Logical.vname) pnode.Executor.porder
  in
  (* The leaf kernel disposition is resolved (and cached on the pnode) at
     execution time; before the first execution there is nothing to show. *)
  let kernel =
    match pnode.Executor.pkernel with
    | Some k -> Printf.sprintf " leaf=%s" (Compile.Leaf.mode_to_string k.Executor.k_mode)
    | None -> ""
  in
  (* Chosen semiring per live aggregate slot. *)
  let aggs =
    match
      Array.to_list lq.Logical.slots
      |> List.filter_map (fun (s : Logical.slot) ->
             if s.Logical.dead then None else Some s.Logical.sr.Semiring.name)
    with
    | [] -> ""
    | l -> " agg=" ^ String.concat "," l
  in
  Printf.sprintf "wcoj fhw=%.2f order=%s%s%s" ghd.Ghd.fhw (String.concat "," names) kernel aggs

let note_decided t (lq : Logical.t) decided =
  match t.prof with
  | None -> ()
  | Some a ->
      a.a_rows_in <-
        List.fold_left (fun acc (_, tb) -> acc + tb.T.nrows) 0 lq.Logical.bindings;
      (match decided with
      | Use_scan ->
          a.a_path <- "scan";
          a.a_plan <- "columnar scan"
      | Use_blas ->
          a.a_path <- "blas";
          a.a_plan <-
            (match Blas_bridge.match_kernel lq ~dense_of:(dense_info t) with
            | Some k -> Blas_bridge.describe k
            | None -> "blas")
      | Use_wcoj (ghd, pnode) ->
          a.a_path <- "wcoj";
          a.a_plan <- wcoj_summary lq ghd pnode)

let run_decided t lq decided ~name =
  note_decided t lq decided;
  let rows =
    match decided with
    | Use_scan ->
        Obs.span "execute.scan" ~record:(Hist.observe_always h_scan) (fun () ->
            Executor.run_scan t.cfg lq)
    | Use_blas ->
        Obs.span "execute.blas" ~record:(Hist.observe_always h_blas) (fun () ->
            match
              Blas_bridge.try_blas ~domains:(max 1 t.cfg.Config.domains)
                ~budget:t.cfg.Config.budget lq ~dense_of:(dense_info t)
            with
            | Some rows -> rows
            | None -> failwith "Engine: BLAS path vanished between planning and execution")
    | Use_wcoj (_, pnode) ->
        Obs.span "execute.wcoj" ~record:(Hist.observe_always h_wcoj) (fun () ->
            Executor.run t.cfg ~cache:t.trie_cache lq pnode)
  in
  (* Refresh the profile's plan line now that execution resolved the leaf
     kernel disposition onto the pnode. *)
  (match (t.prof, decided) with
  | Some a, Use_wcoj (ghd, pnode) -> a.a_plan <- wcoj_summary lq ghd pnode
  | _ -> ());
  Obs.span "finalize" ~record:(Hist.observe_always h_finalize) (fun () ->
      let result = finalize_rows lq rows ~dict:(Catalog.dict t.cat) ~name in
      Obs.add c_rows_emitted result.T.nrows;
      (match t.prof with Some a -> a.a_rows_out <- result.T.nrows | None -> ());
      result)

(* One shared pipeline so every entry point produces the same span tree:
   query (root) > parse > [normalize] > translate > plan > [bind] >
   execute.* > finalize. *)
let translate_spanned t ast =
  Obs.span "translate" (fun () ->
      Logical.translate t.cat ~attribute_elimination:t.cfg.Config.attribute_elimination ast)

(* Direct (uncached, unprepared) pipeline; used when the plan cache is
   disabled and by [explain]. *)
let run_pipeline t lq ~want_explain ~name =
  let d = Obs.span "plan" ~record:(Hist.observe_always h_plan) (fun () -> decide t lq) in
  let ex =
    if want_explain then Some (Obs.span "explain" (fun () -> explain_of t lq d)) else None
  in
  Lh_util.Budget.start t.cfg.Config.budget;
  (run_decided t lq d ~name, ex)

(* ------------------------------------------------------------------ *)
(* Prepared plans                                                       *)

(* GHD and attribute order are computed on the unbound (parameterized)
   plan: [Logical.bind_params] cannot change the hypergraph shape, so both
   stay valid for every binding. The BLAS decision does depend on bound
   filter values, so it is re-checked (cheaply) at bind time instead. *)
let plan_structures t (lq : Logical.t) =
  if Array.length lq.Logical.vertices = 0 then (None, None)
  else begin
    let ghd =
      Obs.span "plan.ghd" (fun () -> Ghd.plan lq ~heuristics:t.cfg.Config.ghd_heuristics)
    in
    let dense_of (e : Logical.edge) = Option.is_some (dense_info t e.Logical.table) in
    let pnode =
      Obs.span "plan.attr_order" (fun () -> Executor.physical t.cfg lq ~dense_of ghd)
    in
    (Some ghd, Some pnode)
  end

let make_plan t ast =
  Lh_fault.Fault.hit fault_prepare;
  let nparams =
    let ps = Ast.query_params ast in
    let n = List.length ps in
    if ps <> List.init n (fun i -> i + 1) then
      semantic "parameters must be numbered contiguously from $1 (got %s)"
        (String.concat ", " (List.map (Printf.sprintf "$%d") ps));
    n
  in
  let lq = translate_spanned t ast in
  let ghd, pnode =
    Obs.span "plan" ~record:(Hist.observe_always h_plan) (fun () -> plan_structures t lq)
  in
  { p_ast = ast; p_nparams = nparams; p_lq = lq; p_ghd = ghd; p_pnode = pnode; p_epoch = t.epoch }

(* The catalog (or a plan-shaping config knob) changed under this plan:
   transparently re-translate and re-plan against the current state. *)
let revalidate t plan =
  if plan.p_epoch <> t.epoch then begin
    let lq = translate_spanned t plan.p_ast in
    let ghd, pnode =
      Obs.span "plan" ~record:(Hist.observe_always h_plan) (fun () -> plan_structures t lq)
    in
    plan.p_lq <- lq;
    plan.p_ghd <- ghd;
    plan.p_pnode <- pnode;
    plan.p_epoch <- t.epoch
  end

let exec_plan t plan params ~want_explain ~name =
  let ngiven = List.length params in
  if ngiven <> plan.p_nparams then
    semantic "statement expects %d parameter%s, got %d" plan.p_nparams
      (if plan.p_nparams = 1 then "" else "s")
      ngiven;
  Lh_fault.Fault.hit fault_bind;
  revalidate t plan;
  let values = Array.of_list params in
  let lookup i =
    if i >= 1 && i <= Array.length values then Normalize.literal_of_value values.(i - 1)
    else semantic "no value bound for parameter $%d" i
  in
  let lq =
    Obs.span "bind" ~record:(Hist.observe_always h_bind) (fun () ->
        Logical.bind_params plan.p_lq lookup)
  in
  let d =
    if Array.length lq.Logical.vertices = 0 then Use_scan
    else if blas_eligible t lq ~span_name:"bind.blas_match" then Use_blas
    else Use_wcoj (Option.get plan.p_ghd, Option.get plan.p_pnode)
  in
  let ex =
    if want_explain then Some (Obs.span "explain" (fun () -> explain_of t lq d)) else None
  in
  Lh_util.Budget.start t.cfg.Config.budget;
  (run_decided t lq d ~name, ex)

(* ------------------------------------------------------------------ *)
(* Plan cache                                                           *)

let evict_if_full t =
  if Hashtbl.length t.plans >= max 1 t.cfg.Config.plan_cache_capacity then begin
    (* Capacity is small: a linear scan for the LRU entry is fine. *)
    let victim = ref None in
    Hashtbl.iter
      (fun key e ->
        match !victim with
        | Some (_, used) when used <= e.c_used -> ()
        | _ -> victim := Some (key, e.c_used))
      t.plans;
    match !victim with
    | Some (key, _) ->
        Hashtbl.remove t.plans key;
        Obs.incr c_plan_evict
    | None -> ()
  end

let cached_plan t ast =
  let norm, values = Obs.span "normalize" (fun () -> Normalize.lift_literals ast) in
  let key = Format.asprintf "%a" Ast.pp_query norm in
  note_sql t key;
  t.plan_tick <- t.plan_tick + 1;
  let plan =
    match Hashtbl.find_opt t.plans key with
    | Some e ->
        Obs.incr c_plan_hit;
        note_cache t "hit";
        e.c_used <- t.plan_tick;
        e.c_plan
    | None ->
        Obs.incr c_plan_miss;
        note_cache t "miss";
        evict_if_full t;
        let plan = make_plan t norm in
        (* Between building the plan and publishing it: a fault here (or
           any exception out of [make_plan] above) must leave the cache
           without a partial entry — the entry is only installed on
           success. *)
        Lh_fault.Fault.hit fault_plan_fill;
        Hashtbl.replace t.plans key { c_plan = plan; c_used = t.plan_tick };
        plan
  in
  (plan, values)

let run_query_ast t ast ~want_explain ~name =
  Lh_fault.Fault.hit fault_query;
  if Ast.max_param ast > 0 then
    semantic "query contains parameters; use Engine.prepare / Stmt.exec to bind them";
  if t.cfg.Config.plan_cache_capacity = 0 then begin
    note_cache t "bypass";
    let lq = translate_spanned t ast in
    run_pipeline t lq ~want_explain ~name
  end
  else begin
    let plan, values = cached_plan t ast in
    exec_plan t plan values ~want_explain ~name
  end

(* ------------------------------------------------------------------ *)
(* Public query entry points                                            *)

let query_ast t ast =
  wrap (fun () ->
      let sql = if Obs.is_enabled () then Format.asprintf "%a" Ast.pp_query ast else "" in
      profiled t ~sql (fun () ->
          Obs.span "query" (fun () ->
              fst (run_query_ast t ast ~want_explain:false ~name:"result"))))

let run_sql t sql ~want_explain ~name =
  profiled t ~sql (fun () ->
      Obs.span "query" (fun () ->
          let ast =
            Obs.span "parse" ~record:(Hist.observe_always h_parse) (fun () ->
                Lh_sql.Parser.parse sql)
          in
          run_query_ast t ast ~want_explain ~name))

(* The result-typed entry points are canonical: every execution funnels
   through [caught], which classifies failures exactly once. The raising
   forms ([query], [Stmt.exec], …) are thin wrappers that re-raise —
   budget exceptions pass through them raw (callers distinguish OOM from
   timeout; [test/test_fuzz.ml] holds the engine to that contract), while
   the result forms map both to [Budget_exceeded]. *)
type caught_err = Typed of Error.t | Budget of exn

let caught f =
  match wrap f with
  | v -> Ok v
  | exception Error e -> Stdlib.Error (Typed e)
  | exception ((Lh_util.Budget.Out_of_memory_budget | Lh_util.Budget.Timed_out) as exn) ->
      Stdlib.Error (Budget exn)

let unwrap = function
  | Ok v -> v
  | Stdlib.Error (Typed e) -> raise (Error e)
  | Stdlib.Error (Budget exn) -> raise exn

let to_result = function
  | Ok v -> Ok v
  | Stdlib.Error (Typed e) -> Stdlib.Error e
  | Stdlib.Error (Budget _) -> Stdlib.Error Error.Budget_exceeded

let query_caught t sql = caught (fun () -> fst (run_sql t sql ~want_explain:false ~name:"result"))
let query_result t sql = to_result (query_caught t sql)
let query t sql = unwrap (query_caught t sql)

let semirings () = Semiring.names ()

let query_into t ~name sql =
  let result = wrap (fun () -> fst (run_sql t sql ~want_explain:false ~name)) in
  register t result;
  result

let query_explain t sql =
  wrap (fun () ->
      let result, ex = run_sql t sql ~want_explain:true ~name:"result" in
      (result, Option.get ex))

let query_analyze t sql =
  wrap (fun () ->
      let (result, ex), report =
        Lh_obs.Report.with_session (fun () -> run_sql t sql ~want_explain:true ~name:"result")
      in
      (result, Option.get ex, report))

let explain t sql =
  wrap (fun () ->
      let ast = Lh_sql.Parser.parse sql in
      let lq = Logical.translate t.cat ~attribute_elimination:t.cfg.Config.attribute_elimination ast in
      explain_of t lq (decide t lq))

(* ------------------------------------------------------------------ *)
(* Prepared statements                                                  *)

let prepare_ast t ast =
  wrap (fun () ->
      Obs.span "prepare" (fun () -> { s_eng = t; s_sql = ""; s_plan = make_plan t ast }))

let prepare t sql =
  wrap (fun () ->
      Obs.span "prepare" (fun () ->
          let ast =
            Obs.span "parse" ~record:(Hist.observe_always h_parse) (fun () ->
                Lh_sql.Parser.parse sql)
          in
          { s_eng = t; s_sql = sql; s_plan = make_plan t ast }))

let prepare_result t sql = to_result (caught (fun () -> prepare t sql))

module Stmt = struct
  let sql s = s.s_sql
  let nparams s = s.s_plan.p_nparams

  let exec_caught ~name s params =
    caught (fun () ->
        profiled s.s_eng ~sql:s.s_sql (fun () ->
            Obs.span "query" (fun () ->
                note_cache s.s_eng "prepared";
                fst (exec_plan s.s_eng s.s_plan params ~want_explain:false ~name))))

  let exec ?(name = "result") s params = unwrap (exec_caught ~name s params)
  let exec_result ?(name = "result") s params = to_result (exec_caught ~name s params)

  let exec_analyze ?(name = "result") s params =
    wrap (fun () ->
        let result, report =
          Lh_obs.Report.with_session (fun () ->
              profiled s.s_eng ~sql:s.s_sql (fun () ->
                  Obs.span "query" (fun () ->
                      note_cache s.s_eng "prepared";
                      fst (exec_plan s.s_eng s.s_plan params ~want_explain:false ~name))))
        in
        (result, report))
end

(* ------------------------------------------------------------------ *)
(* Iterative queries (graph workloads over the SpMV loop)               *)

type merge = Replace | Accumulate of string

(* Key columns of a result table are its [Schema.Key] columns (int codes);
   everything else is a value column, read as floats for merging. *)
let split_cols (tbl : T.t) =
  let n = Schema.ncols tbl.T.schema in
  let keys = ref [] and vals = ref [] in
  for i = n - 1 downto 0 do
    if (Schema.col tbl.T.schema i).Schema.kind = Schema.Key then keys := i :: !keys
    else vals := i :: !vals
  done;
  (!keys, !vals)

let key_reader (tbl : T.t) i =
  match tbl.T.cols.(i) with
  | T.Icol a -> fun r -> a.(r)
  | T.Fcol _ ->
      semantic "iterate: float-typed key column %S" (Schema.col tbl.T.schema i).Schema.name

let float_reader (tbl : T.t) i =
  match tbl.T.cols.(i) with
  | T.Icol a -> fun r -> float_of_int a.(r)
  | T.Fcol a -> fun r -> a.(r)

let table_map (tbl : T.t) kidx vidx =
  let h = Hashtbl.create (max 16 (2 * tbl.T.nrows)) in
  let krs = List.map (key_reader tbl) kidx in
  let vrs = List.map (float_reader tbl) vidx in
  for r = 0 to tbl.T.nrows - 1 do
    let k = List.map (fun f -> f r) krs in
    let v = Array.of_list (List.map (fun f -> f r) vrs) in
    Hashtbl.replace h k v
  done;
  h

let map_table ~name ~schema ~dict kidx vidx m =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) m [] |> List.sort compare in
  let n = List.length keys in
  let ka = Array.of_list keys in
  let cols = Array.make (Schema.ncols schema) (T.Icol [||]) in
  List.iteri
    (fun pos i -> cols.(i) <- T.Icol (Array.init n (fun r -> List.nth ka.(r) pos)))
    kidx;
  List.iteri
    (fun pos i ->
      let get r = (Hashtbl.find m ka.(r)).(pos) in
      cols.(i) <-
        (if (Schema.col schema i).Schema.dtype = Dtype.Float then T.Fcol (Array.init n get)
         else T.Icol (Array.init n (fun r -> int_of_float (Float.round (get r))))))
    vidx;
  T.create ~name ~schema ~dict cols

(* Merge one round's rows into the carried state, tracking the largest
   per-cell movement (infinite when the key sets differ) so the caller can
   test convergence against [tolerance]. *)
let merge_round ~how ~dict ~name (old_t : T.t) (new_t : T.t) =
  if Schema.ncols new_t.T.schema <> Schema.ncols old_t.T.schema then
    semantic "iterate: step result shape differs from the carried state (%d vs %d columns)"
      (Schema.ncols new_t.T.schema) (Schema.ncols old_t.T.schema);
  let kidx, vidx = split_cols old_t in
  let old_m = table_map old_t kidx vidx in
  let new_m = table_map new_t kidx vidx in
  let delta = ref 0.0 in
  let bump d = if d > !delta then delta := d in
  let out =
    match how with
    | `Replace ->
        Hashtbl.iter
          (fun k (v : float array) ->
            match Hashtbl.find_opt old_m k with
            | Some ov -> Array.iteri (fun j x -> bump (Float.abs (x -. ov.(j)))) v
            | None -> bump Float.infinity)
          new_m;
        Hashtbl.iter (fun k _ -> if not (Hashtbl.mem new_m k) then bump Float.infinity) old_m;
        new_m
    | `Acc (sr : Semiring.t) ->
        Hashtbl.iter
          (fun k (v : float array) ->
            match Hashtbl.find_opt old_m k with
            | Some ov ->
                let merged = Array.mapi (fun j x -> sr.Semiring.add ov.(j) x) v in
                Array.iteri (fun j x -> bump (Float.abs (x -. ov.(j)))) merged;
                Hashtbl.replace old_m k merged
            | None ->
                bump Float.infinity;
                Hashtbl.replace old_m k v)
          new_m;
        old_m
  in
  (map_table ~name ~schema:old_t.T.schema ~dict kidx vidx out, !delta)

let iterate ?(max_rounds = 100) ?(tolerance = 0.0) ?(merge = Replace) t ~name ~init ~step =
  wrap (fun () ->
      if max_rounds < 1 then semantic "iterate: max_rounds must be positive";
      let how =
        match merge with
        | Replace -> `Replace
        | Accumulate srname -> (
            match Semiring.find srname with
            | Some sr -> `Acc sr
            | None ->
                semantic "iterate: unknown semiring %S (registered: %s)" srname
                  (String.concat ", " (Semiring.names ())))
      in
      let cur = ref (query_into t ~name init) in
      let stmt = prepare t step in
      let rounds = ref 0 in
      let converged = ref false in
      while (not !converged) && !rounds < max_rounds do
        incr rounds;
        let next = Stmt.exec ~name stmt [] in
        let merged, delta = merge_round ~how ~dict:(Catalog.dict t.cat) ~name !cur next in
        register t merged;
        cur := merged;
        if delta <= tolerance then converged := true
      done;
      (!cur, !rounds))
