module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Obs = Lh_obs.Obs

let c_rows_emitted = Obs.counter "rows.emitted"
let c_dense_hit = Obs.counter "dense_cache.hit"
let c_dense_miss = Obs.counter "dense_cache.miss"

type t = {
  cat : Catalog.t;
  mutable cfg : Config.t;
  dense_cache : (string, Blas_bridge.dense_info option) Hashtbl.t;
  trie_cache : Executor.trie_cache;
}

type path = Scan_path | Wcoj_path | Blas_path

type explain = { epath : path; efhw : float option; etext : string }

let create ?(config = Config.default) () =
  {
    cat = Catalog.create ();
    cfg = config;
    dense_cache = Hashtbl.create 8;
    trie_cache = Hashtbl.create 32;
  }

let config t = t.cfg
let set_config t cfg = t.cfg <- cfg
let catalog t = t.cat

(* (Re-)registering a name invalidates cached plans/tries for it. Every
   entry point that mutates the catalog must go through this: serving a
   cached trie for a replaced table would silently return stale rows. *)
let invalidate_caches t =
  Hashtbl.reset t.trie_cache;
  Hashtbl.reset t.dense_cache

let register t table =
  invalidate_caches t;
  Catalog.register t.cat table
let dict t = Catalog.dict t.cat

let register_rows t ~name ~schema rows =
  invalidate_caches t;
  let table = T.of_rows ~name ~schema ~dict:(Catalog.dict t.cat) rows in
  Catalog.register t.cat table;
  table

let load_csv t ~name ~schema ?sep path =
  invalidate_caches t;
  Catalog.load_csv t.cat ~name ~schema ~domains:(max 1 t.cfg.Config.domains) ?sep path

let dense_info t (table : T.t) =
  let key = Printf.sprintf "%s/%d" table.T.name table.T.nrows in
  match Hashtbl.find_opt t.dense_cache key with
  | Some i ->
      Obs.incr c_dense_hit;
      i
  | None ->
      Obs.incr c_dense_miss;
      let i = Blas_bridge.dense_rect table in
      Hashtbl.replace t.dense_cache key i;
      i

(* ------------------------------------------------------------------ *)
(* Result assembly                                                      *)

let finalize_rows (lq : Logical.t) (rows : Executor.row list) ~dict ~name =
  let n = List.length rows in
  let rows_arr = Array.of_list rows in
  let columns =
    List.map
      (fun (o : Logical.out_col) ->
        match o.Logical.okind with
        | Logical.Out_group i ->
            T.Icol (Array.init n (fun r -> rows_arr.(r).Executor.gcodes.(i)))
        | Logical.Out_sum slots ->
            let value r =
              List.fold_left (fun acc j -> acc +. rows_arr.(r).Executor.slots.(j)) 0.0 slots
            in
            if o.Logical.odtype = Dtype.Int then
              T.Icol (Array.init n (fun r -> int_of_float (Float.round (value r))))
            else T.Fcol (Array.init n value)
        | Logical.Out_avg (slots, cnt) ->
            T.Fcol
              (Array.init n (fun r ->
                   let c = rows_arr.(r).Executor.slots.(cnt) in
                   if c = 0.0 then 0.0
                   else
                     List.fold_left (fun acc j -> acc +. rows_arr.(r).Executor.slots.(j)) 0.0 slots
                     /. c))
        | Logical.Out_minmax j -> T.Fcol (Array.init n (fun r -> rows_arr.(r).Executor.slots.(j))))
      lq.Logical.outputs
  in
  let schema =
    Schema.create
      (List.map
         (fun (o : Logical.out_col) ->
           let kind =
             match o.Logical.okind with
             | Logical.Out_group i -> (
                 match lq.Logical.group_by.(i) with
                 | Logical.Group_key _ -> Schema.Key
                 | Logical.Group_ann _ -> Schema.Annotation)
             | Logical.Out_sum _ | Logical.Out_avg _ | Logical.Out_minmax _ -> Schema.Annotation
           in
           (o.Logical.oname, o.Logical.odtype, kind))
         lq.Logical.outputs)
  in
  T.create ~name ~schema ~dict (Array.of_list columns)

(* ------------------------------------------------------------------ *)

type decided =
  | Use_scan
  | Use_blas
  | Use_wcoj of Ghd.t * Executor.pnode

let decide t (lq : Logical.t) =
  if Array.length lq.Logical.vertices = 0 then Use_scan
  else begin
    let blas_ok =
      t.cfg.Config.blas_targeting && t.cfg.Config.attribute_elimination
      && Option.is_some
           (Obs.span "plan.blas_match" (fun () ->
                Blas_bridge.match_kernel lq ~dense_of:(dense_info t)))
    in
    if blas_ok then Use_blas
    else begin
      let ghd =
        Obs.span "plan.ghd" (fun () -> Ghd.plan lq ~heuristics:t.cfg.Config.ghd_heuristics)
      in
      let dense_of (e : Logical.edge) = Option.is_some (dense_info t e.Logical.table) in
      let pnode =
        Obs.span "plan.attr_order" (fun () -> Executor.physical t.cfg lq ~dense_of ghd)
      in
      Use_wcoj (ghd, pnode)
    end
  end

let explain_of t lq decided =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "%a@." Logical.pp lq;
  let path, fhw =
    match decided with
    | Use_scan ->
        Format.fprintf fmt "path: columnar scan (no join keys)@.";
        (Scan_path, None)
    | Use_blas ->
        Format.fprintf fmt "path: dense BLAS kernel (attribute-eliminated buffers)@.";
        (Blas_path, None)
    | Use_wcoj (ghd, pnode) ->
        Format.fprintf fmt "%a@.%a@." (Ghd.pp lq) ghd (Executor.pp_plan lq) pnode;
        (Wcoj_path, Some ghd.Ghd.fhw)
  in
  Format.pp_print_flush fmt ();
  ignore t;
  { epath = path; efhw = fhw; etext = Buffer.contents buf }

let run_decided t lq decided =
  let rows =
    match decided with
    | Use_scan -> Obs.span "execute.scan" (fun () -> Executor.run_scan t.cfg lq)
    | Use_blas ->
        Obs.span "execute.blas" (fun () ->
            match
              Blas_bridge.try_blas ~domains:(max 1 t.cfg.Config.domains) lq
                ~dense_of:(dense_info t)
            with
            | Some rows -> rows
            | None -> failwith "Engine: BLAS path vanished between planning and execution")
    | Use_wcoj (_, pnode) ->
        Obs.span "execute.wcoj" (fun () -> Executor.run t.cfg ~cache:t.trie_cache lq pnode)
  in
  Obs.span "finalize" (fun () ->
      let result = finalize_rows lq rows ~dict:(Catalog.dict t.cat) ~name:"result" in
      Obs.add c_rows_emitted result.T.nrows;
      result)

(* One shared pipeline so every entry point produces the same span tree:
   query (root) > parse > translate > plan > execute.* > finalize. *)
let translate_spanned t ast =
  Obs.span "translate" (fun () ->
      Logical.translate t.cat ~attribute_elimination:t.cfg.Config.attribute_elimination ast)

let run_pipeline t lq ~want_explain =
  let d = Obs.span "plan" (fun () -> decide t lq) in
  let ex =
    if want_explain then Some (Obs.span "explain" (fun () -> explain_of t lq d)) else None
  in
  Lh_util.Budget.start t.cfg.Config.budget;
  (run_decided t lq d, ex)

let query_ast t ast =
  Obs.span "query" (fun () ->
      let lq = translate_spanned t ast in
      fst (run_pipeline t lq ~want_explain:false))

let run_sql t sql ~want_explain =
  Obs.span "query" (fun () ->
      let ast = Obs.span "parse" (fun () -> Lh_sql.Parser.parse sql) in
      let lq = translate_spanned t ast in
      run_pipeline t lq ~want_explain)

let query t sql = fst (run_sql t sql ~want_explain:false)

let query_explain t sql =
  let result, ex = run_sql t sql ~want_explain:true in
  (result, Option.get ex)

let query_analyze t sql =
  let (result, ex), report = Lh_obs.Report.with_session (fun () -> run_sql t sql ~want_explain:true) in
  (result, Option.get ex, report)

let explain t sql =
  let ast = Lh_sql.Parser.parse sql in
  let lq = Logical.translate t.cat ~attribute_elimination:t.cfg.Config.attribute_elimination ast in
  explain_of t lq (decide t lq)
