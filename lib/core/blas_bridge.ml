module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Obs = Lh_obs.Obs
open Lh_sql

let c_dispatch = Obs.counter "blas.dispatch"
let g_domains = Obs.gauge "exec.domains_used"
let fault_dispatch = Lh_fault.Fault.site "blas.dispatch"
let h_kernel = Lh_obs.Hist.histogram "phase.blas_kernel"

type dense_info = { dkey_cols : int list; dims : int array }

let dense_rect (table : T.t) =
  let keys = Schema.key_indices table.T.schema in
  match keys with
  | ([ _ ] | [ _; _ ]) when table.T.nrows > 0 ->
      let cols = List.map (T.icol table) keys in
      let dims =
        List.map (fun c -> 1 + Array.fold_left max 0 c) cols |> Array.of_list
      in
      let product = Array.fold_left ( * ) 1 dims in
      if product <> table.T.nrows then None
      else begin
        (* Every grid point must occur exactly once. *)
        let seen = Bytes.make product '\000' in
        let ok = ref true in
        (try
           for r = 0 to table.T.nrows - 1 do
             let idx =
               List.fold_left2 (fun acc c d -> (acc * d) + c.(r)) 0 cols (Array.to_list dims)
             in
             if Bytes.get seen idx <> '\000' then begin
               ok := false;
               raise Exit
             end;
             Bytes.set seen idx '\001'
           done
         with Exit -> ());
        if !ok then Some { dkey_cols = keys; dims } else None
      end
  | _ -> None

(* Extract the float annotation buffer of [edge] as a dense matrix with
   rows indexed by [row_v] and columns by [col_v] (vertex ids). *)
let to_dense (edge : Logical.edge) (info : dense_info) ~value_col ~row_v ~col_v =
  let table = edge.Logical.table in
  let values = T.fcol table value_col in
  let rcol = List.assoc row_v edge.Logical.vertex_cols in
  let ccol = List.assoc col_v edge.Logical.vertex_cols in
  let extent c =
    let rec go ks ds = match (ks, ds) with
      | k :: _, d :: _ when k = c -> d
      | _ :: ks, _ :: ds -> go ks ds
      | _ -> invalid_arg "Blas_bridge.to_dense: column not a key"
    in
    go info.dkey_cols (Array.to_list info.dims)
  in
  let rows = extent rcol and cols = extent ccol in
  (* When the table is already laid out row-major in (row, col) order the
     value buffer is BLAS-compatible as-is: no data transformation. *)
  let rs = T.icol table rcol and cs = T.icol table ccol in
  let row_major =
    info.dkey_cols = [ rcol; ccol ]
    && (let ok = ref true in
        (try
           for r = 0 to table.T.nrows - 1 do
             if (rs.(r) * cols) + cs.(r) <> r then begin
               ok := false;
               raise Exit
             end
           done
         with Exit -> ());
        !ok)
  in
  if row_major then Lh_blas.Dense.of_array ~rows ~cols values
  else begin
    let m = Lh_blas.Dense.create ~rows ~cols in
    for r = 0 to table.T.nrows - 1 do
      Lh_blas.Dense.set m rs.(r) cs.(r) values.(r)
    done;
    m
  end

let to_vector (edge : Logical.edge) ~value_col ~v =
  let table = edge.Logical.table in
  let values = T.fcol table value_col in
  let kcol = List.assoc v edge.Logical.vertex_cols in
  let ks = T.icol table kcol in
  let n = 1 + Array.fold_left max 0 ks in
  let out = Array.make n 0.0 in
  for r = 0 to table.T.nrows - 1 do
    out.(ks.(r)) <- values.(r)
  done;
  out

(* The value expression of one owner must be a plain float column. *)
let plain_float_col (edge : Logical.edge) = function
  | Ast.Col c -> (
      match Schema.find edge.Logical.table.T.schema c.Ast.column with
      | Some i
        when (Schema.col edge.Logical.table.T.schema i).Schema.dtype = Lh_storage.Dtype.Float
             && not (Schema.is_key edge.Logical.table.T.schema i) ->
          Some i
      | _ -> None)
  | _ -> None

type kernel =
  | Kmm of {
      e1 : Logical.edge; i1 : dense_info; c1 : int; i_v : int;
      e2 : Logical.edge; i2 : dense_info; c2 : int; j_v : int;
      k : int; first_is_i : bool;
    }
  | Kmv of { e1 : Logical.edge; i1 : dense_info; c1 : int; i_v : int; e2 : Logical.edge; c2 : int; k : int }
  | Kvm of { e1 : Logical.edge; c1 : int; e2 : Logical.edge; i2 : dense_info; c2 : int; j_v : int; k : int }

let describe kernel =
  let n (e : Logical.edge) = e.Logical.table.T.name in
  match kernel with
  | Kmm { e1; e2; _ } -> Printf.sprintf "gemm(%s, %s)" (n e1) (n e2)
  | Kmv { e1; e2; _ } -> Printf.sprintf "gemv(%s, %s)" (n e1) (n e2)
  | Kvm { e1; e2; _ } -> Printf.sprintf "gemv_t(%s, %s)" (n e1) (n e2)

let vertex_extent (edge : Logical.edge) (info : dense_info) v =
  match List.assoc_opt v edge.Logical.vertex_cols with
  | None -> None
  | Some c ->
      let rec go ks ds =
        match (ks, ds) with
        | k :: _, d :: _ when k = c -> Some d
        | _ :: ks, _ :: ds -> go ks ds
        | _ -> None
      in
      go info.dkey_cols (Array.to_list info.dims)

let match_kernel (lq : Logical.t) ~dense_of =
  let ( let* ) o f = Option.bind o f in
  let* () = if Array.length lq.Logical.edges = 2 then Some () else None in
  let e1 = lq.Logical.edges.(0) and e2 = lq.Logical.edges.(1) in
  let* () = if e1.Logical.filter = None && e2.Logical.filter = None then Some () else None in
  let* i1 = dense_of e1.Logical.table in
  let* i2 = dense_of e2.Logical.table in
  (* Exactly one SUM slot owned by both relations via plain float columns. *)
  let* slot = if Array.length lq.Logical.slots = 1 then Some lq.Logical.slots.(0) else None in
  let* () = if Semiring.is_sum_product slot.Logical.sr then Some () else None in
  let* c1 =
    let* e = List.assoc_opt e1.Logical.alias slot.Logical.owners in
    plain_float_col e1 e
  in
  let* c2 =
    let* e = List.assoc_opt e2.Logical.alias slot.Logical.owners in
    plain_float_col e2 e
  in
  let* () = if List.length slot.Logical.owners = 2 then Some () else None in
  (* All GROUP BY items are key vertices. *)
  let* gkeys =
    Array.to_list lq.Logical.group_by
    |> List.map (function Logical.Group_key v -> Some v | Logical.Group_ann _ -> None)
    |> fun l -> if List.for_all Option.is_some l then Some (List.map Option.get l) else None
  in
  let v1 = e1.Logical.vertices and v2 = e2.Logical.vertices in
  let shared = List.filter (fun v -> List.mem v v2) v1 in
  let* k = match shared with [ k ] -> Some k | _ -> None in
  let* () = if List.mem k gkeys then None else Some () in
  (* Both sides must be dense over the {e same} contraction range: a
     kernel contracts index-for-index, but the join semantics restrict to
     the intersection of the key ranges. Unequal extents fall back to the
     WCOJ path rather than compute the wrong (or no) answer. *)
  let* d1 = vertex_extent e1 i1 k in
  let* d2 = vertex_extent e2 i2 k in
  let* () = if d1 = d2 then Some () else None in
  match (List.length v1, List.length v2, gkeys) with
  | 2, 2, [ g1; g2 ] ->
      (* DMM: orientation by which edge owns which group key. *)
      let own1 = List.filter (fun v -> v <> k) v1 and own2 = List.filter (fun v -> v <> k) v2 in
      let* i_v = match own1 with [ v ] -> Some v | _ -> None in
      let* j_v = match own2 with [ v ] -> Some v | _ -> None in
      let* () =
        if List.sort compare [ g1; g2 ] = List.sort compare [ i_v; j_v ] then Some () else None
      in
      Some (Kmm { e1; i1; c1; i_v; e2; i2; c2; j_v; k; first_is_i = g1 = i_v })
  | 2, 1, [ g ] ->
      (* DMV: e1 is the matrix, e2 the vector over the shared vertex. *)
      let* i_v = match List.filter (fun v -> v <> k) v1 with [ v ] -> Some v | _ -> None in
      let* () = if g = i_v then Some () else None in
      Some (Kmv { e1; i1; c1; i_v; e2; c2; k })
  | 1, 2, [ g ] ->
      (* Vector on the left: x' = vec, matrix = e2; compute y_j = Σ_k x_k B_kj. *)
      let* j_v = match List.filter (fun v -> v <> k) v2 with [ v ] -> Some v | _ -> None in
      let* () = if g = j_v then Some () else None in
      Some (Kvm { e1; c1; e2; i2; c2; j_v; k })
  | _ -> None

let execute ?(domains = 1) ?(budget = Lh_util.Budget.unlimited) kernel =
  Obs.incr c_dispatch;
  Lh_fault.Fault.hit fault_dispatch;
  Obs.set_max g_domains domains;
  let kname = match kernel with Kmm _ -> "gemm" | Kmv _ -> "gemv" | Kvm _ -> "gemv_t" in
  Obs.span "blas.kernel" ~args:[ ("kernel", kname) ]
    ~record:(Lh_obs.Hist.observe_always h_kernel)
  @@ fun () ->
  match kernel with
  | Kmm { e1; i1; c1; i_v; e2; i2; c2; j_v; k; first_is_i } ->
      let a = to_dense e1 i1 ~value_col:c1 ~row_v:i_v ~col_v:k in
      let b = to_dense e2 i2 ~value_col:c2 ~row_v:k ~col_v:j_v in
      let c = Lh_blas.Dense.gemm ~domains ~budget a b in
      (* Key production (the paper's <2% overhead): emit group codes in
         GROUP BY lexicographic order. *)
      let rows = ref [] in
      let d1 = if first_is_i then a.Lh_blas.Dense.rows else c.Lh_blas.Dense.cols in
      let d2 = if first_is_i then c.Lh_blas.Dense.cols else a.Lh_blas.Dense.rows in
      for x = d1 - 1 downto 0 do
        for y = d2 - 1 downto 0 do
          let i, j = if first_is_i then (x, y) else (y, x) in
          rows := { Executor.gcodes = [| x; y |]; slots = [| Lh_blas.Dense.get c i j |] } :: !rows
        done
      done;
      !rows
  | Kmv { e1; i1; c1; i_v; e2; c2; k } ->
      let a = to_dense e1 i1 ~value_col:c1 ~row_v:i_v ~col_v:k in
      let x = to_vector e2 ~value_col:c2 ~v:k in
      if Array.length x <> a.Lh_blas.Dense.cols then
        failwith "Blas_bridge: vector/matrix dimension mismatch";
      let y = Lh_blas.Dense.gemv ~domains ~budget a x in
      List.init (Array.length y) (fun i -> { Executor.gcodes = [| i |]; slots = [| y.(i) |] })
  | Kvm { e1; c1; e2; i2; c2; j_v; k } ->
      let b = to_dense e2 i2 ~value_col:c2 ~row_v:k ~col_v:j_v in
      let x = to_vector e1 ~value_col:c1 ~v:k in
      if Array.length x <> b.Lh_blas.Dense.rows then
        failwith "Blas_bridge: vector/matrix dimension mismatch";
      let bt = Lh_blas.Dense.transpose b in
      let y = Lh_blas.Dense.gemv ~domains ~budget bt x in
      List.init (Array.length y) (fun j -> { Executor.gcodes = [| j |]; slots = [| y.(j) |] })

let try_blas ?domains ?budget lq ~dense_of =
  Option.map (execute ?domains ?budget) (match_kernel lq ~dense_of)
