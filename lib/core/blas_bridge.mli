(** Dense-kernel targeting (§III-D, §IV-A).

    Attribute elimination stores each dense annotation in its own
    BLAS-compatible buffer, which lets LevelHeaded hand dense
    matrix–vector and matrix–matrix queries to the BLAS substrate
    ({!Lh_blas}) and only produce the output keys itself. A query is
    eligible when it is a two-relation aggregate-equi-join over
    {e completely dense} relations (keys forming a full rectangle) in the
    matvec or matmul shape with a single SUM-of-products aggregate and no
    filters. Everything else stays on the WCOJ path. *)

type dense_info = { dkey_cols : int list; dims : int array }
(** Key columns of the table and the extent of each: the table enumerates
    the complete grid [{0..dims.(0)-1} × ...]. *)

val dense_rect : Lh_storage.Table.t -> dense_info option
(** Checks (in one scan) that the key columns of the table cover a full
    zero-based rectangle exactly once. Intended to be cached by the engine. *)

type kernel
(** A matched dense kernel, ready to execute. *)

val match_kernel :
  Logical.t -> dense_of:(Lh_storage.Table.t -> dense_info option) -> kernel option
(** Eligibility check only — no computation. *)

val describe : kernel -> string
(** One-line plan summary, e.g. ["gemm(m, m)"] — kernel name and the
    operand tables. Used by per-query profile records. *)

val execute : ?domains:int -> ?budget:Lh_util.Budget.t -> kernel -> Executor.row list
(** [domains] (default 1) is forwarded to the BLAS kernels and recorded in
    the [exec.domains_used] gauge; [budget] (default unlimited) is
    checkpointed inside the kernels so a runaway product raises the budget
    exception instead of running to completion. Fault site:
    ["blas.dispatch"] fires at dispatch, before any buffer extraction. *)

val try_blas :
  ?domains:int ->
  ?budget:Lh_util.Budget.t ->
  Logical.t ->
  dense_of:(Lh_storage.Table.t -> dense_info option) ->
  Executor.row list option
(** [Some rows] when the query matched a dense kernel and was executed by
    the BLAS substrate; rows follow the GROUP BY order and include every
    output key (dense semantics: every group joins). *)
