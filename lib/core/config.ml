type attr_order_policy = Cost_based | Naive | Worst_cost

type t = {
  attribute_elimination : bool;
  attr_order : attr_order_policy;
  relax_materialized_first : bool;
  sorted_emit : bool;
  leaf_specialization : bool;
  blas_targeting : bool;
  ghd_heuristics : bool;
  domains : int;
  budget : Lh_util.Budget.t;
  plan_cache_capacity : int;
  slow_log_ms : float;
  wal_sync : Lh_durable.Wal.sync;
}

let default_plan_cache_capacity () =
  match Sys.getenv_opt "LH_PLAN_CACHE" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> 64)
  | None -> 64

let default_slow_log_ms () =
  match Sys.getenv_opt "LH_SLOW_MS" with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some ms when ms >= 0.0 && not (Float.is_nan ms) -> ms
      | _ -> infinity)
  | None -> infinity

let default =
  {
    attribute_elimination = true;
    attr_order = Cost_based;
    relax_materialized_first = true;
    sorted_emit = true;
    leaf_specialization = true;
    blas_targeting = true;
    ghd_heuristics = true;
    domains = Lh_util.Parfor.default_domains ();
    budget = Lh_util.Budget.unlimited;
    plan_cache_capacity = default_plan_cache_capacity ();
    slow_log_ms = default_slow_log_ms ();
    wal_sync = Lh_durable.Wal.default_sync ();
  }

let logicblox_like =
  {
    default with
    attribute_elimination = false;
    attr_order = Naive;
    relax_materialized_first = false;
    leaf_specialization = false;
    blas_targeting = false;
    ghd_heuristics = false;
  }
