type attr_order_policy = Cost_based | Naive | Worst_cost

type t = {
  attribute_elimination : bool;
  attr_order : attr_order_policy;
  relax_materialized_first : bool;
  sorted_emit : bool;
  blas_targeting : bool;
  ghd_heuristics : bool;
  domains : int;
  budget : Lh_util.Budget.t;
  plan_cache_capacity : int;
}

let default_plan_cache_capacity () =
  match Sys.getenv_opt "LH_PLAN_CACHE" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> 64)
  | None -> 64

let default =
  {
    attribute_elimination = true;
    attr_order = Cost_based;
    relax_materialized_first = true;
    sorted_emit = true;
    blas_targeting = true;
    ghd_heuristics = true;
    domains = Lh_util.Parfor.default_domains ();
    budget = Lh_util.Budget.unlimited;
    plan_cache_capacity = default_plan_cache_capacity ();
  }

let logicblox_like =
  {
    default with
    attribute_elimination = false;
    attr_order = Naive;
    relax_materialized_first = false;
    blas_targeting = false;
    ghd_heuristics = false;
  }
