(* First-class semirings for the aggregation layer.

   A slot's value is folded as

     acc ⊕ (coeff ⊗ f₁ ⊗ f₂ ⊗ …)

   where the fᵢ are the per-relation owned factors materialized in the
   trie annotation vectors. The classic BI/LA aggregates are instances:
   SUM/COUNT are (+,×), MIN/MAX are (min,×)/(max,×) with a single owned
   factor, AVG is the (sum,count) product semiring (two slots), and the
   graph workloads ride on (min,+) and the boolean (∨,∧).

   Two laws beyond the ring ops matter to the executor:

   - [card] says what x ⊕ x ⊕ … ⊕ x (n copies) is. [Scale f] gives the
     closed form [f x n] (for (+,×) that is x ×. n); [Idem] says the fold
     is idempotent so n copies collapse to x; [Opaque] admits no closed
     form, which disables the count-only leaf kernel and the
     multiplicity shortcut (see {!Compile.Leaf.mode} and DESIGN.md
     "Semiring execution core").
   - [decomp] says how an SQL expression under the aggregate is split
     into per-relation factors: [Dtimes] distributes ⊕ over +/- and owns
     multiplicative factors (the (+,×) path), [Dplus] owns additive
     terms (the (min,+) path: + *is* ⊗), [Dbool] booleanizes a
     single-alias argument into a 0/1 indicator, and [Dsingle] requires
     a single-alias argument taken verbatim (MIN/MAX: (min,×) does not
     distribute over × once factors can be negative). *)

type card = Scale of (float -> float -> float) | Idem | Opaque
type decomp = Dtimes | Dplus | Dbool | Dsingle

type t = {
  name : string;
  zero : float;
  one : float;
  add : float -> float -> float;
  mul : float -> float -> float;
  card : card;
  decomp : decomp;
}

let as_bool v = v <> 0.0

let sum_product =
  {
    name = "sum_product";
    zero = 0.0;
    one = 1.0;
    add = ( +. );
    mul = ( *. );
    card = Scale ( *. );
    decomp = Dtimes;
  }

let min_times =
  {
    name = "min";
    zero = infinity;
    one = 1.0;
    add = Float.min;
    mul = ( *. );
    card = Idem;
    decomp = Dsingle;
  }

let max_times =
  {
    name = "max";
    zero = neg_infinity;
    one = 1.0;
    add = Float.max;
    mul = ( *. );
    card = Idem;
    decomp = Dsingle;
  }

let min_plus =
  {
    name = "min_plus";
    zero = infinity;
    one = 0.0;
    add = Float.min;
    mul = ( +. );
    card = Idem;
    decomp = Dplus;
  }

let bool_or_and =
  {
    name = "bool_or_and";
    zero = 0.0;
    one = 1.0;
    add = (fun a b -> if as_bool a || as_bool b then 1.0 else 0.0);
    mul = (fun a b -> if as_bool a && as_bool b then 1.0 else 0.0);
    card = Idem;
    decomp = Dbool;
  }

(* Registry: named semirings selectable per query via agg('name', e).
   Top-k / argmax semirings need a widened slot state (k floats per
   slot); the product-slot mechanism AVG uses is the extension point —
   see DESIGN.md. Scalar user semirings register here directly. *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register sr =
  if Hashtbl.mem registry sr.name then
    invalid_arg (Printf.sprintf "Semiring.register: %S already registered" sr.name);
  Hashtbl.add registry sr.name sr

let () = List.iter register [ sum_product; min_times; max_times; min_plus; bool_or_and ]
let find name = Hashtbl.find_opt registry name
let names () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

(* [scalable sr] is the count-only-leaf soundness condition: folding n
   copies of x must have a closed form (Scale) or be a no-op (Idem). *)
let scalable sr = match sr.card with Scale _ | Idem -> true | Opaque -> false
let is_sum_product sr = sr.name = sum_product.name
