(** Compilation of single-relation expressions and predicates to closures
    over a table's column buffers.

    Column references are resolved by the caller-supplied [resolve]
    function (the translator knows which alias binds to which table); the
    compiled closures then read the column arrays directly, so evaluation
    per row performs no name lookups or dispatch on dtype. *)

exception Unsupported of string

val scalar :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.expr -> int -> float
(** Numeric evaluator (row -> float). Dates evaluate to their day code.
    Raises {!Unsupported} at compile time on string-typed subexpressions in
    numeric position. *)

val code :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.expr -> int -> int
(** Int-code evaluator for GROUP BY expressions: a plain int/date/string
    column yields its stored code; [EXTRACT(YEAR ...)] yields the year. *)

val code_dtype :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.expr -> Lh_storage.Dtype.t
(** The dtype the codes of {!code} decode as. *)

val pred :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.pred -> int -> bool
(** Row predicate. String columns support [=], [<>], [LIKE] and
    [NOT LIKE]; order comparisons on strings raise {!Unsupported} (the
    shared dictionary is not order-preserving). *)

val const_value : Lh_sql.Ast.expr -> Lh_storage.Dtype.value option
(** Evaluates a column-free expression to a constant, if it is one. *)

(** Prepare-time WCOJ leaf disposition: decides, from plan shape and
    trie-node statistics, how the executor's innermost loop treats the last
    attribute position. Pure, so the property tests can drive it directly;
    the executor caches the result per plan node and re-validates it
    against the bound tries each execution (plan-cache epochs rebuild the
    node, so stale dispositions cannot survive an ingest). *)
module Leaf : sig
  type mode =
    | Count
        (** the innermost position only contributes a factor n (the
            intersection cardinality): never materialize nor iterate it *)
    | Stream
        (** stream innermost matches through [Intersect.foreach_inter]
            straight into leaf aggregation *)
    | Generic  (** specialization disabled: materialize then iterate *)

  val mode_to_string : mode -> string

  val mode :
    leaf_unit:bool ->
    scalable:bool ->
    relaxed_tail:bool ->
    boundary:int option ->
    group_uses_last:bool ->
    npos:int ->
    mode
  (** [leaf_unit]: every relation whose trie ends at the innermost position
      has unit leaf groups ({!Lh_storage.Trie.t.leaf_unit});
      [scalable]: every live slot's semiring satisfies {!Semiring.scalable}
      — ⊕-folding n copies has a closed form ([Scale]) or is idempotent
      ([Idem]); an [Opaque] cardinality law makes count-only leaves
      unsound, since the factor n cannot be applied after the fold;
      [relaxed_tail]: the §V-A2 sparse-accumulator tail is active;
      [boundary]: the sorted-emit group-prefix length, when that path runs;
      [group_uses_last]: some GROUP BY source reads attribute position
      [npos - 1]. Returns [Count] when a count-only leaf is sound, else
      [Stream]; never returns [Generic] (that is the caller's
      configuration-off fallback). *)
end
