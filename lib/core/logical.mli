(** Logical queries: the result of translating a SQL AST into an annotated
    query hypergraph per the four rules of §IV-A.

    - Rule 1: every referenced key column maps to a vertex; equi-joined key
      columns map to the {e same} vertex.
    - Rule 2: key vertices absent from the output are aggregated away (the
      aggregation ordering is implicit: every slot's ⊕ kind is recorded).
    - Rule 3: aggregate expressions become relation annotations. General
      expressions are first expanded into a sum of {e terms}, each term a
      product of single-relation factors (so e.g. TPC-H Q9's
      [l_e*(1-l_d) - ps_cost*l_qty] becomes two slots); annotations of
      non-participating relations are the semiring identity, represented by
      leaf multiplicities.
    - Rule 4: non-aggregated annotations (GROUP BY columns, filter columns)
      live in the metadata container: {!gitem}s record which relation each
      one comes from, and filters stay attached to their edge.

    With attribute elimination disabled ({!Config.t}), every key column of
    every bound table becomes a vertex and every unreferenced numeric
    annotation is evaluated into a dead slot — reproducing the extra work a
    non-eliminating engine performs (Table III). *)

type vertex = { vname : string; vdtype : Lh_storage.Dtype.t }

type edge = {
  alias : string;
  table : Lh_storage.Table.t;
  vertices : int list;  (** vertex ids, in first-reference order *)
  vertex_cols : (int * int) list;  (** vertex id -> column index *)
  filter : Lh_sql.Ast.pred option;  (** conjunction of this alias's predicates *)
  eq_selected : bool;  (** carries an equality selection (weight rule, §V-B) *)
}

type gitem =
  | Group_key of int  (** GROUP BY on a key: the vertex id *)
  | Group_ann of { alias : string; expr : Lh_sql.Ast.expr; dtype : Lh_storage.Dtype.t }
      (** GROUP BY on an annotation (or EXTRACT-of-date) of one relation *)

type slot = {
  sr : Semiring.t;  (** the semiring this slot folds in *)
  owners : (string * Lh_sql.Ast.expr) list;  (** per-alias owned ⊗-factor, coefficient folded in *)
  coeff : float;  (** the ⊗-seed of every match's value (defaults to [sr.one]) *)
  dead : bool;  (** true only for the -attribute-elimination ablation *)
}

type output =
  | Out_group of int  (** index into [group_by] *)
  | Out_sum of int list
      (** ⊕-fold of slot values (SUM / COUNT / decomposed sums); all listed
          slots share one semiring *)
  | Out_avg of int list * int  (** (sum slots, count slot): the (sum,count) product semiring *)
  | Out_fold of int  (** the slot's ⊕-fold read back directly (MIN/MAX/MIN_PLUS/REACHES/agg) *)

type out_col = { oname : string; okind : output; odtype : Lh_storage.Dtype.t }

type t = {
  bindings : (string * Lh_storage.Table.t) list;
  vertices : vertex array;
  edges : edge array;
  slots : slot array;
  group_by : gitem array;
  outputs : out_col list;
}

exception Unsupported_query of string

exception Unknown_table of string
(** FROM references a table the catalog doesn't hold, or a column is
    qualified with an alias not bound in FROM. *)

exception Unknown_column of string
(** A referenced column exists in no bound relation (payload is
    ["alias.column"] when the reference was qualified). *)

val translate : Catalog.t -> attribute_elimination:bool -> Lh_sql.Ast.query -> t
(** Raises {!Unsupported_query} (with an explanation) on queries outside
    the supported subset: disjunctions spanning relations, non-equi joins,
    joins on annotation columns, Cartesian products, aggregates the term
    decomposition cannot split, ungrouped plain outputs — and
    {!Unknown_table} / {!Unknown_column} on name-resolution failures.
    Parameters ([Ast.Param]) may appear wherever literals may; the
    resulting plan is bound with {!bind_params} before execution. *)

val has_eq_filter : Lh_sql.Ast.pred -> bool
(** Whether a filter conjunction contains an equality against a constant
    (drives the GHD weight rule of §V-B). An equality against a parameter
    counts: it is guaranteed to be a constant once bound, so prepared
    plans see the same weights as direct ones. *)

val bind_params : t -> (int -> Lh_sql.Ast.expr) -> t
(** Substitute parameters in edge filters and slot owner expressions,
    recomputing each edge's [eq_selected] flag. The hypergraph shape
    (vertices, edges, slot count, outputs) is unchanged, so a GHD and
    attribute order computed on the unbound plan remain valid. *)

val edge_vertex_list : t -> int list array
(** [edges] as plain vertex-id lists — the hypergraph the GHD layer
    consumes. *)

val pp : Format.formatter -> t -> unit
