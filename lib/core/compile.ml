open Lh_sql
module T = Lh_storage.Table
module Dtype = Lh_storage.Dtype
module Schema = Lh_storage.Schema

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let col_dtype tbl i = (Schema.col tbl.T.schema i).Schema.dtype

let rec const_value = function
  | Ast.Int_lit n -> Some (Dtype.VInt n)
  | Ast.Float_lit f -> Some (Dtype.VFloat f)
  | Ast.String_lit s -> Some (Dtype.VString s)
  | Ast.Date_lit d -> Some (Dtype.VDate d)
  | Ast.Neg e -> (
      match const_value e with
      | Some (Dtype.VInt n) -> Some (Dtype.VInt (-n))
      | Some (Dtype.VFloat f) -> Some (Dtype.VFloat (-.f))
      | _ -> None)
  | Ast.Add (a, b) -> const_arith ( + ) ( +. ) a b
  | Ast.Sub (a, b) -> const_arith ( - ) ( -. ) a b
  | Ast.Mul (a, b) -> const_arith ( * ) ( *. ) a b
  | Ast.Div (a, b) -> (
      match (const_value a, const_value b) with
      | Some x, Some y -> Some (Dtype.VFloat (Dtype.numeric x /. Dtype.numeric y))
      | _ -> None)
  | Ast.Col _ | Ast.Case_when _ | Ast.Extract_year _ | Ast.Interval_day _ | Ast.Param _ -> None

and const_arith iop fop a b =
  match (const_value a, const_value b) with
  | Some (Dtype.VInt x), Some (Dtype.VInt y) -> Some (Dtype.VInt (iop x y))
  | Some x, Some y -> (
      match (x, y) with
      | (Dtype.VString _, _ | _, Dtype.VString _) -> None
      | _ -> Some (Dtype.VFloat (fop (Dtype.numeric x) (Dtype.numeric y))))
  | _ -> None

(* A per-row float reader for one column, dispatching on representation
   once at compile time. *)
let numeric_col tbl i =
  match (tbl.T.cols.(i), col_dtype tbl i) with
  | T.Fcol a, _ -> fun r -> Array.unsafe_get a r
  | T.Icol _, Dtype.String ->
      unsupported "string column %s in numeric position" (Schema.col tbl.T.schema i).Schema.name
  | T.Icol a, _ -> fun r -> float_of_int (Array.unsafe_get a r)

let rec scalar tbl ~resolve e =
  match e with
  | Ast.Col c -> numeric_col tbl (resolve c)
  | Ast.Int_lit n ->
      let v = float_of_int n in
      fun _ -> v
  | Ast.Float_lit v -> fun _ -> v
  | Ast.Date_lit d ->
      let v = float_of_int d in
      fun _ -> v
  | Ast.String_lit s -> unsupported "string literal %S in numeric position" s
  | Ast.Interval_day _ -> unsupported "unfolded interval literal"
  | Ast.Param i -> unsupported "unbound parameter $%d" i
  | Ast.Neg a ->
      let fa = scalar tbl ~resolve a in
      fun r -> -.fa r
  | Ast.Add (a, b) ->
      let fa = scalar tbl ~resolve a and fb = scalar tbl ~resolve b in
      fun r -> fa r +. fb r
  | Ast.Sub (a, b) ->
      let fa = scalar tbl ~resolve a and fb = scalar tbl ~resolve b in
      fun r -> fa r -. fb r
  | Ast.Mul (a, b) ->
      let fa = scalar tbl ~resolve a and fb = scalar tbl ~resolve b in
      fun r -> fa r *. fb r
  | Ast.Div (a, b) ->
      let fa = scalar tbl ~resolve a and fb = scalar tbl ~resolve b in
      fun r -> fa r /. fb r
  | Ast.Case_when (p, a, b) ->
      let fp = pred tbl ~resolve p in
      let fa = scalar tbl ~resolve a and fb = scalar tbl ~resolve b in
      fun r -> if fp r then fa r else fb r
  | Ast.Extract_year a -> (
      match a with
      | Ast.Col c ->
          let i = resolve c in
          if col_dtype tbl i <> Dtype.Date then unsupported "EXTRACT(YEAR) from non-date column";
          let codes = T.icol tbl i in
          fun r -> float_of_int (Lh_storage.Date.year (Array.unsafe_get codes r))
      | Ast.Date_lit d ->
          let v = float_of_int (Lh_storage.Date.year d) in
          fun _ -> v
      | _ -> unsupported "EXTRACT(YEAR) from a computed expression")

(* Predicates.  String comparison is only defined for equality and LIKE
   because the shared dictionary is not order-preserving. *)
and pred tbl ~resolve p =
  match p with
  | Ast.And (a, b) ->
      let fa = pred tbl ~resolve a and fb = pred tbl ~resolve b in
      fun r -> fa r && fb r
  | Ast.Or (a, b) ->
      let fa = pred tbl ~resolve a and fb = pred tbl ~resolve b in
      fun r -> fa r || fb r
  | Ast.Not a ->
      let fa = pred tbl ~resolve a in
      fun r -> not (fa r)
  | Ast.Between (e, lo, hi) ->
      let fe = scalar tbl ~resolve e
      and flo = scalar tbl ~resolve lo
      and fhi = scalar tbl ~resolve hi in
      fun r ->
        let v = fe r in
        flo r <= v && v <= fhi r
  | Ast.Like (e, pat) ->
      let get = string_getter tbl ~resolve e in
      fun r -> Ast.like_match ~pattern:pat (get r)
  | Ast.Not_like (e, pat) ->
      let get = string_getter tbl ~resolve e in
      fun r -> not (Ast.like_match ~pattern:pat (get r))
  | Ast.Cmp (op, a, b) ->
      if is_stringy tbl ~resolve a || is_stringy tbl ~resolve b then compile_string_cmp tbl ~resolve op a b
      else
        let fa = scalar tbl ~resolve a and fb = scalar tbl ~resolve b in
        let test =
          match op with
          | Ast.Eq -> ( = )
          | Ast.Ne -> ( <> )
          | Ast.Lt -> ( < )
          | Ast.Le -> ( <= )
          | Ast.Gt -> ( > )
          | Ast.Ge -> ( >= )
        in
        fun r -> test (fa r) (fb r)

and is_stringy tbl ~resolve = function
  | Ast.String_lit _ -> true
  | Ast.Col c -> col_dtype tbl (resolve c) = Dtype.String
  | _ -> false

and string_getter tbl ~resolve = function
  | Ast.Col c ->
      let i = resolve c in
      if col_dtype tbl i <> Dtype.String then unsupported "LIKE on a non-string column";
      let codes = T.icol tbl i in
      let dict = tbl.T.dict in
      fun r -> Lh_storage.Dict.decode dict codes.(r)
  | _ -> unsupported "LIKE on a computed expression"

and compile_string_cmp tbl ~resolve op a b =
  let eq =
    match op with
    | Ast.Eq -> true
    | Ast.Ne -> false
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
        unsupported "order comparison on strings (dictionary codes are not ordered)"
  in
  match (a, b) with
  | Ast.Col ca, Ast.Col cb ->
      let ia = resolve ca and ib = resolve cb in
      if col_dtype tbl ia <> Dtype.String || col_dtype tbl ib <> Dtype.String then
        unsupported "mixed string/non-string comparison";
      let xa = T.icol tbl ia and xb = T.icol tbl ib in
      fun r -> eq = (xa.(r) = xb.(r))
  | Ast.Col c, Ast.String_lit s | Ast.String_lit s, Ast.Col c -> (
      let i = resolve c in
      if col_dtype tbl i <> Dtype.String then unsupported "string literal compared to non-string column";
      let codes = T.icol tbl i in
      match Lh_storage.Dict.find tbl.T.dict s with
      | None -> fun _ -> not eq
      | Some code -> fun r -> eq = (codes.(r) = code))
  | Ast.String_lit s1, Ast.String_lit s2 ->
      let v = eq = String.equal s1 s2 in
      fun _ -> v
  | _ -> unsupported "string comparison on computed expressions"

let code tbl ~resolve e =
  match e with
  | Ast.Col c -> (
      let i = resolve c in
      match tbl.T.cols.(i) with
      | T.Icol a -> fun r -> Array.unsafe_get a r
      | T.Fcol _ -> unsupported "GROUP BY on a float column")
  | Ast.Extract_year (Ast.Col c) ->
      let i = resolve c in
      if col_dtype tbl i <> Dtype.Date then unsupported "EXTRACT(YEAR) from non-date column";
      let codes = T.icol tbl i in
      fun r -> Lh_storage.Date.year codes.(r)
  | _ -> unsupported "GROUP BY expression must be a column or EXTRACT(YEAR FROM column)"

let code_dtype tbl ~resolve = function
  | Ast.Col c -> col_dtype tbl (resolve c)
  | Ast.Extract_year _ -> Dtype.Int
  | _ -> unsupported "GROUP BY expression must be a column or EXTRACT(YEAR FROM column)"

(* ---------------- WCOJ leaf disposition ----------------

   The prepare-time half of kernel specialization (the rest lives in
   Executor, which caches the resolved disposition on the plan node and
   re-validates it against the bound tries' statistics each execution).
   This is a pure decision over plan/trie facts so it can be unit-tested
   without an engine. *)

module Leaf = struct
  type mode =
    | Count
        (** the innermost position only contributes a factor n (the
            intersection cardinality): never materialize nor iterate it *)
    | Stream
        (** stream innermost matches through [Intersect.foreach_inter]
            straight into leaf aggregation *)
    | Generic  (** specialization disabled: materialize then iterate *)

  let mode_to_string = function
    | Count -> "count"
    | Stream -> "stream"
    | Generic -> "generic"

  (* Count-only leaves are sound exactly when
     - every relation whose trie ends at the innermost position has unit
       leaf groups (no owned aggregate slots, no annotation codes, no
       duplicate-key multiplicity), so each of the n matches contributes
       the same combo vector;
     - every live slot's semiring can absorb that repetition: ⊕-folding n
       copies of a value must have a closed form — [Semiring.Scale f]
       slots scale by [f v n] ((+,×): v ×. n), [Idem] slots ((min,×),
       (min,+), (∨,∧)) are unaffected. An [Opaque] cardinality law has no
       closed form, so the leaf must stream ([scalable] = false);
     - the emitted group key never reads the innermost position: with a
       sorted-prefix boundary that means the boundary wraps strictly above
       it, and on the hash path no GROUP BY source may be the innermost
       position (relations with unit groups carry no annotation codes, so
       code sources cannot reach it);
     - the relaxed-tail sparse accumulator is off (it indexes output by the
       innermost value). *)
  let mode ~leaf_unit ~scalable ~relaxed_tail ~boundary ~group_uses_last ~npos =
    if npos < 1 then Generic
    else if
      leaf_unit && scalable && (not relaxed_tail) && (not group_uses_last)
      && (match boundary with Some m -> m <= npos - 1 | None -> true)
    then Count
    else Stream
end
