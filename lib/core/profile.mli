(** Per-query profile records.

    One record is assembled per query entry ({!Engine.query},
    {!Engine.Stmt.exec}, and friends) whenever telemetry is enabled —
    every outcome produces one, including typed errors, injected faults
    and budget overruns. Read the most recent one with
    {!Engine.last_profile} or stream them with
    {!Engine.set_profile_sink} (the slow-query log). *)

type outcome =
  | Ok_result
  | Typed_error of string  (** {!Engine.Error.to_string} of the failure *)
  | Injected_fault of string  (** the fault site that fired *)
  | Budget_overrun  (** {!Lh_util.Budget} timeout or memory overrun *)

type t = {
  p_sql : string;  (** normalized query text (literals lifted); the raw
                       text when normalization never ran *)
  p_plan : string;  (** one-line plan summary: GHD fhw + attribute order,
                        BLAS kernel name, or ["scan"] *)
  p_path : string;  (** ["scan"] / ["wcoj"] / ["blas"]; ["none"] when the
                        query failed before the path was decided *)
  p_cache : string;  (** ["hit"] / ["miss"] / ["bypass"] (cache disabled)
                         / ["prepared"] (statement execution) *)
  p_epoch : int;  (** engine epoch the query ran under *)
  p_rows_in : int;  (** total rows across the base tables bound *)
  p_rows_out : int;  (** result rows; [0] on failure *)
  p_domains : int;
  p_total_s : float;  (** end-to-end seconds, failures included *)
  p_phases : (string * float) list;  (** per-phase seconds, summed by name *)
  p_counters : (string * int) list;  (** non-zero counter deltas *)
  p_gc_major_words : float;  (** major-heap words allocated by the query *)
  p_outcome : outcome;
}

val outcome_label : outcome -> string
(** ["ok"] / ["error"] / ["fault"] / ["budget"] — the ["outcome"] member
    of {!to_json}. *)

val to_json : t -> Lh_obs.Json.t
(** [{"sql", "plan", "path", "plan_cache", "epoch", "rows_in",
    "rows_out", "domains", "total_seconds", "phases", "counters",
    "gc_major_words", "outcome"}] plus ["detail"] for error/fault
    outcomes. One such object per line is the slow-query log format. *)

val to_string : t -> string
(** [to_json] printed compactly — a single JSONL-ready line. *)
