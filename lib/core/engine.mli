(** The LevelHeaded engine: the public entry point of this library.

    {[
      let eng = Engine.create () in
      let matrix = Lh_storage.Schema.create [ ("i", Int, Key); ("j", Int, Key); ("v", Float, Annotation) ] in
      let _ = Engine.load_csv eng ~name:"m" ~schema:matrix "matrix.csv" in
      (* one-shot *)
      let result = Engine.query eng
        "select m1.i, m2.j, sum(m1.v * m2.v) as v from m m1, m m2 where m1.j = m2.i group by m1.i, m2.j" in
      (* plan once, execute many: *)
      let stmt = Engine.prepare eng
        "select count(*) as n from m m1, m m2 where m1.j = m2.i and m1.v > $1" in
      List.iter
        (fun threshold ->
          let r = Engine.Stmt.exec stmt [ Lh_storage.Dtype.VFloat threshold ] in
          ignore r)
        [ 0.1; 0.5; 0.9 ]
    ]}

    A query runs through: SQL parse → hypergraph translation (§IV-A) →
    either the scan path (no join keys), the BLAS path (dense LA kernels,
    §III-D), or GHD selection (§IV-B) + cost-based attribute ordering (§V)
    + the generic WCOJ interpreter. The result is an ordinary table
    registered against the same catalog, so results can be queried again
    (e.g. a matrix product fed into another multiplication).

    {2 Plan cache}

    Behind {!query}, literals are hoisted out of the AST
    ({!Lh_sql.Normalize.lift_literals}) and the parameterized plan — parse,
    hypergraph, GHD, attribute order — is cached keyed on the normalized
    AST, LRU-bounded by [Config.plan_cache_capacity] ([0] disables).
    Repeating a query shape with different constants only re-binds the
    constants; selectivity-dependent choices (BLAS-vs-WCOJ dispatch,
    equality-selection weights) are re-checked cheaply at bind time.
    Cached plans are invalidated by {!register} / {!register_rows} /
    {!load_csv}, and by {!set_config} when a plan-shaping knob changes.
    Hits/misses/evictions are observable as the [plan_cache.*] counters. *)

type t

(** Typed query failures. {!query_result} returns these; the raising entry
    points throw them wrapped in the {!Error} exception. *)
module Error : sig
  type t =
    | Parse_error of string  (** lexer or parser rejection *)
    | Unsupported of string  (** outside the supported subset (§III) *)
    | Unknown_table of string
    | Unknown_column of string
    | Budget_exceeded  (** memory or time budget hit mid-execution *)
    | Semantic of string
        (** anything else wrong with the statement: parameter arity or
            numbering, parameters in an unprepared query, execution-time
            semantic failures *)
    | Fault_injected of string
        (** an armed {!Lh_fault.Fault} site fired; the payload names the
            site. Only ever seen under fault injection (tests, the
            [lhfuzz --inject-fault] harness); the engine remains fully
            usable afterwards — re-running the same query must succeed. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end

exception Error of Error.t

type path = Scan_path | Wcoj_path | Blas_path

type explain = {
  epath : path;
  efhw : float option;  (** fractional hypertree width of the chosen GHD *)
  etext : string;  (** human-readable plan: hypergraph, GHD, attribute orders *)
}

val create : ?config:Config.t -> unit -> t
val config : t -> Config.t

val set_config : t -> Config.t -> unit
(** Swap the configuration. Flushes cached plans (and revalidates live
    prepared statements on their next execution) iff a plan-shaping knob
    changed: [attribute_elimination], [attr_order],
    [relax_materialized_first] or [ghd_heuristics]. Trie and dense-matrix
    caches are content-addressed and survive config changes. *)

val catalog : t -> Catalog.t

val register : t -> Lh_storage.Table.t -> unit
val register_rows : t -> name:string -> schema:Lh_storage.Schema.t -> Lh_storage.Dtype.value list list -> Lh_storage.Table.t
val load_csv : t -> name:string -> schema:Lh_storage.Schema.t -> ?sep:char -> string -> Lh_storage.Table.t
val dict : t -> Lh_storage.Dict.t

val dump : t -> (string * Lh_storage.Schema.t * Lh_storage.Dtype.value list list) list
(** Every relation decoded back to rows, in sorted-name order — the
    checkpoint writer's input (see [Lh_durable.Store.checkpoint]). *)

val restore :
  t -> (string * Lh_storage.Schema.t * Lh_storage.Dtype.value list list) list -> unit
(** The checkpoint/WAL loader: registers each batch in order (ordinary
    {!register_rows} semantics — whole-table replacement, so replaying a
    recovered log lands on the state at the last durable sequence).
    Raises {!Error} like any ingest. *)

(** {2 Snapshots}

    A snapshot freezes the engine's catalog at one epoch: a deep copy of
    the shared string dictionary plus the (immutable) table buffers
    repointed at it. {!of_snapshot} turns a snapshot into a read-only view
    engine with private caches, safe to query from another domain while
    the original engine keeps ingesting. This is the storage half of the
    serving layer's epoch-pinned reads (see [Lh_serve]). *)

type snapshot

val epoch : t -> int
(** Monotone generation counter: bumped by {!register} / {!register_rows}
    / {!load_csv} and by {!set_config} when a plan-shaping knob changes. *)

val snapshot : t -> snapshot
(** Freeze the current catalog. O(dictionary size); table buffers are
    shared, not copied. The caller must ensure no ingest runs during the
    freeze. *)

val snapshot_epoch : snapshot -> int
(** The {!epoch} the snapshot was taken at. *)

val of_snapshot : ?config:Config.t -> snapshot -> t
(** A view engine over a frozen snapshot: private plan/trie/dense caches,
    a private catalog, a cloned budget ({!Lh_util.Budget.clone}), and
    [epoch] pinned to {!snapshot_epoch}. Many views of the same snapshot
    may execute queries concurrently; do not ingest into a view. [config]
    defaults to the source engine's configuration at freeze time. *)

val query_result : t -> string -> (Lh_storage.Table.t, Error.t) result
(** The canonical one-shot entry point: parse and execute; the result
    table is named ["result"] (not registered). Every failure mode is a
    typed {!Error.t}; budget overruns (memory or time) map to
    [Error Budget_exceeded]. *)

val query : t -> string -> Lh_storage.Table.t
(** Raising wrapper over {!query_result}, kept for callers that prefer
    exceptions: raises {!Error} for everything wrong with the statement
    itself (see {!module-Error}), and lets the {!Lh_util.Budget}
    exceptions pass through raw so callers can tell OOM from timeout.
    [test/test_fuzz.ml] holds the engine to exactly this contract. New
    code should prefer {!query_result}. *)

val semirings : unit -> string list
(** The names registered in the {!Semiring} registry, sorted — exactly
    the names [agg('<name>', expr)] accepts in SQL and
    {!iterate}'s [Accumulate] accepts as a merge operator. Extend the set
    with {!Semiring.register} before translating queries that use it. *)

val query_into : t -> name:string -> string -> Lh_storage.Table.t
(** Like {!query} but names the result table [name] and registers it in
    the catalog so later queries can read it. Registration invalidates
    cached plans and tries (the catalog changed). *)

val query_ast : t -> Lh_sql.Ast.query -> Lh_storage.Table.t

val query_explain : t -> string -> Lh_storage.Table.t * explain

val query_analyze : t -> string -> Lh_storage.Table.t * explain * Lh_obs.Report.t
(** [EXPLAIN ANALYZE]: runs the query with telemetry enabled for exactly
    that run (the previous enabled state is restored afterwards) and
    returns the result, the plan, and a telemetry report — per-phase
    span tree, counter deltas (trie-cache hits/misses, intersections,
    rows emitted, …) and gauges. Render with {!Lh_obs.Report.to_text},
    {!Lh_obs.Report.metrics_json} or {!Lh_obs.Report.chrome_trace}. *)

val explain : t -> string -> explain
(** Plan without executing (the BLAS/scan decision is still reported). *)

(** {2 Prepared statements} *)

type stmt
(** A statement prepared against one engine: parsed, translated to a
    hypergraph, GHD-decomposed and attribute-ordered exactly once.
    Executing it only binds parameter values (re-checking the cheap
    selectivity-dependent decisions) and runs. A statement survives
    catalog and config changes: it transparently re-plans when the engine
    state it was prepared under has moved on. *)

val prepare : t -> string -> stmt
(** Parse and plan a parameterized statement. Parameters are written
    [$1], [$2], … (or [?], numbered left to right; the two styles cannot
    be mixed) and may appear wherever a literal may. Indices must be
    contiguous from [$1]. Raises {!Error} like {!query}. *)

val prepare_result : t -> string -> (stmt, Error.t) result
(** Non-raising variant of {!prepare}: the canonical form for callers on
    the result-typed API. *)

val prepare_ast : t -> Lh_sql.Ast.query -> stmt

module Stmt : sig
  val sql : stmt -> string
  (** The source text (empty for {!prepare_ast}). *)

  val nparams : stmt -> int

  val exec_result :
    ?name:string -> stmt -> Lh_storage.Dtype.value list -> (Lh_storage.Table.t, Error.t) result
  (** The canonical prepared-execution entry point: bind the parameter
      values (positionally: the i-th value binds [$i]) and execute.
      Arity mismatches surface as [Error (Semantic _)]; budget overruns
      as [Error Budget_exceeded]. [name] names the result table (default
      ["result"]; the result is not registered). *)

  val exec : ?name:string -> stmt -> Lh_storage.Dtype.value list -> Lh_storage.Table.t
  (** Raising wrapper over {!exec_result}: raises {!Error} ([Semantic])
      on arity mismatch and lets budget exceptions pass through raw,
      mirroring {!val:query}. New code should prefer {!exec_result}. *)

  val exec_analyze :
    ?name:string -> stmt -> Lh_storage.Dtype.value list -> Lh_storage.Table.t * Lh_obs.Report.t
  (** {!exec} with telemetry, like {!query_analyze}. The report's span
      tree shows [bind] instead of [translate]/[plan]: no planning
      happens on a prepared execution. *)
end

val reset_plan_cache : t -> unit
(** Drop every cached plan (counters are untouched). Prepared statements
    are unaffected. Meant for benchmarks that measure cold planning. *)

(** {2 Iterative queries}

    Semiring aggregates make one WCOJ pass compute a relaxation step
    (min-plus SpMV for shortest paths, boolean SpMV for reachability, a
    plain SpMV for power iteration); {!iterate} drives the fixpoint loop
    around it, reusing the engine's own SpMV machinery each round. *)

type merge =
  | Replace  (** the step result becomes the new state (power iteration) *)
  | Accumulate of string
      (** named semiring: key-wise ⊕-merge of the step result into the
          carried state — ["min_plus"] for Bellman-Ford style relaxation,
          ["bool_or_and"] for BFS frontiers. Unknown names are a
          [Semantic] error listing {!semirings}. *)

val iterate :
  ?max_rounds:int ->
  ?tolerance:float ->
  ?merge:merge ->
  t ->
  name:string ->
  init:string ->
  step:string ->
  Lh_storage.Table.t * int
(** [iterate t ~name ~init ~step] registers the result of [init] as
    [name], then repeatedly executes [step] (a query reading [name],
    prepared once and re-executed per round) and merges its rows into the
    state per [merge] (default [Replace]), re-registering [name] after
    every round. Rows are keyed by the state's [Schema.Key] columns; the
    loop stops when the largest per-cell movement is at most [tolerance]
    (default [0.]; a key appearing or disappearing counts as infinite
    movement) or after [max_rounds] (default [100]) rounds. Returns the
    fixpoint table and the number of [step] executions. The state table
    stays registered under [name] afterwards. Raises like {!query}. *)

(** {2 Per-query profiles}

    When telemetry is enabled ({!Lh_obs.Obs.set_enabled}, or implicitly
    inside {!query_analyze} / {!Stmt.exec_analyze}), every query entry
    point assembles one {!Profile.t} — for successes and for every
    failure mode — and records the end-to-end latency in the
    ["query.latency"] histogram plus the per-phase histograms
    (["phase.parse"], ["phase.plan"], ["phase.bind"],
    ["phase.trie_build"], ["phase.wcoj"], ["phase.blas"], …). When
    telemetry is disabled, the profile machinery costs one atomic load
    per query. *)

val last_profile : t -> Profile.t option
(** The profile of the most recent query execution on this engine, if
    any was recorded (i.e. telemetry was enabled during it). *)

val set_profile_sink : t -> (Profile.t -> unit) option -> unit
(** Install (or clear) the slow-query sink: profiles of queries whose
    end-to-end latency is at least [Config.slow_log_ms] milliseconds are
    passed to the sink — failures included. Serialize with
    {!Profile.to_string} for a JSONL slow-query log. The sink runs on
    the querying thread; keep it cheap and don't query the engine from
    inside it. *)
