(** The LevelHeaded engine: the public entry point of this library.

    {[
      let eng = Engine.create () in
      let matrix = Lh_storage.Schema.create [ ("i", Int, Key); ("j", Int, Key); ("v", Float, Annotation) ] in
      let _ = Engine.load_csv eng ~name:"m" ~schema:matrix "matrix.csv" in
      let result = Engine.query eng
        "select m1.i, m2.j, sum(m1.v * m2.v) as v from m m1, m m2 where m1.j = m2.i group by m1.i, m2.j"
    ]}

    A query runs through: SQL parse → hypergraph translation (§IV-A) →
    either the scan path (no join keys), the BLAS path (dense LA kernels,
    §III-D), or GHD selection (§IV-B) + cost-based attribute ordering (§V)
    + the generic WCOJ interpreter. The result is an ordinary table
    registered against the same catalog, so results can be queried again
    (e.g. a matrix product fed into another multiplication). *)

type t

type path = Scan_path | Wcoj_path | Blas_path

type explain = {
  epath : path;
  efhw : float option;  (** fractional hypertree width of the chosen GHD *)
  etext : string;  (** human-readable plan: hypergraph, GHD, attribute orders *)
}

val create : ?config:Config.t -> unit -> t
val config : t -> Config.t
val set_config : t -> Config.t -> unit
val catalog : t -> Catalog.t

val register : t -> Lh_storage.Table.t -> unit
val register_rows : t -> name:string -> schema:Lh_storage.Schema.t -> Lh_storage.Dtype.value list list -> Lh_storage.Table.t
val load_csv : t -> name:string -> schema:Lh_storage.Schema.t -> ?sep:char -> string -> Lh_storage.Table.t
val dict : t -> Lh_storage.Dict.t

val query : t -> string -> Lh_storage.Table.t
(** Parse and execute; the result table is named ["result"] (not
    registered). Raises [Lh_sql.Lexer.Lex_error] or
    [Lh_sql.Parser.Parse_error] on malformed input,
    {!Logical.Unsupported_query} or {!Compile.Unsupported} on queries
    outside the supported subset, the {!Lh_util.Budget} exceptions when
    the configured budget is exceeded, and [Failure] for semantic errors
    discovered during execution (unknown table or column, aggregated
    keys, ...). [test/test_fuzz.ml] holds the engine to exactly this
    list. *)

val query_ast : t -> Lh_sql.Ast.query -> Lh_storage.Table.t

val query_explain : t -> string -> Lh_storage.Table.t * explain

val query_analyze : t -> string -> Lh_storage.Table.t * explain * Lh_obs.Report.t
(** [EXPLAIN ANALYZE]: runs the query with telemetry enabled for exactly
    that run (the previous enabled state is restored afterwards) and
    returns the result, the plan, and a telemetry report — per-phase
    span tree, counter deltas (trie-cache hits/misses, intersections,
    rows emitted, …) and gauges. Render with {!Lh_obs.Report.to_text},
    {!Lh_obs.Report.metrics_json} or {!Lh_obs.Report.chrome_trace}. *)

val explain : t -> string -> explain
(** Plan without executing (the BLAS/scan decision is still reported). *)
