(** Table registry of one engine instance. All tables share one string
    dictionary so string equi-joins compare int codes. *)

type t

val create : unit -> t

val of_dict : Lh_storage.Dict.t -> t
(** Empty catalog around an existing dictionary — the snapshot constructor:
    tables repointed to [dict] (see {!Lh_storage.Table.with_dict}) pass
    {!register}'s identity check. *)

val dict : t -> Lh_storage.Dict.t

val register : t -> Lh_storage.Table.t -> unit
(** Replaces any previous table of the same name. Raises [Failure] when the
    table was built against a different dictionary. *)

val find : t -> string -> Lh_storage.Table.t option
val find_exn : t -> string -> Lh_storage.Table.t
val names : t -> string list

val tables : t -> Lh_storage.Table.t list
(** Every registered table, in {!names} (sorted) order — the
    deterministic enumeration the durable checkpoint writer snapshots. *)

val load_csv :
  t ->
  name:string ->
  schema:Lh_storage.Schema.t ->
  ?domains:int ->
  ?sep:char ->
  string ->
  Lh_storage.Table.t
(** Ingest a delimited file and register the result. [domains] is forwarded
    to {!Lh_storage.Table.load_csv}. *)
