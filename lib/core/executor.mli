(** Physical planning and execution of GHD query plans.

    Physical planning walks the chosen GHD top-down, asking the §V
    optimizer for each node's attribute order (materialized attributes are
    the interface with the parent, or the GROUP BY key vertices at the
    root, and the chosen relative order of materialized attributes is
    propagated as the global order).

    Execution is Yannakakis-style and bottom-up: every child bag runs the
    generic WCOJ interpreter over its relations' tries and materializes a
    derived relation keyed by its interface, carrying all partial aggregate
    slots, its GROUP BY annotation codes and a multiplicity; the parent
    treats it exactly like a base relation. The root emits output groups.

    Two output paths: a hash aggregator in general, and a streaming
    "sorted emit" path (with a Gustavson-style sparse accumulator for the
    §V-A2 relaxed orders) when the GROUP BY keys are a prefix of the
    attribute order — the path that lets sparse matrix multiplication run
    without materializing a hash of the output. *)

type kernel_cache = { k_sig : string; k_mode : Compile.Leaf.mode }
(** The kernel disposition resolved for one plan node: which specialized
    innermost-loop shape ({!Compile.Leaf.mode}) the executor pinned, plus
    the signature of the bound tries it was resolved from (leaf-unit flags
    and the sorted-emit shape). Cached on the {!pnode} — and therefore in
    the engine's plan cache, whose epoch machinery rebuilds pnodes on
    revalidation — and re-checked per execution because bind-time filters
    rebuild tries under the same plan. *)

type pnode = {
  pbag : Ghd.bag;
  porder : int list;  (** vertex ids, execution order *)
  prelaxed : bool;
  pmaterialized : int list;
  pchildren : pnode list;
  pcost : float;
  mutable pkernel : kernel_cache option;
}

val physical :
  Config.t -> Logical.t -> dense_of:(Logical.edge -> bool) -> Ghd.t -> pnode
(** Assign attribute orders to every GHD node. *)

val rel_infos :
  Logical.t -> dense_of:(Logical.edge -> bool) -> Ghd.bag -> Attr_order.rel_info list
(** The §V relation descriptors of one bag (base relations followed by
    derived child relations) — exposed for the Fig. 5 experiments. *)

type trie_cache = (string, Lh_storage.Trie.t) Hashtbl.t
(** Hot-run trie cache: the §VI-A protocol measures hot runs back-to-back
    and excludes index creation, so the engine keeps per-query tries keyed
    by everything that determines their contents (table identity, key
    levels, filter, carried codes, owned aggregates). *)

type row = { gcodes : int array; slots : float array }
(** One output group: codes per GROUP BY item (vertex value for key items,
    annotation code for the rest) and one value per physical slot. *)

val run : Config.t -> ?cache:trie_cache -> Logical.t -> pnode -> row list
(** Execute the plan. Rows are sorted by [gcodes]. Scalar queries yield
    exactly one row with empty [gcodes]. Budget violations raise the
    {!Lh_util.Budget} exceptions. *)

val run_scan : Config.t -> Logical.t -> row list
(** The no-join path (queries whose hypergraph has no vertices, e.g.
    TPC-H Q1/Q6): a filtered columnar scan with hash grouping, touching
    only referenced buffers. *)

val pp_plan : Logical.t -> Format.formatter -> pnode -> unit
