(* Per-query profile records. Assembly lives in Engine (it owns the
   pipeline state); this module is the passive record type plus its JSON
   rendering so sinks (slow-query logs, lhcli --profile) and the engine
   agree on one schema. *)

module Json = Lh_obs.Json

type outcome =
  | Ok_result
  | Typed_error of string
  | Injected_fault of string
  | Budget_overrun

type t = {
  p_sql : string;
  p_plan : string;
  p_path : string;
  p_cache : string;
  p_epoch : int;
  p_rows_in : int;
  p_rows_out : int;
  p_domains : int;
  p_total_s : float;
  p_phases : (string * float) list;
  p_counters : (string * int) list;
  p_gc_major_words : float;
  p_outcome : outcome;
}

let outcome_label = function
  | Ok_result -> "ok"
  | Typed_error _ -> "error"
  | Injected_fault _ -> "fault"
  | Budget_overrun -> "budget"

let outcome_detail = function
  | Ok_result | Budget_overrun -> None
  | Typed_error m -> Some m
  | Injected_fault site -> Some site

let to_json p =
  let base =
    [
      ("sql", Json.String p.p_sql);
      ("plan", Json.String p.p_plan);
      ("path", Json.String p.p_path);
      ("plan_cache", Json.String p.p_cache);
      ("epoch", Json.Int p.p_epoch);
      ("rows_in", Json.Int p.p_rows_in);
      ("rows_out", Json.Int p.p_rows_out);
      ("domains", Json.Int p.p_domains);
      ("total_seconds", Json.Float p.p_total_s);
      ("phases", Json.Obj (List.map (fun (n, d) -> (n, Json.Float d)) p.p_phases));
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) p.p_counters));
      ("gc_major_words", Json.Float p.p_gc_major_words);
      ("outcome", Json.String (outcome_label p.p_outcome));
    ]
  in
  match outcome_detail p.p_outcome with
  | None -> Json.Obj base
  | Some d -> Json.Obj (base @ [ ("detail", Json.String d) ])

let to_string p = Json.to_string (to_json p)
