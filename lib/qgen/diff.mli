(** The differential fuzzing harness.

    Runs each generated query through every evaluator — the LevelHeaded
    engine under several configurations (serial and 4-domain, cost-based /
    naive / worst attribute orders, LogicBlox-like, unsorted emit, generic
    non-specialized WCOJ leaves), the
    pairwise hash-join baselines (pipelined and materializing) — and
    checks each row set against the brute-force {!Lh_baseline.Oracle}
    reference with {!Rows.diff} (float-tolerant, canonicalized order).

    On a mismatch the query is {!Shrink}ed against that evaluator to a
    minimal failing repro, and the discrepancy record carries both the
    original and the minimized SQL plus the [(seed, index)] pair that
    replays it.

    Counters under the [fuzz.*] prefix (queries per engine path,
    evaluations, discrepancies, shrink steps) are wired into {!Lh_obs};
    enable telemetry around {!run} to collect them. *)

type discrepancy = {
  d_seed : int;
  d_index : int;  (** replay: [run ~seed ~count:1] starting at this index *)
  d_shape : Gen.shape;
  d_evaluator : string;
  d_sql : string;  (** the generated query *)
  d_detail : string;  (** first differing row, or the exception raised *)
  d_min_sql : string;  (** shrunk repro *)
  d_min_relations : int;  (** FROM-list length of the shrunk repro *)
  d_shrink_steps : int;
}

type summary = {
  s_count : int;  (** queries generated and run *)
  s_evaluations : int;  (** evaluator runs (excludes the oracle) *)
  s_scan : int;
  s_wcoj : int;
  s_blas : int;  (** engine-path counts over the generated queries *)
  s_by_shape : (Gen.shape * int) list;
  s_discrepancies : discrepancy list;
}

val evaluator_names : inject_bug:bool -> string list

val run :
  ?progress:(int -> unit) ->
  ?inject_bug:bool ->
  ?layout_stress:bool ->
  ?first_index:int ->
  seed:int ->
  count:int ->
  Gen.spec ->
  summary
(** Builds the {!Dataset}, generates [count] queries for indices
    [first_index .. first_index + count - 1] (default 0) and runs the
    differential check on each. [inject_bug] adds a deliberately wrong
    evaluator (sign-flips every float) to demonstrate detection and
    shrinking. [layout_stress] builds the dataset with the sparse/dense
    crossover relations ([ls_d]/[ls_s]/[ls_m]) so generated joins cover
    every set-layout pair and the count-only leaves. [progress] is called
    with each finished index. *)

val discrepancy_to_string : discrepancy -> string
val summary_to_string : summary -> string
