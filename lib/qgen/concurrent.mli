(** Concurrent-sessions fuzzer: the snapshot-consistency oracle.

    [run] stands up a {!Lh_serve.Serve} service over the pinned fuzzing
    dataset and drives it from [domains] reader domains — each issuing a
    mix of ad-hoc, one-shot-prepared and long-lived-prepared generated
    queries — while the main domain ingests fresh generations of the
    [m_a] relation through the service, gated on reader progress so that
    queries and epoch publications genuinely interleave.

    Every query records the epoch id it actually ran under
    ({!Lh_serve.Serve.query_epoch}). Afterwards the harness rebuilds, for
    each observed epoch, a sequential oracle engine in the same state
    (same dataset build, same deterministic ingest sequence up to that
    epoch's generation) and replays every query against it, demanding a
    bit-identical result — the snapshot-isolation contract: a query
    observes exactly the catalog state of the epoch it pinned, never a
    torn mix, no matter what ingest published meanwhile.

    The run fails if any query errors, any replay differs, or fewer than
    two distinct epochs were observed (which would mean the interleaving
    never actually exercised a swap). *)

type failure = {
  f_domain : int;
  f_index : int;  (** generator index (replayable via {!Gen.generate}) *)
  f_kind : string;  (** [adhoc], [prepared], [persist], [ingest] or [coverage] *)
  f_sql : string;
  f_epoch : int;  (** epoch the query ran under; [-1] for non-query failures *)
  f_detail : string;
}

type summary = {
  c_domains : int;
  c_queries : int;  (** total queries completed across all sessions *)
  c_adhoc : int;
  c_prepared : int;  (** one-shot prepared (lifted literals, bound at exec) *)
  c_persist : int;  (** executions of the per-session long-lived statement *)
  c_ingests : int;  (** epochs published by the writer *)
  c_epochs_observed : int;  (** distinct epoch ids pinned by at least one query *)
  c_failures : failure list;
}

val run :
  ?progress:(string -> unit) ->
  seed:int ->
  domains:int ->
  per_domain:int ->
  ingests:int ->
  unit ->
  summary

val ok : summary -> bool
val to_text : summary -> string
