module L = Levelheaded
module Serve = Lh_serve.Serve
module Ast = Lh_sql.Ast
module Dtype = Lh_storage.Dtype
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Prng = Lh_util.Prng
module Obs = Lh_obs.Obs

let c_queries = Obs.counter "fuzz.concurrent.queries"
let c_replays = Obs.counter "fuzz.concurrent.replays"
let c_failures = Obs.counter "fuzz.concurrent.failures"

type failure = {
  f_domain : int;
  f_index : int;
  f_kind : string;
  f_sql : string;
  f_epoch : int;
  f_detail : string;
}

type summary = {
  c_domains : int;
  c_queries : int;
  c_adhoc : int;
  c_prepared : int;
  c_persist : int;
  c_ingests : int;
  c_epochs_observed : int;
  c_failures : failure list;
}

(* One completed query: everything needed to replay it sequentially
   against the epoch it pinned and demand the identical answer. *)
type obs = {
  o_domain : int;
  o_index : int;
  o_kind : string;
  o_sql : string;
  o_ast : Ast.query;
  o_values : Dtype.value list;
  o_epoch : int;
  o_rows : Rows.row list;
}

let sql_of_ast ast = Format.asprintf "%a" Ast.pp_query ast

(* The writer churns [m_a]: same shape as the dataset's build, but a
   deterministic function of (seed, generation) so the replay oracle can
   reconstruct any epoch's exact catalog state. Pure ints/floats — no
   dictionary growth — so string codes agree across rebuilds by
   construction. *)
let ma_schema =
  Schema.create
    [ ("row", Dtype.Int, Schema.Key); ("col", Dtype.Int, Schema.Key);
      ("v", Dtype.Float, Schema.Annotation) ]

let writer_rows ~seed g =
  let rng = Prng.create (seed + (0x51ED * g)) in
  List.init
    (25 + (3 * g))
    (fun _ ->
      [ Dtype.VInt (Prng.int rng 7); Dtype.VInt (Prng.int rng 7);
        Dtype.VFloat (float_of_int (Prng.int_in rng (-4) 4)) ])

let persist_sql = "select sum(v) as s from m_a"

let wait_until f = while not (f ()) do Domain.cpu_relax () done

let run ?(progress = fun _ -> ()) ~seed ~domains ~per_domain ~ingests () =
  let eng = Dataset.build () in
  let profile = Dataset.profile eng in
  (* Views and replays both run single-domain: concurrency in this
     harness comes from reader domains, and keeping every evaluation
     sequential makes "bit-identical" a fair demand even when the
     environment (LH_DOMAINS) parallelizes ingest-side builds — those
     are deterministic per environment, shared by writer and oracle. *)
  let view_cfg = { (L.Engine.config eng) with L.Config.domains = 1 } in
  let svc =
    Serve.create ~config:view_cfg ~max_sessions:(max 8 (domains + 1)) eng
  in
  let spec = Gen.default_spec in
  let persist_ast = Lh_sql.Parser.parse persist_sql in
  (* epoch id -> writer generation (how many ingests preceded it) *)
  let gen_of = Hashtbl.create 8 in
  Hashtbl.replace gen_of (Serve.current_epoch svc) 0;
  let completed = Atomic.make 0 in
  let published = Atomic.make 0 in
  let writer_done = Atomic.make false in
  let fail ~domain ~index ~kind ~sql ~epoch detail =
    Obs.incr c_failures;
    { f_domain = domain; f_index = index; f_kind = kind; f_sql = sql;
      f_epoch = epoch; f_detail = detail }
  in
  let reader d =
    let s = Serve.open_session svc in
    let obs = ref [] and fails = ref [] in
    let record ~index ~kind ~sql ~ast ~values = function
      | Ok (t, e) ->
          Obs.incr c_queries;
          obs :=
            { o_domain = d; o_index = index; o_kind = kind; o_sql = sql;
              o_ast = ast; o_values = values; o_epoch = e;
              o_rows = Table.to_rows t }
            :: !obs
      | Error err ->
          fails :=
            fail ~domain:d ~index ~kind ~sql ~epoch:(-1)
              (Serve.error_to_string err)
            :: !fails
    in
    let persist =
      match Serve.prepare s persist_sql with
      | Ok p -> Some p
      | Error err ->
          fails :=
            fail ~domain:d ~index:(-1) ~kind:"persist" ~sql:persist_sql
              ~epoch:(-1) (Serve.error_to_string err)
            :: !fails;
          None
    in
    for i = 0 to per_domain - 1 do
      let index = (d * per_domain) + i in
      (try
         (* Hold each reader's final query until at least one epoch has
            been published (or the writer gave up), so swaps are always
            observed; the writer's own gate only ever waits on the other
            [per_domain - 1] queries, so neither side can starve. *)
         if i = per_domain - 1 then
           wait_until (fun () ->
               Atomic.get published > 0 || Atomic.get writer_done);
         (* One session camps on an explicit pin mid-run: its remaining
            queries must keep answering from that epoch even as newer
            ones publish (the long-running-query story). *)
         if d = 0 && domains > 1 && i = per_domain / 2 then
           ignore (Serve.pin s);
         let ast, _shape = Gen.generate profile ~seed ~index spec in
         let sql = sql_of_ast ast in
         if i land 1 = 0 then
           record ~index ~kind:"adhoc" ~sql ~ast ~values:[]
             (Serve.query_epoch s sql)
         else begin
           let lifted, values = Lh_sql.Normalize.lift_literals ast in
           let psql = sql_of_ast lifted in
           match Serve.prepare s psql with
           | Error err ->
               fails :=
                 fail ~domain:d ~index ~kind:"prepared" ~sql:psql ~epoch:(-1)
                   (Serve.error_to_string err)
                 :: !fails
           | Ok p ->
               record ~index ~kind:"prepared" ~sql:psql ~ast:lifted ~values
                 (Serve.exec_prepared p values)
         end;
         (* The long-lived statement rides across epochs: its cached plan
            must revalidate against whatever epoch each execution pins. *)
         match persist with
         | Some p when i mod 3 = 2 ->
             record ~index ~kind:"persist" ~sql:persist_sql ~ast:persist_ast
               ~values:[] (Serve.exec_prepared p [])
         | _ -> ()
       with e ->
         fails :=
           fail ~domain:d ~index ~kind:"reader" ~sql:"" ~epoch:(-1)
             (Printexc.to_string e)
           :: !fails);
      Atomic.incr completed
    done;
    Serve.close_session s;
    (!obs, !fails)
  in
  let readers = List.init domains (fun d -> Domain.spawn (fun () -> reader d)) in
  (* Writer: publish [ingests] epochs, each gated on reader progress so
     publications land between queries rather than before or after them
     all. [free] counts the queries readers can finish without waiting on
     a publication, so every gate below is reachable. *)
  let free = domains * (per_domain - 1) in
  let writer_fails = ref [] in
  for g = 1 to ingests do
    wait_until (fun () -> Atomic.get completed >= g * free / (ingests + 1));
    match Serve.ingest_rows svc ~name:"m_a" ~schema:ma_schema (writer_rows ~seed g) with
    | Ok e ->
        Hashtbl.replace gen_of e g;
        Atomic.incr published;
        progress (Printf.sprintf "epoch %d published (generation %d)" e g)
    | Error err ->
        writer_fails :=
          fail ~domain:(-1) ~index:g ~kind:"ingest" ~sql:"" ~epoch:(-1)
            (Serve.error_to_string err)
          :: !writer_fails
  done;
  Atomic.set writer_done true;
  let per_reader = List.map Domain.join readers in
  Serve.close svc;
  let all_obs = List.concat_map fst per_reader in
  let fails =
    ref (List.concat_map snd per_reader @ !writer_fails)
  in
  (* Replay oracle: for each epoch some query pinned, rebuild that exact
     catalog state sequentially and demand bit-identical answers. *)
  let oracles = Hashtbl.create 8 in
  let oracle_for epoch =
    match Hashtbl.find_opt oracles epoch with
    | Some e -> e
    | None ->
        let g = Hashtbl.find gen_of epoch in
        let o = Dataset.build () in
        for k = 1 to g do
          ignore (L.Engine.register_rows o ~name:"m_a" ~schema:ma_schema (writer_rows ~seed k))
        done;
        L.Engine.set_config o { (L.Engine.config o) with L.Config.domains = 1 };
        Hashtbl.replace oracles epoch o;
        o
    in
  List.iter
    (fun o ->
      Obs.incr c_replays;
      match
        let oe = oracle_for o.o_epoch in
        if o.o_values = [] then Table.to_rows (L.Engine.query_ast oe o.o_ast)
        else
          let stmt = L.Engine.prepare_ast oe o.o_ast in
          Table.to_rows (L.Engine.Stmt.exec stmt o.o_values)
      with
      | exception e ->
          fails :=
            fail ~domain:o.o_domain ~index:o.o_index ~kind:o.o_kind
              ~sql:o.o_sql ~epoch:o.o_epoch
              ("replay raised " ^ Printexc.to_string e)
            :: !fails
      | expect ->
          if compare (Rows.canonical expect) (Rows.canonical o.o_rows) <> 0
          then
            let detail =
              match Rows.diff ~expect ~got:o.o_rows with
              | Some d -> d
              | None -> "float cells differ in low bits (not bit-identical)"
            in
            fails :=
              fail ~domain:o.o_domain ~index:o.o_index ~kind:o.o_kind
                ~sql:o.o_sql ~epoch:o.o_epoch detail
              :: !fails)
    all_obs;
  let epochs =
    List.sort_uniq compare (List.map (fun o -> o.o_epoch) all_obs)
  in
  if List.length epochs < 2 then
    fails :=
      fail ~domain:(-1) ~index:(-1) ~kind:"coverage" ~sql:"" ~epoch:(-1)
        (Printf.sprintf
           "queries observed %d distinct epoch(s); the interleaving never \
            spanned a swap"
           (List.length epochs))
      :: !fails;
  let count kind = List.length (List.filter (fun o -> o.o_kind = kind) all_obs) in
  {
    c_domains = domains;
    c_queries = List.length all_obs;
    c_adhoc = count "adhoc";
    c_prepared = count "prepared";
    c_persist = count "persist";
    c_ingests = Atomic.get published;
    c_epochs_observed = List.length epochs;
    c_failures = List.rev !fails;
  }

let ok s = s.c_failures = []

let failure_to_string f =
  Printf.sprintf "FAIL [%s] domain=%d index=%d epoch=%d\n  query:  %s\n  detail: %s"
    f.f_kind f.f_domain f.f_index f.f_epoch
    (if f.f_sql = "" then "-" else f.f_sql)
    f.f_detail

let to_text s =
  let head =
    Printf.sprintf
      "concurrent sessions: domains=%d queries=%d (adhoc=%d prepared=%d \
       persist=%d) ingests=%d epochs-observed=%d failures=%d"
      s.c_domains s.c_queries s.c_adhoc s.c_prepared s.c_persist s.c_ingests
      s.c_epochs_observed
      (List.length s.c_failures)
  in
  match s.c_failures with
  | [] -> head ^ "\n"
  | fs -> head ^ "\n" ^ String.concat "\n" (List.map failure_to_string fs) ^ "\n"
