module L = Levelheaded
module Ast = Lh_sql.Ast
module Dtype = Lh_storage.Dtype
module Obs = Lh_obs.Obs

let c_scan = Obs.counter "fuzz.queries.scan"
let c_wcoj = Obs.counter "fuzz.queries.wcoj"
let c_blas = Obs.counter "fuzz.queries.blas"
let c_eval = Obs.counter "fuzz.evaluations"
let c_disc = Obs.counter "fuzz.discrepancies"
let c_shrink = Obs.counter "fuzz.shrink_steps"

type discrepancy = {
  d_seed : int;
  d_index : int;
  d_shape : Gen.shape;
  d_evaluator : string;
  d_sql : string;
  d_detail : string;
  d_min_sql : string;
  d_min_relations : int;
  d_shrink_steps : int;
}

type summary = {
  s_count : int;
  s_evaluations : int;
  s_scan : int;
  s_wcoj : int;
  s_blas : int;
  s_by_shape : (Gen.shape * int) list;
  s_discrepancies : discrepancy list;
}

type evaluator = { ev_name : string; ev_run : Ast.query -> Rows.row list }

let sql_of_ast ast = Format.asprintf "%a" Ast.pp_query ast

let sign_flip rows =
  List.map
    (List.map (function Dtype.VFloat x -> Dtype.VFloat (-.x) | v -> v))
    rows

let evaluators ~inject_bug eng =
  let lookup name = L.Catalog.find_exn (L.Engine.catalog eng) name in
  let with_config cfg f =
    let old = L.Engine.config eng in
    L.Engine.set_config eng cfg;
    Fun.protect ~finally:(fun () -> L.Engine.set_config eng old) f
  in
  let engine_with name cfg =
    {
      ev_name = name;
      ev_run =
        (fun ast ->
          with_config cfg (fun () -> Lh_storage.Table.to_rows (L.Engine.query_ast eng ast)));
    }
  in
  let pairwise name mode =
    { ev_name = name; ev_run = (fun ast -> Lh_baseline.Pairwise.query ~lookup ~mode ast) }
  in
  let d = L.Config.default in
  (* Prepared-statement path: hoist literals into parameters, plan the
     parameterized AST, then bind the hoisted values back at exec — the
     round trip must agree with direct evaluation on every query. *)
  let prepared =
    {
      ev_name = "engine-prepared";
      ev_run =
        (fun ast ->
          let lifted, values = Lh_sql.Normalize.lift_literals ast in
          let stmt = L.Engine.prepare_ast eng lifted in
          Lh_storage.Table.to_rows (L.Engine.Stmt.exec stmt values));
    }
  in
  [
    engine_with "engine" d;
    prepared;
    engine_with "engine-nocache" { d with L.Config.plan_cache_capacity = 0 };
    engine_with "engine-domains4" { d with L.Config.domains = 4 };
    engine_with "engine-naive-order" { d with L.Config.attr_order = L.Config.Naive };
    engine_with "engine-worst-order"
      { d with L.Config.attr_order = L.Config.Worst_cost; ghd_heuristics = false };
    engine_with "engine-logicblox" L.Config.logicblox_like;
    engine_with "engine-unsorted-emit"
      { d with L.Config.sorted_emit = false; blas_targeting = false };
    (* Same plans, generic WCOJ leaves: any disagreement with "engine" is a
       bug in the layout-specialized count/stream kernels. *)
    engine_with "engine-generic-leaf" { d with L.Config.leaf_specialization = false };
    pairwise "pairwise-pipelined" Lh_baseline.Pairwise.Pipelined;
    pairwise "pairwise-materializing" Lh_baseline.Pairwise.Materializing;
  ]
  @
  if inject_bug then
    [
      {
        ev_name = "buggy-sign-flip";
        ev_run = (fun ast -> sign_flip (Lh_baseline.Oracle.query ~lookup ast));
      };
    ]
  else []

let evaluator_names ~inject_bug =
  let eng = L.Engine.create () in
  List.map (fun ev -> ev.ev_name) (evaluators ~inject_bug eng)

type result = Ok_rows of Rows.row list | Raised of string

let run_guarded f ast = try Ok_rows (f ast) with e -> Raised (Printexc.to_string e)

(* [still_fails] for the shrinker: a candidate keeps the failure alive when
   the oracle can evaluate it and the evaluator either disagrees, or — for
   exception failures — still raises. Candidates the oracle rejects are
   outside the supported subset: dead ends, not failures. *)
let mismatch ~exn_failure ~oracle ev ast =
  match run_guarded oracle ast with
  | Raised _ -> None
  | Ok_rows expect -> (
      match run_guarded ev.ev_run ast with
      | Raised msg -> if exn_failure then Some ("raised " ^ msg) else None
      | Ok_rows got -> Rows.diff ~expect ~got)

let run ?(progress = fun _ -> ()) ?(inject_bug = false) ?(layout_stress = false)
    ?(first_index = 0) ~seed ~count spec =
  let eng = Dataset.build ~layout_stress () in
  let profile = Dataset.profile eng in
  let lookup name = L.Catalog.find_exn (L.Engine.catalog eng) name in
  let oracle ast = Lh_baseline.Oracle.query ~lookup ast in
  let evs = evaluators ~inject_bug eng in
  let scan = ref 0 and wcoj = ref 0 and blas = ref 0 in
  let shape_counts = List.map (fun s -> (s, ref 0)) Gen.all_shapes in
  let evaluations = ref 0 in
  let discrepancies = ref [] in
  for index = first_index to first_index + count - 1 do
    let ast0, shape = Gen.generate profile ~seed ~index spec in
    let sql = sql_of_ast ast0 in
    incr (List.assoc shape shape_counts);
    let record ev_name detail min_sql min_relations shrink_steps =
      Obs.incr c_disc;
      Obs.add c_shrink shrink_steps;
      discrepancies :=
        {
          d_seed = seed;
          d_index = index;
          d_shape = shape;
          d_evaluator = ev_name;
          d_sql = sql;
          d_detail = detail;
          d_min_sql = min_sql;
          d_min_relations = min_relations;
          d_shrink_steps = shrink_steps;
        }
        :: !discrepancies
    in
    (* Round-trip through the printer and parser once, so every evaluator
       consumes the same AST the printed SQL denotes (a print/parse
       mismatch surfaces here as a "parser" discrepancy). *)
    let ast =
      match Lh_sql.Parser.parse sql with
      | ast -> ast
      | exception e ->
          record "parser"
            ("raised " ^ Printexc.to_string e)
            sql
            (List.length ast0.Ast.from)
            0;
          ast0
    in
    (match L.Engine.explain eng sql with
    | { L.Engine.epath = L.Engine.Scan_path; _ } ->
        incr scan;
        Obs.incr c_scan
    | { L.Engine.epath = L.Engine.Wcoj_path; _ } ->
        incr wcoj;
        Obs.incr c_wcoj
    | { L.Engine.epath = L.Engine.Blas_path; _ } ->
        incr blas;
        Obs.incr c_blas
    | exception e ->
        record "explain" ("raised " ^ Printexc.to_string e) sql (List.length ast.Ast.from) 0);
    (match run_guarded oracle ast with
    | Raised msg ->
        (* The oracle rejecting a generated query is a generator bug. *)
        record "oracle" ("raised " ^ msg) sql (List.length ast.Ast.from) 0
    | Ok_rows expect ->
        List.iter
          (fun ev ->
            incr evaluations;
            Obs.incr c_eval;
            let detail =
              match run_guarded ev.ev_run ast with
              | Raised msg -> Some ("raised " ^ msg)
              | Ok_rows got -> Rows.diff ~expect ~got
            in
            match detail with
            | None -> ()
            | Some detail ->
                let exn_failure = String.length detail >= 6 && String.sub detail 0 6 = "raised" in
                let still_fails q = mismatch ~exn_failure ~oracle ev q <> None in
                let minimal, steps = Shrink.shrink ~still_fails ast in
                record ev.ev_name detail (sql_of_ast minimal)
                  (List.length minimal.Ast.from)
                  steps)
          evs);
    progress index
  done;
  {
    s_count = count;
    s_evaluations = !evaluations;
    s_scan = !scan;
    s_wcoj = !wcoj;
    s_blas = !blas;
    s_by_shape = List.map (fun (s, r) -> (s, !r)) shape_counts;
    s_discrepancies = List.rev !discrepancies;
  }

let discrepancy_to_string d =
  Printf.sprintf
    "DISCREPANCY [%s] shape=%s replay: --seed %d --index %d\n\
    \  query:   %s\n\
    \  detail:  %s\n\
    \  minimal (%d relations, %d shrink steps):\n\
    \  %s"
    d.d_evaluator (Gen.shape_to_string d.d_shape) d.d_seed d.d_index d.d_sql d.d_detail
    d.d_min_relations d.d_shrink_steps d.d_min_sql

let summary_to_string s =
  let shapes =
    String.concat " "
      (List.map (fun (sh, n) -> Printf.sprintf "%s=%d" (Gen.shape_to_string sh) n) s.s_by_shape)
  in
  let head =
    Printf.sprintf
      "queries=%d evaluations=%d discrepancies=%d\npaths: scan=%d wcoj=%d blas=%d\nshapes: %s"
      s.s_count s.s_evaluations
      (List.length s.s_discrepancies)
      s.s_scan s.s_wcoj s.s_blas shapes
  in
  match s.s_discrepancies with
  | [] -> head
  | ds -> head ^ "\n" ^ String.concat "\n" (List.map discrepancy_to_string ds)
