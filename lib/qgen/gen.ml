open Lh_sql
module Dtype = Lh_storage.Dtype
module Date = Lh_storage.Date
module Prng = Lh_util.Prng

type shape = Scan | Chain | Star | Cycle | La

let all_shapes = [ Scan; Chain; Star; Cycle; La ]

let shape_to_string = function
  | Scan -> "scan" | Chain -> "chain" | Star -> "star" | Cycle -> "cycle" | La -> "la"

let shape_of_string = function
  | "scan" -> Some Scan | "chain" -> Some Chain | "star" -> Some Star
  | "cycle" -> Some Cycle | "la" -> Some La | _ -> None

type spec = { shapes : shape list; max_relations : int; semiring : bool }

let default_spec = { shapes = all_shapes; max_relations = 4; semiring = false }

(* ------------------------------------------------------------------ *)
(* Profile classification                                               *)

open Dataset

let keys (t : table_info) = Array.to_list t.ti_cols |> List.filter (fun c -> c.ci_key)
let anns (t : table_info) = Array.to_list t.ti_cols |> List.filter (fun c -> not c.ci_key)

let numeric_anns t =
  List.filter (fun c -> c.ci_dtype <> Dtype.String) (anns t)

let is_matrix t =
  match keys t with
  | [ a; b ] -> a.ci_dtype = Dtype.Int && b.ci_dtype = Dtype.Int && numeric_anns t <> []
  | _ -> false

let is_vector t =
  match keys t with
  | [ a ] -> a.ci_dtype = Dtype.Int && numeric_anns t <> []
  | _ -> false

(* A table whose int key columns enumerate a complete zero-based grid:
   the shape {!Lh_blas} kernels accept (mirrors [Blas_bridge.dense_rect]
   without scanning the data again). *)
let is_dense t =
  let ks = keys t in
  ks <> []
  && List.for_all (fun c -> c.ci_dtype = Dtype.Int && c.ci_lo = 0.0) ks
  && t.ti_rows > 0
  && t.ti_rows
     = List.fold_left (fun acc c -> acc * (int_of_float c.ci_hi + 1)) 1 ks

type rel = { alias : string; info : table_info }

let cref rel (c : col_info) = Ast.Col { Ast.relation = Some rel.alias; column = c.ci_name }

let join_pred ra ca rb cb =
  match (cref ra ca, cref rb cb) with
  | (Ast.Col _ as a), (Ast.Col _ as b) -> Ast.Cmp (Ast.Eq, a, b)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Constants and filters                                                *)

let const_in rng (c : col_info) =
  let lo = c.ci_lo and hi = c.ci_hi in
  match c.ci_dtype with
  | Dtype.Int -> Ast.Int_lit (Prng.int_in rng (int_of_float lo) (max (int_of_float lo) (int_of_float hi)))
  | Dtype.Date -> Ast.Date_lit (Prng.int_in rng (int_of_float lo) (max (int_of_float lo) (int_of_float hi)))
  | Dtype.Float ->
      (* quarters: exact in the printed SQL and in every evaluator *)
      let qlo = int_of_float (Float.round (lo *. 4.0)) in
      let qhi = max qlo (int_of_float (Float.round (hi *. 4.0))) in
      Ast.Float_lit (float_of_int (Prng.int_in rng qlo qhi) /. 4.0)
  | Dtype.String -> assert false

let like_pattern rng s =
  if String.length s <= 1 then s ^ "%"
  else
    let n = String.length s in
    match Prng.int rng 4 with
    | 0 -> String.sub s 0 (1 + Prng.int rng (n - 1)) ^ "%"
    | 1 ->
        let pos = Prng.int rng n in
        "%" ^ String.sub s pos (n - pos)
    | 2 -> "%" ^ String.sub s 1 (n - 1)
    | _ -> "_" ^ String.sub s 1 (n - 1)

let string_atom rng rel (c : col_info) =
  let value =
    if Array.length c.ci_strings = 0 || Prng.int rng 10 = 0 then "zzz"
    else Prng.pick rng c.ci_strings
  in
  match Prng.int rng 4 with
  | 0 -> Ast.Cmp (Ast.Eq, cref rel c, Ast.String_lit value)
  | 1 -> Ast.Cmp (Ast.Ne, cref rel c, Ast.String_lit value)
  | 2 -> Ast.Like (cref rel c, like_pattern rng value)
  | _ -> Ast.Not_like (cref rel c, like_pattern rng value)

let numeric_atom rng rel (c : col_info) =
  match Prng.int rng 7 with
  | 0 -> Ast.Cmp (Ast.Lt, cref rel c, const_in rng c)
  | 1 -> Ast.Cmp (Ast.Le, cref rel c, const_in rng c)
  | 2 -> Ast.Cmp (Ast.Gt, cref rel c, const_in rng c)
  | 3 -> Ast.Cmp (Ast.Ge, cref rel c, const_in rng c)
  | 4 -> Ast.Cmp (Ast.Eq, cref rel c, const_in rng c)
  | 5 -> Ast.Cmp (Ast.Ne, cref rel c, const_in rng c)
  | _ ->
      let a = const_in rng c and b = const_in rng c in
      (* BETWEEN lo AND hi with lo <= hi so the range is satisfiable *)
      let lo, hi = if compare a b <= 0 then (a, b) else (b, a) in
      Ast.Between (cref rel c, lo, hi)

let filter_atom_over rng rel cols =
  let c = Prng.pick rng (Array.of_list cols) in
  if c.ci_dtype = Dtype.String then string_atom rng rel c else numeric_atom rng rel c

let filter_atom rng rel = filter_atom_over rng rel (Array.to_list rel.info.ti_cols)

let filter_pred rng rel =
  let p = filter_atom rng rel in
  let p =
    if Prng.int rng 100 < 25 then
      let q = filter_atom rng rel in
      if Prng.bool rng then Ast.And (p, q) else Ast.Or (p, q)
    else p
  in
  if Prng.int rng 100 < 10 then Ast.Not p else p

(* ------------------------------------------------------------------ *)
(* Aggregate expressions (decomposable by construction)                 *)

let pick_numeric rng rel =
  match numeric_anns rel.info with
  | [] -> None
  | cols -> Some (Prng.pick rng (Array.of_list cols))

(* A single-relation factor: the shapes [Logical.decompose] accepts. *)
let factor rng rel (c : col_info) =
  let col = cref rel c in
  match Prng.int rng 8 with
  | 0 | 1 | 2 -> col
  | 3 -> Ast.Mul (col, Ast.Int_lit 2)
  | 4 -> Ast.Sub (Ast.Int_lit 1, col)
  | 5 -> Ast.Div (col, Ast.Float_lit 4.0)
  | 6 -> (
      match pick_numeric rng rel with
      | Some c2 -> Ast.Mul (col, cref rel c2)
      | None -> col)
  | _ -> (
      (* keys cannot appear anywhere in an aggregate, including the
         CASE WHEN indicator predicate (§III-A) *)
      match anns rel.info with
      | [] -> col
      | cols -> Ast.Case_when (filter_atom_over rng rel cols, col, Ast.Int_lit 0))

let agg_arg rng rels =
  (* product of factors over 1..3 distinct relations *)
  let withnum = List.filter (fun r -> pick_numeric rng r <> None) rels in
  match withnum with
  | [] -> None
  | _ ->
      let arr = Array.of_list withnum in
      Prng.shuffle rng arr;
      let n = min (Array.length arr) (1 + Prng.int rng 3) in
      let fs =
        List.init n (fun i ->
            let r = arr.(i) in
            match pick_numeric rng r with
            | Some c -> factor rng r c
            | None -> assert false)
      in
      Some (List.fold_left (fun acc f -> Ast.Mul (acc, f)) (List.hd fs) (List.tl fs))

let single_alias_arg rng rels =
  let withnum = List.filter (fun r -> pick_numeric rng r <> None) rels in
  match withnum with
  | [] -> None
  | _ ->
      let r = Prng.pick rng (Array.of_list withnum) in
      Option.map (factor rng r) (pick_numeric rng r)

(* A sum of single-relation addends over 1..3 distinct relations: the
   shape [Logical.decompose_plus] accepts for ⊗ = + semirings. *)
let dplus_arg rng rels =
  let withnum = List.filter (fun r -> pick_numeric rng r <> None) rels in
  match withnum with
  | [] -> None
  | _ ->
      let arr = Array.of_list withnum in
      Prng.shuffle rng arr;
      let n = min (Array.length arr) (1 + Prng.int rng 3) in
      let fs =
        List.init n (fun i ->
            let r = arr.(i) in
            match pick_numeric rng r with
            | Some c -> factor rng r c
            | None -> assert false)
      in
      Some (List.fold_left (fun acc f -> Ast.Add (acc, f)) (List.hd fs) (List.tl fs))

(* Registered-semiring names the baselines also know how to fold; the
   star forms Fold "min"/"max" would reject are never drawn. *)
let fold_names = [| "sum_product"; "min"; "max"; "min_plus"; "bool_or_and" |]

let semiring_aggregate rng rels name =
  match Prng.int rng 3 with
  | 0 -> Ast.Aggregate (Ast.Min_plus, dplus_arg rng rels, name)
  | 1 -> Ast.Aggregate (Ast.Reaches, single_alias_arg rng rels, name)
  | _ -> (
      match Prng.pick rng fold_names with
      | "sum_product" -> Ast.Aggregate (Ast.Fold "sum_product", agg_arg rng rels, name)
      | "min_plus" -> Ast.Aggregate (Ast.Fold "min_plus", dplus_arg rng rels, name)
      | "bool_or_and" -> Ast.Aggregate (Ast.Fold "bool_or_and", single_alias_arg rng rels, name)
      | ("min" | "max") as n -> (
          match single_alias_arg rng rels with
          | Some e -> Ast.Aggregate (Ast.Fold n, Some e, name)
          | None -> Ast.Aggregate (Ast.Count, None, name))
      | _ -> assert false)

let aggregate rng ~semiring rels i =
  let name = Printf.sprintf "a%d" i in
  if semiring && Prng.int rng 3 = 0 then semiring_aggregate rng rels name
  else
    match Prng.int rng 6 with
    | 0 -> Ast.Aggregate (Ast.Count, None, name)
    | 1 -> (
        match single_alias_arg rng rels with
        | Some e -> Ast.Aggregate ((if Prng.bool rng then Ast.Min else Ast.Max), Some e, name)
        | None -> Ast.Aggregate (Ast.Count, None, name))
    | 2 -> (
        match agg_arg rng rels with
        | Some e -> Ast.Aggregate (Ast.Avg, Some e, name)
        | None -> Ast.Aggregate (Ast.Count, None, name))
    | _ -> (
        match agg_arg rng rels with
        | Some e -> Ast.Aggregate (Ast.Sum, Some e, name)
        | None -> Ast.Aggregate (Ast.Count, None, name))

(* ------------------------------------------------------------------ *)
(* GROUP BY                                                             *)

let group_by_exprs rng rels =
  let candidates =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun (c : col_info) ->
            if c.ci_key then [ cref r c ]
            else
              match c.ci_dtype with
              | Dtype.Float -> []  (* float GROUP BY is outside the subset *)
              | Dtype.Date ->
                  [ cref r c; Ast.Extract_year (cref r c) ]
              | Dtype.Int | Dtype.String -> [ cref r c ])
          (Array.to_list r.info.ti_cols))
      rels
  in
  let n =
    match Prng.int rng 10 with 0 | 1 | 2 -> 0 | 3 | 4 | 5 | 6 -> 1 | _ -> 2
  in
  if n = 0 || candidates = [] then []
  else begin
    let arr = Array.of_list candidates in
    Prng.shuffle rng arr;
    let seen = Hashtbl.create 4 in
    let out = ref [] in
    Array.iter
      (fun e ->
        if List.length !out < n && not (Hashtbl.mem seen e) then begin
          Hashtbl.replace seen e ();
          out := e :: !out
        end)
      arr;
    List.rev !out
  end

(* ------------------------------------------------------------------ *)
(* Shapes                                                               *)

let tables_where profile p = List.filter p (Array.to_list profile)

let require what = function
  | [] -> failwith (Printf.sprintf "Qgen.Gen: profile has no %s table" what)
  | l -> Array.of_list l

let alias i = Printf.sprintf "r%d" i

let key1 t = List.nth (keys t) 0
let key2 t = List.nth (keys t) 1

let chain_rels rng profile max_relations =
  let matrices = require "matrix (two int keys)" (tables_where profile is_matrix) in
  let vectors = tables_where profile is_vector in
  let k = Prng.int_in rng 2 (max 2 max_relations) in
  let infos =
    List.init k (fun i ->
        if i = k - 1 && vectors <> [] && Prng.int rng 3 = 0 then
          Prng.pick rng (Array.of_list vectors)
        else Prng.pick rng matrices)
  in
  let rels = List.mapi (fun i info -> { alias = alias i; info }) infos in
  let joins =
    List.init (k - 1) (fun i ->
        let a = List.nth rels i and b = List.nth rels (i + 1) in
        join_pred a (key2 a.info) b (key1 b.info))
  in
  (rels, joins)

let star_rels rng profile max_relations =
  let centers = require "multi-key" (tables_where profile (fun t -> List.length (keys t) >= 2)) in
  let center_info = Prng.pick rng centers in
  let center = { alias = alias 0; info = center_info } in
  let ckeys = Array.of_list (keys center_info) in
  Prng.shuffle rng ckeys;
  let nsat = Prng.int_in rng 1 (min (Array.length ckeys) (max 1 (max_relations - 1))) in
  let sats = ref [] and joins = ref [] in
  for i = 0 to nsat - 1 do
    let ck = ckeys.(i) in
    let partners =
      tables_where profile (fun t -> List.exists (fun k -> k.ci_dtype = ck.ci_dtype) (keys t))
    in
    match partners with
    | [] -> ()
    | _ ->
        let pinfo = Prng.pick rng (Array.of_list partners) in
        let pk =
          Prng.pick rng
            (Array.of_list (List.filter (fun k -> k.ci_dtype = ck.ci_dtype) (keys pinfo)))
        in
        let sat = { alias = alias (i + 1); info = pinfo } in
        sats := sat :: !sats;
        joins := join_pred center ck sat pk :: !joins
  done;
  (center :: List.rev !sats, List.rev !joins)

let cycle_rels rng profile max_relations =
  let matrices = require "matrix (two int keys)" (tables_where profile is_matrix) in
  let k = if max_relations >= 4 && Prng.bool rng then 4 else 3 in
  let rels = List.init k (fun i -> { alias = alias i; info = Prng.pick rng matrices }) in
  let joins =
    List.init k (fun i ->
        let a = List.nth rels i and b = List.nth rels ((i + 1) mod k) in
        join_pred a (key2 a.info) b (key1 b.info))
  in
  (rels, joins)

(* matvec / matmul in the §III-D shape; the pure dense arms BLAS-match. *)
let la_query rng profile =
  let matrices = require "matrix (two int keys)" (tables_where profile is_matrix) in
  let dense_m = tables_where profile (fun t -> is_matrix t && is_dense t) in
  let vectors = tables_where profile is_vector in
  let dense_v = tables_where profile (fun t -> is_vector t && is_dense t) in
  let pick_m dense =
    if dense && dense_m <> [] then Prng.pick rng (Array.of_list dense_m)
    else Prng.pick rng matrices
  in
  let dense = Prng.bool rng in
  let matmul = vectors = [] || Prng.bool rng in
  let m1 = { alias = alias 0; info = pick_m dense } in
  let m2 =
    if matmul then { alias = alias 1; info = pick_m dense }
    else
      {
        alias = alias 1;
        info =
          (if dense && dense_v <> [] then Prng.pick rng (Array.of_list dense_v)
           else Prng.pick rng (Array.of_list vectors));
      }
  in
  let joins = [ join_pred m1 (key2 m1.info) m2 (key1 m2.info) ] in
  let rels = [ m1; m2 ] in
  let pure = Prng.int rng 4 < 3 in
  if pure then begin
    (* the canonical product: GROUP BY outer keys, one SUM of products *)
    let gb =
      if matmul then [ cref m1 (key1 m1.info); cref m2 (key2 m2.info) ]
      else [ cref m1 (key1 m1.info) ]
    in
    let v r = cref r (List.hd (numeric_anns r.info)) in
    let q =
      {
        Ast.select =
          List.mapi (fun i e -> Ast.Plain (e, Printf.sprintf "g%d" i)) gb
          @ [ Ast.Aggregate (Ast.Sum, Some (Ast.Mul (v m1, v m2)), "a0") ];
        from = List.map (fun r -> (r.info.ti_name, r.alias)) rels;
        where = Some (List.hd joins);
        group_by = gb;
      }
    in
    `Done q
  end
  else `Generic (rels, joins)

(* ------------------------------------------------------------------ *)

let assemble rng ~semiring rels joins =
  let gb = group_by_exprs rng rels in
  let plains = List.mapi (fun i e -> Ast.Plain (e, Printf.sprintf "g%d" i)) gb in
  (* occasionally group by more than is selected *)
  let plains =
    match plains with
    | _ :: tl when Prng.int rng 10 = 0 -> tl
    | l -> l
  in
  let naggs = Prng.int_in rng 1 3 in
  let aggs = List.init naggs (fun i -> aggregate rng ~semiring rels i) in
  let filters =
    List.concat_map
      (fun r -> if Prng.int rng 100 < 45 then [ filter_pred rng r ] else [])
      rels
  in
  let where =
    match joins @ filters with
    | [] -> None
    | p :: ps -> Some (List.fold_left (fun acc q -> Ast.And (acc, q)) p ps)
  in
  {
    Ast.select = plains @ aggs;
    from = List.map (fun r -> (r.info.ti_name, r.alias)) rels;
    where;
    group_by = gb;
  }

let generate profile ~seed ~index spec =
  let rng = Prng.create (seed + (index * 1_000_003)) in
  let shapes = if spec.shapes = [] then all_shapes else spec.shapes in
  let shape = Prng.pick rng (Array.of_list shapes) in
  let semiring = spec.semiring in
  let q =
    match shape with
    | Scan ->
        let t = Prng.pick rng profile in
        assemble rng ~semiring [ { alias = alias 0; info = t } ] []
    | Chain ->
        let rels, joins = chain_rels rng profile spec.max_relations in
        assemble rng ~semiring rels joins
    | Star ->
        let rels, joins = star_rels rng profile spec.max_relations in
        assemble rng ~semiring rels joins
    | Cycle ->
        let rels, joins = cycle_rels rng profile spec.max_relations in
        assemble rng ~semiring rels joins
    | La -> (
        match la_query rng profile with
        | `Done q -> q
        | `Generic (rels, joins) -> assemble rng ~semiring rels joins)
  in
  (q, shape)

(* ------------------------------------------------------------------ *)

let vocabulary profile =
  let keywords =
    [
      "select"; "from"; "where"; "group"; "by"; "and"; "or"; "not"; "sum"; "count"; "avg";
      "min"; "max"; "min_plus"; "reaches"; "agg"; "("; ")"; ","; "."; "*"; "+"; "-"; "/";
      "="; "<"; ">"; "<="; ">="; "<>"; "as"; "between"; "like"; "case"; "when"; "then";
      "else"; "end"; "date"; "interval"; "extract"; "year"; "0"; "1"; "2"; "0.25";
      "'1994-01-01'"; "'%a%'"; "'min_plus'"; "'bool_or_and'";
    ]
  in
  let names =
    Array.to_list profile
    |> List.concat_map (fun t ->
           t.ti_name
           :: List.concat_map
                (fun (c : col_info) ->
                  c.ci_name
                  :: (Array.to_list c.ci_strings |> List.map (fun s -> "'" ^ s ^ "'")))
                (Array.to_list t.ti_cols))
  in
  Array.of_list (keywords @ List.sort_uniq String.compare names)
