(** Canonical result-row comparison, shared by the differential fuzzing
    harness ({!Diff}) and the test suites.

    Every evaluator in this repository ({!Levelheaded.Engine},
    {!Lh_baseline.Oracle}, {!Lh_baseline.Pairwise}) emits rows sorted by
    GROUP BY codes, so positional comparison normally suffices; the
    canonical form re-sorts anyway so that comparisons stay meaningful if
    an engine under test gets the emit order wrong (that, too, is a
    reportable discrepancy — see {!diff}). *)

type row = Lh_storage.Dtype.value list

val value_close : Lh_storage.Dtype.value -> Lh_storage.Dtype.value -> bool
(** Exact on ints, dates and strings; floats compare with relative
    tolerance [1e-6] (equal infinities compare equal). *)

val row_to_string : row -> string
(** ["|"]-separated rendering for failure messages. *)

val canonical : row list -> row list
(** Rows sorted by a total order on values (ints/dates by value, strings
    lexicographically, floats by IEEE order) — the row-set form used for
    equality. *)

val equal : row list -> row list -> bool
(** Canonical row-set equality, {!value_close}-tolerant per cell. *)

val diff : expect:row list -> got:row list -> string option
(** [None] when {!equal}; otherwise a human-readable description of the
    first difference (count mismatch or first differing row) in canonical
    order. *)

val diff_aligned : expect:row list -> got:row list -> string option
(** Like {!diff} but positional — no canonicalization, so a wrong emit
    order is itself reported. Used by the test suites, whose evaluators
    all promise GROUP-BY-sorted output. *)
