module L = Levelheaded
module Fault = Lh_fault.Fault
module Obs = Lh_obs.Obs
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

let c_requery_ok = Obs.counter "recover.requery_ok"

type outcome = Passed | Excused of string | Failed of string
type site_report = { sr_site : string; sr_outcome : outcome }
type summary = { s_seed : int; s_sites : site_report list }

(* How to reach each site. [Query shapes] searches fuzzer-generated
   queries of those shapes on the pinned dataset; [Pinned sql] runs one
   fixed query on the layout-stress dataset (for sites only specific
   trie/kernel dispositions reach); [Kernel] calls the CSR kernels
   directly (no generated query is guaranteed to route through them);
   [Ingest] loads a temporary CSV into a fresh engine; [Serving] drives a
   two-session Lh_serve service through the admission / epoch lifecycle. *)
type scenario = Query of Gen.shape list | Pinned of string | Kernel | Ingest | Serving

(* Triangle count over the distinct-key dense stress matrix: position 0 has
   two participants (r0.row ∩ r2.col → a buffered inter_into) and the
   leaf-unit tries make the innermost level a count-only leaf — the only
   query shape that deterministically reaches both specialized-kernel
   sites. *)
let triangle_count_sql =
  "select count(*) as a0 from ls_d r0, ls_d r1, ls_d r2 \
   where r0.col = r1.row and r1.col = r2.row and r2.col = r0.row"

(* A (min,+) path-relaxation join: the owned annotation factors keep the
   leaf in stream mode, so every group's value passes through the
   per-leaf semiring ⊕-fold — the [exec.semiring.fold] site. *)
let semiring_fold_sql =
  "select r0.row as a0, min_plus(r0.v + r1.v) as a1 from ls_d r0, ls_d r1 \
   where r0.col = r1.row group by r0.row"

let scenarios =
  [
    ("engine.query", Query [ Gen.Scan; Gen.Chain ]);
    ("engine.prepare", Query [ Gen.Scan; Gen.Chain ]);
    ("engine.bind", Query [ Gen.Scan; Gen.Chain ]);
    ("plan_cache.fill", Query [ Gen.Scan; Gen.Chain ]);
    ("exec.scan.row", Query [ Gen.Scan ]);
    ("exec.wcoj.leaf", Query [ Gen.Chain; Gen.Star; Gen.Cycle ]);
    ("exec.wcoj.count", Pinned triangle_count_sql);
    ("exec.semiring.fold", Pinned semiring_fold_sql);
    ("set.inter_into", Pinned triangle_count_sql);
    ("trie.build.node", Query [ Gen.Chain; Gen.Star ]);
    ("blas.dispatch", Query [ Gen.La ]);
    ("dense.gemv", Query [ Gen.La ]);
    ("dense.gemm", Query [ Gen.La ]);
    ("pool.chunk", Query [ Gen.Chain; Gen.La ]);
    ("csr.spmv", Kernel);
    ("csr.spgemm", Kernel);
    ("csv.line", Ingest);
    ("ingest.row", Ingest);
    ("serve.admit", Serving);
    ("epoch.publish", Serving);
    ("epoch.retire", Serving);
  ]

let kinds = [ Fault.Generic; Fault.Timeout; Fault.Oom ]
let kind_str = Fault.kind_to_string
let sql_of_ast ast = Format.asprintf "%a" Lh_sql.Ast.pp_query ast

(* Bit-identical row-set equality: the recovery contract is exact, not
   tolerance-based — the re-run takes the very same code path as the clean
   run, so even float summation order must agree. *)
let rows_identical a b = Rows.canonical a = Rows.canonical b

(* ------------------------------------------------------------------ *)
(* Query scenarios                                                      *)

let check_fault_result ~site kind (res : (Table.t, L.Engine.Error.t) result) =
  match (kind, res) with
  | Fault.Generic, Error (L.Engine.Error.Fault_injected s) when s = site -> Ok ()
  | (Fault.Timeout | Fault.Oom), Error L.Engine.Error.Budget_exceeded -> Ok ()
  | _, Ok _ -> Error "fault fired but the query succeeded (silently swallowed)"
  | _, Error e ->
      Error (Printf.sprintf "expected typed fault error, got: %s" (L.Engine.Error.to_string e))

(* The faulted run executes with telemetry on and a threshold-0 slow-query
   sink installed: even a query that dies to an injected fault or budget
   overrun must emit a profile record whose JSONL line parses back through
   lib/obs/json.ml with the matching outcome tag. *)
let check_slow_log ~kind lines =
  match lines with
  | [] -> Error "no slow-log line produced for the faulted query"
  | lines -> (
      let expect =
        match kind with Fault.Generic -> "fault" | Fault.Timeout | Fault.Oom -> "budget"
      in
      let bad =
        List.filter_map
          (fun line ->
            match Lh_obs.Json.parse line with
            | exception Lh_obs.Json.Parse_error m ->
                Some (Printf.sprintf "unparseable slow-log line (%s): %s" m line)
            | j -> (
                match Lh_obs.Json.member "outcome" j with
                | Some (Lh_obs.Json.String o) when o = expect -> None
                | Some (Lh_obs.Json.String o) ->
                    Some (Printf.sprintf "slow-log outcome %S (want %S)" o expect)
                | _ -> Some "slow-log line missing \"outcome\""))
          lines
      in
      match bad with [] -> Ok () | m :: _ -> Error m)

(* One (site, kind) trial on one query: fresh engine, arm, run, check the
   typed error, then re-run the same query on the same engine and demand
   the clean answer. *)
let run_kind ?(layout_stress = false) ~site ~kind ~sql ~clean_rows () =
  let eng = Dataset.build ~layout_stress () in
  L.Engine.set_config eng { (L.Engine.config eng) with L.Config.slow_log_ms = 0.0 };
  let slow_lines = ref [] in
  L.Engine.set_profile_sink eng
    (Some (fun p -> slow_lines := L.Profile.to_string p :: !slow_lines));
  Fault.disarm_all ();
  Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
  let res =
    try Obs.with_enabled true (fun () -> L.Engine.query_result eng sql)
    with e ->
      Fault.disarm_all ();
      failwith
        (Printf.sprintf "%s: unhandled exception escaped query_result: %s" (kind_str kind)
           (Printexc.to_string e))
  in
  Obs.clear_spans ();
  L.Engine.set_profile_sink eng None;
  let nfired = Fault.fired site in
  Fault.disarm_all ();
  if nfired = 0 then match res with Ok _ -> `Unreached | Error _ -> `Skip
  else
    match
      match check_fault_result ~site kind res with
      | Ok () -> check_slow_log ~kind !slow_lines
      | Error _ as e -> e
    with
    | Error msg -> `Outcome (Failed (Printf.sprintf "%s: %s" (kind_str kind) msg))
    | Ok () -> (
        match L.Engine.query_result eng sql with
        | exception e ->
            `Outcome
              (Failed
                 (Printf.sprintf "%s: re-query raised: %s" (kind_str kind) (Printexc.to_string e)))
        | Error e ->
            `Outcome
              (Failed
                 (Printf.sprintf "%s: re-query on the faulted engine failed: %s" (kind_str kind)
                    (L.Engine.Error.to_string e)))
        | Ok t ->
            if rows_identical (Table.to_rows t) clean_rows then begin
              Obs.incr c_requery_ok;
              `Recovered
            end
            else
              `Outcome
                (Failed
                   (Printf.sprintf "%s: re-query differs from a clean engine's answer"
                      (kind_str kind))))

(* One candidate query at (seed, index). The generic-kind trial doubles as
   the reachability probe; once it fires, the same deterministic path
   reaches the site for the budget kinds too. *)
let try_one ~seed ~index ~spec ~site ~profile =
  let ast, _shape = Gen.generate profile ~seed ~index spec in
  let sql = sql_of_ast ast in
  Fault.disarm_all ();
  let clean = Dataset.build () in
  match L.Engine.query_result clean sql with
  | Error _ -> `Skip
  | Ok t -> (
      let clean_rows = Table.to_rows t in
      match run_kind ~site ~kind:Fault.Generic ~sql ~clean_rows () with
      | (`Unreached | `Skip) as r -> r
      | `Outcome o -> `Outcome o
      | `Recovered ->
          let rec go = function
            | [] -> `Outcome Passed
            | k :: rest -> (
                match run_kind ~site ~kind:k ~sql ~clean_rows () with
                | `Recovered -> go rest
                | `Outcome o -> `Outcome o
                | `Unreached ->
                    `Outcome
                      (Failed
                         (Printf.sprintf "%s: site unexpectedly unreached on replay" (kind_str k)))
                | `Skip ->
                    `Outcome
                      (Failed
                         (Printf.sprintf "%s: query failed without the fault firing" (kind_str k))))
          in
          go [ Fault.Timeout; Fault.Oom ])

let query_site ~attempts ~seed site shapes =
  let dflt = L.Config.default in
  if site = "pool.chunk" && dflt.L.Config.domains <= 1 then
    Excused "requires domains > 1 (covered by the LH_DOMAINS=4 leg)"
  else begin
    let spec = { Gen.shapes; Gen.max_relations = 3; Gen.semiring = true } in
    let profile =
      Fault.disarm_all ();
      Dataset.profile (Dataset.build ())
    in
    let exception Done of outcome in
    try
      for index = 0 to attempts - 1 do
        match try_one ~seed ~index ~spec ~site ~profile with
        | `Unreached | `Skip -> ()
        | `Outcome o -> raise (Done o)
      done;
      Failed (Printf.sprintf "no generated query reached the site in %d attempts" attempts)
    with Done o -> o
  end

(* A pinned query on the layout-stress dataset must reach its site
   deterministically — "unreached" is a failure here, not a retry. *)
let pinned_site ~site sql =
  Fault.disarm_all ();
  let clean = Dataset.build ~layout_stress:true () in
  match L.Engine.query_result clean sql with
  | Error e -> Failed ("pinned query failed on a clean engine: " ^ L.Engine.Error.to_string e)
  | Ok t -> (
      let clean_rows = Table.to_rows t in
      let rec go = function
        | [] -> Passed
        | kind :: rest -> (
            match run_kind ~layout_stress:true ~site ~kind ~sql ~clean_rows () with
            | `Recovered -> go rest
            | `Outcome Passed | `Outcome (Excused _) -> go rest
            | `Outcome o -> o
            | `Unreached ->
                Failed (Printf.sprintf "%s: pinned query did not reach the site" (kind_str kind))
            | `Skip ->
                Failed
                  (Printf.sprintf "%s: pinned query failed without the fault firing"
                     (kind_str kind)))
      in
      go kinds)

(* ------------------------------------------------------------------ *)
(* Kernel scenarios: the CSR kernels are not reachable through the SQL
   surface (the engine's BLAS targeting is dense-only), so they are
   exercised by direct calls on a small fixed matrix.                   *)

let kernel_site site =
  let domains = max 1 L.Config.default.L.Config.domains in
  let coo =
    Lh_blas.Coo.create ~nrows:6 ~ncols:6
      ~row:[| 0; 0; 1; 2; 2; 3; 4; 5; 5 |]
      ~col:[| 1; 3; 2; 0; 5; 4; 1; 0; 2 |]
      ~value:[| 1.5; -2.0; 3.25; 0.5; 4.0; -1.25; 2.75; 6.0; -0.5 |]
  in
  let a = Lh_blas.Csr.of_coo coo in
  let x = Array.init 6 (fun i -> float_of_int (i + 1) *. 0.5) in
  let run () =
    match site with
    | "csr.spmv" -> `V (Lh_blas.Csr.spmv ~domains a x)
    | _ -> `M (Lh_blas.Csr.spgemm ~domains a a)
  in
  Fault.disarm_all ();
  let clean = run () in
  let expected_exn kind e =
    match (kind, e) with
    | Fault.Generic, Fault.Injected s -> s = site
    | Fault.Timeout, Lh_util.Budget.Timed_out -> true
    | Fault.Oom, Lh_util.Budget.Out_of_memory_budget -> true
    | _ -> false
  in
  let rec go = function
    | [] -> Passed
    | kind :: rest -> (
        Fault.disarm_all ();
        Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
        let outcome =
          match run () with
          | _ ->
              Fault.disarm_all ();
              Failed (Printf.sprintf "%s: kernel completed despite the armed fault" (kind_str kind))
          | exception e ->
              let fired = Fault.fired site > 0 in
              Fault.disarm_all ();
              if not fired then
                Failed
                  (Printf.sprintf "%s: exception without the site firing: %s" (kind_str kind)
                     (Printexc.to_string e))
              else if not (expected_exn kind e) then
                Failed
                  (Printf.sprintf "%s: unexpected exception: %s" (kind_str kind)
                     (Printexc.to_string e))
              else begin
                match run () with
                | exception e ->
                    Failed
                      (Printf.sprintf "%s: re-run raised: %s" (kind_str kind) (Printexc.to_string e))
                | r ->
                    if r = clean then begin
                      Obs.incr c_requery_ok;
                      Passed
                    end
                    else
                      Failed (Printf.sprintf "%s: re-run differs from clean result" (kind_str kind))
              end
        in
        match outcome with Passed -> go rest | o -> o)
  in
  go kinds

(* ------------------------------------------------------------------ *)
(* Ingest scenarios: a fault mid-load must leave the catalog without the
   table; reloading on the same engine must then produce the clean
   catalog and answers.                                                 *)

let ingest_site site =
  let path = Filename.temp_file "lh_crashtest" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      for i = 0 to 7 do
        Printf.fprintf oc "%d,%d,%g\n" i (i * 3 mod 8) (float_of_int (i + 1) *. 1.5)
      done;
      close_out oc;
      let schema =
        Schema.create
          [
            ("i", Dtype.Int, Schema.Key);
            ("j", Dtype.Int, Schema.Key);
            ("v", Dtype.Float, Schema.Annotation);
          ]
      in
      let sql = "select sum(v) as s from t" in
      Fault.disarm_all ();
      let clean = L.Engine.create () in
      ignore (L.Engine.load_csv clean ~name:"t" ~schema path);
      let clean_rows =
        match L.Engine.query_result clean sql with
        | Ok t -> Table.to_rows t
        | Error e -> failwith ("clean ingest query failed: " ^ L.Engine.Error.to_string e)
      in
      let expected_exn kind e =
        match (kind, e) with
        | Fault.Generic, L.Engine.Error (L.Engine.Error.Fault_injected s) -> s = site
        | Fault.Timeout, Lh_util.Budget.Timed_out -> true
        | Fault.Oom, Lh_util.Budget.Out_of_memory_budget -> true
        | _ -> false
      in
      let rec go = function
        | [] -> Passed
        | kind :: rest -> (
            let eng = L.Engine.create () in
            Fault.disarm_all ();
            (* Nth 3: abort mid-file, after some rows are already staged. *)
            Fault.arm ~kind ~trigger:(Fault.Nth 3) site;
            let outcome =
              match L.Engine.load_csv eng ~name:"t" ~schema path with
              | _ ->
                  Fault.disarm_all ();
                  Failed
                    (Printf.sprintf "%s: ingest completed despite the armed fault" (kind_str kind))
              | exception e ->
                  let fired = Fault.fired site > 0 in
                  Fault.disarm_all ();
                  if not fired then
                    Failed
                      (Printf.sprintf "%s: exception without the site firing: %s" (kind_str kind)
                         (Printexc.to_string e))
                  else if not (expected_exn kind e) then
                    Failed
                      (Printf.sprintf "%s: unexpected exception: %s" (kind_str kind)
                         (Printexc.to_string e))
                  else if L.Catalog.find (L.Engine.catalog eng) "t" <> None then
                    Failed
                      (Printf.sprintf "%s: partial table registered after aborted ingest"
                         (kind_str kind))
                  else begin
                    match L.Engine.load_csv eng ~name:"t" ~schema path with
                    | exception e ->
                        Failed
                          (Printf.sprintf "%s: re-ingest raised: %s" (kind_str kind)
                             (Printexc.to_string e))
                    | _ -> (
                        match L.Engine.query_result eng sql with
                        | Ok t when rows_identical (Table.to_rows t) clean_rows ->
                            Obs.incr c_requery_ok;
                            Passed
                        | Ok _ ->
                            Failed
                              (Printf.sprintf "%s: post-recovery query differs" (kind_str kind))
                        | Error e ->
                            Failed
                              (Printf.sprintf "%s: post-recovery query failed: %s" (kind_str kind)
                                 (L.Engine.Error.to_string e)))
                  end
            in
            match outcome with Passed -> go rest | o -> o)
      in
      go kinds)

(* ------------------------------------------------------------------ *)
(* Serving scenarios: each site must uphold the crash-only contract at
   the service level — a typed error to the one affected caller, every
   other session unaffected, and full recovery (bit-identical answers)
   once the fault clears.                                               *)

module Serve = Lh_serve.Serve

let serve_site site =
  let schema =
    Schema.create [ ("k", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]
  in
  let rows g =
    List.init (4 + g) (fun i -> [ Dtype.VInt i; Dtype.VFloat (float_of_int ((i + 1) * (g + 1))) ])
  in
  let sql = "select sum(v) as s from t" in
  (* Clean per-generation answers from a plain sequential engine — the
     oracle the service must match before, around, and after the fault. *)
  let clean_rows g =
    let eng = L.Engine.create () in
    ignore (L.Engine.register_rows eng ~name:"t" ~schema (rows g));
    match L.Engine.query_result eng sql with
    | Ok t -> Table.to_rows t
    | Error e -> failwith ("serve clean query failed: " ^ L.Engine.Error.to_string e)
  in
  Fault.disarm_all ();
  let clean = [| clean_rows 0; clean_rows 1; clean_rows 2 |] in
  let expected_error kind (e : Serve.error) =
    match (kind, e) with
    | Fault.Generic, Serve.Engine_error (L.Engine.Error.Fault_injected s) -> s = site
    | (Fault.Timeout | Fault.Oom), Serve.Engine_error L.Engine.Error.Budget_exceeded -> true
    | _ -> false
  in
  let rec go = function
    | [] -> Passed
    | kind :: rest -> (
        Fault.disarm_all ();
        let eng = L.Engine.create ~config:{ L.Config.default with L.Config.domains = 1 } () in
        ignore (L.Engine.register_rows eng ~name:"t" ~schema (rows 0));
        let svc = Serve.create eng in
        let victim = Serve.open_session svc in
        let survivor = Serve.open_session svc in
        let check_q name sess g =
          match Serve.query sess sql with
          | Ok t when rows_identical (Table.to_rows t) clean.(g) -> Ok ()
          | Ok _ -> Error (name ^ ": rows differ from the clean answer")
          | Error e -> Error (Printf.sprintf "%s: %s" name (Serve.error_to_string e))
        in
        let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
        let outcome =
          match site with
          | "serve.admit" -> (
              Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
              let r = Serve.query victim sql in
              if Fault.fired site = 0 then Error "site not reached"
              else
                match r with
                | Ok _ -> Error "query succeeded despite the armed admit fault"
                | Error e when expected_error kind e ->
                    (* Nth 1 is consumed: the very next admission — the
                       surviving session's — must sail through. *)
                    check_q "survivor" survivor 0 >>= fun () ->
                    Fault.disarm_all ();
                    check_q "victim re-query" victim 0
                | Error e -> Error ("unexpected error: " ^ Serve.error_to_string e))
          | "epoch.publish" -> (
              let e0 = Serve.current_epoch svc in
              Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
              match Serve.ingest_rows svc ~name:"t" ~schema (rows 1) with
              | Ok _ -> Error "ingest succeeded despite the armed publish fault"
              | Error e ->
                  if Fault.fired site = 0 then Error "site not reached"
                  else if not (expected_error kind e) then
                    Error ("unexpected error: " ^ Serve.error_to_string e)
                  else if Serve.current_epoch svc <> e0 then
                    Error "epoch advanced despite the failed publish"
                  else
                    check_q "survivor on the old epoch" survivor 0 >>= fun () ->
                    Fault.disarm_all ();
                    (* install-on-success at the service level: retrying
                       the ingest publishes cleanly *)
                    (match Serve.ingest_rows svc ~name:"t" ~schema (rows 1) with
                    | Ok _ -> Ok ()
                    | Error e -> Error ("re-ingest failed: " ^ Serve.error_to_string e))
                    >>= fun () -> check_q "post-recovery" survivor 1)
          | _ (* epoch.retire *) -> (
              ignore (Serve.pin victim);
              match Serve.ingest_rows svc ~name:"t" ~schema (rows 1) with
              | Error e -> Error ("setup ingest failed: " ^ Serve.error_to_string e)
              | Ok _ -> (
                  (* victim's pin is the only thing keeping epoch 0 alive;
                     the armed retire fault fires when unpin reclaims it *)
                  Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
                  match Serve.unpin victim with
                  | () ->
                      Fault.disarm_all ();
                      Error "unpin reclaimed despite the armed retire fault"
                  | exception Serve.Error e ->
                      if Fault.fired site = 0 then Error "site not reached"
                      else if not (expected_error kind e) then
                        Error ("unexpected error: " ^ Serve.error_to_string e)
                      else begin
                        Fault.disarm_all ();
                        (* the epoch merely leaked; both sessions keep
                           answering on the current epoch … *)
                        check_q "victim after retire fault" victim 1 >>= fun () ->
                        check_q "survivor after retire fault" survivor 1 >>= fun () ->
                        (* … and the next publish sweeps the leak *)
                        match Serve.ingest_rows svc ~name:"t" ~schema (rows 2) with
                        | Error e -> Error ("sweep ingest failed: " ^ Serve.error_to_string e)
                        | Ok _ ->
                            if List.length (Serve.epochs svc) <> 1 then
                              Error "leaked epoch not reclaimed by the next sweep"
                            else check_q "post-sweep" victim 2
                      end))
        in
        Serve.close svc;
        Fault.disarm_all ();
        match outcome with
        | Ok () -> go rest
        | Error m -> Failed (Printf.sprintf "%s: %s" (kind_str kind) m))
  in
  go kinds

(* ------------------------------------------------------------------ *)

let run ?(progress = fun _ -> ()) ?(attempts = 40) ~seed () =
  Fault.disarm_all ();
  let registered = Fault.registered () in
  let scenario_names = List.map fst scenarios in
  let reports =
    List.map
      (fun (site, scen) ->
        progress (Printf.sprintf "crashtest %s" site);
        let outcome =
          if not (List.mem site registered) then
            Failed "site not registered in this binary (renamed or dead code?)"
          else
            try
              match scen with
              | Query shapes -> query_site ~attempts ~seed site shapes
              | Pinned sql -> pinned_site ~site sql
              | Kernel -> kernel_site site
              | Ingest -> ingest_site site
              | Serving -> serve_site site
            with e -> Failed ("harness exception: " ^ Printexc.to_string e)
        in
        { sr_site = site; sr_outcome = outcome })
      scenarios
  in
  (* Coverage is part of the contract: a site someone registers without
     teaching the harness how to reach it fails loudly, here. The [test.*]
     prefix is reserved for the fault registry's own unit tests
     (test/test_fault.ml registers synthetic sites in-process). *)
  let uncovered =
    List.filter
      (fun s ->
        (not (List.mem s scenario_names)) && not (Fault.glob_match ~pattern:"test.*" s))
      registered
    |> List.map (fun s ->
           { sr_site = s; sr_outcome = Failed "registered fault site has no crashtest scenario" })
  in
  Fault.disarm_all ();
  { s_seed = seed; s_sites = reports @ uncovered }

let ok s =
  List.for_all (fun r -> match r.sr_outcome with Failed _ -> false | _ -> true) s.s_sites

let to_text s =
  let b = Buffer.create 512 in
  let failed = ref 0 and excused = ref 0 in
  List.iter
    (fun r ->
      let status, detail =
        match r.sr_outcome with
        | Passed -> ("PASS", "")
        | Excused m ->
            incr excused;
            ("SKIP", m)
        | Failed m ->
            incr failed;
            ("FAIL", m)
      in
      Buffer.add_string b
        (Printf.sprintf "  [%s] %-18s%s\n" status r.sr_site
           (if detail = "" then "" else " " ^ detail)))
    s.s_sites;
  Buffer.add_string b
    (Printf.sprintf "crashtest seed %d: %d sites, %d failed, %d excused\n" s.s_seed
       (List.length s.s_sites) !failed !excused);
  Buffer.contents b
