module L = Levelheaded
module Fault = Lh_fault.Fault
module Obs = Lh_obs.Obs
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

let c_requery_ok = Obs.counter "recover.requery_ok"

type outcome = Passed | Excused of string | Failed of string
type site_report = { sr_site : string; sr_outcome : outcome }
type summary = { s_seed : int; s_sites : site_report list }

(* How to reach each site. [Query shapes] searches fuzzer-generated
   queries of those shapes on the pinned dataset; [Pinned sql] runs one
   fixed query on the layout-stress dataset (for sites only specific
   trie/kernel dispositions reach); [Kernel] calls the CSR kernels
   directly (no generated query is guaranteed to route through them);
   [Ingest] loads a temporary CSV into a fresh engine; [Serving] drives a
   two-session Lh_serve service through the admission / epoch lifecycle;
   [Durable] drives a store-attached service through a faulted durable
   ingest and then re-opens the directory to prove recovery; [Recovery]
   arms a site that only fires inside {!Lh_durable.Store.open_dir}
   itself. *)
type scenario =
  | Query of Gen.shape list
  | Pinned of string
  | Kernel
  | Ingest
  | Serving
  | Durable
  | Recovery

(* Triangle count over the distinct-key dense stress matrix: position 0 has
   two participants (r0.row ∩ r2.col → a buffered inter_into) and the
   leaf-unit tries make the innermost level a count-only leaf — the only
   query shape that deterministically reaches both specialized-kernel
   sites. *)
let triangle_count_sql =
  "select count(*) as a0 from ls_d r0, ls_d r1, ls_d r2 \
   where r0.col = r1.row and r1.col = r2.row and r2.col = r0.row"

(* A (min,+) path-relaxation join: the owned annotation factors keep the
   leaf in stream mode, so every group's value passes through the
   per-leaf semiring ⊕-fold — the [exec.semiring.fold] site. *)
let semiring_fold_sql =
  "select r0.row as a0, min_plus(r0.v + r1.v) as a1 from ls_d r0, ls_d r1 \
   where r0.col = r1.row group by r0.row"

let scenarios =
  [
    ("engine.query", Query [ Gen.Scan; Gen.Chain ]);
    ("engine.prepare", Query [ Gen.Scan; Gen.Chain ]);
    ("engine.bind", Query [ Gen.Scan; Gen.Chain ]);
    ("plan_cache.fill", Query [ Gen.Scan; Gen.Chain ]);
    ("exec.scan.row", Query [ Gen.Scan ]);
    ("exec.wcoj.leaf", Query [ Gen.Chain; Gen.Star; Gen.Cycle ]);
    ("exec.wcoj.count", Pinned triangle_count_sql);
    ("exec.semiring.fold", Pinned semiring_fold_sql);
    ("set.inter_into", Pinned triangle_count_sql);
    ("trie.build.node", Query [ Gen.Chain; Gen.Star ]);
    ("blas.dispatch", Query [ Gen.La ]);
    ("dense.gemv", Query [ Gen.La ]);
    ("dense.gemm", Query [ Gen.La ]);
    ("pool.chunk", Query [ Gen.Chain; Gen.La ]);
    ("csr.spmv", Kernel);
    ("csr.spgemm", Kernel);
    ("csv.line", Ingest);
    ("ingest.row", Ingest);
    ("serve.admit", Serving);
    ("epoch.publish", Serving);
    ("epoch.retire", Serving);
    ("wal.append", Durable);
    ("wal.fsync", Durable);
    ("checkpoint.write", Durable);
    ("manifest.swap", Durable);
    ("wal.replay", Recovery);
    ("checkpoint.load", Recovery);
  ]

let kinds = [ Fault.Generic; Fault.Timeout; Fault.Oom ]
let kind_str = Fault.kind_to_string
let sql_of_ast ast = Format.asprintf "%a" Lh_sql.Ast.pp_query ast

(* Bit-identical row-set equality: the recovery contract is exact, not
   tolerance-based — the re-run takes the very same code path as the clean
   run, so even float summation order must agree. *)
let rows_identical a b = Rows.canonical a = Rows.canonical b

(* ------------------------------------------------------------------ *)
(* Query scenarios                                                      *)

let check_fault_result ~site kind (res : (Table.t, L.Engine.Error.t) result) =
  match (kind, res) with
  | Fault.Generic, Error (L.Engine.Error.Fault_injected s) when s = site -> Ok ()
  | (Fault.Timeout | Fault.Oom), Error L.Engine.Error.Budget_exceeded -> Ok ()
  | _, Ok _ -> Error "fault fired but the query succeeded (silently swallowed)"
  | _, Error e ->
      Error (Printf.sprintf "expected typed fault error, got: %s" (L.Engine.Error.to_string e))

(* The faulted run executes with telemetry on and a threshold-0 slow-query
   sink installed: even a query that dies to an injected fault or budget
   overrun must emit a profile record whose JSONL line parses back through
   lib/obs/json.ml with the matching outcome tag. *)
let check_slow_log ~kind lines =
  match lines with
  | [] -> Error "no slow-log line produced for the faulted query"
  | lines -> (
      let expect =
        match kind with Fault.Generic -> "fault" | Fault.Timeout | Fault.Oom -> "budget"
      in
      let bad =
        List.filter_map
          (fun line ->
            match Lh_obs.Json.parse line with
            | exception Lh_obs.Json.Parse_error m ->
                Some (Printf.sprintf "unparseable slow-log line (%s): %s" m line)
            | j -> (
                match Lh_obs.Json.member "outcome" j with
                | Some (Lh_obs.Json.String o) when o = expect -> None
                | Some (Lh_obs.Json.String o) ->
                    Some (Printf.sprintf "slow-log outcome %S (want %S)" o expect)
                | _ -> Some "slow-log line missing \"outcome\""))
          lines
      in
      match bad with [] -> Ok () | m :: _ -> Error m)

(* One (site, kind) trial on one query: fresh engine, arm, run, check the
   typed error, then re-run the same query on the same engine and demand
   the clean answer. *)
let run_kind ?(layout_stress = false) ~site ~kind ~sql ~clean_rows () =
  let eng = Dataset.build ~layout_stress () in
  L.Engine.set_config eng { (L.Engine.config eng) with L.Config.slow_log_ms = 0.0 };
  let slow_lines = ref [] in
  L.Engine.set_profile_sink eng
    (Some (fun p -> slow_lines := L.Profile.to_string p :: !slow_lines));
  Fault.disarm_all ();
  Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
  let res =
    try Obs.with_enabled true (fun () -> L.Engine.query_result eng sql)
    with e ->
      Fault.disarm_all ();
      failwith
        (Printf.sprintf "%s: unhandled exception escaped query_result: %s" (kind_str kind)
           (Printexc.to_string e))
  in
  Obs.clear_spans ();
  L.Engine.set_profile_sink eng None;
  let nfired = Fault.fired site in
  Fault.disarm_all ();
  if nfired = 0 then match res with Ok _ -> `Unreached | Error _ -> `Skip
  else
    match
      match check_fault_result ~site kind res with
      | Ok () -> check_slow_log ~kind !slow_lines
      | Error _ as e -> e
    with
    | Error msg -> `Outcome (Failed (Printf.sprintf "%s: %s" (kind_str kind) msg))
    | Ok () -> (
        match L.Engine.query_result eng sql with
        | exception e ->
            `Outcome
              (Failed
                 (Printf.sprintf "%s: re-query raised: %s" (kind_str kind) (Printexc.to_string e)))
        | Error e ->
            `Outcome
              (Failed
                 (Printf.sprintf "%s: re-query on the faulted engine failed: %s" (kind_str kind)
                    (L.Engine.Error.to_string e)))
        | Ok t ->
            if rows_identical (Table.to_rows t) clean_rows then begin
              Obs.incr c_requery_ok;
              `Recovered
            end
            else
              `Outcome
                (Failed
                   (Printf.sprintf "%s: re-query differs from a clean engine's answer"
                      (kind_str kind))))

(* One candidate query at (seed, index). The generic-kind trial doubles as
   the reachability probe; once it fires, the same deterministic path
   reaches the site for the budget kinds too. *)
let try_one ~seed ~index ~spec ~site ~profile =
  let ast, _shape = Gen.generate profile ~seed ~index spec in
  let sql = sql_of_ast ast in
  Fault.disarm_all ();
  let clean = Dataset.build () in
  match L.Engine.query_result clean sql with
  | Error _ -> `Skip
  | Ok t -> (
      let clean_rows = Table.to_rows t in
      match run_kind ~site ~kind:Fault.Generic ~sql ~clean_rows () with
      | (`Unreached | `Skip) as r -> r
      | `Outcome o -> `Outcome o
      | `Recovered ->
          let rec go = function
            | [] -> `Outcome Passed
            | k :: rest -> (
                match run_kind ~site ~kind:k ~sql ~clean_rows () with
                | `Recovered -> go rest
                | `Outcome o -> `Outcome o
                | `Unreached ->
                    `Outcome
                      (Failed
                         (Printf.sprintf "%s: site unexpectedly unreached on replay" (kind_str k)))
                | `Skip ->
                    `Outcome
                      (Failed
                         (Printf.sprintf "%s: query failed without the fault firing" (kind_str k))))
          in
          go [ Fault.Timeout; Fault.Oom ])

let query_site ~attempts ~seed site shapes =
  let dflt = L.Config.default in
  if site = "pool.chunk" && dflt.L.Config.domains <= 1 then
    Excused "requires domains > 1 (covered by the LH_DOMAINS=4 leg)"
  else begin
    let spec = { Gen.shapes; Gen.max_relations = 3; Gen.semiring = true } in
    let profile =
      Fault.disarm_all ();
      Dataset.profile (Dataset.build ())
    in
    let exception Done of outcome in
    try
      for index = 0 to attempts - 1 do
        match try_one ~seed ~index ~spec ~site ~profile with
        | `Unreached | `Skip -> ()
        | `Outcome o -> raise (Done o)
      done;
      Failed (Printf.sprintf "no generated query reached the site in %d attempts" attempts)
    with Done o -> o
  end

(* A pinned query on the layout-stress dataset must reach its site
   deterministically — "unreached" is a failure here, not a retry. *)
let pinned_site ~site sql =
  Fault.disarm_all ();
  let clean = Dataset.build ~layout_stress:true () in
  match L.Engine.query_result clean sql with
  | Error e -> Failed ("pinned query failed on a clean engine: " ^ L.Engine.Error.to_string e)
  | Ok t -> (
      let clean_rows = Table.to_rows t in
      let rec go = function
        | [] -> Passed
        | kind :: rest -> (
            match run_kind ~layout_stress:true ~site ~kind ~sql ~clean_rows () with
            | `Recovered -> go rest
            | `Outcome Passed | `Outcome (Excused _) -> go rest
            | `Outcome o -> o
            | `Unreached ->
                Failed (Printf.sprintf "%s: pinned query did not reach the site" (kind_str kind))
            | `Skip ->
                Failed
                  (Printf.sprintf "%s: pinned query failed without the fault firing"
                     (kind_str kind)))
      in
      go kinds)

(* ------------------------------------------------------------------ *)
(* Kernel scenarios: the CSR kernels are not reachable through the SQL
   surface (the engine's BLAS targeting is dense-only), so they are
   exercised by direct calls on a small fixed matrix.                   *)

let kernel_site site =
  let domains = max 1 L.Config.default.L.Config.domains in
  let coo =
    Lh_blas.Coo.create ~nrows:6 ~ncols:6
      ~row:[| 0; 0; 1; 2; 2; 3; 4; 5; 5 |]
      ~col:[| 1; 3; 2; 0; 5; 4; 1; 0; 2 |]
      ~value:[| 1.5; -2.0; 3.25; 0.5; 4.0; -1.25; 2.75; 6.0; -0.5 |]
  in
  let a = Lh_blas.Csr.of_coo coo in
  let x = Array.init 6 (fun i -> float_of_int (i + 1) *. 0.5) in
  let run () =
    match site with
    | "csr.spmv" -> `V (Lh_blas.Csr.spmv ~domains a x)
    | _ -> `M (Lh_blas.Csr.spgemm ~domains a a)
  in
  Fault.disarm_all ();
  let clean = run () in
  let expected_exn kind e =
    match (kind, e) with
    | Fault.Generic, Fault.Injected s -> s = site
    | Fault.Timeout, Lh_util.Budget.Timed_out -> true
    | Fault.Oom, Lh_util.Budget.Out_of_memory_budget -> true
    | _ -> false
  in
  let rec go = function
    | [] -> Passed
    | kind :: rest -> (
        Fault.disarm_all ();
        Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
        let outcome =
          match run () with
          | _ ->
              Fault.disarm_all ();
              Failed (Printf.sprintf "%s: kernel completed despite the armed fault" (kind_str kind))
          | exception e ->
              let fired = Fault.fired site > 0 in
              Fault.disarm_all ();
              if not fired then
                Failed
                  (Printf.sprintf "%s: exception without the site firing: %s" (kind_str kind)
                     (Printexc.to_string e))
              else if not (expected_exn kind e) then
                Failed
                  (Printf.sprintf "%s: unexpected exception: %s" (kind_str kind)
                     (Printexc.to_string e))
              else begin
                match run () with
                | exception e ->
                    Failed
                      (Printf.sprintf "%s: re-run raised: %s" (kind_str kind) (Printexc.to_string e))
                | r ->
                    if r = clean then begin
                      Obs.incr c_requery_ok;
                      Passed
                    end
                    else
                      Failed (Printf.sprintf "%s: re-run differs from clean result" (kind_str kind))
              end
        in
        match outcome with Passed -> go rest | o -> o)
  in
  go kinds

(* ------------------------------------------------------------------ *)
(* Ingest scenarios: a fault mid-load must leave the catalog without the
   table; reloading on the same engine must then produce the clean
   catalog and answers.                                                 *)

let ingest_site site =
  let path = Filename.temp_file "lh_crashtest" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      for i = 0 to 7 do
        Printf.fprintf oc "%d,%d,%g\n" i (i * 3 mod 8) (float_of_int (i + 1) *. 1.5)
      done;
      close_out oc;
      let schema =
        Schema.create
          [
            ("i", Dtype.Int, Schema.Key);
            ("j", Dtype.Int, Schema.Key);
            ("v", Dtype.Float, Schema.Annotation);
          ]
      in
      let sql = "select sum(v) as s from t" in
      Fault.disarm_all ();
      let clean = L.Engine.create () in
      ignore (L.Engine.load_csv clean ~name:"t" ~schema path);
      let clean_rows =
        match L.Engine.query_result clean sql with
        | Ok t -> Table.to_rows t
        | Error e -> failwith ("clean ingest query failed: " ^ L.Engine.Error.to_string e)
      in
      let expected_exn kind e =
        match (kind, e) with
        | Fault.Generic, L.Engine.Error (L.Engine.Error.Fault_injected s) -> s = site
        | Fault.Timeout, Lh_util.Budget.Timed_out -> true
        | Fault.Oom, Lh_util.Budget.Out_of_memory_budget -> true
        | _ -> false
      in
      let rec go = function
        | [] -> Passed
        | kind :: rest -> (
            let eng = L.Engine.create () in
            Fault.disarm_all ();
            (* Nth 3: abort mid-file, after some rows are already staged. *)
            Fault.arm ~kind ~trigger:(Fault.Nth 3) site;
            let outcome =
              match L.Engine.load_csv eng ~name:"t" ~schema path with
              | _ ->
                  Fault.disarm_all ();
                  Failed
                    (Printf.sprintf "%s: ingest completed despite the armed fault" (kind_str kind))
              | exception e ->
                  let fired = Fault.fired site > 0 in
                  Fault.disarm_all ();
                  if not fired then
                    Failed
                      (Printf.sprintf "%s: exception without the site firing: %s" (kind_str kind)
                         (Printexc.to_string e))
                  else if not (expected_exn kind e) then
                    Failed
                      (Printf.sprintf "%s: unexpected exception: %s" (kind_str kind)
                         (Printexc.to_string e))
                  else if L.Catalog.find (L.Engine.catalog eng) "t" <> None then
                    Failed
                      (Printf.sprintf "%s: partial table registered after aborted ingest"
                         (kind_str kind))
                  else begin
                    match L.Engine.load_csv eng ~name:"t" ~schema path with
                    | exception e ->
                        Failed
                          (Printf.sprintf "%s: re-ingest raised: %s" (kind_str kind)
                             (Printexc.to_string e))
                    | _ -> (
                        match L.Engine.query_result eng sql with
                        | Ok t when rows_identical (Table.to_rows t) clean_rows ->
                            Obs.incr c_requery_ok;
                            Passed
                        | Ok _ ->
                            Failed
                              (Printf.sprintf "%s: post-recovery query differs" (kind_str kind))
                        | Error e ->
                            Failed
                              (Printf.sprintf "%s: post-recovery query failed: %s" (kind_str kind)
                                 (L.Engine.Error.to_string e)))
                  end
            in
            match outcome with Passed -> go rest | o -> o)
      in
      go kinds)

(* ------------------------------------------------------------------ *)
(* Serving scenarios: each site must uphold the crash-only contract at
   the service level — a typed error to the one affected caller, every
   other session unaffected, and full recovery (bit-identical answers)
   once the fault clears.                                               *)

module Serve = Lh_serve.Serve

let serve_site site =
  let schema =
    Schema.create [ ("k", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]
  in
  let rows g =
    List.init (4 + g) (fun i -> [ Dtype.VInt i; Dtype.VFloat (float_of_int ((i + 1) * (g + 1))) ])
  in
  let sql = "select sum(v) as s from t" in
  (* Clean per-generation answers from a plain sequential engine — the
     oracle the service must match before, around, and after the fault. *)
  let clean_rows g =
    let eng = L.Engine.create () in
    ignore (L.Engine.register_rows eng ~name:"t" ~schema (rows g));
    match L.Engine.query_result eng sql with
    | Ok t -> Table.to_rows t
    | Error e -> failwith ("serve clean query failed: " ^ L.Engine.Error.to_string e)
  in
  Fault.disarm_all ();
  let clean = [| clean_rows 0; clean_rows 1; clean_rows 2 |] in
  let expected_error kind (e : Serve.error) =
    match (kind, e) with
    | Fault.Generic, Serve.Engine_error (L.Engine.Error.Fault_injected s) -> s = site
    | (Fault.Timeout | Fault.Oom), Serve.Engine_error L.Engine.Error.Budget_exceeded -> true
    | _ -> false
  in
  let rec go = function
    | [] -> Passed
    | kind :: rest -> (
        Fault.disarm_all ();
        let eng = L.Engine.create ~config:{ L.Config.default with L.Config.domains = 1 } () in
        ignore (L.Engine.register_rows eng ~name:"t" ~schema (rows 0));
        let svc = Serve.create eng in
        let victim = Serve.open_session svc in
        let survivor = Serve.open_session svc in
        let check_q name sess g =
          match Serve.query sess sql with
          | Ok t when rows_identical (Table.to_rows t) clean.(g) -> Ok ()
          | Ok _ -> Error (name ^ ": rows differ from the clean answer")
          | Error e -> Error (Printf.sprintf "%s: %s" name (Serve.error_to_string e))
        in
        let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
        let outcome =
          match site with
          | "serve.admit" -> (
              Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
              let r = Serve.query victim sql in
              if Fault.fired site = 0 then Error "site not reached"
              else
                match r with
                | Ok _ -> Error "query succeeded despite the armed admit fault"
                | Error e when expected_error kind e ->
                    (* Nth 1 is consumed: the very next admission — the
                       surviving session's — must sail through. *)
                    check_q "survivor" survivor 0 >>= fun () ->
                    Fault.disarm_all ();
                    check_q "victim re-query" victim 0
                | Error e -> Error ("unexpected error: " ^ Serve.error_to_string e))
          | "epoch.publish" -> (
              let e0 = Serve.current_epoch svc in
              Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
              match Serve.ingest_rows svc ~name:"t" ~schema (rows 1) with
              | Ok _ -> Error "ingest succeeded despite the armed publish fault"
              | Error e ->
                  if Fault.fired site = 0 then Error "site not reached"
                  else if not (expected_error kind e) then
                    Error ("unexpected error: " ^ Serve.error_to_string e)
                  else if Serve.current_epoch svc <> e0 then
                    Error "epoch advanced despite the failed publish"
                  else
                    check_q "survivor on the old epoch" survivor 0 >>= fun () ->
                    Fault.disarm_all ();
                    (* install-on-success at the service level: retrying
                       the ingest publishes cleanly *)
                    (match Serve.ingest_rows svc ~name:"t" ~schema (rows 1) with
                    | Ok _ -> Ok ()
                    | Error e -> Error ("re-ingest failed: " ^ Serve.error_to_string e))
                    >>= fun () -> check_q "post-recovery" survivor 1)
          | _ (* epoch.retire *) -> (
              ignore (Serve.pin victim);
              match Serve.ingest_rows svc ~name:"t" ~schema (rows 1) with
              | Error e -> Error ("setup ingest failed: " ^ Serve.error_to_string e)
              | Ok _ -> (
                  (* victim's pin is the only thing keeping epoch 0 alive;
                     the armed retire fault fires when unpin reclaims it *)
                  Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
                  match Serve.unpin victim with
                  | () ->
                      Fault.disarm_all ();
                      Error "unpin reclaimed despite the armed retire fault"
                  | exception Serve.Error e ->
                      if Fault.fired site = 0 then Error "site not reached"
                      else if not (expected_error kind e) then
                        Error ("unexpected error: " ^ Serve.error_to_string e)
                      else begin
                        Fault.disarm_all ();
                        (* the epoch merely leaked; both sessions keep
                           answering on the current epoch … *)
                        check_q "victim after retire fault" victim 1 >>= fun () ->
                        check_q "survivor after retire fault" survivor 1 >>= fun () ->
                        (* … and the next publish sweeps the leak *)
                        match Serve.ingest_rows svc ~name:"t" ~schema (rows 2) with
                        | Error e -> Error ("sweep ingest failed: " ^ Serve.error_to_string e)
                        | Ok _ ->
                            if List.length (Serve.epochs svc) <> 1 then
                              Error "leaked epoch not reclaimed by the next sweep"
                            else check_q "post-sweep" victim 2
                      end))
        in
        Serve.close svc;
        Fault.disarm_all ();
        match outcome with
        | Ok () -> go rest
        | Error m -> Failed (Printf.sprintf "%s: %s" (kind_str kind) m))
  in
  go kinds

(* ------------------------------------------------------------------ *)
(* Durable scenarios: the WAL / checkpoint / manifest fault sites must
   uphold the durability contract — a faulted durable ingest surfaces as
   the typed error, the served epoch and the live writer are untouched
   (rollback), retrying publishes cleanly, and a restart on the same
   directory recovers the last acknowledged state bit-identically.      *)

module Store = Lh_durable.Store
module Wal = Lh_durable.Wal

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let dir = Filename.temp_file "lh_crashtest" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let durable_schema =
  Schema.create [ ("k", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]

let durable_rows g =
  List.init (4 + g) (fun i -> [ Dtype.VInt i; Dtype.VFloat (float_of_int ((i + 1) * (g + 1))) ])

let durable_sql = "select sum(v) as s from t"

let durable_clean_rows g =
  let eng = L.Engine.create () in
  ignore (L.Engine.register_rows eng ~name:"t" ~schema:durable_schema (durable_rows g));
  match L.Engine.query_result eng durable_sql with
  | Ok t -> Table.to_rows t
  | Error e -> failwith ("durable clean query failed: " ^ L.Engine.Error.to_string e)

(* Re-open the store directory and demand a freshly recovered engine
   answers exactly like a clean engine holding generation [g]. *)
let check_recovery dir g =
  let store, recovered = Store.open_dir dir in
  Fun.protect
    ~finally:(fun () -> Store.close store)
    (fun () ->
      let eng = L.Engine.create () in
      Store.replay_into recovered (fun ~name ~schema rows ->
          ignore (L.Engine.register_rows eng ~name ~schema rows));
      match L.Engine.query_result eng durable_sql with
      | Ok t when rows_identical (Table.to_rows t) (durable_clean_rows g) -> Ok ()
      | Ok _ -> Error "recovered engine differs from the clean answer"
      | Error e -> Error ("recovered query failed: " ^ L.Engine.Error.to_string e))

let durable_site site =
  Fault.disarm_all ();
  let clean = [| durable_clean_rows 0; durable_clean_rows 1 |] in
  let expected_error kind (e : Serve.error) =
    match (kind, e) with
    | Fault.Generic, Serve.Engine_error (L.Engine.Error.Fault_injected s) -> s = site
    | (Fault.Timeout | Fault.Oom), Serve.Engine_error L.Engine.Error.Budget_exceeded -> true
    | _ -> false
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let rec go = function
    | [] -> Passed
    | kind :: rest -> (
        let outcome =
          with_temp_dir (fun dir ->
              Fault.disarm_all ();
              (* [Always] puts wal.fsync on every append's hot path;
                 checkpoint_every 1 puts checkpoint.write and
                 manifest.swap on every durable ingest's. Arm only after
                 open_dir — a fresh store writes its manifest on open. *)
              let store, _ = Store.open_dir ~sync:Wal.Always dir in
              let eng =
                L.Engine.create ~config:{ L.Config.default with L.Config.domains = 1 } ()
              in
              ignore (L.Engine.register_rows eng ~name:"t" ~schema:durable_schema (durable_rows 0));
              let svc = Serve.create ~store ~checkpoint_every:1 eng in
              let survivor = Serve.open_session svc in
              let e0 = Serve.current_epoch svc in
              let check_q name g =
                match Serve.query survivor durable_sql with
                | Ok t when rows_identical (Table.to_rows t) clean.(g) -> Ok ()
                | Ok _ -> Error (name ^ ": rows differ from the clean answer")
                | Error e -> Error (Printf.sprintf "%s: %s" name (Serve.error_to_string e))
              in
              Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
              let res = Serve.ingest_rows svc ~name:"t" ~schema:durable_schema (durable_rows 1) in
              let fired = Fault.fired site > 0 in
              Fault.disarm_all ();
              let outcome =
                match res with
                | Ok _ -> Error "durable ingest succeeded despite the armed fault"
                | Error _ when not fired -> Error "site not reached"
                | Error e when not (expected_error kind e) ->
                    Error ("unexpected error: " ^ Serve.error_to_string e)
                | Error _ ->
                    if Serve.current_epoch svc <> e0 then
                      Error "epoch advanced despite the failed durable ingest"
                    else
                      check_q "survivor on the old epoch" 0 >>= fun () ->
                      (match
                         Serve.ingest_rows svc ~name:"t" ~schema:durable_schema (durable_rows 1)
                       with
                      | Ok _ -> Ok ()
                      | Error e -> Error ("re-ingest failed: " ^ Serve.error_to_string e))
                      >>= fun () ->
                      check_q "post-recovery" 1 >>= fun () ->
                      (* Restart: close the service (and its store), then
                         recover the directory from scratch. *)
                      Serve.close svc;
                      check_recovery dir 1
              in
              Serve.close svc;
              outcome)
        in
        Fault.disarm_all ();
        match outcome with
        | Ok () -> go rest
        | Error m -> Failed (Printf.sprintf "%s: %s" (kind_str kind) m))
  in
  go kinds

(* Recovery-path sites (wal.replay, checkpoint.load) only fire inside
   [Store.open_dir]: seed a directory with durable state, arm, and demand
   the faulted open raises the typed exception without corrupting
   anything — the next open must recover everything. *)
let recovery_site site =
  Fault.disarm_all ();
  let expected_exn kind e =
    match (kind, e) with
    | Fault.Generic, Fault.Injected s -> s = site
    | Fault.Timeout, Lh_util.Budget.Timed_out -> true
    | Fault.Oom, Lh_util.Budget.Out_of_memory_budget -> true
    | _ -> false
  in
  let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let rec go = function
    | [] -> Passed
    | kind :: rest -> (
        let outcome =
          with_temp_dir (fun dir ->
              Fault.disarm_all ();
              let store, _ = Store.open_dir ~sync:(Wal.Group 2) dir in
              ignore (Store.log_batch store ~name:"t" ~schema:durable_schema (durable_rows 0));
              if site = "checkpoint.load" then
                Store.checkpoint store [ ("t", durable_schema, durable_rows 0) ];
              ignore (Store.log_batch store ~name:"t" ~schema:durable_schema (durable_rows 1));
              ignore (Store.log_batch store ~name:"t" ~schema:durable_schema (durable_rows 2));
              Store.close store;
              Fault.arm ~kind ~trigger:(Fault.Nth 1) site;
              let res =
                match Store.open_dir dir with
                | st, _ ->
                    Store.close st;
                    Error "recovery succeeded despite the armed fault"
                | exception e ->
                    if Fault.fired site = 0 then
                      Error ("exception without the site firing: " ^ Printexc.to_string e)
                    else if not (expected_exn kind e) then
                      Error ("unexpected exception: " ^ Printexc.to_string e)
                    else Ok ()
              in
              Fault.disarm_all ();
              res >>= fun () -> check_recovery dir 2)
        in
        Fault.disarm_all ();
        match outcome with
        | Ok () -> go rest
        | Error m -> Failed (Printf.sprintf "%s: %s" (kind_str kind) m))
  in
  go kinds

(* ------------------------------------------------------------------ *)

let run ?(progress = fun _ -> ()) ?(attempts = 40) ?site ~seed () =
  Fault.disarm_all ();
  let wanted s = match site with None -> true | Some pat -> Fault.glob_match ~pattern:pat s in
  let registered = Fault.registered () in
  let scenario_names = List.map fst scenarios in
  let reports =
    List.filter_map
      (fun (site, scen) ->
        if not (wanted site) then None
        else begin
          progress (Printf.sprintf "crashtest %s" site);
          let outcome =
            if not (List.mem site registered) then
              Failed "site not registered in this binary (renamed or dead code?)"
            else
              try
                match scen with
                | Query shapes -> query_site ~attempts ~seed site shapes
                | Pinned sql -> pinned_site ~site sql
                | Kernel -> kernel_site site
                | Ingest -> ingest_site site
                | Serving -> serve_site site
                | Durable -> durable_site site
                | Recovery -> recovery_site site
              with e -> Failed ("harness exception: " ^ Printexc.to_string e)
          in
          Some { sr_site = site; sr_outcome = outcome }
        end)
      scenarios
  in
  (* Coverage is part of the contract: a site someone registers without
     teaching the harness how to reach it fails loudly, here. The [test.*]
     prefix is reserved for the fault registry's own unit tests
     (test/test_fault.ml registers synthetic sites in-process). *)
  let uncovered =
    List.filter
      (fun s ->
        wanted s
        && (not (List.mem s scenario_names))
        && not (Fault.glob_match ~pattern:"test.*" s))
      registered
    |> List.map (fun s ->
           { sr_site = s; sr_outcome = Failed "registered fault site has no crashtest scenario" })
  in
  Fault.disarm_all ();
  { s_seed = seed; s_sites = reports @ uncovered }

let ok s =
  List.for_all (fun r -> match r.sr_outcome with Failed _ -> false | _ -> true) s.s_sites

let to_text s =
  let b = Buffer.create 512 in
  let failed = ref 0 and excused = ref 0 in
  List.iter
    (fun r ->
      let status, detail =
        match r.sr_outcome with
        | Passed -> ("PASS", "")
        | Excused m ->
            incr excused;
            ("SKIP", m)
        | Failed m ->
            incr failed;
            ("FAIL", m)
      in
      Buffer.add_string b
        (Printf.sprintf "  [%s] %-18s%s\n" status r.sr_site
           (if detail = "" then "" else " " ^ detail)))
    s.s_sites;
  Buffer.add_string b
    (Printf.sprintf "crashtest seed %d: %d sites, %d failed, %d excused\n" s.s_seed
       (List.length s.s_sites) !failed !excused);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Kill-and-restart harness: drives a real lhserve child process over
   pipes, SIGKILLs it mid-ingest at an LH_KILL-selected point (see
   Lh_durable.Kill), restarts it on the same --data-dir and asserts that
   every *acknowledged* batch is query-visible and bit-identical to a
   sequential oracle rebuilt from the ack transcript. The one batch in
   flight at the kill may be absent or — when its WAL frame completed —
   present; it is never partial, and never reordered.                   *)

type kill_scenario = {
  ks_name : string;
  ks_kill : string option;  (** LH_KILL for the ingest phase *)
  ks_recover_kill : string option;  (** LH_KILL for a crash-during-recovery restart *)
  ks_sync : string;
  ks_ckpt : int;  (** --checkpoint-every, 0 = never *)
}

(* One scenario per kill point: each registered durable site is hit both
   as a clean pre-write kill and (where a torn artifact is possible) as a
   deterministic partial write; the two recovery sites are killed during
   a restart's own replay. [count] ingest batches; the mid-stream kills
   trigger around batch count/2 so acked batches exist on both sides. *)
let kill_scenarios ~count =
  let mid = max 2 ((count / 2) + 1) in
  let k fmt = Printf.ksprintf (fun s -> Some s) fmt in
  [
    { ks_name = "wal.append/pre"; ks_kill = k "wal.append:nth=%d" mid; ks_recover_kill = None;
      ks_sync = "group:2"; ks_ckpt = 0 };
    { ks_name = "wal.append/torn-header"; ks_kill = k "wal.append:nth=%d:torn=5" mid;
      ks_recover_kill = None; ks_sync = "group:2"; ks_ckpt = 0 };
    { ks_name = "wal.append/torn-payload"; ks_kill = k "wal.append:nth=2:torn=25";
      ks_recover_kill = None; ks_sync = "always"; ks_ckpt = 0 };
    { ks_name = "wal.append/torn-none-sync"; ks_kill = k "wal.append:nth=%d:torn=17" mid;
      ks_recover_kill = None; ks_sync = "none"; ks_ckpt = 0 };
    { ks_name = "wal.fsync/always"; ks_kill = k "wal.fsync:nth=%d" (mid + 1);
      ks_recover_kill = None; ks_sync = "always"; ks_ckpt = 0 };
    { ks_name = "wal.fsync/group"; ks_kill = k "wal.fsync:nth=2"; ks_recover_kill = None;
      ks_sync = "group:2"; ks_ckpt = 0 };
    { ks_name = "checkpoint.write/torn"; ks_kill = k "checkpoint.write:nth=1:torn=40";
      ks_recover_kill = None; ks_sync = "group:2"; ks_ckpt = 2 };
    { ks_name = "checkpoint.write/pre"; ks_kill = k "checkpoint.write:nth=2";
      ks_recover_kill = None; ks_sync = "group:2"; ks_ckpt = 2 };
    { ks_name = "manifest.swap/mid"; ks_kill = k "manifest.swap:nth=2"; ks_recover_kill = None;
      ks_sync = "group:2"; ks_ckpt = 2 };
    { ks_name = "wal.replay/recovery"; ks_kill = None; ks_recover_kill = k "wal.replay:nth=2";
      ks_sync = "group:2"; ks_ckpt = 0 };
    { ks_name = "checkpoint.load/recovery"; ks_kill = None;
      ks_recover_kill = k "checkpoint.load:nth=1"; ks_sync = "group:2"; ks_ckpt = 2 };
  ]

let serve_binary () =
  let candidates =
    (match Sys.getenv_opt "LH_SERVE_BIN" with Some p -> [ p ] | None -> [])
    @ [
        Filename.concat (Filename.dirname Sys.executable_name) "lhserve.exe";
        Filename.concat (Filename.dirname Sys.executable_name) "lhserve";
      ]
  in
  List.find_opt Sys.file_exists candidates

(* Raw-fd child plumbing: a select-guarded line reader (a wedged child
   must fail the scenario, not hang the harness) and EPIPE-tolerant
   writes (the child dying mid-batch is the expected outcome).          *)

type child = {
  ch_pid : int;
  ch_stdin : Unix.file_descr;
  ch_stdout : Unix.file_descr;
  ch_buf : Buffer.t;
}

let spawn_serve ~bin ~dir ~sync ~ckpt ~kill =
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let args =
    [ bin; "--data-dir"; dir; "--wal-sync"; sync ]
    @ (if ckpt > 0 then [ "--checkpoint-every"; string_of_int ckpt ] else [])
  in
  let env =
    Array.to_list (Unix.environment ())
    |> List.filter (fun s -> not (String.length s >= 8 && String.sub s 0 8 = "LH_KILL="))
    |> (fun base -> match kill with None -> base | Some k -> ("LH_KILL=" ^ k) :: base)
    |> Array.of_list
  in
  let pid = Unix.create_process_env bin (Array.of_list args) env in_r out_w devnull in
  Unix.close in_r;
  Unix.close out_w;
  Unix.close devnull;
  { ch_pid = pid; ch_stdin = in_w; ch_stdout = out_r; ch_buf = Buffer.create 256 }

let send c line =
  let b = Bytes.of_string (line ^ "\n") in
  let rec go off =
    if off >= Bytes.length b then true
    else go (off + Unix.write c.ch_stdin b off (Bytes.length b - off))
  in
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> false

(* [None] = EOF (the child died); raises [Failure] after 30s of silence. *)
let recv c =
  let take_line () =
    let s = Buffer.contents c.ch_buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear c.ch_buf;
        Buffer.add_string c.ch_buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
  in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_line () with
    | Some line -> Some line
    | None -> (
        match Unix.select [ c.ch_stdout ] [] [] 30.0 with
        | [], _, _ -> failwith "timeout waiting for the lhserve child"
        | _ -> (
            match Unix.read c.ch_stdout chunk 0 (Bytes.length chunk) with
            | 0 -> if Buffer.length c.ch_buf > 0 then take_line () else None
            | n ->
                Buffer.add_subbytes c.ch_buf chunk 0 n;
                go ()))
  in
  go ()

let reap c =
  (try Unix.close c.ch_stdin with Unix.Unix_error _ -> ());
  (try Unix.close c.ch_stdout with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] c.ch_pid) with Unix.Unix_error _ -> ()

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Deterministic ingest schedule: batch [i] (1-based) replaces table
   t0/t1 alternately; the string column exercises dictionary re-encoding
   across the recovery boundary. All floats are dyadic so the CSV wire
   format round-trips exactly. *)
let kill_schema_spec = "k:int:key,s:string:key,v:float"

let kill_schema =
  Schema.create
    [
      ("k", Dtype.Int, Schema.Key);
      ("s", Dtype.String, Schema.Key);
      ("v", Dtype.Float, Schema.Annotation);
    ]

let kill_table i = "t" ^ string_of_int (i mod 2)

let kill_batch ~seed i =
  let n = 3 + ((seed + i) mod 3) in
  List.init n (fun r ->
      [
        Dtype.VInt r;
        Dtype.VString (Printf.sprintf "s%d_%d" i r);
        Dtype.VFloat (float_of_int (((seed mod 97) + 1) * (i + 1) * (r + 2)) *. 0.25);
      ])

let kill_batch_csv ~seed i =
  List.map
    (fun row ->
      match row with
      | [ Dtype.VInt k; Dtype.VString s; Dtype.VFloat v ] -> Printf.sprintf "%d,%s,%.17g" k s v
      | _ -> assert false)
    (kill_batch ~seed i)

let kill_sql tbl =
  Printf.sprintf "select k as a0, s as a1, sum(v) as a2 from %s group by k, s" tbl

(* The oracle: a plain sequential engine replaying a batch transcript,
   its answer printed through the very same [Table.pp_row] the server
   uses — the comparison is on identical bytes, modulo row order. *)
let oracle_lines ~seed batches tbl =
  if not (List.exists (fun i -> kill_table i = tbl) batches) then None
  else begin
    let eng = L.Engine.create () in
    List.iter
      (fun i ->
        ignore
          (L.Engine.register_rows eng ~name:(kill_table i) ~schema:kill_schema
             (kill_batch ~seed i)))
      batches;
    match L.Engine.query_result eng (kill_sql tbl) with
    | Ok t ->
        Some
          (List.sort compare
             (List.init t.Table.nrows (fun r ->
                  Format.asprintf "%a" (fun fmt () -> Table.pp_row fmt t r) ())))
    | Error e -> failwith ("kill oracle query failed: " ^ L.Engine.Error.to_string e)
  end

(* Phase A: stream [count] ingest batches, recording which were
   acknowledged and which one was in flight when (if) the child died. *)
let drive_ingest c ~seed ~count =
  let acked = ref [] and inflight = ref None and alive = ref true and err = ref None in
  let i = ref 1 in
  while !alive && !i <= count do
    let b = !i in
    inflight := Some b;
    let sent =
      send c (Printf.sprintf "ingest %s %s" (kill_table b) kill_schema_spec)
      && List.for_all (fun line -> send c line) (kill_batch_csv ~seed b)
      && send c "."
    in
    (if not sent then alive := false
     else
       match recv c with
       | Some l when starts_with ~prefix:"ok epoch" l ->
           acked := b :: !acked;
           inflight := None
       | Some l ->
           alive := false;
           err := Some (Printf.sprintf "batch %d rejected: %s" b l)
       | None -> alive := false);
    incr i
  done;
  (List.rev !acked, !inflight, !alive, !err)

let query_child_lines c sid tbl =
  if not (send c (Printf.sprintf "query %d %s" sid (kill_sql tbl))) then
    Error "restarted child died during the final query"
  else
    match recv c with
    | Some l when starts_with ~prefix:"ok epoch" l -> (
        match String.split_on_char ' ' l with
        | [ "ok"; "epoch"; _; "rows"; n ] -> (
            let n = int_of_string n in
            let rec rd k acc =
              if k = 0 then Ok (Some (List.sort compare (List.rev acc)))
              else
                match recv c with
                | Some row -> rd (k - 1) (row :: acc)
                | None -> Error "eof mid row stream"
            in
            rd n [])
        | _ -> Error ("unparseable query response: " ^ l))
    | Some l when starts_with ~prefix:"error engine" l -> Ok None (* table absent *)
    | Some l -> Error ("unexpected query response: " ^ l)
    | None -> Error "restarted child eof on query"

let run_one_kill ~bin ~seed ~count ks =
  let ( >>= ) r f = match r with Ok v -> f v | Error _ as e -> e in
  with_temp_dir (fun dir ->
      let spawn kill = spawn_serve ~bin ~dir ~sync:ks.ks_sync ~ckpt:ks.ks_ckpt ~kill in
      (* phase A: ingest until the kill fires (or all batches land) *)
      let c = spawn ks.ks_kill in
      let acked, inflight, alive, err = drive_ingest c ~seed ~count in
      let phase_a =
        match (ks.ks_kill, alive, err) with
        | _, _, Some m -> Error m
        | Some _, true, None ->
            ignore (send c "quit");
            Error "child survived every batch; the kill point was never reached"
        | Some _, false, None -> Ok ()
        | None, false, None -> Error "child died without an armed kill point"
        | None, true, None ->
            (* clean shutdown so the group-commit remainder is fsynced
               deterministically before the recovery-kill phase *)
            ignore (send c "shutdown");
            ignore (recv c);
            Ok ()
      in
      reap c;
      phase_a >>= fun () ->
      (* phase B: optionally kill the restart inside recovery itself *)
      (match ks.ks_recover_kill with
      | None -> Ok ()
      | Some k ->
          let c = spawn (Some k) in
          let r =
            if not (send c "epoch") then Ok ()
            else
              match recv c with
              | None -> Ok ()
              | Some _ ->
                  ignore (send c "quit");
                  Error "recovery kill never fired (the restart booted)"
          in
          reap c;
          r)
      >>= fun () ->
      (* phase C: clean restart; every acked batch must be visible and
         bit-identical, the in-flight batch all-or-nothing *)
      let c = spawn None in
      let result =
        (if not (send c "open") then Error "restarted child died on open"
         else
           match recv c with
           | Some l when starts_with ~prefix:"ok session" l -> (
               match String.split_on_char ' ' l with
               | [ "ok"; "session"; sid ] -> Ok (int_of_string sid)
               | _ -> Error ("unparseable open response: " ^ l))
           | Some l -> Error ("unexpected open response: " ^ l)
           | None -> Error "restarted child eof on open")
        >>= fun sid ->
        let tables =
          List.sort_uniq compare
            (List.map kill_table (acked @ Option.to_list inflight))
        in
        let rec check = function
          | [] -> Ok ()
          | tbl :: rest ->
              query_child_lines c sid tbl >>= fun got ->
              let ok_without = got = oracle_lines ~seed acked tbl in
              let ok_with =
                match inflight with
                | None -> false
                | Some b -> got = oracle_lines ~seed (acked @ [ b ]) tbl
              in
              if ok_without || ok_with then check rest
              else
                Error
                  (Printf.sprintf
                     "table %s after restart matches neither the acked transcript nor \
                      acked+in-flight (acked %s, in-flight %s)"
                     tbl
                     (String.concat "," (List.map string_of_int acked))
                     (match inflight with None -> "-" | Some b -> string_of_int b))
        in
        check tables
      in
      ignore (send c "quit");
      reap c;
      result)

let run_kill ?(progress = fun _ -> ()) ?count ~seed () =
  let count =
    match count with
    | Some n -> max 2 n
    | None -> (
        match Sys.getenv_opt "LH_KILL_COUNT" with
        | Some s -> ( match int_of_string_opt s with Some n when n >= 2 -> n | _ -> 6)
        | None -> 6)
  in
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      match prev_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with Invalid_argument _ -> ())
      | None -> ())
    (fun () ->
      let reports =
        match serve_binary () with
        | None ->
            List.map
              (fun ks ->
                {
                  sr_site = ks.ks_name;
                  sr_outcome = Excused "lhserve binary not found (set LH_SERVE_BIN)";
                })
              (kill_scenarios ~count)
        | Some bin ->
            List.map
              (fun ks ->
                progress (Printf.sprintf "kill-restart %s" ks.ks_name);
                let outcome =
                  match run_one_kill ~bin ~seed ~count ks with
                  | Ok () -> Passed
                  | Error m -> Failed m
                  | exception e -> Failed ("harness exception: " ^ Printexc.to_string e)
                in
                { sr_site = ks.ks_name; sr_outcome = outcome })
              (kill_scenarios ~count)
      in
      { s_seed = seed; s_sites = reports })
