module Dtype = Lh_storage.Dtype

type row = Dtype.value list

let value_close a b =
  match (a, b) with
  | Dtype.VFloat x, Dtype.VFloat y ->
      (* x = y covers equal infinities, where the subtraction below is nan *)
      x = y || Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.max (Float.abs x) (Float.abs y))
  | x, y -> Dtype.value_equal x y

let row_to_string r = String.concat "|" (List.map Dtype.value_to_string r)

(* Total order on values: the group-by prefix of a row is exact (codes
   decode identically across evaluators), so sorting both sides with the
   same comparator yields aligned rows whenever the row sets agree. *)
let value_order a b =
  match (a, b) with
  | Dtype.VInt x, Dtype.VInt y | Dtype.VDate x, Dtype.VDate y -> compare x y
  | Dtype.VString x, Dtype.VString y -> String.compare x y
  | Dtype.VFloat x, Dtype.VFloat y -> compare x y
  | x, y -> compare (Dtype.value_type x) (Dtype.value_type y)

let row_order a b =
  let rec go = function
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
        let c = value_order x y in
        if c <> 0 then c else go (xs, ys)
  in
  go (a, b)

let canonical rows = List.sort row_order rows

let rows_equal_aligned a b =
  List.length a = List.length b
  && List.for_all2
       (fun ra rb -> List.length ra = List.length rb && List.for_all2 value_close ra rb)
       a b

let equal a b = rows_equal_aligned (canonical a) (canonical b)

let diff_lists e g =
  if rows_equal_aligned e g then None
  else if List.length e <> List.length g then
    Some (Printf.sprintf "row count differs: expected %d, got %d" (List.length e) (List.length g))
  else
    let rec first i = function
      | [], [] -> Printf.sprintf "rows differ (row %d)" i
      | ra :: ea, rb :: ga ->
          if List.length ra = List.length rb && List.for_all2 value_close ra rb then
            first (i + 1) (ea, ga)
          else
            Printf.sprintf "row %d differs\n  expected: %s\n  got:      %s" i (row_to_string ra)
              (row_to_string rb)
      | _ -> "rows differ"
    in
    Some (first 0 (e, g))

let diff ~expect ~got = diff_lists (canonical expect) (canonical got)
let diff_aligned ~expect ~got = diff_lists expect got
