(** Greedy query minimization for differential failures.

    Given a failing query and a [still_fails] predicate, repeatedly tries
    one-step reductions — drop a relation (with everything that referenced
    it), drop a WHERE conjunct, drop a GROUP BY key or a select item,
    collapse an aggregate expression to a bare column, simplify a
    predicate or a constant — keeping any reduction that still fails,
    until none does (or [max_steps] is hit).

    Candidates are structurally valid (bound aliases, connected join
    graph, non-empty SELECT) but not necessarily inside the engine's
    supported subset; [still_fails] must return [false] for queries it
    cannot evaluate, and the shrinker treats them as dead ends. *)

val candidates : Lh_sql.Ast.query -> Lh_sql.Ast.query list
(** All structurally valid one-step reductions, most aggressive first.
    Exposed for the test suite. *)

val shrink :
  ?max_steps:int ->
  still_fails:(Lh_sql.Ast.query -> bool) ->
  Lh_sql.Ast.query ->
  Lh_sql.Ast.query * int
(** [(minimal, steps)] where [steps] is the number of accepted
    reductions. [max_steps] (default 400) bounds the greedy descent. *)
