module Ast = Lh_sql.Ast

let conjuncts p =
  let rec go p acc = match p with Ast.And (a, b) -> go a (go b acc) | p -> p :: acc in
  go p []

let and_fold = function
  | [] -> None
  | p :: ps -> Some (List.fold_left (fun acc q -> Ast.And (acc, q)) p ps)

let aliases_of_cols cols = List.filter_map (fun (c : Ast.col_ref) -> c.relation) cols
let pred_aliases p = aliases_of_cols (Ast.pred_columns p) |> List.sort_uniq String.compare
let expr_aliases e = aliases_of_cols (Ast.expr_columns e) |> List.sort_uniq String.compare

let item_aliases = function
  | Ast.Aggregate (_, None, _) -> []
  | Ast.Aggregate (_, Some e, _) | Ast.Plain (e, _) -> expr_aliases e

(* Any conjunct that mentions several aliases acts as a join edge for the
   purposes of connectivity (the classifier only accepts two-column key
   equalities there, but an invalid candidate is merely rejected by
   [still_fails], not a soundness problem). *)
let connected aliases conjs =
  match aliases with
  | [] | [ _ ] -> true
  | first :: _ ->
      let adj = Hashtbl.create 8 in
      let neighbours a = try Hashtbl.find adj a with Not_found -> [] in
      let add a b = Hashtbl.replace adj a (b :: neighbours a) in
      List.iter
        (fun p ->
          match pred_aliases p with
          | a :: rest -> List.iter (fun b -> add a b; add b a) rest
          | [] -> ())
        conjs;
      let seen = Hashtbl.create 8 in
      let rec dfs a =
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.add seen a ();
          List.iter dfs (neighbours a)
        end
      in
      dfs first;
      List.for_all (Hashtbl.mem seen) aliases

let structurally_valid (q : Ast.query) =
  let aliases = List.map snd q.from in
  let bound als = List.for_all (fun a -> List.mem a aliases) als in
  q.from <> [] && q.select <> []
  && List.for_all (fun it -> bound (item_aliases it)) q.select
  && List.for_all (fun e -> bound (expr_aliases e)) q.group_by
  && (match q.where with None -> true | Some p -> bound (pred_aliases p))
  && connected aliases (match q.where with None -> [] | Some p -> conjuncts p)

(* One-step simplifications of an expression: drop an operand, zero a
   literal, unwrap a CASE. Each result is "smaller" so the greedy loop
   terminates. *)
let rec expr_variants (e : Ast.expr) : Ast.expr list =
  let inside wrap e = List.map wrap (expr_variants e) in
  match e with
  | Ast.Col _ -> []
  | Ast.Int_lit n -> if n <> 0 then [ Ast.Int_lit 0 ] else []
  | Ast.Float_lit x -> if x <> 0.0 then [ Ast.Float_lit 0.0 ] else []
  | Ast.String_lit _ | Ast.Date_lit _ | Ast.Interval_day _ | Ast.Param _ -> []
  | Ast.Neg a -> (a :: inside (fun a' -> Ast.Neg a') a)
  | Ast.Add (a, b) ->
      (a :: b :: inside (fun a' -> Ast.Add (a', b)) a) @ inside (fun b' -> Ast.Add (a, b')) b
  | Ast.Sub (a, b) ->
      (a :: b :: inside (fun a' -> Ast.Sub (a', b)) a) @ inside (fun b' -> Ast.Sub (a, b')) b
  | Ast.Mul (a, b) ->
      (a :: b :: inside (fun a' -> Ast.Mul (a', b)) a) @ inside (fun b' -> Ast.Mul (a, b')) b
  | Ast.Div (a, b) -> (a :: inside (fun a' -> Ast.Div (a', b)) a)
  | Ast.Case_when (p, t, e) ->
      (t :: e :: List.map (fun p' -> Ast.Case_when (p', t, e)) (pred_variants p))
      @ inside (fun t' -> Ast.Case_when (p, t', e)) t
      @ inside (fun e' -> Ast.Case_when (p, t, e')) e
  | Ast.Extract_year _ -> []

and pred_variants (p : Ast.pred) : Ast.pred list =
  match p with
  | Ast.And (a, b) ->
      (a :: b :: List.map (fun a' -> Ast.And (a', b)) (pred_variants a))
      @ List.map (fun b' -> Ast.And (a, b')) (pred_variants b)
  | Ast.Or (a, b) ->
      (a :: b :: List.map (fun a' -> Ast.Or (a', b)) (pred_variants a))
      @ List.map (fun b' -> Ast.Or (a, b')) (pred_variants b)
  | Ast.Not a -> (a :: List.map (fun a' -> Ast.Not a') (pred_variants a))
  | Ast.Between (e, lo, hi) -> [ Ast.Cmp (Ast.Ge, e, lo); Ast.Cmp (Ast.Le, e, hi) ]
  | Ast.Cmp (c, a, b) ->
      List.map (fun a' -> Ast.Cmp (c, a', b)) (expr_variants a)
      @ List.map (fun b' -> Ast.Cmp (c, a, b')) (expr_variants b)
  | Ast.Like _ | Ast.Not_like _ -> []

let count_star = Ast.Aggregate (Ast.Count, None, "a0")
let or_count_star = function [] -> [ count_star ] | items -> items

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs
let replace_nth i x xs = List.mapi (fun j y -> if j = i then x else y) xs

let candidates (q : Ast.query) : Ast.query list =
  let conjs = match q.where with None -> [] | Some p -> conjuncts p in
  let drop_relation =
    if List.length q.from < 2 then []
    else
      List.mapi
        (fun i (_, alias) ->
          let keep als = not (List.mem alias als) in
          {
            Ast.from = remove_nth i q.from;
            select = or_count_star (List.filter (fun it -> keep (item_aliases it)) q.select);
            group_by = List.filter (fun e -> keep (expr_aliases e)) q.group_by;
            where = and_fold (List.filter (fun p -> keep (pred_aliases p)) conjs);
          })
        q.from
  in
  let drop_conjunct =
    List.mapi (fun i _ -> { q with Ast.where = and_fold (remove_nth i conjs) }) conjs
  in
  let drop_group_by =
    List.mapi
      (fun i e ->
        {
          q with
          Ast.group_by = remove_nth i q.group_by;
          select =
            or_count_star
              (List.filter (function Ast.Plain (e', _) -> e' <> e | _ -> true) q.select);
        })
      q.group_by
  in
  let drop_select =
    if List.length q.select < 2 then []
    else List.mapi (fun i _ -> { q with Ast.select = remove_nth i q.select }) q.select
  in
  let simplify_aggregates =
    List.concat
      (List.mapi
         (fun i it ->
           match it with
           | Ast.Aggregate (f, Some e, alias) ->
               let to_col =
                 match e with
                 | Ast.Col _ -> []
                 | _ ->
                     List.map
                       (fun c -> Ast.Aggregate (f, Some (Ast.Col c), alias))
                       (Ast.expr_columns e)
               in
               let smaller =
                 List.map (fun e' -> Ast.Aggregate (f, Some e', alias)) (expr_variants e)
               in
               List.map (fun it' -> { q with Ast.select = replace_nth i it' q.select })
                 (to_col @ smaller)
           | _ -> [])
         q.select)
  in
  let simplify_conjunct =
    List.concat
      (List.mapi
         (fun i p ->
           List.map (fun p' -> { q with Ast.where = and_fold (replace_nth i p' conjs) })
             (pred_variants p))
         conjs)
  in
  List.filter structurally_valid
    (drop_relation @ drop_conjunct @ drop_group_by @ drop_select @ simplify_aggregates
   @ simplify_conjunct)

let shrink ?(max_steps = 400) ~still_fails q0 =
  let steps = ref 0 in
  let rec loop q =
    if !steps >= max_steps then q
    else
      match List.find_opt still_fails (candidates q) with
      | Some q' ->
          incr steps;
          loop q'
      | None -> q
  in
  let minimal = loop q0 in
  (minimal, !steps)
