(** The fuzzing dataset: a small, fully deterministic catalog that covers
    every storage feature the query generator wants to exercise —

    - sparse integer-keyed matrices with duplicate key tuples ([m_a],
      [m_b], [m_c]: pre-aggregation and join multiplicities),
    - completely dense matrices and a dense vector ([dm], [dm2], [dv]:
      the BLAS-targeting path),
    - a sparse vector ([sv]),
    - a BI-style star (fact [fact] with dimensions [cust] and [item]:
      string/date/int/float annotations, filters, GROUP BY),
    - string-keyed relations ([s1], [s2]: dictionary-coded key joins).

    The dataset is built from a pinned internal seed, so a replayed query
    seed alone reproduces a failure exactly. *)

type col_info = {
  ci_name : string;
  ci_dtype : Lh_storage.Dtype.t;
  ci_key : bool;
  ci_strings : string array;  (** distinct values, string columns only *)
  ci_lo : float;  (** numeric/date minimum (day codes for dates) *)
  ci_hi : float;
}

type table_info = { ti_name : string; ti_cols : col_info array; ti_rows : int }

type profile = table_info array

val build : ?layout_stress:bool -> unit -> Levelheaded.Engine.t
(** A fresh engine with the full dataset registered. [~layout_stress:true]
    (default false) additionally registers three distinct-key matrix
    relations whose trie sets straddle the sparse/dense layout crossover —
    [ls_d] (dense bitset levels at ~85% fill of an 18x18 domain), [ls_s]
    (uint sets spread over a 0..999 domain) and [ls_m] (a dense first level
    over sparse column sets) — so generated joins exercise every
    layout-pair kernel (bs-bs, bs-uint, uint-uint) and, having no duplicate
    key tuples, the executor's count-only leaves. The base tables are
    bit-identical in both modes. *)

val profile : Levelheaded.Engine.t -> profile
(** Scans every registered table once: the schema plus per-column value
    ranges / string vocabularies the generator draws filter constants
    from. Works on any engine, not just {!build}'s. *)
