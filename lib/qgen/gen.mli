(** Schema-aware random query generation.

    Every generated AST is {e valid} by construction: typed against the
    dataset profile, inside the engine's supported subset (equi-joins on
    same-dtype key columns, connected join graphs, single-relation
    filters, decomposable aggregate expressions, non-float GROUP BY), so
    a differential run never wastes queries on expected rejections.

    Generation is deterministic per [(seed, index)] — the pair printed
    with every discrepancy is all that is needed to replay it. *)

type shape =
  | Scan  (** single relation: filters + aggregates, no or ann-only GROUP BY *)
  | Chain  (** matrix-product-style linear joins, optional vector tail *)
  | Star  (** a centre relation joined on its distinct key columns *)
  | Cycle  (** closed join loop (triangle and longer; fhw > 1) *)
  | La  (** canonical matvec/matmul aggregates; the dense arms BLAS-match *)

val all_shapes : shape list
val shape_to_string : shape -> string
val shape_of_string : string -> shape option

type spec = {
  shapes : shape list;
  max_relations : int;
  semiring : bool;
      (** also draw semiring aggregates — [MIN_PLUS(...)], [REACHES(...)]
          and [agg('name', ...)] over the builtin registry — with argument
          shapes each semiring's decomposition class accepts *)
}

val default_spec : spec

val generate : Dataset.profile -> seed:int -> index:int -> spec -> Lh_sql.Ast.query * shape
(** Raises [Failure] if the profile lacks the table shapes a requested
    query shape needs (e.g. no two-int-key relation for [Chain]). *)

val vocabulary : Dataset.profile -> string array
(** SQL keywords plus every table name, column name, string literal and
    a few constants of the profile — the token pool for structured
    robustness fuzzing ([test_fuzz.ml]'s token soup). *)
