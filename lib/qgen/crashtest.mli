(** Seeded crash-only recovery harness over the fault-injection registry.

    For every registered {!Lh_fault.Fault} site the harness arms the site
    (each kind in turn: generic, timeout, OOM), drives a workload that
    reaches it — a fuzzer-generated query, a direct kernel call, or a CSV
    ingest, depending on the site — and then asserts the crash-only
    invariant end to end:

    + the armed fault fires deterministically and surfaces as the typed
      error the engine contract promises ([Engine.Error Fault_injected]
      for generic faults, the budget error for timeout/OOM kinds) — never
      a crash, hang, or silent success;
    + the engine (or pool / kernel state) that absorbed the fault is
      immediately reusable: re-running the exact same workload on the
      {e same} engine succeeds and is bit-identical to a clean engine's
      answer.

    Every site must be covered: a registered site with no scenario, or a
    scenario whose workload cannot reach its site, is a failure — the
    harness is the executable inventory of the fault surface. Sites that
    are unreachable {e by construction} under the current configuration
    (e.g. ["pool.chunk"] at [domains = 1]) are excused, and covered by the
    [LH_DOMAINS=4] CI leg instead. The [test.*] name prefix is reserved
    for the registry's own unit tests and exempt from coverage.

    The harness is deterministic per [seed]: it generates queries with
    {!Gen.generate} over the pinned {!Dataset}, so a failing [(site,
    seed)] pair replays exactly. Wired into [lhfuzz --inject-fault] and
    the fault-injection legs of [ci.sh]. *)

type outcome =
  | Passed
  | Excused of string  (** unreachable by construction under this config *)
  | Failed of string

type site_report = { sr_site : string; sr_outcome : outcome }

type summary = {
  s_seed : int;
  s_sites : site_report list;  (** one report per registered site *)
}

val run :
  ?progress:(string -> unit) -> ?attempts:int -> ?site:string -> seed:int -> unit -> summary
(** Run every scenario. [attempts] (default 40) bounds the per-site search
    for a generated query that reaches the site. [site] is a glob pattern
    (see {!Lh_fault.Fault.glob_match}) restricting the run to matching
    sites — the repro loop behind [lhfuzz --inject-fault --site]; the
    uncovered-site coverage check is restricted the same way. [progress]
    is called with a short line as each site starts. Leaves the fault
    registry disarmed. *)

val run_kill : ?progress:(string -> unit) -> ?count:int -> seed:int -> unit -> summary
(** Kill-and-restart harness: spawns a real [lhserve] child on a
    temporary [--data-dir], streams [count] deterministic ingest batches
    (default [LH_KILL_COUNT], 6), SIGKILLs it at an [LH_KILL]-selected
    point — every durable fault site, as both a pre-write kill and a
    deterministic torn write, plus kills {e during} a restart's own
    recovery — then restarts on the same directory and asserts every
    {e acknowledged} batch is query-visible and bit-identical to a
    sequential oracle rebuilt from the ack transcript. The batch in
    flight at the kill may be absent or (once its WAL frame completed)
    present — never partial. Scenarios are [Excused] when the [lhserve]
    binary cannot be found next to the running executable (override with
    [LH_SERVE_BIN]). *)

val ok : summary -> bool
(** No [Failed] site ([Excused] is acceptable). *)

val to_text : summary -> string
(** One line per site plus a pass/fail tail, for CLI output. *)
