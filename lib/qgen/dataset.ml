module L = Levelheaded
module Schema = Lh_storage.Schema
module Table = Lh_storage.Table
module Dtype = Lh_storage.Dtype
module Date = Lh_storage.Date
module Prng = Lh_util.Prng

type col_info = {
  ci_name : string;
  ci_dtype : Dtype.t;
  ci_key : bool;
  ci_strings : string array;
  ci_lo : float;
  ci_hi : float;
}

type table_info = { ti_name : string; ti_cols : col_info array; ti_rows : int }

type profile = table_info array

(* Annotation floats are quarters so that sums and products of a handful
   of them are exact in double precision: the differential comparison then
   only needs its tolerance for genuine accumulation-order drift. *)
let quarter rng = float_of_int (Prng.int_in rng (-40) 40) /. 4.0

let cities = [| "paris"; "tokyo"; "lima"; "oslo" |]
let segments = [| "auto"; "bike" |]
let cats = [| "red"; "green"; "blue"; "gold" |]
let brands = [| "acme"; "globex"; "umbra" |]
let tags = [| "t0"; "t1"; "t2"; "t3"; "t4"; "t5" |]

let matrix_rows rng n =
  List.init n (fun _ ->
      [
        Dtype.VInt (Prng.int rng 7);
        Dtype.VInt (Prng.int rng 7);
        Dtype.VFloat (float_of_int (Prng.int_in rng (-4) 4));
      ])

(* Distinct-key matrix relations whose sets straddle the Sparse/Dense
   layout crossover ([Lh_set.Set.choose_layout]: dense iff card >= 16 and
   span <= 16 * card). Registered only under [~layout_stress:true] so the
   pinned base catalog — and every replay seed against it — is unchanged.

   - [ls_d]: pairs over a 0..17 domain at ~85% fill. The first level is one
     dense bitset; per-row column sets hover around cardinality 15-16, so a
     single level mixes bitset and uint sets (bs∩bs, bs∩uint, uint∩uint all
     arise inside one query).
   - [ls_s]: ~48 pairs spread over 0..999 — every set stays uint.
   - [ls_m]: a full dense first level (0..17) over sparse wide-domain
     column sets, so joins against [ls_d] hit bs∩bs at the root and joins
     against [ls_s] hit uint∩uint below it.

   All three have strictly distinct key tuples and a float annotation: with
   only keys referenced their tries are leaf-unit, which is what arms the
   executor's count-only kernels on cycle-shaped counts. *)
let layout_stress_tables reg =
  let rng = Prng.create 0xB17F1E1D in
  let mat = [ ("row", Dtype.Int, Schema.Key); ("col", Dtype.Int, Schema.Key);
              ("v", Dtype.Float, Schema.Annotation) ] in
  let pair r c = [ Dtype.VInt r; Dtype.VInt c; Dtype.VFloat (quarter rng) ] in
  let dense_rows =
    List.concat_map
      (fun r ->
        List.filter_map
          (fun c -> if Prng.int rng 20 < 17 then Some (pair r c) else None)
          (List.init 18 Fun.id))
      (List.init 18 Fun.id)
  in
  reg "ls_d" mat dense_rows;
  let seen = Hashtbl.create 64 in
  let sparse_rows =
    List.init 48 (fun _ ->
        let rec fresh () =
          let r = Prng.int rng 1000 and c = Prng.int rng 1000 in
          if Hashtbl.mem seen (r, c) then fresh ()
          else begin
            Hashtbl.add seen (r, c) ();
            pair r c
          end
        in
        fresh ())
  in
  reg "ls_s" mat sparse_rows;
  let mixed_rows =
    List.concat_map
      (fun r ->
        (* three distinct wide-domain columns per dense row key *)
        let cols = Hashtbl.create 4 in
        let rec draw k acc =
          if k = 0 then acc
          else
            let c = Prng.int rng 1000 in
            if Hashtbl.mem cols c then draw k acc
            else begin
              Hashtbl.add cols c ();
              draw (k - 1) (pair r c :: acc)
            end
        in
        draw 3 [])
      (List.init 18 Fun.id)
  in
  reg "ls_m" mat mixed_rows

let build ?(layout_stress = false) () =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let rng = Prng.create 0xA11CE in
  let reg name schema rows =
    ignore (L.Engine.register_rows eng ~name ~schema:(Schema.create schema) rows)
  in
  (* Sparse matrices with duplicate keys (multiplicity / pre-aggregation). *)
  List.iter
    (fun name ->
      reg name
        [ ("row", Dtype.Int, Schema.Key); ("col", Dtype.Int, Schema.Key);
          ("v", Dtype.Float, Schema.Annotation) ]
        (matrix_rows rng 35))
    [ "m_a"; "m_b"; "m_c" ];
  (* Dense matrices and vectors: the BLAS targets. *)
  let dm, _ = Lh_datagen.Matrices.dense ~dict ~name:"dm" ~n:6 ~seed:7 () in
  L.Engine.register eng dm;
  let dm2, _ = Lh_datagen.Matrices.dense ~dict ~name:"dm2" ~n:6 ~seed:8 () in
  L.Engine.register eng dm2;
  let dv, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"dv" ~n:6 ~seed:9 () in
  L.Engine.register eng dv;
  (* Sparse vector: distinct keys over the matrix key domain. *)
  reg "sv"
    [ ("idx", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]
    (List.filteri
       (fun _ _ -> Prng.int rng 10 < 7)
       (List.init 7 (fun i ->
            [ Dtype.VInt i; Dtype.VFloat (float_of_int (Prng.int_in rng (-4) 4)) ])));
  (* BI star: fact with two foreign keys and mixed-type annotations. *)
  reg "fact"
    [ ("cust", Dtype.Int, Schema.Key); ("item", Dtype.Int, Schema.Key);
      ("d", Dtype.Date, Schema.Annotation); ("cat", Dtype.String, Schema.Annotation);
      ("qty", Dtype.Int, Schema.Annotation); ("price", Dtype.Float, Schema.Annotation) ]
    (List.init 60 (fun _ ->
         [
           Dtype.VInt (Prng.int rng 5);
           Dtype.VInt (Prng.int rng 6);
           Dtype.VDate (Date.of_ymd 1994 1 1 + Prng.int rng 1000);
           Dtype.VString (Prng.pick rng cats);
           Dtype.VInt (Prng.int rng 10);
           Dtype.VFloat (quarter rng);
         ]));
  reg "cust"
    [ ("cust", Dtype.Int, Schema.Key); ("city", Dtype.String, Schema.Annotation);
      ("seg", Dtype.String, Schema.Annotation); ("bal", Dtype.Float, Schema.Annotation) ]
    (List.init 5 (fun i ->
         [
           Dtype.VInt i;
           Dtype.VString (Prng.pick rng cities);
           Dtype.VString (Prng.pick rng segments);
           Dtype.VFloat (quarter rng);
         ]));
  reg "item"
    [ ("item", Dtype.Int, Schema.Key); ("brand", Dtype.String, Schema.Annotation);
      ("weight", Dtype.Float, Schema.Annotation); ("y", Dtype.Int, Schema.Annotation) ]
    (List.init 6 (fun i ->
         [
           Dtype.VInt i;
           Dtype.VString (Prng.pick rng brands);
           Dtype.VFloat (quarter rng);
           Dtype.VInt (Prng.int_in rng 1990 1999);
         ]));
  (* String-keyed pair (dictionary-coded key join). *)
  reg "s1"
    [ ("tag", Dtype.String, Schema.Key); ("w", Dtype.Float, Schema.Annotation) ]
    (List.init 8 (fun _ -> [ Dtype.VString (Prng.pick rng tags); Dtype.VFloat (quarter rng) ]));
  reg "s2"
    [ ("tag", Dtype.String, Schema.Key); ("u", Dtype.Float, Schema.Annotation);
      ("n", Dtype.Int, Schema.Annotation) ]
    (List.init 8 (fun _ ->
         [
           Dtype.VString (Prng.pick rng tags);
           Dtype.VFloat (quarter rng);
           Dtype.VInt (Prng.int rng 6);
         ]));
  (* Appended last, from an independent rng: the base tables above are
     bit-identical with and without the stress tables. *)
  if layout_stress then layout_stress_tables reg;
  eng

let profile eng =
  let cat = L.Engine.catalog eng in
  L.Catalog.names cat
  |> List.sort String.compare
  |> List.map (fun name ->
         let t = L.Catalog.find_exn cat name in
         let cols =
           Array.init (Schema.ncols t.Table.schema) (fun c ->
               let col = Schema.col t.Table.schema c in
               let strings = Hashtbl.create 8 in
               let lo = ref infinity and hi = ref neg_infinity in
               for r = 0 to t.Table.nrows - 1 do
                 match Table.value t ~row:r ~col:c with
                 | Dtype.VString s -> Hashtbl.replace strings s ()
                 | v ->
                     let x = Dtype.numeric v in
                     lo := Float.min !lo x;
                     hi := Float.max !hi x
               done;
               {
                 ci_name = col.Schema.name;
                 ci_dtype = col.Schema.dtype;
                 ci_key = col.Schema.kind = Schema.Key;
                 ci_strings =
                   Hashtbl.fold (fun s () acc -> s :: acc) strings []
                   |> List.sort String.compare |> Array.of_list;
                 (* strings-only or empty columns have no numeric range *)
                 ci_lo = (if !lo > !hi then 0.0 else !lo);
                 ci_hi = (if !lo > !hi then 0.0 else !hi);
               })
         in
         { ti_name = name; ti_cols = cols; ti_rows = t.Table.nrows })
  |> Array.of_list
