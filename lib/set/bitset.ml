type t = {
  offset : int;
  nbits : int;
  words : int array;
  mutable card : int;
  mutable rank_cache : int array;
}

let word_bits = 63

(* Offsets are always rounded down to a word boundary so that any two
   bitsets are word-aligned: bs∩bs is then a straight word-wise AND, which
   is the property the icost model (§V-A1) relies on. *)
let align_offset v = v - (v mod word_bits)

let nwords nbits = (nbits + word_bits - 1) / word_bits

let create ~offset ~nbits =
  if offset < 0 then invalid_arg "Bitset.create: negative offset";
  let aligned = align_offset offset in
  let nbits = nbits + (offset - aligned) in
  {
    offset = aligned;
    nbits = max nbits 1;
    words = Array.make (nwords (max nbits 1)) 0;
    card = 0;
    rank_cache = [||];
  }

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let add t v =
  let idx = v - t.offset in
  if idx < 0 || idx >= t.nbits then invalid_arg "Bitset.add: value out of range";
  let w = idx / word_bits and b = idx mod word_bits in
  let bit = 1 lsl b in
  if t.words.(w) land bit = 0 then begin
    t.words.(w) <- t.words.(w) lor bit;
    t.card <- t.card + 1
  end

let of_sorted_array arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Bitset.of_sorted_array: empty";
  let lo = arr.(0) and hi = arr.(n - 1) in
  let t = create ~offset:lo ~nbits:(hi - lo + 1) in
  Array.iter (fun v -> add t v) arr;
  t

let mem t v =
  let idx = v - t.offset in
  if idx < 0 || idx >= t.nbits then false
  else t.words.(idx / word_bits) land (1 lsl (idx mod word_bits)) <> 0

let cardinality t = t.card

let iter f t =
  let base = t.offset in
  let words = t.words in
  for wi = 0 to Array.length words - 1 do
    let w = words.(wi) in
    if w <> 0 then begin
      let v0 = base + (wi * word_bits) in
      let w = ref w and b = ref 0 in
      while !w <> 0 do
        (* Skip zero bytes to avoid 63 single-bit steps on sparse words. *)
        if !w land 0xFF = 0 then begin
          w := !w lsr 8;
          b := !b + 8
        end
        else begin
          if !w land 1 = 1 then f (v0 + !b);
          w := !w lsr 1;
          incr b
        end
      done
    end
  done

let to_sorted_array t =
  let out = Array.make t.card 0 in
  let i = ref 0 in
  iter
    (fun v ->
      out.(!i) <- v;
      incr i)
    t;
  out

let min_elt t =
  let exception Found of int in
  try
    iter (fun v -> raise (Found v)) t;
    raise Not_found
  with Found v -> v

let max_elt t =
  if t.card = 0 then raise Not_found;
  let best = ref 0 in
  iter (fun v -> best := v) t;
  !best

let word_offset t = t.offset / word_bits

let inter a b =
  let lo_w = max (word_offset a) (word_offset b) in
  let hi_w = min (word_offset a + Array.length a.words) (word_offset b + Array.length b.words) in
  if hi_w <= lo_w then { offset = 0; nbits = 1; words = [| 0 |]; card = 0; rank_cache = [||] }
  else begin
    let n = hi_w - lo_w in
    let words = Array.make n 0 in
    let aw = a.words and bw = b.words in
    let ao = lo_w - word_offset a and bo = lo_w - word_offset b in
    let card = ref 0 in
    for i = 0 to n - 1 do
      let w = aw.(ao + i) land bw.(bo + i) in
      words.(i) <- w;
      if w <> 0 then card := !card + popcount w
    done;
    { offset = lo_w * word_bits; nbits = n * word_bits; words; card = !card; rank_cache = [||] }
  end

let inter_uint t arr =
  let out = Lh_util.Vec.Int.create ~capacity:(Array.length arr) () in
  Array.iter (fun v -> if mem t v then Lh_util.Vec.Int.push out v) arr;
  Lh_util.Vec.Int.to_array out

(* Cardinality of the word-wise AND without allocating the result words:
   the count kernel of the bs∩bs pair. *)
let inter_count a b =
  let lo_w = max (word_offset a) (word_offset b) in
  let hi_w = min (word_offset a + Array.length a.words) (word_offset b + Array.length b.words) in
  if hi_w <= lo_w then 0
  else begin
    let aw = a.words and bw = b.words in
    let ao = lo_w - word_offset a and bo = lo_w - word_offset b in
    let card = ref 0 in
    for i = 0 to hi_w - lo_w - 1 do
      let w = aw.(ao + i) land bw.(bo + i) in
      if w <> 0 then card := !card + popcount w
    done;
    !card
  end

let inter_uint_count t arr =
  let c = ref 0 in
  Array.iter (fun v -> if mem t v then incr c) arr;
  !c

(* Streams the members of the AND to [f] in increasing order without
   materializing anything: AND one word pair at a time, then the same
   byte-skipping bit peel as [iter]. *)
let iter_inter f a b =
  let lo_w = max (word_offset a) (word_offset b) in
  let hi_w = min (word_offset a + Array.length a.words) (word_offset b + Array.length b.words) in
  if hi_w > lo_w then begin
    let aw = a.words and bw = b.words in
    let ao = lo_w - word_offset a and bo = lo_w - word_offset b in
    for i = 0 to hi_w - lo_w - 1 do
      let w = aw.(ao + i) land bw.(bo + i) in
      if w <> 0 then begin
        let v0 = (lo_w + i) * word_bits in
        let w = ref w and b = ref 0 in
        while !w <> 0 do
          if !w land 0xFF = 0 then begin
            w := !w lsr 8;
            b := !b + 8
          end
          else begin
            if !w land 1 = 1 then f (v0 + !b);
            w := !w lsr 1;
            incr b
          end
        done
      end
    done
  end

let union a b =
  if a.card = 0 then b
  else if b.card = 0 then a
  else begin
    let lo_w = min (word_offset a) (word_offset b) in
    let hi_w =
      max (word_offset a + Array.length a.words) (word_offset b + Array.length b.words)
    in
    let n = hi_w - lo_w in
    let words = Array.make n 0 in
    let blit s =
      let o = word_offset s - lo_w in
      Array.iteri (fun i w -> words.(o + i) <- words.(o + i) lor w) s.words
    in
    blit a;
    blit b;
    let card = Array.fold_left (fun acc w -> acc + popcount w) 0 words in
    { offset = lo_w * word_bits; nbits = n * word_bits; words; card; rank_cache = [||] }
  end

let ensure_rank_cache t =
  if Array.length t.rank_cache = 0 then begin
    let cache = Array.make (Array.length t.words) 0 in
    let acc = ref 0 in
    Array.iteri
      (fun i word ->
        cache.(i) <- !acc;
        acc := !acc + popcount word)
      t.words;
    t.rank_cache <- cache
  end;
  t.rank_cache

let rank t v =
  let idx = v - t.offset in
  if idx < 0 || idx >= t.nbits then raise Not_found;
  let w = idx / word_bits and b = idx mod word_bits in
  let word = t.words.(w) in
  if word land (1 lsl b) = 0 then raise Not_found;
  let cache = ensure_rank_cache t in
  cache.(w) + popcount (word land ((1 lsl b) - 1))

(* Inverse of [rank]: the i-th member in sorted order. Binary search over
   the per-word prefix popcounts for the containing word, then peel the
   word byte-by-byte — never the one-bit-per-step scan [iter] does. *)
let select t i =
  if i < 0 || i >= t.card then invalid_arg "Bitset.select: out of bounds";
  let cache = ensure_rank_cache t in
  (* Largest word index whose prefix count is <= i. *)
  let lo = ref 0 and hi = ref (Array.length cache - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if cache.(mid) <= i then lo := mid else hi := mid - 1
  done;
  let w = !lo in
  let remaining = ref (i - cache.(w)) in
  let word = ref t.words.(w) and b = ref 0 in
  (* Skip whole bytes by popcount, then single bits within the byte. *)
  while popcount (!word land 0xFF) <= !remaining do
    remaining := !remaining - popcount (!word land 0xFF);
    word := !word lsr 8;
    b := !b + 8
  done;
  while
    (!word land 1 = 0) || !remaining > 0
  do
    if !word land 1 = 1 then decr remaining;
    word := !word lsr 1;
    incr b
  done;
  t.offset + (w * word_bits) + !b
