(** Fixed-range bitsets over OCaml ints.

    A bitset covers the value range [\[offset, offset + nbits)]. Words hold
    {!word_bits} bits each so shifts never touch the sign bit. This is the
    dense ("bs") set layout of the storage engine (§V-A1). *)

type t = private {
  offset : int;  (** First representable value. *)
  nbits : int;  (** Size of the representable range. *)
  words : int array;
  mutable card : int;  (** Number of set bits; maintained by {!add}. *)
  mutable rank_cache : int array;
      (** Per-word prefix popcounts, built lazily by {!rank}; empty until
          then. Invalidated by nothing: {!add} after a {!rank} is a
          programming error (tries are frozen before queries run). *)
}

val word_bits : int

val create : offset:int -> nbits:int -> t
(** All-zero bitset covering [\[offset, offset + nbits)]. *)

val of_sorted_array : int array -> t
(** Bitset over the span of a sorted array of distinct values. The array
    must be non-empty. *)

val add : t -> int -> unit
(** Sets a bit; no-op when already set. The value must lie in range. *)

val mem : t -> int -> bool
(** Membership; values outside the range are simply absent. *)

val cardinality : t -> int

val iter : (int -> unit) -> t -> unit
(** Visits members in increasing order. *)

val to_sorted_array : t -> int array

val min_elt : t -> int
(** Raises [Not_found] when empty. *)

val max_elt : t -> int
(** Raises [Not_found] when empty. *)

val inter : t -> t -> t
(** Word-wise intersection (the bs∩bs kernel). *)

val inter_uint : t -> int array -> int array
(** Intersection with a sorted uint set via membership probes (the bs∩uint
    kernel); returns a sorted uint result. *)

val inter_count : t -> t -> int
(** Cardinality of the word-wise AND, popcounted word by word without
    allocating the result (the bs∩bs count kernel). *)

val inter_uint_count : t -> int array -> int
(** Number of elements of a sorted uint set present in the bitset, by
    membership probes without materializing (the bs∩uint count kernel). *)

val iter_inter : (int -> unit) -> t -> t -> unit
(** Streams the members of the word-wise AND to the closure in increasing
    order without materializing the result set. *)

val union : t -> t -> t

val popcount : int -> int
(** Number of set bits in an int. *)

val rank : t -> int -> int
(** [rank t v] is the number of members strictly below [v], i.e. the sorted
    position of [v] when present. Constant time after a lazily-built
    per-word prefix index. Raises [Not_found] when [v] is absent. *)

val select : t -> int -> int
(** [select t i] is the [i]-th member in sorted order (0-based) — the
    inverse of {!rank}. Binary search over the same lazily-built per-word
    prefix index as {!rank}, then a byte-skipping scan inside the one
    containing word: O(log words), never a full iteration. Raises
    [Invalid_argument] unless [0 <= i < cardinality t]. *)
