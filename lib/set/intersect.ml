module Vec = Lh_util.Vec.Int
module Obs = Lh_obs.Obs
module Fault = Lh_fault.Fault

(* Per-layout-pair kernel invocation counts (bs∩bs, bs∩uint, uint∩uint);
   every specialized entry point below — inter_into, count, foreach_inter —
   ticks exactly one of them per call. *)
let c_bb = Obs.counter "set.inter.bb"
let c_bu = Obs.counter "set.inter.bu"
let c_uu = Obs.counter "set.inter.uu"

(* Fires between clearing and filling the caller's buffer, so an armed
   fault leaves the buffer in a half-written state — the crashtest asserts
   that no later query observes it. *)
let fault_inter_into = Fault.site "set.inter_into"

(* Galloping pays off when one operand is drastically smaller; 16x is the
   conventional crossover. *)
let gallop_ratio = 16

(* First index in arr.(lo..n-1) with arr.(i) >= v, found by exponential
   search followed by binary search within the located window. *)
let gallop_lower_bound_n arr n lo v =
  if lo >= n || arr.(lo) >= v then lo
  else begin
    let step = ref 1 in
    let prev = ref lo in
    let cur = ref (lo + 1) in
    while !cur < n && arr.(!cur) < v do
      prev := !cur;
      step := !step * 2;
      cur := !cur + !step
    done;
    let hi = min !cur n in
    let rec bin lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if arr.(mid) < v then bin (mid + 1) hi else bin lo mid
    in
    bin (!prev + 1) hi
  end

(* uint∩uint into a caller-provided buffer. Operands are (array, length)
   views so buffer-backed prefixes can feed the next intersection without
   being copied out. *)
let uint_uint_into out a la b lb =
  if la > 0 && lb > 0 then begin
    let a, la, b, lb = if la <= lb then (a, la, b, lb) else (b, lb, a, la) in
    if la * gallop_ratio < lb then begin
      let j = ref 0 in
      for i = 0 to la - 1 do
        let v = a.(i) in
        j := gallop_lower_bound_n b lb !j v;
        if !j < lb && b.(!j) = v then Vec.push out v
      done
    end
    else begin
      let i = ref 0 and j = ref 0 in
      while !i < la && !j < lb do
        let x = a.(!i) and y = b.(!j) in
        if x < y then incr i
        else if y < x then incr j
        else begin
          Vec.push out x;
          incr i;
          incr j
        end
      done
    end
  end

let uint_uint a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Vec.create ~capacity:(min la lb) () in
    uint_uint_into out a la b lb;
    Vec.to_array out
  end

(* uint∩uint cardinality: the same merge/gallop walk, never pushing. *)
let uint_uint_count_n a la b lb =
  if la = 0 || lb = 0 then 0
  else begin
    let a, la, b, lb = if la <= lb then (a, la, b, lb) else (b, lb, a, la) in
    let c = ref 0 in
    if la * gallop_ratio < lb then begin
      let j = ref 0 in
      for i = 0 to la - 1 do
        let v = a.(i) in
        j := gallop_lower_bound_n b lb !j v;
        if !j < lb && b.(!j) = v then incr c
      done
    end
    else begin
      let i = ref 0 and j = ref 0 in
      while !i < la && !j < lb do
        let x = a.(!i) and y = b.(!j) in
        if x < y then incr i
        else if y < x then incr j
        else begin
          incr c;
          incr i;
          incr j
        end
      done
    end;
    !c
  end

(* uint∩uint streamed to a closure in increasing order. *)
let uint_uint_foreach f a b =
  let la = Array.length a and lb = Array.length b in
  if la > 0 && lb > 0 then begin
    let a, la, b, lb = if la <= lb then (a, la, b, lb) else (b, lb, a, la) in
    if la * gallop_ratio < lb then begin
      let j = ref 0 in
      for i = 0 to la - 1 do
        let v = a.(i) in
        j := gallop_lower_bound_n b lb !j v;
        if !j < lb && b.(!j) = v then f v
      done
    end
    else begin
      let i = ref 0 and j = ref 0 in
      while !i < la && !j < lb do
        let x = a.(!i) and y = b.(!j) in
        if x < y then incr i
        else if y < x then incr j
        else begin
          f x;
          incr i;
          incr j
        end
      done
    end
  end

let inter a b =
  match (a, b) with
  | Set.Uint x, Set.Uint y -> Set.Uint (uint_uint x y)
  | Set.Bs x, Set.Bs y -> Set.Bs (Bitset.inter x y)
  | Set.Bs x, Set.Uint y | Set.Uint y, Set.Bs x -> Set.Uint (Bitset.inter_uint x y)

(* Bitsets first, then ascending cardinality within each layout (explicit
   int comparisons — polymorphic compare on the hot path boxes and walks
   the representation). OCaml's List.sort is stable, so ties keep the
   caller's operand order; test_set_props.ml pins that down. *)
let sort_for_inter sets =
  let group s = match Set.layout s with Set.Dense -> 0 | Set.Sparse -> 1 in
  List.sort
    (fun a b ->
      let c = Int.compare (group a) (group b) in
      if c <> 0 then c else Int.compare (Set.cardinality a) (Set.cardinality b))
    sets

let inter_many sets =
  match sets with
  | [] -> invalid_arg "Intersect.inter_many: empty list"
  | [ s ] -> s
  | _ ->
      (match sort_for_inter sets with
      | first :: rest ->
          List.fold_left (fun acc s -> if Set.is_empty acc then acc else inter acc s) first rest
      | [] -> assert false)

let count a b =
  match (a, b) with
  | Set.Bs x, Set.Bs y ->
      Obs.incr c_bb;
      Bitset.inter_count x y
  | Set.Bs x, Set.Uint y | Set.Uint y, Set.Bs x ->
      Obs.incr c_bu;
      Bitset.inter_uint_count x y
  | Set.Uint x, Set.Uint y ->
      Obs.incr c_uu;
      uint_uint_count_n x (Array.length x) y (Array.length y)

let foreach_inter f a b =
  match (a, b) with
  | Set.Bs x, Set.Bs y ->
      Obs.incr c_bb;
      Bitset.iter_inter f x y
  | Set.Bs x, Set.Uint y | Set.Uint y, Set.Bs x ->
      Obs.incr c_bu;
      Array.iter (fun v -> if Bitset.mem x v then f v) y
  | Set.Uint x, Set.Uint y ->
      Obs.incr c_uu;
      uint_uint_foreach f x y

(* ---------------- buffered kernels ----------------

   The executor pins one reusable buffer (pair) per trie position and
   re-feeds it every iteration of the enclosing level, so the hot WCOJ
   path performs zero per-intersection allocation. [Vec.Int.clear] resets
   the length but keeps the capacity; after the first few iterations the
   buffer stops growing. *)

let inter_into buf a b =
  Vec.clear buf;
  Fault.hit fault_inter_into;
  match (a, b) with
  | Set.Bs x, Set.Bs y ->
      Obs.incr c_bb;
      Bitset.iter_inter (fun v -> Vec.push buf v) x y
  | Set.Bs x, Set.Uint y | Set.Uint y, Set.Bs x ->
      Obs.incr c_bu;
      Array.iter (fun v -> if Bitset.mem x v then Vec.push buf v) y
  | Set.Uint x, Set.Uint y ->
      Obs.incr c_uu;
      uint_uint_into buf x (Array.length x) y (Array.length y)

(* Intersect the sorted values vals.(0..n-1) — typically the live prefix of
   another buffer — with one more set. *)
let inter_vals_into buf vals n s =
  Vec.clear buf;
  Fault.hit fault_inter_into;
  match s with
  | Set.Bs b ->
      Obs.incr c_bu;
      for i = 0 to n - 1 do
        let v = vals.(i) in
        if Bitset.mem b v then Vec.push buf v
      done
  | Set.Uint b ->
      Obs.incr c_uu;
      uint_uint_into buf vals n b (Array.length b)

let count_vals vals n s =
  match s with
  | Set.Bs b ->
      Obs.incr c_bu;
      let c = ref 0 in
      for i = 0 to n - 1 do
        if Bitset.mem b vals.(i) then incr c
      done;
      !c
  | Set.Uint b ->
      Obs.incr c_uu;
      uint_uint_count_n vals n b (Array.length b)

(* n-ary intersection landing in [dst], ping-ponging between [dst] and
   [tmp]. The first target is chosen by parity so the final result ends in
   [dst] without a copy; an early empty intersection short-circuits (the
   live buffer is empty either way). *)
let inter_many_into dst tmp sets =
  match sets with
  | [] -> invalid_arg "Intersect.inter_many_into: empty list"
  | [ s ] ->
      Vec.clear dst;
      Set.iter (fun v -> Vec.push dst v) s
  | _ ->
      let sorted = sort_for_inter sets in
      let k = List.length sorted in
      (match sorted with
      | a :: b :: rest ->
          let first, second = if (k - 1) mod 2 = 1 then (dst, tmp) else (tmp, dst) in
          inter_into first a b;
          let rec go cur other = function
            | [] -> cur
            | s :: rest ->
                if Vec.length cur = 0 then cur
                else begin
                  inter_vals_into other (Vec.unsafe_inner cur) (Vec.length cur) s;
                  go other cur rest
                end
          in
          let final = go first second rest in
          if final != dst then Vec.clear dst (* early-exit: result is empty *)
      | _ -> assert false)
