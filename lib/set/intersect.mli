(** Set intersection — the bottleneck operator of the generic WCOJ
    algorithm (Algorithm 1). Three specialized kernels mirror the paper's
    icost experiment (Fig. 5a): uint∩uint (merge or galloping), bs∩uint
    (probes), and bs∩bs (word-wise AND).

    Beyond the materializing {!inter}/{!inter_many}, the executor-facing
    entry points are monomorphic per layout pair and never allocate on the
    hot path: {!inter_into}/{!inter_many_into} write into caller-provided
    reusable buffers, {!count} popcounts / gallop-counts / merge-counts
    without building the result, and {!foreach_inter} streams matches to a
    closure for leaf aggregation. Each call ticks one of the
    [set.inter.{bb,bu,uu}] telemetry counters, and the buffered kernels
    probe the [set.inter_into] fault site between clearing and filling the
    buffer. *)

val uint_uint : int array -> int array -> int array
(** Sorted-array intersection. Switches from a linear merge to galloping
    (exponential search) when one side is much smaller than the other. *)

val inter : Set.t -> Set.t -> Set.t
(** Dispatches on the layouts of the two operands. *)

val sort_for_inter : Set.t list -> Set.t list
(** The operand order {!inter_many} and {!inter_many_into} process in:
    bitsets first, then ascending cardinality, ties keeping list order
    (stable). Exposed so the property suite can pin the ordering contract
    directly. *)

val inter_many : Set.t list -> Set.t
(** Intersection of one or more sets. Bitset operands are processed first
    and, within a layout, smaller sets first (§V-A1: "the bs sets are always
    processed first"); ties keep list order (the sort is stable). Raises
    [Invalid_argument] on the empty list. *)

val count : Set.t -> Set.t -> int
(** Cardinality of the intersection without materializing it in any layout
    pair: word-parallel popcount of the AND for bs∩bs, membership-probe
    count for bs∩uint, merge/gallop count for uint∩uint. *)

val foreach_inter : (int -> unit) -> Set.t -> Set.t -> unit
(** Streams the members of the intersection to the closure in increasing
    order without materializing the result set. *)

val inter_into : Lh_util.Vec.Int.t -> Set.t -> Set.t -> unit
(** [inter_into buf a b] clears [buf] and fills it with the sorted values
    of [a ∩ b]. The buffer keeps its capacity across calls, so a caller
    that pins one buffer per trie position allocates nothing per
    intersection. *)

val inter_vals_into : Lh_util.Vec.Int.t -> int array -> int -> Set.t -> unit
(** [inter_vals_into buf vals n s] intersects the sorted values
    [vals.(0..n-1)] — typically the live prefix of another buffer, as
    exposed by [Vec.Int.unsafe_inner]/[length] — with [s], into [buf]. *)

val count_vals : int array -> int -> Set.t -> int
(** Cardinality of the intersection of sorted [vals.(0..n-1)] with a set,
    without materializing. *)

val inter_many_into : Lh_util.Vec.Int.t -> Lh_util.Vec.Int.t -> Set.t list -> unit
(** [inter_many_into dst tmp sets] computes the n-ary intersection into
    [dst], ping-ponging between [dst] and [tmp] ([tmp]'s final contents are
    unspecified). Operand order is {!inter_many}'s. Raises
    [Invalid_argument] on the empty list. *)
