type layout = Sparse | Dense
type t = Uint of int array | Bs of Bitset.t

let empty = Uint [||]

(* A set is stored dense when its span is at most [dense_factor] times its
   cardinality, i.e. density >= 1/dense_factor.  The factor trades bitset
   word-AND speed against wasted zero words; 16 keeps first trie levels of
   TPC-H fact tables and all dense-matrix levels in bitset form while
   leaving genuinely sparse lower levels as uints, matching Obs. 5.1. *)
let dense_factor = 16

let choose_layout ~card ~range =
  if card >= 16 && range <= card * dense_factor then Dense else Sparse

let of_sorted_array ?layout arr =
  let n = Array.length arr in
  if n = 0 then empty
  else begin
    if arr.(0) < 0 then invalid_arg "Set.of_sorted_array: negative value";
    let decided =
      match layout with
      | Some l -> l
      | None -> choose_layout ~card:n ~range:(arr.(n - 1) - arr.(0) + 1)
    in
    match decided with
    | Sparse -> Uint arr
    | Dense -> Bs (Bitset.of_sorted_array arr)
  end

let sort_dedup arr =
  let arr = Array.copy arr in
  Array.sort Int.compare arr;
  let n = Array.length arr in
  if n <= 1 then arr
  else begin
    let k = ref 1 in
    for i = 1 to n - 1 do
      if arr.(i) <> arr.(!k - 1) then begin
        arr.(!k) <- arr.(i);
        incr k
      end
    done;
    Array.sub arr 0 !k
  end

let of_array ?layout arr = of_sorted_array ?layout (sort_dedup arr)
let of_bitset b = Bs b
let layout = function Uint _ -> Sparse | Bs _ -> Dense
let cardinality = function Uint a -> Array.length a | Bs b -> Bitset.cardinality b
let is_empty t = cardinality t = 0

let binary_search arr v =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) = v then mid else if arr.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length arr)

let mem t v =
  match t with Uint a -> binary_search a v >= 0 | Bs b -> Bitset.mem b v

let iter f = function Uint a -> Array.iter f a | Bs b -> Bitset.iter f b

let iteri f = function
  | Uint a -> Array.iteri f a
  | Bs b ->
      let i = ref 0 in
      Bitset.iter
        (fun v ->
          f !i v;
          incr i)
        b

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_array = function Uint a -> a | Bs b -> Bitset.to_sorted_array b

let rank t v =
  match t with
  | Uint a ->
      let i = binary_search a v in
      if i < 0 then raise Not_found else i
  | Bs b -> Bitset.rank b v

let nth t i =
  match t with
  | Uint a -> a.(i)
  | Bs b ->
      if i < 0 || i >= Bitset.cardinality b then invalid_arg "Set.nth: out of bounds";
      Bitset.select b i

let min_elt = function
  | Uint a -> if Array.length a = 0 then raise Not_found else a.(0)
  | Bs b -> Bitset.min_elt b

let max_elt = function
  | Uint a -> if Array.length a = 0 then raise Not_found else a.(Array.length a - 1)
  | Bs b -> Bitset.max_elt b

let singleton v = Uint [| v |]

let filter pred t =
  let out = Lh_util.Vec.Int.create () in
  iter (fun v -> if pred v then Lh_util.Vec.Int.push out v) t;
  of_sorted_array (Lh_util.Vec.Int.to_array out)

let filter_range ~lo ~hi t = filter (fun v -> v >= lo && v <= hi) t

let union a b =
  match (a, b) with
  | Uint [||], s | s, Uint [||] -> s
  | Bs x, Bs y -> Bs (Bitset.union x y)
  | _ ->
      let xs = to_array a and ys = to_array b in
      let out = Lh_util.Vec.Int.create ~capacity:(Array.length xs + Array.length ys) () in
      let i = ref 0 and j = ref 0 in
      let push = Lh_util.Vec.Int.push out in
      while !i < Array.length xs && !j < Array.length ys do
        let x = xs.(!i) and y = ys.(!j) in
        if x < y then begin push x; incr i end
        else if y < x then begin push y; incr j end
        else begin push x; incr i; incr j end
      done;
      while !i < Array.length xs do push xs.(!i); incr i done;
      while !j < Array.length ys do push ys.(!j); incr j done;
      of_sorted_array (Lh_util.Vec.Int.to_array out)

let equal a b = to_array a = to_array b

let pp fmt t =
  Format.fprintf fmt "{%s|" (match layout t with Sparse -> "uint" | Dense -> "bs");
  let first = ref true in
  iter
    (fun v ->
      if not !first then Format.pp_print_string fmt " ";
      first := false;
      Format.pp_print_int fmt v)
    t;
  Format.pp_print_string fmt "}"
