type column = Icol of int array | Fcol of float array

type t = {
  name : string;
  schema : Schema.t;
  nrows : int;
  cols : column array;
  dict : Dict.t;
}

let column_length = function Icol a -> Array.length a | Fcol a -> Array.length a

let create ~name ~schema ~dict cols =
  let ncols = Schema.ncols schema in
  if Array.length cols <> ncols then
    failwith (Printf.sprintf "Table.create %s: %d columns for %d schema entries" name (Array.length cols) ncols);
  let nrows = if ncols = 0 then 0 else column_length cols.(0) in
  Array.iteri
    (fun i c ->
      if column_length c <> nrows then failwith (Printf.sprintf "Table.create %s: ragged columns" name);
      let spec = Schema.col schema i in
      match (spec.Schema.dtype, c) with
      | Dtype.Float, Fcol _ -> ()
      | Dtype.Float, Icol _ -> failwith (Printf.sprintf "Table.create %s: column %s must be floats" name spec.Schema.name)
      | (Dtype.Int | Dtype.String | Dtype.Date), Icol codes ->
          if spec.Schema.kind = Schema.Key && Array.exists (fun v -> v < 0) codes then
            failwith (Printf.sprintf "Table.create %s: negative code in key column %s" name spec.Schema.name)
      | (Dtype.Int | Dtype.String | Dtype.Date), Fcol _ ->
          failwith (Printf.sprintf "Table.create %s: column %s must be int codes" name spec.Schema.name))
    cols;
  { name; schema; nrows; cols; dict }

(* Columns are immutable after [create]; repointing the dictionary is all a
   snapshot needs — the int codes stay valid because [Dict.copy] preserves
   code assignment. *)
let with_dict t ~dict = { t with dict }

let encode_cell dict dtype raw =
  match dtype with
  | Dtype.Int -> int_of_string (String.trim raw)
  | Dtype.Date -> Date.of_string raw
  | Dtype.String -> Dict.encode dict raw
  | Dtype.Float -> failwith "Table.encode_cell: float handled separately"

(* Fired once per ingested row on both CSV paths (the sequential fold and
   the parallel chunk bodies) and on [of_rows]. A fault here aborts the
   load before [create] runs, so no table is ever registered from a
   partial ingest. *)
let fault_row = Lh_fault.Fault.site "ingest.row"

let of_rows ~name ~schema ~dict rows =
  let ncols = Schema.ncols schema in
  let builders =
    Array.init ncols (fun i ->
        match (Schema.col schema i).Schema.dtype with
        | Dtype.Float -> `F (Lh_util.Vec.Float.create ())
        | Dtype.Int | Dtype.String | Dtype.Date -> `I (Lh_util.Vec.Int.create ()))
  in
  List.iter
    (fun row ->
      Lh_fault.Fault.hit fault_row;
      if List.length row <> ncols then failwith (Printf.sprintf "Table.of_rows %s: ragged row" name);
      List.iteri
        (fun i v ->
          match (builders.(i), v, (Schema.col schema i).Schema.dtype) with
          | `F b, Dtype.VFloat f, _ -> Lh_util.Vec.Float.push b f
          | `F b, Dtype.VInt n, _ -> Lh_util.Vec.Float.push b (float_of_int n)
          | `I b, Dtype.VInt n, Dtype.Int -> Lh_util.Vec.Int.push b n
          | `I b, Dtype.VDate d, Dtype.Date -> Lh_util.Vec.Int.push b d
          | `I b, Dtype.VString s, Dtype.String -> Lh_util.Vec.Int.push b (Dict.encode dict s)
          | _ ->
              failwith
                (Printf.sprintf "Table.of_rows %s: value %s does not fit column %s" name
                   (Dtype.value_to_string v)
                   (Schema.col schema i).Schema.name))
        row)
    rows;
  let cols =
    Array.map (function `F b -> Fcol (Lh_util.Vec.Float.to_array b) | `I b -> Icol (Lh_util.Vec.Int.to_array b)) builders
  in
  create ~name ~schema ~dict cols

let fresh_builders schema =
  Array.init (Schema.ncols schema) (fun i ->
      match (Schema.col schema i).Schema.dtype with
      | Dtype.Float -> `F (Lh_util.Vec.Float.create ())
      | Dtype.Int | Dtype.String | Dtype.Date -> `I (Lh_util.Vec.Int.create ()))

let ingest_fields ~name ~schema ~dict ~line builders fields =
  Lh_fault.Fault.hit fault_row;
  let ncols = Schema.ncols schema in
  (* TPC-H '|'-terminated lines produce a trailing empty field; accept it. *)
  let navail =
    if Array.length fields = ncols + 1 && fields.(ncols) = "" then ncols else Array.length fields
  in
  if navail < ncols then
    failwith
      (Printf.sprintf "Table.load_csv %s: line %d: row has %d fields, schema has %d columns"
         name line (Array.length fields) ncols);
  for i = 0 to ncols - 1 do
    try
      match builders.(i) with
      | `F b -> Lh_util.Vec.Float.push b (float_of_string (String.trim fields.(i)))
      | `I b ->
          Lh_util.Vec.Int.push b (encode_cell dict (Schema.col schema i).Schema.dtype fields.(i))
    with Failure _ | Invalid_argument _ ->
      failwith
        (Printf.sprintf "Table.load_csv %s: line %d: cannot parse %S as %s (column %s)" name
           line fields.(i)
           (Dtype.to_string (Schema.col schema i).Schema.dtype)
           (Schema.col schema i).Schema.name)
  done

let finish_builders builders =
  Array.map
    (function `F b -> Fcol (Lh_util.Vec.Float.to_array b) | `I b -> Icol (Lh_util.Vec.Int.to_array b))
    builders

(* Parallel ingest: each chunk of lines parses into private builders with a
   private dictionary; chunks merge left-to-right, remapping string codes
   through [Dict.merge_into], so the final code assignment — and therefore
   the table — is identical to the sequential scan's. *)
let load_csv_parallel ~name ~schema ~dict ~domains ~sep path =
  let lines = Lh_util.Csv.read_lines path in
  let string_col =
    Array.init (Schema.ncols schema) (fun i -> (Schema.col schema i).Schema.dtype = Dtype.String)
  in
  let ldict, builders =
    Lh_util.Parfor.map_reduce ~domains ~n:(Array.length lines)
      ~init:(fun () -> (Dict.create (), fresh_builders schema))
      ~body:(fun (ldict, builders) i ->
        let lineno, raw = lines.(i) in
        let fields = Array.of_list (Lh_util.Csv.split_line ~sep raw) in
        ingest_fields ~name ~schema ~dict:ldict ~line:lineno builders fields)
      ~merge:(fun (adict, abuilders) (bdict, bbuilders) ->
        let remap = Dict.merge_into ~into:adict bdict in
        Array.iteri
          (fun i b ->
            match (abuilders.(i), b) with
            | `F a, `F b ->
                for j = 0 to Lh_util.Vec.Float.length b - 1 do
                  Lh_util.Vec.Float.push a (Lh_util.Vec.Float.get b j)
                done
            | `I a, `I b ->
                let strings = string_col.(i) in
                for j = 0 to Lh_util.Vec.Int.length b - 1 do
                  let v = Lh_util.Vec.Int.get b j in
                  Lh_util.Vec.Int.push a (if strings then remap.(v) else v)
                done
            | _ -> assert false)
          bbuilders;
        (adict, abuilders))
  in
  let remap = Dict.merge_into ~into:dict ldict in
  let cols =
    Array.mapi
      (fun i b ->
        match b with
        | `F b -> Fcol (Lh_util.Vec.Float.to_array b)
        | `I b ->
            let a = Lh_util.Vec.Int.to_array b in
            if string_col.(i) then
              for j = 0 to Array.length a - 1 do
                a.(j) <- remap.(a.(j))
              done;
            Icol a)
      builders
  in
  create ~name ~schema ~dict cols

let load_csv ~name ~schema ~dict ?(domains = 1) ?(sep = ',') path =
  if domains > 1 then load_csv_parallel ~name ~schema ~dict ~domains ~sep path
  else begin
    let builders = fresh_builders schema in
    Lh_util.Csv.fold_file ~sep path ~init:() ~f:(fun () ~line row ->
        ingest_fields ~name ~schema ~dict ~line builders (Array.of_list row));
    create ~name ~schema ~dict (finish_builders builders)
  end

let icol t i =
  match t.cols.(i) with
  | Icol a -> a
  | Fcol _ -> failwith (Printf.sprintf "Table.icol %s: column %d holds floats" t.name i)

let fcol t i =
  match t.cols.(i) with
  | Fcol a -> a
  | Icol _ -> failwith (Printf.sprintf "Table.fcol %s: column %d holds int codes" t.name i)

let number t col row =
  match t.cols.(col) with
  | Fcol a -> a.(row)
  | Icol a ->
      (match (Schema.col t.schema col).Schema.dtype with
      | Dtype.String -> failwith (Printf.sprintf "Table.number %s: string column" t.name)
      | Dtype.Int | Dtype.Date | Dtype.Float -> float_of_int a.(row))

let code t col row =
  match t.cols.(col) with
  | Icol a -> a.(row)
  | Fcol _ -> failwith (Printf.sprintf "Table.code %s: float column has no code" t.name)

let value t ~row ~col =
  let spec = Schema.col t.schema col in
  match (t.cols.(col), spec.Schema.dtype) with
  | Fcol a, _ -> Dtype.VFloat a.(row)
  | Icol a, Dtype.Int -> Dtype.VInt a.(row)
  | Icol a, Dtype.Date -> Dtype.VDate a.(row)
  | Icol a, Dtype.String -> Dtype.VString (Dict.decode t.dict a.(row))
  | Icol _, Dtype.Float -> assert false

let encode_const t col v =
  let spec = Schema.col t.schema col in
  match (spec.Schema.dtype, v) with
  | Dtype.Int, Dtype.VInt n -> Some n
  | Dtype.Date, Dtype.VDate d -> Some d
  | Dtype.Date, Dtype.VString s -> Some (Date.of_string s)
  | Dtype.String, Dtype.VString s -> Dict.find t.dict s
  | Dtype.Float, _ -> failwith (Printf.sprintf "Table.encode_const %s: float column" t.name)
  | _ ->
      failwith
        (Printf.sprintf "Table.encode_const %s: %s does not fit column %s" t.name
           (Dtype.value_to_string v) spec.Schema.name)

let to_rows t =
  List.init t.nrows (fun row ->
      List.init (Schema.ncols t.schema) (fun col -> value t ~row ~col))

let pp_row fmt t row =
  for col = 0 to Schema.ncols t.schema - 1 do
    if col > 0 then Format.fprintf fmt "|";
    Dtype.pp_value fmt (value t ~row ~col)
  done
