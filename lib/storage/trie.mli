(** The trie storage of key attributes (§III-B, Fig. 3).

    Each trie level holds one key attribute; every set is stored in the
    sparse (uint) or dense (bs) layout chosen per set at build time. The
    annotation data a query needs is pre-evaluated into leaf {!group}s while
    the trie is built:

    - [vec.(j)] is the relation's contribution to physical aggregate slot
      [j], already ⊕-combined over duplicate key tuples;
    - [codes] are the relation's GROUP BY annotation codes (duplicate key
      tuples with different codes stay in separate groups, keeping GROUP BY
      on annotations exact);
    - [mult] is the total multiplicity collapsed into the group (row count
      for base tables, an aggregated float for materialized GHD-node
      results) — the factor a sum-style aggregate owned by {e another}
      relation must be scaled by.

    Building a trie only touches the key columns and annotation buffers the
    query references: this is the physical half of attribute elimination
    (§IV-A). *)

type group = { codes : int array; vec : float array; mult : float }

type node = {
  set : Lh_set.Set.t;
  children : node array;  (** one per set value, in rank order; [||] at the last level *)
  groups : group array array;  (** per set value at the last level; [||] above it *)
}

type t = {
  nlevels : int;
  root : node;
  total_tuples : int;
  level_max : int array;  (** max key value per level; -1 when the trie is empty *)
  leaf_unit : bool;
      (** Every leaf groups array is the single unit group
          [{codes = \[||\]; vec = \[||\]; mult = 1.0}] — i.e. the relation
          carries no owned aggregates, no GROUP BY annotation codes, and no
          duplicate key tuples. This is the precondition for the executor's
          count-only WCOJ leaves: n intersection matches contribute exactly
          the factor n. Vacuously true for an empty trie. *)
  level_dense : int array;  (** number of dense ("bs") sets per level *)
  level_nodes : int array;  (** total number of sets per level *)
}

val build :
  ?domains:int ->
  keys:int array array ->
  rows:int array ->
  ?group_cols:int array array ->
  ?aggs:((float -> float -> float) * (int -> float)) array ->
  ?mults:(int -> float) ->
  unit ->
  t
(** [build ~keys ~rows ()] sorts [rows] by the key tuple
    [(keys.(0).(r), keys.(1).(r), ...)] and constructs the trie.
    [group_cols.(g).(r)] supplies GROUP BY annotation codes; [aggs.(j)] is
    the ⊕ combine function (the owning slot's semiring [add]) and per-row
    evaluator of owned aggregate slot [j] — pre-⊕-folding duplicate key
    tuples here is valid for any semiring by distributivity; [mults]
    gives each row's multiplicity (default 1.0, i.e. [mult] counts rows).
    At least one key level is required.

    With [domains > 1] the subtrees under distinct first-level keys are
    built in parallel on the shared {!Lh_util.Pool}. Each subtree is the
    same computation the sequential recursion performs over the same row
    segment, so the resulting trie is bit-identical for every [domains]
    value (the [aggs] / [mults] evaluators must therefore be safe to call
    from several domains on disjoint rows — the column-reading closures the
    engine passes are). *)

val first_level : t -> Lh_set.Set.t

val lookup : t -> int array -> node option
(** [lookup t prefix] walks [prefix] from the root: the node whose [set]
    holds the values at level [length prefix] — the [R\[t\]] operation of
    Table I. [None] when the prefix is absent. Linear in prefix length;
    used by tests and the CLI, not by the executor's inner loop. *)

val iter_tuples : t -> (int array -> group -> unit) -> unit
(** Visits every (key tuple, leaf group) pair in lexicographic order. *)

val cardinality : t -> int
(** Number of distinct key tuples (leaf set entries). *)
