(** Shared string dictionary.

    All string attributes of one engine instance are encoded against a
    single pool so that equi-joins and cross-relation comparisons on string
    columns compare plain int codes. Codes are assigned in first-seen order,
    so they are not order-preserving: range predicates on strings are
    rejected upstream (none of the paper's workloads use them). *)

type t

val create : unit -> t
val encode : t -> string -> int
(** Returns the existing code or assigns the next one. *)

val find : t -> string -> int option
(** Lookup without inserting. *)

val merge_into : into:t -> t -> int array
(** [merge_into ~into local] encodes every string of [local] into [into] in
    [local]-code order and returns the remap: local code [c] becomes [into]
    code [remap.(c)]. Because local codes are themselves first-seen order,
    folding per-chunk dictionaries into a shared one in chunk order assigns
    exactly the codes a sequential scan of the concatenated chunks would
    have — the keystone of the parallel ingest's determinism. *)

val copy : t -> t
(** Deep copy sharing no mutable state with the original: safe to read
    concurrently while the original keeps encoding. Codes are preserved. *)

val decode : t -> int -> string
(** Raises [Invalid_argument] for an unknown code. *)

val size : t -> int
