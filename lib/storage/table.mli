(** Columnar tables.

    Each attribute is one buffer, loadable in isolation — the physical side
    of attribute elimination (§IV-A). Int and date and string attributes are
    stored as int codes ([Icol]); float attributes as raw floats ([Fcol]).
    Integer keys use their own value as code (order-preserving); strings go
    through the engine's shared {!Dict}. *)

type column = Icol of int array | Fcol of float array

type t = private {
  name : string;
  schema : Schema.t;
  nrows : int;
  cols : column array;
  dict : Dict.t;
}

val create : name:string -> schema:Schema.t -> dict:Dict.t -> column array -> t
(** Raises [Failure] when column count/length or representation does not
    match the schema, or when a key column contains a negative code. *)

val of_rows : name:string -> schema:Schema.t -> dict:Dict.t -> Dtype.value list list -> t
(** Convenience constructor for tests and small inputs. *)

val with_dict : t -> dict:Dict.t -> t
(** Same columns, different dictionary. Only meaningful when [dict]
    preserves this table's code assignment (e.g. a {!Dict.copy} of the
    original); used to freeze tables into immutable snapshots. *)

val load_csv :
  name:string -> schema:Schema.t -> dict:Dict.t -> ?domains:int -> ?sep:char -> string -> t
(** Ingest a delimited file; one field per schema column, in order.

    With [domains > 1] the file's lines are parsed in parallel chunks, each
    against a private {!Dict}; the per-chunk dictionaries fold into [dict]
    in chunk order (see {!Dict.merge_into}), so the loaded table — codes
    included — is identical for every [domains] value. *)

val icol : t -> int -> int array
(** The int-code buffer of a column; raises [Failure] on a float column. *)

val fcol : t -> int -> float array

val number : t -> int -> int -> float
(** [number t col row]: the numeric value of an int/float/date cell (string
    cells raise). *)

val code : t -> int -> int -> int
(** [code t col row]: the int code of an int/date/string cell. *)

val value : t -> row:int -> col:int -> Dtype.value
(** Fully decoded cell value. *)

val encode_const : t -> int -> Dtype.value -> int option
(** [encode_const t col v] is the code a constant would have in column
    [col]: unknown strings yield [None] (they match nothing). Raises
    [Failure] on type mismatch or float columns. *)

val to_rows : t -> Dtype.value list list
val pp_row : Format.formatter -> t -> int -> unit
