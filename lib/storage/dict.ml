type t = {
  table : (string, int) Hashtbl.t;
  mutable strings : string array;
  mutable len : int;
}

let create () = { table = Hashtbl.create 256; strings = Array.make 16 ""; len = 0 }

let encode t s =
  match Hashtbl.find_opt t.table s with
  | Some code -> code
  | None ->
      let code = t.len in
      if t.len = Array.length t.strings then begin
        let bigger = Array.make (2 * t.len) "" in
        Array.blit t.strings 0 bigger 0 t.len;
        t.strings <- bigger
      end;
      t.strings.(t.len) <- s;
      t.len <- t.len + 1;
      Hashtbl.replace t.table s code;
      code

let find t s = Hashtbl.find_opt t.table s

let merge_into ~into local =
  let remap = Array.make local.len 0 in
  for c = 0 to local.len - 1 do
    remap.(c) <- encode into local.strings.(c)
  done;
  remap

(* Deep copy for snapshot freezing: the copy shares no mutable cell with
   the original, so readers of the copy never race a concurrent [encode]
   on the live dictionary. Strings themselves are immutable and shared. *)
let copy t =
  { table = Hashtbl.copy t.table; strings = Array.copy t.strings; len = t.len }

let decode t code =
  if code < 0 || code >= t.len then invalid_arg (Printf.sprintf "Dict.decode: unknown code %d" code);
  t.strings.(code)

let size t = t.len
