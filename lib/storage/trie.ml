type group = { codes : int array; vec : float array; mult : float }

type node = {
  set : Lh_set.Set.t;
  children : node array;
  groups : group array array;
}

type t = {
  nlevels : int;
  root : node;
  total_tuples : int;
  level_max : int array;
  leaf_unit : bool;
  level_dense : int array;
  level_nodes : int array;
}

(* Aggregate the rows of one leaf segment into groups keyed by their
   GROUP BY annotation codes.  The overwhelmingly common case (no
   annotation GROUP BY) avoids the hash table entirely. *)
let make_groups ~rows ~group_cols ~aggs ~mults lo hi =
  let naggs = Array.length aggs in
  let eval_vec r = Array.map (fun (_, f) -> f r) aggs in
  let fold_into g r =
    for j = 0 to naggs - 1 do
      let comb, f = aggs.(j) in
      g.(j) <- comb g.(j) (f r)
    done
  in
  if Array.length group_cols = 0 then begin
    let r0 = rows.(lo) in
    let vec = eval_vec r0 in
    let mult = ref (mults r0) in
    for i = lo + 1 to hi - 1 do
      fold_into vec rows.(i);
      mult := !mult +. mults rows.(i)
    done;
    [| { codes = [||]; vec; mult = !mult } |]
  end
  else begin
    let codes_of r = Array.map (fun col -> col.(r)) group_cols in
    (* Keep insertion order stable for determinism. *)
    let table : (int array, float array ref * float ref) Hashtbl.t = Hashtbl.create 4 in
    let order = ref [] in
    for i = lo to hi - 1 do
      let r = rows.(i) in
      let codes = codes_of r in
      match Hashtbl.find_opt table codes with
      | Some (vec, mult) ->
          fold_into !vec r;
          mult := !mult +. mults r
      | None ->
          Hashtbl.replace table codes (ref (eval_vec r), ref (mults r));
          order := codes :: !order
    done;
    let groups =
      List.rev_map
        (fun codes ->
          let vec, mult = Hashtbl.find table codes in
          { codes; vec = !vec; mult = !mult })
        !order
    in
    Array.of_list groups
  end

let empty_node = { set = Lh_set.Set.empty; children = [||]; groups = [||] }

(* Fired on entry to every subtree build (and per segment on the parallel
   path), so an armed "trie.build.node" fault aborts a build mid-way. The
   trie value is only returned on success, so an aborted build can never
   leave a partial trie behind — callers that cache tries rely on this. *)
let fault_node = Lh_fault.Fault.site "trie.build.node"

(* Per-task build statistics: subtree builds run on worker domains with a
   private copy, merged in chunk order afterwards. *)
type bstats = {
  mutable tuples : int;
  maxes : int array;
  (* Layout-disposition statistics the executor's kernel specialization
     reads: per-level dense/total set tallies, and whether every leaf
     groups array is the single unit group {codes=[||]; vec=[||]; mult=1}
     — the precondition for count-only WCOJ leaves. *)
  mutable unit_leaves : bool;
  ndense : int array;
  nsets : int array;
}

let build ?(domains = 1) ~keys ~rows ?(group_cols = [||]) ?(aggs = [||]) ?(mults = fun _ -> 1.0) () =
  let nlevels = Array.length keys in
  if nlevels = 0 then invalid_arg "Trie.build: at least one key level required";
  let rows = Array.copy rows in
  let cmp r1 r2 =
    let rec go l =
      if l >= nlevels then 0
      else
        let c = Int.compare keys.(l).(r1) keys.(l).(r2) in
        if c <> 0 then c else go (l + 1)
    in
    go 0
  in
  Array.sort cmp rows;
  let nrows = Array.length rows in
  (* rows.(lo..hi) share the key prefix above [level]; produce the node for
     this subtree.  Segments of equal value at [level] become set entries. *)
  let unit_groups g =
    Array.length g = 1
    && Array.length g.(0).codes = 0
    && Array.length g.(0).vec = 0
    && g.(0).mult = 1.0
  in
  let tally_set stats level set =
    stats.nsets.(level) <- stats.nsets.(level) + 1;
    match Lh_set.Set.layout set with
    | Lh_set.Set.Dense -> stats.ndense.(level) <- stats.ndense.(level) + 1
    | Lh_set.Set.Sparse -> ()
  in
  let rec build_node stats level lo hi =
    Lh_fault.Fault.hit fault_node;
    let col = keys.(level) in
    (* Count distinct values first so the arrays are allocated exactly. *)
    let ndistinct = ref 0 in
    let i = ref lo in
    while !i < hi do
      let v = col.(rows.(!i)) in
      incr ndistinct;
      while !i < hi && col.(rows.(!i)) = v do
        incr i
      done
    done;
    let values = Array.make !ndistinct 0 in
    let last = level = nlevels - 1 in
    let children = if last then [||] else Array.make !ndistinct empty_node in
    let groups = if last then Array.make !ndistinct [||] else [||] in
    let k = ref 0 in
    let i = ref lo in
    while !i < hi do
      let v = col.(rows.(!i)) in
      let seg_lo = !i in
      while !i < hi && col.(rows.(!i)) = v do
        incr i
      done;
      values.(!k) <- v;
      if v > stats.maxes.(level) then stats.maxes.(level) <- v;
      if last then begin
        groups.(!k) <- make_groups ~rows ~group_cols ~aggs ~mults seg_lo !i;
        if stats.unit_leaves && not (unit_groups groups.(!k)) then stats.unit_leaves <- false;
        stats.tuples <- stats.tuples + 1
      end
      else children.(!k) <- build_node stats (level + 1) seg_lo !i;
      incr k
    done;
    let set = Lh_set.Set.of_sorted_array values in
    tally_set stats level set;
    { set; children; groups }
  in
  let fresh_stats () =
    {
      tuples = 0;
      maxes = Array.make nlevels (-1);
      unit_leaves = true;
      ndense = Array.make nlevels 0;
      nsets = Array.make nlevels 0;
    }
  in
  let finish stats root =
    {
      nlevels;
      root;
      total_tuples = stats.tuples;
      level_max = stats.maxes;
      leaf_unit = stats.unit_leaves;
      level_dense = stats.ndense;
      level_nodes = stats.nsets;
    }
  in
  if nrows = 0 then
    {
      nlevels;
      root = empty_node;
      total_tuples = 0;
      level_max = Array.make nlevels (-1);
      leaf_unit = true;
      level_dense = Array.make nlevels 0;
      level_nodes = Array.make nlevels 0;
    }
  else if domains <= 1 then begin
    let stats = fresh_stats () in
    let root = build_node stats 0 0 nrows in
    finish stats root
  end
  else begin
    (* Parallel build, partitioned by first-level key: the sorted rows are
       segmented on the level-0 value, and each segment's subtree is built
       independently — exactly the node the sequential recursion would
       produce, so the result is bit-identical for any [domains]. *)
    let col0 = keys.(0) in
    let bounds = Lh_util.Vec.Int.create () in
    let values = Lh_util.Vec.Int.create () in
    let i = ref 0 in
    while !i < nrows do
      let v = col0.(rows.(!i)) in
      Lh_util.Vec.Int.push bounds !i;
      Lh_util.Vec.Int.push values v;
      while !i < nrows && col0.(rows.(!i)) = v do
        incr i
      done
    done;
    Lh_util.Vec.Int.push bounds nrows;
    let values = Lh_util.Vec.Int.to_array values in
    let bounds = Lh_util.Vec.Int.to_array bounds in
    let nsegs = Array.length values in
    let last = nlevels = 1 in
    let children = if last then [||] else Array.make nsegs empty_node in
    let groups = if last then Array.make nsegs [||] else [||] in
    let stats =
      Lh_util.Parfor.map_reduce ~domains ~n:nsegs ~init:fresh_stats
        ~body:(fun stats k ->
          let seg_lo = bounds.(k) and seg_hi = bounds.(k + 1) in
          if last then begin
            Lh_fault.Fault.hit fault_node;
            groups.(k) <- make_groups ~rows ~group_cols ~aggs ~mults seg_lo seg_hi;
            if stats.unit_leaves && not (unit_groups groups.(k)) then stats.unit_leaves <- false;
            stats.tuples <- stats.tuples + 1
          end
          else children.(k) <- build_node stats 1 seg_lo seg_hi)
        ~merge:(fun a b ->
          a.tuples <- a.tuples + b.tuples;
          Array.iteri (fun l m -> if m > a.maxes.(l) then a.maxes.(l) <- m) b.maxes;
          a.unit_leaves <- a.unit_leaves && b.unit_leaves;
          Array.iteri (fun l n -> a.ndense.(l) <- a.ndense.(l) + n) b.ndense;
          Array.iteri (fun l n -> a.nsets.(l) <- a.nsets.(l) + n) b.nsets;
          a)
    in
    (* Level-0 values ascend with the sort, so the last segment holds the max. *)
    stats.maxes.(0) <- values.(nsegs - 1);
    let set = Lh_set.Set.of_sorted_array values in
    tally_set stats 0 set;
    let root = { set; children; groups } in
    finish stats root
  end

let first_level t = t.root.set

let lookup t prefix =
  let rec go node = function
    | [] -> Some node
    | v :: rest -> (
        match Lh_set.Set.rank node.set v with
        | exception Not_found -> None
        | r -> if Array.length node.children = 0 then None else go node.children.(r) rest)
  in
  let plen = Array.length prefix in
  if plen >= t.nlevels then invalid_arg "Trie.lookup: prefix too long";
  go t.root (Array.to_list prefix)

let iter_tuples t f =
  let tuple = Array.make t.nlevels 0 in
  let rec go level node =
    if level = t.nlevels - 1 then
      Lh_set.Set.iteri
        (fun rank v ->
          tuple.(level) <- v;
          Array.iter (fun g -> f (Array.copy tuple) g) node.groups.(rank))
        node.set
    else
      Lh_set.Set.iteri
        (fun rank v ->
          tuple.(level) <- v;
          go (level + 1) node.children.(rank))
        node.set
  in
  if not (Lh_set.Set.is_empty t.root.set) then go 0 t.root

let cardinality t = t.total_tuples
