(** Outermost-loop parallelism over OCaml 5 domains (§III-D).

    The paper parallelizes only the outermost [for] loop of the generic
    WCOJ algorithm; this module provides exactly that: split an index range
    into contiguous chunks, run one chunk per domain with a private
    accumulator, and merge. With [domains = 1] everything runs on the
    calling domain (deterministic, no spawning).

    Execution rides on the process-global {!Pool}: worker domains are
    spawned once (lazily, on the first call that needs them) and parked
    between calls, so a [map_reduce] over a small range costs two
    condition-variable round-trips instead of [domains - 1] domain spawns.
    Nested calls — a parallel body that itself calls [map_reduce] — run
    the inner loop sequentially instead of deadlocking on the pool.

    {2 Domain-count policy}

    - [LH_DOMAINS=n] (an integer >= 1) pins both {!recommended_domains}
      and {!default_domains} to [n]. It is read once, in this module only;
      everything else ([Config.default], the CLI, the benches) derives
      from these two functions.
    - Otherwise {!recommended_domains} is [Domain.recommended_domain_count
      ()] — the runtime's own view of the hardware, with no artificial cap
      — and {!default_domains} is 1 (sequential), matching the paper's
      measurement protocol where parallelism is always opted into.
    - Requests are clamped to [Pool.max_workers + 1] total domains, below
      the OCaml runtime's 128-domain limit. *)

val env_domains : unit -> int option
(** [Some n] iff [LH_DOMAINS] is set to a valid domain count. The single
    place the environment variable is read. *)

val recommended_domains : unit -> int
(** [LH_DOMAINS] if set, else [Domain.recommended_domain_count ()]; at
    least 1. *)

val default_domains : unit -> int
(** The domain count configurations should start from: [LH_DOMAINS] if
    set, else 1. *)

val chunk_bounds : chunks:int -> n:int -> int -> (int * int)
(** [chunk_bounds ~chunks ~n k] is the half-open index range [(lo, hi)] of
    chunk [k]: the [chunks] ranges partition [\[0, n)] with sizes differing
    by at most one (the first [n mod chunks] chunks are the larger ones). *)

val map_reduce :
  domains:int -> n:int -> init:(unit -> 'acc) -> body:('acc -> int -> unit) -> merge:('acc -> 'acc -> 'acc) -> 'acc
(** [map_reduce ~domains ~n ~init ~body ~merge] applies [body acc i] for
    every [i] in [\[0, n)], with indices partitioned into [domains]
    contiguous chunks, each with its own [init ()] accumulator; partial
    accumulators are combined left-to-right with [merge] (chunk order, so a
    commutative merge is not required). *)

val iter : domains:int -> n:int -> (int -> unit) -> unit
(** Side-effecting variant; the body must be safe to run concurrently on
    disjoint indices. *)
