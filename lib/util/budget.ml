exception Out_of_memory_budget
exception Timed_out

(* Lh_fault sits below this library and cannot name these exceptions;
   installing them here lets armed sites of kind [timeout]/[oom] raise the
   real budget exceptions anywhere in the stack. *)
let () = Lh_fault.Fault.set_budget_exns ~timeout:Timed_out ~oom:Out_of_memory_budget

type t = {
  max_live_words : int;
  max_seconds : float;
  mutable started : float;
  mutable base_words : int;
  mutable ticks : int;
}

let unlimited =
  { max_live_words = max_int; max_seconds = infinity; started = 0.0; base_words = 0; ticks = 0 }

let create ?(max_live_words = max_int) ?(max_seconds = infinity) () =
  { max_live_words; max_seconds; started = 0.0; base_words = 0; ticks = 0 }

(* Same limits, private run state: budgets carry mutable [started]/[ticks]
   cells, so concurrent queries must each check against their own clone. *)
let clone t = { t with started = 0.0; base_words = 0; ticks = 0 }

let live_words () =
  let s = Gc.quick_stat () in
  s.Gc.heap_words

let start t =
  t.started <- Timing.now ();
  t.base_words <- live_words ();
  t.ticks <- 0

let check t =
  if t.max_seconds < infinity && Timing.now () -. t.started > t.max_seconds then raise Timed_out;
  if t.max_live_words < max_int then begin
    t.ticks <- t.ticks + 1;
    if t.ticks land 63 = 0 && live_words () - t.base_words > t.max_live_words then
      raise Out_of_memory_budget
  end

type outcome = Ok of float | Oom | Timeout

let run t f =
  start t;
  match f () with
  | x -> Result.Ok x
  | exception Out_of_memory_budget -> Result.Error Oom
  | exception Timed_out -> Result.Error Timeout
