let now () = Unix.gettimeofday ()

(* CLOCK_MONOTONIC via bechamel's stub: immune to NTP steps/slews, which
   matter at the microsecond scale spans and measurements operate on. *)
let monotonic_now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time f =
  let t0 = monotonic_now () in
  let x = f () in
  (x, monotonic_now () -. t0)

let measure ?(runs = 7) f =
  if runs <= 0 then invalid_arg "Timing.measure: runs must be positive";
  let samples =
    Array.init runs (fun _ ->
        let _, dt = time f in
        dt)
  in
  Array.sort Float.compare samples;
  (* Paper protocol: eliminate the lowest and the highest value, average the
     rest.  With fewer than 3 runs there is nothing to trim. *)
  let lo, hi = if runs >= 3 then (1, runs - 2) else (0, runs - 1) in
  let sum = ref 0.0 in
  for i = lo to hi do
    sum := !sum +. samples.(i)
  done;
  !sum /. float_of_int (hi - lo + 1)

let duration_to_string dt =
  if dt < 1e-6 then Printf.sprintf "%.0fns" (dt *. 1e9)
  else if dt < 1e-3 then Printf.sprintf "%.2fus" (dt *. 1e6)
  else if dt < 1.0 then Printf.sprintf "%.2fms" (dt *. 1e3)
  else Printf.sprintf "%.2fs" dt

let pp_duration fmt dt = Format.pp_print_string fmt (duration_to_string dt)
