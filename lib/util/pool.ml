(* Persistent worker-domain pool. See pool.mli for the contract.

   Synchronization: one mutex guards every mutable field; [work] wakes
   parked workers when a task is published, [finished] wakes the submitter
   when the last chunk completes. Chunk results written by workers become
   visible to the submitter through the same mutex (the release on the
   final decrement happens-before the submitter's wake-up), so task bodies
   may write into caller-allocated arrays at distinct indices without any
   extra fencing. *)

exception Busy

(* Fired once per claimed chunk, before its body runs; the injected
   exception travels the same capture/re-raise path as a real body
   failure, which is exactly what the crashtest harness exercises. *)
let fault_chunk = Lh_fault.Fault.site "pool.chunk"

type task = { gen : int; nchunks : int; body : int -> unit }

type t = {
  lock : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable doms : unit Domain.t list;
  mutable nworkers : int;
  mutable task : task option;
  mutable next : int;  (* next unclaimed chunk index *)
  mutable unfinished : int;  (* chunks claimed-or-pending of the current task *)
  mutable gen : int;  (* generation of the most recently published task *)
  mutable stopped : bool;
  mutable failure : exn option;  (* first chunk exception of the current task *)
  mutable tasks_run : int;
  mutable chunks_run : int;
  (* Asynchronous job lane (see [submit]): one FIFO per group, groups
     serviced round-robin so no session starves another. Invariant:
     [job_rota] holds a group exactly once iff its queue is non-empty. *)
  job_queues : (int, (unit -> unit) Queue.t) Hashtbl.t;
  job_rota : int Queue.t;
  mutable jobs_pending : int;
  mutable jobs_run : int;
}

let max_workers = 120

(* Same-domain reentrancy marker: the key holds the pools (usually zero or
   one) whose task this domain is currently executing a chunk of. *)
let executing : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Claim and run chunks of [task] until the cursor is exhausted. Called
   with the lock held; returns with the lock held.

   Fail-fast: once any chunk has recorded a failure, the remaining chunks
   are still claimed and counted (so the completion accounting stays
   exact and every waiter wakes) but their bodies are skipped — the task
   is doomed, running them would only delay the caller's re-raise and,
   under fault injection, pile further exceptions onto a poisoned
   state. *)
let drain_chunks t (task : task) =
  let marker = Domain.DLS.get executing in
  while t.next < task.nchunks do
    let k = t.next in
    t.next <- t.next + 1;
    let skip = t.failure <> None in
    Mutex.unlock t.lock;
    if not skip then begin
      marker := t :: !marker;
      match
        Lh_fault.Fault.hit fault_chunk;
        task.body k
      with
      | () -> marker := List.tl !marker
      | exception e ->
          marker := List.tl !marker;
          Mutex.lock t.lock;
          if t.failure = None then t.failure <- Some e;
          Mutex.unlock t.lock
    end;
    Mutex.lock t.lock;
    t.unfinished <- t.unfinished - 1;
    t.chunks_run <- t.chunks_run + 1;
    if t.unfinished = 0 then Condition.broadcast t.finished
  done

(* Next job in group-round-robin order. Called with the lock held. *)
let take_job t =
  if t.jobs_pending = 0 then None
  else begin
    let g = Queue.pop t.job_rota in
    let q = Hashtbl.find t.job_queues g in
    let job = Queue.pop q in
    if Queue.is_empty q then Hashtbl.remove t.job_queues g else Queue.push g t.job_rota;
    t.jobs_pending <- t.jobs_pending - 1;
    Some job
  end

(* Run one job on this domain. The [executing] marker is set so a nested
   [run] on the same pool from inside the job raises [Busy] (callers like
   Parfor then degrade to sequential instead of deadlocking). Jobs own
   their exceptions: whatever escapes is dropped here, so submitters that
   care must catch inside the closure. *)
let run_job t job =
  let marker = Domain.DLS.get executing in
  marker := t :: !marker;
  (try job () with _ -> ());
  marker := List.tl !marker;
  locked t (fun () -> t.jobs_run <- t.jobs_run + 1)

let rec worker_loop t last_gen =
  let action =
    locked t (fun () ->
        while
          (not t.stopped)
          && (match t.task with None -> true | Some task -> task.gen <= last_gen)
          && t.jobs_pending = 0
        do
          Condition.wait t.work t.lock
        done;
        if t.stopped then `Stop
        else
          (* Chunk tasks first: they block a waiting submitter, jobs don't. *)
          match t.task with
          | Some task when task.gen > last_gen ->
              drain_chunks t task;
              `Ran task.gen
          | _ -> ( match take_job t with Some job -> `Job job | None -> `Ran last_gen))
  in
  match action with
  | `Stop -> ()
  | `Ran gen -> worker_loop t gen
  | `Job job ->
      run_job t job;
      worker_loop t last_gen

let spawn_worker t =
  let d = Domain.spawn (fun () -> worker_loop t 0) in
  t.doms <- d :: t.doms;
  t.nworkers <- t.nworkers + 1

let create ~workers =
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      doms = [];
      nworkers = 0;
      task = None;
      next = 0;
      unfinished = 0;
      gen = 0;
      stopped = false;
      failure = None;
      tasks_run = 0;
      chunks_run = 0;
      job_queues = Hashtbl.create 8;
      job_rota = Queue.create ();
      jobs_pending = 0;
      jobs_run = 0;
    }
  in
  locked t (fun () ->
      for _ = 1 to min workers max_workers do
        spawn_worker t
      done);
  t

let ensure_workers t n =
  let n = min n max_workers in
  locked t (fun () ->
      if not t.stopped then
        while t.nworkers < n do
          spawn_worker t
        done)

let workers t = locked t (fun () -> t.nworkers)

let run t ~chunks body =
  if chunks > 0 then begin
    let task =
      locked t (fun () ->
          if t.task <> None then raise Busy;
          if List.memq t !(Domain.DLS.get executing) then raise Busy;
          t.gen <- t.gen + 1;
          let task = { gen = t.gen; nchunks = chunks; body } in
          t.task <- Some task;
          t.next <- 0;
          t.unfinished <- chunks;
          t.failure <- None;
          t.tasks_run <- t.tasks_run + 1;
          Condition.broadcast t.work;
          task)
    in
    let failure =
      locked t (fun () ->
          drain_chunks t task;
          while t.unfinished > 0 do
            Condition.wait t.finished t.lock
          done;
          t.task <- None;
          let f = t.failure in
          t.failure <- None;
          f)
    in
    match failure with Some e -> raise e | None -> ()
  end

(* Enqueue an asynchronous job under [group] and wake a worker. With no
   workers (or after [shutdown]) the job runs synchronously on the calling
   domain — same degenerate mode as [run] with zero workers — so a
   submitted job always eventually executes. *)
let submit t ~group job =
  let sync =
    locked t (fun () ->
        if t.stopped || t.nworkers = 0 then true
        else begin
          let q =
            match Hashtbl.find_opt t.job_queues group with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace t.job_queues group q;
                Queue.push group t.job_rota;
                q
          in
          Queue.push job q;
          t.jobs_pending <- t.jobs_pending + 1;
          Condition.signal t.work;
          false
        end)
  in
  if sync then run_job t job

let shutdown t =
  let doms =
    locked t (fun () ->
        if List.memq t !(Domain.DLS.get executing) then
          invalid_arg "Pool.shutdown: called from inside a task of this pool";
        t.stopped <- true;
        Condition.broadcast t.work;
        let doms = t.doms in
        t.doms <- [];
        t.nworkers <- 0;
        doms)
  in
  List.iter Domain.join doms;
  (* Jobs still queued when the workers stopped would otherwise never run
     (and their submitters never hear back); drain them here. *)
  let rec drain () =
    match locked t (fun () -> take_job t) with
    | Some job ->
        run_job t job;
        drain ()
    | None -> ()
  in
  drain ()

(* ------------------------------------------------------------------ *)
(* Global pool                                                          *)

let global_lock = Mutex.create ()
let global_pool : t option ref = ref None

let global () =
  Mutex.lock global_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock global_lock)
    (fun () ->
      match !global_pool with
      | Some t -> t
      | None ->
          let t = create ~workers:0 in
          global_pool := Some t;
          t)

type stats = { st_workers : int; st_tasks : int; st_chunks : int; st_jobs : int }

let stats () =
  let pool =
    Mutex.lock global_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock global_lock) (fun () -> !global_pool)
  in
  match pool with
  | None -> { st_workers = 0; st_tasks = 0; st_chunks = 0; st_jobs = 0 }
  | Some t ->
      locked t (fun () ->
          {
            st_workers = t.nworkers;
            st_tasks = t.tasks_run;
            st_chunks = t.chunks_run;
            st_jobs = t.jobs_run;
          })
