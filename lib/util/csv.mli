(** Minimal delimited-file reading and writing.

    LevelHeaded ingests structured data from delimited files on disk
    (§III).  This reader handles an arbitrary single-character separator and
    double-quoted fields (with ["" ] escaping); it is deliberately not a
    full RFC-4180 implementation. *)

val split_line : sep:char -> string -> string list
(** Split one line into fields, honouring double quotes. *)

val read_file : ?sep:char -> string -> string list list
(** All rows of a file; empty lines are skipped. Default separator [','].
    TPC-H-style files use [~sep:'|']. *)

val fold_file : ?sep:char -> string -> init:'a -> f:('a -> line:int -> string list -> 'a) -> 'a
(** Streaming fold over rows, for files too large to hold as string lists.
    [f] receives the 1-based file line number of each row, so a malformed
    row can be reported by position (empty lines are skipped but still
    counted). *)

val read_lines : string -> (int * string) array
(** All non-empty lines of a file as [(line_number, line)] pairs (1-based,
    counting skipped empty lines), CR-stripped but {e not} split — the raw
    material for a parallel ingest that calls {!split_line} per chunk and
    reports malformed rows by file position. *)

val write_file : ?sep:char -> string -> string list list -> unit
(** Write rows; fields containing the separator or quotes are quoted. *)
