(** A persistent pool of worker domains.

    [Parfor] used to spawn fresh domains on every [map_reduce] call; at the
    paper's call frequency (one parallel region per GHD bag, per trie
    build, per BLAS kernel) the spawn cost dominates small regions and the
    repeated spawn/join churn defeats the OS scheduler. This pool spawns
    each worker domain once, parks it on a condition variable, and feeds it
    chunked index-range tasks.

    A task is a function over chunk indices [0, chunks). Workers (and the
    submitting domain, which always participates) claim chunk indices from
    a shared cursor under the pool lock, so chunks are load-balanced across
    domains while remaining identified by their index — callers that need
    a deterministic combine order store per-chunk results by index and
    merge after {!run} returns, which is exactly what
    {!Parfor.map_reduce} does.

    The pool is not reentrant: one task runs at a time. {!run} raises
    {!Busy} when the pool is already executing a task — both for nested
    use (submitting from inside a task of the same pool) and for
    concurrent use from a second domain. Callers that want graceful
    degradation catch [Busy] and run sequentially ({!Parfor} does). *)

type t

exception Busy
(** Raised by {!run} when the pool is already executing a task. Raised
    before any chunk of the new task has started, so falling back to a
    sequential loop is always safe. *)

val create : workers:int -> t
(** A fresh pool with [workers] parked worker domains ([workers >= 0];
    with 0 workers {!run} degenerates to a sequential loop on the calling
    domain). Worker count is capped at {!max_workers}. *)

val ensure_workers : t -> int -> unit
(** [ensure_workers t n] grows the pool to at least [n] workers (no-op if
    already that large, or if the pool was {!shutdown}). *)

val workers : t -> int

val max_workers : int
(** Hard cap on workers per pool, comfortably below the OCaml runtime's
    maximum domain count (128). *)

val run : t -> chunks:int -> (int -> unit) -> unit
(** [run t ~chunks f] evaluates [f k] for every [k] in [0, chunks), with
    the calling domain and the workers claiming chunk indices until none
    remain, and returns when all chunks have finished. If one or more
    chunks raise, the first exception (in completion order) is re-raised
    after the task drains; chunks claimed after a failure was recorded are
    skipped (fail-fast), so [f] may have run for any strict subset of the
    index range. Either way every worker re-parks and the pool is
    immediately reusable for the next task. Raises {!Busy} if a task is
    already running.

    The fault site ["pool.chunk"] fires at the start of each claimed
    chunk body and follows the same capture/re-raise path as a real
    failure. *)

val submit : t -> group:int -> (unit -> unit) -> unit
(** [submit t ~group job] enqueues an asynchronous job and returns
    immediately; a worker runs it when free. Jobs are a second lane next
    to {!run}'s chunk tasks: workers prefer chunk work (a {!run} caller is
    blocked on it; job submitters are not), and service job queues fairly
    — one FIFO per [group], groups round-robin — so a group (e.g. a
    serving session) flooding jobs cannot starve the others.

    A job's exceptions are dropped by the pool: completion signalling and
    error capture belong inside the closure. While a job runs, nested
    {!run} on the same pool from that domain raises {!Busy} (degrade
    sequentially, as {!Parfor} does). With zero workers, or after
    {!shutdown}, the job runs synchronously on the calling domain — a
    submitted job always eventually executes. *)

val shutdown : t -> unit
(** Parks no more: wakes every worker, joins them, and drops them; jobs
    still queued are then drained on the calling domain (a submitted job
    is never lost). The pool remains usable — subsequent {!run}s execute
    all chunks on the calling domain and {!submit}s run synchronously —
    but {!ensure_workers} will not respawn. Idempotent. Calling it from
    inside a task of the same pool is not allowed. *)

(* ------------------------------------------------------------------ *)

(** {1 The process-global pool}

    All library-internal parallelism ({!Parfor}, and through it the trie
    builder, CSV ingest and the BLAS kernels) shares one global pool so a
    process never holds more parked domains than its widest parallel
    region needs. The pool is created lazily on first use: a process that
    keeps [Config.domains = 1] never spawns a domain. *)

val global : unit -> t

type stats = {
  st_workers : int;  (** workers currently parked in the global pool *)
  st_tasks : int;  (** parallel regions executed, process lifetime *)
  st_chunks : int;  (** chunks executed, process lifetime *)
  st_jobs : int;  (** submitted jobs executed, process lifetime *)
}

val stats : unit -> stats
(** Counters of the global pool. All zero until its first use; reading
    them does not create the pool. *)
