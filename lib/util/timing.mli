(** Wall-clock measurement following the paper's protocol (§VI-A): repeat
    each measurement, drop the lowest and highest value, report the mean of
    the rest. *)

val now : unit -> float
(** Wall-clock seconds (subject to NTP adjustment; use for timestamps). *)

val monotonic_now : unit -> float
(** Monotonic seconds ([CLOCK_MONOTONIC]): steady under NTP steps and
    slews. The origin is arbitrary — only differences are meaningful.
    Use this for every duration measurement (spans, benchmarks). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] once and returns its result with elapsed monotonic
    seconds. *)

val measure : ?runs:int -> (unit -> 'a) -> float
(** [measure ~runs f] runs [f] [runs] times (default 7), drops the fastest
    and slowest run when [runs >= 3], and returns the mean of the remaining
    times in seconds. *)

val pp_duration : Format.formatter -> float -> unit
(** Human-readable duration: e.g. [12.3us], [4.56ms], [1.89s]. *)

val duration_to_string : float -> string
