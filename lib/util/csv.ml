(* Fired once per non-empty input line in both readers, so an armed
   "csv.line" fault aborts an ingest mid-file regardless of which path
   (sequential fold or parallel read_lines) the caller took. *)
let fault_line = Lh_fault.Fault.site "csv.line"

let split_line ~sep line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let rec plain i =
    if i >= n then flush_field ()
    else
      let c = line.[i] in
      if c = sep then begin
        flush_field ();
        plain (i + 1)
      end
      else if c = '"' && Buffer.length buf = 0 then quoted (i + 1)
      else begin
        Buffer.add_char buf c;
        plain (i + 1)
      end
  and quoted i =
    if i >= n then flush_field () (* unterminated quote: accept what we have *)
    else if line.[i] = '"' then
      if i + 1 < n && line.[i + 1] = '"' then begin
        Buffer.add_char buf '"';
        quoted (i + 2)
      end
      else plain (i + 1)
    else begin
      Buffer.add_char buf line.[i];
      quoted (i + 1)
    end
  in
  plain 0;
  List.rev !fields

let fold_file ?(sep = ',') path ~init ~f =
  let ic = open_in path in
  let rec loop lineno acc =
    match input_line ic with
    | exception End_of_file -> acc
    | "" -> loop (lineno + 1) acc
    | line ->
        Lh_fault.Fault.hit fault_line;
        let line =
          (* Tolerate CRLF files. *)
          let n = String.length line in
          if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
        in
        loop (lineno + 1) (f acc ~line:lineno (split_line ~sep line))
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> loop 1 init)

let read_file ?sep path =
  List.rev (fold_file ?sep path ~init:[] ~f:(fun acc ~line:_ row -> row :: acc))

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  let rec loop lineno =
    match input_line ic with
    | exception End_of_file -> ()
    | "" -> loop (lineno + 1)
    | line ->
        Lh_fault.Fault.hit fault_line;
        let line =
          let n = String.length line in
          if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
        in
        lines := (lineno, line) :: !lines;
        loop (lineno + 1)
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> loop 1);
  let arr = Array.of_list !lines in
  let n = Array.length arr in
  (* !lines is in reverse file order; flip in place. *)
  for i = 0 to (n / 2) - 1 do
    let tmp = arr.(i) in
    arr.(i) <- arr.(n - 1 - i);
    arr.(n - 1 - i) <- tmp
  done;
  arr

let needs_quoting ~sep field =
  String.exists (fun c -> c = sep || c = '"' || c = '\n') field

let write_file ?(sep = ',') path rows =
  let oc = open_out path in
  let write_field field =
    if needs_quoting ~sep field then begin
      output_char oc '"';
      String.iter
        (fun c ->
          if c = '"' then output_string oc "\"\"" else output_char oc c)
        field;
      output_char oc '"'
    end
    else output_string oc field
  in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun row ->
          List.iteri
            (fun i field ->
              if i > 0 then output_char oc sep;
              write_field field)
            row;
          output_char oc '\n')
        rows)
