(** Execution budgets used to reproduce the paper's ['oom'] and ['t/o']
    outcomes (Table II) without actually exhausting the machine.

    A budget is installed around an engine run; cooperative checkpoints in
    the engines call {!check}, which raises once either limit is crossed. *)

exception Out_of_memory_budget
exception Timed_out

type t

val unlimited : t

val create : ?max_live_words:int -> ?max_seconds:float -> unit -> t
(** [max_live_words] bounds the major-heap live words observed at
    checkpoints; [max_seconds] bounds elapsed wall-clock time. *)

val clone : t -> t
(** Same limits, fresh per-run state. A budget's [start]/[check] cells are
    mutable, so concurrent queries must run against private clones. *)

val start : t -> unit
(** Records the start time and baseline heap size. *)

val check : t -> unit
(** Raises {!Out_of_memory_budget} or {!Timed_out} when a limit is
    exceeded. Cheap: a time read, plus a heap probe every 64 calls. *)

type outcome = Ok of float | Oom | Timeout

val run : t -> (unit -> 'a) -> ('a, outcome) result
(** [run budget f] executes [f] under [budget], returning [Error Oom] or
    [Error Timeout] when the corresponding exception escapes, and [Ok]
    otherwise. *)
