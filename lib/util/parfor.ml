let env_domains =
  let parsed =
    lazy
      (match Sys.getenv_opt "LH_DOMAINS" with
      | None -> None
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> Some (min n (Pool.max_workers + 1))
          | Some _ | None -> None))
  in
  fun () -> Lazy.force parsed

let recommended_domains () =
  match env_domains () with
  | Some n -> n
  | None -> (
      match Domain.recommended_domain_count () with n when n >= 1 -> n | _ -> 1)

let default_domains () = match env_domains () with Some n -> n | None -> 1

let chunk_bounds ~chunks ~n k =
  let per = n / chunks and rem = n mod chunks in
  let lo = (k * per) + min k rem in
  let hi = lo + per + (if k < rem then 1 else 0) in
  (lo, hi)

let sequential ~n ~init ~body =
  let acc = init () in
  for i = 0 to n - 1 do
    body acc i
  done;
  acc

let map_reduce ~domains ~n ~init ~body ~merge =
  let domains = max 1 (min domains n) in
  if domains = 1 || n = 0 then sequential ~n ~init ~body
  else begin
    let pool = Pool.global () in
    Pool.ensure_workers pool (domains - 1);
    (* Chunk k's accumulator lands in slot k: whichever domain ran it, the
       merge below happens in chunk order, so the combine order is exactly
       the [chunk_bounds] partition — deterministic for a fixed [domains]. *)
    let results = Array.make domains None in
    let run_chunk k =
      let lo, hi = chunk_bounds ~chunks:domains ~n k in
      let acc = init () in
      for i = lo to hi - 1 do
        body acc i
      done;
      results.(k) <- Some acc
    in
    match Pool.run pool ~chunks:domains run_chunk with
    | () ->
        let first = Option.get results.(0) in
        let acc = ref first in
        for k = 1 to domains - 1 do
          acc := merge !acc (Option.get results.(k))
        done;
        !acc
    | exception Pool.Busy ->
        (* Already inside a parallel region (nested call) or another domain
           holds the pool: degrade to the sequential loop. [Busy] is raised
           before any chunk starts, so nothing ran twice. *)
        sequential ~n ~init ~body
  end

let iter ~domains ~n f =
  ignore
    (map_reduce ~domains ~n
       ~init:(fun () -> ())
       ~body:(fun () i -> f i)
       ~merge:(fun () () -> ()))
