(** Dense matrices in row-major BLAS layout.

    This module is the repository's stand-in for Intel MKL's dense kernels
    (DESIGN.md, substitutions): the [data] buffer of a matrix is exactly the
    "BLAS compatible buffer" LevelHeaded's attribute elimination produces
    for a dense annotation, so the engine can hand buffers here without any
    data transformation (§III-D). *)

type t = { rows : int; cols : int; data : float array }
(** [data.(i * cols + j)] is element (i, j). *)

val create : rows:int -> cols:int -> t
(** Zero-filled. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Validates the length; the array is used directly (not copied). *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val gemv : ?domains:int -> ?budget:Lh_util.Budget.t -> t -> float array -> float array
(** Matrix–vector product. [domains > 1] splits the rows across the shared
    domain pool; the result is bit-identical for any [domains]. [budget] is
    checkpointed every 64 rows (default: unlimited), so a runaway product
    raises {!Lh_util.Budget.Timed_out} / {!Lh_util.Budget.Out_of_memory_budget}
    instead of running to completion. Fault site: ["dense.gemv"]. *)

val gemm : ?domains:int -> ?budget:Lh_util.Budget.t -> t -> t -> t
(** Blocked matrix–matrix product (the DMM kernel). The inner kernel runs
    over a packed transpose of the right operand for stride-1 access;
    [domains > 1] distributes whole row blocks, leaving every element's
    summation order — and hence the result — unchanged. [budget] is
    checkpointed once per 64x64 panel (~4096 multiply-adds). Fault site:
    ["dense.gemm"]. *)

val gemm_naive : t -> t -> t
(** Textbook triple loop; the correctness oracle for {!gemm}. *)

val transpose : t -> t
val scale : float -> t -> t
val add : t -> t -> t
val frobenius : t -> float
val max_abs_diff : t -> t -> float
val equal : ?tol:float -> t -> t -> bool
