(** Compressed sparse row matrices — the "(normally) accepted" sparse BLAS
    format (§III-D). {!of_coo} is the [mkl_scsrcoo]-equivalent conversion
    whose cost Table IV compares against LevelHeaded's trie-native SMV. *)

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;  (** length [nrows + 1] *)
  col_idx : int array;  (** column indices, ascending within each row *)
  values : float array;
}

val of_coo : Coo.t -> t
(** Bucket-sort conversion; duplicate coordinates are summed. *)

val nnz : t -> int

val spmv : ?domains:int -> ?budget:Lh_util.Budget.t -> t -> float array -> float array
(** Sparse matrix – dense vector product (the SMV kernel). [domains > 1]
    splits the rows across the shared domain pool; bit-identical result
    for any [domains]. [budget] is checkpointed every 64 rows (default:
    unlimited). Fault site: ["csr.spmv"]. *)

val spgemm : ?domains:int -> ?budget:Lh_util.Budget.t -> t -> t -> t
(** Gustavson row-by-row sparse product with a dense accumulator and
    touched-list per workspace (the SMM kernel). [domains > 1] gives each
    contiguous row chunk its own workspace and concatenates the outputs in
    row order — bit-identical to the sequential product. [budget] is
    checkpointed once per output row (a Gustavson row can touch up to
    nnz(B) entries). Fault site: ["csr.spgemm"]. *)

val transpose : t -> t
val to_dense : t -> Dense.t
val row_nnz : t -> int -> int
val equal : ?tol:float -> t -> t -> bool
