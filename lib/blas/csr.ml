type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

let nnz t = t.row_ptr.(t.nrows)

(* Two-pass bucket sort by row, then an in-row sort with duplicate folding.
   This mirrors what mkl_?csrcoo has to do, which is the point of timing it
   in Table IV. *)
let of_coo (c : Coo.t) =
  let n = Coo.nnz c in
  let counts = Array.make (c.Coo.nrows + 1) 0 in
  Array.iter (fun i -> counts.(i + 1) <- counts.(i + 1) + 1) c.Coo.row;
  for i = 1 to c.Coo.nrows do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  let cursor = Array.copy counts in
  let col_idx = Array.make n 0 and values = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let i = c.Coo.row.(k) in
    let p = cursor.(i) in
    col_idx.(p) <- c.Coo.col.(k);
    values.(p) <- c.Coo.value.(k);
    cursor.(i) <- p + 1
  done;
  (* Sort each row segment by column and fold duplicates in place. *)
  let write = ref 0 in
  let row_ptr = Array.make (c.Coo.nrows + 1) 0 in
  for i = 0 to c.Coo.nrows - 1 do
    let lo = counts.(i) and hi = cursor.(i) in
    let seg = Array.init (hi - lo) (fun k -> (col_idx.(lo + k), values.(lo + k))) in
    Array.sort (fun (a, _) (b, _) -> compare a b) seg;
    row_ptr.(i) <- !write;
    Array.iter
      (fun (j, v) ->
        if !write > row_ptr.(i) && col_idx.(!write - 1) = j then
          values.(!write - 1) <- values.(!write - 1) +. v
        else begin
          col_idx.(!write) <- j;
          values.(!write) <- v;
          incr write
        end)
      seg
  done;
  row_ptr.(c.Coo.nrows) <- !write;
  {
    nrows = c.Coo.nrows;
    ncols = c.Coo.ncols;
    row_ptr;
    col_idx = Array.sub col_idx 0 !write;
    values = Array.sub values 0 !write;
  }

let fault_spmv = Lh_fault.Fault.site "csr.spmv"
let fault_spgemm = Lh_fault.Fault.site "csr.spgemm"

let spmv ?(domains = 1) ?(budget = Lh_util.Budget.unlimited) t x =
  if Array.length x <> t.ncols then invalid_arg "Csr.spmv: dimension mismatch";
  let y = Array.make t.nrows 0.0 in
  (* Row-partitioned; per-row summation order unchanged, so the result is
     bit-identical for any [domains]. *)
  Lh_util.Parfor.iter ~domains ~n:t.nrows (fun i ->
      Lh_fault.Fault.hit fault_spmv;
      if i land 63 = 0 then Lh_util.Budget.check budget;
      let acc = ref 0.0 in
      for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc :=
          !acc +. (Array.unsafe_get t.values p *. Array.unsafe_get x (Array.unsafe_get t.col_idx p))
      done;
      y.(i) <- !acc);
  y

(* One Gustavson workspace per chunk: a dense accumulator and touched list
   (reused across the chunk's rows), plus the chunk's output triplet. The
   chunks are contiguous row ranges merged in row order, so concatenation
   reassembles exactly the sequential output. *)
type spgemm_acc = {
  acc : float array;
  in_touched : bool array;
  touched : int array;
  rlen : Lh_util.Vec.Int.t;  (* output nnz per processed row, in row order *)
  out_col : Lh_util.Vec.Int.t;
  out_val : Lh_util.Vec.Float.t;
}

let spgemm ?(domains = 1) ?(budget = Lh_util.Budget.unlimited) a b =
  if a.ncols <> b.nrows then invalid_arg "Csr.spgemm: dimension mismatch";
  let init () =
    {
      acc = Array.make b.ncols 0.0;
      in_touched = Array.make b.ncols false;
      touched = Array.make b.ncols 0;
      rlen = Lh_util.Vec.Int.create ();
      out_col = Lh_util.Vec.Int.create ();
      out_val = Lh_util.Vec.Float.create ();
    }
  in
  let body w i =
    (* A Gustavson row can touch up to nnz(B) entries, so check every row
       rather than masking; the atomic-load probe is cheap either way. *)
    Lh_fault.Fault.hit fault_spgemm;
    Lh_util.Budget.check budget;
    let row_start = Lh_util.Vec.Int.length w.out_col in
    let ntouched = ref 0 in
    for p = a.row_ptr.(i) to a.row_ptr.(i + 1) - 1 do
      let k = a.col_idx.(p) in
      let av = a.values.(p) in
      for q = b.row_ptr.(k) to b.row_ptr.(k + 1) - 1 do
        let j = Array.unsafe_get b.col_idx q in
        if not (Array.unsafe_get w.in_touched j) then begin
          Array.unsafe_set w.in_touched j true;
          Array.unsafe_set w.touched !ntouched j;
          incr ntouched
        end;
        Array.unsafe_set w.acc j (Array.unsafe_get w.acc j +. (av *. Array.unsafe_get b.values q))
      done
    done;
    let seg = Array.sub w.touched 0 !ntouched in
    Array.sort compare seg;
    Array.iter
      (fun j ->
        let v = w.acc.(j) in
        if v <> 0.0 then begin
          Lh_util.Vec.Int.push w.out_col j;
          Lh_util.Vec.Float.push w.out_val v
        end;
        w.acc.(j) <- 0.0;
        w.in_touched.(j) <- false)
      seg;
    Lh_util.Vec.Int.push w.rlen (Lh_util.Vec.Int.length w.out_col - row_start)
  in
  let merge wa wb =
    for j = 0 to Lh_util.Vec.Int.length wb.rlen - 1 do
      Lh_util.Vec.Int.push wa.rlen (Lh_util.Vec.Int.get wb.rlen j)
    done;
    for j = 0 to Lh_util.Vec.Int.length wb.out_col - 1 do
      Lh_util.Vec.Int.push wa.out_col (Lh_util.Vec.Int.get wb.out_col j)
    done;
    for j = 0 to Lh_util.Vec.Float.length wb.out_val - 1 do
      Lh_util.Vec.Float.push wa.out_val (Lh_util.Vec.Float.get wb.out_val j)
    done;
    wa
  in
  let w = Lh_util.Parfor.map_reduce ~domains ~n:a.nrows ~init ~body ~merge in
  let row_ptr = Array.make (a.nrows + 1) 0 in
  for i = 0 to a.nrows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Lh_util.Vec.Int.get w.rlen i
  done;
  {
    nrows = a.nrows;
    ncols = b.ncols;
    row_ptr;
    col_idx = Lh_util.Vec.Int.to_array w.out_col;
    values = Lh_util.Vec.Float.to_array w.out_val;
  }

let transpose t =
  let counts = Array.make (t.ncols + 1) 0 in
  Array.iter (fun j -> counts.(j + 1) <- counts.(j + 1) + 1) t.col_idx;
  for j = 1 to t.ncols do
    counts.(j) <- counts.(j) + counts.(j - 1)
  done;
  let cursor = Array.copy counts in
  let col_idx = Array.make (nnz t) 0 and values = Array.make (nnz t) 0.0 in
  for i = 0 to t.nrows - 1 do
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(p) in
      let q = cursor.(j) in
      col_idx.(q) <- i;
      values.(q) <- t.values.(p);
      cursor.(j) <- q + 1
    done
  done;
  { nrows = t.ncols; ncols = t.nrows; row_ptr = counts; col_idx; values }

let to_dense t =
  let d = Dense.create ~rows:t.nrows ~cols:t.ncols in
  for i = 0 to t.nrows - 1 do
    for p = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Dense.set d i t.col_idx.(p) t.values.(p)
    done
  done;
  d

let row_nnz t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let equal ?(tol = 1e-9) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Dense.max_abs_diff (to_dense a) (to_dense b) <= tol
