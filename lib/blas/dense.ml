type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows < 0 || cols < 0 then invalid_arg "Dense.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then invalid_arg "Dense.of_array: length mismatch";
  { rows; cols; data }

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.((i * cols) + j) <- f i j
    done
  done;
  m

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

let fault_gemv = Lh_fault.Fault.site "dense.gemv"
let fault_gemm = Lh_fault.Fault.site "dense.gemm"

let gemv ?(domains = 1) ?(budget = Lh_util.Budget.unlimited) m x =
  if Array.length x <> m.cols then invalid_arg "Dense.gemv: dimension mismatch";
  let y = Array.make m.rows 0.0 in
  (* Row-partitioned: each index owns y.(i), and the per-row summation order
     is the sequential one, so the result is bit-identical for any [domains]. *)
  Lh_util.Parfor.iter ~domains ~n:m.rows (fun i ->
      Lh_fault.Fault.hit fault_gemv;
      (* Budget checkpoints every 64 rows keep the overhead off the dot
         products while bounding overshoot to one row block. *)
      if i land 63 = 0 then Lh_util.Budget.check budget;
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (Array.unsafe_get m.data (base + j) *. Array.unsafe_get x j)
      done;
      y.(i) <- !acc);
  y

let transpose m =
  init ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

(* Block size tuned for L1-resident panels of doubles. *)
let block = 64

let gemm ?(domains = 1) ?(budget = Lh_util.Budget.unlimited) a b =
  if a.cols <> b.rows then invalid_arg "Dense.gemm: dimension mismatch";
  let n = a.rows and k = a.cols and m = b.cols in
  let bt = transpose b in
  let c = create ~rows:n ~cols:m in
  let cd = c.data and ad = a.data and btd = bt.data in
  (* jc/ic blocking over the transposed right operand keeps both panels hot;
     the innermost loop is a stride-1 dot product. Parallelism distributes
     whole i-blocks: every c element is still the same stride-1 dot product,
     so the result does not depend on [domains]. *)
  let nblocks = (n + block - 1) / block in
  Lh_util.Parfor.iter ~domains ~n:nblocks (fun ib ->
      let i0 = ib * block in
      let ihi = min (i0 + block) n in
      let j0 = ref 0 in
      while !j0 < m do
        (* Once per 64x64 panel = roughly every 4096 multiply-adds. *)
        Lh_fault.Fault.hit fault_gemm;
        Lh_util.Budget.check budget;
        let jhi = min (!j0 + block) m in
        for i = i0 to ihi - 1 do
          let abase = i * k in
          for j = !j0 to jhi - 1 do
            let bbase = j * k in
            let acc = ref 0.0 in
            for p = 0 to k - 1 do
              acc := !acc +. (Array.unsafe_get ad (abase + p) *. Array.unsafe_get btd (bbase + p))
            done;
            Array.unsafe_set cd ((i * m) + j) !acc
          done
        done;
        j0 := jhi
      done);
  c

let gemm_naive a b =
  if a.cols <> b.rows then invalid_arg "Dense.gemm_naive: dimension mismatch";
  init ~rows:a.rows ~cols:b.cols (fun i j ->
      let acc = ref 0.0 in
      for p = 0 to a.cols - 1 do
        acc := !acc +. (get a i p *. get b p j)
      done;
      !acc)

let scale s m = { m with data = Array.map (fun v -> s *. v) m.data }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Dense.add: dimension mismatch";
  { a with data = Array.mapi (fun i v -> v +. b.data.(i)) a.data }

let frobenius m = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Dense.max_abs_diff: dimension mismatch";
  let worst = ref 0.0 in
  Array.iteri (fun i v -> worst := Float.max !worst (Float.abs (v -. b.data.(i)))) a.data;
  !worst

let equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= tol
