(** Deterministic crash-point simulation for the kill-and-restart
    harness: [LH_KILL=site[:nth=N][:torn=K]] makes the process SIGKILL
    {e itself} at the [N]th hit of the named durable-I/O kill point
    (default [nth=1]). The site may be a glob ([Fault.glob_match]
    semantics). [torn=K] asks the site to perform the first [K] bytes of
    its write before dying — a torn-write simulation; without it the
    site dies before writing anything.

    This deliberately mirrors [Fault]/[LH_FAULT] but lives below it in
    spirit: a fired fault site raises (in-process crash-only recovery);
    a fired kill point terminates the process with SIGKILL so the
    restart path is exercised for real. Kill points share names with the
    durable fault sites ([wal.append], [wal.fsync], [wal.replay],
    [checkpoint.write], [checkpoint.load], [manifest.swap]). *)

type spec = { k_site : string; k_nth : int; k_torn : int }

val parse : string -> (spec, string) result
(** Parses an [LH_KILL]-syntax spec. *)

val armed : unit -> spec option
(** The process-wide spec from [LH_KILL], read once. *)

val probe : string -> int option
(** [probe site] counts a hit when the armed spec matches [site] and
    returns [Some torn_bytes] on the firing hit. The caller performs the
    partial write it describes, then calls {!now}. *)

val now : unit -> 'a
(** SIGKILL the current process. Never returns. *)
