(** Append-only write-ahead log of ingest batches.

    File layout: an 8-byte magic header ({!magic}) followed by framed
    records. Each record is [u32 len ++ u32 crc ++ payload] (all
    little-endian); [crc] is CRC-32 ({!Crc32}) of the payload. The
    payload serializes one {!batch}: durable sequence number, relation
    name, schema, and the full row set (values carry a 1-byte tag, so a
    frame is self-describing and replay never consults the catalog).

    Durability discipline ({!sync}): [Always] fsyncs after every append
    (power-safe); [Group n] fsyncs every [n] appends (kill-safe — the
    [write(2)] has reached the page cache before the ack, so a SIGKILL
    of the process loses nothing, only a machine crash can); [Never]
    leaves syncing to the OS. The default comes from [LH_WAL_SYNC]
    ([always] | [group] | [group:N] | [none]).

    Replay walks frames until end-of-file or the first bad frame —
    short header, impossible length, zero-length tail (preallocated
    blocks), CRC mismatch, or undecodable payload — and reports the
    byte offset of the last good frame so the caller can truncate the
    torn tail. A torn tail is an expected crash artifact, never fatal.

    Fault sites: [wal.append] (before a frame is written), [wal.fsync]
    (before fsync), [wal.replay] (per frame during replay). Kill points
    (see {!Kill}) share those names. *)

type sync = Always | Group of int | Never

val sync_of_string : string -> (sync, string) result
val sync_to_string : sync -> string

val default_sync : unit -> sync
(** From [LH_WAL_SYNC]; [Group 8] when unset or unparsable. *)

type batch = {
  b_seq : int;  (** durable sequence number, 1-based, monotone *)
  b_name : string;
  b_schema : Lh_storage.Schema.t;
  b_rows : Lh_storage.Dtype.value list list;
}

val magic : string
val header_len : int
val frame_header_len : int

(** {1 Record codec} — exposed for the property tests. *)

val encode_payload : batch -> string
val decode_payload : string -> (batch, string) result
val frame : string -> string
(** [frame payload] = [len ++ crc ++ payload]. *)

(** {1 Writer} *)

type writer

val create : path:string -> sync:sync -> writer
(** Truncates (or creates) the file and writes the magic header. *)

val open_at : path:string -> sync:sync -> valid_len:int -> writer
(** Opens an existing log, truncates it to [valid_len] (dropping any
    torn tail found by {!replay}) and positions the writer there. A
    missing, short or bad-magic header (the empty-and-torn replay case)
    rewrites the file to a fresh header first — frames are never
    appended after garbage that replay would refuse to walk. *)

val append : writer -> batch -> unit
(** Write one frame, then observe the sync point per the writer's
    {!sync} mode. On any failure — a torn write {e or} a failed sync
    point — the file is truncated back to the last good offset
    (best-effort) before the exception escapes: a failed append leaves
    neither a torn middle nor a complete frame that the caller regards
    as unacknowledged (callers reuse the sequence number on retry). *)

val flush : writer -> unit
(** fsync regardless of mode (shutdown path). *)

val close : writer -> unit
(** {!flush} then close the descriptor. Idempotent. *)

val path : writer -> string
val tell : writer -> int
(** Byte offset of the end of the last complete frame. *)

(** {1 Replay} *)

type replayed = {
  r_batches : batch list;  (** in file order *)
  r_valid_len : int;  (** offset just past the last good frame *)
  r_torn : bool;  (** a bad tail was detected after [r_valid_len] *)
}

val replay : string -> replayed
(** A missing file replays as empty ([r_valid_len = header_len] so a
    subsequent {!open_at} recreates it); a file with a corrupt magic
    header replays as empty-and-torn. *)

(** {1 Test helpers} *)

val append_torn : writer -> batch -> keep:int -> unit
(** Writes only the first [keep] bytes of the frame — a deterministic
    torn write, used by the adversarial corpus and the bench smoke. *)

val corrupt_byte : path:string -> off:int -> unit
(** XOR-flips one byte in place (checksum-corruption corpus). *)
