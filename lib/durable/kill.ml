(* Self-SIGKILL crash points for the restart harness. See kill.mli. *)

type spec = { k_site : string; k_nth : int; k_torn : int }

let parse s =
  let s = String.trim s in
  if s = "" then Error "empty LH_KILL spec"
  else
    let parts = String.split_on_char ':' s in
    match parts with
    | [] -> Error "empty LH_KILL spec"
    | site :: opts ->
        let rec go acc = function
          | [] -> Ok acc
          | o :: rest -> (
              match String.index_opt o '=' with
              | None -> Error (Printf.sprintf "LH_KILL: bad option %S" o)
              | Some i -> (
                  let k = String.sub o 0 i in
                  let v = String.sub o (i + 1) (String.length o - i - 1) in
                  match (k, int_of_string_opt v) with
                  | "nth", Some n when n >= 1 -> go { acc with k_nth = n } rest
                  | "torn", Some n when n >= 0 -> go { acc with k_torn = n } rest
                  | _ -> Error (Printf.sprintf "LH_KILL: bad option %S" o)))
        in
        go { k_site = site; k_nth = 1; k_torn = 0 } opts

let armed_spec =
  lazy
    (match Sys.getenv_opt "LH_KILL" with
    | None | Some "" -> None
    | Some s -> (
        match parse s with
        | Ok sp -> Some sp
        | Error m ->
            prerr_endline m;
            None))

let armed () = Lazy.force armed_spec

(* Single writer thread holds the WAL lock at every kill point, so a
   plain ref is enough; the count must survive across store reopens
   within one process (recovery kill points), hence global. *)
let hits : (string, int ref) Hashtbl.t = Hashtbl.create 7

let probe site =
  match armed () with
  | None -> None
  | Some sp when not (Lh_fault.Fault.glob_match ~pattern:sp.k_site site) -> None
  | Some sp ->
      let c =
        match Hashtbl.find_opt hits sp.k_site with
        | Some c -> c
        | None ->
            let c = ref 0 in
            Hashtbl.add hits sp.k_site c;
            c
      in
      incr c;
      if !c = sp.k_nth then Some sp.k_torn else None

let now () =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  (* SIGKILL is not deliverable-to-self-synchronously on all kernels
     before the next scheduling point; pause until it lands. *)
  while true do
    Unix.sleepf 0.01
  done;
  assert false
