(** Checkpoint files: a full snapshot of every relation's rows at one
    durable sequence number, written install-on-success (temp + fsync +
    rename) so a crash mid-write never produces a half-installed file.

    File layout: magic ["LHCKPT01"], one framed header record carrying
    the sequence number and table count, then one framed {!Wal.batch}
    record per table (same codec and CRC framing as the WAL, each
    batch's [b_seq] set to the checkpoint's). A load validates every
    frame; any corruption invalidates the whole file and the store
    falls back to the next-newest valid checkpoint.

    Fault sites: [checkpoint.write] (before the temp file is written,
    torn kill point mid-file), [checkpoint.load] (before a file is
    read, short-read kill point). *)

type table = string * Lh_storage.Schema.t * Lh_storage.Dtype.value list list

val filename : seq:int -> string
(** [ckpt-%012d.lhc]. *)

val seq_of_filename : string -> int option
(** Inverse of {!filename}, accepting any digit width — [%012d] pads
    but does not cap, so names widen past sequence [10{^12}]. *)

val write : dir:string -> seq:int -> table list -> string
(** Writes and installs [ckpt-<seq>.lhc] in [dir]; returns the
    basename. Raises on I/O failure (the temp file is removed
    best-effort; nothing is installed). *)

val load : string -> (int * table list, string) result
(** Full-path load; [Ok (seq, tables)] only if every frame validates. *)

val scan : dir:string -> (int * string) list
(** Installed checkpoint basenames, newest (highest seq) first. *)

val truncate_file : path:string -> len:int -> unit
(** Test helper: short-read / torn-file simulation. *)
