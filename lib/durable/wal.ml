(* WAL record codec, writer and replay. See wal.mli. *)

module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Obs = Lh_obs.Obs
module Fault = Lh_fault.Fault

let c_appended = Obs.counter "wal.appended"
let c_bytes = Obs.counter "wal.bytes"
let c_fsyncs = Obs.counter "wal.fsyncs"
let c_replayed = Obs.counter "wal.replayed"
let c_truncated = Obs.counter "wal.truncated"
let fault_append = Fault.site "wal.append"
let fault_fsync = Fault.site "wal.fsync"
let fault_replay = Fault.site "wal.replay"

type sync = Always | Group of int | Never

let sync_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "group" -> Ok (Group 8)
  | "none" | "never" -> Ok Never
  | s when String.length s > 6 && String.sub s 0 6 = "group:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some n when n >= 1 -> Ok (Group n)
      | _ -> Error (Printf.sprintf "bad group size in LH_WAL_SYNC %S" s))
  | s -> Error (Printf.sprintf "bad LH_WAL_SYNC %S (want always|group[:N]|none)" s)

let sync_to_string = function
  | Always -> "always"
  | Group n -> Printf.sprintf "group:%d" n
  | Never -> "none"

let default_sync () =
  match Sys.getenv_opt "LH_WAL_SYNC" with
  | None -> Group 8
  | Some s -> ( match sync_of_string s with Ok m -> m | Error _ -> Group 8)

type batch = {
  b_seq : int;
  b_name : string;
  b_schema : Schema.t;
  b_rows : Dtype.value list list;
}

let magic = "LHWAL001"
let header_len = String.length magic
let frame_header_len = 8

(* ------------------------------------------------------------------ *)
(* Codec. Little-endian throughout; strings are u32 length + bytes;
   values carry a 1-byte tag so frames decode without the schema. *)

let add_u32 buf n = Buffer.add_int32_le buf (Int32.of_int n)
let add_i64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let add_str buf s =
  add_u32 buf (String.length s);
  Buffer.add_string buf s

let dtype_code = function Dtype.Int -> 0 | Dtype.Float -> 1 | Dtype.String -> 2 | Dtype.Date -> 3
let dtype_of_code = function
  | 0 -> Some Dtype.Int
  | 1 -> Some Dtype.Float
  | 2 -> Some Dtype.String
  | 3 -> Some Dtype.Date
  | _ -> None

let add_value buf = function
  | Dtype.VInt n ->
      Buffer.add_char buf '\000';
      add_i64 buf n
  | Dtype.VFloat f ->
      Buffer.add_char buf '\001';
      Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Dtype.VString s ->
      Buffer.add_char buf '\002';
      add_str buf s
  | Dtype.VDate d ->
      Buffer.add_char buf '\003';
      add_i64 buf d

let encode_payload b =
  let buf = Buffer.create 256 in
  add_i64 buf b.b_seq;
  add_str buf b.b_name;
  add_u32 buf (Schema.ncols b.b_schema);
  for i = 0 to Schema.ncols b.b_schema - 1 do
    let c = Schema.col b.b_schema i in
    add_str buf c.Schema.name;
    Buffer.add_char buf (Char.chr (dtype_code c.Schema.dtype));
    Buffer.add_char buf (match c.Schema.kind with Schema.Key -> '\000' | Schema.Annotation -> '\001')
  done;
  add_u32 buf (List.length b.b_rows);
  List.iter (fun row -> List.iter (add_value buf) row) b.b_rows;
  Buffer.contents buf

exception Decode of string

type cursor = { src : string; mutable pos : int }

let need cur n =
  if cur.pos + n > String.length cur.src then raise (Decode "short payload")

let get_u32 cur =
  need cur 4;
  let n = Int32.to_int (String.get_int32_le cur.src cur.pos) in
  cur.pos <- cur.pos + 4;
  (* lengths/counts are written from non-negative ints; a negative read
     means corruption *)
  if n < 0 then raise (Decode "negative length") else n

let get_i64 cur =
  need cur 8;
  let n = Int64.to_int (String.get_int64_le cur.src cur.pos) in
  cur.pos <- cur.pos + 8;
  n

let get_byte cur =
  need cur 1;
  let c = Char.code cur.src.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let get_str cur =
  let n = get_u32 cur in
  need cur n;
  let s = String.sub cur.src cur.pos n in
  cur.pos <- cur.pos + n;
  s

let get_value cur =
  match get_byte cur with
  | 0 -> Dtype.VInt (get_i64 cur)
  | 1 ->
      need cur 8;
      let f = Int64.float_of_bits (String.get_int64_le cur.src cur.pos) in
      cur.pos <- cur.pos + 8;
      Dtype.VFloat f
  | 2 -> Dtype.VString (get_str cur)
  | 3 -> Dtype.VDate (get_i64 cur)
  | t -> raise (Decode (Printf.sprintf "bad value tag %d" t))

let decode_payload s =
  let cur = { src = s; pos = 0 } in
  match
    let seq = get_i64 cur in
    if seq < 0 then raise (Decode "negative sequence number");
    let name = get_str cur in
    let ncols = get_u32 cur in
    let cols =
      List.init ncols (fun _ ->
          let cname = get_str cur in
          let dt =
            match dtype_of_code (get_byte cur) with
            | Some d -> d
            | None -> raise (Decode "bad dtype code")
          in
          let kind =
            match get_byte cur with
            | 0 -> Schema.Key
            | 1 -> Schema.Annotation
            | _ -> raise (Decode "bad kind code")
          in
          (cname, dt, kind))
    in
    let schema = try Schema.create cols with Failure m -> raise (Decode m) in
    let nrows = get_u32 cur in
    let rows = List.init nrows (fun _ -> List.init ncols (fun _ -> get_value cur)) in
    if cur.pos <> String.length s then raise (Decode "trailing garbage in payload");
    { b_seq = seq; b_name = name; b_schema = schema; b_rows = rows }
  with
  | b -> Ok b
  | exception Decode m -> Error m

let frame payload =
  let buf = Buffer.create (String.length payload + frame_header_len) in
  add_u32 buf (String.length payload);
  Buffer.add_int32_le buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Writer *)

type writer = {
  w_path : string;
  w_fd : Unix.file_descr;
  w_sync : sync;
  mutable w_off : int;  (* end of last complete frame *)
  mutable w_pending : int;  (* appends since last fsync *)
  mutable w_closed : bool;
}

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let fsync w =
  Fault.hit fault_fsync;
  (match Kill.probe "wal.fsync" with Some _ -> Kill.now () | None -> ());
  Unix.fsync w.w_fd;
  w.w_pending <- 0;
  Obs.incr c_fsyncs

let create ~path ~sync =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd magic;
  let w = { w_path = path; w_fd = fd; w_sync = sync; w_off = header_len; w_pending = 0; w_closed = false } in
  (match sync with Never -> () | _ -> fsync w);
  w

let open_at ~path ~sync ~valid_len =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let header_ok =
    size >= header_len
    && begin
         ignore (Unix.lseek fd 0 Unix.SEEK_SET);
         let b = Bytes.create header_len in
         let rec fill off =
           off >= header_len
           ||
           match Unix.read fd b off (header_len - off) with
           | 0 -> false
           | n -> fill (off + n)
         in
         fill 0 && Bytes.to_string b = magic
       end
  in
  let off =
    if header_ok then begin
      if size > valid_len then begin
        Unix.ftruncate fd valid_len;
        Obs.incr c_truncated
      end;
      max header_len valid_len
    end
    else begin
      (* Short or unrecognizable header: replay recovered nothing from
         this file, so rewrite it from scratch — appending frames after
         garbage bytes would make every later batch unreachable on the
         next replay. *)
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      Unix.ftruncate fd 0;
      write_all fd magic;
      if size > 0 then Obs.incr c_truncated;
      (match sync with
      | Never -> ()
      | _ -> ( try Unix.fsync fd with Unix.Unix_error _ -> ()));
      header_len
    end
  in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  { w_path = path; w_fd = fd; w_sync = sync; w_off = off; w_pending = 0; w_closed = false }

(* A failed or interrupted frame write must not leave torn bytes in the
   middle of the log: truncate back to the last good offset before the
   failure escapes. Replay's torn-tail truncation is the backstop for
   the crash case where even this cleanup never ran. *)
let truncate_to_good w =
  try
    Unix.ftruncate w.w_fd w.w_off;
    ignore (Unix.lseek w.w_fd w.w_off Unix.SEEK_SET)
  with Unix.Unix_error _ -> ()

let append_frame w fr =
  Fault.hit fault_append;
  (match Kill.probe "wal.append" with
  | Some torn ->
      (* Torn-write simulation: first [torn] bytes reach the file, then
         the process dies. *)
      write_all w.w_fd (String.sub fr 0 (min torn (String.length fr)));
      Kill.now ()
  | None -> ());
  (match write_all w.w_fd fr with
  | () -> ()
  | exception exn ->
      truncate_to_good w;
      raise exn);
  w.w_off <- w.w_off + String.length fr;
  Obs.incr c_appended;
  Obs.add c_bytes (String.length fr)

let append w b =
  if w.w_closed then failwith "Wal.append: closed writer";
  let off0 = w.w_off in
  append_frame w (frame (encode_payload b));
  match
    match w.w_sync with
    | Always -> fsync w
    | Group n ->
        w.w_pending <- w.w_pending + 1;
        if w.w_pending >= n then fsync w
    | Never -> ()
  with
  | () -> ()
  | exception exn ->
      (* The frame is complete and CRC-valid in the file, but the caller
         treats a failed append as never-acknowledged and reuses its
         sequence number for the retry. Remove the frame so replay after
         a later crash cannot register this unacknowledged content in
         place of the acknowledged retry. *)
      w.w_off <- off0;
      (match w.w_sync with
      | Group _ -> w.w_pending <- max 0 (w.w_pending - 1)
      | Always | Never -> ());
      truncate_to_good w;
      raise exn

let flush w = if not w.w_closed then fsync w

let close w =
  if not w.w_closed then begin
    (try flush w with Unix.Unix_error _ -> ());
    w.w_closed <- true;
    Unix.close w.w_fd
  end

let path w = w.w_path
let tell w = w.w_off

(* ------------------------------------------------------------------ *)
(* Replay *)

type replayed = { r_batches : batch list; r_valid_len : int; r_torn : bool }

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

let replay path =
  match read_file path with
  | None -> { r_batches = []; r_valid_len = header_len; r_torn = false }
  | Some data ->
      let len = String.length data in
      if len < header_len || String.sub data 0 header_len <> magic then
        (* Unrecognizable header: recover nothing, but flag it so the
           caller rewrites the log rather than appending to garbage. *)
        { r_batches = []; r_valid_len = header_len; r_torn = true }
      else begin
        let batches = ref [] in
        let off = ref header_len in
        let torn = ref false in
        let stop = ref false in
        while not !stop do
          if !off + frame_header_len > len then begin
            (* Short frame header; trailing bytes are a torn tail. *)
            if !off < len then torn := true;
            stop := true
          end
          else begin
            Fault.hit fault_replay;
            (match Kill.probe "wal.replay" with Some _ -> Kill.now () | None -> ());
            let plen = Int32.to_int (String.get_int32_le data !off) in
            let crc = String.get_int32_le data (!off + 4) in
            if plen <= 0 || !off + frame_header_len + plen > len then begin
              (* Zero-length (preallocated-zeros) or overlong tail. *)
              torn := true;
              stop := true
            end
            else if Crc32.sub data ~pos:(!off + frame_header_len) ~len:plen <> crc then begin
              torn := true;
              stop := true
            end
            else
              match
                decode_payload (String.sub data (!off + frame_header_len) plen)
              with
              | Error _ ->
                  torn := true;
                  stop := true
              | Ok b ->
                  batches := b :: !batches;
                  Obs.incr c_replayed;
                  off := !off + frame_header_len + plen
          end
        done;
        { r_batches = List.rev !batches; r_valid_len = !off; r_torn = !torn }
      end

(* ------------------------------------------------------------------ *)
(* Test helpers *)

let append_torn w b ~keep =
  let fr = frame (encode_payload b) in
  write_all w.w_fd (String.sub fr 0 (min keep (String.length fr)))

let corrupt_byte ~path ~off =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let b = Bytes.create 1 in
      if Unix.read fd b 0 1 <> 1 then failwith "Wal.corrupt_byte: short read";
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let c = Char.chr (Char.code (Bytes.get b 0) lxor 0xFF) in
      ignore (Unix.write_substring fd (String.make 1 c) 0 1))
