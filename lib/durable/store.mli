(** A durable store directory: one manifest, one WAL, and installed
    checkpoint files.

    {v
      <dir>/MANIFEST          "LHMANIFEST001\ncheckpoint <file|-> <seq>\n"
      <dir>/wal.log           magic + framed records (see Wal)
      <dir>/ckpt-<seq>.lhc    installed checkpoints (see Checkpoint)
    v}

    Recovery state machine ({!open_dir}):
    + no manifest → fresh store (manifest written, empty WAL created) —
      the manifest is the first file ever written to the directory, so
      its absence means nothing was ever acknowledged;
    + manifest present but corrupt/unreadable → fall back to the newest
      loadable installed checkpoint plus a full WAL replay, then
      rewrite the manifest (a damaged index file never discards the
      durable state it pointed at);
    + manifest names a checkpoint → load it; if invalid, fall back to
      the newest valid installed checkpoint (corrupt ones are skipped);
    + replay the WAL suffix: records with [seq <=] the checkpoint's are
      skipped; of records sharing a [seq] (a failed-then-retried append
      whose first frame survived) only the last — the acknowledged
      retry — is kept; replay stops at the first bad frame and the torn
      tail is truncated in place;
    + the writer resumes at the end of the last good frame and the next
      durable sequence number is one past the highest recovered.

    A checkpoint ({!checkpoint}) writes the file install-on-success,
    swaps the manifest (write temp + fsync + rename — the [manifest.swap]
    fault site fires between the two), truncates the WAL to its header
    and prunes older checkpoints. A crash anywhere in that sequence
    recovers to either the old or the new checkpoint, never between.

    Acknowledgement contract: {!log_batch} returns only after the
    record has reached the OS (and the disk, under [Wal.Always]) — the
    caller may acknowledge the batch as soon as it returns. *)

type t

type recovered = {
  rc_tables : Checkpoint.table list;  (** from the winning checkpoint *)
  rc_batches : Wal.batch list;  (** WAL suffix, file order, deduped *)
  rc_seq : int;  (** highest durable sequence recovered, 0 if none *)
  rc_checkpoint_seq : int;  (** 0 when no checkpoint was loaded *)
  rc_torn : bool;  (** a torn WAL tail was truncated *)
}

val open_dir : ?sync:Wal.sync -> string -> t * recovered
(** Opens (creating if needed) the store at [dir] and runs recovery.
    [sync] defaults to {!Wal.default_sync}. *)

val replay_into :
  recovered ->
  (name:string -> schema:Lh_storage.Schema.t -> Lh_storage.Dtype.value list list -> unit) ->
  unit
(** Applies the recovered state in order: checkpoint tables first, then
    each WAL batch. With a register function whose semantics are
    whole-table replacement (the engine's), the result is exactly the
    state at the last durable sequence. *)

val log_batch :
  t -> name:string -> schema:Lh_storage.Schema.t -> Lh_storage.Dtype.value list list -> int
(** Appends one batch under the next sequence number and observes the
    writer's sync point; returns the sequence. *)

val checkpoint : t -> Checkpoint.table list -> unit
(** Snapshot [tables] at the current sequence and reset the WAL. *)

val flush : t -> unit
(** fsync the WAL (shutdown path). *)

val close : t -> unit
(** {!flush} then release the WAL descriptor. Idempotent. *)

val dir : t -> string
val seq : t -> int
(** Last durable sequence number handed out. *)

val sync_mode : t -> Wal.sync
val wal_path : t -> string
