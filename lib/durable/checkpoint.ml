(* Checkpoint file writer/loader. See checkpoint.mli. *)

module Obs = Lh_obs.Obs
module Fault = Lh_fault.Fault

let c_written = Obs.counter "wal.checkpoints"
let fault_write = Fault.site "checkpoint.write"
let fault_load = Fault.site "checkpoint.load"

type table = string * Lh_storage.Schema.t * Lh_storage.Dtype.value list list

let magic = "LHCKPT01"

let filename ~seq = Printf.sprintf "ckpt-%012d.lhc" seq

(* Variable-width digit parse: %012d pads, it does not cap, so once the
   sequence outgrows 12 digits the names widen and a fixed-length match
   would stop recognizing installed checkpoints. *)
let seq_of_filename name =
  let prefix = "ckpt-" and suffix = ".lhc" in
  let plen = String.length prefix and slen = String.length suffix in
  let n = String.length name in
  if n > plen + slen && String.sub name 0 plen = prefix && Filename.check_suffix name suffix
  then begin
    let digits = String.sub name plen (n - plen - slen) in
    if String.for_all (fun c -> c >= '0' && c <= '9') digits then int_of_string_opt digits
    else None
  end
  else None

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* The header frame carries (seq, ntables) as a payload of two i64s. *)
let encode_header ~seq ~ntables =
  let buf = Buffer.create 16 in
  Buffer.add_int64_le buf (Int64.of_int seq);
  Buffer.add_int64_le buf (Int64.of_int ntables);
  Buffer.contents buf

let write ~dir ~seq tables =
  Fault.hit fault_write;
  let name = filename ~seq in
  let tmp = Filename.concat dir (name ^ ".tmp") in
  let final = Filename.concat dir name in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_string buf (Wal.frame (encode_header ~seq ~ntables:(List.length tables)));
  List.iter
    (fun (tname, schema, rows) ->
      Buffer.add_string buf
        (Wal.frame
           (Wal.encode_payload
              { Wal.b_seq = seq; b_name = tname; b_schema = schema; b_rows = rows })))
    tables;
  let data = Buffer.contents buf in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     (match Kill.probe "checkpoint.write" with
     | Some torn ->
         (* Torn checkpoint simulation: partial temp file, then death —
            recovery must ignore the .tmp leftover. *)
         write_all fd (String.sub data 0 (min torn (String.length data)));
         Kill.now ()
     | None -> ());
     write_all fd data;
     Unix.fsync fd
   with
  | () -> Unix.close fd
  | exception exn ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
  Unix.rename tmp final;
  Obs.incr c_written;
  name

exception Bad of string

let load path =
  Fault.hit fault_load;
  (match Kill.probe "checkpoint.load" with Some _ -> Kill.now () | None -> ());
  match
    match open_in_bin path with
    | exception Sys_error m -> Error m
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let data = really_input_string ic (in_channel_length ic) in
            let len = String.length data in
            if len < String.length magic || String.sub data 0 (String.length magic) <> magic
            then Error "bad checkpoint magic"
            else begin
              let off = ref (String.length magic) in
              let take_frame () =
                if !off + Wal.frame_header_len > len then raise (Bad "short frame header");
                let plen = Int32.to_int (String.get_int32_le data !off) in
                let crc = String.get_int32_le data (!off + 4) in
                if plen <= 0 || !off + Wal.frame_header_len + plen > len then
                  raise (Bad "short frame");
                if Crc32.sub data ~pos:(!off + Wal.frame_header_len) ~len:plen <> crc then
                  raise (Bad "frame checksum mismatch");
                let payload = String.sub data (!off + Wal.frame_header_len) plen in
                off := !off + Wal.frame_header_len + plen;
                payload
              in
              match
                let header = take_frame () in
                if String.length header <> 16 then raise (Bad "bad checkpoint header");
                let seq = Int64.to_int (String.get_int64_le header 0) in
                let ntables = Int64.to_int (String.get_int64_le header 8) in
                if seq < 0 || ntables < 0 then raise (Bad "bad checkpoint header");
                let tables =
                  List.init ntables (fun _ ->
                      match Wal.decode_payload (take_frame ()) with
                      | Ok b -> (b.Wal.b_name, b.Wal.b_schema, b.Wal.b_rows)
                      | Error m -> raise (Bad m))
                in
                if !off <> len then raise (Bad "trailing garbage in checkpoint");
                (seq, tables)
              with
              | r -> Ok r
              | exception Bad m -> Error m
            end)
  with
  | Ok r -> Ok r
  | Error m -> Error m
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error "truncated checkpoint"

let scan ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter_map (fun n ->
             match seq_of_filename n with Some s -> Some (s, n) | None -> None)
      |> List.sort (fun (a, _) (b, _) -> compare b a)

let truncate_file ~path ~len =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.ftruncate fd len)
