(* CRC-32 (IEEE), table-driven. See crc32.mli. *)

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then
           c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.sub: range out of bounds";
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl) in
    crc := Int32.logxor t.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let string s = sub s ~pos:0 ~len:(String.length s)
