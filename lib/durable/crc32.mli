(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]) over strings
    and byte ranges — the checksum guarding every WAL record and
    checkpoint frame. Table-driven, one table computed at module init. *)

val string : string -> int32
(** Checksum of the whole string. *)

val sub : string -> pos:int -> len:int -> int32
(** Checksum of [len] bytes starting at [pos]. *)
