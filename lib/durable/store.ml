(* Durable store: manifest + WAL + checkpoints, and recovery. See
   store.mli. *)

module Obs = Lh_obs.Obs
module Hist = Lh_obs.Hist
module Fault = Lh_fault.Fault
module Timing = Lh_util.Timing

let c_recover_replayed = Obs.counter "recover.replayed"
let c_recover_skipped = Obs.counter "recover.skipped"
let c_recover_tables = Obs.counter "recover.checkpoint_tables"
let c_recover_torn = Obs.counter "recover.torn_tails"
let c_recover_opens = Obs.counter "recover.opens"
let c_recover_fallbacks = Obs.counter "recover.manifest_fallbacks"
let h_replay = Hist.histogram "recover.replay"
let fault_manifest = Fault.site "manifest.swap"

let manifest_magic = "LHMANIFEST001"
let manifest_name = "MANIFEST"
let wal_name = "wal.log"

type t = {
  st_dir : string;
  st_sync : Wal.sync;
  st_lock : Mutex.t;
  mutable st_wal : Wal.writer;
  mutable st_seq : int;  (* last durable sequence handed out *)
  mutable st_ckpt_seq : int;
  mutable st_closed : bool;
}

type recovered = {
  rc_tables : Checkpoint.table list;
  rc_batches : Wal.batch list;
  rc_seq : int;
  rc_checkpoint_seq : int;
  rc_torn : bool;
}

let locked t f =
  Mutex.lock t.st_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.st_lock) f

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* ------------------------------------------------------------------ *)
(* Manifest *)

let write_manifest ~dir ~ckpt_file ~ckpt_seq =
  let tmp = Filename.concat dir (manifest_name ^ ".tmp") in
  let final = Filename.concat dir manifest_name in
  let body =
    Printf.sprintf "%s\ncheckpoint %s %d\n" manifest_magic
      (match ckpt_file with Some f -> f | None -> "-")
      ckpt_seq
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (match
     write_all fd body;
     Unix.fsync fd
   with
  | () -> Unix.close fd
  | exception exn ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      raise exn);
  (* The swap point: a fault or kill here leaves only the temp file, and
     recovery still sees the previous manifest. *)
  Fault.hit fault_manifest;
  (match Kill.probe "manifest.swap" with Some _ -> Kill.now () | None -> ());
  Unix.rename tmp final;
  fsync_dir dir

(* A missing manifest means a genuinely fresh directory (it is the first
   file ever written there); a present-but-unreadable one means the
   durable state on disk may still be intact, so the two must recover
   differently. *)
type manifest = M_absent | M_invalid | M_ok of string option * int

let read_manifest dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then M_absent
  else
    match open_in_bin path with
    | exception Sys_error _ -> M_invalid
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match input_line ic with
            | exception End_of_file -> M_invalid
            | m when m <> manifest_magic -> M_invalid
            | _ -> (
                match input_line ic with
                | exception End_of_file -> M_invalid
                | line -> (
                    match String.split_on_char ' ' (String.trim line) with
                    | [ "checkpoint"; file; seq ] -> (
                        match int_of_string_opt seq with
                        | Some s when s >= 0 ->
                            M_ok ((if file = "-" then None else Some file), s)
                        | _ -> M_invalid)
                    | _ -> M_invalid)))

(* ------------------------------------------------------------------ *)
(* Recovery *)

let load_checkpoint dir named =
  (* Try the manifest's checkpoint first, then every installed one,
     newest first — a corrupt file is skipped, not fatal. *)
  let candidates =
    let scanned = List.map snd (Checkpoint.scan ~dir) in
    match named with
    | Some f -> f :: List.filter (fun n -> n <> f) scanned
    | None -> scanned
  in
  let rec go = function
    | [] -> (0, [], None)
    | f :: rest -> (
        match Checkpoint.load (Filename.concat dir f) with
        | Ok (seq, tables) -> (seq, tables, Some f)
        | Error _ -> go rest)
  in
  go candidates

let open_dir ?sync dir =
  let sync = match sync with Some s -> s | None -> Wal.default_sync () in
  mkdir_p dir;
  Obs.incr c_recover_opens;
  let wal_path = Filename.concat dir wal_name in
  let t0 = Timing.monotonic_now () in
  let recover ~ckpt_seq ~tables =
    Obs.add c_recover_tables (List.length tables);
    let r = Wal.replay wal_path in
    if r.Wal.r_torn then Obs.incr c_recover_torn;
    (* Duplicate sequence numbers arise only from a failed append whose
       frame nevertheless survived on disk; the retry — the later
       record — is the acknowledged content, so dedup keeps the LAST
       occurrence. (Wal.append also truncates such frames eagerly; this
       is the replay-side backstop for the crash window.) *)
    let last = Hashtbl.create 64 in
    List.iteri (fun i (b : Wal.batch) -> Hashtbl.replace last b.Wal.b_seq i) r.Wal.r_batches;
    let batches =
      List.filteri
        (fun i (b : Wal.batch) ->
          if b.Wal.b_seq <= ckpt_seq || Hashtbl.find last b.Wal.b_seq <> i then begin
            Obs.incr c_recover_skipped;
            false
          end
          else begin
            Obs.incr c_recover_replayed;
            true
          end)
        r.Wal.r_batches
    in
    let top =
      List.fold_left (fun acc (b : Wal.batch) -> max acc b.Wal.b_seq) ckpt_seq batches
    in
    ( {
        rc_tables = tables;
        rc_batches = batches;
        rc_seq = top;
        rc_checkpoint_seq = ckpt_seq;
        rc_torn = r.Wal.r_torn;
      },
      ckpt_seq,
      r.Wal.r_valid_len )
  in
  let recovered, ckpt_seq, valid_len =
    match read_manifest dir with
    | M_absent ->
        (* Fresh store (or a crash before the very first manifest swap —
           nothing was ever acknowledged, so starting empty is correct). *)
        write_manifest ~dir ~ckpt_file:None ~ckpt_seq:0;
        ( { rc_tables = []; rc_batches = []; rc_seq = 0; rc_checkpoint_seq = 0; rc_torn = false },
          0,
          Wal.header_len )
    | M_ok (ckpt_file, manifest_seq) ->
        let ckpt_seq, tables =
          match ckpt_file with
          | None -> (manifest_seq, [])
          | Some f ->
              let seq, tables, _ = load_checkpoint dir (Some f) in
              (seq, tables)
        in
        recover ~ckpt_seq ~tables
    | M_invalid ->
        (* The manifest is present but corrupt or unreadable. The
           checkpoints and WAL it pointed at are still on disk, so fall
           back to the newest loadable checkpoint plus a full WAL
           replay, then heal the manifest — never truncate durable
           state because its tiny index file was damaged. *)
        Obs.incr c_recover_fallbacks;
        let ckpt_seq, tables, ckpt_file = load_checkpoint dir None in
        let res = recover ~ckpt_seq ~tables in
        write_manifest ~dir ~ckpt_file ~ckpt_seq;
        res
  in
  Hist.observe h_replay (Timing.monotonic_now () -. t0);
  let wal = Wal.open_at ~path:wal_path ~sync ~valid_len in
  ( {
      st_dir = dir;
      st_sync = sync;
      st_lock = Mutex.create ();
      st_wal = wal;
      st_seq = recovered.rc_seq;
      st_ckpt_seq = ckpt_seq;
      st_closed = false;
    },
    recovered )

let replay_into r register =
  List.iter (fun (name, schema, rows) -> register ~name ~schema rows) r.rc_tables;
  List.iter
    (fun (b : Wal.batch) -> register ~name:b.Wal.b_name ~schema:b.Wal.b_schema b.Wal.b_rows)
    r.rc_batches

(* ------------------------------------------------------------------ *)
(* Writing *)

let log_batch t ~name ~schema rows =
  locked t (fun () ->
      if t.st_closed then failwith "Store.log_batch: closed store";
      let seq = t.st_seq + 1 in
      Wal.append t.st_wal { Wal.b_seq = seq; b_name = name; b_schema = schema; b_rows = rows };
      t.st_seq <- seq;
      seq)

let checkpoint t tables =
  locked t (fun () ->
      if t.st_closed then failwith "Store.checkpoint: closed store";
      let seq = t.st_seq in
      let file = Checkpoint.write ~dir:t.st_dir ~seq tables in
      fsync_dir t.st_dir;
      write_manifest ~dir:t.st_dir ~ckpt_file:(Some file) ~ckpt_seq:seq;
      (* The manifest now supersedes the WAL prefix: reset the log. A
         crash before this truncate merely leaves stale records that
         replay skips by sequence number. *)
      Wal.close t.st_wal;
      t.st_wal <- Wal.create ~path:(Filename.concat t.st_dir wal_name) ~sync:t.st_sync;
      t.st_ckpt_seq <- seq;
      (* Prune superseded checkpoints (best-effort). *)
      List.iter
        (fun (s, f) ->
          if s < seq then try Sys.remove (Filename.concat t.st_dir f) with Sys_error _ -> ())
        (Checkpoint.scan ~dir:t.st_dir))

let flush t = locked t (fun () -> if not t.st_closed then Wal.flush t.st_wal)

let close t =
  locked t (fun () ->
      if not t.st_closed then begin
        t.st_closed <- true;
        Wal.close t.st_wal
      end)

let dir t = t.st_dir
let seq t = locked t (fun () -> t.st_seq)
let sync_mode t = t.st_sync
let wal_path t = Filename.concat t.st_dir wal_name
