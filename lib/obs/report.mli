(** Telemetry sinks: turn one instrumented run into an
    [EXPLAIN ANALYZE]-style text report, a JSON metrics dump, or a
    Chrome [chrome://tracing] / Perfetto-compatible trace file. *)

type t = {
  total_s : float;  (** end-to-end seconds of the session *)
  spans : Obs.span list;  (** completed spans, (domain, start)-ordered *)
  counters : Obs.snapshot;  (** counter deltas / gauge values over the session *)
  hists : (string * Hist.snapshot) list;
      (** per-session histogram deltas, registration-ordered; histograms
          the session never touched are dropped *)
}

val with_session : (unit -> 'a) -> 'a * t
(** Runs the thunk with telemetry enabled (restoring the previous flag),
    an empty span buffer, and returns the report for exactly that run.
    Counter values are session deltas; gauges are end-of-session values.
    Samples [Gc.quick_stat] into the [gc.peak_live_words] gauge and the
    shared domain pool's {!Lh_util.Pool.stats} into the [pool.tasks] /
    [pool.chunks] counters (parallel regions and chunks run during the
    session) and the [pool.workers] gauge. *)

val phases : t -> (string * float) list
(** Top-level phase breakdown in execution order: durations of the
    spans one level below the session's root span (or the root spans
    themselves when there is no single root). Repeated names are
    summed. *)

val to_text : t -> string
(** Human-readable report: span tree, phase breakdown with percentages
    and coverage, counters and gauges. *)

val metrics_json : t -> Json.t
(** [{"total_seconds", "phases", "counters", "gauges", "histograms",
    "spans"}] — histograms as {!Hist.stats_json} objects. *)

val chrome_trace : t -> Json.t
(** [{"traceEvents": [...]}] with ["ph":"X"] complete events in
    microseconds, loadable by Chrome's trace viewer and Perfetto. *)

val write_file : string -> Json.t -> unit
