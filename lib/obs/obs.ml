(* Process-global telemetry. See obs.mli for the overhead contract. *)

let enabled = Atomic.make false
let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

let with_enabled b f =
  let prev = Atomic.get enabled in
  Atomic.set enabled b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled prev) f

(* ------------------------------------------------------------------ *)
(* Counters / gauges                                                    *)

type kind = Counter | Gauge

type counter = { cname : string; ckind : kind; cell : int Atomic.t }

let registry_lock = Mutex.create ()
let registry : (string, counter) Hashtbl.t = Hashtbl.create 32
let order : counter list ref = ref []  (* reverse registration order *)

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let register kind name =
  locked registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
          let c = { cname = name; ckind = kind; cell = Atomic.make 0 } in
          Hashtbl.replace registry name c;
          order := c :: !order;
          c)

let counter name = register Counter name
let gauge name = register Gauge name

let incr c = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.cell 1)
let add c n = if Atomic.get enabled then ignore (Atomic.fetch_and_add c.cell n)
let set c n = if Atomic.get enabled then Atomic.set c.cell n

let set_max c n =
  if Atomic.get enabled then begin
    let rec go () =
      let cur = Atomic.get c.cell in
      if n > cur && not (Atomic.compare_and_set c.cell cur n) then go ()
    in
    go ()
  end

let value c = Atomic.get c.cell
let name c = c.cname

type snapshot = (string * int) list

let registered () = locked registry_lock (fun () -> List.rev !order)

let snapshot () = List.map (fun c -> (c.cname, Atomic.get c.cell)) (registered ())

let counter_names () = List.map (fun c -> c.cname) (registered ())

let is_gauge n =
  match locked registry_lock (fun () -> Hashtbl.find_opt registry n) with
  | Some c -> c.ckind = Gauge
  | None -> false

let diff ~before ~after =
  List.map
    (fun (n, v) ->
      if is_gauge n then (n, v)
      else
        match List.assoc_opt n before with
        | Some v0 -> (n, v - v0)
        | None -> (n, v))
    after

(* ------------------------------------------------------------------ *)
(* Spans                                                                *)

type span = {
  sname : string;
  sargs : (string * string) list;
  sstart : float;
  sdur : float;
  sdepth : int;
  stid : int;
}

let span_lock = Mutex.create ()
let span_buf : span list ref = ref []  (* completion order, reversed *)
let depths : (int, int) Hashtbl.t = Hashtbl.create 8

let clear_spans () =
  locked span_lock (fun () ->
      span_buf := [];
      Hashtbl.reset depths)

let spans () =
  let l = locked span_lock (fun () -> !span_buf) in
  List.sort
    (fun a b ->
      match compare a.stid b.stid with 0 -> Float.compare a.sstart b.sstart | c -> c)
    l

(* Keep the error tag short: Chrome's trace viewer renders args inline
   and a full backtrace-sized payload would drown the lane. *)
let exn_label e =
  let s = Printexc.to_string e in
  if String.length s > 120 then String.sub s 0 117 ^ "..." else s

let span ?(args = []) ?record name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let tid = (Domain.self () :> int) in
    let depth =
      locked span_lock (fun () ->
          let d = Option.value (Hashtbl.find_opt depths tid) ~default:0 in
          Hashtbl.replace depths tid (d + 1);
          d)
    in
    let t0 = Lh_util.Timing.monotonic_now () in
    let finish ?error () =
      let dt = Lh_util.Timing.monotonic_now () -. t0 in
      (match record with Some r -> r dt | None -> ());
      let args = match error with None -> args | Some e -> args @ [ ("error", e) ] in
      locked span_lock (fun () ->
          span_buf :=
            { sname = name; sargs = args; sstart = t0; sdur = dt; sdepth = depth; stid = tid }
            :: !span_buf;
          Hashtbl.replace depths tid depth)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ~error:(exn_label e) ();
        raise e
  end
