(** Query telemetry: a process-global registry of counters/gauges plus a
    hierarchical span recorder, all behind one [enabled] flag.

    Design constraints (mirroring the instrumented hot paths):

    - When disabled — the default — every probe is a single load of an
      [Atomic.t bool] and a branch; no allocation, no clock read, no
      lock. The WCOJ inner loops in [Executor] pay effectively nothing.
    - When enabled, counter updates are single [Atomic] fetch-and-adds
      (safe under the parallel executor's domains) and spans take one
      monotonic clock read at start and end plus one mutex-guarded
      buffer push at end. Spans are placed at phase granularity (parse,
      plan, per-relation trie build, per-bag execution), never inside
      per-tuple loops.

    Counters are registered once at module-initialization time and are
    monotonically non-decreasing for the life of the process; reports
    work on {!snapshot} deltas. Gauges hold "latest" or "maximum"
    values and are not monotone. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Runs the thunk with the flag set, restoring the previous value
    (exception-safe). *)

(** {1 Counters and gauges} *)

type counter

val counter : string -> counter
(** Registers (or retrieves) the counter named [name]. Counter and gauge
    names share one namespace; registering the same name twice returns
    the same cell. *)

val gauge : string -> counter
(** Same cell type as a counter, but reported as a point-in-time value
    and mutated with {!set}/{!set_max} rather than increments. *)

val incr : counter -> unit
(** No-op when disabled; atomic [+1] otherwise. *)

val add : counter -> int -> unit
val set : counter -> int -> unit
val set_max : counter -> int -> unit

val value : counter -> int
(** Current value, regardless of the enabled flag. *)

val name : counter -> string

type snapshot = (string * int) list
(** Registration-ordered [(name, value)] pairs — counters and gauges. *)

val snapshot : unit -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-name [after - before] for counters; gauges report their [after]
    value as-is. Names only present in [after] (registered mid-session)
    keep their [after] value. *)

val counter_names : unit -> string list
(** Every registered counter/gauge name, in registration order. *)

val is_gauge : string -> bool

(** {1 Spans} *)

type span = {
  sname : string;
  sargs : (string * string) list;
  sstart : float;  (** monotonic seconds ({!Lh_util.Timing.monotonic_now}) *)
  sdur : float;  (** seconds *)
  sdepth : int;  (** nesting depth within its domain, root = 0 *)
  stid : int;  (** domain id, for the Chrome trace's tid lane *)
}

val span : ?args:(string * string) list -> ?record:(float -> unit) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f]; when enabled, records a completed span
    around it. Nesting is tracked per domain. Exception-safe: the span
    is recorded (and the depth restored) even if [f] raises, and a span
    that ends via an exception carries an extra [("error", msg)] arg so
    failed phases are distinguishable in traces. [record], when given,
    receives the measured duration (seconds) on completion — enabled
    runs only; the disabled path stays a single atomic load. Histogram
    probes ({!Hist}) attach here. *)

val spans : unit -> span list
(** Completed spans since the last {!clear_spans}, ordered by
    (domain, start time). *)

val clear_spans : unit -> unit
