(* Lock-free fixed-bucket latency histograms. See hist.mli for the
   overhead contract (it mirrors the counters in Obs). *)

let nbuckets = 48

type t = {
  hname : string;
  buckets : int Atomic.t array;  (* bucket i counts values in [2^i, 2^(i+1)) ns *)
  hsum_ns : int Atomic.t;
  hmax_ns : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* Registry (same discipline as the counter registry in Obs)            *)

let registry_lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 16
let order : t list ref = ref []  (* reverse registration order *)

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let histogram name =
  locked registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some h -> h
      | None ->
          let h =
            {
              hname = name;
              buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
              hsum_ns = Atomic.make 0;
              hmax_ns = Atomic.make 0;
            }
          in
          Hashtbl.replace registry name h;
          order := h :: !order;
          h)

let make () =
  {
    hname = "";
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    hsum_ns = Atomic.make 0;
    hmax_ns = Atomic.make 0;
  }

let name h = h.hname
let registered () = locked registry_lock (fun () -> List.rev !order)

(* ------------------------------------------------------------------ *)
(* Recording                                                            *)

(* floor log2, clamped into [0, nbuckets): 0 and 1 land in bucket 0. *)
let bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
    let b = go 0 ns in
    if b >= nbuckets then nbuckets - 1 else b
  end

let bucket_bounds_ns i =
  let lo = if i = 0 then 0 else 1 lsl i in
  let hi = if i >= nbuckets - 1 then max_int else 1 lsl (i + 1) in
  (lo, hi)

let record_ns h ns =
  let ns = if ns < 0 then 0 else ns in
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of_ns ns) 1);
  ignore (Atomic.fetch_and_add h.hsum_ns ns);
  let rec raise_max () =
    let cur = Atomic.get h.hmax_ns in
    if ns > cur && not (Atomic.compare_and_set h.hmax_ns cur ns) then raise_max ()
  in
  raise_max ()

let ns_of_seconds s =
  if Float.is_nan s || s <= 0.0 then 0
  else if s >= 9.0e9 then max_int  (* ~285 years; clamp instead of overflowing *)
  else int_of_float (s *. 1e9)

let observe h seconds = if Obs.is_enabled () then record_ns h (ns_of_seconds seconds)
let observe_always h seconds = record_ns h (ns_of_seconds seconds)

(* ------------------------------------------------------------------ *)
(* Snapshots: plain values, safe to diff/merge/serialize off the hot
   path. A snapshot taken while writers are active is per-bucket exact
   but not globally instantaneous — fine for reporting.                 *)

type snapshot = { sbuckets : int array; ssum_ns : int; smax_ns : int }

let empty = { sbuckets = Array.make nbuckets 0; ssum_ns = 0; smax_ns = 0 }

let snapshot h =
  {
    sbuckets = Array.map Atomic.get h.buckets;
    ssum_ns = Atomic.get h.hsum_ns;
    smax_ns = Atomic.get h.hmax_ns;
  }

let snapshot_all () = List.map (fun h -> (h.hname, snapshot h)) (registered ())

let count s = Array.fold_left ( + ) 0 s.sbuckets

let top_bucket s =
  let top = ref (-1) in
  Array.iteri (fun i c -> if c > 0 then top := i) s.sbuckets;
  !top

let diff ~before ~after =
  let sbuckets = Array.mapi (fun i c -> max 0 (c - before.sbuckets.(i))) after.sbuckets in
  let d = { sbuckets; ssum_ns = max 0 (after.ssum_ns - before.ssum_ns); smax_ns = 0 } in
  (* The per-interval maximum is not recoverable exactly; bound it by the
     lifetime maximum and the top bucket the interval actually touched. *)
  let smax_ns =
    match top_bucket d with
    | -1 -> 0
    | top ->
        let _, hi = bucket_bounds_ns top in
        if after.smax_ns > 0 then min after.smax_ns hi else hi
  in
  { d with smax_ns }

let merge a b =
  {
    sbuckets = Array.mapi (fun i c -> c + b.sbuckets.(i)) a.sbuckets;
    ssum_ns = a.ssum_ns + b.ssum_ns;
    smax_ns = max a.smax_ns b.smax_ns;
  }

(* ------------------------------------------------------------------ *)
(* Percentiles                                                          *)

let seconds_of_ns ns = float_of_int ns *. 1e-9

(* Rank-based with linear interpolation inside the bucket. The true value
   is somewhere in [2^i, 2^(i+1)); assuming a uniform spread inside the
   bucket bounds the error by 2x, which log2 buckets accept by design. *)
let percentile s q =
  let n = count s in
  if n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Float.max 1.0 (Float.round (q *. float_of_int n)) in
    let rec walk i cum =
      if i >= nbuckets then seconds_of_ns s.smax_ns
      else begin
        let c = s.sbuckets.(i) in
        if c > 0 && float_of_int (cum + c) >= rank then begin
          let lo, hi = bucket_bounds_ns i in
          let hi = if hi = max_int || (s.smax_ns >= lo && s.smax_ns < hi) then max s.smax_ns (lo + 1) else hi in
          let frac = (rank -. float_of_int cum) /. float_of_int c in
          let est = float_of_int lo +. ((float_of_int hi -. float_of_int lo) *. frac) in
          let est = if s.smax_ns > 0 then Float.min est (float_of_int s.smax_ns) else est in
          est *. 1e-9
        end
        else walk (i + 1) (cum + c)
      end
    in
    walk 0 0
  end

type stats = {
  st_count : int;
  st_mean_s : float;
  st_p50 : float;
  st_p90 : float;
  st_p99 : float;
  st_max_s : float;
}

let stats s =
  let n = count s in
  {
    st_count = n;
    st_mean_s = (if n = 0 then 0.0 else seconds_of_ns s.ssum_ns /. float_of_int n);
    st_p50 = percentile s 0.50;
    st_p90 = percentile s 0.90;
    st_p99 = percentile s 0.99;
    st_max_s = (if n = 0 then 0.0 else seconds_of_ns s.smax_ns);
  }

let stats_json s =
  let st = stats s in
  Json.Obj
    [
      ("count", Json.Int st.st_count);
      ("mean_s", Json.Float st.st_mean_s);
      ("p50_s", Json.Float st.st_p50);
      ("p90_s", Json.Float st.st_p90);
      ("p99_s", Json.Float st.st_p99);
      ("max_s", Json.Float st.st_max_s);
    ]
