(** Minimal JSON tree, printer and parser.

    The telemetry sinks (metrics dump, Chrome trace) emit JSON and the
    test suite must round-trip that output; no JSON library is in the
    dependency closure, so this module carries both directions. It
    implements the JSON subset those sinks produce (all of RFC 8259
    except [\uXXXX] escapes outside the BMP surrogate rules — inputs use
    plain UTF-8 strings). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact single-line rendering. Floats are printed with ["%.17g"] so
    parsing back is lossless; NaN/infinity are rendered as [null]
    (Chrome's trace viewer rejects bare words). *)

val to_channel : out_channel -> t -> unit

val parse : string -> t
(** Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any; [None] on
    non-objects. *)

val to_float : t -> float option
(** Numeric accessor: [Int] and [Float] both convert. *)

val to_int : t -> int option
