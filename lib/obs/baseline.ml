(* Bench baseline comparison: load two `bench --json` record lists and
   flag cells that regressed beyond noise tolerance. Used by
   `bench --compare` (the CI regression gate in ci.sh). *)

type cell = {
  key : string;
  outcome : string;
  seconds : float option;
}

type verdict = {
  regressions : string list;
  warnings : string list;
  notes : string list;
}

let str_member name json =
  match Json.member name json with Some (Json.String s) -> Some s | _ -> None

(* Cells are keyed on (experiment, system, domains, sql) plus an
   occurrence index: the bench runs some experiments at several scale
   factors with identical query text, and run order is deterministic, so
   the n-th duplicate in the baseline lines up with the n-th in the
   current run. *)
let cells_of_json json =
  let records = match json with Json.List l -> l | other -> [ other ] in
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.filter_map
    (fun r ->
      match (str_member "experiment" r, str_member "system" r, str_member "sql" r) with
      | Some experiment, Some system, Some sql ->
          let domains =
            match Json.member "domains" r with
            | Some j -> ( match Json.to_int j with Some d -> string_of_int d | None -> "-")
            | None -> "-"
          in
          let base = Printf.sprintf "%s/%s@%s: %s" experiment system domains sql in
          let n = Option.value (Hashtbl.find_opt seen base) ~default:0 in
          Hashtbl.replace seen base (n + 1);
          let key = if n = 0 then base else Printf.sprintf "%s #%d" base (n + 1) in
          let outcome = Option.value (str_member "outcome" r) ~default:"?" in
          let seconds = Option.bind (Json.member "seconds" r) Json.to_float in
          Some { key; outcome; seconds }
      | _ -> None)
    records

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  cells_of_json (Json.parse text)

let scale factor cells =
  List.map (fun c -> { c with seconds = Option.map (fun s -> s *. factor) c.seconds }) cells

(* "oom" / "t/o" / "-" are the literal failure outcomes written by the
   bench; anything else is a formatted duration (a successful cell). *)
let failed o = o = "oom" || o = "t/o"
let unsupported o = o = "-"

let compare_runs ?(tolerance = 0.5) ?(min_seconds = 0.002) ~baseline ~current () =
  let regressions = ref [] and warnings = ref [] and notes = ref [] in
  let cur_tbl = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace cur_tbl c.key c) current;
  List.iter
    (fun (b : cell) ->
      match Hashtbl.find_opt cur_tbl b.key with
      | None -> warnings := Printf.sprintf "missing from current run: %s" b.key :: !warnings
      | Some c -> (
          Hashtbl.remove cur_tbl b.key;
          match (b.seconds, c.seconds) with
          | Some bs, Some cs ->
              if cs > bs *. (1.0 +. tolerance) && cs -. bs > min_seconds then
                regressions :=
                  Printf.sprintf "%s: %.4fs -> %.4fs (%.2fx, tolerance %.2fx)" b.key bs cs
                    (cs /. bs) (1.0 +. tolerance)
                  :: !regressions
              else if bs > cs *. (1.0 +. tolerance) && bs -. cs > min_seconds then
                notes := Printf.sprintf "%s: improved %.4fs -> %.4fs" b.key bs cs :: !notes
          | _ ->
              if (not (failed b.outcome)) && not (unsupported b.outcome) then begin
                if failed c.outcome then
                  regressions :=
                    Printf.sprintf "%s: outcome %S -> %S" b.key b.outcome c.outcome
                    :: !regressions
              end
              else if failed b.outcome && c.seconds <> None then
                notes :=
                  Printf.sprintf "%s: now succeeds (was %S)" b.key b.outcome :: !notes))
    baseline;
  Hashtbl.iter
    (fun key _ -> warnings := Printf.sprintf "not in baseline: %s" key :: !warnings)
    cur_tbl;
  {
    regressions = List.rev !regressions;
    warnings = List.rev !warnings;
    notes = List.rev !notes;
  }

let ok v = v.regressions = []

let to_text v =
  let buf = Buffer.create 256 in
  List.iter (fun m -> Buffer.add_string buf ("REGRESSION: " ^ m ^ "\n")) v.regressions;
  List.iter (fun m -> Buffer.add_string buf ("warning: " ^ m ^ "\n")) v.warnings;
  List.iter (fun m -> Buffer.add_string buf ("note: " ^ m ^ "\n")) v.notes;
  Buffer.add_string buf
    (if v.regressions = [] then
       Printf.sprintf "baseline compare ok (%d warnings, %d notes)\n" (List.length v.warnings)
         (List.length v.notes)
     else Printf.sprintf "baseline compare FAILED: %d regression(s)\n" (List.length v.regressions));
  Buffer.contents buf
