type t = {
  total_s : float;
  spans : Obs.span list;
  counters : Obs.snapshot;
  hists : (string * Hist.snapshot) list;
}

let g_peak_words = Obs.gauge "gc.peak_live_words"
let c_pool_tasks = Obs.counter "pool.tasks"
let c_pool_chunks = Obs.counter "pool.chunks"
let g_pool_workers = Obs.gauge "pool.workers"
let c_fault_injected = Obs.counter "fault.injected"

(* The domain pool and the fault registry live below the observability
   layer (Lh_util must not depend on Lh_obs), so their lifetime counters
   are polled here: syncing before both snapshots turns them into
   per-session deltas like any other counter. *)
let sync_pool_counters () =
  let s = Lh_util.Pool.stats () in
  Obs.set c_pool_tasks s.Lh_util.Pool.st_tasks;
  Obs.set c_pool_chunks s.Lh_util.Pool.st_chunks;
  Obs.set g_pool_workers s.Lh_util.Pool.st_workers;
  Obs.set c_fault_injected (Lh_fault.Fault.total_fired ())

(* Per-session histogram deltas: histograms registered mid-session keep
   their full contents (like counters in [Obs.diff]); empty deltas are
   dropped so reports only carry histograms the session touched. *)
let hist_deltas ~before ~after =
  List.filter_map
    (fun (n, a) ->
      let d =
        match List.assoc_opt n before with Some b -> Hist.diff ~before:b ~after:a | None -> a
      in
      if Hist.count d > 0 then Some (n, d) else None)
    after

let with_session f =
  Obs.with_enabled true (fun () ->
      Obs.clear_spans ();
      sync_pool_counters ();
      let before = Obs.snapshot () in
      let hbefore = Hist.snapshot_all () in
      let t0 = Lh_util.Timing.monotonic_now () in
      let result = f () in
      let total = Lh_util.Timing.monotonic_now () -. t0 in
      Obs.set_max g_peak_words (Gc.quick_stat ()).Gc.heap_words;
      sync_pool_counters ();
      let after = Obs.snapshot () in
      let hafter = Hist.snapshot_all () in
      ( result,
        {
          total_s = total;
          spans = Obs.spans ();
          counters = Obs.diff ~before ~after;
          hists = hist_deltas ~before:hbefore ~after:hafter;
        } ))

(* ------------------------------------------------------------------ *)

let split_counters t =
  List.partition (fun (n, _) -> not (Obs.is_gauge n)) t.counters

(* The session's "phases": children of the unique root span when there is
   one, the roots themselves otherwise. Only the root's domain counts —
   worker-domain spans are sub-work of some phase, not phases. *)
let phases t =
  let roots = List.filter (fun (s : Obs.span) -> s.Obs.sdepth = 0) t.spans in
  let level, tid =
    match roots with
    | [ r ] -> (1, Some r.Obs.stid)
    | _ -> (0, None)
  in
  let keep (s : Obs.span) =
    s.Obs.sdepth = level
    && match tid with None -> true | Some tid -> s.Obs.stid = tid
  in
  List.fold_left
    (fun acc (s : Obs.span) ->
      if not (keep s) then acc
      else
        match List.assoc_opt s.Obs.sname acc with
        | Some d -> (s.Obs.sname, d +. s.Obs.sdur) :: List.remove_assoc s.Obs.sname acc
        | None -> (s.Obs.sname, s.Obs.sdur) :: acc)
    [] t.spans
  |> List.rev

let to_text t =
  let buf = Buffer.create 1024 in
  let dur = Lh_util.Timing.duration_to_string in
  Buffer.add_string buf
    (Printf.sprintf "EXPLAIN ANALYZE  (total %s)\n" (dur t.total_s));
  if t.spans <> [] then begin
    Buffer.add_string buf "spans:\n";
    List.iter
      (fun (s : Obs.span) ->
        let indent = String.make (2 + (2 * s.Obs.sdepth)) ' ' in
        let label =
          match s.Obs.sargs with
          | [] -> s.Obs.sname
          | args ->
              Printf.sprintf "%s (%s)" s.Obs.sname
                (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) args))
        in
        let pad = max 1 (46 - String.length indent - String.length label) in
        Buffer.add_string buf
          (Printf.sprintf "%s%s%s%10s\n" indent label (String.make pad ' ')
             (dur s.Obs.sdur)))
      t.spans
  end;
  (match phases t with
  | [] -> ()
  | ps ->
      Buffer.add_string buf "phase breakdown:\n";
      let accounted = List.fold_left (fun a (_, d) -> a +. d) 0.0 ps in
      List.iter
        (fun (n, d) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-30s%10s  %5.1f%%\n" n (dur d)
               (if t.total_s > 0.0 then 100.0 *. d /. t.total_s else 0.0)))
        ps;
      Buffer.add_string buf
        (Printf.sprintf "  %-30s%10s  %5.1f%% of total\n" "(accounted)" (dur accounted)
           (if t.total_s > 0.0 then 100.0 *. accounted /. t.total_s else 0.0)));
  let counters, gauges = split_counters t in
  let nonzero = List.filter (fun (_, v) -> v <> 0) counters in
  if nonzero <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-30s%10d\n" n v))
      nonzero
  end;
  let gz = List.filter (fun (_, v) -> v <> 0) gauges in
  if gz <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "  %-30s%10d\n" n v))
      gz
  end;
  if t.hists <> [] then begin
    Buffer.add_string buf "latency histograms:\n";
    List.iter
      (fun (n, s) ->
        let st = Hist.stats s in
        Buffer.add_string buf
          (Printf.sprintf "  %-30s%6d  p50 %s  p90 %s  p99 %s  max %s\n" n st.Hist.st_count
             (dur st.Hist.st_p50) (dur st.Hist.st_p90) (dur st.Hist.st_p99)
             (dur st.Hist.st_max_s)))
      t.hists
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let metrics_json t =
  let counters, gauges = split_counters t in
  Json.Obj
    [
      ("total_seconds", Json.Float t.total_s);
      ("phases", Json.Obj (List.map (fun (n, d) -> (n, Json.Float d)) (phases t)));
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) gauges));
      ("histograms", Json.Obj (List.map (fun (n, s) -> (n, Hist.stats_json s)) t.hists));
      ( "spans",
        Json.List
          (List.map
             (fun (s : Obs.span) ->
               Json.Obj
                 [
                   ("name", Json.String s.Obs.sname);
                   ("start_s", Json.Float s.Obs.sstart);
                   ("dur_s", Json.Float s.Obs.sdur);
                   ("depth", Json.Int s.Obs.sdepth);
                   ("tid", Json.Int s.Obs.stid);
                   ( "args",
                     Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.Obs.sargs) );
                 ])
             t.spans) );
    ]

let chrome_trace t =
  (* Chrome's trace viewer wants microsecond timestamps; re-base on the
     earliest span so numbers stay small. *)
  let t0 =
    List.fold_left (fun acc (s : Obs.span) -> Float.min acc s.Obs.sstart) infinity t.spans
  in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let us x = (x -. t0) *. 1e6 in
  let events =
    List.map
      (fun (s : Obs.span) ->
        Json.Obj
          [
            ("name", Json.String s.Obs.sname);
            ("cat", Json.String "query");
            ("ph", Json.String "X");
            ("ts", Json.Float (us s.Obs.sstart));
            ("dur", Json.Float (s.Obs.sdur *. 1e6));
            ("pid", Json.Int 1);
            ("tid", Json.Int s.Obs.stid);
            ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) s.Obs.sargs));
          ])
      t.spans
  in
  let counter_events =
    (* One final sample per non-zero counter, so the counters land in the
       trace viewer's args pane. *)
    let counters, _ = split_counters t in
    List.filter_map
      (fun (n, v) ->
        if v = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.String n);
                 ("cat", Json.String "counters");
                 ("ph", Json.String "C");
                 ("ts", Json.Float (t.total_s *. 1e6));
                 ("pid", Json.Int 1);
                 ("args", Json.Obj [ ("value", Json.Int v) ]);
               ]))
      counters
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String "levelheaded") ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List ((meta :: events) @ counter_events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel oc json;
      output_char oc '\n')
