(** Lock-free fixed-bucket (log2) latency histograms.

    Same overhead contract as the counters in {!Obs}:

    - When telemetry is disabled, {!observe} is a single load of the
      shared [enabled] atomic and a branch — no clock read, no
      allocation, no lock. Probes may therefore sit on the per-query
      path unconditionally.
    - When enabled, an observation is three [Atomic] operations (bucket
      fetch-and-add, sum fetch-and-add, CAS-loop max), safe under the
      parallel executor's domains with no lock and no per-domain state.

    Values are durations in seconds, bucketed by [floor (log2 ns)]:
    bucket [i] counts observations in [[2^i, 2^(i+1))] nanoseconds
    (bucket 0 absorbs 0 and 1 ns), 48 buckets — about 3 days at the top.
    Percentiles interpolate linearly inside the winning bucket, so the
    estimate's relative error is bounded by the bucket width (2x). *)

type t

val histogram : string -> t
(** Registers (or retrieves) the process-global histogram [name].
    Registration is module-initialization-time work, like
    {!Obs.counter}. *)

val make : unit -> t
(** A fresh unregistered histogram, for offline aggregation (e.g. the
    bench harness folding per-run samples). *)

val name : t -> string

val observe : t -> float -> unit
(** [observe h seconds] — no-op unless {!Obs.is_enabled}. Negative and
    NaN values count as 0. *)

val observe_always : t -> float -> unit
(** Ungated {!observe}, for aggregation outside instrumented hot paths
    (never use this in engine code — it bypasses the disabled-cost
    contract). *)

val nbuckets : int

val bucket_of_ns : int -> int
(** The bucket index a duration in nanoseconds lands in (exposed for
    tests). *)

val bucket_bounds_ns : int -> int * int
(** [(lo, hi)] with the bucket covering [[lo, hi)]; the last bucket's
    [hi] is [max_int]. *)

(** {1 Snapshots} *)

type snapshot = {
  sbuckets : int array;  (** length {!nbuckets} *)
  ssum_ns : int;
  smax_ns : int;
}

val empty : snapshot
val snapshot : t -> snapshot
val snapshot_all : unit -> (string * snapshot) list
(** Every registered histogram, in registration order. *)

val count : snapshot -> int

val diff : before:snapshot -> after:snapshot -> snapshot
(** Per-bucket [after - before]: the distribution of observations made
    between the two snapshots. The interval maximum is an estimate —
    bounded above by the lifetime maximum and by the highest bucket the
    interval touched. *)

val merge : snapshot -> snapshot -> snapshot
(** Bucket-wise sum; max of maxima. Merging per-domain (or per-shard)
    snapshots is exact for counts and sums. *)

val percentile : snapshot -> float -> float
(** [percentile s q] for [q] in [[0, 1]], in seconds; [0.0] when empty.
    Monotone in [q]; clamped to the snapshot maximum. *)

type stats = {
  st_count : int;
  st_mean_s : float;
  st_p50 : float;
  st_p90 : float;
  st_p99 : float;
  st_max_s : float;
}

val stats : snapshot -> stats
val stats_json : snapshot -> Json.t
(** [{"count", "mean_s", "p50_s", "p90_s", "p99_s", "max_s"}]. *)
