(** Bench-baseline comparison: the CI regression gate behind
    [bench --compare].

    A baseline is the record list written by [bench --json] (e.g. the
    committed [BENCH_6.json]). Comparison is cell-by-cell — a cell is one
    (experiment, system, domains, sql) measurement, disambiguated by
    occurrence order when an experiment runs the same text at several
    scales — and a regression is a slowdown beyond both a relative
    tolerance and an absolute floor (wall-clock noise on small cells), or
    a cell flipping from success to oom / timeout. Missing or added
    cells only warn: experiment subsets must stay comparable. *)

type cell = {
  key : string;  (** "experiment/system\@domains: sql" + occurrence suffix *)
  outcome : string;  (** formatted duration, or ["oom"] / ["t/o"] / ["-"] *)
  seconds : float option;  (** mean hot-run seconds, successful cells only *)
}

type verdict = {
  regressions : string list;  (** non-empty fails the gate *)
  warnings : string list;  (** cell-set differences *)
  notes : string list;  (** improvements — informational *)
}

val cells_of_json : Json.t -> cell list
(** Extract comparable cells from a parsed record list; records without
    the identifying members are skipped. *)

val load : string -> cell list
(** Read and parse a [bench --json] file.
    @raise Sys_error on IO failure, {!Json.Parse_error} on bad JSON. *)

val scale : float -> cell list -> cell list
(** Multiply every cell's seconds — the [--compare-slowdown] testing aid
    that lets CI prove the gate actually fires. *)

val compare_runs :
  ?tolerance:float ->
  ?min_seconds:float ->
  baseline:cell list ->
  current:cell list ->
  unit ->
  verdict
(** [tolerance] (default [0.5]) is the allowed relative slowdown — a
    cell regresses when [cur > base * (1 + tolerance)]; [min_seconds]
    (default [0.002]) additionally requires the absolute slowdown to
    exceed that many seconds, so microsecond-scale cells don't flap. *)

val ok : verdict -> bool
(** [true] iff there are no regressions. *)

val to_text : verdict -> string
