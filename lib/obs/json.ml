type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                             *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.abs f = infinity then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over a string cursor.               *)

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some '"' -> Buffer.add_char buf '"'; c.pos <- c.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; c.pos <- c.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; c.pos <- c.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; c.pos <- c.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; c.pos <- c.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; c.pos <- c.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; c.pos <- c.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; c.pos <- c.pos + 1; go ()
        | Some 'u' ->
            if c.pos + 5 > String.length c.src then fail c "truncated \\u escape";
            let hex = String.sub c.src (c.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
            in
            (* Encode as UTF-8 (BMP only; our own emitter only writes
               control characters this way). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            c.pos <- c.pos + 5;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected , or }"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail c "expected , or ]"
        in
        List (elems [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
let to_int = function Int i -> Some i | _ -> None
