exception Injected of string

type kind = Generic | Timeout | Oom
type trigger = Nth of int | Prob of float * int | Always
type spec = { sp_pattern : string; sp_kind : kind; sp_trigger : trigger }

type site = {
  s_name : string;
  s_hits : int Atomic.t;
  s_fired : int Atomic.t;
  mutable s_armed : (kind * trigger) option;
}

(* One mutex guards the registry and the armed-spec list; [s_armed] is
   written under it and read racily by probes (arming happens-before the
   armed run — see the .mli contract). The [enabled] flag is the probes'
   fast-path gate. *)
let lock = Mutex.create ()
let registry : (string, site) Hashtbl.t = Hashtbl.create 32
let armed_specs : spec list ref = ref []
let enabled = Atomic.make false

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Budget exceptions live above this library; Lh_util.Budget installs the
   real ones at load time. *)
let timeout_exn = ref (Injected "<budget.timeout>")
let oom_exn = ref (Injected "<budget.oom>")

let set_budget_exns ~timeout ~oom =
  timeout_exn := timeout;
  oom_exn := oom

let glob_match ~pattern name =
  let np = String.length pattern and nn = String.length name in
  let rec go pi ni =
    if pi = np then ni = nn
    else
      match pattern.[pi] with
      | '*' ->
          let rec try_at k = k <= nn && (go (pi + 1) k || try_at (k + 1)) in
          try_at ni
      | c -> ni < nn && name.[ni] = c && go (pi + 1) (ni + 1)
  in
  go 0 0

let apply_spec_to_site sp s =
  if glob_match ~pattern:sp.sp_pattern s.s_name then begin
    s.s_armed <- Some (sp.sp_kind, sp.sp_trigger);
    Atomic.set s.s_hits 0;
    Atomic.set s.s_fired 0
  end

let site name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s
      | None ->
          let s =
            { s_name = name; s_hits = Atomic.make 0; s_fired = Atomic.make 0; s_armed = None }
          in
          (* Earliest-armed spec first so "most recently armed wins". *)
          List.iter (fun sp -> apply_spec_to_site sp s) (List.rev !armed_specs);
          Hashtbl.replace registry name s;
          s)

let name s = s.s_name

(* splitmix-style finalizer over the native int width; only used to draw
   a deterministic uniform per (seed, site, hit index). *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x4be98134a5976fd3 in
  let z = (z lxor (z lsr 27)) * 0x3bd0d69a6ddbbbed in
  (z lxor (z lsr 31)) land max_int

let uniform ~seed ~name ~hit =
  let z = mix (seed + (Hashtbl.hash name * 0x9e3779b9) + (hit * 0x85ebca6b)) in
  float_of_int (z land 0xFFFFFF) /. 16777216.0

let raise_kind kind site_name =
  match kind with
  | Generic -> raise (Injected site_name)
  | Timeout -> raise !timeout_exn
  | Oom -> raise !oom_exn

let hit s =
  if Atomic.get enabled then
    match s.s_armed with
    | None -> ()
    | Some (kind, trigger) ->
        let n = 1 + Atomic.fetch_and_add s.s_hits 1 in
        let fire =
          match trigger with
          | Always -> true
          | Nth k -> n = k
          | Prob (p, seed) -> uniform ~seed ~name:s.s_name ~hit:n < p
        in
        if fire then begin
          Atomic.incr s.s_fired;
          raise_kind kind s.s_name
        end

let point n = if Atomic.get enabled then hit (site n)

let arm_spec sp =
  locked (fun () ->
      armed_specs := sp :: !armed_specs;
      Hashtbl.iter (fun _ s -> apply_spec_to_site sp s) registry;
      Atomic.set enabled true)

let arm ?(kind = Generic) ?(trigger = Nth 1) pattern =
  arm_spec { sp_pattern = pattern; sp_kind = kind; sp_trigger = trigger }

let disarm_all () =
  locked (fun () ->
      armed_specs := [];
      Atomic.set enabled false;
      Hashtbl.iter
        (fun _ s ->
          s.s_armed <- None;
          Atomic.set s.s_hits 0;
          Atomic.set s.s_fired 0)
        registry)

let registered () =
  locked (fun () -> Hashtbl.fold (fun n _ acc -> n :: acc) registry []) |> List.sort compare

let lookup n = locked (fun () -> Hashtbl.find_opt registry n)
let hits n = match lookup n with Some s -> Atomic.get s.s_hits | None -> 0
let fired n = match lookup n with Some s -> Atomic.get s.s_fired | None -> 0

let total_fired () =
  locked (fun () -> Hashtbl.fold (fun _ s acc -> acc + Atomic.get s.s_fired) registry 0)

let armed_sites () =
  locked (fun () ->
      Hashtbl.fold (fun n s acc -> if s.s_armed <> None then n :: acc else acc) registry [])
  |> List.sort compare

let kind_to_string = function Generic -> "generic" | Timeout -> "timeout" | Oom -> "oom"

let kind_of_string = function
  | "generic" -> Some Generic
  | "timeout" -> Some Timeout
  | "oom" -> Some Oom
  | _ -> None

let split_on char s =
  String.split_on_char char s |> List.map String.trim |> List.filter (fun f -> f <> "")

let parse_one text =
  match split_on ':' text with
  | [] -> Error "empty fault spec"
  | pattern :: opts ->
      let rec go kind trigger seed = function
        | [] ->
            let trigger =
              match (trigger, seed) with
              | Some (Prob (p, _)), Some s -> Prob (p, s)
              | Some t, _ -> t
              | None, _ -> Nth 1
            in
            Ok { sp_pattern = pattern; sp_kind = kind; sp_trigger = trigger }
        | "always" :: rest -> go kind (Some Always) seed rest
        | opt :: rest -> (
            match String.index_opt opt '=' with
            | None -> Error (Printf.sprintf "bad fault option %S (want key=value)" opt)
            | Some i -> (
                let key = String.sub opt 0 i in
                let v = String.sub opt (i + 1) (String.length opt - i - 1) in
                match key with
                | "kind" -> (
                    match kind_of_string v with
                    | Some k -> go k trigger seed rest
                    | None -> Error (Printf.sprintf "unknown fault kind %S" v))
                | "nth" -> (
                    match int_of_string_opt v with
                    | Some n when n >= 1 -> go kind (Some (Nth n)) seed rest
                    | _ -> Error (Printf.sprintf "nth wants a positive integer, got %S" v))
                | "p" -> (
                    match float_of_string_opt v with
                    | Some p when p >= 0.0 && p <= 1.0 ->
                        go kind (Some (Prob (p, match seed with Some s -> s | None -> 0))) seed rest
                    | _ -> Error (Printf.sprintf "p wants a probability in [0,1], got %S" v))
                | "seed" -> (
                    match int_of_string_opt v with
                    | Some s -> go kind trigger (Some s) rest
                    | None -> Error (Printf.sprintf "seed wants an integer, got %S" v))
                | _ -> Error (Printf.sprintf "unknown fault option %S" key)))
      in
      go Generic None None opts

let parse_spec text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest -> ( match parse_one part with Ok sp -> go (sp :: acc) rest | Error _ as e -> e)
  in
  match split_on ',' text with [] -> Error "empty LH_FAULT spec" | parts -> go [] parts

(* LH_FAULT is read once, here, so arming works uniformly in every binary
   (CLI, fuzzer, tests, benches). Sites register later than this module
   initializes, which is why specs are kept and applied in [site]. *)
let () =
  match Sys.getenv_opt "LH_FAULT" with
  | None | Some "" -> ()
  | Some text -> (
      match parse_spec text with
      | Ok specs -> List.iter arm_spec specs
      | Error msg -> Printf.eprintf "LH_FAULT ignored: %s\n%!" msg)
