(** Deterministic, seed-driven fault injection.

    Hot paths throughout the engine register named {e fault sites}
    ([Fault.site "pool.chunk"] at module-initialization time, like
    [Lh_obs.Obs.counter]) and probe them with {!hit}. A disarmed probe is
    one atomic load and a branch — cheap enough for per-row loops. An
    armed site raises at a deterministic trigger point, letting the test
    and CI harnesses prove the {e crash-only invariant}: any failure
    surfaces as a typed error and leaves the engine (pool, caches,
    prepared statements) fully usable.

    Sites are armed by glob pattern, either programmatically ({!arm}) or
    through the [LH_FAULT] environment variable, read once at program
    start:

    {v
      LH_FAULT="trie.build.node"                  # fire on the 1st hit
      LH_FAULT="pool.*:kind=timeout:nth=3"        # 3rd hit raises Timed_out
      LH_FAULT="exec.*:p=0.001:seed=7,csv.line"   # several specs, comma-separated
    v}

    Spec syntax: [glob[:kind=generic|timeout|oom][:nth=N|:p=F|:always][:seed=N]].
    Defaults: [kind=generic], [nth=1].

    This library sits below [Lh_util] and therefore cannot name the
    budget exceptions; [Lh_util.Budget] installs them at load time via
    {!set_budget_exns}. Until then, [timeout]/[oom] kinds degrade to
    {!Injected}.

    Concurrency: {!hit} is safe from any domain ([Nth] counts via an
    atomic). Arming and disarming must not race in-flight work — arm,
    run, disarm, in that order, as the harnesses do. Under [Prob] the
    per-site hit {e index} sequence depends on domain interleaving;
    [Nth 1] (the default, and what the crashtest harness uses) is
    deterministic whenever the site is reached at all. *)

exception Injected of string
(** Raised by a firing site of kind [Generic]; the payload is the site
    name. *)

type kind = Generic | Timeout | Oom

type trigger =
  | Nth of int  (** fire on exactly the Nth hit since arming, 1-based *)
  | Prob of float * int  (** [(p, seed)]: each hit fires with probability [p] *)
  | Always

type site

val site : string -> site
(** Registers (or retrieves) the site named [name]. Registration is
    idempotent and thread-safe; armed specs whose pattern matches are
    applied to late-registered sites too. *)

val name : site -> string

val hit : site -> unit
(** The probe. No-op unless some site is armed; raises per the matching
    spec's kind when this site's trigger fires. *)

val point : string -> unit
(** [point n] = [hit (site n)], for cold paths. Note the site is only
    registered once the point is first executed; hot paths and anything
    the crashtest harness should enumerate must use {!site} at module
    init instead. *)

val arm : ?kind:kind -> ?trigger:trigger -> string -> unit
(** [arm pattern] arms every registered (and future) site matching the
    glob [pattern] ([*] matches any substring). Defaults: [Generic],
    [Nth 1]. Re-arming a site resets its hit/fired counts; when several
    armed patterns match one site, the most recently armed wins. *)

val disarm_all : unit -> unit
(** Disarms every site, clears pending patterns and resets all hit and
    fired counts. Probes return to the single-load fast path. *)

val registered : unit -> string list
(** Sorted names of every site registered so far (i.e. by the modules
    linked and initialized in this process). *)

val hits : string -> int
(** Hits recorded at the named site since it was (re-)armed; 0 when the
    site is unknown, disarmed or never hit. *)

val fired : string -> int
(** Times the named site actually raised since it was (re-)armed. *)

val total_fired : unit -> int
(** Sum of {!fired} across all sites — polled into the [fault.injected]
    telemetry counter by [Lh_obs.Report]. *)

val armed_sites : unit -> string list
(** Sorted names of the currently armed sites. *)

val glob_match : pattern:string -> string -> bool

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

type spec = { sp_pattern : string; sp_kind : kind; sp_trigger : trigger }

val parse_spec : string -> (spec list, string) result
(** Parses an [LH_FAULT]-syntax string (comma-separated specs). *)

val arm_spec : spec -> unit

val set_budget_exns : timeout:exn -> oom:exn -> unit
(** Installs the exceptions raised by [Timeout]/[Oom] kinds. Called by
    [Lh_util.Budget] at load time; not for general use. *)
