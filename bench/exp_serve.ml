(* Service-concurrency experiment (bench --concurrency): throughput and
   tail latency of the epoch-pinned query service as client sessions
   scale.

   Each client count stands up a fresh service over the small repeated-
   workload dataset and fans out that many client domains — one session
   each, issuing a fixed mixed workload (TPC-H scan, chain join, SpMV) of
   synchronous queries — while the writer publishes two epochs mid-run,
   gated on client progress, so admission, snapshot pinning and the
   swap/retire path all run under load. The cell reports wall time,
   queries/second and p50/p99 per-query latency; --json records carry
   clients / throughput_qps / p99_seconds fields on top of the usual
   latency histogram.

   On a single-core host the throughput curve is expected to be flat
   (client domains time-share one core); the cell is still the regression
   anchor for per-query service overhead (admission, view lookup, pin
   accounting). *)

module C = Common
module L = Levelheaded
module Serve = Lh_serve.Serve
module Timing = Lh_util.Timing
module Json = Lh_obs.Json

let rounds_per_client = 30

let build params =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  List.iter (L.Engine.register eng)
    (Lh_datagen.Tpch.generate ~dict ~sf:0.0005 ~seed:params.C.seed ());
  let m =
    Lh_datagen.Matrices.banded ~dict ~name:"srv_m" ~n:256 ~nnz_per_row:4
      ~seed:params.C.seed ()
  in
  L.Engine.register eng m.Lh_datagen.Matrices.table;
  let n = m.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
  let vt, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"srv_x" ~n () in
  L.Engine.register eng vt;
  eng

let aux_schema =
  Lh_storage.Schema.create
    [ ("k", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
      ("v", Lh_storage.Dtype.Float, Lh_storage.Schema.Annotation) ]

let aux_rows g =
  List.init 16 (fun i ->
      [ Lh_storage.Dtype.VInt i; Lh_storage.Dtype.VFloat (float_of_int (i * g)) ])

(* nearest-rank percentile over an ascending array *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

let run params =
  C.print_header "Service concurrency — throughput and tail latency"
    [ "queries"; "wall"; "qps"; "p50"; "p99"; "errors" ];
  List.map
    (fun clients ->
      let eng = build params in
      let budget =
        Lh_util.Budget.create ~max_live_words:params.C.mem_words
          ~max_seconds:params.C.timeout ()
      in
      let cfg = { (L.Engine.config eng) with L.Config.domains = 1; budget } in
      let svc = Serve.create ~config:cfg ~max_sessions:(clients + 1) eng in
      let workload =
        [| Queries.q1; Queries.q3; Queries.smv ~matrix:"srv_m" ~vector:"srv_x" |]
      in
      let total = clients * rounds_per_client in
      let completed = Atomic.make 0 in
      let errors = Atomic.make 0 in
      let client d =
        let s = Serve.open_session svc in
        let lat = Array.make rounds_per_client 0.0 in
        for i = 0 to rounds_per_client - 1 do
          let sql = workload.((d + i) mod Array.length workload) in
          let t0 = Timing.monotonic_now () in
          (match Serve.query s sql with
          | Ok _ -> ()
          | Error _ -> Atomic.incr errors);
          lat.(i) <- Timing.monotonic_now () -. t0;
          Atomic.incr completed
        done;
        Serve.close_session s;
        lat
      in
      let t0 = Timing.monotonic_now () in
      let doms = List.init clients (fun d -> Domain.spawn (fun () -> client d)) in
      (* Writer: two publications land mid-run. The gates only wait on
         thresholds strictly below [total], so they cannot starve. *)
      for g = 1 to 2 do
        while Atomic.get completed < g * total / 3 do
          Domain.cpu_relax ()
        done;
        match Serve.ingest_rows svc ~name:"srv_aux" ~schema:aux_schema (aux_rows g) with
        | Ok _ -> ()
        | Error e ->
            Printf.eprintf "concurrency ingest failed: %s\n%!" (Serve.error_to_string e)
      done;
      let lats = List.concat_map (fun d -> Array.to_list (Domain.join d)) doms in
      let wall = Timing.monotonic_now () -. t0 in
      Serve.close svc;
      let sorted = Array.of_list lats in
      Array.sort Float.compare sorted;
      let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
      let qps = float_of_int total /. wall in
      C.print_row
        (Printf.sprintf "%d client(s)" clients)
        [
          string_of_int total;
          Timing.duration_to_string wall;
          Printf.sprintf "%.0f" qps;
          Timing.duration_to_string p50;
          Timing.duration_to_string p99;
          string_of_int (Atomic.get errors);
        ];
      C.record_cell
        ~system:(Printf.sprintf "serve@%d" clients)
        ~sql:"mixed: q1 + q3 + spmv through the epoch-pinned service"
        ~outcome:(C.Time wall) ~samples:lats
        ~extra:
          [
            ("clients", Json.Int clients);
            ("queries", Json.Int total);
            ("errors", Json.Int (Atomic.get errors));
            ("throughput_qps", Json.Float qps);
            ("p99_seconds", Json.Float p99);
          ]
        None;
      (clients, qps, p99))
    params.C.concurrency
