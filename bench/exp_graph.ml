(* Semiring iteration experiment.

   The semiring execution core runs graph algorithms through the same
   WCOJ/SpMV machinery the BI and LA cells use: one relaxation round is a
   grouped join of the frontier state against the edge relation, folded in
   the algorithm's semiring, and [Engine.iterate] drives rounds to a
   fixpoint (preparing the step statement once and re-executing it as the
   state table is re-registered each round).

   Three cells on one generated digraph (2000 nodes, out-degree 8,
   quarter-valued edge weights):

     sssp        Bellman-Ford from node 0 — MIN_PLUS relaxation, state
                 merged with [Accumulate "min_plus"] (cell-wise min), so a
                 round is one (min,+) SpMV and convergence is "no distance
                 moved";
     bfs         reachability from node 0 — REACHES relaxation merged with
                 [Accumulate "bool_or_and"]: the same loop in the boolean
                 semiring;
     pagerank    power iteration on the out-degree-normalized adjacency
                 ([Replace] merge, plain (+,x) SpMV per round) — the
                 LA-flavored instance of the same driver.

   The measured work is the whole fixpoint loop: init query + per-round
   prepared execution + keyed merge. Rounds per run are deterministic
   (same graph, same tolerance), so cells are comparable across runs and
   machines. *)

module C = Common
module L = Levelheaded
module Dtype = Lh_storage.Dtype
module Schema = Lh_storage.Schema
module Prng = Lh_util.Prng

let edge_schema =
  Schema.create
    [
      ("row", Dtype.Int, Schema.Key);
      ("col", Dtype.Int, Schema.Key);
      ("v", Dtype.Float, Schema.Annotation);
    ]

let nodes = 2000
let degree = 8

(* Every node gets exactly [degree] distinct out-neighbors, so the
   out-degree-normalized weight is the constant 1/degree and node 0 (the
   SSSP/BFS source) always has a frontier. *)
let build params =
  let eng = L.Engine.create () in
  let rng = Prng.create (params.C.seed lxor 0x6ea9) in
  let weighted = ref [] in
  let normalized = ref [] in
  for r = 0 to nodes - 1 do
    let seen = Hashtbl.create 16 in
    let rec draw k =
      if k > 0 then begin
        let c = Prng.int rng nodes in
        if c = r || Hashtbl.mem seen c then draw k
        else begin
          Hashtbl.add seen c ();
          (* quarters: exact in every evaluator, never zero *)
          let w = float_of_int (Prng.int_in rng 1 16) /. 4.0 in
          weighted := [ Dtype.VInt r; Dtype.VInt c; Dtype.VFloat w ] :: !weighted;
          normalized :=
            [ Dtype.VInt r; Dtype.VInt c; Dtype.VFloat (1.0 /. float_of_int degree) ]
            :: !normalized;
          draw (k - 1)
        end
      end
    in
    draw degree
  done;
  ignore (L.Engine.register_rows eng ~name:"g" ~schema:edge_schema !weighted);
  ignore (L.Engine.register_rows eng ~name:"gn" ~schema:edge_schema !normalized);
  eng

type cell = {
  label : string;
  merge : L.Engine.merge;
  init : string;
  step : string;
  tolerance : float;
  max_rounds : int;
}

let cells =
  [
    {
      label = "sssp/min_plus";
      merge = L.Engine.Accumulate "min_plus";
      init = "select g.row, min_plus(0.0) d from g where g.row = 0 group by g.row";
      step = "select g.col, min_plus(s.d + g.v) d from state s, g where s.row = g.row group by g.col";
      tolerance = 0.0;
      max_rounds = 100;
    };
    {
      label = "bfs/bool_or_and";
      merge = L.Engine.Accumulate "bool_or_and";
      init = "select g.row, reaches(g.v) r from g where g.row = 0 group by g.row";
      step = "select g.col, reaches(g.v) r from state s, g where s.row = g.row group by g.col";
      tolerance = 0.0;
      max_rounds = 100;
    };
    {
      label = "pagerank/power";
      merge = L.Engine.Replace;
      init = "select gn.row, min_plus(0.0005) pr from gn group by gn.row";
      step = "select gn.col, sum(s.pr * gn.v) pr from state s, gn where s.row = gn.row group by gn.col";
      tolerance = 1e-7;
      max_rounds = 30;
    };
  ]

let run params =
  let eng = build params in
  let budget =
    Lh_util.Budget.create ~max_live_words:params.C.mem_words ~max_seconds:params.C.timeout ()
  in
  L.Engine.set_config eng { L.Config.default with L.Config.budget };
  C.print_header "Graph iteration — one WCOJ loop per semiring" [ "time"; "rounds"; "rows" ];
  List.map
    (fun cell ->
      let rounds = ref 0 in
      let final_rows = ref 0 in
      let go () =
        let tbl, n =
          L.Engine.iterate eng ~max_rounds:cell.max_rounds ~tolerance:cell.tolerance
            ~merge:cell.merge ~name:"state" ~init:cell.init ~step:cell.step
        in
        rounds := n;
        final_rows := tbl.Lh_storage.Table.nrows
      in
      (* prime: builds the edge tries and warms the plan cache, so the
         measured runs see the steady state the repeated experiment
         established for one-shot queries *)
      go ();
      Gc.compact ();
      let outcome =
        C.measured ~budget ~runs:params.C.runs ~system:"levelheaded" ~sql:cell.step go
      in
      C.print_row cell.label
        [ C.outcome_to_string outcome; string_of_int !rounds; string_of_int !final_rows ];
      (cell.label, outcome, !rounds))
    cells
