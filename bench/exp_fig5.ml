(* Figure 5: the cost-estimation experiments.

   (a) intersection micro-benchmark across layouts — the source of the
       icost constants (run under Bechamel's OLS estimator);
   (b) SMM with the relaxed [i,k,j] order vs the naive [i,j,k] order:
       estimated cost, runtime, and peak heap;
   (c) four attribute orders for the expensive TPC-H Q5 node: estimated
       cost vs runtime. *)

module L = Levelheaded
module C = Common
module Set_ = Lh_set.Set
open Bechamel

(* ---------------- (a) ---------------- *)

let make_sets ~card ~dense seed =
  let rng = Lh_util.Prng.create seed in
  if dense then
    (* ~ half the positions of a 2*card range: bitset layout *)
    Set_.of_sorted_array ~layout:Set_.Dense
      (Array.init card (fun i -> (2 * i) + Lh_util.Prng.int rng 2))
  else
    (* spread over a 64x range: uint layout *)
    Set_.of_sorted_array ~layout:Set_.Sparse
      (Array.init card (fun i -> (64 * i) + Lh_util.Prng.int rng 32))

let fig5a_tests card =
  let uu1 = make_sets ~card ~dense:false 1 and uu2 = make_sets ~card ~dense:false 2 in
  let bb1 = make_sets ~card ~dense:true 3 and bb2 = make_sets ~card ~dense:true 4 in
  let bu = make_sets ~card ~dense:false 5 in
  [
    ( Printf.sprintf "uint∩uint/%d" card,
      Test.make ~name:(Printf.sprintf "uu-%d" card)
        (Staged.stage (fun () -> Lh_set.Intersect.inter uu1 uu2)) );
    ( Printf.sprintf "bs∩uint/%d" card,
      Test.make ~name:(Printf.sprintf "bu-%d" card)
        (Staged.stage (fun () -> Lh_set.Intersect.inter bb1 bu)) );
    ( Printf.sprintf "bs∩bs/%d" card,
      Test.make ~name:(Printf.sprintf "bb-%d" card)
        (Staged.stage (fun () -> Lh_set.Intersect.inter bb1 bb2)) );
  ]

let run_fig5a _params =
  let cards = [ 100_000; 1_000_000 ] in
  let tests = List.concat_map fig5a_tests cards in
  let grouped = Test.make_grouped ~name:"intersect" (List.map snd tests) in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  C.print_header "Figure 5a — set intersection kernels (Bechamel)" [ "ns/op"; "vs bs∩bs" ];
  let value name =
    Hashtbl.fold
      (fun k v acc -> if Filename.basename k = name || k = name then Some v else acc)
      results None
    |> Option.map (fun o -> match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> nan)
  in
  List.iter
    (fun card ->
      let get kind = Option.value (value (Printf.sprintf "%s-%d" kind card)) ~default:nan in
      let bb = get "bb" and bu = get "bu" and uu = get "uu" in
      C.print_row (Printf.sprintf "bs∩bs   card=%d" card) [ Printf.sprintf "%.0f" bb; "1.0x" ];
      C.print_row (Printf.sprintf "bs∩uint card=%d" card)
        [ Printf.sprintf "%.0f" bu; Printf.sprintf "%.1fx" (bu /. bb) ];
      C.print_row (Printf.sprintf "uu∩uint card=%d" card)
        [ Printf.sprintf "%.0f" uu; Printf.sprintf "%.1fx" (uu /. bb) ])
    cards;
  Printf.printf "(icost model assigns bs∩bs=1, bs∩uint=10, uint∩uint=50)\n"

(* ---------------- (b) ---------------- *)

(* Allocation pressure of one run, in MB (top_heap_words is monotone over
   the process lifetime, so a per-run peak is not observable; total
   allocation is the faithful proxy for the paper's memory column). *)
let alloc_mb f =
  let before = Gc.allocated_bytes () in
  let x = f () in
  ignore (Sys.opaque_identity x);
  (Gc.allocated_bytes () -. before) /. 1048576.0

let run_fig5b params =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let nlp = Lh_datagen.Matrices.nlpkkt_like ~dict ~scale:(0.0005 *. params.C.la_scale) () in
  L.Engine.register eng nlp.Lh_datagen.Matrices.table;
  let sql = Queries.smm ~matrix:"nlpkkt" in
  let budget =
    Lh_util.Budget.create ~max_live_words:params.C.mem_words ~max_seconds:params.C.timeout ()
  in
  let order_cost cfg =
    let saved = L.Engine.config eng in
    L.Engine.set_config eng cfg;
    let lq =
      L.Logical.translate (L.Engine.catalog eng) ~attribute_elimination:true
        (Lh_sql.Parser.parse sql)
    in
    let ghd = L.Ghd.plan lq ~heuristics:true in
    let pnode = L.Executor.physical cfg lq ~dense_of:(fun _ -> false) ghd in
    L.Engine.set_config eng saved;
    (pnode.L.Executor.porder, pnode.L.Executor.prelaxed, pnode.L.Executor.pcost)
  in
  let run_cfg label cfg =
    let saved = L.Engine.config eng in
    L.Engine.set_config eng { cfg with L.Config.budget };
    Fun.protect
      ~finally:(fun () -> L.Engine.set_config eng saved)
      (fun () ->
        let t =
          C.measured ~runs:params.C.runs ~system:label ~sql (fun () -> L.Engine.query eng sql)
        in
        let alloc =
          match t with
          | C.Time _ -> alloc_mb (fun () -> L.Engine.query eng sql)
          | _ -> 0.0
        in
        (t, alloc))
  in
  let relaxed_cfg = L.Config.default in
  let naive_cfg =
    { L.Config.default with attr_order = L.Config.Naive; relax_materialized_first = false }
  in
  C.print_header "Figure 5b — SMM attribute orders (nlpkkt-like)"
    [ "cost"; "runtime"; "alloc-MB" ];
  List.iter
    (fun (label, cfg) ->
      let order, relaxed, cost = order_cost cfg in
      let t, alloc = run_cfg label cfg in
      C.print_row
        (Printf.sprintf "%s %s%s" label
           (String.concat "," (List.map string_of_int order))
           (if relaxed then " (relaxed)" else ""))
        [ Printf.sprintf "%.0f" cost; C.outcome_to_string t; Printf.sprintf "%.1f" alloc ])
    [ ("[i,k,j]", relaxed_cfg); ("[i,j,k]", naive_cfg) ]

(* ---------------- (c) ---------------- *)

let run_fig5c params =
  let sf = List.fold_left Float.max 0.01 params.C.sfs in
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let tables = Lh_datagen.Tpch.generate ~dict ~sf ~seed:params.C.seed () in
  List.iter (L.Engine.register eng) tables;
  let cfg = L.Config.default in
  let lq =
    L.Logical.translate (L.Engine.catalog eng) ~attribute_elimination:true
      (Lh_sql.Parser.parse Queries.q5)
  in
  let ghd = L.Ghd.plan lq ~heuristics:true in
  let pnode = L.Executor.physical cfg lq ~dense_of:(fun _ -> false) ghd in
  let vid name =
    let rec go i =
      if i >= Array.length lq.L.Logical.vertices then failwith ("no vertex " ^ name)
      else if String.equal lq.L.Logical.vertices.(i).L.Logical.vname name then i
      else go (i + 1)
    in
    go 0
  in
  let o = vid "orderkey" and c = vid "custkey" and s = vid "suppkey" and n = vid "nationkey" in
  let rels = L.Executor.rel_infos lq ~dense_of:(fun _ -> false) pnode.L.Executor.pbag in
  let weights =
    L.Attr_order.vertex_weights
      (Array.to_list lq.L.Logical.edges
      |> List.map (fun (e : L.Logical.edge) ->
             {
               L.Attr_order.rvertices = e.L.Logical.vertices;
               rcard = e.L.Logical.table.Lh_storage.Table.nrows;
               reselected = e.L.Logical.eq_selected;
               rdense = false;
             }))
  in
  let cache : L.Executor.trie_cache = Hashtbl.create 16 in
  let budget =
    Lh_util.Budget.create ~max_live_words:params.C.mem_words ~max_seconds:params.C.timeout ()
  in
  let orders =
    (* the four orders of Fig. 5c: o = orderkey, c = custkey, s = suppkey,
       n = nationkey *)
    [
      ("[o,c,s,n]", [ o; c; s; n ]);
      ("[o,c,n,s]", [ o; c; n; s ]);
      ("[n,c,s,o]", [ n; c; s; o ]);
      ("[c,n,s,o]", [ c; n; s; o ]);
    ]
  in
  C.print_header (Printf.sprintf "Figure 5c — TPC-H Q5 attribute orders (sf=%g)" sf)
    [ "cost"; "runtime" ];
  List.iter
    (fun (label, order) ->
      let cost = L.Attr_order.cost ~rels ~weights order in
      let forced = { pnode with L.Executor.porder = order; prelaxed = false } in
      let run () = L.Executor.run { cfg with L.Config.budget } ~cache lq forced in
      let t = C.measured ~budget ~runs:params.C.runs ~system:label ~sql:Queries.q5 run in
      C.print_row label [ Printf.sprintf "%.0f" cost; C.outcome_to_string t ])
    orders
