(* Extra ablations beyond the paper's Table III, for the execution-path
   design choices DESIGN.md calls out: the sorted-emit / sparse-accumulator
   output path (vs hashing the output like a trie-materializing engine
   would) and the §V-A2 relaxation on its own. *)

module L = Levelheaded
module C = Common

let run params =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let harbor = Lh_datagen.Matrices.harbor_like ~dict ~scale:(0.04 *. params.C.la_scale) () in
  L.Engine.register eng harbor.Lh_datagen.Matrices.table;
  let n = harbor.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
  let hv, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"harbor_x" ~n () in
  L.Engine.register eng hv;
  let budget =
    Lh_util.Budget.create ~max_live_words:params.C.mem_words ~max_seconds:params.C.timeout ()
  in
  let run_cfg sysname cfg sql =
    let saved = L.Engine.config eng in
    L.Engine.set_config eng { cfg with L.Config.budget };
    Fun.protect
      ~finally:(fun () -> L.Engine.set_config eng saved)
      (fun () ->
        C.measured ~runs:params.C.runs ~system:sysname ~sql (fun () -> L.Engine.query eng sql))
  in
  let cases =
    [
      ("SMV harbor", Queries.smv ~matrix:"harbor" ~vector:"harbor_x");
      ("SMM harbor", Queries.smm ~matrix:"harbor");
    ]
  in
  let variants =
    [
      ("-sorted-emit", { L.Config.default with sorted_emit = false });
      ("-relaxation", { L.Config.default with relax_materialized_first = false });
      ("-both", { L.Config.default with sorted_emit = false; relax_materialized_first = false });
    ]
  in
  C.print_header "Execution-path ablations (extension)"
    ("LH" :: List.map fst variants);
  List.iter
    (fun (label, sql) ->
      let base = run_cfg "LevelHeaded" L.Config.default sql in
      let cells =
        C.outcome_to_string base
        :: List.map (fun (vname, cfg) -> C.relative ~baseline:base (run_cfg vname cfg sql)) variants
      in
      C.print_row label cells)
    cases
