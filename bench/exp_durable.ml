(* Durability experiment (bench durability): ingest throughput under each
   WAL sync discipline and restart-recovery time as the WAL grows.

   Part one stands up a service over a fresh store directory for each
   sync mode (always / group:8 / none) and pushes a fixed stream of
   ingest batches through the log-then-publish path; the cell reports
   wall time, batches/second and the WAL bytes written, with per-batch
   latencies as the samples. fsync cost is the whole story here: "always"
   pays one fsync per acknowledgement, "group:8" one per eight, "none"
   zero (page cache only).

   Part two seeds a WAL with N batches (no checkpoint, so recovery must
   replay the full suffix), closes the store, and times open_dir +
   replay_into a fresh engine. N spans 100 → 10_000 so the JSON records
   anchor both the per-record replay cost and the long-tail cell the
   regression gate watches. *)

module C = Common
module L = Levelheaded
module Json = Lh_obs.Json
module Timing = Lh_util.Timing
module Store = Lh_durable.Store
module Wal = Lh_durable.Wal
module Serve = Lh_serve.Serve

let ingest_batches = 200
let rows_per_batch = 64
let recovery_lengths = [ 100; 1_000; 10_000 ]

let schema =
  Lh_storage.Schema.create
    [ ("k", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
      ("v", Lh_storage.Dtype.Float, Lh_storage.Schema.Annotation) ]

let batch_rows g =
  List.init rows_per_batch (fun i ->
      [ Lh_storage.Dtype.VInt i;
        Lh_storage.Dtype.VFloat (float_of_int ((i * 7) + g) *. 0.5) ])

(* Alternating target tables so recovery exercises the last-write-wins
   replacement semantics rather than replaying one table repeatedly. *)
let batch_name g = "t" ^ string_of_int (g mod 4)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let path = Filename.temp_file "lh_bench_durable" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error (_, _, _) -> 0

let ingest_cell (label, sync) =
  with_temp_dir (fun dir ->
      let store, _ = Store.open_dir ~sync dir in
      let eng = L.Engine.create () in
      let cfg = { (L.Engine.config eng) with L.Config.domains = 1 } in
      let svc = Serve.create ~config:cfg ~store ~checkpoint_every:0 eng in
      let lats = Array.make ingest_batches 0.0 in
      let errors = ref 0 in
      let t0 = Timing.monotonic_now () in
      for g = 0 to ingest_batches - 1 do
        let s = Timing.monotonic_now () in
        (match Serve.ingest_rows svc ~name:(batch_name g) ~schema (batch_rows g) with
        | Ok _ -> ()
        | Error _ -> incr errors);
        lats.(g) <- Timing.monotonic_now () -. s
      done;
      let wall = Timing.monotonic_now () -. t0 in
      let wal_bytes = file_size (Store.wal_path store) in
      Serve.close svc;
      let per_sec = float_of_int ingest_batches /. wall in
      C.print_row
        (Printf.sprintf "ingest %-7s" label)
        [
          string_of_int ingest_batches;
          Timing.duration_to_string wall;
          Printf.sprintf "%.0f/s" per_sec;
          Printf.sprintf "%dKB wal/%de" (wal_bytes / 1024) !errors;
        ];
      C.record_cell
        ~system:(Printf.sprintf "durable@%s" label)
        ~sql:"ingest: fixed batch stream through the WAL-backed service"
        ~outcome:(C.Time wall) ~samples:(Array.to_list lats)
        ~extra:
          [
            ("sync", Json.String label);
            ("batches", Json.Int ingest_batches);
            ("rows_per_batch", Json.Int rows_per_batch);
            ("batches_per_second", Json.Float per_sec);
            ("wal_bytes", Json.Int wal_bytes);
            ("errors", Json.Int !errors);
          ]
        None;
      (label, per_sec))

let recovery_cell params n =
  with_temp_dir (fun dir ->
      (* Seed the WAL without fsync noise — the measured phase is recovery. *)
      let store, _ = Store.open_dir ~sync:Wal.Never dir in
      for g = 1 to n do
        ignore (Store.log_batch store ~name:(batch_name g) ~schema (batch_rows g))
      done;
      Store.close store;
      let recovered_seq = ref 0 in
      let recover () =
        let t0 = Timing.monotonic_now () in
        let store, rc = Store.open_dir dir in
        let eng = L.Engine.create () in
        Store.replay_into rc (fun ~name ~schema rows ->
            ignore (L.Engine.register_rows eng ~name ~schema rows));
        let wall = Timing.monotonic_now () -. t0 in
        recovered_seq := rc.Store.rc_seq;
        Store.close store;
        wall
      in
      let samples = List.init (max 1 params.C.runs) (fun _ -> recover ()) in
      let best = List.fold_left min infinity samples in
      let per_sec = float_of_int n /. best in
      C.print_row
        (Printf.sprintf "recover %6d" n)
        [
          string_of_int n;
          Timing.duration_to_string best;
          Printf.sprintf "%.0f/s" per_sec;
          Printf.sprintf "seq %d" !recovered_seq;
        ];
      C.record_cell
        ~system:(Printf.sprintf "recover@%d" n)
        ~sql:"recover: open_dir + full WAL suffix replay into a fresh engine"
        ~outcome:(C.Time best) ~samples
        ~extra:
          [
            ("wal_batches", Json.Int n);
            ("recovered_seq", Json.Int !recovered_seq);
            ("replay_batches_per_second", Json.Float per_sec);
          ]
        None;
      (n, best))

let run params =
  C.print_header "Durable ingest and restart recovery"
    [ "batches"; "wall"; "rate"; "detail" ];
  let ingest =
    List.map ingest_cell
      [ ("always", Wal.Always); ("group:8", Wal.Group 8); ("none", Wal.Never) ]
  in
  let recovery = List.map (recovery_cell params) recovery_lengths in
  (ingest, recovery)
