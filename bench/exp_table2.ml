(* Table II: runtime of the best engine per row and relative runtime of
   the others, over the TPC-H block and the LA block. *)

module L = Levelheaded
module C = Common

let bi_systems = [ C.Lh; C.Hyper_like; C.Monet_like; C.Lh_logicblox ]
let la_systems = [ C.Lh; C.Mkl_like; C.Hyper_like; C.Monet_like; C.Lh_logicblox ]

type cell_row = { label : string; outcomes : (C.system * C.outcome) list }

let print_block title systems rows =
  C.print_header title ("baseline" :: List.map C.system_name systems);
  List.iter
    (fun { label; outcomes } ->
      let baseline = C.best_of (List.map snd outcomes) in
      let cells =
        (match baseline with Some b -> C.outcome_to_string b | None -> "-")
        :: List.map (fun s -> C.relative ~baseline:(Option.value baseline ~default:C.Unsupported)
                        (List.assoc s outcomes))
          systems
      in
      C.print_row label cells)
    rows;
  rows

(* ---------------- BI ---------------- *)

let run_bi params =
  List.concat_map
    (fun sf ->
      let eng = L.Engine.create () in
      let dict = L.Engine.dict eng in
      let tables = Lh_datagen.Tpch.generate ~dict ~sf ~seed:params.C.seed () in
      List.iter (L.Engine.register eng) tables;
      List.map
        (fun (qname, sql) ->
          let outcomes = List.map (fun s -> (s, C.run_system eng params s sql)) bi_systems in
          { label = Printf.sprintf "%s sf=%g" qname sf; outcomes })
        Queries.tpch)
    params.C.sfs

(* ---------------- LA ---------------- *)

let sparse_datasets params dict =
  let s = params.C.la_scale in
  [
    ("harbor", Lh_datagen.Matrices.harbor_like ~dict ~scale:(0.04 *. s) ());
    ("hv15r", Lh_datagen.Matrices.hv15r_like ~dict ~scale:(0.0005 *. s) ());
    ("nlpkkt", Lh_datagen.Matrices.nlpkkt_like ~dict ~scale:(0.0005 *. s) ());
  ]

let run_la params =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let budget () =
    Lh_util.Budget.create ~max_live_words:params.C.mem_words ~max_seconds:params.C.timeout ()
  in
  (* sparse *)
  let sparse_rows =
    List.concat_map
      (fun (name, (m : Lh_datagen.Matrices.sparse)) ->
        L.Engine.register eng m.Lh_datagen.Matrices.table;
        let n = m.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
        let vec_name = name ^ "_x" in
        let vt, vec = Lh_datagen.Matrices.dense_vector ~dict ~name:vec_name ~n () in
        L.Engine.register eng vt;
        let csr = Lh_blas.Csr.of_coo m.Lh_datagen.Matrices.coo in
        let tname = m.Lh_datagen.Matrices.table.Lh_storage.Table.name in
        let smv_row =
          let sql = Queries.smv ~matrix:tname ~vector:vec_name in
          let outcomes =
            List.map
              (fun s ->
                ( s,
                  match s with
                  | C.Mkl_like ->
                      C.measured ~budget:(budget ()) ~runs:params.C.runs
                        ~system:(C.system_name C.Mkl_like) ~sql (fun () ->
                          Lh_blas.Csr.spmv csr vec)
                  | _ -> C.run_system eng params s sql ))
              la_systems
          in
          { label = Printf.sprintf "SMV %s" name; outcomes }
        in
        let smm_row =
          let sql = Queries.smm ~matrix:tname in
          let outcomes =
            List.map
              (fun s ->
                ( s,
                  match s with
                  | C.Mkl_like ->
                      C.measured ~budget:(budget ()) ~runs:params.C.runs
                        ~system:(C.system_name C.Mkl_like) ~sql (fun () ->
                          Lh_blas.Csr.spgemm csr csr)
                  | _ -> C.run_system eng params s sql ))
              la_systems
          in
          { label = Printf.sprintf "SMM %s" name; outcomes }
        in
        [ smv_row; smm_row ])
      (sparse_datasets params dict)
  in
  (* dense *)
  let dense_rows =
    List.concat_map
      (fun n ->
        let mname = Printf.sprintf "dense%d" n in
        let mt, md = Lh_datagen.Matrices.dense ~dict ~name:mname ~n () in
        L.Engine.register eng mt;
        let vt, vec = Lh_datagen.Matrices.dense_vector ~dict ~name:(mname ^ "_x") ~n () in
        L.Engine.register eng vt;
        let dmv_row =
          let sql = Queries.dmv ~matrix:mname ~vector:(mname ^ "_x") in
          let outcomes =
            List.map
              (fun s ->
                ( s,
                  match s with
                  | C.Mkl_like ->
                      C.measured ~budget:(budget ()) ~runs:params.C.runs
                        ~system:(C.system_name C.Mkl_like) ~sql (fun () ->
                          Lh_blas.Dense.gemv md vec)
                  | _ -> C.run_system eng params s sql ))
              la_systems
          in
          { label = Printf.sprintf "DMV %d" n; outcomes }
        in
        let dmm_row =
          let sql = Queries.dmm ~matrix:mname in
          let outcomes =
            List.map
              (fun s ->
                ( s,
                  match s with
                  | C.Mkl_like ->
                      C.measured ~budget:(budget ()) ~runs:params.C.runs
                        ~system:(C.system_name C.Mkl_like) ~sql (fun () ->
                          Lh_blas.Dense.gemm md md)
                  | _ -> C.run_system eng params s sql ))
              la_systems
          in
          { label = Printf.sprintf "DMM %d" n; outcomes }
        in
        [ dmv_row; dmm_row ])
      params.C.dense_sizes
  in
  (sparse_rows, dense_rows)

let run params =
  let bi = run_bi params in
  let bi = print_block "Table II — TPC-H (BI) block" bi_systems bi in
  let sparse, dense = run_la params in
  let la = print_block "Table II — Linear Algebra block" la_systems (sparse @ dense) in
  (bi, la)
