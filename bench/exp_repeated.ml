(* Repeated-query experiment: the cost of planning on a workload that
   re-runs the same query shapes, and what the plan cache / prepared
   statements buy back.

   Three arms per shape, all with hot tries (§VI-A protocol):
     cold      plan cache flushed before each run — full parse + translate
               + GHD + attribute ordering every time
     warm      plan cache enabled — parse + normalize + bind only
     prepared  Engine.prepare once, Stmt.exec per run — bind only

   Small data on purpose: with tries hot and results tiny, planning time
   dominates, which is exactly the regime the cache targets. The arms
   differ by tens of microseconds, so instead of timing each arm in its
   own block (where clock-frequency and allocator drift between blocks
   can swamp the difference) every measurement round takes one sample of
   each arm back to back and the trimmed means are compared per arm. *)

module C = Common
module L = Levelheaded

type shape = { sh_name : string; sh_sql : string }

let build params =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  List.iter (L.Engine.register eng)
    (Lh_datagen.Tpch.generate ~dict ~sf:0.0005 ~seed:params.C.seed ());
  let m =
    Lh_datagen.Matrices.banded ~dict ~name:"rep_m" ~n:256 ~nnz_per_row:4 ~seed:params.C.seed ()
  in
  L.Engine.register eng m.Lh_datagen.Matrices.table;
  let mname = m.Lh_datagen.Matrices.table.Lh_storage.Table.name in
  let n = m.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
  let vt, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"rep_x" ~n () in
  L.Engine.register eng vt;
  (eng, mname)

(* Same trim as Timing.measure: drop min and max, average the rest. *)
let trimmed samples =
  Array.sort Float.compare samples;
  let n = Array.length samples in
  let lo, hi = if n >= 3 then (1, n - 2) else (0, n - 1) in
  let sum = ref 0.0 in
  for i = lo to hi do
    sum := !sum +. samples.(i)
  done;
  !sum /. float_of_int (hi - lo + 1)

(* One warm-up pass, then [runs] rounds of one sample per arm. *)
let interleaved ~runs arms =
  List.iter (fun (_, f) -> f ()) arms;
  let samples = List.map (fun _ -> Array.make runs 0.0) arms in
  for r = 0 to runs - 1 do
    List.iter2
      (fun (_, f) buf ->
        let _, dt = Lh_util.Timing.time f in
        buf.(r) <- dt)
      arms samples
  done;
  List.map2 (fun (system, _) buf -> (system, C.Time (trimmed buf))) arms samples

let run params =
  let eng, mname = build params in
  let shapes =
    [
      { sh_name = "chain join (Q3)"; sh_sql = Queries.q3 };
      { sh_name = "M*x (SpMV)"; sh_sql = Queries.smv ~matrix:mname ~vector:"rep_x" };
    ]
  in
  (* Planning savings are tens of microseconds; the default 3-run trimmed
     mean is too noisy to resolve them, so this experiment takes more
     samples per cell than the big ones. *)
  let runs = max 25 params.C.runs in
  C.print_header "Repeated queries — planning amortization"
    [ "cold"; "warm"; "prepared"; "warm spd"; "prep spd" ];
  List.map
    (fun { sh_name; sh_sql } ->
      let cold () =
        L.Engine.reset_plan_cache eng;
        ignore (L.Engine.query eng sh_sql)
      in
      let warm () = ignore (L.Engine.query eng sh_sql) in
      let stmt = L.Engine.prepare eng sh_sql in
      let prepared () = ignore (L.Engine.Stmt.exec stmt []) in
      let arms = [ ("cold-plan", cold); ("warm-cache", warm); ("prepared", prepared) ] in
      let outcomes = interleaved ~runs arms in
      List.iter
        (fun (system, outcome) ->
          let f = List.assoc system arms in
          C.record_cell ~system ~sql:sh_sql ~outcome (C.instrumented_rerun f))
        outcomes;
      let o_cold = List.assoc "cold-plan" outcomes in
      let o_warm = List.assoc "warm-cache" outcomes in
      let o_prep = List.assoc "prepared" outcomes in
      let speedup a b =
        match (a, b) with
        | C.Time ta, C.Time tb when tb > 0.0 -> Printf.sprintf "%.2fx" (ta /. tb)
        | _ -> "-"
      in
      C.print_row sh_name
        [
          C.outcome_to_string o_cold;
          C.outcome_to_string o_warm;
          C.outcome_to_string o_prep;
          speedup o_cold o_warm;
          speedup o_cold o_prep;
        ];
      (sh_name, o_cold, o_warm, o_prep))
    shapes
