(* Table IV: the cost of converting a column-store matrix to the sparse
   BLAS CSR format (the mkl_scsrcoo-equivalent) versus LevelHeaded's
   trie-native SMV time, and the ratio — how many SMV queries LevelHeaded
   answers while a column store is still converting. *)

module L = Levelheaded
module C = Common

let run params =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let datasets = Exp_table2.sparse_datasets params dict in
  C.print_header "Table IV — conversion cost vs SMV" [ "conversion"; "SMV (LH)"; "ratio" ];
  List.map
    (fun (name, (m : Lh_datagen.Matrices.sparse)) ->
      L.Engine.register eng m.Lh_datagen.Matrices.table;
      let n = m.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
      let vt, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:(name ^ "_x") ~n () in
      L.Engine.register eng vt;
      let conv =
        C.measured ~runs:params.C.runs ~system:"CSR conversion"
          ~sql:(Printf.sprintf "csr_of_coo(%s)" name) (fun () ->
            Lh_blas.Csr.of_coo m.Lh_datagen.Matrices.coo)
      in
      let tname = m.Lh_datagen.Matrices.table.Lh_storage.Table.name in
      let smv_sql = Queries.smv ~matrix:tname ~vector:(name ^ "_x") in
      let smv =
        let thunk domains () =
          let saved = L.Engine.config eng in
          L.Engine.set_config eng { saved with L.Config.domains = domains };
          Fun.protect
            ~finally:(fun () -> L.Engine.set_config eng saved)
            (fun () -> ignore (L.Engine.query eng smv_sql))
        in
        let domains = max 1 params.C.domains in
        C.measured ~runs:params.C.runs ~domains
          ?sequential:(if domains > 1 then Some (thunk 1) else None)
          ~system:"LevelHeaded" ~sql:smv_sql (thunk domains)
      in
      let ratio =
        match (conv, smv) with
        | C.Time c, C.Time s when s > 0.0 -> Printf.sprintf "%.2f" (c /. s)
        | _ -> "-"
      in
      C.print_row name [ C.outcome_to_string conv; C.outcome_to_string smv; ratio ];
      (name, conv, smv))
    datasets
