(* Shared benchmark infrastructure: engine setup, the paper's measurement
   protocol, and table rendering. *)

module L = Levelheaded
module Budget = Lh_util.Budget
module Timing = Lh_util.Timing

type params = {
  sfs : float list;  (* TPC-H scale factors *)
  la_scale : float;  (* multiplier on the default matrix scales *)
  dense_sizes : int list;
  runs : int;
  timeout : float;  (* per-measurement budget, seconds *)
  mem_words : int;  (* per-measurement live-word budget *)
  seed : int;
  domains : int;  (* worker domains for the LevelHeaded configurations *)
  concurrency : int list;  (* client counts for the serve experiment *)
}

let default_params =
  {
    sfs = [ 0.01; 0.05 ];
    la_scale = 1.0;
    dense_sizes = [ 96; 128; 192 ];
    runs = 3;
    timeout = 60.0;
    mem_words = 250_000_000;
    seed = 42;
    domains = 1;
    concurrency = [ 1; 2; 4; 8 ];
  }

type outcome = Time of float | Oom | Timeout | Unsupported

let outcome_to_string = function
  | Time t -> Timing.duration_to_string t
  | Oom -> "oom"
  | Timeout -> "t/o"
  | Unsupported -> "-"

let relative ~baseline = function
  | Time t -> (
      match baseline with
      | Time b when b > 0.0 -> Printf.sprintf "%.2fx" (t /. b)
      | _ -> Timing.duration_to_string t)
  | o -> outcome_to_string o

(* §VI-A protocol: one warm-up run (index construction excluded via the
   trie cache), then [runs] hot measurements with min/max trimmed (the
   same trimmed mean as [Timing.measure]). A budget violation on any run
   reports oom / t/o. Also returns the raw per-run samples so cells can
   report latency percentiles, not just the mean. *)
let measure_samples ?budget ~runs f =
  let budget = Option.value budget ~default:Budget.unlimited in
  Budget.start budget;
  match f () with
  | exception Budget.Out_of_memory_budget -> (Oom, [])
  | exception Budget.Timed_out -> (Timeout, [])
  | _ -> (
      let samples = ref [] in
      let run () =
        Budget.start budget;
        let t0 = Timing.monotonic_now () in
        ignore (Sys.opaque_identity (f ()));
        samples := (Timing.monotonic_now () -. t0) :: !samples
      in
      match
        for _ = 1 to max 1 runs do
          run ()
        done
      with
      | () ->
          let xs = List.rev !samples in
          let kept =
            if List.length xs >= 3 then
              (* drop the fastest and the slowest run *)
              match List.sort compare xs with
              | _fastest :: rest -> (
                  match List.rev rest with _slowest :: mid -> mid | [] -> [])
              | [] -> []
            else xs
          in
          let mean = List.fold_left ( +. ) 0.0 kept /. float_of_int (List.length kept) in
          (Time mean, xs)
      | exception Budget.Out_of_memory_budget -> (Oom, List.rev !samples)
      | exception Budget.Timed_out -> (Timeout, List.rev !samples))

let measure ?budget ~runs f = fst (measure_samples ?budget ~runs f)

(* ---------------- engines over one dataset ---------------- *)

type system = Lh | Lh_logicblox | Hyper_like | Monet_like | Mkl_like

let system_name = function
  | Lh -> "LevelHeaded"
  | Lh_logicblox -> "LogicBlox-like"
  | Hyper_like -> "HyPer-like"
  | Monet_like -> "MonetDB-like"
  | Mkl_like -> "MKL-like"

(* ---------------- JSON telemetry sink ----------------

   When [json_out] is set (bench --json FILE), every measured cell also
   performs one extra instrumented hot run and appends a record with the
   per-phase span breakdown and counter deltas, so the paper tables can
   be decomposed into planning / trie building / WCOJ / BLAS time. *)

module Json = Lh_obs.Json

let json_out : string option ref = ref None
let current_experiment = ref ""
let json_records : Json.t list ref = ref []

let record_cell ?domains ?seq_report ?(samples = []) ?(extra = []) ~system ~sql ~outcome report =
  if !json_out <> None then begin
    let open Lh_obs in
    let base =
      [
        ("experiment", Json.String !current_experiment);
        ("system", Json.String system);
        ("sql", Json.String sql);
        ("outcome", Json.String (outcome_to_string outcome));
      ]
    in
    let domains_field =
      match domains with None -> [] | Some d -> [ ("domains", Json.Int d) ]
    in
    let timing = match outcome with Time t -> [ ("seconds", Json.Float t) ] | _ -> [] in
    (* Per-cell latency percentiles over the raw hot-run samples, via a
       local (unregistered) log2 histogram. *)
    let latency =
      match samples with
      | [] -> []
      | _ ->
          let h = Hist.make () in
          List.iter (Hist.observe_always h) samples;
          [ ("latency", Hist.stats_json (Hist.snapshot h)) ]
    in
    let telemetry =
      match report with
      | None -> []
      | Some (r : Report.t) ->
          [
            ("analyzed_seconds", Json.Float r.Report.total_s);
            ( "phases",
              Json.Obj (List.map (fun (n, d) -> (n, Json.Float d)) (Report.phases r)) );
            ( "counters",
              Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) r.Report.counters) );
            ( "histograms",
              Json.Obj (List.map (fun (n, s) -> (n, Hist.stats_json s)) r.Report.hists) );
          ]
    in
    (* Parallel speedup decomposition: when the cell also ran instrumented
       at domains=1, report the end-to-end and per-phase sequential/parallel
       time ratios (only phases present in both runs, e.g. trie building,
       WCOJ execution, BLAS kernels). *)
    let speedups =
      match (report, seq_report) with
      | Some (par : Report.t), Some (seq : Report.t) when par.Report.total_s > 0.0 ->
          let par_phases = Report.phases par in
          let phase_speedups =
            List.filter_map
              (fun (n, seq_d) ->
                match List.assoc_opt n par_phases with
                | Some par_d when par_d > 0.0 -> Some (n, Json.Float (seq_d /. par_d))
                | _ -> None)
              (Report.phases seq)
          in
          [
            ("sequential_seconds", Json.Float seq.Report.total_s);
            ("speedup", Json.Float (seq.Report.total_s /. par.Report.total_s));
            ("phase_speedups", Json.Obj phase_speedups);
          ]
      | _ -> []
    in
    json_records :=
      Json.Obj (base @ domains_field @ timing @ latency @ telemetry @ speedups @ extra)
      :: !json_records
  end

let records_json () = Json.List (List.rev !json_records)

let write_json () =
  match !json_out with
  | None -> ()
  | Some path ->
      Lh_obs.Report.write_file path (Json.List (List.rev !json_records));
      Printf.eprintf "wrote per-query telemetry JSON to %s\n%!" path

let instrumented_rerun f =
  match !json_out with
  | None -> None
  | Some _ -> (
      match Lh_obs.Report.with_session f with
      | x, r ->
          ignore (Sys.opaque_identity x);
          Some r
      | exception (Budget.Out_of_memory_budget | Budget.Timed_out) -> None)

(* [measure], plus — when --json is active and the cell succeeded — one
   extra instrumented hot run recorded under [system] / [sql]. When
   [sequential] is given (the same cell pinned to domains=1), it too runs
   instrumented so the record carries speedup columns. *)
let measured ?budget ~runs ?domains ?sequential ~system ~sql f =
  let outcome, samples = measure_samples ?budget ~runs f in
  let report = match outcome with Time _ -> instrumented_rerun f | _ -> None in
  let seq_report =
    match (report, sequential) with
    | Some _, Some fseq -> instrumented_rerun fseq
    | _ -> None
  in
  record_cell ?domains ?seq_report ~samples ~system ~sql ~outcome report;
  outcome

(* Run [sql] on [system] against the master engine. Engine configs are
   swapped in place; the trie cache is content-addressed so configurations
   share only identical tries. *)
let run_system eng params system sql =
  let budget = Budget.create ~max_live_words:params.mem_words ~max_seconds:params.timeout () in
  let lookup n = L.Catalog.find_exn (L.Engine.catalog eng) n in
  let with_cfg cfg f =
    let saved = L.Engine.config eng in
    L.Engine.set_config eng { cfg with L.Config.budget } ;
    Fun.protect ~finally:(fun () -> L.Engine.set_config eng saved) f
  in
  (* One hot run of the cell, as a thunk shared by the measurement loop
     and the instrumented telemetry rerun. LevelHeaded configurations run
     at [params.domains]; when that is > 1 a domains=1 twin of the thunk
     feeds the speedup columns of the JSON record. *)
  let lh_thunk base ~domains () =
    with_cfg { base with L.Config.domains } (fun () -> ignore (L.Engine.query eng sql))
  in
  let lh_pair base =
    ( lh_thunk base ~domains:params.domains,
      if params.domains > 1 then Some (lh_thunk base ~domains:1) else None )
  in
  let once, sequential, domains =
    match system with
    | Lh ->
        let f, s = lh_pair L.Config.default in
        (Some f, s, Some params.domains)
    | Lh_logicblox ->
        let f, s = lh_pair L.Config.logicblox_like in
        (Some f, s, Some params.domains)
    | Hyper_like ->
        let ast = Lh_sql.Parser.parse sql in
        ( Some
            (fun () ->
              ignore
                (Lh_baseline.Pairwise.query ~lookup ~mode:Lh_baseline.Pairwise.Pipelined ~budget
                   ast)),
          None,
          None )
    | Monet_like ->
        let ast = Lh_sql.Parser.parse sql in
        ( Some
            (fun () ->
              ignore
                (Lh_baseline.Pairwise.query ~lookup
                   ~mode:Lh_baseline.Pairwise.Materializing ~budget ast)),
          None,
          None )
    | Mkl_like -> (None, None, None)
  in
  match once with
  | None ->
      record_cell ~system:(system_name system) ~sql ~outcome:Unsupported None;
      Unsupported
  | Some f ->
      measured ~runs:params.runs ?domains ?sequential ~system:(system_name system) ~sql f

(* ---------------- table rendering ---------------- *)

let print_header title columns =
  Printf.printf "\n%s\n" title;
  let line = String.make (String.length title) '=' in
  Printf.printf "%s\n" line;
  Printf.printf "%-22s" "";
  List.iter (fun c -> Printf.printf "%14s" c) columns;
  print_newline ()

let print_row label cells =
  Printf.printf "%-22s" label;
  List.iter (fun c -> Printf.printf "%14s" c) cells;
  print_newline ()

(* baseline = fastest Time cell, as in Table II *)
let best_of outcomes =
  List.fold_left
    (fun acc o -> match (acc, o) with
      | None, Time t -> Some (Time t)
      | Some (Time b), Time t when t < b -> Some (Time t)
      | acc, _ -> acc)
    None outcomes

let geomean xs =
  match xs with
  | [] -> nan
  | _ -> exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))
