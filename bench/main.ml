(* Benchmark driver: one target per table/figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- table2-bi fig5a --sf 0.01 --runs 3
*)

module C = Common

let fig1 bi la =
  (* Figure 1: relative performance on BI vs LA, per engine — the
     geometric-mean slowdown vs the per-row best. *)
  let slowdowns rows system =
    List.filter_map
      (fun { Exp_table2.outcomes; _ } ->
        match (C.best_of (List.map snd outcomes), List.assoc_opt system outcomes) with
        | Some (C.Time b), Some (C.Time t) when b > 0.0 -> Some (t /. b)
        | _ -> None)
      rows
  in
  C.print_header "Figure 1 — geometric-mean slowdown vs best (BI, LA)" [ "BI"; "LA" ];
  List.iter
    (fun s ->
      let cell rows =
        match slowdowns rows s with
        | [] -> "-"
        | xs -> Printf.sprintf "%.2fx" (C.geomean xs)
      in
      C.print_row (C.system_name s) [ cell bi; cell la ])
    [ C.Lh; C.Hyper_like; C.Monet_like; C.Lh_logicblox; C.Mkl_like ]

let all_ids = [ "table2-bi"; "table2-la"; "table3"; "table4"; "fig1"; "fig5a"; "fig5b"; "fig5c"; "fig6"; "ablations"; "repeated"; "concurrency"; "layouts"; "graph"; "durability" ]

let run_ids params ids =
  let wants id = List.mem id ids in
  let tagged id f =
    C.current_experiment := id;
    f ()
  in
  let table2 = ref None in
  let ensure_table2 () =
    match !table2 with
    | Some r -> r
    | None ->
        let r = tagged "table2" (fun () -> Exp_table2.run params) in
        table2 := Some r;
        r
  in
  if wants "table2-bi" || wants "table2-la" then ignore (ensure_table2 ());
  if wants "table3" then tagged "table3" (fun () -> ignore (Exp_table3.run params));
  if wants "table4" then tagged "table4" (fun () -> ignore (Exp_table4.run params));
  if wants "fig1" then begin
    let bi, la = ensure_table2 () in
    fig1 bi la
  end;
  if wants "fig5a" then tagged "fig5a" (fun () -> Exp_fig5.run_fig5a params);
  if wants "fig5b" then tagged "fig5b" (fun () -> Exp_fig5.run_fig5b params);
  if wants "fig5c" then tagged "fig5c" (fun () -> Exp_fig5.run_fig5c params);
  if wants "fig6" then tagged "fig6" (fun () -> ignore (Exp_fig6.run params));
  if wants "ablations" then tagged "ablations" (fun () -> Exp_ablations.run params);
  if wants "repeated" then tagged "repeated" (fun () -> ignore (Exp_repeated.run params));
  if wants "concurrency" then tagged "concurrency" (fun () -> ignore (Exp_serve.run params));
  if wants "layouts" then tagged "layouts" (fun () -> ignore (Exp_layouts.run params));
  if wants "graph" then tagged "graph" (fun () -> ignore (Exp_graph.run params));
  if wants "durability" then tagged "durability" (fun () -> ignore (Exp_durable.run params));
  C.write_json ()

(* ---------------- smoke: one query per experiment family, telemetry on,
   fail if any expected counter is absent (CI wiring: see ci.sh) -------- *)

let smoke params =
  let module L = Levelheaded in
  let module Report = Lh_obs.Report in
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  List.iter (L.Engine.register eng)
    (Lh_datagen.Tpch.generate ~dict ~sf:0.002 ~seed:params.C.seed ());
  let m = Lh_datagen.Matrices.harbor_like ~dict ~scale:0.005 ~seed:params.C.seed () in
  L.Engine.register eng m.Lh_datagen.Matrices.table;
  let mname = m.Lh_datagen.Matrices.table.Lh_storage.Table.name in
  let n = m.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
  let vt, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"smoke_x" ~n () in
  L.Engine.register eng vt;
  let dt, _ = Lh_datagen.Matrices.dense ~dict ~name:"smoke_dense" ~n:16 () in
  L.Engine.register eng dt;
  let reports = ref [] in
  let analyze label sql =
    let result, _, rep = L.Engine.query_analyze eng sql in
    Printf.printf "smoke %-24s %6d rows  %s\n%!" label result.Lh_storage.Table.nrows
      (Lh_util.Timing.duration_to_string rep.Report.total_s);
    reports := (label, rep) :: !reports
  in
  (* table2-bi: the scan path (Q1) and a join (Q3). *)
  analyze "table2-bi/scan" Queries.q1;
  analyze "table2-bi/join" Queries.q3;
  (* table2-la / table4: sparse WCOJ kernel, twice — the second run must
     hit the trie cache (§VI-A hot-run protocol). *)
  let smv = Queries.smv ~matrix:mname ~vector:"smoke_x" in
  analyze "table2-la/smv-cold" smv;
  analyze "table2-la/smv-hot" smv;
  (* fig5/fig6: dense kernel through the BLAS path. *)
  analyze "fig5/dmm-blas" (Queries.dmm ~matrix:"smoke_dense");
  (* layouts: count-only WCOJ leaves over distinct-key cycles. The dense
     16x16 matrix keeps every trie set in the bitset layout (bs∩bs plus
     buffered intersections at the outer positions); the strided sparse
     edge list stays uint (merge/gallop count kernels). *)
  let edge_schema =
    Lh_storage.Schema.create
      [ ("row", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
        ("col", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
        ("v", Lh_storage.Dtype.Float, Lh_storage.Schema.Annotation) ]
  in
  ignore
    (L.Engine.register_rows eng ~name:"smoke_edge_s" ~schema:edge_schema
       (List.init 60 (fun k ->
            [ Lh_storage.Dtype.VInt (k * 97 mod 1999);
              Lh_storage.Dtype.VInt (((k * 53) + 7) mod 1999);
              Lh_storage.Dtype.VFloat (float_of_int (k mod 5)) ])));
  analyze "layouts/tri-dense" (Exp_layouts.triangle_sql "smoke_dense");
  analyze "layouts/tri-sparse" (Exp_layouts.triangle_sql "smoke_edge_s");
  (* table3/ablations: the LogicBlox-like configuration of the engine. *)
  let saved = L.Engine.config eng in
  L.Engine.set_config eng Levelheaded.Config.logicblox_like;
  analyze "table3/ablated" Queries.q3;
  L.Engine.set_config eng saved;
  (* repeated: the same query twice through the plan cache — the second
     run must hit and skip GHD selection + attribute ordering. *)
  L.Engine.reset_plan_cache eng;
  analyze "plancache/cold" Queries.q3;
  analyze "plancache/warm" Queries.q3;
  (* slow-query log: threshold 0 logs every query; the JSONL lines must
     parse back through lib/obs/json.ml with an "ok" outcome. *)
  let slow_lines = ref [] in
  L.Engine.set_profile_sink eng
    (Some (fun p -> slow_lines := L.Profile.to_string p :: !slow_lines));
  let saved = L.Engine.config eng in
  L.Engine.set_config eng { saved with L.Config.slow_log_ms = 0.0 };
  analyze "slowlog/scan" Queries.q1;
  L.Engine.set_config eng saved;
  L.Engine.set_profile_sink eng None;
  (* parallel execution: one cell per family at domains=2. The reports
     must show the pool engaged (exec.domains_used >= 2; pool.tasks > 0
     for the WCOJ cells — the tiny dense matrix fits one GEMM block, so
     the BLAS cell only asserts the gauge). *)
  (* baselines (Table II comparison columns) — run before the parallel
     cells so no worker domain exists yet (see the coverage check). *)
  let lookup nm = L.Catalog.find_exn (L.Engine.catalog eng) nm in
  let ast = Lh_sql.Parser.parse Queries.q3 in
  let (_ : Lh_storage.Dtype.value list list), rep =
    Report.with_session (fun () ->
        Lh_baseline.Pairwise.query ~lookup ~mode:Lh_baseline.Pairwise.Pipelined ast)
  in
  reports := ("baseline/pairwise", rep) :: !reports;
  (* serving: a tiny service over its own engine (the service owns the
     engine it wraps). Open/reject sessions, query sync and async, and
     publish two epochs so admission, queue-wait, publish and retire all
     tick their serve.* / epoch.* telemetry. *)
  let bad_serve = ref [] in
  (let module Serve = Lh_serve.Serve in
   let serve_eng = L.Engine.create () in
   let serve_schema =
     Lh_storage.Schema.create
       [ ("k", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
         ("v", Lh_storage.Dtype.Float, Lh_storage.Schema.Annotation) ]
   in
   let serve_rows g =
     List.init 8 (fun i ->
         [ Lh_storage.Dtype.VInt i; Lh_storage.Dtype.VFloat (float_of_int (i * g)) ])
   in
   ignore (L.Engine.register_rows serve_eng ~name:"serve_t" ~schema:serve_schema (serve_rows 1));
   let fail fmt = Printf.ksprintf (fun m -> bad_serve := m :: !bad_serve) fmt in
   let (), srep =
     Report.with_session (fun () ->
         let svc = Serve.create ~max_sessions:1 serve_eng in
         let s = Serve.open_session svc in
         (match Serve.open_session svc with
         | exception Serve.Error (Serve.Overloaded _) -> ()
         | _ -> fail "serve: second session admitted at max_sessions=1");
         let sql = "select sum(v) as s from serve_t" in
         (match Serve.query s sql with
         | Ok _ -> ()
         | Error e -> fail "serve: sync query failed: %s" (Serve.error_to_string e));
         (match Serve.await (Serve.submit s sql) with
         | Ok _ -> ()
         | Error e -> fail "serve: async query failed: %s" (Serve.error_to_string e));
         List.iter
           (fun g ->
             match Serve.ingest_rows svc ~name:"serve_t" ~schema:serve_schema (serve_rows g) with
             | Ok _ -> ()
             | Error e -> fail "serve: ingest %d failed: %s" g (Serve.error_to_string e))
           [ 2; 3 ];
         (match Serve.query s sql with
         | Ok t when t.Lh_storage.Table.nrows = 1 -> ()
         | Ok _ -> fail "serve: post-ingest query shape wrong"
         | Error e -> fail "serve: post-ingest query failed: %s" (Serve.error_to_string e));
         Serve.close svc)
   in
   Printf.printf "smoke %-24s %6d rows  %s\n%!" "serve/service" 1
     (Lh_util.Timing.duration_to_string srep.Report.total_s);
   if not (List.mem_assoc "serve.queue_wait" srep.Report.hists) then
     fail "serve: serve.queue_wait histogram absent from report";
   reports := ("serve/service", srep) :: !reports);
  (* durability: a scripted ingest → torn-tail "kill" → recover cycle over
     a throwaway store directory. Three batches (Group 2 sync) with a
     checkpoint after the second, then garbage appended to the WAL — a
     torn in-flight record, what a SIGKILL mid-append leaves behind — then
     restart recovery: checkpoint + suffix replay must land on the last
     acknowledged batch and truncate the torn tail. *)
  let bad_durable = ref [] in
  (let module Serve = Lh_serve.Serve in
   let module Store = Lh_durable.Store in
   let fail fmt = Printf.ksprintf (fun m -> bad_durable := m :: !bad_durable) fmt in
   let d_schema =
     Lh_storage.Schema.create
       [ ("k", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
         ("v", Lh_storage.Dtype.Float, Lh_storage.Schema.Annotation) ]
   in
   let d_rows g =
     List.init 8 (fun i ->
         [ Lh_storage.Dtype.VInt i; Lh_storage.Dtype.VFloat (float_of_int (i * g)) ])
   in
   let (), drep =
     Report.with_session (fun () ->
         Exp_durable.with_temp_dir (fun dir ->
             let store, _ = Store.open_dir ~sync:(Lh_durable.Wal.Group 2) dir in
             let d_eng = L.Engine.create () in
             let svc = Serve.create ~store ~checkpoint_every:2 d_eng in
             List.iter
               (fun g ->
                 match Serve.ingest_rows svc ~name:"durable_t" ~schema:d_schema (d_rows g) with
                 | Ok _ -> ()
                 | Error e -> fail "durable: ingest %d failed: %s" g (Serve.error_to_string e))
               [ 1; 2; 3 ];
             let wal = Store.wal_path store in
             Serve.close svc;
             let fd = Unix.openfile wal [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
             ignore (Unix.write fd (Bytes.make 32 '\xff') 0 32);
             Unix.close fd;
             let store, rc = Store.open_dir dir in
             if not rc.Store.rc_torn then fail "durable: torn WAL tail not detected";
             if rc.Store.rc_seq <> 3 then fail "durable: recovered seq %d (want 3)" rc.Store.rc_seq;
             if rc.Store.rc_checkpoint_seq <> 2 then
               fail "durable: checkpoint seq %d (want 2)" rc.Store.rc_checkpoint_seq;
             let r_eng = L.Engine.create () in
             Store.replay_into rc (fun ~name ~schema rows ->
                 ignore (L.Engine.register_rows r_eng ~name ~schema rows));
             Store.close store;
             match L.Engine.query r_eng "select sum(v) as s from durable_t" with
             | t when t.Lh_storage.Table.nrows = 1 ->
                 (* last acknowledged batch is g=3: sum(i*3, i<8) = 84 *)
                 let v = Lh_storage.Table.number t 0 0 in
                 if Float.abs (v -. 84.0) > 1e-9 then
                   fail "durable: recovered sum %.17g (want 84)" v
             | t -> fail "durable: recovered query returned %d rows" t.Lh_storage.Table.nrows
             | exception e -> fail "durable: recovered query raised %s" (Printexc.to_string e)))
   in
   Printf.printf "smoke %-24s %6d rows  %s\n%!" "durable/recover" 1
     (Lh_util.Timing.duration_to_string drep.Report.total_s);
   if not (List.mem_assoc "recover.replay" drep.Report.hists) then
     fail "durable: recover.replay histogram absent from report";
   reports := ("durable/recover", drep) :: !reports);
  let par_reports = ref [] in
  let saved = L.Engine.config eng in
  L.Engine.set_config eng { saved with L.Config.domains = 2 };
  let analyze_par label sql =
    let result, _, rep = L.Engine.query_analyze eng sql in
    Printf.printf "smoke %-24s %6d rows  %s\n%!" label result.Lh_storage.Table.nrows
      (Lh_util.Timing.duration_to_string rep.Report.total_s);
    par_reports := (label, rep) :: !par_reports;
    reports := (label, rep) :: !reports
  in
  analyze_par "parallel/join@2" Queries.q3;
  analyze_par "parallel/smv@2" smv;
  analyze_par "parallel/dmm-blas@2" (Queries.dmm ~matrix:"smoke_dense");
  L.Engine.set_config eng saved;
  (* ---- assertions ---- *)
  let reports = !reports in
  let sum name =
    List.fold_left
      (fun acc ((_, r) : string * Report.t) ->
        acc + Option.value (List.assoc_opt name r.Report.counters) ~default:0)
      0 reports
  in
  let present name =
    List.exists (fun ((_, r) : string * Report.t) -> List.mem_assoc name r.Report.counters) reports
  in
  let required =
    [
      "trie_cache.hit"; "trie_cache.miss"; "trie.built"; "wcoj.intersections";
      "wcoj.leaf_ticks"; "scan.rows_scanned"; "rows.emitted"; "blas.dispatch";
      "budget.ticks"; "dense_cache.hit"; "dense_cache.miss"; "baseline.hash_builds";
      "baseline.rows_joined"; "exec.domains_used"; "gc.peak_live_words";
      "pool.tasks"; "pool.chunks"; "pool.workers"; "plan_cache.hit"; "plan_cache.miss";
      "profile.records"; "slowlog.lines"; "serve.sessions"; "serve.queries";
      "serve.admitted"; "serve.rejected"; "serve.ingests"; "epoch.published";
      "epoch.retired"; "set.inter.bb"; "set.inter.bu"; "set.inter.uu";
      "set.count_only"; "set.buffer_reuse";
      "wal.appended"; "wal.bytes"; "wal.fsyncs"; "wal.replayed"; "wal.truncated";
      "wal.checkpoints"; "recover.opens"; "recover.replayed";
      "recover.checkpoint_tables"; "recover.torn_tails";
    ]
  in
  let missing = List.filter (fun nm -> not (present nm)) required in
  (* Counters that this smoke workload must actually exercise. *)
  let must_be_nonzero =
    [
      "trie_cache.hit"; "trie_cache.miss"; "trie.built"; "wcoj.intersections";
      "scan.rows_scanned"; "rows.emitted"; "blas.dispatch"; "baseline.hash_builds";
      "baseline.rows_joined"; "gc.peak_live_words"; "plan_cache.hit"; "plan_cache.miss";
      "profile.records"; "slowlog.lines"; "serve.sessions"; "serve.queries";
      "serve.admitted"; "serve.rejected"; "serve.ingests"; "epoch.published";
      "epoch.retired"; "set.inter.bb"; "set.inter.bu"; "set.inter.uu";
      "set.count_only"; "set.buffer_reuse";
      "wal.appended"; "wal.fsyncs"; "wal.replayed"; "recover.opens";
      "recover.replayed"; "recover.torn_tails";
    ]
  in
  let zero = List.filter (fun nm -> present nm && sum nm = 0) must_be_nonzero in
  (* Phase coverage: spans of the analyzed runs must account for most of
     the measured total. Asserted on the cells that run before any worker
     domain exists: once a second domain is alive, scheduler and
     stop-the-world gaps on these sub-millisecond runs land between spans
     and make the ratio flaky — the parallel cells (which run last) are
     held to the counter assertions below instead. *)
  let bad_coverage =
    List.filter_map
      (fun ((label, r) : string * Report.t) ->
        let accounted = List.fold_left (fun a (_, d) -> a +. d) 0.0 (Report.phases r) in
        let skipped prefix =
          String.length label >= String.length prefix
          && String.sub label 0 (String.length prefix) = prefix
        in
        (* serve/ cells spend real time in service bookkeeping (admission,
           epoch bookkeeping) outside engine spans, by design; durable/ is
           dominated by WAL/checkpoint file IO, also unspanned; the layouts/
           triangles are cold sub-millisecond runs where GHD search for the
           3-cycle dominates and span coverage is noise *)
        (* the 0.5ms floor: under it (e.g. the ~200us BLAS cell) fixed
           per-span overheads and scheduler noise dominate the ratio *)
        if (not (skipped "parallel/" || skipped "serve/" || skipped "layouts/" || skipped "durable/"))
           && r.Report.total_s > 5e-4
           && accounted < 0.9 *. r.Report.total_s
        then
          Some (Printf.sprintf "%s: phases cover %.0f%% of %s" label
                  (100. *. accounted /. r.Report.total_s)
                  (Lh_util.Timing.duration_to_string r.Report.total_s))
        else None)
      reports
  in
  (* Parallel assertions on the domains=2 cells. *)
  let counter_of (r : Report.t) name = Option.value (List.assoc_opt name r.Report.counters) ~default:0 in
  (* Plan-cache assertions: the warm run must be a hit and must not have
     re-planned (no GHD / attribute-ordering spans in its trace). *)
  let bad_plancache =
    match List.assoc_opt "plancache/warm" reports with
    | None -> [ "plancache/warm report missing" ]
    | Some (r : Report.t) ->
        let problems = ref [] in
        if counter_of r "plan_cache.hit" < 1 then
          problems :=
            Printf.sprintf "plancache/warm: plan_cache.hit = %d (want >= 1)"
              (counter_of r "plan_cache.hit")
            :: !problems;
        List.iter
          (fun (s : Lh_obs.Obs.span) ->
            if s.Lh_obs.Obs.sname = "plan.ghd" || s.Lh_obs.Obs.sname = "plan.attr_order" then
              problems :=
                Printf.sprintf "plancache/warm: span %s present (query was re-planned)"
                  s.Lh_obs.Obs.sname
                :: !problems)
          r.Report.spans;
        !problems
  in
  let bad_parallel =
    List.concat_map
      (fun (label, (r : Report.t)) ->
        let problems = ref [] in
        if counter_of r "exec.domains_used" < 2 then
          problems :=
            Printf.sprintf "%s: exec.domains_used = %d (want >= 2)" label
              (counter_of r "exec.domains_used")
            :: !problems;
        if
          (* Both WCOJ cells must actually run chunks on the pool. *)
          (label = "parallel/join@2" || label = "parallel/smv@2")
          && counter_of r "pool.tasks" <= 0
        then problems := Printf.sprintf "%s: pool.tasks = 0 (pool never engaged)" label :: !problems;
        !problems)
      !par_reports
  in
  (* Profile / histogram / slow-log assertions. *)
  let bad_profile =
    let problems = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
    List.iter
      (fun (label, (r : Report.t)) ->
        if label <> "baseline/pairwise" then
          match List.assoc_opt "query.latency" r.Report.hists with
          | Some s when Lh_obs.Hist.count s >= 1 -> ()
          | _ -> fail "%s: query.latency histogram absent/empty in report" label)
      reports;
    (match L.Engine.last_profile eng with
    | None -> fail "last_profile: no profile recorded"
    | Some p ->
        if p.L.Profile.p_outcome <> L.Profile.Ok_result then
          fail "last_profile: outcome %S (want ok)" (L.Profile.outcome_label p.L.Profile.p_outcome);
        if p.L.Profile.p_total_s <= 0.0 then fail "last_profile: total_seconds = 0";
        if p.L.Profile.p_phases = [] then fail "last_profile: no phase durations");
    (match !slow_lines with
    | [] -> fail "slow-log sink received no lines at threshold 0"
    | ls ->
        List.iter
          (fun line ->
            match Lh_obs.Json.parse line with
            | j -> (
                match Lh_obs.Json.member "outcome" j with
                | Some (Lh_obs.Json.String "ok") -> ()
                | _ -> fail "slow-log line outcome is not \"ok\": %s" line)
            | exception Lh_obs.Json.Parse_error m ->
                fail "slow-log line unparseable (%s): %s" m line)
          ls);
    !problems
  in
  (* A single bad-coverage report on these sub-millisecond runs is a
     one-off OS/GC stall, not an instrumentation gap — a missing span
     would degrade every query report. Warn on one, fail on two. *)
  let coverage_failures = if List.length bad_coverage >= 2 then bad_coverage else [] in
  if missing = [] && zero = [] && coverage_failures = [] && bad_parallel = [] && bad_plancache = []
     && bad_profile = [] && !bad_serve = [] && !bad_durable = []
  then begin
    List.iter
      (fun msg -> Printf.printf "smoke warn: %s (single stall tolerated)\n" msg)
      bad_coverage;
    Printf.printf "smoke ok: %d runs, %d counters all present\n%!" (List.length reports)
      (List.length required);
    0
  end
  else begin
    List.iter (fun nm -> Printf.eprintf "smoke FAIL: counter %s absent from telemetry\n" nm) missing;
    List.iter (fun nm -> Printf.eprintf "smoke FAIL: counter %s never incremented\n" nm) zero;
    List.iter (fun msg -> Printf.eprintf "smoke FAIL: %s\n" msg) coverage_failures;
    List.iter (fun msg -> Printf.eprintf "smoke FAIL: %s\n" msg) bad_parallel;
    List.iter (fun msg -> Printf.eprintf "smoke FAIL: %s\n" msg) bad_plancache;
    List.iter (fun msg -> Printf.eprintf "smoke FAIL: %s\n" msg) bad_profile;
    List.iter (fun msg -> Printf.eprintf "smoke FAIL: %s\n" msg) !bad_serve;
    List.iter (fun msg -> Printf.eprintf "smoke FAIL: %s\n" msg) !bad_durable;
    1
  end

open Cmdliner

let ids_arg =
  let doc = "Experiments to run: table2-bi table2-la table3 table4 fig1 fig5a fig5b fig5c fig6 ablations repeated concurrency layouts graph durability. Default: all." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let sf_arg =
  let doc = "Comma-separated TPC-H scale factors (analogues of the paper's SF 1/10/100)." in
  Arg.(value & opt string "0.01,0.05" & info [ "sf" ] ~doc)

let la_scale_arg =
  let doc = "Multiplier on the default matrix/voter dataset scales." in
  Arg.(value & opt float 1.0 & info [ "la-scale" ] ~doc)

let dense_arg =
  let doc = "Comma-separated dense matrix dimensions." in
  Arg.(value & opt string "96,128,192" & info [ "dense" ] ~doc)

let runs_arg =
  let doc = "Hot measurement runs per cell (the paper uses 7 and trims min/max)." in
  Arg.(value & opt int 3 & info [ "runs" ] ~doc)

let timeout_arg =
  let doc = "Per-measurement timeout in seconds (reported as t/o)." in
  Arg.(value & opt float 60.0 & info [ "timeout" ] ~doc)

let mem_arg =
  let doc = "Per-measurement live-heap budget in machine words (reported as oom)." in
  Arg.(value & opt int 250_000_000 & info [ "mem-words" ] ~doc)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Data generation seed.")

let domains_arg =
  let doc =
    "Worker domains for the LevelHeaded configurations (default: \\$LH_DOMAINS if set, else 1). \
     With --json and N > 1, each LevelHeaded cell also runs instrumented at domains=1 and the \
     record gains end-to-end and per-phase speedup columns."
  in
  Arg.(value & opt int (Lh_util.Parfor.default_domains ()) & info [ "domains" ] ~docv:"N" ~doc)

let concurrency_arg =
  let doc =
    "Comma-separated client counts for the $(b,concurrency) experiment (sessions \
     querying the epoch-pinned service in parallel)."
  in
  Arg.(value & opt string "1,2,4,8" & info [ "concurrency" ] ~docv:"N,N,..." ~doc)

let json_arg =
  let doc = "Also write per-query telemetry (phase breakdown + counter deltas) as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let smoke_arg =
  let doc =
    "Smoke test: run one query per experiment family on tiny data with telemetry enabled and \
     fail if any expected counter is absent or never incremented."
  in
  Arg.(value & flag & info [ "smoke" ] ~doc)

let compare_arg =
  let doc =
    "Compare against the baseline record list $(docv) (a previous --json file, e.g. the \
     committed BENCH_6.json) and exit non-zero if any cell regressed beyond tolerance. \
     Compares the records of this run (requires --json) unless --compare-with is given."
  in
  Arg.(value & opt (some string) None & info [ "compare" ] ~docv:"BASELINE" ~doc)

let compare_with_arg =
  let doc =
    "With --compare: skip running experiments and compare the record list $(docv) against the \
     baseline (pure file-vs-file comparison; deterministic, used by CI to self-check the gate)."
  in
  Arg.(value & opt (some string) None & info [ "compare-with" ] ~docv:"CURRENT" ~doc)

let tolerance_arg =
  let doc =
    "Allowed relative slowdown before --compare flags a regression: a cell fails when \
     current > baseline * (1 + $(docv)). Slowdowns under 2ms absolute never fail."
  in
  Arg.(value & opt float 0.5 & info [ "tolerance" ] ~docv:"T" ~doc)

let slowdown_arg =
  let doc =
    "Multiply the current run's seconds by $(docv) before comparing — a testing aid that lets \
     CI prove the --compare gate actually fires."
  in
  Arg.(value & opt float 1.0 & info [ "compare-slowdown" ] ~docv:"F" ~doc)

let run_compare ~baseline_path ~tolerance ~slowdown current =
  match Lh_obs.Baseline.load baseline_path with
  | exception (Sys_error msg | Lh_obs.Json.Parse_error msg) ->
      Printf.eprintf "cannot load baseline %s: %s\n" baseline_path msg;
      2
  | baseline ->
      let v =
        Lh_obs.Baseline.compare_runs ~tolerance ~baseline
          ~current:(Lh_obs.Baseline.scale slowdown current)
          ()
      in
      print_string (Lh_obs.Baseline.to_text v);
      if Lh_obs.Baseline.ok v then 0 else 1

let main ids sf la_scale dense runs timeout mem_words seed domains concurrency json run_smoke
    compare_base compare_with tolerance slowdown =
  let parse_list conv s = String.split_on_char ',' s |> List.map String.trim |> List.map conv in
  let params =
    {
      C.sfs = parse_list float_of_string sf;
      la_scale;
      dense_sizes = parse_list int_of_string dense;
      runs;
      timeout;
      mem_words;
      seed;
      domains = max 1 domains;
      concurrency = parse_list int_of_string concurrency;
    }
  in
  (* validate the sink up front: losing the JSON after a full bench run
     is much worse than refusing to start *)
  (match json with
  | Some path -> (
      try close_out (open_out path)
      with Sys_error msg ->
        Printf.eprintf "cannot write --json file: %s\n" msg;
        exit 2)
  | None -> ());
  C.json_out := json;
  if run_smoke then exit (smoke params);
  (* Pure file-vs-file comparison: no experiments run. *)
  (match (compare_base, compare_with) with
  | Some b, Some c -> (
      match Lh_obs.Baseline.load c with
      | exception (Sys_error msg | Lh_obs.Json.Parse_error msg) ->
          Printf.eprintf "cannot load %s: %s\n" c msg;
          exit 2
      | current -> exit (run_compare ~baseline_path:b ~tolerance ~slowdown current))
  | None, Some _ ->
      Printf.eprintf "--compare-with requires --compare BASELINE\n";
      exit 2
  | Some _, None when json = None ->
      Printf.eprintf "--compare needs --json FILE (to collect this run's records) or --compare-with CURRENT\n";
      exit 2
  | _ -> ());
  let ids = if ids = [] then all_ids else ids in
  List.iter
    (fun id ->
      if not (List.mem id all_ids) then begin
        Printf.eprintf "unknown experiment %S; available: %s\n" id (String.concat " " all_ids);
        exit 2
      end)
    ids;
  run_ids params ids;
  match compare_base with
  | Some b ->
      exit
        (run_compare ~baseline_path:b ~tolerance ~slowdown
           (Lh_obs.Baseline.cells_of_json (C.records_json ())))
  | None -> ()

let cmd =
  let info = Cmd.info "lh-bench" ~doc:"Regenerate the LevelHeaded paper's tables and figures" in
  Cmd.v info
    Term.(
      const main $ ids_arg $ sf_arg $ la_scale_arg $ dense_arg $ runs_arg $ timeout_arg $ mem_arg
      $ seed_arg $ domains_arg $ concurrency_arg $ json_arg $ smoke_arg $ compare_arg
      $ compare_with_arg $ tolerance_arg $ slowdown_arg)

let () = exit (Cmd.eval cmd)
