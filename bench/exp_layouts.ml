(* Layout-specialized WCOJ kernel experiment.

   Measures what the monomorphic set kernels buy over the generic
   interpreter on the two shapes they target:

     triangle   a count-star over a 3-cycle of one edge relation — every key
                is referenced, the distinct-key tries are leaf-unit, so
                the innermost level runs the count-only kernel
                (popcount / gallop-count / merge-count, nothing
                materialized);
     chain      a grouped 2-chain — the innermost level streams matches
                through foreach_inter into the aggregate slots instead of
                materializing the intersection.

   Three edge relations pin the three layout regimes of the sets the
   kernels see (Set.choose_layout: dense iff card >= 16 and span <=
   16*card): [edge_d] (48x48 at ~60% fill — every set a bitset, bs∩bs),
   [edge_s] (~900 edges over a 16k domain — uint everywhere, uint∩uint)
   and [edge_m] (a full dense first level over sparse neighbor lists —
   bs∩uint at the top, uint∩uint below).

   Two arms per cell on the same engine and tries: "specialized" is the
   default configuration, "generic" sets [leaf_specialization = false]
   and runs the materializing interpreter loop. Both produce identical
   rows (the fuzzer's engine-generic-leaf evaluator holds them bit-equal);
   only the inner loop differs.

   Reading the table: the count-only triangle cells are where the kernels
   matter (edge_d runs popcounted bs∩bs against a materialize-and-iterate
   loop — expect ~10x). The chain-group cells on the sparse relations are
   allocation-bound — the grouped relaxed-tail path allocates accumulators
   sized by the 16k value domain, dwarfing the one uint∩uint per query —
   so their ratio hovers around 1.0x and swings ±15% with GC drift even
   after the priming and compaction below. *)

module C = Common
module L = Levelheaded
module Dtype = Lh_storage.Dtype
module Schema = Lh_storage.Schema
module Prng = Lh_util.Prng

let edge_schema =
  Schema.create
    [
      ("row", Dtype.Int, Schema.Key);
      ("col", Dtype.Int, Schema.Key);
      ("v", Dtype.Float, Schema.Annotation);
    ]

let build params =
  let eng = L.Engine.create () in
  let rng = Prng.create (params.C.seed lxor 0x1a70) in
  let reg name rows = ignore (L.Engine.register_rows eng ~name ~schema:edge_schema rows) in
  let pair r c =
    [ Dtype.VInt r; Dtype.VInt c; Dtype.VFloat (float_of_int (Prng.int_in rng (-4) 4)) ]
  in
  (* dense: 48x48 at ~60% fill — all trie sets choose the bitset layout *)
  reg "edge_d"
    (List.concat_map
       (fun r ->
         List.filter_map
           (fun c -> if Prng.int rng 10 < 6 then Some (pair r c) else None)
           (List.init 48 Fun.id))
       (List.init 48 Fun.id));
  (* sparse: ~900 distinct edges over a 16384 domain — all sets uint *)
  let seen = Hashtbl.create 1024 in
  reg "edge_s"
    (List.init 900 (fun _ ->
         let rec fresh () =
           let r = Prng.int rng 16384 and c = Prng.int rng 16384 in
           if Hashtbl.mem seen (r, c) then fresh ()
           else begin
             Hashtbl.add seen (r, c) ();
             pair r c
           end
         in
         fresh ()));
  (* mixed: a full dense first level (0..47) over sparse neighbor lists *)
  reg "edge_m"
    (List.concat_map
       (fun r ->
         let cols = Hashtbl.create 16 in
         let rec draw k acc =
           if k = 0 then acc
           else
             let c = Prng.int rng 2048 in
             if Hashtbl.mem cols c then draw k acc
             else begin
               Hashtbl.add cols c ();
               draw (k - 1) (pair r c :: acc)
             end
         in
         draw 12 [])
       (List.init 48 Fun.id));
  eng

let triangle_sql rel =
  Printf.sprintf
    "select count(*) as t from %s r0, %s r1, %s r2 where r0.col = r1.row and r1.col = r2.row \
     and r2.col = r0.row"
    rel rel rel

let chain_sql rel =
  Printf.sprintf
    "select r0.row as a, count(*) as c from %s r0, %s r1 where r0.col = r1.row group by r0.row"
    rel rel

let run params =
  let eng = build params in
  let budget =
    Lh_util.Budget.create ~max_live_words:params.C.mem_words ~max_seconds:params.C.timeout ()
  in
  let arm cfg sql () =
    let saved = L.Engine.config eng in
    L.Engine.set_config eng { cfg with L.Config.budget };
    Fun.protect
      ~finally:(fun () -> L.Engine.set_config eng saved)
      (fun () -> ignore (L.Engine.query eng sql))
  in
  let d = L.Config.default in
  let generic = { d with L.Config.leaf_specialization = false } in
  C.print_header "Set-layout kernels — specialized vs generic leaves"
    [ "specialized"; "generic"; "speedup" ];
  List.map
    (fun (label, sql) ->
      (* Prime both arms before measuring either: the first execution of a
         cell builds tries for its attribute order and grows the major heap
         (the grouped cells allocate sparse accumulators sized by the value
         domain). Without this, whichever arm runs second inherits the warm
         heap and wins by ~1.4x on allocation-bound cells regardless of
         which kernel it uses. *)
      arm d sql ();
      arm generic sql ();
      (* Compact before each arm so both start from the same heap: the
         grouped edge_s cell allocates ~130KB of accumulators per run, and
         GC pacing drift across 30 runs otherwise still favors the
         second-measured arm by ~10-20%. *)
      Gc.compact ();
      let spec =
        C.measured ~budget ~runs:params.C.runs ~system:"specialized" ~sql (arm d sql)
      in
      Gc.compact ();
      let gen =
        C.measured ~budget ~runs:params.C.runs ~system:"generic" ~sql (arm generic sql)
      in
      let speedup =
        match (spec, gen) with
        | C.Time ts, C.Time tg when ts > 0.0 -> Printf.sprintf "%.2fx" (tg /. ts)
        | _ -> "-"
      in
      C.print_row label [ C.outcome_to_string spec; C.outcome_to_string gen; speedup ];
      (label, spec, gen))
    (List.concat_map
       (fun rel ->
         [
           (rel ^ "/triangle-count", triangle_sql rel);
           (rel ^ "/chain-group", chain_sql rel);
         ])
       [ "edge_d"; "edge_s"; "edge_m" ])
