(* Table III: LevelHeaded runtime and relative slowdown with each
   optimization disabled — attribute elimination (§IV) and the cost-based
   attribute ordering (§V). *)

module L = Levelheaded
module C = Common

let run params =
  let sf = List.fold_left Float.max 0.01 params.C.sfs in
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let tables = Lh_datagen.Tpch.generate ~dict ~sf ~seed:params.C.seed () in
  List.iter (L.Engine.register eng) tables;
  let harbor = Lh_datagen.Matrices.harbor_like ~dict ~scale:(0.04 *. params.C.la_scale) () in
  L.Engine.register eng harbor.Lh_datagen.Matrices.table;
  let hn = harbor.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
  let hv, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"harbor_x" ~n:hn () in
  L.Engine.register eng hv;
  let nlp = Lh_datagen.Matrices.nlpkkt_like ~dict ~scale:(0.0005 *. params.C.la_scale) () in
  L.Engine.register eng nlp.Lh_datagen.Matrices.table;
  let nn = nlp.Lh_datagen.Matrices.coo.Lh_blas.Coo.nrows in
  let nv, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"nlpkkt_x" ~n:nn () in
  L.Engine.register eng nv;
  let dn = List.fold_left max 64 params.C.dense_sizes in
  let dname = Printf.sprintf "dense%d" dn in
  let dt, _ = Lh_datagen.Matrices.dense ~dict ~name:dname ~n:dn () in
  L.Engine.register eng dt;
  let dv, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:(dname ^ "_x") ~n:dn () in
  L.Engine.register eng dv;

  let budget = Lh_util.Budget.create ~max_live_words:params.C.mem_words ~max_seconds:params.C.timeout () in
  let run_cfg sysname cfg sql =
    let with_cfg cfg f =
      let saved = L.Engine.config eng in
      L.Engine.set_config eng cfg;
      Fun.protect ~finally:(fun () -> L.Engine.set_config eng saved) f
    in
    let thunk domains () =
      with_cfg { cfg with L.Config.budget; domains } (fun () -> ignore (L.Engine.query eng sql))
    in
    let domains = max 1 params.C.domains in
    C.measured ~runs:params.C.runs ~domains
      ?sequential:(if domains > 1 then Some (thunk 1) else None)
      ~system:sysname ~sql (thunk domains)
  in
  let no_attr_elim =
    { L.Config.default with attribute_elimination = false; blas_targeting = false }
  in
  let worst_order =
    { L.Config.default with attr_order = L.Config.Worst_cost; relax_materialized_first = false }
  in
  let cases =
    List.map (fun (n, q) -> (Printf.sprintf "%s sf=%g" n sf, q)) Queries.tpch
    @ [
        ("SMV harbor", Queries.smv ~matrix:"harbor" ~vector:"harbor_x");
        ("SMM harbor", Queries.smm ~matrix:"harbor");
        ("SMV nlpkkt", Queries.smv ~matrix:"nlpkkt" ~vector:"nlpkkt_x");
        ("SMM nlpkkt", Queries.smm ~matrix:"nlpkkt");
        (Printf.sprintf "DMV %d" dn, Queries.dmv ~matrix:dname ~vector:(dname ^ "_x"));
        (Printf.sprintf "DMM %d" dn, Queries.dmm ~matrix:dname);
      ]
  in
  C.print_header "Table III — optimization ablations" [ "LH"; "-Attr.Elim"; "-Attr.Ord" ];
  List.map
    (fun (label, sql) ->
      let lh = run_cfg "LevelHeaded" L.Config.default sql in
      let no_ae = run_cfg "-Attr.Elim" no_attr_elim sql in
      let no_ord = run_cfg "-Attr.Ord" worst_order sql in
      C.print_row label
        [ C.outcome_to_string lh; C.relative ~baseline:lh no_ae; C.relative ~baseline:lh no_ord ];
      (label, lh, no_ae, no_ord))
    cases
