examples/matrix_queries.ml: Levelheaded Lh_blas Lh_datagen Lh_storage Lh_util Printf
