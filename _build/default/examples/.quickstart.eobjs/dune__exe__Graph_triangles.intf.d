examples/graph_triangles.mli:
