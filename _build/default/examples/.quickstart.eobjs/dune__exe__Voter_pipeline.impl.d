examples/voter_pipeline.ml: Array Float Levelheaded Lh_datagen Lh_ml Lh_storage Lh_util Printf String Sys
