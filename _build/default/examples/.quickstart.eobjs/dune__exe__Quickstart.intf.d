examples/quickstart.mli:
