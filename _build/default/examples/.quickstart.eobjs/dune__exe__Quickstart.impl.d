examples/quickstart.ml: Filename Format Levelheaded Lh_storage Lh_util Sys Unix
