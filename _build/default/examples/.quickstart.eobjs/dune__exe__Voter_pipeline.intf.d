examples/voter_pipeline.mli:
