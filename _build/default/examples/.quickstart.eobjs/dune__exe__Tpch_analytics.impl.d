examples/tpch_analytics.ml: Array Format Levelheaded Lh_datagen Lh_storage Lh_util List Printf Sys
