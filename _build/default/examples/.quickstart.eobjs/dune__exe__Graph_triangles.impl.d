examples/graph_triangles.ml: Array Hashtbl Levelheaded Lh_baseline Lh_sql Lh_storage Lh_util Printf Sys
