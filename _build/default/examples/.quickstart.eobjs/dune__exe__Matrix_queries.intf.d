examples/matrix_queries.mli:
