(* Linear algebra as SQL: sparse matrices run as pure aggregate-join
   queries through the WCOJ; dense matrices are recognized and handed to
   the BLAS substrate after attribute elimination (§III-D).

     dune exec examples/matrix_queries.exe
*)

module L = Levelheaded
module Table = Lh_storage.Table

let () =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in

  (* A sparse CFD-style matrix and a dense matrix, as relations. *)
  let sparse = Lh_datagen.Matrices.banded ~dict ~name:"a" ~n:3000 ~nnz_per_row:20 () in
  L.Engine.register eng sparse.Lh_datagen.Matrices.table;
  let n_dense = 128 in
  let dense_t, dense_m = Lh_datagen.Matrices.dense ~dict ~name:"d" ~n:n_dense () in
  L.Engine.register eng dense_t;
  let vec_t, _ = Lh_datagen.Matrices.dense_vector ~dict ~name:"x" ~n:3000 () in
  L.Engine.register eng vec_t;

  Printf.printf "sparse a: %d x %d, %d nonzeros\n" 3000 3000
    sparse.Lh_datagen.Matrices.table.Table.nrows;
  Printf.printf "dense  d: %d x %d\n\n" n_dense n_dense;

  (* --- sparse matrix-vector: a pure aggregate-join --- *)
  let smv = "select a.row, sum(a.v * x.v) as y from a, x where a.col = x.idx group by a.row" in
  let (y, ex), dt = Lh_util.Timing.time (fun () -> L.Engine.query_explain eng smv) in
  Printf.printf "SMV  path=%s rows=%d time=%s\n"
    (match ex.L.Engine.epath with
    | L.Engine.Wcoj_path -> "wcoj"
    | L.Engine.Blas_path -> "blas"
    | L.Engine.Scan_path -> "scan")
    y.Table.nrows
    (Lh_util.Timing.duration_to_string dt);

  (* --- sparse matrix-matrix: the relaxed [i,k,j] order (Example 5.2) --- *)
  let smm =
    "select a1.row, a2.col, sum(a1.v * a2.v) as v from a a1, a a2 where a1.col = a2.row group \
     by a1.row, a2.col"
  in
  let (sq, ex), dt = Lh_util.Timing.time (fun () -> L.Engine.query_explain eng smm) in
  Printf.printf "SMM  path=%s rows=%d time=%s\n"
    (match ex.L.Engine.epath with L.Engine.Wcoj_path -> "wcoj" | _ -> "?")
    sq.Table.nrows
    (Lh_util.Timing.duration_to_string dt);
  (* the chosen attribute order is visible in the plan *)
  print_string ex.L.Engine.etext;

  (* cross-check A*A against the BLAS substrate *)
  let csr = Lh_blas.Csr.of_coo sparse.Lh_datagen.Matrices.coo in
  let expect = Lh_blas.Csr.spgemm csr csr in
  let got = Lh_datagen.Matrices.to_coo sq in
  let diff =
    Lh_blas.Dense.max_abs_diff (Lh_blas.Csr.to_dense expect) (Lh_blas.Coo.to_dense got)
  in
  Printf.printf "SMM result matches CSR spgemm: max |diff| = %g\n\n" diff;

  (* --- dense matrix-matrix: recognized and dispatched to BLAS --- *)
  let dmm =
    "select d1.row, d2.col, sum(d1.v * d2.v) as v from d d1, d d2 where d1.col = d2.row group \
     by d1.row, d2.col"
  in
  let (dsq, ex), dt = Lh_util.Timing.time (fun () -> L.Engine.query_explain eng dmm) in
  Printf.printf "DMM  path=%s rows=%d time=%s\n"
    (match ex.L.Engine.epath with L.Engine.Blas_path -> "blas" | _ -> "wcoj")
    dsq.Table.nrows
    (Lh_util.Timing.duration_to_string dt);
  let expect = Lh_blas.Dense.gemm dense_m dense_m in
  let got_d = Lh_blas.Coo.to_dense (Lh_datagen.Matrices.to_coo dsq) in
  Printf.printf "DMM result matches dense gemm: max |diff| = %g\n"
    (Lh_blas.Dense.max_abs_diff expect got_d);

  (* and with targeting disabled, the same query runs as a join *)
  L.Engine.set_config eng { L.Config.default with L.Config.blas_targeting = false };
  let _, dt_wcoj = Lh_util.Timing.time (fun () -> L.Engine.query eng dmm) in
  Printf.printf "DMM via pure WCOJ (BLAS targeting off): %s (%.0fx slower)\n"
    (Lh_util.Timing.duration_to_string dt_wcoj)
    (dt_wcoj /. dt)
