(* The §VII end-to-end application: SQL feature extraction -> categorical
   encoding -> logistic regression, all inside one engine, with no data
   transformation between the phases.

     dune exec examples/voter_pipeline.exe -- [nvoters]
*)

module L = Levelheaded
module Table = Lh_storage.Table

let () =
  let nvoters = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 40_000 in
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let voters, precincts = Lh_datagen.Voter.generate ~dict ~nvoters ~nprecincts:200 () in
  L.Engine.register eng voters;
  L.Engine.register eng precincts;
  Printf.printf "voters: %d   precincts: %d\n\n" voters.Table.nrows precincts.Table.nrows;

  (* Phase 1: SQL — join voters to precincts, filter, project features. *)
  let sql =
    "select v.v_id, v.v_age, v.v_income, v.v_party, p.p_urban, v.v_voted from voters v, \
     precincts p where v.v_precinct = p.p_id and v.v_age >= 21 group by v.v_id, v.v_age, \
     v.v_income, v.v_party, p.p_urban, v.v_voted"
  in
  let features, sql_t = Lh_util.Timing.time (fun () -> L.Engine.query eng sql) in
  Printf.printf "phase 1 (SQL):    %s  -> %d rows\n"
    (Lh_util.Timing.duration_to_string sql_t)
    features.Table.nrows;

  (* Phase 2: encoding — straight from the dictionary-coded buffers. *)
  let (enc, y), enc_t =
    Lh_util.Timing.time (fun () ->
        ( Lh_ml.Encoder.encode ~table:features ~numeric:[ "v_age"; "v_income" ]
            ~categorical:[ "v_party"; "p_urban" ],
          Lh_ml.Encoder.labels ~table:features ~column:"v_voted" ))
  in
  Printf.printf "phase 2 (encode): %s  -> %d features: %s\n"
    (Lh_util.Timing.duration_to_string enc_t)
    (Array.length enc.Lh_ml.Encoder.feature_names)
    (String.concat ", " (Array.to_list enc.Lh_ml.Encoder.feature_names));

  (* Phase 3: five iterations of logistic regression (the paper's
     setting), then more to show convergence. *)
  let model5, train_t =
    Lh_util.Timing.time (fun () -> Lh_ml.Logreg.train ~x:enc.Lh_ml.Encoder.matrix ~y ~iterations:5 ())
  in
  Printf.printf "phase 3 (train):  %s  (5 iterations)\n\n"
    (Lh_util.Timing.duration_to_string train_t);
  let x = enc.Lh_ml.Encoder.matrix in
  Printf.printf "loss after 5 iterations:   %.4f  accuracy: %.3f\n"
    (Lh_ml.Logreg.loss model5 ~x ~y)
    (Lh_ml.Logreg.accuracy model5 ~x ~y);
  let model100 = Lh_ml.Logreg.train ~x ~y ~iterations:100 ~learning_rate:0.3 () in
  Printf.printf "loss after 100 iterations: %.4f  accuracy: %.3f\n"
    (Lh_ml.Logreg.loss model100 ~x ~y)
    (Lh_ml.Logreg.accuracy model100 ~x ~y);
  Printf.printf "\nmost predictive features:\n";
  let weighted =
    Array.mapi (fun i w -> (Float.abs w, enc.Lh_ml.Encoder.feature_names.(i), w)) model100.Lh_ml.Logreg.weights
  in
  Array.sort (fun (a, _, _) (b, _, _) -> compare b a) weighted;
  Array.iteri (fun i (_, name, w) -> if i < 5 then Printf.printf "  %-20s %+.3f\n" name w) weighted
