(* Quickstart: create an engine, load a table from a delimited file, run
   SQL, and inspect the plan.

     dune exec examples/quickstart.exe
*)

module L = Levelheaded
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Table = Lh_storage.Table

let print_table (t : Table.t) =
  (* header *)
  for c = 0 to Schema.ncols t.Table.schema - 1 do
    if c > 0 then print_char '|';
    print_string (Schema.col t.Table.schema c).Schema.name
  done;
  print_newline ();
  for r = 0 to t.Table.nrows - 1 do
    Format.printf "%a@." (fun fmt () -> Table.pp_row fmt t r) ()
  done

let () =
  let eng = L.Engine.create () in

  (* 1. Describe the data: every attribute is a key or an annotation
     (§III-A).  Keys join; annotations carry values. *)
  let sales_schema =
    Schema.create
      [
        ("product_id", Dtype.Int, Schema.Key);
        ("store_id", Dtype.Int, Schema.Key);
        ("sale_date", Dtype.Date, Schema.Annotation);
        ("amount", Dtype.Float, Schema.Annotation);
      ]
  in
  let stores_schema =
    Schema.create
      [
        ("store_id", Dtype.Int, Schema.Key);
        ("city", Dtype.String, Schema.Annotation);
      ]
  in

  (* 2. Ingest delimited files (LevelHeaded ingests structured data from
     delimited files on disk, §III). *)
  let dir = Filename.temp_file "lh_quickstart" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sales_csv = Filename.concat dir "sales.csv" in
  Lh_util.Csv.write_file sales_csv
    [
      [ "1"; "10"; "2024-01-05"; "19.99" ];
      [ "1"; "11"; "2024-01-06"; "24.50" ];
      [ "2"; "10"; "2024-01-06"; "5.00" ];
      [ "2"; "10"; "2024-02-01"; "7.25" ];
      [ "3"; "11"; "2024-02-02"; "102.00" ];
    ];
  let stores_csv = Filename.concat dir "stores.csv" in
  Lh_util.Csv.write_file stores_csv [ [ "10"; "Oslo" ]; [ "11"; "Bergen" ] ];
  ignore (L.Engine.load_csv eng ~name:"sales" ~schema:sales_schema sales_csv);
  ignore (L.Engine.load_csv eng ~name:"stores" ~schema:stores_schema stores_csv);

  (* 3. Query: an aggregate-join executed by the generic worst-case
     optimal join over tries. *)
  let sql =
    "select city, sum(amount) as revenue, count(*) as sales from sales, stores where \
     sales.store_id = stores.store_id and sale_date >= date '2024-01-01' group by city"
  in
  let result, explain = L.Engine.query_explain eng sql in
  print_endline "-- result --";
  print_table result;
  print_endline "\n-- plan --";
  print_string explain.L.Engine.etext;

  (* 4. Results are ordinary tables: register and query them again. *)
  let renamed =
    Table.create ~name:"city_revenue" ~schema:result.Table.schema ~dict:result.Table.dict
      result.Table.cols
  in
  L.Engine.register eng renamed;
  let top = L.Engine.query eng "select max(revenue) as best from city_revenue" in
  print_endline "\n-- max city revenue --";
  print_table top
