(* Graph queries: where worst-case optimal joins have an asymptotic edge.

   Triangle counting is the canonical cyclic query (fhw = 1.5): a pairwise
   plan must materialize the full wedge set (paths of length 2) before
   closing it, which can be |E|^2 in the worst case, while the generic
   WCOJ runs in O(|E|^1.5). LevelHeaded's EmptyHeaded ancestry is exactly
   this workload (§I, §II). This example counts triangles in a synthetic
   power-law-ish graph with both LevelHeaded and the pairwise baseline.

     dune exec examples/graph_triangles.exe -- [nvertices] [nedges]
*)

module L = Levelheaded
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

let edge_schema =
  Schema.create
    [ ("src", Dtype.Int, Schema.Key); ("dst", Dtype.Int, Schema.Key);
      ("w", Dtype.Float, Schema.Annotation) ]

(* A skewed undirected graph: endpoint sampling ~ 1/sqrt(u), giving the
   heavy hubs that blow pairwise plans up. *)
let generate ~nv ~ne ~seed =
  let rng = Lh_util.Prng.create seed in
  let pick () =
    let u = Lh_util.Prng.float rng 1.0 in
    int_of_float (float_of_int nv *. u *. u)
  in
  let seen = Hashtbl.create (2 * ne) in
  while Hashtbl.length seen < ne do
    let a = pick () and b = pick () in
    if a <> b then begin
      let lo = min a b and hi = max a b in
      Hashtbl.replace seen (lo, hi) ()
    end
  done;
  (* store both directions so the SQL join expresses an undirected closure *)
  let rows = Lh_util.Vec.Int.create () and cols = Lh_util.Vec.Int.create () in
  Hashtbl.iter
    (fun (a, b) () ->
      Lh_util.Vec.Int.push rows a;
      Lh_util.Vec.Int.push cols b;
      Lh_util.Vec.Int.push rows b;
      Lh_util.Vec.Int.push cols a)
    seen;
  let n = Lh_util.Vec.Int.length rows in
  (Lh_util.Vec.Int.to_array rows, Lh_util.Vec.Int.to_array cols, Array.make n 1.0)

let triangle_sql =
  (* each undirected triangle is counted 6 times (3 rotations x 2
     orientations); the query returns the raw closed-walk count *)
  "select count(*) as closed from edges e1, edges e2, edges e3 where e1.dst = e2.src and e2.dst \
   = e3.src and e3.dst = e1.src"

let () =
  let nv = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3000 in
  let ne = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 15000 in
  let eng = L.Engine.create () in
  let src, dst, w = generate ~nv ~ne ~seed:5 in
  L.Engine.register eng
    (Table.create ~name:"edges" ~schema:edge_schema ~dict:(L.Engine.dict eng)
       [| Table.Icol src; Table.Icol dst; Table.Fcol w |]);
  Printf.printf "graph: %d vertices, %d undirected edges\n\n" nv ne;

  let (t, ex), dt = Lh_util.Timing.time (fun () -> L.Engine.query_explain eng triangle_sql) in
  let closed =
    match Table.value t ~row:0 ~col:0 with Dtype.VInt n -> n | _ -> assert false
  in
  Printf.printf "LevelHeaded (WCOJ):      %8s   triangles = %d\n"
    (Lh_util.Timing.duration_to_string dt)
    (closed / 6);
  (match ex.L.Engine.efhw with
  | Some w -> Printf.printf "  plan: single-bag GHD, fhw = %g (the AGM bound gives O(|E|^%g))\n" w w
  | None -> ());

  (* the pairwise baseline materializes the wedge set *)
  let lookup n = L.Catalog.find_exn (L.Engine.catalog eng) n in
  let ast = Lh_sql.Parser.parse triangle_sql in
  let budget = Lh_util.Budget.create ~max_seconds:120.0 () in
  (match
     Lh_util.Timing.time (fun () ->
         Lh_baseline.Pairwise.query ~lookup ~mode:Lh_baseline.Pairwise.Pipelined ~budget ast)
   with
  | rows, dt2 ->
      (match rows with
      | [ [ Dtype.VInt n ] ] when n = closed -> ()
      | _ -> failwith "pairwise disagrees");
      Printf.printf "pairwise hash join:      %8s   (%.1fx slower)\n"
        (Lh_util.Timing.duration_to_string dt2)
        (dt2 /. dt)
  | exception Lh_util.Budget.Timed_out ->
      Printf.printf "pairwise hash join:      timed out (wedge explosion)\n")
