(* Business-intelligence example: generate a TPC-H-like warehouse and run
   the paper's BI queries, printing plans and results.

     dune exec examples/tpch_analytics.exe -- [sf]
*)

module L = Levelheaded
module Table = Lh_storage.Table

let q5 =
  "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue from customer, orders, \
   lineitem, supplier, nation, region where c_custkey = o_custkey and l_orderkey = o_orderkey \
   and l_suppkey = s_suppkey and c_nationkey = s_nationkey and s_nationkey = n_nationkey and \
   n_regionkey = r_regionkey and r_name = 'ASIA' and o_orderdate >= date '1994-01-01' and \
   o_orderdate < date '1995-01-01' group by n_name"

let q6 =
  "select sum(l_extendedprice * l_discount) as revenue from lineitem where l_shipdate >= date \
   '1994-01-01' and l_shipdate < date '1995-01-01' and l_discount between 0.05 and 0.07 and \
   l_quantity < 24"

let q10_top =
  "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue from customer, orders, \
   lineitem, nation where c_custkey = o_custkey and l_orderkey = o_orderkey and o_orderdate >= \
   date '1993-10-01' and o_orderdate < date '1994-01-01' and l_returnflag = 'R' and c_nationkey \
   = n_nationkey group by n_name"

let () =
  let sf = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.01 in
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  Printf.printf "generating TPC-H-like data at sf=%g ...\n%!" sf;
  let tables = Lh_datagen.Tpch.generate ~dict ~sf () in
  List.iter (L.Engine.register eng) tables;
  List.iter (fun (t : Table.t) -> Printf.printf "  %-10s %8d rows\n" t.Table.name t.Table.nrows) tables;

  let run name sql =
    Printf.printf "\n=== %s ===\n" name;
    let (result, explain), dt = Lh_util.Timing.time (fun () -> L.Engine.query_explain eng sql) in
    print_string explain.L.Engine.etext;
    Printf.printf "rows: %d   time: %s\n" result.Table.nrows (Lh_util.Timing.duration_to_string dt);
    for r = 0 to min 9 (result.Table.nrows - 1) do
      Format.printf "  %a@." (fun fmt () -> Table.pp_row fmt result r) ()
    done
  in
  run "Q6 (scan + scalar aggregate)" q6;
  run "Q5 (two-node GHD; region selection pushed deep)" q5;
  run "revenue of returned items by nation (Q10 variant)" q10_top;

  (* The same query under the LogicBlox-like configuration (no
     LevelHeaded optimizations) for comparison. *)
  Printf.printf "\n=== Q5 without LevelHeaded's optimizations ===\n";
  L.Engine.set_config eng L.Config.logicblox_like;
  let _, dt = Lh_util.Timing.time (fun () -> L.Engine.query eng q5) in
  Printf.printf "LogicBlox-like config: %s\n" (Lh_util.Timing.duration_to_string dt);
  L.Engine.set_config eng L.Config.default;
  let _, dt = Lh_util.Timing.time (fun () -> L.Engine.query eng q5) in
  Printf.printf "full LevelHeaded:      %s\n" (Lh_util.Timing.duration_to_string dt)
