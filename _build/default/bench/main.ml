(* Benchmark driver: one target per table/figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

     dune exec bench/main.exe                  # everything
     dune exec bench/main.exe -- table2-bi fig5a --sf 0.01 --runs 3
*)

module C = Common

let fig1 bi la =
  (* Figure 1: relative performance on BI vs LA, per engine — the
     geometric-mean slowdown vs the per-row best. *)
  let slowdowns rows system =
    List.filter_map
      (fun { Exp_table2.outcomes; _ } ->
        match (C.best_of (List.map snd outcomes), List.assoc_opt system outcomes) with
        | Some (C.Time b), Some (C.Time t) when b > 0.0 -> Some (t /. b)
        | _ -> None)
      rows
  in
  C.print_header "Figure 1 — geometric-mean slowdown vs best (BI, LA)" [ "BI"; "LA" ];
  List.iter
    (fun s ->
      let cell rows =
        match slowdowns rows s with
        | [] -> "-"
        | xs -> Printf.sprintf "%.2fx" (C.geomean xs)
      in
      C.print_row (C.system_name s) [ cell bi; cell la ])
    [ C.Lh; C.Hyper_like; C.Monet_like; C.Lh_logicblox; C.Mkl_like ]

let all_ids = [ "table2-bi"; "table2-la"; "table3"; "table4"; "fig1"; "fig5a"; "fig5b"; "fig5c"; "fig6"; "ablations" ]

let run_ids params ids =
  let wants id = List.mem id ids in
  let table2 = ref None in
  let ensure_table2 () =
    match !table2 with
    | Some r -> r
    | None ->
        let r = Exp_table2.run params in
        table2 := Some r;
        r
  in
  if wants "table2-bi" || wants "table2-la" then ignore (ensure_table2 ());
  if wants "table3" then ignore (Exp_table3.run params);
  if wants "table4" then ignore (Exp_table4.run params);
  if wants "fig1" then begin
    let bi, la = ensure_table2 () in
    fig1 bi la
  end;
  if wants "fig5a" then Exp_fig5.run_fig5a params;
  if wants "fig5b" then Exp_fig5.run_fig5b params;
  if wants "fig5c" then Exp_fig5.run_fig5c params;
  if wants "fig6" then ignore (Exp_fig6.run params);
  if wants "ablations" then Exp_ablations.run params

open Cmdliner

let ids_arg =
  let doc = "Experiments to run: table2-bi table2-la table3 table4 fig1 fig5a fig5b fig5c fig6 ablations. Default: all." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let sf_arg =
  let doc = "Comma-separated TPC-H scale factors (analogues of the paper's SF 1/10/100)." in
  Arg.(value & opt string "0.01,0.05" & info [ "sf" ] ~doc)

let la_scale_arg =
  let doc = "Multiplier on the default matrix/voter dataset scales." in
  Arg.(value & opt float 1.0 & info [ "la-scale" ] ~doc)

let dense_arg =
  let doc = "Comma-separated dense matrix dimensions." in
  Arg.(value & opt string "96,128,192" & info [ "dense" ] ~doc)

let runs_arg =
  let doc = "Hot measurement runs per cell (the paper uses 7 and trims min/max)." in
  Arg.(value & opt int 3 & info [ "runs" ] ~doc)

let timeout_arg =
  let doc = "Per-measurement timeout in seconds (reported as t/o)." in
  Arg.(value & opt float 60.0 & info [ "timeout" ] ~doc)

let mem_arg =
  let doc = "Per-measurement live-heap budget in machine words (reported as oom)." in
  Arg.(value & opt int 250_000_000 & info [ "mem-words" ] ~doc)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Data generation seed.")

let main ids sf la_scale dense runs timeout mem_words seed =
  let parse_list conv s = String.split_on_char ',' s |> List.map String.trim |> List.map conv in
  let params =
    {
      C.sfs = parse_list float_of_string sf;
      la_scale;
      dense_sizes = parse_list int_of_string dense;
      runs;
      timeout;
      mem_words;
      seed;
    }
  in
  let ids = if ids = [] then all_ids else ids in
  List.iter
    (fun id ->
      if not (List.mem id all_ids) then begin
        Printf.eprintf "unknown experiment %S; available: %s\n" id (String.concat " " all_ids);
        exit 2
      end)
    ids;
  run_ids params ids

let cmd =
  let info = Cmd.info "lh-bench" ~doc:"Regenerate the LevelHeaded paper's tables and figures" in
  Cmd.v info
    Term.(
      const main $ ids_arg $ sf_arg $ la_scale_arg $ dense_arg $ runs_arg $ timeout_arg $ mem_arg
      $ seed_arg)

let () = exit (Cmd.eval cmd)
