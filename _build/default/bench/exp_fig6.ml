(* Figure 6: the voter-classification application (§VII) — a pipeline of
   (1) a SQL join+filter producing the feature set, (2) categorical
   feature encoding, and (3) five iterations of logistic regression.

   Four pipelines model the paper's four systems (see EXPERIMENTS.md for
   the modeling rationale):

   - LevelHeaded: the SQL result is a dictionary-coded columnar table;
     the encoder reads code buffers directly — no data transformation
     between phases.
   - MonetDB/Scikit-like: operator-at-a-time SQL (full materialization),
     then a row-boxed handoff: every cell crosses the boundary as a boxed
     value and categorical cells are re-encoded by string.
   - Pandas/Scikit-like: row-at-a-time pipelined join, same row-boxed
     handoff.
   - Spark-like: operator-at-a-time SQL plus a serialization round-trip
     (rows printed to strings and re-parsed) before encoding — the
     exchange/py-boundary cost. *)

module L = Levelheaded
module C = Common
module Dtype = Lh_storage.Dtype
module Dense = Lh_blas.Dense

let sql =
  "select v.v_id, v.v_age, v.v_income, v.v_party, p.p_urban, v.v_voted from voters v, \
   precincts p where v.v_precinct = p.p_id and v.v_age >= 21 group by v.v_id, v.v_age, \
   v.v_income, v.v_party, p.p_urban, v.v_voted"

(* Row-boxed feature encoding: what a dataframe/NumPy handoff pays. *)
let encode_rows rows =
  let rows = Array.of_list rows in
  let n = Array.length rows in
  let cat_codes tag =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun row ->
        let v = Dtype.value_to_string (List.nth row tag) in
        if not (Hashtbl.mem tbl v) then Hashtbl.replace tbl v (Hashtbl.length tbl))
      rows;
    tbl
  in
  let party = cat_codes 3 and urban = cat_codes 4 in
  let k = 3 + Hashtbl.length party + Hashtbl.length urban in
  let m = Dense.create ~rows:n ~cols:k in
  let y = Array.make n 0.0 in
  Array.iteri
    (fun r row ->
      Dense.set m r 0 1.0;
      Dense.set m r 1 (Dtype.numeric (List.nth row 1));
      Dense.set m r 2 (Dtype.numeric (List.nth row 2));
      let pc = Hashtbl.find party (Dtype.value_to_string (List.nth row 3)) in
      Dense.set m r (3 + pc) 1.0;
      let uc = Hashtbl.find urban (Dtype.value_to_string (List.nth row 4)) in
      Dense.set m r (3 + Hashtbl.length party + uc) 1.0;
      y.(r) <- Dtype.numeric (List.nth row 5))
    rows;
  (* standardize the two numeric columns, as the columnar encoder does *)
  List.iter
    (fun c ->
      let mean = ref 0.0 and sq = ref 0.0 in
      for r = 0 to n - 1 do
        let v = Dense.get m r c in
        mean := !mean +. v;
        sq := !sq +. (v *. v)
      done;
      let mean = !mean /. float_of_int (max n 1) in
      let var = (!sq /. float_of_int (max n 1)) -. (mean *. mean) in
      let sd = if var <= 1e-12 then 1.0 else sqrt var in
      for r = 0 to n - 1 do
        Dense.set m r c ((Dense.get m r c -. mean) /. sd)
      done)
    [ 1; 2 ];
  (m, y)

(* The Spark-like exchange: serialize rows to delimited strings and parse
   them back. *)
let serialization_roundtrip rows =
  List.map
    (fun row ->
      let line = String.concat "|" (List.map Dtype.value_to_string row) in
      let fields = String.split_on_char '|' line in
      List.map2
        (fun v field ->
          match v with
          | Dtype.VInt _ -> Dtype.VInt (int_of_string field)
          | Dtype.VFloat _ -> Dtype.VFloat (float_of_string field)
          | Dtype.VString _ -> Dtype.VString field
          | Dtype.VDate _ -> Dtype.VDate (Lh_storage.Date.of_string field))
        row fields)
    rows

type phases = { sql_t : float; encode_t : float; train_t : float }

let total p = p.sql_t +. p.encode_t +. p.train_t

let run params =
  let nvoters = int_of_float (60_000.0 *. params.C.la_scale) in
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let voters, precincts = Lh_datagen.Voter.generate ~dict ~nvoters ~nprecincts:300 () in
  L.Engine.register eng voters;
  L.Engine.register eng precincts;
  let lookup n = L.Catalog.find_exn (L.Engine.catalog eng) n in
  let ast = Lh_sql.Parser.parse sql in
  let time f =
    let _, t = Lh_util.Timing.time f in
    t
  in
  let lh () =
    let table = ref None in
    let sql_t = time (fun () -> table := Some (L.Engine.query eng sql)) in
    let table = Option.get !table in
    let enc = ref None in
    let encode_t =
      time (fun () ->
          enc :=
            Some
              ( Lh_ml.Encoder.encode ~table ~numeric:[ "v_age"; "v_income" ]
                  ~categorical:[ "v_party"; "p_urban" ],
                Lh_ml.Encoder.labels ~table ~column:"v_voted" ))
    in
    let e, y = Option.get !enc in
    let train_t =
      time (fun () ->
          ignore (Lh_ml.Logreg.train ~x:e.Lh_ml.Encoder.matrix ~y ~iterations:5 ()))
    in
    { sql_t; encode_t; train_t }
  in
  let rowbased ~mode ~serialize () =
    let rows = ref [] in
    let sql_t = time (fun () -> rows := Lh_baseline.Pairwise.query ~lookup ~mode ast) in
    let data = ref ([||], [||]) in
    let encode_t =
      time (fun () ->
          let rs = if serialize then serialization_roundtrip !rows else !rows in
          let m, y = encode_rows rs in
          data := (m.Dense.data, y))
    in
    let xdata, y = !data in
    let k = Array.length xdata / max 1 (Array.length y) in
    let x = Dense.of_array ~rows:(Array.length y) ~cols:k xdata in
    let train_t = time (fun () -> ignore (Lh_ml.Logreg.train ~x ~y ~iterations:5 ())) in
    { sql_t; encode_t; train_t }
  in
  let pipelines =
    [
      ("LevelHeaded", lh);
      ("MonetDB/Scikit-like", rowbased ~mode:Lh_baseline.Pairwise.Materializing ~serialize:false);
      ("Pandas/Scikit-like", rowbased ~mode:Lh_baseline.Pairwise.Pipelined ~serialize:false);
      ("Spark-like", rowbased ~mode:Lh_baseline.Pairwise.Materializing ~serialize:true);
    ]
  in
  C.print_header
    (Printf.sprintf "Figure 6 — voter classification (%d voters)" nvoters)
    [ "sql"; "encode"; "train"; "total"; "vs LH" ];
  let results =
    List.map
      (fun (name, f) ->
        ignore (f ());
        (* warm-up *)
        let p = f () in
        (name, p))
      pipelines
  in
  let lh_total = total (snd (List.hd results)) in
  List.iter
    (fun (name, p) ->
      C.print_row name
        [
          Lh_util.Timing.duration_to_string p.sql_t;
          Lh_util.Timing.duration_to_string p.encode_t;
          Lh_util.Timing.duration_to_string p.train_t;
          Lh_util.Timing.duration_to_string (total p);
          Printf.sprintf "%.2fx" (total p /. lh_total);
        ])
    results;
  results
