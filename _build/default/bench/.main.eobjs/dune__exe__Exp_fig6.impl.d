bench/exp_fig6.ml: Array Common Hashtbl Levelheaded Lh_baseline Lh_blas Lh_datagen Lh_ml Lh_sql Lh_storage Lh_util List Option Printf String
