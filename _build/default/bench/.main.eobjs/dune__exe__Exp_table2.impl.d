bench/exp_table2.ml: Common Levelheaded Lh_blas Lh_datagen Lh_storage Lh_util List Option Printf Queries
