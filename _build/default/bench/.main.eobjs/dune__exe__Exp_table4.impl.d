bench/exp_table4.ml: Common Exp_table2 Levelheaded Lh_blas Lh_datagen Lh_storage List Printf Queries
