bench/common.ml: Fun Levelheaded Lh_baseline Lh_sql Lh_util List Option Printf String Sys
