bench/main.mli:
