bench/exp_ablations.ml: Common Fun Levelheaded Lh_blas Lh_datagen Lh_util List Queries
