bench/queries.ml: Printf
