bench/exp_table3.ml: Common Float Fun Levelheaded Lh_blas Lh_datagen Lh_util List Printf Queries
