bench/main.ml: Arg Cmd Cmdliner Common Exp_ablations Exp_fig5 Exp_fig6 Exp_table2 Exp_table3 Exp_table4 List Printf String Term
