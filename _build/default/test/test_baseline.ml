module P = Lh_baseline.Pairwise
module Table = Lh_storage.Table

let eng = Helpers.tpch_engine

let run_mode mode sql =
  P.query ~lookup:(Helpers.lookup_in (Lazy.force eng)) ~mode (Lh_sql.Parser.parse sql)

let mode_cases =
  List.concat_map
    (fun (mname, mode) ->
      List.map
        (fun (qname, sql) ->
          Alcotest.test_case (Printf.sprintf "%s/%s" mname qname) `Quick (fun () ->
              let expect = Helpers.oracle_rows (Lazy.force eng) sql in
              Helpers.check_rows_equal (mname ^ "/" ^ qname) expect (run_mode mode sql)))
        (Helpers.tpch_queries @ Helpers.la_queries))
    [ ("pipelined", P.Pipelined); ("materializing", P.Materializing) ]

let test_budget_oom_materializing () =
  let e = Levelheaded.Engine.create () in
  let dict = Levelheaded.Engine.dict e in
  let m = Lh_datagen.Matrices.banded ~dict ~name:"big" ~n:1500 ~nnz_per_row:25 () in
  Levelheaded.Engine.register e m.Lh_datagen.Matrices.table;
  let budget = Lh_util.Budget.create ~max_live_words:500_000 () in
  match
    P.query ~lookup:(Helpers.lookup_in e) ~mode:P.Materializing ~budget
      (Lh_sql.Parser.parse
         "select m1.row, m2.col, sum(m1.v * m2.v) v from big m1, big m2 where m1.col = m2.row group by m1.row, m2.col")
  with
  | exception Lh_util.Budget.Out_of_memory_budget -> ()
  | _ -> Alcotest.fail "expected oom"

let test_composite_join_keys () =
  (* Q9's partsupp-lineitem join uses a two-column key; exercise it in
     isolation with a tiny fixture. *)
  let e = Levelheaded.Engine.create () in
  let dict = Levelheaded.Engine.dict e in
  let schema =
    Lh_storage.Schema.create
      [ ("a", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
        ("b", Lh_storage.Dtype.Int, Lh_storage.Schema.Key);
        ("v", Lh_storage.Dtype.Float, Lh_storage.Schema.Annotation) ]
  in
  let mk name rows = Levelheaded.Engine.register e (Table.of_rows ~name ~schema ~dict rows) in
  let open Lh_storage.Dtype in
  mk "x" [ [ VInt 1; VInt 2; VFloat 10.0 ]; [ VInt 1; VInt 3; VFloat 20.0 ] ];
  mk "y" [ [ VInt 1; VInt 2; VFloat 5.0 ]; [ VInt 9; VInt 9; VFloat 7.0 ] ];
  let sql = "select sum(x.v * y.v) s from x, y where x.a = y.a and x.b = y.b" in
  let expect = Helpers.oracle_rows e sql in
  List.iter
    (fun mode ->
      Helpers.check_rows_equal "composite" expect
        (P.query ~lookup:(Helpers.lookup_in e) ~mode (Lh_sql.Parser.parse sql)))
    [ P.Pipelined; P.Materializing ]

let random_db_gen =
  QCheck2.Gen.(
    let triplets =
      list_size (int_range 0 30)
        (let* i = int_range 0 4 in
         let* j = int_range 0 4 in
         let* v = int_range (-3) 3 in
         return (i, j, float_of_int v))
    in
    pair triplets triplets)

let register_matrix e name triplets =
  let rows = Array.of_list (List.map (fun (i, _, _) -> i) triplets) in
  let cols = Array.of_list (List.map (fun (_, j, _) -> j) triplets) in
  let vals = Array.of_list (List.map (fun (_, _, v) -> v) triplets) in
  Levelheaded.Engine.register e
    (Table.create ~name ~schema:Lh_datagen.Matrices.matrix_schema
       ~dict:(Levelheaded.Engine.dict e)
       [| Table.Icol rows; Table.Icol cols; Table.Fcol vals |])

let qcheck_modes_vs_oracle =
  Helpers.qtest ~count:100 "both modes = oracle on random joins" random_db_gen
    (fun (ta, tb) ->
      let e = Levelheaded.Engine.create () in
      register_matrix e "a" ta;
      register_matrix e "b" tb;
      let lookup = Helpers.lookup_in e in
      let ast =
        Lh_sql.Parser.parse
          "select a.row, sum(a.v * b.v) s, count(*) c from a, b where a.col = b.row group by a.row"
      in
      let expect = Lh_baseline.Oracle.query ~lookup ast in
      let p = P.query ~lookup ~mode:P.Pipelined ast in
      let m = P.query ~lookup ~mode:P.Materializing ast in
      let eq rows =
        List.length rows = List.length expect
        && List.for_all2 (fun a b -> List.for_all2 Helpers.value_close a b) expect rows
      in
      eq p && eq m)

let () =
  Alcotest.run "lh_baseline"
    [
      ("modes", mode_cases);
      ( "mechanics",
        [
          Alcotest.test_case "materializing oom" `Quick test_budget_oom_materializing;
          Alcotest.test_case "composite join keys" `Quick test_composite_join_keys;
          qcheck_modes_vs_oracle;
        ] );
    ]
