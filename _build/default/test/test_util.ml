module Prng = Lh_util.Prng
module Vec = Lh_util.Vec
module Csv = Lh_util.Csv
module Simplex = Lh_util.Simplex
module Parfor = Lh_util.Parfor
module Budget = Lh_util.Budget

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let rng = Prng.create 1 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_prng_int_in () =
  let rng = Prng.create 2 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_prng_float_unit () =
  let rng = Prng.create 3 in
  for _ = 1 to 1_000 do
    let v = Prng.float rng 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "out of range: %f" v
  done

let test_prng_sample_distinct () =
  let rng = Prng.create 4 in
  let s = Prng.sample_distinct rng 50 200 in
  Alcotest.(check int) "size" 50 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check bool) "sorted" true (s = sorted);
  Alcotest.(check int) "distinct" 50 (List.length (List.sort_uniq compare (Array.to_list s)))

let test_prng_gaussian_moments () =
  let rng = Prng.create 5 in
  let n = 50_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.gaussian rng in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.05)

let test_vec_int_push_get () =
  let v = Vec.Int.create () in
  for i = 0 to 999 do
    Vec.Int.push v (i * 3)
  done;
  Alcotest.(check int) "length" 1000 (Vec.Int.length v);
  Alcotest.(check int) "get 500" 1500 (Vec.Int.get v 500);
  Alcotest.(check int) "pop" 2997 (Vec.Int.pop v);
  Alcotest.(check int) "length after pop" 999 (Vec.Int.length v);
  Vec.Int.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.Int.length v)

let test_vec_float_roundtrip () =
  let arr = Array.init 257 (fun i -> float_of_int i /. 3.0) in
  let v = Vec.Float.of_array arr in
  Alcotest.(check bool) "roundtrip" true (Vec.Float.to_array v = arr)

let test_vec_bounds () =
  let v = Vec.Int.create () in
  Vec.Int.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.Int.get") (fun () ->
      ignore (Vec.Int.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.Int.set") (fun () -> Vec.Int.set v 5 0)

let test_csv_split_basic () =
  Alcotest.(check (list string)) "plain" [ "a"; "b"; "c" ] (Csv.split_line ~sep:',' "a,b,c");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "" ] (Csv.split_line ~sep:',' ",,");
  Alcotest.(check (list string)) "pipe" [ "1"; "x y"; "2.5" ] (Csv.split_line ~sep:'|' "1|x y|2.5")

let test_csv_split_quoted () =
  Alcotest.(check (list string)) "quoted sep" [ "a,b"; "c" ] (Csv.split_line ~sep:',' "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "say \"hi\"" ] (Csv.split_line ~sep:',' "\"say \"\"hi\"\"\"")

let test_csv_roundtrip () =
  let rows = [ [ "1"; "hello world"; "3.25" ]; [ "2"; "with,comma"; "x\"y" ]; [ "3"; ""; "z" ] ] in
  let path = Filename.temp_file "lh_csv" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Csv.write_file path rows;
      Alcotest.(check (list (list string))) "roundtrip" rows (Csv.read_file path))

let test_simplex_basic () =
  (* max x + y st x <= 3, y <= 4, x + y <= 5 *)
  let sol =
    Simplex.maximize
      ~a:[| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |]
      ~b:[| 3.0; 4.0; 5.0 |] ~c:[| 1.0; 1.0 |]
  in
  Alcotest.(check (float 1e-9)) "objective" 5.0 sol.Simplex.objective

let test_simplex_degenerate () =
  (* max 2x st x <= 0 *)
  let sol = Simplex.maximize ~a:[| [| 1.0 |] |] ~b:[| 0.0 |] ~c:[| 2.0 |] in
  Alcotest.(check (float 1e-9)) "objective" 0.0 sol.Simplex.objective

let test_cover_triangle () =
  (* Triangle: three vertices, three edges of size 2 -> fractional cover 1.5 *)
  let c = Simplex.fractional_edge_cover ~nvertices:3 ~edges:[| [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] |] in
  Alcotest.(check (float 1e-6)) "triangle width" 1.5 c.Simplex.width

let test_cover_four_cycle () =
  let c =
    Simplex.fractional_edge_cover ~nvertices:4 ~edges:[| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ] |]
  in
  Alcotest.(check (float 1e-6)) "C4 width" 2.0 c.Simplex.width

let test_cover_single_edge () =
  let c = Simplex.fractional_edge_cover ~nvertices:3 ~edges:[| [ 0; 1; 2 ] |] in
  Alcotest.(check (float 1e-6)) "one edge" 1.0 c.Simplex.width;
  Alcotest.(check (float 1e-6)) "weight" 1.0 c.Simplex.weights.(0)

let test_cover_weights_feasible () =
  let edges = [| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 3; 0 ]; [ 0; 2 ] |] in
  let c = Simplex.fractional_edge_cover ~nvertices:4 ~edges in
  (* Every vertex covered with total weight >= 1. *)
  for v = 0 to 3 do
    let total =
      Array.to_list edges
      |> List.mapi (fun e vs -> if List.mem v vs then c.Simplex.weights.(e) else 0.0)
      |> List.fold_left ( +. ) 0.0
    in
    Alcotest.(check bool) (Printf.sprintf "vertex %d covered" v) true (total >= 1.0 -. 1e-6)
  done;
  let sum = Array.fold_left ( +. ) 0.0 c.Simplex.weights in
  Alcotest.(check (float 1e-6)) "weights sum to width" c.Simplex.width sum

(* Exact minimum fractional cover for tiny instances by brute-force grid
   search over weights in {0, 1/6, ..., 1}. *)
let brute_force_cover ~nvertices ~edges =
  let ne = Array.length edges in
  let best = ref infinity in
  let w = Array.make ne 0.0 in
  let steps = 6 in
  let rec go e =
    if e = ne then begin
      let ok =
        List.for_all
          (fun v ->
            let total =
              Array.to_list edges
              |> List.mapi (fun i vs -> if List.mem v vs then w.(i) else 0.0)
              |> List.fold_left ( +. ) 0.0
            in
            total >= 1.0 -. 1e-9)
          (List.init nvertices Fun.id)
      in
      if ok then best := Float.min !best (Array.fold_left ( +. ) 0.0 w)
    end
    else
      for k = 0 to steps do
        w.(e) <- float_of_int k /. float_of_int steps;
        go (e + 1)
      done
  in
  go 0;
  !best

let qcheck_cover_vs_brute =
  let gen =
    QCheck2.Gen.(
      let* nv = int_range 2 4 in
      let* ne = int_range 1 4 in
      let* edges =
        list_repeat ne
          (let* a = int_range 0 (nv - 1) in
           let* b = int_range 0 (nv - 1) in
           return (List.sort_uniq compare [ a; b ]))
      in
      return (nv, Array.of_list edges))
  in
  Helpers.qtest ~count:100 "fractional cover matches brute force" gen (fun (nv, edges) ->
      let covered = Array.make nv false in
      Array.iter (List.iter (fun v -> covered.(v) <- true)) edges;
      QCheck2.assume (Array.for_all Fun.id covered);
      let lp = (Simplex.fractional_edge_cover ~nvertices:nv ~edges).Simplex.width in
      let bf = brute_force_cover ~nvertices:nv ~edges in
      (* The brute force grid contains the optimum for these instances
         (optimal weights are multiples of 1/2 or 1/3; 1/6 grid covers both). *)
      Float.abs (lp -. bf) < 1e-6)

let test_parfor_matches_sequential () =
  let n = 10_000 in
  let seq = ref 0 in
  for i = 0 to n - 1 do
    seq := !seq + (i * i mod 97)
  done;
  List.iter
    (fun domains ->
      let par =
        Parfor.map_reduce ~domains ~n
          ~init:(fun () -> ref 0)
          ~body:(fun acc i -> acc := !acc + (i * i mod 97))
          ~merge:(fun a b ->
            a := !a + !b;
            a)
      in
      Alcotest.(check int) (Printf.sprintf "domains=%d" domains) !seq !par)
    [ 1; 2; 3; 7 ]

let test_parfor_order_preserved () =
  (* merge is applied in chunk order, so list concatenation keeps order. *)
  let n = 1000 in
  let out =
    Parfor.map_reduce ~domains:4 ~n
      ~init:(fun () -> ref [])
      ~body:(fun acc i -> acc := i :: !acc)
      ~merge:(fun a b ->
        a := !b @ !a;
        a)
  in
  Alcotest.(check (list int)) "ordered" (List.init n Fun.id) (List.rev !out)

let test_parfor_empty () =
  let r =
    Parfor.map_reduce ~domains:4 ~n:0 ~init:(fun () -> 42) ~body:(fun _ _ -> ()) ~merge:(fun a _ -> a)
  in
  Alcotest.(check int) "empty range" 42 r

let test_budget_timeout () =
  let b = Budget.create ~max_seconds:0.02 () in
  match
    Budget.run b (fun () ->
        let rec spin () =
          Budget.check b;
          spin ()
        in
        spin ())
  with
  | Error Budget.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_budget_oom () =
  let b = Budget.create ~max_live_words:1_000_000 () in
  match
    Budget.run b (fun () ->
        let keep = ref [] in
        for _ = 1 to 10_000 do
          keep := Array.make 10_000 0 :: !keep;
          Budget.check b
        done;
        !keep)
  with
  | Error Budget.Oom -> ()
  | Ok _ -> Alcotest.fail "expected oom"
  | Error Budget.Timeout -> Alcotest.fail "expected oom, got timeout"
  | Error (Budget.Ok _) -> Alcotest.fail "unexpected"

let test_budget_unlimited () =
  match Budget.run Budget.unlimited (fun () -> 7) with
  | Ok 7 -> ()
  | _ -> Alcotest.fail "expected success"

let test_timing_measure () =
  let t = Lh_util.Timing.measure ~runs:3 (fun () -> ignore (Sys.opaque_identity (Array.make 100 0))) in
  Alcotest.(check bool) "positive" true (t >= 0.0)

let test_duration_format () =
  Alcotest.(check string) "ms" "4.50ms" (Lh_util.Timing.duration_to_string 0.0045);
  Alcotest.(check string) "s" "2.10s" (Lh_util.Timing.duration_to_string 2.1)

let () =
  Alcotest.run "lh_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "int bounds" `Quick test_prng_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "float unit" `Quick test_prng_float_unit;
          Alcotest.test_case "sample_distinct" `Quick test_prng_sample_distinct;
          Alcotest.test_case "gaussian moments" `Quick test_prng_gaussian_moments;
        ] );
      ( "vec",
        [
          Alcotest.test_case "int push/get/pop" `Quick test_vec_int_push_get;
          Alcotest.test_case "float roundtrip" `Quick test_vec_float_roundtrip;
          Alcotest.test_case "bounds checks" `Quick test_vec_bounds;
        ] );
      ( "csv",
        [
          Alcotest.test_case "split basic" `Quick test_csv_split_basic;
          Alcotest.test_case "split quoted" `Quick test_csv_split_quoted;
          Alcotest.test_case "write/read roundtrip" `Quick test_csv_roundtrip;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic LP" `Quick test_simplex_basic;
          Alcotest.test_case "degenerate LP" `Quick test_simplex_degenerate;
          Alcotest.test_case "triangle cover = 1.5" `Quick test_cover_triangle;
          Alcotest.test_case "4-cycle cover = 2" `Quick test_cover_four_cycle;
          Alcotest.test_case "single edge cover" `Quick test_cover_single_edge;
          Alcotest.test_case "weights feasible + tight" `Quick test_cover_weights_feasible;
          qcheck_cover_vs_brute;
        ] );
      ( "parfor",
        [
          Alcotest.test_case "matches sequential" `Quick test_parfor_matches_sequential;
          Alcotest.test_case "chunk order preserved" `Quick test_parfor_order_preserved;
          Alcotest.test_case "empty range" `Quick test_parfor_empty;
        ] );
      ( "budget",
        [
          Alcotest.test_case "timeout" `Quick test_budget_timeout;
          Alcotest.test_case "oom" `Quick test_budget_oom;
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
        ] );
      ( "timing",
        [
          Alcotest.test_case "measure" `Quick test_timing_measure;
          Alcotest.test_case "format" `Quick test_duration_format;
        ] );
    ]
