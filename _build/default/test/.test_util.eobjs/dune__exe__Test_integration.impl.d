test/test_integration.ml: Alcotest Array Filename Fun Helpers Lazy Levelheaded Lh_datagen Lh_storage Lh_util List QCheck2 Sys Unix
