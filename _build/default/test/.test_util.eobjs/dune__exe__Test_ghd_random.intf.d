test/test_ghd_random.mli:
