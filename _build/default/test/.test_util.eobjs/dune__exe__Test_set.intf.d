test/test_set.mli:
