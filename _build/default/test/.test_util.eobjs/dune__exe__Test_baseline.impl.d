test/test_baseline.ml: Alcotest Array Helpers Lazy Levelheaded Lh_baseline Lh_datagen Lh_sql Lh_storage Lh_util List Printf QCheck2
