test/test_ghd_random.ml: Alcotest Array Hashtbl Helpers Levelheaded Lh_sql Lh_storage Lh_util List Option Printf QCheck2 String
