test/helpers.ml: Alcotest Float Levelheaded Lh_baseline Lh_datagen Lh_sql Lh_storage List Option QCheck2 QCheck_alcotest String
