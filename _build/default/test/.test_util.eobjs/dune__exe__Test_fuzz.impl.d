test/test_fuzz.ml: Alcotest Array Filename Fun Helpers Lazy Levelheaded Lh_sql Lh_storage List QCheck2 String Sys
