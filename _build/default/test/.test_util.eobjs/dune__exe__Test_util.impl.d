test/test_util.ml: Alcotest Array Filename Float Fun Helpers Lh_util List Printf QCheck2 Sys
