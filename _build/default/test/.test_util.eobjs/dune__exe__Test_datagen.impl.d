test/test_datagen.ml: Alcotest Array Hashtbl Levelheaded Lh_blas Lh_datagen Lh_storage List String
