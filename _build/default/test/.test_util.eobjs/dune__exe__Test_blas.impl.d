test/test_blas.ml: Alcotest Array Float Helpers Lh_blas Lh_util List Printf QCheck2
