test/test_ml.ml: Alcotest Array Float Lh_blas Lh_datagen Lh_ml Lh_storage Lh_util List Printf
