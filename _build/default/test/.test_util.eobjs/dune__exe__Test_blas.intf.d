test/test_blas.mli:
