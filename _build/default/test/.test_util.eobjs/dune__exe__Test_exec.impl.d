test/test_exec.ml: Alcotest Array Fun Helpers Lazy Levelheaded Lh_baseline Lh_datagen Lh_sql Lh_storage Lh_util List Printf QCheck2 String
