test/test_set.ml: Alcotest Array Fun Helpers Lh_set List Printf QCheck2
