test/test_sql.ml: Alcotest Array Ast Format Helpers Lexer Lh_sql Lh_storage List Option Parser Printf QCheck2
