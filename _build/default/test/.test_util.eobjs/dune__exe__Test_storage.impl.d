test/test_storage.ml: Alcotest Array Filename Fun Helpers Lh_set Lh_storage Lh_util List QCheck2 String Sys
