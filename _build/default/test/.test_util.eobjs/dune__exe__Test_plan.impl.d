test/test_plan.ml: Alcotest Array Fun Helpers Lazy Levelheaded Lh_sql List Printf QCheck2
