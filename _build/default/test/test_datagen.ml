module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dict = Lh_storage.Dict

let gen sf =
  let dict = Dict.create () in
  (dict, Lh_datagen.Tpch.generate ~dict ~sf ())

let table_named tables name =
  List.find (fun (t : Table.t) -> String.equal t.Table.name name) tables

(* ---- tpch ---- *)

let test_tpch_row_counts () =
  let _, tables = gen 0.01 in
  let counts = Lh_datagen.Tpch.row_counts ~sf:0.01 in
  List.iter
    (fun (t : Table.t) ->
      let want = List.assoc t.Table.name counts in
      if String.equal t.Table.name "lineitem" then begin
        (* approximate: 1-7 lines per order, mean 4 *)
        let lo = want / 2 and hi = want * 3 / 2 in
        Alcotest.(check bool) "lineitem approx" true (t.Table.nrows >= lo && t.Table.nrows <= hi)
      end
      else Alcotest.(check int) t.Table.name want t.Table.nrows)
    tables

let test_tpch_deterministic () =
  let _, a = gen 0.005 in
  let _, b = gen 0.005 in
  List.iter2
    (fun (ta : Table.t) (tb : Table.t) ->
      Alcotest.(check bool) (ta.Table.name ^ " identical") true (Table.to_rows ta = Table.to_rows tb))
    a b

let test_tpch_foreign_keys () =
  let _, tables = gen 0.005 in
  let t = table_named tables in
  let key_set table col =
    let codes = Table.icol table (Schema.find_exn table.Table.schema col) in
    let s = Hashtbl.create 64 in
    Array.iter (fun c -> Hashtbl.replace s c ()) codes;
    s
  in
  let check_fk child ccol parent pcol =
    let parents = key_set (t parent) pcol in
    let codes = Table.icol (t child) (Schema.find_exn (t child).Table.schema ccol) in
    Array.iter
      (fun c -> if not (Hashtbl.mem parents c) then Alcotest.failf "%s.%s: dangling %d" child ccol c)
      codes
  in
  check_fk "nation" "n_regionkey" "region" "r_regionkey";
  check_fk "supplier" "s_nationkey" "nation" "n_nationkey";
  check_fk "customer" "c_nationkey" "nation" "n_nationkey";
  check_fk "orders" "o_custkey" "customer" "c_custkey";
  check_fk "lineitem" "l_orderkey" "orders" "o_orderkey";
  check_fk "lineitem" "l_partkey" "part" "p_partkey";
  check_fk "lineitem" "l_suppkey" "supplier" "s_suppkey";
  check_fk "partsupp" "ps_partkey" "part" "p_partkey";
  check_fk "partsupp" "ps_suppkey" "supplier" "s_suppkey"

let test_tpch_lineitem_consistent_with_partsupp () =
  (* every (l_partkey, l_suppkey) pair must exist in partsupp, or Q9's
     join would silently drop lineitems *)
  let _, tables = gen 0.005 in
  let t = table_named tables in
  let ps = t "partsupp" in
  let pairs = Hashtbl.create 256 in
  let pk = Table.icol ps 0 and sk = Table.icol ps 1 in
  for r = 0 to ps.Table.nrows - 1 do
    Hashtbl.replace pairs (pk.(r), sk.(r)) ()
  done;
  let li = t "lineitem" in
  let lpk = Table.icol li (Schema.find_exn li.Table.schema "l_partkey") in
  let lsk = Table.icol li (Schema.find_exn li.Table.schema "l_suppkey") in
  for r = 0 to li.Table.nrows - 1 do
    if not (Hashtbl.mem pairs (lpk.(r), lsk.(r))) then
      Alcotest.failf "lineitem (%d,%d) not in partsupp" lpk.(r) lsk.(r)
  done

let test_tpch_dates_and_flags () =
  let _, tables = gen 0.005 in
  let li = table_named tables "lineitem" in
  let ship = Table.icol li (Schema.find_exn li.Table.schema "l_shipdate") in
  let flags = Table.icol li (Schema.find_exn li.Table.schema "l_returnflag") in
  let cutoff = Lh_storage.Date.of_string "1995-06-17" in
  let lo = Lh_storage.Date.of_string "1992-01-01" in
  let hi = Lh_storage.Date.of_string "1999-01-01" in
  let dict = li.Table.dict in
  Array.iteri
    (fun r d ->
      if d < lo || d > hi then Alcotest.failf "shipdate out of range: %s" (Lh_storage.Date.to_string d);
      let f = Dict.decode dict flags.(r) in
      if d > cutoff && not (String.equal f "N") then Alcotest.failf "late shipment flagged %s" f)
    ship

let test_tpch_selective_values_exist () =
  (* the constants the benchmark queries filter on must occur *)
  let dict, tables = gen 0.01 in
  ignore tables;
  List.iter
    (fun v ->
      if Dict.find dict v = None then Alcotest.failf "%s missing from generated data" v)
    [ "ASIA"; "AMERICA"; "BRAZIL"; "BUILDING"; "ECONOMY ANODIZED STEEL"; "R"; "N" ]

(* ---- matrices ---- *)

let test_banded_structure () =
  let dict = Dict.create () in
  let m = Lh_datagen.Matrices.banded ~dict ~name:"b" ~n:100 ~nnz_per_row:6 ~bandwidth:10 () in
  let coo = m.Lh_datagen.Matrices.coo in
  let diag = Hashtbl.create 128 in
  Array.iteri
    (fun k i ->
      let j = coo.Lh_blas.Coo.col.(k) in
      if i = j then Hashtbl.replace diag i ();
      if abs (i - j) > 10 then Alcotest.failf "outside band: (%d,%d)" i j)
    coo.Lh_blas.Coo.row;
  for i = 0 to 99 do
    if not (Hashtbl.mem diag i) then Alcotest.failf "diagonal %d missing" i
  done

let test_matrix_table_unique_keys () =
  let dict = Dict.create () in
  List.iter
    (fun (m : Lh_datagen.Matrices.sparse) ->
      let t = m.Lh_datagen.Matrices.table in
      let rows = Table.icol t 0 and cols = Table.icol t 1 in
      let seen = Hashtbl.create 1024 in
      for r = 0 to t.Table.nrows - 1 do
        let key = (rows.(r), cols.(r)) in
        if Hashtbl.mem seen key then Alcotest.failf "%s: duplicate key (%d,%d)" t.Table.name rows.(r) cols.(r);
        Hashtbl.replace seen key ()
      done)
    [
      Lh_datagen.Matrices.harbor_like ~dict ~scale:0.01 ();
      Lh_datagen.Matrices.hv15r_like ~dict ~scale:0.0002 ();
      Lh_datagen.Matrices.nlpkkt_like ~dict ~scale:0.00002 ();
    ]

let test_nlpkkt_symmetric_sparsity () =
  let dict = Dict.create () in
  let m = Lh_datagen.Matrices.nlpkkt_like ~dict ~scale:0.00003 () in
  let coo = m.Lh_datagen.Matrices.coo in
  let entries = Hashtbl.create 1024 in
  Array.iteri (fun k i -> Hashtbl.replace entries (i, coo.Lh_blas.Coo.col.(k)) ()) coo.Lh_blas.Coo.row;
  Hashtbl.iter
    (fun (i, j) () ->
      if not (Hashtbl.mem entries (j, i)) then Alcotest.failf "asymmetric sparsity at (%d,%d)" i j)
    entries

let test_dense_is_complete_grid () =
  let dict = Dict.create () in
  let t, d = Lh_datagen.Matrices.dense ~dict ~name:"d" ~n:9 () in
  Alcotest.(check int) "81 rows" 81 t.Table.nrows;
  (match Levelheaded.Blas_bridge.dense_rect t with
  | Some info -> Alcotest.(check (array int)) "dims" [| 9; 9 |] info.Levelheaded.Blas_bridge.dims
  | None -> Alcotest.fail "dense table not detected as a grid");
  (* the table's value buffer is the row-major dense data *)
  Alcotest.(check bool) "row-major identity" true (Table.fcol t 2 = d.Lh_blas.Dense.data)

let test_to_coo_roundtrip () =
  let dict = Dict.create () in
  let m = Lh_datagen.Matrices.banded ~dict ~name:"b" ~n:50 ~nnz_per_row:4 () in
  let coo2 = Lh_datagen.Matrices.to_coo m.Lh_datagen.Matrices.table in
  Alcotest.(check bool) "same dense" true
    (Lh_blas.Dense.max_abs_diff
       (Lh_blas.Coo.to_dense m.Lh_datagen.Matrices.coo)
       (Lh_blas.Coo.to_dense coo2)
    < 1e-12)

(* ---- voter ---- *)

let test_voter_shapes () =
  let dict = Dict.create () in
  let voters, precincts = Lh_datagen.Voter.generate ~dict ~nvoters:1000 ~nprecincts:20 () in
  Alcotest.(check int) "voters" 1000 voters.Table.nrows;
  Alcotest.(check int) "precincts" 20 precincts.Table.nrows;
  let labels = Table.icol voters (Schema.find_exn voters.Table.schema "v_voted") in
  let ones = Array.fold_left ( + ) 0 labels in
  Alcotest.(check bool) "labels binary" true (Array.for_all (fun v -> v = 0 || v = 1) labels);
  Alcotest.(check bool) "both classes present" true (ones > 50 && ones < 950);
  let prec = Table.icol voters (Schema.find_exn voters.Table.schema "v_precinct") in
  Array.iter (fun p -> if p < 0 || p >= 20 then Alcotest.failf "precinct %d out of range" p) prec

let () =
  Alcotest.run "lh_datagen"
    [
      ( "tpch",
        [
          Alcotest.test_case "row counts" `Quick test_tpch_row_counts;
          Alcotest.test_case "deterministic" `Quick test_tpch_deterministic;
          Alcotest.test_case "foreign keys" `Quick test_tpch_foreign_keys;
          Alcotest.test_case "lineitem/partsupp consistency" `Quick
            test_tpch_lineitem_consistent_with_partsupp;
          Alcotest.test_case "dates and flags" `Quick test_tpch_dates_and_flags;
          Alcotest.test_case "selective constants exist" `Quick test_tpch_selective_values_exist;
        ] );
      ( "matrices",
        [
          Alcotest.test_case "banded structure" `Quick test_banded_structure;
          Alcotest.test_case "unique keys" `Quick test_matrix_table_unique_keys;
          Alcotest.test_case "nlpkkt symmetric sparsity" `Quick test_nlpkkt_symmetric_sparsity;
          Alcotest.test_case "dense grid detection" `Quick test_dense_is_complete_grid;
          Alcotest.test_case "to_coo roundtrip" `Quick test_to_coo_roundtrip;
        ] );
      ("voter", [ Alcotest.test_case "shapes" `Quick test_voter_shapes ]);
    ]
