(* Cross-cutting integration tests: CSV-to-result pipelines, cache
   invalidation, randomized multi-join queries under randomized engine
   configurations. *)

module L = Levelheaded
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

let fresh () = L.Engine.create ()

(* ---- end-to-end CSV pipeline ---- *)

let test_csv_pipeline () =
  let dir = Filename.temp_file "lh_it" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let e = fresh () in
      let sales = Filename.concat dir "sales.csv" in
      Lh_util.Csv.write_file sales
        [
          [ "1"; "10"; "2024-01-05"; "19.99" ];
          [ "1"; "11"; "2024-01-06"; "24.50" ];
          [ "2"; "10"; "2024-02-01"; "7.25" ];
        ];
      let schema =
        Schema.create
          [
            ("product_id", Dtype.Int, Schema.Key);
            ("store_id", Dtype.Int, Schema.Key);
            ("sale_date", Dtype.Date, Schema.Annotation);
            ("amount", Dtype.Float, Schema.Annotation);
          ]
      in
      ignore (L.Engine.load_csv e ~name:"sales" ~schema sales);
      let t =
        L.Engine.query e
          "select product_id, sum(amount) s from sales where sale_date < date '2024-02-01' group by product_id"
      in
      Helpers.check_rows_equal "grouped sums"
        [ [ Dtype.VInt 1; Dtype.VFloat 44.49 ] ]
        (Table.to_rows t))

(* ---- engine cache invalidation on re-registration ---- *)

let test_reregister_invalidates () =
  let e = fresh () in
  let schema = Lh_datagen.Matrices.matrix_schema in
  let dict = L.Engine.dict e in
  let mk vals =
    Table.create ~name:"m" ~schema ~dict
      [|
        Table.Icol (Array.map (fun (i, _, _) -> i) vals);
        Table.Icol (Array.map (fun (_, j, _) -> j) vals);
        Table.Fcol (Array.map (fun (_, _, v) -> v) vals);
      |]
  in
  L.Engine.register e (mk [| (0, 0, 1.0); (1, 1, 2.0) |]);
  let sql = "select m.row, sum(m.v) s from m group by m.row" in
  let r1 = Table.to_rows (L.Engine.query e sql) in
  Alcotest.(check int) "two groups" 2 (List.length r1);
  (* replace the table: the cached trie must not survive *)
  L.Engine.register e (mk [| (7, 0, 5.0) |]);
  let r2 = Table.to_rows (L.Engine.query e sql) in
  Alcotest.(check bool) "new contents" true
    (r2 = [ [ Dtype.VInt 7; Dtype.VFloat 5.0 ] ])

let test_repeat_queries_stable () =
  (* hot runs (cached tries) must return identical results *)
  let e = Lazy.force Helpers.tpch_engine in
  let first = Helpers.engine_rows e Helpers.q5 in
  for _ = 1 to 3 do
    Helpers.check_rows_equal "hot run" first (Helpers.engine_rows e Helpers.q5)
  done

(* ---- engine output ordering contract ---- *)

let test_rows_sorted () =
  let e = Lazy.force Helpers.tpch_engine in
  List.iter
    (fun (name, sql) ->
      let t = L.Engine.query e sql in
      (* group columns prefix the SELECT in all our fixtures with a leading
         group column; just assert global row order is deterministic by
         comparing two runs *)
      let a = Table.to_rows t and b = Table.to_rows (L.Engine.query e sql) in
      if a <> b then Alcotest.failf "%s: nondeterministic row order" name)
    (Helpers.tpch_queries @ Helpers.la_queries)

(* ---- randomized three-table chain joins with filters ---- *)

let gen_chain =
  QCheck2.Gen.(
    let table =
      list_size (int_range 0 25)
        (let* i = int_range 0 4 in
         let* j = int_range 0 4 in
         let* v = int_range (-3) 3 in
         return (i, j, float_of_int v))
    in
    triple table table table)

let register_matrix e name triplets =
  let rows = Array.of_list (List.map (fun (i, _, _) -> i) triplets) in
  let cols = Array.of_list (List.map (fun (_, j, _) -> j) triplets) in
  let vals = Array.of_list (List.map (fun (_, _, v) -> v) triplets) in
  L.Engine.register e
    (Table.create ~name ~schema:Lh_datagen.Matrices.matrix_schema ~dict:(L.Engine.dict e)
       [| Table.Icol rows; Table.Icol cols; Table.Fcol vals |])

let chain_sql =
  "select a.row, sum(a.v * b.v * c.v) s, count(*) n from a, b, c where a.col = b.row and b.col \
   = c.row and c.v > -2 group by a.row"

let qcheck_chain_join =
  Helpers.qtest ~count:100 "3-table chain + filter = oracle" gen_chain (fun (ta, tb, tc) ->
      let e = fresh () in
      register_matrix e "a" ta;
      register_matrix e "b" tb;
      register_matrix e "c" tc;
      let expect = Helpers.oracle_rows e chain_sql in
      let got = Helpers.engine_rows e chain_sql in
      List.length expect = List.length got
      && List.for_all2 (fun x y -> List.for_all2 Helpers.value_close x y) expect got)

(* ---- config fuzz: every configuration computes the same answer ---- *)

let gen_config =
  QCheck2.Gen.(
    let* ae = bool in
    let* relax = bool in
    let* heur = bool in
    let* blas = bool in
    let* policy = oneofl [ L.Config.Cost_based; L.Config.Naive; L.Config.Worst_cost ] in
    let* domains = int_range 1 3 in
    return
      {
        L.Config.default with
        attribute_elimination = ae;
        relax_materialized_first = relax;
        ghd_heuristics = heur;
        blas_targeting = blas && ae;
        attr_order = policy;
        domains;
      })

let qcheck_config_fuzz =
  Helpers.qtest ~count:60 "random config, same answer"
    QCheck2.Gen.(pair gen_config gen_chain)
    (fun (cfg, (ta, tb, tc)) ->
      let e = fresh () in
      register_matrix e "a" ta;
      register_matrix e "b" tb;
      register_matrix e "c" tc;
      let expect = Helpers.oracle_rows e chain_sql in
      L.Engine.set_config e cfg;
      let got = Helpers.engine_rows e chain_sql in
      List.length expect = List.length got
      && List.for_all2 (fun x y -> List.for_all2 Helpers.value_close x y) expect got)

(* ---- dates and EXTRACT end to end ---- *)

let test_extract_group () =
  let e = fresh () in
  let schema =
    Schema.create
      [ ("id", Dtype.Int, Schema.Key); ("d", Dtype.Date, Schema.Annotation);
        ("x", Dtype.Float, Schema.Annotation) ]
  in
  L.Engine.register e
    (Table.of_rows ~name:"t" ~schema ~dict:(L.Engine.dict e)
       [
         [ Dtype.VInt 0; Dtype.VDate (Lh_storage.Date.of_string "1995-03-01"); Dtype.VFloat 1.0 ];
         [ Dtype.VInt 1; Dtype.VDate (Lh_storage.Date.of_string "1995-11-30"); Dtype.VFloat 2.0 ];
         [ Dtype.VInt 2; Dtype.VDate (Lh_storage.Date.of_string "1996-01-01"); Dtype.VFloat 4.0 ];
       ]);
  let t =
    L.Engine.query e "select extract(year from d) y, sum(x) s from t group by extract(year from d)"
  in
  Alcotest.(check bool) "yearly sums" true
    (Table.to_rows t
    = [ [ Dtype.VInt 1995; Dtype.VFloat 3.0 ]; [ Dtype.VInt 1996; Dtype.VFloat 4.0 ] ])

let test_date_group_output_type () =
  let e = Lazy.force Helpers.tpch_engine in
  let t = L.Engine.query e Helpers.q3 in
  let col = Schema.find_exn t.Table.schema "o_orderdate" in
  Alcotest.(check bool) "date column survives" true
    ((Schema.col t.Table.schema col).Schema.dtype = Dtype.Date);
  if t.Table.nrows > 0 then
    match Table.value t ~row:0 ~col with
    | Dtype.VDate _ -> ()
    | v -> Alcotest.failf "expected a date, got %s" (Dtype.value_to_string v)

let () =
  Alcotest.run "levelheaded-integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "csv to result" `Quick test_csv_pipeline;
          Alcotest.test_case "re-register invalidates caches" `Quick test_reregister_invalidates;
          Alcotest.test_case "hot runs stable" `Quick test_repeat_queries_stable;
          Alcotest.test_case "deterministic row order" `Quick test_rows_sorted;
        ] );
      ( "random",
        [ qcheck_chain_join; qcheck_config_fuzz ] );
      ( "dates",
        [
          Alcotest.test_case "extract(year) group" `Quick test_extract_group;
          Alcotest.test_case "date output type" `Quick test_date_group_output_type;
        ] );
    ]
