module Dense = Lh_blas.Dense
module Coo = Lh_blas.Coo
module Csr = Lh_blas.Csr

let rng = Lh_util.Prng.create 99

let random_dense ~rows ~cols =
  Dense.init ~rows ~cols (fun _ _ -> Lh_util.Prng.float rng 2.0 -. 1.0)

let random_coo ~n ~nnz =
  let row = Array.init nnz (fun _ -> Lh_util.Prng.int rng n) in
  let col = Array.init nnz (fun _ -> Lh_util.Prng.int rng n) in
  let value = Array.init nnz (fun _ -> Lh_util.Prng.float rng 2.0 -. 1.0) in
  Coo.create ~nrows:n ~ncols:n ~row ~col ~value

(* ---- dense ---- *)

let test_gemm_small () =
  let a = Dense.of_array ~rows:2 ~cols:2 [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Dense.of_array ~rows:2 ~cols:2 [| 5.0; 6.0; 7.0; 8.0 |] in
  let c = Dense.gemm a b in
  Alcotest.(check bool) "2x2" true (c.Dense.data = [| 19.0; 22.0; 43.0; 50.0 |])

let test_gemm_vs_naive () =
  List.iter
    (fun (n, k, m) ->
      let a = random_dense ~rows:n ~cols:k and b = random_dense ~rows:k ~cols:m in
      let fast = Dense.gemm a b and slow = Dense.gemm_naive a b in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%dx%d" n k m)
        true
        (Dense.max_abs_diff fast slow < 1e-9))
    [ (1, 1, 1); (3, 5, 2); (64, 64, 64); (65, 63, 70); (130, 7, 129) ]

let test_gemv () =
  let a = Dense.of_array ~rows:2 ~cols:3 [| 1.0; 0.0; 2.0; 0.0; 1.0; -1.0 |] in
  Alcotest.(check bool) "gemv" true (Dense.gemv a [| 1.0; 2.0; 3.0 |] = [| 7.0; -1.0 |])

let test_transpose_involutive () =
  let a = random_dense ~rows:7 ~cols:13 in
  Alcotest.(check bool) "t(t(a)) = a" true (Dense.equal (Dense.transpose (Dense.transpose a)) a)

let test_dense_dimension_mismatch () =
  let a = Dense.create ~rows:2 ~cols:3 and b = Dense.create ~rows:2 ~cols:3 in
  Alcotest.check_raises "gemm mismatch" (Invalid_argument "Dense.gemm: dimension mismatch")
    (fun () -> ignore (Dense.gemm a b))

let qcheck_gemm_matches_naive =
  Helpers.qtest ~count:40 "gemm = naive on random shapes"
    QCheck2.Gen.(triple (int_range 1 40) (int_range 1 40) (int_range 1 40))
    (fun (n, k, m) ->
      let a = random_dense ~rows:n ~cols:k and b = random_dense ~rows:k ~cols:m in
      Dense.max_abs_diff (Dense.gemm a b) (Dense.gemm_naive a b) < 1e-9)

let qcheck_gemm_linear =
  Helpers.qtest ~count:30 "gemm is linear in scaling"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 20))
    (fun (n, k) ->
      let a = random_dense ~rows:n ~cols:k and b = random_dense ~rows:k ~cols:n in
      let c1 = Dense.gemm (Dense.scale 2.0 a) b in
      let c2 = Dense.scale 2.0 (Dense.gemm a b) in
      Dense.max_abs_diff c1 c2 < 1e-9)

(* ---- sparse ---- *)

let test_of_coo_sorts_and_folds () =
  let coo =
    Coo.create ~nrows:3 ~ncols:3 ~row:[| 2; 0; 2; 2 |] ~col:[| 1; 0; 1; 0 |]
      ~value:[| 1.0; 5.0; 2.0; 7.0 |]
  in
  let csr = Csr.of_coo coo in
  Alcotest.(check int) "nnz after fold" 3 (Csr.nnz csr);
  Alcotest.(check (array int)) "row_ptr" [| 0; 1; 1; 3 |] csr.Csr.row_ptr;
  Alcotest.(check (array int)) "cols sorted" [| 0; 0; 1 |] csr.Csr.col_idx;
  Alcotest.(check bool) "duplicate summed" true (csr.Csr.values = [| 5.0; 7.0; 3.0 |])

let test_spmv_vs_dense () =
  let coo = random_coo ~n:50 ~nnz:300 in
  let csr = Csr.of_coo coo in
  let x = Array.init 50 (fun _ -> Lh_util.Prng.float rng 1.0) in
  let dense_y = Dense.gemv (Coo.to_dense coo) x in
  let y = Csr.spmv csr x in
  let diff = Array.map2 (fun a b -> Float.abs (a -. b)) dense_y y in
  Alcotest.(check bool) "spmv matches dense" true (Array.for_all (fun d -> d < 1e-9) diff)

let test_spgemm_vs_dense () =
  let a = random_coo ~n:30 ~nnz:150 and b = random_coo ~n:30 ~nnz:150 in
  let ca = Csr.of_coo a and cb = Csr.of_coo b in
  let sparse = Csr.to_dense (Csr.spgemm ca cb) in
  let dense = Dense.gemm_naive (Coo.to_dense a) (Coo.to_dense b) in
  Alcotest.(check bool) "spgemm matches dense" true (Dense.max_abs_diff sparse dense < 1e-8)

let test_csr_transpose () =
  let coo = random_coo ~n:20 ~nnz:80 in
  let csr = Csr.of_coo coo in
  let tt = Csr.transpose (Csr.transpose csr) in
  Alcotest.(check bool) "transpose involutive" true (Csr.equal csr tt);
  Alcotest.(check bool) "transpose = dense transpose" true
    (Dense.max_abs_diff (Csr.to_dense (Csr.transpose csr)) (Dense.transpose (Csr.to_dense csr))
    < 1e-12)

let test_row_nnz () =
  let coo = Coo.create ~nrows:2 ~ncols:2 ~row:[| 0; 0; 1 |] ~col:[| 0; 1; 1 |] ~value:[| 1.; 1.; 1. |] in
  let csr = Csr.of_coo coo in
  Alcotest.(check int) "row 0" 2 (Csr.row_nnz csr 0);
  Alcotest.(check int) "row 1" 1 (Csr.row_nnz csr 1)

let test_coo_validation () =
  Alcotest.check_raises "row out of range" (Invalid_argument "Coo.create: row out of range")
    (fun () -> ignore (Coo.create ~nrows:2 ~ncols:2 ~row:[| 2 |] ~col:[| 0 |] ~value:[| 1.0 |]))

let qcheck_spgemm_random =
  Helpers.qtest ~count:40 "spgemm = dense gemm on random sparse"
    QCheck2.Gen.(pair (int_range 1 25) (int_range 0 120))
    (fun (n, nnz) ->
      let a = random_coo ~n ~nnz and b = random_coo ~n ~nnz in
      let sparse = Csr.to_dense (Csr.spgemm (Csr.of_coo a) (Csr.of_coo b)) in
      let dense = Dense.gemm_naive (Coo.to_dense a) (Coo.to_dense b) in
      Dense.max_abs_diff sparse dense < 1e-8)

let qcheck_spmv_random =
  Helpers.qtest ~count:60 "spmv = dense gemv on random sparse"
    QCheck2.Gen.(pair (int_range 1 30) (int_range 0 150))
    (fun (n, nnz) ->
      let a = random_coo ~n ~nnz in
      let x = Array.init n (fun i -> float_of_int (i mod 5) -. 2.0) in
      let s = Csr.spmv (Csr.of_coo a) x in
      let d = Dense.gemv (Coo.to_dense a) x in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-9) s d)

let qcheck_csr_roundtrip =
  Helpers.qtest ~count:60 "coo -> csr -> dense = coo -> dense"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 0 100))
    (fun (n, nnz) ->
      let a = random_coo ~n ~nnz in
      Dense.max_abs_diff (Csr.to_dense (Csr.of_coo a)) (Coo.to_dense a) < 1e-12)

let () =
  Alcotest.run "lh_blas"
    [
      ( "dense",
        [
          Alcotest.test_case "gemm 2x2" `Quick test_gemm_small;
          Alcotest.test_case "gemm vs naive" `Quick test_gemm_vs_naive;
          Alcotest.test_case "gemv" `Quick test_gemv;
          Alcotest.test_case "transpose involutive" `Quick test_transpose_involutive;
          Alcotest.test_case "dimension checks" `Quick test_dense_dimension_mismatch;
          qcheck_gemm_matches_naive;
          qcheck_gemm_linear;
        ] );
      ( "sparse",
        [
          Alcotest.test_case "of_coo sorts and folds" `Quick test_of_coo_sorts_and_folds;
          Alcotest.test_case "spmv vs dense" `Quick test_spmv_vs_dense;
          Alcotest.test_case "spgemm vs dense" `Quick test_spgemm_vs_dense;
          Alcotest.test_case "transpose" `Quick test_csr_transpose;
          Alcotest.test_case "row_nnz" `Quick test_row_nnz;
          Alcotest.test_case "coo validation" `Quick test_coo_validation;
          qcheck_spgemm_random;
          qcheck_spmv_random;
          qcheck_csr_roundtrip;
        ] );
    ]
