(* Property tests of the GHD layer over random hypergraphs, independent of
   SQL: every candidate must validate, the best FHW must never exceed the
   single-bag width, and must be at least 1. *)

module L = Levelheaded
module Table = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

(* Build a Logical.t for an arbitrary small hypergraph by materializing one
   tiny two/one-column relation per edge and a query joining them. *)
let lquery_of_hypergraph edges =
  let eng = L.Engine.create () in
  let dict = L.Engine.dict eng in
  let pair_schema =
    Schema.create
      [ ("a", Dtype.Int, Schema.Key); ("b", Dtype.Int, Schema.Key);
        ("v", Dtype.Float, Schema.Annotation) ]
  in
  let single_schema =
    Schema.create [ ("a", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]
  in
  List.iteri
    (fun i e ->
      let name = Printf.sprintf "r%d" i in
      let t =
        match e with
        | [ _ ] ->
            Table.of_rows ~name ~schema:single_schema ~dict
              [ [ Dtype.VInt 0; Dtype.VFloat 1.0 ] ]
        | [ _; _ ] ->
            Table.of_rows ~name ~schema:pair_schema ~dict
              [ [ Dtype.VInt 0; Dtype.VInt 0; Dtype.VFloat 1.0 ] ]
        | _ -> assert false
      in
      L.Engine.register eng t)
    edges;
  (* join conditions expressing the vertex identities *)
  let occurrences = Hashtbl.create 16 in
  List.iteri
    (fun i e ->
      List.iteri
        (fun pos v ->
          let col = if pos = 0 then "a" else "b" in
          Hashtbl.replace occurrences v
            ((Printf.sprintf "r%d" i, col)
            :: Option.value (Hashtbl.find_opt occurrences v) ~default:[]))
        e)
    edges;
  let conds = ref [] in
  Hashtbl.iter
    (fun _ occs ->
      match occs with
      | (a0, c0) :: rest ->
          List.iter (fun (a, c) -> conds := Printf.sprintf "%s.%s = %s.%s" a0 c0 a c :: !conds) rest
      | [] -> ())
    occurrences;
  let from =
    String.concat ", " (List.mapi (fun i _ -> Printf.sprintf "r%d" i) edges)
  in
  let sql =
    Printf.sprintf "select sum(r0.v) s from %s%s" from
      (match !conds with [] -> "" | cs -> " where " ^ String.concat " and " cs)
  in
  match
    L.Logical.translate (L.Engine.catalog eng) ~attribute_elimination:true
      (Lh_sql.Parser.parse sql)
  with
  | lq -> Some lq
  | exception L.Logical.Unsupported_query _ -> None

let gen_hypergraph =
  QCheck2.Gen.(
    let* nv = int_range 1 5 in
    let* ne = int_range 1 5 in
    let* edges =
      list_repeat ne
        (let* a = int_range 0 (nv - 1) in
         let* b = int_range 0 (nv - 1) in
         return (List.sort_uniq compare [ a; b ]))
    in
    return edges)

let connected edges =
  match edges with
  | [] -> true
  | first :: _ ->
      let seen = Hashtbl.create 8 in
      let rec grow frontier =
        match frontier with
        | [] -> ()
        | v :: rest ->
            if Hashtbl.mem seen v then grow rest
            else begin
              Hashtbl.replace seen v ();
              let next =
                List.concat_map (fun e -> if List.mem v e then e else []) edges
              in
              grow (next @ rest)
            end
      in
      grow first;
      List.for_all (List.for_all (Hashtbl.mem seen)) edges

let qcheck_candidates_valid =
  Helpers.qtest ~count:150 "all GHD candidates validate on random hypergraphs" gen_hypergraph
    (fun edges ->
      QCheck2.assume (connected edges);
      match lquery_of_hypergraph edges with
      | None -> QCheck2.assume_fail ()
      | Some lq ->
          let ev = L.Logical.edge_vertex_list lq in
          let nv = Array.length lq.L.Logical.vertices in
          List.for_all
            (fun c -> L.Ghd.validate ~nvertices:nv ~edges:ev c = Ok ())
            (L.Ghd.candidates lq))

let qcheck_fhw_bounds =
  Helpers.qtest ~count:150 "1 <= best fhw <= single-bag width" gen_hypergraph (fun edges ->
      QCheck2.assume (connected edges);
      match lquery_of_hypergraph edges with
      | None -> QCheck2.assume_fail ()
      | Some lq ->
          let nv = Array.length lq.L.Logical.vertices in
          if nv = 0 then true
          else begin
            let ghd = L.Ghd.plan lq ~heuristics:true in
            let single =
              (Lh_util.Simplex.fractional_edge_cover ~nvertices:nv
                 ~edges:(L.Logical.edge_vertex_list lq))
                .Lh_util.Simplex.width
            in
            ghd.L.Ghd.fhw >= 1.0 -. 1e-9 && ghd.L.Ghd.fhw <= single +. 1e-6
          end)

let qcheck_heuristic_best_first =
  Helpers.qtest ~count:100 "candidates are sorted best-heuristic-first" gen_hypergraph
    (fun edges ->
      QCheck2.assume (connected edges);
      match lquery_of_hypergraph edges with
      | None -> QCheck2.assume_fail ()
      | Some lq ->
          let cands = L.Ghd.candidates lq in
          let nnodes c = List.length (L.Ghd.nodes c) in
          (* first candidate has no more nodes than the last (heuristic 1) *)
          (match (cands, List.rev cands) with
          | best :: _, worst :: _ -> nnodes best <= nnodes worst
          | _ -> true))

let () =
  Alcotest.run "levelheaded-ghd-random"
    [
      ( "properties",
        [ qcheck_candidates_valid; qcheck_fhw_bounds; qcheck_heuristic_best_first ] );
    ]
