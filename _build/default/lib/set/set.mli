(** Trie sets: the values stored at one trie level under one parent tuple.

    LevelHeaded stores dense sets using a bitset and sparse sets using
    unsigned integers (§III-B); the layout is chosen per set at build time.
    All values are nonnegative dictionary-encoded codes. *)

type layout = Sparse  (** "uint": sorted array *) | Dense  (** "bs": bitset *)

type t = Uint of int array | Bs of Bitset.t

val empty : t

val of_sorted_array : ?layout:layout -> int array -> t
(** The array must be sorted with distinct nonnegative values. Without
    [?layout] the density rule {!choose_layout} decides. *)

val of_array : ?layout:layout -> int array -> t
(** Sorts and deduplicates a copy of the input first. *)

val of_bitset : Bitset.t -> t

val choose_layout : card:int -> range:int -> layout
(** Dense when the value span is at most {!dense_factor} times the
    cardinality (and the set is not tiny). *)

val dense_factor : int

val layout : t -> layout
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val iter : (int -> unit) -> t -> unit
(** Visits values in increasing order. *)

val iteri : (int -> int -> unit) -> t -> unit
(** [iteri f s] calls [f rank value] with [rank] the 0-based position of
    [value] in sorted order — the index used to address trie children. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_array : t -> int array

val rank : t -> int -> int
(** [rank s v] is the sorted position of [v] in [s]; raises [Not_found]
    when absent. Constant-ish time for [Uint] (binary search); for [Bs] it
    is O(words) and used only on cold paths. *)

val nth : t -> int -> int
(** [nth s i] is the value at sorted position [i]. *)

val min_elt : t -> int
(** Raises [Not_found] when empty. *)

val max_elt : t -> int
(** Raises [Not_found] when empty. *)

val singleton : int -> t
val filter : (int -> bool) -> t -> t

val filter_range : lo:int -> hi:int -> t -> t
(** Keeps values in [\[lo, hi\]]. *)

val union : t -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
