(** Set intersection — the bottleneck operator of the generic WCOJ
    algorithm (Algorithm 1). Three specialized kernels mirror the paper's
    icost experiment (Fig. 5a): uint∩uint (merge or galloping), bs∩uint
    (probes), and bs∩bs (word-wise AND). *)

val uint_uint : int array -> int array -> int array
(** Sorted-array intersection. Switches from a linear merge to galloping
    (exponential search) when one side is much smaller than the other. *)

val inter : Set.t -> Set.t -> Set.t
(** Dispatches on the layouts of the two operands. *)

val inter_many : Set.t list -> Set.t
(** Intersection of one or more sets. Bitset operands are processed first
    and, within a layout, smaller sets first (§V-A1: "the bs sets are always
    processed first"). Raises [Invalid_argument] on the empty list. *)

val count : Set.t -> Set.t -> int
(** Cardinality of the intersection without materializing it (bs∩bs only
    avoids allocation of values; other layouts still walk both inputs). *)
