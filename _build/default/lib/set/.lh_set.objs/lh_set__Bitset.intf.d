lib/set/bitset.mli:
