lib/set/bitset.ml: Array Lh_util
