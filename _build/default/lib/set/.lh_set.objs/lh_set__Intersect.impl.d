lib/set/intersect.ml: Array Bitset Lh_util List Set
