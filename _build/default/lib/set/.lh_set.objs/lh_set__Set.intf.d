lib/set/set.mli: Bitset Format
