lib/set/intersect.mli: Set
