lib/set/set.ml: Array Bitset Format Lh_util
