(* Galloping pays off when one operand is drastically smaller; 16x is the
   conventional crossover. *)
let gallop_ratio = 16

(* First index in arr.(lo..) with arr.(i) >= v, found by exponential search
   followed by binary search within the located window. *)
let gallop_lower_bound arr lo v =
  let n = Array.length arr in
  if lo >= n || arr.(lo) >= v then lo
  else begin
    let step = ref 1 in
    let prev = ref lo in
    let cur = ref (lo + 1) in
    while !cur < n && arr.(!cur) < v do
      prev := !cur;
      step := !step * 2;
      cur := !cur + !step
    done;
    let hi = min !cur n in
    let rec bin lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if arr.(mid) < v then bin (mid + 1) hi else bin lo mid
    in
    bin (!prev + 1) hi
  end

let uint_uint a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    (* Ensure a is the smaller side. *)
    let a, b, la, lb = if la <= lb then (a, b, la, lb) else (b, a, lb, la) in
    let out = Lh_util.Vec.Int.create ~capacity:la () in
    if la * gallop_ratio < lb then begin
      (* Galloping: search each element of the small side in the large. *)
      let j = ref 0 in
      for i = 0 to la - 1 do
        let v = a.(i) in
        j := gallop_lower_bound b !j v;
        if !j < lb && b.(!j) = v then Lh_util.Vec.Int.push out v
      done
    end
    else begin
      let i = ref 0 and j = ref 0 in
      while !i < la && !j < lb do
        let x = a.(!i) and y = b.(!j) in
        if x < y then incr i
        else if y < x then incr j
        else begin
          Lh_util.Vec.Int.push out x;
          incr i;
          incr j
        end
      done
    end;
    Lh_util.Vec.Int.to_array out
  end

let inter a b =
  match (a, b) with
  | Set.Uint x, Set.Uint y -> Set.Uint (uint_uint x y)
  | Set.Bs x, Set.Bs y -> Set.Bs (Bitset.inter x y)
  | Set.Bs x, Set.Uint y | Set.Uint y, Set.Bs x -> Set.Uint (Bitset.inter_uint x y)

let inter_many sets =
  match sets with
  | [] -> invalid_arg "Intersect.inter_many: empty list"
  | [ s ] -> s
  | _ ->
      let order s =
        (* Bitsets first, then ascending cardinality within each layout. *)
        match Set.layout s with
        | Set.Dense -> (0, Set.cardinality s)
        | Set.Sparse -> (1, Set.cardinality s)
      in
      let sorted = List.sort (fun a b -> compare (order a) (order b)) sets in
      (match sorted with
      | first :: rest ->
          List.fold_left (fun acc s -> if Set.is_empty acc then acc else inter acc s) first rest
      | [] -> assert false)

let count a b =
  match (a, b) with
  | Set.Bs x, Set.Bs y -> Bitset.cardinality (Bitset.inter x y)
  | _ -> Set.cardinality (inter a b)
