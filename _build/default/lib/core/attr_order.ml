type layout_guess = Guess_bs | Guess_uint

let icost_pair a b =
  match (a, b) with
  | Guess_bs, Guess_bs -> 1
  | Guess_bs, Guess_uint | Guess_uint, Guess_bs -> 10
  | Guess_uint, Guess_uint -> 50

type rel_info = {
  rvertices : int list;
  rcard : int;
  reselected : bool;
  rdense : bool;
}

let scores rels =
  let heavy = List.fold_left (fun acc r -> max acc r.rcard) 1 rels in
  List.map (fun r -> Float.ceil (100.0 *. float_of_int r.rcard /. float_of_int heavy)) rels

let vertex_weights rels =
  let ss = scores rels in
  fun v ->
    let here = List.filter (fun (r, _) -> List.mem v r.rvertices) (List.combine rels ss) in
    match here with
    | [] -> 1.0
    | _ ->
        let any_selected = List.exists (fun (r, _) -> r.reselected) here in
        let pick = if any_selected then Float.max else Float.min in
        List.fold_left
          (fun acc (_, s) -> pick acc s)
          (if any_selected then neg_infinity else infinity)
          here

let vertex_icost ~rels ~order pos =
  let v = List.nth order pos in
  let before = List.filteri (fun i _ -> i < pos) order in
  let layouts =
    List.filter_map
      (fun r ->
        if r.rdense || not (List.mem v r.rvertices) then None
        else if List.exists (fun u -> List.mem u r.rvertices) before then Some Guess_uint
        else Some Guess_bs (* first trie level of this relation: Obs. 5.1 *))
      rels
  in
  let layouts = List.sort compare layouts (* Guess_bs < Guess_uint: bs processed first *) in
  match layouts with
  | [] | [ _ ] -> 0.0
  | first :: rest ->
      let total, _ =
        List.fold_left
          (fun (acc, cur) l ->
            let c = icost_pair cur l in
            let res = if cur = Guess_bs && l = Guess_bs then Guess_bs else Guess_uint in
            (acc + c, res))
          (0, first) rest
      in
      float_of_int total

let cost ~rels ~weights order =
  List.fold_left ( +. ) 0.0
    (List.mapi (fun pos v -> vertex_icost ~rels ~order pos *. weights v) order)

type result = { order : int list; relaxed : bool; ocost : float }

(* All permutations of a list. Node bags are tiny (<= ~6 vertices). *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (fun y -> y <> x) l)))
        l

let respects_global ~global_order order =
  let positions = List.filter_map (fun v -> List.find_index (( = ) v) global_order) order in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  increasing positions

let valid_orders ~relax ~vertices ~materialized ~global_order =
  let is_mat v = List.mem v materialized in
  let base =
    permutations vertices
    |> List.filter (fun order ->
           (* materialized attributes first *)
           let rec check seen_proj = function
             | [] -> true
             | v :: rest ->
                 if is_mat v then (not seen_proj) && check false rest
                 else check true rest
           in
           check false order)
    |> List.filter (fun order ->
           respects_global ~global_order (List.filter is_mat order))
  in
  let relaxed_variants =
    if not relax then []
    else
      List.filter_map
        (fun order ->
          (* §V-A2: swap a trailing [materialized; projected] pair. *)
          match List.rev order with
          | p :: m :: rest when (not (is_mat p)) && is_mat m ->
              Some (List.rev (m :: p :: rest), true)
          | _ -> None)
        base
  in
  List.map (fun o -> (o, false)) base @ relaxed_variants

let choose ~policy ~relax ~rels ~weights ~vertices ~materialized ~global_order =
  let cands = valid_orders ~relax ~vertices ~materialized ~global_order in
  let cands = if cands = [] then valid_orders ~relax:false ~vertices ~materialized ~global_order:[] else cands in
  let with_cost = List.map (fun (o, rx) -> (cost ~rels ~weights o, rx, o)) cands in
  match policy with
  | Config.Naive ->
      (* What a WCOJ engine without the optimizer picks: the first valid
         order in vertex-id order, never relaxed. *)
      let o = List.sort compare materialized @ List.sort compare (List.filter (fun v -> not (List.mem v materialized)) vertices) in
      if respects_global ~global_order (List.filter (fun v -> List.mem v materialized) o) then
        { order = o; relaxed = false; ocost = cost ~rels ~weights o }
      else
        let c, rx, o = List.hd (List.filter (fun (_, rx, _) -> not rx) with_cost) in
        { order = o; relaxed = rx; ocost = c }
  | Config.Worst_cost ->
      let non_relaxed = List.filter (fun (_, rx, _) -> not rx) with_cost in
      let c, rx, o =
        List.fold_left (fun (bc, brx, bo) (c, rx, o) -> if c > bc then (c, rx, o) else (bc, brx, bo))
          (List.hd non_relaxed) (List.tl non_relaxed)
      in
      { order = o; relaxed = rx; ocost = c }
  | Config.Cost_based ->
      (* Relaxed variants only beat their base order when they lower the
         cost; choosing the global minimum (ties: unrelaxed first, then
         lexicographic) implements exactly that. *)
      let sorted =
        List.sort
          (fun (c1, rx1, o1) (c2, rx2, o2) -> compare (c1, rx1, o1) (c2, rx2, o2))
          with_cost
      in
      let c, rx, o = List.hd sorted in
      { order = o; relaxed = rx; ocost = c }
