(** Generalized hypertree decompositions (§II-B, §IV-B).

    Candidate GHDs are enumerated over bags that are unions of hyperedge
    vertex sets, recursively splitting the remaining edges into components
    connected through non-bag vertices (which makes the running
    intersection property hold by construction). Candidates are ranked by
    fractional hypertree width first (computed exactly with the fractional
    edge cover LP), then by the paper's four tie-break heuristics:

    + fewer tree nodes,
    + smaller depth,
    + fewer shared vertices between nodes,
    + deeper selections.

    One restriction (documented in DESIGN.md): GROUP BY key vertices must
    appear in the root bag, so grouped keys are never aggregated away in a
    child; candidates violating this are discarded. *)

type bag = {
  bag_vertices : int list;  (** sorted vertex ids *)
  bag_edges : int list;  (** edge ids assigned (covered) here *)
  interface : int list;  (** vertices shared with the parent; [] at the root *)
  children : bag list;
}

type t = { root : bag; fhw : float }

val candidates : Logical.t -> t list
(** All minimum-FHW candidates, best heuristic score first. Never empty for
    a query with at least one edge and one vertex. *)

val plan : Logical.t -> heuristics:bool -> t
(** The chosen GHD: the heuristic-best candidate, or the heuristic-worst
    one when [heuristics] is false (the ablation of §IV-B). *)

val validate : nvertices:int -> edges:int list array -> t -> (unit, string) result
(** Checks edge coverage, the running intersection property, and interface
    consistency — used by property tests. *)

val nodes : t -> bag list
(** All bags, preorder. *)

val pp : Logical.t -> Format.formatter -> t -> unit
