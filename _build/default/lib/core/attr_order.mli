(** The cost-based WCOJ attribute-ordering optimizer (§V).

    For every GHD node the optimizer enumerates the attribute orders that
    put materialized attributes first (optionally relaxing the rule by one
    last-two swap, §V-A2) and respect the global materialized order, and
    picks the cheapest under

    {v cost = Σ_i icost(v_i) × weight(v_i) v}

    icost (§V-A): every relation guesses the layout of its [v]-sets as
    dense (bs) when [v] is the relation's first trie level in the order and
    sparse (uint) otherwise (Obs. 5.1); the per-vertex icost folds the
    pairwise costs bs∩bs = 1, bs∩uint = 10, uint∩uint = 50 with bs operands
    processed first. A completely dense relation needs no intersection and
    contributes nothing; a vertex with at most one (non-dense) relation
    costs 0.

    weight (§V-B): every relation gets a cardinality score
    [ceil(100·|r|/|r_heavy|)]; a vertex weighs the {e maximum} score of its
    relations when one of them carries an equality selection (work that can
    be eliminated early) and the {e minimum} score otherwise (an
    intersection is at most as large as its smallest set) — Obs. 5.2. *)

type layout_guess = Guess_bs | Guess_uint

val icost_pair : layout_guess -> layout_guess -> int
(** The Fig. 5a-derived constants: 1 / 10 / 50. *)

type rel_info = {
  rvertices : int list;  (** this relation's vertices within the node *)
  rcard : int;
  reselected : bool;
  rdense : bool;  (** completely dense: contributes icost 0 *)
}

val scores : rel_info list -> float list
(** Per-relation cardinality scores out of 100. *)

val vertex_weights : rel_info list -> int -> float
(** Weight function over vertex ids, derived from [scores] and the
    min/max rule above. The list should contain {e all} query relations,
    not just one node's. *)

val vertex_icost : rels:rel_info list -> order:int list -> int -> float
(** icost of the vertex at the given position of [order]. *)

val cost : rels:rel_info list -> weights:(int -> float) -> int list -> float
(** Total cost of an order. *)

type result = { order : int list; relaxed : bool; ocost : float }

val choose :
  policy:Config.attr_order_policy ->
  relax:bool ->
  rels:rel_info list ->
  weights:(int -> float) ->
  vertices:int list ->
  materialized:int list ->
  global_order:int list ->
  result
(** Selects the attribute order for one GHD node. [materialized] vertices
    must precede projected ones (modulo relaxation); materialized vertices
    present in [global_order] keep their relative order. *)

val valid_orders :
  relax:bool -> vertices:int list -> materialized:int list -> global_order:int list ->
  (int list * bool) list
(** All candidate (order, relaxed) pairs — exposed for tests and Fig. 5
    experiments. *)
