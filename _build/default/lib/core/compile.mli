(** Compilation of single-relation expressions and predicates to closures
    over a table's column buffers.

    Column references are resolved by the caller-supplied [resolve]
    function (the translator knows which alias binds to which table); the
    compiled closures then read the column arrays directly, so evaluation
    per row performs no name lookups or dispatch on dtype. *)

exception Unsupported of string

val scalar :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.expr -> int -> float
(** Numeric evaluator (row -> float). Dates evaluate to their day code.
    Raises {!Unsupported} at compile time on string-typed subexpressions in
    numeric position. *)

val code :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.expr -> int -> int
(** Int-code evaluator for GROUP BY expressions: a plain int/date/string
    column yields its stored code; [EXTRACT(YEAR ...)] yields the year. *)

val code_dtype :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.expr -> Lh_storage.Dtype.t
(** The dtype the codes of {!code} decode as. *)

val pred :
  Lh_storage.Table.t -> resolve:(Lh_sql.Ast.col_ref -> int) -> Lh_sql.Ast.pred -> int -> bool
(** Row predicate. String columns support [=], [<>], [LIKE] and
    [NOT LIKE]; order comparisons on strings raise {!Unsupported} (the
    shared dictionary is not order-preserving). *)

val const_value : Lh_sql.Ast.expr -> Lh_storage.Dtype.value option
(** Evaluates a column-free expression to a constant, if it is one. *)
