type bag = {
  bag_vertices : int list;
  bag_edges : int list;
  interface : int list;
  children : bag list;
}

type t = { root : bag; fhw : float }

let union_all lists = List.sort_uniq compare (List.concat lists)
let subset a b = List.for_all (fun x -> List.mem x b) a
let inter a b = List.filter (fun x -> List.mem x b) a

(* All decompositions of the component [avail] (edge ids) whose root bag
   must contain [interface].  Bags are unions of edge vertex sets. *)
let rec decompose ~edge_verts ~memo avail interface =
  let key = (avail, interface) in
  match Hashtbl.find_opt memo key with
  | Some r -> r
  | None ->
      let avail_arr = Array.of_list avail in
      let n = Array.length avail_arr in
      let results = ref [] in
      let seen_bags = Hashtbl.create 16 in
      for mask = 1 to (1 lsl n) - 1 do
        let s = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) (Array.to_list avail_arr) in
        let bagv = union_all (List.map (fun e -> edge_verts.(e)) s) in
        if subset interface bagv && not (Hashtbl.mem seen_bags bagv) then begin
          Hashtbl.replace seen_bags bagv ();
          let assigned, rest =
            List.partition (fun e -> subset edge_verts.(e) bagv) avail
          in
          if rest = [] then
            results := { bag_vertices = bagv; bag_edges = assigned; interface; children = [] } :: !results
          else begin
            (* Split [rest] into components connected through non-bag
               vertices; components sharing only bag vertices are
               independent subtrees (running intersection holds). *)
            let rest_arr = Array.of_list rest in
            let m = Array.length rest_arr in
            let comp = Array.make m (-1) in
            let rec mark i c =
              if comp.(i) = -1 then begin
                comp.(i) <- c;
                for j = 0 to m - 1 do
                  if comp.(j) = -1 then begin
                    let shared =
                      inter edge_verts.(rest_arr.(i)) edge_verts.(rest_arr.(j))
                      |> List.filter (fun v -> not (List.mem v bagv))
                    in
                    if shared <> [] then mark j c
                  end
                done
              end
            in
            let ncomp = ref 0 in
            for i = 0 to m - 1 do
              if comp.(i) = -1 then begin
                mark i !ncomp;
                incr ncomp
              end
            done;
            let components =
              List.init !ncomp (fun c ->
                  List.filteri (fun i _ -> comp.(i) = c) (Array.to_list rest_arr))
            in
            let child_options =
              List.map
                (fun c ->
                  let iface = inter (union_all (List.map (fun e -> edge_verts.(e)) c)) bagv in
                  decompose ~edge_verts ~memo c iface)
                components
            in
            (* Cartesian product of per-component choices. *)
            let combos =
              List.fold_left
                (fun acc opts -> List.concat_map (fun tail -> List.map (fun o -> o :: tail) opts) acc)
                [ [] ] child_options
            in
            List.iter
              (fun children ->
                results :=
                  { bag_vertices = bagv; bag_edges = assigned; interface; children = List.rev children }
                  :: !results)
              combos
          end
        end
      done;
      let r = List.rev !results in
      Hashtbl.replace memo key r;
      r

let rec all_bags ?(depth = 0) bag = (depth, bag) :: List.concat_map (all_bags ~depth:(depth + 1)) bag.children

let nodes t = List.map snd (all_bags t.root)

(* Fractional cover width of one bag, using every query edge projected onto
   the bag (the standard FHW node width). *)
let bag_width ~edge_verts bagv =
  let vs = Array.of_list bagv in
  let index = Hashtbl.create 8 in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vs;
  let projected =
    Array.to_list edge_verts
    |> List.filter_map (fun verts ->
           match List.filter_map (fun v -> Hashtbl.find_opt index v) verts with
           | [] -> None
           | proj -> Some proj)
  in
  if bagv = [] then 0.0
  else
    (Lh_util.Simplex.fractional_edge_cover ~nvertices:(Array.length vs)
       ~edges:(Array.of_list projected))
      .Lh_util.Simplex.width

let fhw_of ~edge_verts root =
  List.fold_left (fun acc (_, b) -> Float.max acc (bag_width ~edge_verts b.bag_vertices)) 0.0
    (all_bags root)

(* Heuristic score (§IV-B), lexicographic minimize:
   node count, depth, shared vertices, negated selection depth. *)
let score (lq : Logical.t) root =
  let bags = all_bags root in
  let nnodes = List.length bags in
  let depth = List.fold_left (fun acc (d, _) -> max acc d) 0 bags in
  let shared =
    List.fold_left (fun acc (_, b) -> acc + List.length b.interface) 0 bags
  in
  let sel_depth =
    List.fold_left
      (fun acc (d, b) ->
        acc
        + List.fold_left
            (fun a e -> if lq.Logical.edges.(e).Logical.eq_selected then a + d else a)
            0 b.bag_edges)
      0 bags
  in
  (nnodes, depth, shared, -sel_depth)

let group_key_vertices (lq : Logical.t) =
  Array.to_list lq.Logical.group_by
  |> List.filter_map (function Logical.Group_key v -> Some v | Logical.Group_ann _ -> None)

let candidates (lq : Logical.t) =
  let edge_verts = Logical.edge_vertex_list lq in
  let nedges = Array.length edge_verts in
  if nedges = 0 then invalid_arg "Ghd.candidates: no edges";
  let memo = Hashtbl.create 64 in
  let all = decompose ~edge_verts ~memo (List.init nedges Fun.id) [] in
  let gkeys = group_key_vertices lq in
  let valid = List.filter (fun root -> subset gkeys root.bag_vertices) all in
  let valid = if valid = [] then all else valid in
  let scored =
    List.map (fun root -> (fhw_of ~edge_verts root, score lq root, root)) valid
  in
  let min_fhw = List.fold_left (fun acc (w, _, _) -> Float.min acc w) infinity scored in
  let best =
    List.filter (fun (w, _, _) -> w < min_fhw +. 1e-6) scored
    |> List.sort (fun (_, s1, _) (_, s2, _) -> compare s1 s2)
  in
  List.map (fun (w, _, root) -> { root; fhw = w }) best

let plan lq ~heuristics =
  match candidates lq with
  | [] -> failwith "Ghd.plan: no candidates"
  | first :: _ as cs -> if heuristics then first else List.nth cs (List.length cs - 1)

let validate ~nvertices ~edges t =
  let bags = all_bags t.root in
  let covered = Array.make (Array.length edges) false in
  let problems = ref [] in
  List.iter
    (fun (_, b) ->
      List.iter
        (fun e ->
          if covered.(e) then problems := Printf.sprintf "edge %d assigned twice" e :: !problems;
          covered.(e) <- true;
          if not (subset edges.(e) b.bag_vertices) then
            problems := Printf.sprintf "edge %d not contained in its bag" e :: !problems)
        b.bag_edges)
    bags;
  Array.iteri (fun e c -> if not c then problems := Printf.sprintf "edge %d uncovered" e :: !problems) covered;
  (* Running intersection: bags containing each vertex form a subtree. *)
  for v = 0 to nvertices - 1 do
    (* Count connected groups of bags containing v by walking the tree. *)
    let rec walk bag inside_above =
      let here = List.mem v bag.bag_vertices in
      let new_component = here && not inside_above in
      let below =
        List.fold_left (fun acc c -> acc + walk c here) 0 bag.children
      in
      below + (if new_component then 1 else 0)
    in
    let groups = walk t.root false in
    if groups > 1 then problems := Printf.sprintf "vertex %d violates running intersection" v :: !problems
  done;
  (* Interfaces. *)
  let rec check_iface bag =
    List.iter
      (fun c ->
        let want = inter c.bag_vertices bag.bag_vertices in
        if List.sort compare c.interface <> List.sort compare want then
          problems := "interface mismatch" :: !problems;
        check_iface c)
      bag.children
  in
  check_iface t.root;
  if t.root.interface <> [] then problems := "root has an interface" :: !problems;
  match !problems with [] -> Ok () | ps -> Error (String.concat "; " ps)

let pp (lq : Logical.t) fmt t =
  let vname v = lq.Logical.vertices.(v).Logical.vname in
  let rec go indent bag =
    Format.fprintf fmt "%s[%s] edges: %s@," indent
      (String.concat ", " (List.map vname bag.bag_vertices))
      (String.concat ", " (List.map (fun e -> lq.Logical.edges.(e).Logical.alias) bag.bag_edges));
    List.iter (go (indent ^ "  ")) bag.children
  in
  Format.fprintf fmt "@[<v>GHD (fhw = %g):@," t.fhw;
  go "  " t.root;
  Format.fprintf fmt "@]"
