module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

type t = {
  cat : Catalog.t;
  mutable cfg : Config.t;
  dense_cache : (string, Blas_bridge.dense_info option) Hashtbl.t;
  trie_cache : Executor.trie_cache;
}

type path = Scan_path | Wcoj_path | Blas_path

type explain = { epath : path; efhw : float option; etext : string }

let create ?(config = Config.default) () =
  {
    cat = Catalog.create ();
    cfg = config;
    dense_cache = Hashtbl.create 8;
    trie_cache = Hashtbl.create 32;
  }

let config t = t.cfg
let set_config t cfg = t.cfg <- cfg
let catalog t = t.cat
let register t table =
  (* Re-registering a name invalidates cached plans/tries for it. *)
  Hashtbl.reset t.trie_cache;
  Hashtbl.reset t.dense_cache;
  Catalog.register t.cat table
let dict t = Catalog.dict t.cat

let register_rows t ~name ~schema rows =
  let table = T.of_rows ~name ~schema ~dict:(Catalog.dict t.cat) rows in
  Catalog.register t.cat table;
  table

let load_csv t ~name ~schema ?sep path =
  Hashtbl.reset t.trie_cache;
  Hashtbl.reset t.dense_cache;
  Catalog.load_csv t.cat ~name ~schema ?sep path

let dense_info t (table : T.t) =
  let key = Printf.sprintf "%s/%d" table.T.name table.T.nrows in
  match Hashtbl.find_opt t.dense_cache key with
  | Some i -> i
  | None ->
      let i = Blas_bridge.dense_rect table in
      Hashtbl.replace t.dense_cache key i;
      i

(* ------------------------------------------------------------------ *)
(* Result assembly                                                      *)

let finalize_rows (lq : Logical.t) (rows : Executor.row list) ~dict ~name =
  let n = List.length rows in
  let rows_arr = Array.of_list rows in
  let columns =
    List.map
      (fun (o : Logical.out_col) ->
        match o.Logical.okind with
        | Logical.Out_group i ->
            T.Icol (Array.init n (fun r -> rows_arr.(r).Executor.gcodes.(i)))
        | Logical.Out_sum slots ->
            let value r =
              List.fold_left (fun acc j -> acc +. rows_arr.(r).Executor.slots.(j)) 0.0 slots
            in
            if o.Logical.odtype = Dtype.Int then
              T.Icol (Array.init n (fun r -> int_of_float (Float.round (value r))))
            else T.Fcol (Array.init n value)
        | Logical.Out_avg (slots, cnt) ->
            T.Fcol
              (Array.init n (fun r ->
                   let c = rows_arr.(r).Executor.slots.(cnt) in
                   if c = 0.0 then 0.0
                   else
                     List.fold_left (fun acc j -> acc +. rows_arr.(r).Executor.slots.(j)) 0.0 slots
                     /. c))
        | Logical.Out_minmax j -> T.Fcol (Array.init n (fun r -> rows_arr.(r).Executor.slots.(j))))
      lq.Logical.outputs
  in
  let schema =
    Schema.create
      (List.map
         (fun (o : Logical.out_col) ->
           let kind =
             match o.Logical.okind with
             | Logical.Out_group i -> (
                 match lq.Logical.group_by.(i) with
                 | Logical.Group_key _ -> Schema.Key
                 | Logical.Group_ann _ -> Schema.Annotation)
             | Logical.Out_sum _ | Logical.Out_avg _ | Logical.Out_minmax _ -> Schema.Annotation
           in
           (o.Logical.oname, o.Logical.odtype, kind))
         lq.Logical.outputs)
  in
  T.create ~name ~schema ~dict (Array.of_list columns)

(* ------------------------------------------------------------------ *)

type decided =
  | Use_scan
  | Use_blas
  | Use_wcoj of Ghd.t * Executor.pnode

let decide t (lq : Logical.t) =
  if Array.length lq.Logical.vertices = 0 then Use_scan
  else begin
    let blas_ok =
      t.cfg.Config.blas_targeting && t.cfg.Config.attribute_elimination
      && Option.is_some (Blas_bridge.match_kernel lq ~dense_of:(dense_info t))
    in
    if blas_ok then Use_blas
    else begin
      let ghd = Ghd.plan lq ~heuristics:t.cfg.Config.ghd_heuristics in
      let dense_of (e : Logical.edge) = Option.is_some (dense_info t e.Logical.table) in
      let pnode = Executor.physical t.cfg lq ~dense_of ghd in
      Use_wcoj (ghd, pnode)
    end
  end

let explain_of t lq decided =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "%a@." Logical.pp lq;
  let path, fhw =
    match decided with
    | Use_scan ->
        Format.fprintf fmt "path: columnar scan (no join keys)@.";
        (Scan_path, None)
    | Use_blas ->
        Format.fprintf fmt "path: dense BLAS kernel (attribute-eliminated buffers)@.";
        (Blas_path, None)
    | Use_wcoj (ghd, pnode) ->
        Format.fprintf fmt "%a@.%a@." (Ghd.pp lq) ghd (Executor.pp_plan lq) pnode;
        (Wcoj_path, Some ghd.Ghd.fhw)
  in
  Format.pp_print_flush fmt ();
  ignore t;
  { epath = path; efhw = fhw; etext = Buffer.contents buf }

let run_decided t lq decided =
  let rows =
    match decided with
    | Use_scan -> Executor.run_scan t.cfg lq
    | Use_blas -> (
        match Blas_bridge.try_blas lq ~dense_of:(dense_info t) with
        | Some rows -> rows
        | None -> failwith "Engine: BLAS path vanished between planning and execution")
    | Use_wcoj (_, pnode) -> Executor.run t.cfg ~cache:t.trie_cache lq pnode
  in
  finalize_rows lq rows ~dict:(Catalog.dict t.cat) ~name:"result"

let query_ast t ast =
  let lq = Logical.translate t.cat ~attribute_elimination:t.cfg.Config.attribute_elimination ast in
  let d = decide t lq in
  Lh_util.Budget.start t.cfg.Config.budget;
  run_decided t lq d

let query t sql = query_ast t (Lh_sql.Parser.parse sql)

let query_explain t sql =
  let ast = Lh_sql.Parser.parse sql in
  let lq = Logical.translate t.cat ~attribute_elimination:t.cfg.Config.attribute_elimination ast in
  let d = decide t lq in
  let ex = explain_of t lq d in
  Lh_util.Budget.start t.cfg.Config.budget;
  (run_decided t lq d, ex)

let explain t sql =
  let ast = Lh_sql.Parser.parse sql in
  let lq = Logical.translate t.cat ~attribute_elimination:t.cfg.Config.attribute_elimination ast in
  explain_of t lq (decide t lq)
