lib/core/catalog.mli: Lh_storage
