lib/core/executor.mli: Attr_order Config Format Ghd Hashtbl Lh_storage Logical
