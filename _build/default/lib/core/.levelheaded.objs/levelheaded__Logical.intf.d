lib/core/logical.mli: Catalog Format Lh_sql Lh_storage
