lib/core/ghd.mli: Format Logical
