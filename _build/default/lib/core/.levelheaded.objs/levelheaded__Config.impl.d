lib/core/config.ml: Lh_util
