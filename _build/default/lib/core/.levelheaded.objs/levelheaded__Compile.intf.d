lib/core/compile.mli: Lh_sql Lh_storage
