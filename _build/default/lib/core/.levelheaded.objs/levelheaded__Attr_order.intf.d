lib/core/attr_order.mli: Config
