lib/core/attr_order.ml: Config Float List
