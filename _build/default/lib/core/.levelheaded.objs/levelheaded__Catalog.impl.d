lib/core/catalog.ml: Hashtbl Lh_storage List Printf
