lib/core/blas_bridge.ml: Array Ast Bytes Executor Lh_blas Lh_sql Lh_storage List Logical Option
