lib/core/engine.mli: Catalog Config Lh_sql Lh_storage
