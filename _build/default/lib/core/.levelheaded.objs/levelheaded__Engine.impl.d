lib/core/engine.ml: Array Blas_bridge Buffer Catalog Config Executor Float Format Ghd Hashtbl Lh_sql Lh_storage Lh_util List Logical Option Printf
