lib/core/executor.ml: Array Ast Attr_order Compile Config Float Format Fun Ghd Hashtbl Lh_set Lh_sql Lh_storage Lh_util List Logical Option Printf String
