lib/core/ghd.ml: Array Float Format Fun Hashtbl Lh_util List Logical Printf String
