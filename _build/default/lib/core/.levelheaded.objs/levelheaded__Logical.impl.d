lib/core/logical.ml: Array Ast Catalog Compile Format Hashtbl Lh_sql Lh_storage List Option Printf String
