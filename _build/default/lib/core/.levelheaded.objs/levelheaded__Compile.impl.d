lib/core/compile.ml: Array Ast Lh_sql Lh_storage Printf String
