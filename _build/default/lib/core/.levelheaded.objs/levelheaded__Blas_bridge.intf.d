lib/core/blas_bridge.mli: Executor Lh_storage Logical
