lib/core/config.mli: Lh_util
