lib/storage/date.ml: Printf String
