lib/storage/dtype.ml: Date Format Printf String
