lib/storage/trie.mli: Lh_set
