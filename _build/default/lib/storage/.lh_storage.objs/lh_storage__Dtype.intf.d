lib/storage/dtype.mli: Format
