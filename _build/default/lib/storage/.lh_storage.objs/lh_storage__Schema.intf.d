lib/storage/schema.mli: Dtype Format
