lib/storage/dict.ml: Array Hashtbl Printf
