lib/storage/trie.ml: Array Float Hashtbl Lh_set List
