lib/storage/table.ml: Array Date Dict Dtype Format Lh_util List Printf Schema String
