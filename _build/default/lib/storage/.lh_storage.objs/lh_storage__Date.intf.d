lib/storage/date.mli:
