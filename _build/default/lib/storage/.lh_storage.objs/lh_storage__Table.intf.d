lib/storage/table.mli: Dict Dtype Format Schema
