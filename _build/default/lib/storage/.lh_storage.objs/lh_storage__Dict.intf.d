lib/storage/dict.mli:
