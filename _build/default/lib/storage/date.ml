(* Howard Hinnant's civil-from-days / days-from-civil algorithms. *)

let of_ymd y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let to_ymd z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let of_string s =
  match String.split_on_char '-' (String.trim s) with
  | [ y; m; d ] -> (
      match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
      | Some y, Some m, Some d when m >= 1 && m <= 12 && d >= 1 && d <= 31 -> of_ymd y m d
      | _ -> failwith (Printf.sprintf "Date.of_string: malformed date %S" s))
  | _ -> failwith (Printf.sprintf "Date.of_string: malformed date %S" s)

let to_string z =
  let y, m, d = to_ymd z in
  Printf.sprintf "%04d-%02d-%02d" y m d

let year z =
  let y, _, _ = to_ymd z in
  y

let add_days z days = z + days
