(** Relation schemas: every attribute is classified as a key or an
    annotation by the user-defined schema (§III-A). Keys are the only
    attributes that can join and cannot be aggregated; annotations can be
    aggregated, and both support filters and GROUP BY. *)

type kind = Key | Annotation

type col = { name : string; dtype : Dtype.t; kind : kind }

type t = private { cols : col array }

val create : (string * Dtype.t * kind) list -> t
(** Raises [Failure] on duplicate column names or on a [Float] key
    (floats cannot be dictionary-encoded join keys). *)

val ncols : t -> int
val col : t -> int -> col
val find : t -> string -> int option
val find_exn : t -> string -> int
val key_indices : t -> int list
val annotation_indices : t -> int list
val is_key : t -> int -> bool
val pp : Format.formatter -> t -> unit
