type t = Int | Float | String | Date
type value = VInt of int | VFloat of float | VString of string | VDate of int

let to_string = function Int -> "int" | Float -> "float" | String -> "string" | Date -> "date"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "int" | "long" | "integer" -> Int
  | "float" | "double" | "decimal" -> Float
  | "string" | "varchar" | "char" | "text" -> String
  | "date" -> Date
  | other -> failwith (Printf.sprintf "Dtype.of_string: unknown type %S" other)

let value_type = function VInt _ -> Int | VFloat _ -> Float | VString _ -> String | VDate _ -> Date

let value_to_string = function
  | VInt i -> string_of_int i
  | VFloat f -> Printf.sprintf "%.6g" f
  | VString s -> s
  | VDate d -> Date.to_string d

let value_equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> x = y
  | VString x, VString y -> String.equal x y
  | VDate x, VDate y -> x = y
  | (VInt _ | VFloat _ | VString _ | VDate _), _ -> false

let numeric = function
  | VInt i -> float_of_int i
  | VFloat f -> f
  | VDate d -> float_of_int d
  | VString s -> failwith (Printf.sprintf "Dtype.numeric: string value %S" s)

let pp_value fmt v = Format.pp_print_string fmt (value_to_string v)
