(** Shared string dictionary.

    All string attributes of one engine instance are encoded against a
    single pool so that equi-joins and cross-relation comparisons on string
    columns compare plain int codes. Codes are assigned in first-seen order,
    so they are not order-preserving: range predicates on strings are
    rejected upstream (none of the paper's workloads use them). *)

type t

val create : unit -> t
val encode : t -> string -> int
(** Returns the existing code or assigns the next one. *)

val find : t -> string -> int option
(** Lookup without inserting. *)

val decode : t -> int -> string
(** Raises [Invalid_argument] for an unknown code. *)

val size : t -> int
