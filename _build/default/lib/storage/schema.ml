type kind = Key | Annotation
type col = { name : string; dtype : Dtype.t; kind : kind }
type t = { cols : col array }

let create specs =
  let seen = Hashtbl.create 16 in
  let cols =
    List.map
      (fun (name, dtype, kind) ->
        if Hashtbl.mem seen name then failwith (Printf.sprintf "Schema.create: duplicate column %S" name);
        Hashtbl.replace seen name ();
        if kind = Key && dtype = Dtype.Float then
          failwith (Printf.sprintf "Schema.create: float column %S cannot be a key" name);
        { name; dtype; kind })
      specs
  in
  { cols = Array.of_list cols }

let ncols t = Array.length t.cols
let col t i = t.cols.(i)

let find t name =
  let rec go i =
    if i >= Array.length t.cols then None
    else if String.equal t.cols.(i).name name then Some i
    else go (i + 1)
  in
  go 0

let find_exn t name =
  match find t name with
  | Some i -> i
  | None -> failwith (Printf.sprintf "Schema: no column named %S" name)

let indices_of_kind k t =
  Array.to_list t.cols
  |> List.mapi (fun i c -> (i, c))
  |> List.filter_map (fun (i, c) -> if c.kind = k then Some i else None)

let key_indices = indices_of_kind Key
let annotation_indices = indices_of_kind Annotation
let is_key t i = t.cols.(i).kind = Key

let pp fmt t =
  Format.fprintf fmt "(";
  Array.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt ", ";
      Format.fprintf fmt "%s %s%s" c.name (Dtype.to_string c.dtype)
        (match c.kind with Key -> " key" | Annotation -> ""))
    t.cols;
  Format.fprintf fmt ")"
