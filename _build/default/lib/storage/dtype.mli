(** Attribute types and runtime values of the LevelHeaded data model
    (§III-A): int, long, float, double and string collapse here to [Int]
    (63-bit), [Float] (double) and [String]; [Date] is an int encoding (see
    {!Date}). *)

type t = Int | Float | String | Date

type value = VInt of int | VFloat of float | VString of string | VDate of int

val to_string : t -> string
val of_string : string -> t
(** Case-insensitive; accepts [int], [long], [float], [double], [string],
    [date]. Raises [Failure] on anything else. *)

val value_type : value -> t
val value_to_string : value -> string
val value_equal : value -> value -> bool

val numeric : value -> float
(** [VInt]/[VFloat]/[VDate] as a float; raises [Failure] on strings. *)

val pp_value : Format.formatter -> value -> unit
