(** Calendar dates encoded as days since 1970-01-01.

    TPC-H date predicates become plain integer comparisons on these codes,
    and the encoding is order-preserving, so date keys and range filters
    need no dictionary. *)

val of_ymd : int -> int -> int -> int
(** [of_ymd year month day] using the proleptic Gregorian calendar. *)

val to_ymd : int -> int * int * int

val of_string : string -> int
(** Parses ["YYYY-MM-DD"]. Raises [Failure] on malformed input. *)

val to_string : int -> string
val year : int -> int
(** The year component — the engine's [EXTRACT(YEAR FROM d)]. *)

val add_days : int -> int -> int
