(** Recursive-descent parser for the supported SQL subset.

    Grammar (informally):
    {v
    query   := SELECT items FROM tables [WHERE pred] [GROUP BY cols] [;]
    item    := agg '(' (expr | '*') ')' [AS ident] | expr [AS ident]
    table   := ident [[AS] ident]
    pred    := disjunction of conjunctions of atoms
    atom    := expr cmp expr | expr BETWEEN expr AND expr
             | expr [NOT] LIKE string | '(' pred ')' | NOT atom
    expr    := arithmetic over columns, literals, date/interval literals,
               CASE WHEN .. THEN .. ELSE .. END, EXTRACT(YEAR FROM ..)
    v}

    Interval literals are folded into date constants before the query is
    returned. *)

exception Parse_error of string

val parse : string -> Ast.query
(** Raises {!Parse_error} (or {!Lexer.Lex_error}) on invalid input. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (for tests). *)

val parse_pred : string -> Ast.pred
(** Parse a standalone predicate (for tests). *)
