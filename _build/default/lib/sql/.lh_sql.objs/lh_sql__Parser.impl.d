lib/sql/parser.ml: Array Ast Lexer Lh_storage List Option Printf String
