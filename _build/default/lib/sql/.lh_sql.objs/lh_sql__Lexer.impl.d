lib/sql/lexer.ml: Array Buffer List Printf String
