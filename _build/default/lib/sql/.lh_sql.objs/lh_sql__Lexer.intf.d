lib/sql/lexer.mli:
