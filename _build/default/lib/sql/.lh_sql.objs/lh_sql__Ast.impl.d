lib/sql/ast.ml: Format Lh_storage List String
