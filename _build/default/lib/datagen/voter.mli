(** Synthetic voter-classification dataset — stand-in for the MonetDB
    voter dataset of §VII (DESIGN.md): a voters table (demographics +
    binary turnout label) and a precincts table (region / urbanization),
    joined on the precinct key. The label depends on age, income, party
    and precinct urbanization so a logistic regression has signal to
    learn. *)

val voters_schema : Lh_storage.Schema.t
val precincts_schema : Lh_storage.Schema.t

val generate :
  dict:Lh_storage.Dict.t -> nvoters:int -> nprecincts:int -> ?seed:int -> unit ->
  Lh_storage.Table.t * Lh_storage.Table.t
(** (voters, precincts). *)
