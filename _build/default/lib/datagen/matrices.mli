(** Matrix generators: stand-ins for the UF sparse matrix collection
    datasets and the synthetic dense matrices of §VI (DESIGN.md).

    Every sparse generator returns both a relational table
    [(row key, col key, value)] (what the query engines ingest) and the
    same matrix in COO form (what the BLAS substrate converts/consumes in
    Table IV and the MKL-side benches). *)

type sparse = { table : Lh_storage.Table.t; coo : Lh_blas.Coo.t }

val matrix_schema : Lh_storage.Schema.t
(** [(row int key, col int key, v float)]. *)

val vector_schema : Lh_storage.Schema.t
(** [(idx int key, v float)]. *)

val banded :
  dict:Lh_storage.Dict.t -> name:string -> n:int -> nnz_per_row:int -> ?bandwidth:int ->
  ?symmetric:bool -> ?seed:int -> unit -> sparse
(** CFD-style banded matrix: each row draws ~[nnz_per_row] entries within
    [±bandwidth] of the diagonal (clamped to range), diagonal always
    present. *)

val harbor_like : dict:Lh_storage.Dict.t -> ?scale:float -> ?seed:int -> unit -> sparse
(** Harbor (3D CFD, 47K², ~50 nnz/row) at reduced dimension:
    [n = 46835·scale] with the same row density and band locality. *)

val hv15r_like : dict:Lh_storage.Dict.t -> ?scale:float -> ?seed:int -> unit -> sparse
(** HV15R (3D engine fan CFD, 2M², ~140 nnz/row), reduced. *)

val nlpkkt_like : dict:Lh_storage.Dict.t -> ?scale:float -> ?seed:int -> unit -> sparse
(** nlpkkt240 (symmetric KKT system, 28M², ~14 nnz/row), reduced: a
    2×2 block structure [\[H Aᵀ; A 0\]] with banded blocks. *)

val dense : dict:Lh_storage.Dict.t -> name:string -> n:int -> ?seed:int -> unit ->
  Lh_storage.Table.t * Lh_blas.Dense.t
(** Dense n×n matrix as a complete relational grid (row-major, so the
    value buffer is BLAS-compatible in place) and as a dense matrix. *)

val dense_vector : dict:Lh_storage.Dict.t -> name:string -> n:int -> ?seed:int -> unit ->
  Lh_storage.Table.t * float array

val to_coo : Lh_storage.Table.t -> Lh_blas.Coo.t
(** Reinterpret an [(i, j, v)] table (e.g. a query result) as COO. *)
