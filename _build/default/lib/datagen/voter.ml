module Schema = Lh_storage.Schema
module Table = Lh_storage.Table
module Dtype = Lh_storage.Dtype
module Prng = Lh_util.Prng
module Dict = Lh_storage.Dict

let voters_schema =
  Schema.create
    [
      ("v_id", Dtype.Int, Schema.Key);
      ("v_precinct", Dtype.Int, Schema.Key);
      ("v_age", Dtype.Int, Schema.Annotation);
      ("v_gender", Dtype.String, Schema.Annotation);
      ("v_party", Dtype.String, Schema.Annotation);
      ("v_income", Dtype.Int, Schema.Annotation);
      ("v_voted", Dtype.Int, Schema.Annotation);  (* the label: 0/1 *)
    ]

let precincts_schema =
  Schema.create
    [
      ("p_id", Dtype.Int, Schema.Key);
      ("p_region", Dtype.String, Schema.Annotation);
      ("p_urban", Dtype.String, Schema.Annotation);
      ("p_avg_income", Dtype.Float, Schema.Annotation);
    ]

let genders = [| "M"; "F" |]
let parties = [| "DEM"; "REP"; "IND"; "GRN"; "LIB" |]
let regions = [| "NORTH"; "SOUTH"; "EAST"; "WEST" |]
let urbans = [| "URBAN"; "SUBURBAN"; "RURAL" |]

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

let generate ~dict ~nvoters ~nprecincts ?(seed = 123) () =
  let rng = Prng.create seed in
  let enc = Dict.encode dict in
  let p_urban = Array.init nprecincts (fun _ -> Prng.int rng 3) in
  let precincts =
    Table.create ~name:"precincts" ~schema:precincts_schema ~dict
      [|
        Table.Icol (Array.init nprecincts Fun.id);
        Table.Icol (Array.init nprecincts (fun _ -> enc (Prng.pick rng regions)));
        Table.Icol (Array.init nprecincts (fun p -> enc urbans.(p_urban.(p))));
        Table.Fcol (Array.init nprecincts (fun _ -> 30000.0 +. Prng.float rng 90000.0));
      |]
  in
  let precinct = Array.init nvoters (fun _ -> Prng.int rng nprecincts) in
  let age = Array.init nvoters (fun _ -> 18 + Prng.int rng 70) in
  let party = Array.init nvoters (fun _ -> Prng.int rng 5) in
  let income = Array.init nvoters (fun _ -> 15_000 + Prng.int rng 150_000) in
  let label =
    Array.init nvoters (fun v ->
        (* Turnout rises with age and income, falls in rural precincts,
           and differs by party — enough structure to learn. *)
        let z =
          (0.04 *. (float_of_int age.(v) -. 45.0))
          +. (0.00001 *. (float_of_int income.(v) -. 60000.0))
          +. (if party.(v) = 2 then -0.5 else 0.3)
          +. (match p_urban.(precinct.(v)) with 0 -> 0.4 | 1 -> 0.0 | _ -> -0.6)
        in
        if Prng.float rng 1.0 < sigmoid z then 1 else 0)
  in
  let voters =
    Table.create ~name:"voters" ~schema:voters_schema ~dict
      [|
        Table.Icol (Array.init nvoters Fun.id);
        Table.Icol precinct;
        Table.Icol age;
        Table.Icol (Array.init nvoters (fun _ -> enc (Prng.pick rng genders)));
        Table.Icol (Array.map (fun p -> enc parties.(p)) party);
        Table.Icol income;
        Table.Icol label;
      |]
  in
  (voters, precincts)
