module Schema = Lh_storage.Schema
module Table = Lh_storage.Table
module Dtype = Lh_storage.Dtype
module Date = Lh_storage.Date
module Dict = Lh_storage.Dict
module Prng = Lh_util.Prng
module Vec = Lh_util.Vec

let k = Schema.Key
let a = Schema.Annotation
let i = Dtype.Int
let f = Dtype.Float
let s = Dtype.String
let d = Dtype.Date

let schemas =
  [
    ("region", Schema.create [ ("r_regionkey", i, k); ("r_name", s, a); ("r_comment", s, a) ]);
    ( "nation",
      Schema.create
        [ ("n_nationkey", i, k); ("n_name", s, a); ("n_regionkey", i, k); ("n_comment", s, a) ] );
    ( "supplier",
      Schema.create
        [
          ("s_suppkey", i, k); ("s_name", s, a); ("s_address", s, a); ("s_nationkey", i, k);
          ("s_phone", s, a); ("s_acctbal", i, a); ("s_comment", s, a);
        ] );
    ( "customer",
      Schema.create
        [
          ("c_custkey", i, k); ("c_name", s, a); ("c_address", s, a); ("c_nationkey", i, k);
          ("c_phone", s, a); ("c_acctbal", i, a); ("c_mktsegment", s, a); ("c_comment", s, a);
        ] );
    ( "part",
      Schema.create
        [
          ("p_partkey", i, k); ("p_name", s, a); ("p_mfgr", s, a); ("p_brand", s, a);
          ("p_type", s, a); ("p_size", i, a); ("p_container", s, a); ("p_retailprice", f, a);
          ("p_comment", s, a);
        ] );
    ( "partsupp",
      Schema.create
        [
          ("ps_partkey", i, k); ("ps_suppkey", i, k); ("ps_availqty", i, a);
          ("ps_supplycost", f, a); ("ps_comment", s, a);
        ] );
    ( "orders",
      Schema.create
        [
          ("o_orderkey", i, k); ("o_custkey", i, k); ("o_orderstatus", s, a);
          ("o_totalprice", f, a); ("o_orderdate", d, a); ("o_orderpriority", s, a);
          ("o_clerk", s, a); ("o_shippriority", i, a); ("o_comment", s, a);
        ] );
    ( "lineitem",
      Schema.create
        [
          ("l_orderkey", i, k); ("l_partkey", i, k); ("l_suppkey", i, k); ("l_linenumber", i, k);
          ("l_quantity", f, a); ("l_extendedprice", f, a); ("l_discount", f, a); ("l_tax", f, a);
          ("l_returnflag", s, a); ("l_linestatus", s, a); ("l_shipdate", d, a);
          ("l_commitdate", d, a); ("l_receiptdate", d, a); ("l_shipinstruct", s, a);
          ("l_shipmode", s, a); ("l_comment", s, a);
        ] );
  ]

let schema_of name = List.assoc name schemas

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

(* The 25 TPC-H nations with their region keys. *)
let nations =
  [|
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1); ("EGYPT", 4);
    ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3); ("INDIA", 2); ("INDONESIA", 2);
    ("IRAN", 4); ("IRAQ", 4); ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0);
    ("MOROCCO", 0); ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
    ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3); ("UNITED KINGDOM", 3);
    ("UNITED STATES", 1);
  |]

let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]
let instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]
let containers = [| "SM CASE"; "SM BOX"; "MED BAG"; "MED BOX"; "LG CASE"; "LG BOX"; "JUMBO PKG"; "WRAP JAR" |]
let type_syl1 = [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]
let type_syl2 = [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]
let type_syl3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let colors =
  [|
    "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black"; "blanched"; "blue";
    "blush"; "brown"; "burlywood"; "burnished"; "chartreuse"; "chiffon"; "chocolate"; "coral";
    "cornflower"; "cornsilk"; "cream"; "cyan"; "dark"; "deep"; "dim"; "dodger"; "drab"; "firebrick";
    "floral"; "forest"; "frosted"; "gainsboro"; "ghost"; "goldenrod"; "green"; "grey"; "honeydew";
    "hot"; "indian"; "ivory"; "khaki"; "lace"; "lavender"; "lawn"; "lemon"; "light"; "lime";
    "linen"; "magenta"; "maroon"; "medium";
  |]

(* TPC-H order keys are sparse: 8 consecutive keys out of every 32. *)
let order_key idx = ((idx / 8) * 32) + (idx mod 8) + 1

let date_lo = Date.of_ymd 1992 1 1
let date_hi = Date.of_ymd 1998 8 2
let cutoff = Date.of_ymd 1995 6 17

let row_counts ~sf =
  let scale base = max 1 (int_of_float (float_of_int base *. sf)) in
  [
    ("region", 5); ("nation", 25);
    ("supplier", scale 10_000); ("customer", scale 150_000); ("part", scale 200_000);
    ("partsupp", scale 200_000 * 4); ("orders", scale 1_500_000);
    ("lineitem", scale 1_500_000 * 4);
  ]

let generate ~dict ~sf ?(seed = 42) () =
  let rng = Prng.create seed in
  let enc x = Dict.encode dict x in
  let counts = row_counts ~sf in
  let count name = List.assoc name counts in

  let region =
    let n = 5 in
    Table.create ~name:"region" ~schema:(schema_of "region") ~dict
      [|
        Table.Icol (Array.init n Fun.id);
        Table.Icol (Array.init n (fun r -> enc region_names.(r)));
        Table.Icol (Array.init n (fun r -> enc (Printf.sprintf "region comment %d" r)));
      |]
  in
  let nation =
    let n = 25 in
    Table.create ~name:"nation" ~schema:(schema_of "nation") ~dict
      [|
        Table.Icol (Array.init n Fun.id);
        Table.Icol (Array.init n (fun r -> enc (fst nations.(r))));
        Table.Icol (Array.init n (fun r -> snd nations.(r)));
        Table.Icol (Array.init n (fun r -> enc (Printf.sprintf "nation comment %d" r)));
      |]
  in
  let nsupp = count "supplier" in
  let supplier =
    Table.create ~name:"supplier" ~schema:(schema_of "supplier") ~dict
      [|
        Table.Icol (Array.init nsupp (fun r -> r + 1));
        Table.Icol (Array.init nsupp (fun r -> enc (Printf.sprintf "Supplier#%09d" (r + 1))));
        Table.Icol (Array.init nsupp (fun r -> enc (Printf.sprintf "addr s%d" r)));
        Table.Icol (Array.init nsupp (fun _ -> Prng.int rng 25));
        Table.Icol (Array.init nsupp (fun r -> enc (Printf.sprintf "%02d-%07d" (10 + (r mod 25)) r)));
        (* acctbal in integer cents: decimals that are grouped on stay
           dictionary-encodable (DESIGN.md) *)
        Table.Icol (Array.init nsupp (fun _ -> -99999 + Prng.int rng 1099998));
        Table.Icol (Array.init nsupp (fun r -> enc (Printf.sprintf "supplier comment %d" r)));
      |]
  in
  let ncust = count "customer" in
  let customer =
    Table.create ~name:"customer" ~schema:(schema_of "customer") ~dict
      [|
        Table.Icol (Array.init ncust (fun r -> r + 1));
        Table.Icol (Array.init ncust (fun r -> enc (Printf.sprintf "Customer#%09d" (r + 1))));
        Table.Icol (Array.init ncust (fun r -> enc (Printf.sprintf "addr c%d" r)));
        Table.Icol (Array.init ncust (fun _ -> Prng.int rng 25));
        Table.Icol (Array.init ncust (fun r -> enc (Printf.sprintf "%02d-%07d" (10 + (r mod 25)) r)));
        Table.Icol (Array.init ncust (fun _ -> -99999 + Prng.int rng 1099998));
        Table.Icol (Array.init ncust (fun _ -> enc (Prng.pick rng segments)));
        Table.Icol (Array.init ncust (fun r -> enc (Printf.sprintf "customer comment %d" r)));
      |]
  in
  let npart = count "part" in
  let part_price r = 900.0 +. (float_of_int (r mod 200) /. 10.0) +. float_of_int (r mod 1000) in
  let part =
    Table.create ~name:"part" ~schema:(schema_of "part") ~dict
      [|
        Table.Icol (Array.init npart (fun r -> r + 1));
        Table.Icol
          (Array.init npart (fun _ ->
               enc
                 (Printf.sprintf "%s %s %s" (Prng.pick rng colors) (Prng.pick rng colors)
                    (Prng.pick rng colors))));
        Table.Icol (Array.init npart (fun r -> enc (Printf.sprintf "Manufacturer#%d" (1 + (r mod 5)))));
        Table.Icol (Array.init npart (fun r -> enc (Printf.sprintf "Brand#%d%d" (1 + (r mod 5)) (1 + (r mod 5)))));
        Table.Icol
          (Array.init npart (fun _ ->
               enc
                 (Printf.sprintf "%s %s %s" (Prng.pick rng type_syl1) (Prng.pick rng type_syl2)
                    (Prng.pick rng type_syl3))));
        Table.Icol (Array.init npart (fun _ -> 1 + Prng.int rng 50));
        Table.Icol (Array.init npart (fun _ -> enc (Prng.pick rng containers)));
        Table.Fcol (Array.init npart part_price);
        Table.Icol (Array.init npart (fun r -> enc (Printf.sprintf "part comment %d" r)));
      |]
  in
  let nps = npart * 4 in
  let partsupp =
    let pk = Array.make nps 0 and sk = Array.make nps 0 in
    for p = 0 to npart - 1 do
      for x = 0 to 3 do
        pk.((p * 4) + x) <- p + 1;
        (* TPC-H supplier spread: distinct suppliers per part. *)
        sk.((p * 4) + x) <- 1 + ((p + (x * ((nsupp / 4) + 1))) mod nsupp)
      done
    done;
    Table.create ~name:"partsupp" ~schema:(schema_of "partsupp") ~dict
      [|
        Table.Icol pk;
        Table.Icol sk;
        Table.Icol (Array.init nps (fun _ -> 1 + Prng.int rng 9999));
        Table.Fcol (Array.init nps (fun _ -> 1.0 +. Prng.float rng 999.0));
        Table.Icol (Array.init nps (fun r -> enc (Printf.sprintf "ps comment %d" r)));
      |]
  in
  let norders = count "orders" in
  let order_dates = Array.init norders (fun _ -> Prng.int_in rng date_lo (date_hi - 122)) in
  let order_cust = Array.init norders (fun _ -> 1 + Prng.int rng ncust) in
  let orders =
    Table.create ~name:"orders" ~schema:(schema_of "orders") ~dict
      [|
        Table.Icol (Array.init norders order_key);
        Table.Icol order_cust;
        Table.Icol (Array.init norders (fun _ -> enc (Prng.pick rng [| "O"; "F"; "P" |])));
        Table.Fcol (Array.init norders (fun _ -> 1000.0 +. Prng.float rng 400000.0));
        Table.Icol order_dates;
        Table.Icol (Array.init norders (fun _ -> enc (Prng.pick rng priorities)));
        Table.Icol (Array.init norders (fun r -> enc (Printf.sprintf "Clerk#%09d" (r mod 1000))));
        Table.Icol (Array.init norders (fun _ -> 0));
        Table.Icol (Array.init norders (fun r -> enc (Printf.sprintf "order comment %d" r)));
      |]
  in
  (* lineitem: 1-7 lines per order (avg 4). *)
  let lok = Vec.Int.create () and lpk = Vec.Int.create () and lsk = Vec.Int.create () in
  let lln = Vec.Int.create () in
  let lqty = Vec.Float.create () and lep = Vec.Float.create () in
  let ldisc = Vec.Float.create () and ltax = Vec.Float.create () in
  let lrf = Vec.Int.create () and lls = Vec.Int.create () in
  let lsd = Vec.Int.create () and lcd = Vec.Int.create () and lrd = Vec.Int.create () in
  let lsi = Vec.Int.create () and lsm = Vec.Int.create () and lcm = Vec.Int.create () in
  let flag_r = enc "R" and flag_a = enc "A" and flag_n = enc "N" in
  let stat_f = enc "F" and stat_o = enc "O" in
  let comment_pool = Array.init 64 (fun x -> enc (Printf.sprintf "line comment %d" x)) in
  for o = 0 to norders - 1 do
    let nlines = 1 + Prng.int rng 7 in
    for ln = 1 to nlines do
      let pk = 1 + Prng.int rng npart in
      Vec.Int.push lok (order_key o);
      Vec.Int.push lpk pk;
      (* consistent with partsupp: one of the part's four suppliers *)
      let x = Prng.int rng 4 in
      Vec.Int.push lsk (1 + ((pk - 1 + (x * ((nsupp / 4) + 1))) mod nsupp));
      Vec.Int.push lln ln;
      let qty = float_of_int (1 + Prng.int rng 50) in
      Vec.Float.push lqty qty;
      Vec.Float.push lep (qty *. part_price (pk - 1) /. 10.0);
      Vec.Float.push ldisc (float_of_int (Prng.int rng 11) /. 100.0);
      Vec.Float.push ltax (float_of_int (Prng.int rng 9) /. 100.0);
      let ship = order_dates.(o) + 1 + Prng.int rng 121 in
      Vec.Int.push lsd ship;
      Vec.Int.push lcd (order_dates.(o) + 30 + Prng.int rng 60);
      Vec.Int.push lrd (ship + 1 + Prng.int rng 30);
      if ship <= cutoff then begin
        Vec.Int.push lrf (if Prng.bool rng then flag_r else flag_a);
        Vec.Int.push lls stat_f
      end
      else begin
        Vec.Int.push lrf flag_n;
        Vec.Int.push lls stat_o
      end;
      Vec.Int.push lsi (enc instructs.(Prng.int rng (Array.length instructs)));
      Vec.Int.push lsm (enc ship_modes.(Prng.int rng (Array.length ship_modes)));
      Vec.Int.push lcm comment_pool.(Prng.int rng 64)
    done
  done;
  let lineitem =
    Table.create ~name:"lineitem" ~schema:(schema_of "lineitem") ~dict
      [|
        Table.Icol (Vec.Int.to_array lok);
        Table.Icol (Vec.Int.to_array lpk);
        Table.Icol (Vec.Int.to_array lsk);
        Table.Icol (Vec.Int.to_array lln);
        Table.Fcol (Vec.Float.to_array lqty);
        Table.Fcol (Vec.Float.to_array lep);
        Table.Fcol (Vec.Float.to_array ldisc);
        Table.Fcol (Vec.Float.to_array ltax);
        Table.Icol (Vec.Int.to_array lrf);
        Table.Icol (Vec.Int.to_array lls);
        Table.Icol (Vec.Int.to_array lsd);
        Table.Icol (Vec.Int.to_array lcd);
        Table.Icol (Vec.Int.to_array lrd);
        Table.Icol (Vec.Int.to_array lsi);
        Table.Icol (Vec.Int.to_array lsm);
        Table.Icol (Vec.Int.to_array lcm);
      |]
  in
  [ region; nation; supplier; customer; part; partsupp; orders; lineitem ]
