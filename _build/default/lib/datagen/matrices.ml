module Schema = Lh_storage.Schema
module Table = Lh_storage.Table
module Dtype = Lh_storage.Dtype
module Prng = Lh_util.Prng
module Vec = Lh_util.Vec

type sparse = { table : Lh_storage.Table.t; coo : Lh_blas.Coo.t }

let matrix_schema =
  Schema.create
    [ ("row", Dtype.Int, Schema.Key); ("col", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]

let vector_schema =
  Schema.create [ ("idx", Dtype.Int, Schema.Key); ("v", Dtype.Float, Schema.Annotation) ]

let of_triplets ~dict ~name ~n rows cols vals =
  let table =
    Table.create ~name ~schema:matrix_schema ~dict
      [| Table.Icol rows; Table.Icol cols; Table.Fcol vals |]
  in
  let coo = Lh_blas.Coo.create ~nrows:n ~ncols:n ~row:rows ~col:cols ~value:vals in
  { table; coo }

(* Draw ~nnz_per_row column indices within the band around the diagonal,
   deduplicated per row, diagonal forced in — the locality structure of a
   CFD stencil matrix. *)
let banded ~dict ~name ~n ~nnz_per_row ?bandwidth ?(symmetric = false) ?(seed = 7) () =
  let rng = Prng.create seed in
  let bandwidth = Option.value bandwidth ~default:(max 2 (nnz_per_row * 2)) in
  let rows = Vec.Int.create () and cols = Vec.Int.create () and vals = Vec.Float.create () in
  let seen = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    Hashtbl.reset seen;
    let add j v =
      if j >= 0 && j < n && not (Hashtbl.mem seen j) then begin
        Hashtbl.replace seen j ();
        Vec.Int.push rows i;
        Vec.Int.push cols j;
        Vec.Float.push vals v
      end
    in
    add i (4.0 +. Prng.float rng 1.0);
    let draws = if symmetric then (nnz_per_row - 1) / 2 else nnz_per_row - 1 in
    for _ = 1 to draws do
      let off = 1 + Prng.int rng bandwidth in
      let j = if Prng.bool rng then i + off else i - off in
      let v = -1.0 +. Prng.float rng 2.0 in
      add j v;
      if symmetric then begin
        (* mirror entry, emitted under its own row below via (j, i) *)
        if j >= 0 && j < n then begin
          Vec.Int.push rows j;
          Vec.Int.push cols i;
          Vec.Float.push vals v
        end
      end
    done
  done;
  (* Symmetric mirroring can duplicate (i, j); deduplicate via COO->CSR
     folding semantics: the relational table must have unique keys. *)
  let rows = Vec.Int.to_array rows and cols = Vec.Int.to_array cols in
  let vals = Vec.Float.to_array vals in
  if symmetric then begin
    let tbl = Hashtbl.create (Array.length rows) in
    let keep = Vec.Int.create () in
    Array.iteri
      (fun k _ ->
        let key = (rows.(k), cols.(k)) in
        if not (Hashtbl.mem tbl key) then begin
          Hashtbl.replace tbl key ();
          Vec.Int.push keep k
        end)
      rows;
    let ks = Vec.Int.to_array keep in
    of_triplets ~dict ~name ~n
      (Array.map (fun k -> rows.(k)) ks)
      (Array.map (fun k -> cols.(k)) ks)
      (Array.map (fun k -> vals.(k)) ks)
  end
  else of_triplets ~dict ~name ~n rows cols vals

let harbor_like ~dict ?(scale = 0.06) ?(seed = 11) () =
  let n = max 64 (int_of_float (46835.0 *. scale)) in
  banded ~dict ~name:"harbor" ~n ~nnz_per_row:50 ~bandwidth:120 ~seed ()

let hv15r_like ~dict ?(scale = 0.001) ?(seed = 12) () =
  let n = max 64 (int_of_float (2_017_169.0 *. scale)) in
  banded ~dict ~name:"hv15r" ~n ~nnz_per_row:140 ~bandwidth:300 ~seed ()

let nlpkkt_like ~dict ?(scale = 0.0007) ?(seed = 13) () =
  (* KKT block system [H A'; A 0]: H is an n1 x n1 banded stencil, A an
     n2 x n1 banded constraint Jacobian; overall ~14 nnz/row, symmetric
     sparsity. *)
  let n = max 128 (int_of_float (27_993_600.0 *. scale)) in
  let n1 = (2 * n) / 3 in
  let n2 = n - n1 in
  let rng = Prng.create seed in
  (* Collect entries keyed by coordinate so mirroring never duplicates. *)
  let entries : (int * int, float) Hashtbl.t = Hashtbl.create 4096 in
  let put i j v = if not (Hashtbl.mem entries (i, j)) then Hashtbl.replace entries (i, j) v in
  let put_sym i j v =
    put i j v;
    put j i v
  in
  (* H block: symmetric stencil-like band. *)
  for i = 0 to n1 - 1 do
    put i i (6.0 +. Prng.float rng 1.0);
    for _ = 1 to 2 do
      let off = 1 + Prng.int rng 40 in
      if i + off < n1 then put_sym i (i + off) (-1.0 +. Prng.float rng 2.0)
    done
  done;
  (* A and A' blocks (constraint Jacobian, mirrored). *)
  for r = 0 to n2 - 1 do
    let i = n1 + r in
    for _ = 1 to 5 do
      let j = min (n1 - 1) (max 0 ((r * n1 / max n2 1) + Prng.int rng 60 - 30)) in
      put_sym i j (-1.0 +. Prng.float rng 2.0)
    done
  done;
  let nnz = Hashtbl.length entries in
  let rows = Array.make nnz 0 and cols = Array.make nnz 0 and vals = Array.make nnz 0.0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun (i, j) v ->
      rows.(!k) <- i;
      cols.(!k) <- j;
      vals.(!k) <- v;
      incr k)
    entries;
  of_triplets ~dict ~name:"nlpkkt" ~n rows cols vals

let dense ~dict ~name ~n ?(seed = 17) () =
  let rng = Prng.create seed in
  let data = Array.init (n * n) (fun _ -> Prng.float rng 1.0) in
  let rows = Array.init (n * n) (fun k -> k / n) in
  let cols = Array.init (n * n) (fun k -> k mod n) in
  let table =
    Table.create ~name ~schema:matrix_schema ~dict
      [| Table.Icol rows; Table.Icol cols; Table.Fcol data |]
  in
  (table, Lh_blas.Dense.of_array ~rows:n ~cols:n data)

let dense_vector ~dict ~name ~n ?(seed = 18) () =
  let rng = Prng.create seed in
  let data = Array.init n (fun _ -> Prng.float rng 1.0) in
  let table =
    Table.create ~name ~schema:vector_schema ~dict
      [| Table.Icol (Array.init n Fun.id); Table.Fcol data |]
  in
  (table, data)

let to_coo (table : Table.t) =
  let rows = Table.icol table 0 and cols = Table.icol table 1 and vals = Table.fcol table 2 in
  let nrows = 1 + Array.fold_left max 0 rows in
  let ncols = 1 + Array.fold_left max 0 cols in
  Lh_blas.Coo.create ~nrows ~ncols ~row:rows ~col:cols ~value:vals
