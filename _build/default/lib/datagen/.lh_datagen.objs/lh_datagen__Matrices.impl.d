lib/datagen/matrices.ml: Array Fun Hashtbl Lh_blas Lh_storage Lh_util Option
