lib/datagen/voter.ml: Array Fun Lh_storage Lh_util
