lib/datagen/voter.mli: Lh_storage
