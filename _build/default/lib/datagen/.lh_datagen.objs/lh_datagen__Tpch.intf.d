lib/datagen/tpch.mli: Lh_storage
