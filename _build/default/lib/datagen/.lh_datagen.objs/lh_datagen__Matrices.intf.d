lib/datagen/matrices.mli: Lh_blas Lh_storage
