lib/datagen/tpch.ml: Array Fun Lh_storage Lh_util List Printf
