(** Deterministic TPC-H-like data generator (the dbgen substitute —
    DESIGN.md).

    Reproduces the schema, foreign-key structure, cardinality ratios and
    the value distributions the benchmark queries are sensitive to:
    order-date ranges, ship-date offsets, return flags derived from dates,
    market segments, region/nation dimensions (including ASIA, AMERICA and
    BRAZIL), part types and color-word part names (for Q9's LIKE
    ['%green%']), and TPC-H's sparse order-key spacing. Row counts scale
    linearly with [sf] relative to the official SF 1 sizes. *)

val schemas : (string * Lh_storage.Schema.t) list
(** All eight table schemas, keyed by table name. *)

val generate : dict:Lh_storage.Dict.t -> sf:float -> ?seed:int -> unit -> Lh_storage.Table.t list
(** All eight tables: region, nation, supplier, customer, part, partsupp,
    orders, lineitem. *)

val row_counts : sf:float -> (string * int) list
(** Expected row counts at a scale factor (lineitem is approximate). *)
