lib/blas/coo.ml: Array Dense
