lib/blas/coo.mli: Dense
