lib/blas/csr.ml: Array Coo Dense Lh_util
