lib/blas/dense.mli:
