lib/blas/dense.ml: Array Float
