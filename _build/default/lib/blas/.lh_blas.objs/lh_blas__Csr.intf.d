lib/blas/csr.mli: Coo Dense
