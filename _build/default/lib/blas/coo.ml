type t = {
  nrows : int;
  ncols : int;
  row : int array;
  col : int array;
  value : float array;
}

let create ~nrows ~ncols ~row ~col ~value =
  let n = Array.length row in
  if Array.length col <> n || Array.length value <> n then
    invalid_arg "Coo.create: ragged arrays";
  Array.iter (fun i -> if i < 0 || i >= nrows then invalid_arg "Coo.create: row out of range") row;
  Array.iter (fun j -> if j < 0 || j >= ncols then invalid_arg "Coo.create: col out of range") col;
  { nrows; ncols; row; col; value }

let nnz t = Array.length t.row

let to_dense t =
  let d = Dense.create ~rows:t.nrows ~cols:t.ncols in
  for k = 0 to nnz t - 1 do
    let i = t.row.(k) and j = t.col.(k) in
    Dense.set d i j (Dense.get d i j +. t.value.(k))
  done;
  d
