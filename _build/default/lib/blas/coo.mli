(** Sparse matrices in coordinate (triplet) form — the layout a relational
    column store naturally holds a matrix relation [(i, j, v)] in. Table IV
    times the conversion from this form to {!Csr}. *)

type t = {
  nrows : int;
  ncols : int;
  row : int array;
  col : int array;
  value : float array;
}

val create : nrows:int -> ncols:int -> row:int array -> col:int array -> value:float array -> t
(** Validates equal lengths and in-range indices. Entries need not be
    sorted; duplicates are allowed (they sum on conversion). *)

val nnz : t -> int
val to_dense : t -> Dense.t
