(** Compressed sparse row matrices — the "(normally) accepted" sparse BLAS
    format (§III-D). {!of_coo} is the [mkl_scsrcoo]-equivalent conversion
    whose cost Table IV compares against LevelHeaded's trie-native SMV. *)

type t = {
  nrows : int;
  ncols : int;
  row_ptr : int array;  (** length [nrows + 1] *)
  col_idx : int array;  (** column indices, ascending within each row *)
  values : float array;
}

val of_coo : Coo.t -> t
(** Bucket-sort conversion; duplicate coordinates are summed. *)

val nnz : t -> int

val spmv : t -> float array -> float array
(** Sparse matrix – dense vector product (the SMV kernel). *)

val spgemm : t -> t -> t
(** Gustavson row-by-row sparse product with a dense accumulator and
    touched-list per row (the SMM kernel). *)

val transpose : t -> t
val to_dense : t -> Dense.t
val row_nnz : t -> int -> int
val equal : ?tol:float -> t -> t -> bool
