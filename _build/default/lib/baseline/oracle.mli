(** Brute-force reference evaluator — the correctness oracle for every
    query engine in this repository.

    Evaluates the query by backtracking over the Cartesian product of the
    FROM bindings, applying each WHERE conjunct as soon as all of its
    bindings are bound, then hash-grouping and aggregating. Obviously
    correct, deliberately unoptimized: use on small inputs only. *)

val query :
  lookup:(string -> Lh_storage.Table.t) -> Lh_sql.Ast.query -> Lh_storage.Dtype.value list list
(** Result rows in SELECT column order, sorted by the GROUP BY codes.
    Scalar aggregate queries return exactly one row (with 0 for empty SUM /
    COUNT). *)

val agg_columns : Lh_sql.Ast.query -> string list
(** Output column names, for building comparison tables. *)
