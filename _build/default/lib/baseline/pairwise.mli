(** Pairwise hash-join engine — the repository's stand-in for the
    comparison RDBMSs (DESIGN.md):

    - [Pipelined] (HyPer-like): filters fused into the probe pipeline; one
      left-deep pass over the largest filtered relation probing hash
      tables built on the others, aggregating as matches stream out.
    - [Materializing] (MonetDB-like): operator-at-a-time; every filter and
      every join materializes its full intermediate result (all bound row
      ids per tuple) before the next operator runs.

    Both use classic Selinger-style pairwise join plans — never a WCOJ —
    which is exactly the architecture the paper compares against: fine on
    BI joins, catastrophic on LA self-joins (the intermediate explosion
    reproduces the [oom] / [t/o] cells of Table II). *)

type mode = Pipelined | Materializing

val query :
  lookup:(string -> Lh_storage.Table.t) ->
  mode:mode ->
  ?budget:Lh_util.Budget.t ->
  Lh_sql.Ast.query ->
  Lh_storage.Dtype.value list list
(** Result rows in SELECT order, sorted by GROUP BY codes — same contract
    as {!Oracle.query}. Budget violations raise the {!Lh_util.Budget}
    exceptions ([start] is called internally). *)
