lib/baseline/pairwise.mli: Lh_sql Lh_storage Lh_util
