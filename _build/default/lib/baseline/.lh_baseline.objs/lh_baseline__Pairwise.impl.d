lib/baseline/pairwise.ml: Array Ast Float Fun Hashtbl Lh_sql Lh_storage Lh_util List Option String Xcompile
