lib/baseline/xcompile.mli: Lh_sql Lh_storage
