lib/baseline/oracle.mli: Lh_sql Lh_storage
