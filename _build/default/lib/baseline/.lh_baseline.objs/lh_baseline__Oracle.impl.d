lib/baseline/oracle.ml: Array Ast Float Hashtbl Lh_sql Lh_storage List String Xcompile
