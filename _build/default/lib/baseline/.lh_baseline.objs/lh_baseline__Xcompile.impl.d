lib/baseline/xcompile.ml: Array Ast Lh_sql Lh_storage List Option Printf String
