(** Expression compilation over multi-relation environments.

    Where {!Levelheaded.Compile} compiles single-relation expressions for
    the WCOJ engine, this compiles arbitrary expressions over an
    environment of one current row per FROM binding — what a pairwise
    (tuple-at-a-time) engine evaluates. An environment is an int array of
    row ids, indexed by binding position. *)

exception Unsupported of string

type env_spec = (string * Lh_storage.Table.t) list
(** FROM bindings in order; environment index = list position. *)

val scalar : env_spec -> Lh_sql.Ast.expr -> int array -> float
val code : env_spec -> Lh_sql.Ast.expr -> int array -> int
(** GROUP BY code evaluator (column codes, or EXTRACT(YEAR)). *)

val code_dtype : env_spec -> Lh_sql.Ast.expr -> Lh_storage.Dtype.t
val pred : env_spec -> Lh_sql.Ast.pred -> int array -> bool

val pred_aliases : env_spec -> Lh_sql.Ast.pred -> string list
(** Bindings a predicate mentions (used to place predicates at the
    earliest join depth where all inputs are bound). *)

val resolve : env_spec -> Lh_sql.Ast.col_ref -> int * int
(** (binding position, column index). Raises {!Unsupported} on unknown or
    ambiguous columns. *)
