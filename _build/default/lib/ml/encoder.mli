(** Feature encoding for the §VII pipeline: numeric columns pass through
    (standardized), categorical (string) columns are one-hot encoded, all
    directly from a table's dictionary-coded buffers — no per-row string
    materialization, which is the data-transformation saving the voter
    experiment measures. *)

type t = {
  matrix : Lh_blas.Dense.t;  (** n × nfeatures, bias column included *)
  feature_names : string array;
}

val encode :
  table:Lh_storage.Table.t -> numeric:string list -> categorical:string list -> t
(** Raises [Failure] on unknown column names or a categorical column that
    is not a string column. *)

val labels : table:Lh_storage.Table.t -> column:string -> float array
(** 0/1 labels from an int or float column. *)
