module Dense = Lh_blas.Dense

type model = { weights : float array }

let sigmoid x = if x >= 0.0 then 1.0 /. (1.0 +. exp (-.x)) else exp x /. (1.0 +. exp x)

let predict_weights w x =
  let n = x.Dense.rows and k = x.Dense.cols in
  let out = Array.make n 0.0 in
  for r = 0 to n - 1 do
    let base = r * k in
    let acc = ref 0.0 in
    for c = 0 to k - 1 do
      acc := !acc +. (Array.unsafe_get x.Dense.data (base + c) *. Array.unsafe_get w c)
    done;
    out.(r) <- sigmoid !acc
  done;
  out

let gradient ~weights ~x ~y =
  let n = x.Dense.rows and k = x.Dense.cols in
  if Array.length y <> n then invalid_arg "Logreg.gradient: label count mismatch";
  let p = predict_weights weights x in
  let g = Array.make k 0.0 in
  for r = 0 to n - 1 do
    let err = p.(r) -. y.(r) in
    let base = r * k in
    for c = 0 to k - 1 do
      g.(c) <- g.(c) +. (err *. Array.unsafe_get x.Dense.data (base + c))
    done
  done;
  let scale = 1.0 /. float_of_int (max n 1) in
  Array.map (fun v -> v *. scale) g

let train ~x ~y ?(iterations = 5) ?(learning_rate = 0.1) () =
  let k = x.Dense.cols in
  let w = Array.make k 0.0 in
  for _ = 1 to iterations do
    let g = gradient ~weights:w ~x ~y in
    for c = 0 to k - 1 do
      w.(c) <- w.(c) -. (learning_rate *. g.(c))
    done
  done;
  { weights = w }

let predict_proba model x = predict_weights model.weights x
let predict model x = Array.map (fun p -> if p >= 0.5 then 1.0 else 0.0) (predict_proba model x)

let loss model ~x ~y =
  let p = predict_proba model x in
  let n = Array.length y in
  let eps = 1e-12 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    let pr = Float.min (1.0 -. eps) (Float.max eps p.(r)) in
    total := !total -. ((y.(r) *. log pr) +. ((1.0 -. y.(r)) *. log (1.0 -. pr)))
  done;
  !total /. float_of_int (max n 1)

let accuracy model ~x ~y =
  let p = predict model x in
  let hits = ref 0 in
  Array.iteri (fun r v -> if v = y.(r) then incr hits) p;
  float_of_int !hits /. float_of_int (max (Array.length y) 1)
