lib/ml/logreg.mli: Lh_blas
