lib/ml/encoder.mli: Lh_blas Lh_storage
