lib/ml/encoder.ml: Array Hashtbl Lh_blas Lh_storage List Printf
