lib/ml/logreg.ml: Array Float Lh_blas
