(** Batch gradient-descent logistic regression — the training phase of the
    §VII voter-classification pipeline (five iterations in the paper). *)

type model = { weights : float array }

val sigmoid : float -> float

val train :
  x:Lh_blas.Dense.t -> y:float array -> ?iterations:int -> ?learning_rate:float -> unit -> model
(** Full-batch gradient descent minimizing the logistic loss; [y] must be
    0/1. Defaults: 5 iterations (the paper's setting), rate 0.1. *)

val predict_proba : model -> Lh_blas.Dense.t -> float array
val predict : model -> Lh_blas.Dense.t -> float array
(** 0/1 predictions at threshold 0.5. *)

val loss : model -> x:Lh_blas.Dense.t -> y:float array -> float
(** Mean logistic loss. *)

val accuracy : model -> x:Lh_blas.Dense.t -> y:float array -> float

val gradient : weights:float array -> x:Lh_blas.Dense.t -> y:float array -> float array
(** Exposed for the finite-difference gradient checks in the tests. *)
