module T = Lh_storage.Table
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype

type t = { matrix : Lh_blas.Dense.t; feature_names : string array }

let encode ~table ~numeric ~categorical =
  let n = table.T.nrows in
  let num_cols =
    List.map
      (fun name ->
        let i = Schema.find_exn table.T.schema name in
        (name, i))
      numeric
  in
  let cat_cols =
    List.map
      (fun name ->
        let i = Schema.find_exn table.T.schema name in
        if (Schema.col table.T.schema i).Schema.dtype <> Dtype.String then
          failwith (Printf.sprintf "Encoder.encode: %s is not a string column" name);
        let codes = T.icol table i in
        (* Distinct codes in first-seen order. *)
        let seen = Hashtbl.create 16 in
        let order = ref [] in
        Array.iter
          (fun c ->
            if not (Hashtbl.mem seen c) then begin
              Hashtbl.replace seen c (Hashtbl.length seen);
              order := c :: !order
            end)
          codes;
        (name, codes, Hashtbl.copy seen, List.rev !order))
      categorical
  in
  let nfeat =
    1
    + List.length num_cols
    + List.fold_left (fun acc (_, _, seen, _) -> acc + Hashtbl.length seen) 0 cat_cols
  in
  let m = Lh_blas.Dense.create ~rows:n ~cols:nfeat in
  (* bias *)
  for r = 0 to n - 1 do
    Lh_blas.Dense.set m r 0 1.0
  done;
  let names = ref [ "bias" ] in
  let col = ref 1 in
  List.iter
    (fun (name, i) ->
      (* standardize to zero mean / unit variance *)
      let mean = ref 0.0 and sq = ref 0.0 in
      for r = 0 to n - 1 do
        let v = T.number table i r in
        mean := !mean +. v;
        sq := !sq +. (v *. v)
      done;
      let mean = !mean /. float_of_int (max n 1) in
      let var = (!sq /. float_of_int (max n 1)) -. (mean *. mean) in
      let sd = if var <= 1e-12 then 1.0 else sqrt var in
      for r = 0 to n - 1 do
        Lh_blas.Dense.set m r !col ((T.number table i r -. mean) /. sd)
      done;
      names := name :: !names;
      incr col)
    num_cols;
  List.iter
    (fun (name, codes, seen, order) ->
      let base = !col in
      List.iteri
        (fun k code ->
          ignore k;
          names := Printf.sprintf "%s=%s" name (Lh_storage.Dict.decode table.T.dict code) :: !names)
        order;
      for r = 0 to n - 1 do
        Lh_blas.Dense.set m r (base + Hashtbl.find seen codes.(r)) 1.0
      done;
      col := base + Hashtbl.length seen)
    cat_cols;
  { matrix = m; feature_names = Array.of_list (List.rev !names) }

let labels ~table ~column =
  let i = Schema.find_exn table.T.schema column in
  Array.init table.T.nrows (fun r -> T.number table i r)
