let recommended_domains () =
  match Domain.recommended_domain_count () with n when n >= 1 -> min 8 n | _ -> 1

let chunk_bounds ~chunks ~n k =
  let per = n / chunks and rem = n mod chunks in
  let lo = (k * per) + min k rem in
  let hi = lo + per + (if k < rem then 1 else 0) in
  (lo, hi)

let map_reduce ~domains ~n ~init ~body ~merge =
  let domains = max 1 (min domains n) in
  if domains = 1 || n = 0 then begin
    let acc = init () in
    for i = 0 to n - 1 do
      body acc i
    done;
    acc
  end
  else begin
    let run k () =
      let lo, hi = chunk_bounds ~chunks:domains ~n k in
      let acc = init () in
      for i = lo to hi - 1 do
        body acc i
      done;
      acc
    in
    (* Chunk 0 runs on the calling domain while the others spawn. *)
    let spawned = Array.init (domains - 1) (fun k -> Domain.spawn (run (k + 1))) in
    let first = run 0 () in
    Array.fold_left (fun acc d -> merge acc (Domain.join d)) first spawned
  end

let iter ~domains ~n f =
  ignore
    (map_reduce ~domains ~n
       ~init:(fun () -> ())
       ~body:(fun () i -> f i)
       ~merge:(fun () () -> ()))
