(** Deterministic pseudo-random number generation.

    All data generators in this repository draw from this splitmix64-based
    PRNG so that every dataset, benchmark and property seed is reproducible
    from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next_int64 : t -> int64
(** Raw 64-bit output of the generator. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal variate (Box–Muller). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : t -> int -> int -> int array
(** [sample_distinct t k bound] draws [k] distinct sorted values from
    [\[0, bound)]. Requires [k <= bound]. *)
