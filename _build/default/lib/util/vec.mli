(** Growable unboxed vectors for ints and floats.

    The storage engine appends into these during ingestion and trie
    construction, then freezes them into plain arrays for query execution. *)

module Int : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val push : t -> int -> unit
  val pop : t -> int
  (** Removes and returns the last element. Raises [Invalid_argument] when
      empty. *)

  val clear : t -> unit
  (** Resets the length to zero without shrinking capacity. *)

  val to_array : t -> int array
  val of_array : int array -> t
  val iter : (int -> unit) -> t -> unit
  val unsafe_inner : t -> int array
  (** The backing array; only indices [< length] are meaningful. *)
end

module Float : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val push : t -> float -> unit
  val clear : t -> unit
  val to_array : t -> float array
  val of_array : float array -> t
  val iter : (float -> unit) -> t -> unit
end
