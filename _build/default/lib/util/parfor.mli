(** Naive outermost-loop parallelism over OCaml 5 domains (§III-D).

    The paper parallelizes only the outermost [for] loop of the generic
    WCOJ algorithm; this module provides exactly that: split an index range
    into contiguous chunks, run one domain per chunk with a private
    accumulator, and merge. With [domains = 1] everything runs on the
    calling domain (deterministic, no spawning). *)

val recommended_domains : unit -> int
(** [min 8 (cpu count)], at least 1. *)

val map_reduce :
  domains:int -> n:int -> init:(unit -> 'acc) -> body:('acc -> int -> unit) -> merge:('acc -> 'acc -> 'acc) -> 'acc
(** [map_reduce ~domains ~n ~init ~body ~merge] applies [body acc i] for
    every [i] in [\[0, n)], with indices partitioned into [domains]
    contiguous chunks, each with its own [init ()] accumulator; partial
    accumulators are combined left-to-right with [merge] (chunk order, so a
    commutative merge is not required). *)

val iter : domains:int -> n:int -> (int -> unit) -> unit
(** Side-effecting variant; the body must be safe to run concurrently on
    disjoint indices. *)
