type solution = { objective : float; primal : float array }

let eps = 1e-9

(* Standard tableau simplex with Bland's anti-cycling rule.  Problem sizes
   here are bounded by query size (<= ~10 variables/constraints), so a dense
   O(m*n) pivot is more than adequate. *)
let maximize ~a ~b ~c =
  let m = Array.length b in
  let n = Array.length c in
  Array.iter (fun bi -> if bi < -.eps then invalid_arg "Simplex.maximize: b must be >= 0") b;
  (* Tableau: m rows of (n structural + m slack + 1 rhs); objective row last. *)
  let cols = n + m + 1 in
  let tab = Array.make_matrix (m + 1) cols 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      tab.(i).(j) <- a.(i).(j)
    done;
    tab.(i).(n + i) <- 1.0;
    tab.(i).(cols - 1) <- b.(i)
  done;
  for j = 0 to n - 1 do
    tab.(m).(j) <- -.c.(j)
  done;
  let basis = Array.init m (fun i -> n + i) in
  let rec iterate guard =
    if guard = 0 then failwith "Simplex.maximize: iteration guard exceeded";
    (* Bland: entering variable = lowest index with negative reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to n + m - 1 do
         if tab.(m).(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering >= 0 then begin
      let e = !entering in
      (* Leaving row: min ratio, ties broken by lowest basis index (Bland). *)
      let leaving = ref (-1) in
      let best = ref infinity in
      for i = 0 to m - 1 do
        if tab.(i).(e) > eps then begin
          let ratio = tab.(i).(cols - 1) /. tab.(i).(e) in
          if
            ratio < !best -. eps
            || (ratio < !best +. eps && (!leaving = -1 || basis.(i) < basis.(!leaving)))
          then begin
            best := ratio;
            leaving := i
          end
        end
      done;
      if !leaving = -1 then failwith "Simplex.maximize: unbounded LP";
      let r = !leaving in
      let piv = tab.(r).(e) in
      for j = 0 to cols - 1 do
        tab.(r).(j) <- tab.(r).(j) /. piv
      done;
      for i = 0 to m do
        if i <> r then begin
          let factor = tab.(i).(e) in
          if Float.abs factor > eps then
            for j = 0 to cols - 1 do
              tab.(i).(j) <- tab.(i).(j) -. (factor *. tab.(r).(j))
            done
        end
      done;
      basis.(r) <- e;
      iterate (guard - 1)
    end
  in
  iterate 10_000;
  let primal = Array.make n 0.0 in
  Array.iteri (fun i v -> if v < n then primal.(v) <- tab.(i).(cols - 1)) basis;
  { objective = tab.(m).(cols - 1); primal }

type cover = { width : float; weights : float array }

(* The cover LP (minimize sum x_e subject to every vertex covered, x >= 0)
   is not in the [maximize] standard form, but some optimal cover always has
   x_e <= 1 (capping a weight at 1 keeps every vertex covered because
   constraint coefficients are 0/1).  Substituting z_e = 1 - x_e turns it
   into: maximize sum z_e subject to, for every vertex v,
   sum_{e ∋ v} z_e <= deg(v) - 1, plus z_e <= 1, z >= 0 — a standard-form
   maximization with nonnegative right-hand sides.  The width is then
   |E| - objective. *)
let fractional_edge_cover ~nvertices ~edges =
  let nedges = Array.length edges in
  if nedges = 0 && nvertices > 0 then
    invalid_arg "Simplex.fractional_edge_cover: vertices but no edges";
  if nvertices = 0 then { width = 0.0; weights = Array.make nedges 0.0 }
  else begin
    let deg = Array.make nvertices 0 in
    Array.iter (List.iter (fun v -> deg.(v) <- deg.(v) + 1)) edges;
    Array.iteri
      (fun v d ->
        if d = 0 then
          invalid_arg (Printf.sprintf "Simplex.fractional_edge_cover: vertex %d uncovered" v))
      deg;
    let a = Array.make_matrix (nvertices + nedges) nedges 0.0 in
    let b = Array.make (nvertices + nedges) 0.0 in
    Array.iteri (fun e vs -> List.iter (fun v -> a.(v).(e) <- 1.0) vs) edges;
    for v = 0 to nvertices - 1 do
      b.(v) <- float_of_int (deg.(v) - 1)
    done;
    for e = 0 to nedges - 1 do
      a.(nvertices + e).(e) <- 1.0;
      b.(nvertices + e) <- 1.0
    done;
    let c = Array.make nedges 1.0 in
    let sol = maximize ~a ~b ~c in
    let weights = Array.map (fun z -> 1.0 -. z) sol.primal in
    { width = float_of_int nedges -. sol.objective; weights }
  end
