(** Dense simplex solver for the tiny linear programs that arise in
    fractional-hypertree-width computation (§II-B).

    The primal form solved directly is
      maximize  c·x  subject to  A x <= b,  x >= 0,
    with [b >= 0] so the slack basis is feasible. The fractional edge cover
    LP (minimize total edge weight such that every vertex is covered) is
    solved through its dual, which has this form; the primal cover weights
    are recovered from the reduced costs of the slack variables. *)

type solution = { objective : float; primal : float array }

val maximize : a:float array array -> b:float array -> c:float array -> solution
(** Solve [max c.x s.t. a x <= b, x >= 0]. Requires all [b.(i) >= 0].
    [primal] is the optimal [x]. Raises [Failure] if the LP is unbounded
    (never the case for covers). Uses Bland's rule, so it terminates. *)

type cover = { width : float; weights : float array }

val fractional_edge_cover : nvertices:int -> edges:int list array -> cover
(** [fractional_edge_cover ~nvertices ~edges] where [edges.(e)] lists the
    vertices of hyperedge [e] (vertices are [0 .. nvertices-1]; every vertex
    must occur in at least one edge). Returns the minimum total weight
    [width] and per-edge weights such that every vertex receives total
    weight at least 1 — i.e. the quantity whose maximum over GHD bags is the
    fractional hypertree width. *)
