lib/util/prng.mli:
