lib/util/vec.ml: Array
