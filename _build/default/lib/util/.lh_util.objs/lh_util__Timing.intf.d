lib/util/timing.mli: Format
