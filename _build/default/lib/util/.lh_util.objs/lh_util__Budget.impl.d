lib/util/budget.ml: Gc Result Timing
