lib/util/parfor.mli:
