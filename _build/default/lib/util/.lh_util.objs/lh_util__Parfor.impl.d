lib/util/parfor.ml: Array Domain
