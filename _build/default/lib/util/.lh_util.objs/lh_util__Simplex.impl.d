lib/util/simplex.ml: Array Float List Printf
