lib/util/timing.ml: Array Format Printf Unix
