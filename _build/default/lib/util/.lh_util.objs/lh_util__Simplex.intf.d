lib/util/simplex.mli:
