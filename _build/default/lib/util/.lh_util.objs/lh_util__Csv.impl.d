lib/util/csv.ml: Buffer Fun List String
