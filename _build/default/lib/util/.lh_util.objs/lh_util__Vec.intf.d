lib/util/vec.mli:
