lib/util/csv.mli:
