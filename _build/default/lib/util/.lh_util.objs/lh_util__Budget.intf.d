lib/util/budget.mli:
