type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: passes BigCrush, trivially seedable, one multiply-xor chain
   per draw.  Chosen over Stdlib.Random for stability across OCaml
   releases: generated datasets must not change under compiler upgrades. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits: Int64.to_int of a 63-bit value can wrap negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let u1 = max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_distinct t k bound =
  if k > bound then invalid_arg "Prng.sample_distinct: k > bound";
  (* Floyd's algorithm: k hash inserts regardless of bound. *)
  let seen = Hashtbl.create (2 * k) in
  for j = bound - k to bound - 1 do
    let v = int t (j + 1) in
    if Hashtbl.mem seen v then Hashtbl.replace seen j ()
    else Hashtbl.replace seen v ()
  done;
  let out = Array.make k 0 in
  let i = ref 0 in
  Hashtbl.iter (fun v () -> out.(!i) <- v; incr i) seen;
  Array.sort compare out;
  out
