module Int = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0; len = 0 }
  let length t = t.len

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Vec.Int.get";
    t.data.(i)

  let set t i v =
    if i < 0 || i >= t.len then invalid_arg "Vec.Int.set";
    t.data.(i) <- v

  let grow t =
    let data = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data

  let push t v =
    if t.len = Array.length t.data then grow t;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let pop t =
    if t.len = 0 then invalid_arg "Vec.Int.pop: empty";
    t.len <- t.len - 1;
    t.data.(t.len)

  let clear t = t.len <- 0
  let to_array t = Array.sub t.data 0 t.len
  let of_array a = { data = Array.copy a; len = Array.length a }

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done

  let unsafe_inner t = t.data
end

module Float = struct
  type t = { mutable data : float array; mutable len : int }

  let create ?(capacity = 16) () = { data = Array.make (max capacity 1) 0.0; len = 0 }
  let length t = t.len

  let get t i =
    if i < 0 || i >= t.len then invalid_arg "Vec.Float.get";
    t.data.(i)

  let set t i v =
    if i < 0 || i >= t.len then invalid_arg "Vec.Float.set";
    t.data.(i) <- v

  let grow t =
    let data = Array.make (2 * Array.length t.data) 0.0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data

  let push t v =
    if t.len = Array.length t.data then grow t;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let clear t = t.len <- 0
  let to_array t = Array.sub t.data 0 t.len
  let of_array a = { data = Array.copy a; len = Array.length a }

  let iter f t =
    for i = 0 to t.len - 1 do
      f t.data.(i)
    done
end
