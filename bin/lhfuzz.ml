(* lhfuzz — differential query fuzzer.

   Generates schema-aware random queries against the pinned fuzzing
   dataset and runs each through every evaluator (the engine under several
   configurations, the pairwise baselines), checking all of them against
   the brute-force oracle. Mismatches are shrunk to a minimal repro and
   printed with the seed/index needed to replay them.

   With --inject-fault it instead runs the crash-recovery harness: for
   every registered fault site, arm the site (all three kinds), drive a
   workload into it, and assert the typed error + bit-identical re-query
   on the same engine.

   Examples:

     lhfuzz --seed 42 --count 1000
     lhfuzz --seed 42 --index 173 --count 1        # replay one query
     lhfuzz --shape la --shape chain --count 200   # restrict shapes
     lhfuzz --inject-bug --count 50                # demo: detect + shrink
     lhfuzz --inject-fault --seed 42               # crash-only recovery sweep
*)

module Diff = Lh_qgen.Diff
module Gen = Lh_qgen.Gen
module Crashtest = Lh_qgen.Crashtest
module Concurrent = Lh_qgen.Concurrent
open Cmdliner

let run_concurrent seed count domains ingests quiet =
  let progress line = if not quiet then Printf.eprintf "... %s\n%!" line in
  let summary =
    Lh_obs.Obs.with_enabled true (fun () ->
        Concurrent.run ~progress ~seed ~domains ~per_domain:count ~ingests ())
  in
  print_string (Concurrent.to_text summary);
  if Concurrent.ok summary then begin
    print_endline "OK: every query bit-identical to its epoch's sequential replay";
    0
  end
  else begin
    print_endline "FAIL: snapshot-consistency violations";
    1
  end

let run_crashtest seed attempts site quiet =
  let progress line = if not quiet then Printf.eprintf "... %s\n%!" line in
  let summary = Crashtest.run ~progress ~attempts ?site ~seed () in
  print_string (Crashtest.to_text summary);
  if Crashtest.ok summary then begin
    print_endline "OK: every fault site recovered";
    0
  end
  else begin
    print_endline "FAIL: fault sites without crash-only recovery";
    1
  end

let run_kill_restart seed quiet =
  let progress line = if not quiet then Printf.eprintf "... %s\n%!" line in
  let summary = Crashtest.run_kill ~progress ~seed () in
  print_string (Crashtest.to_text summary);
  if Crashtest.ok summary then begin
    print_endline "OK: every acknowledged batch survived kill and restart";
    0
  end
  else begin
    print_endline "FAIL: kill-and-restart recovery violations";
    1
  end

let run seed count first_index shapes max_relations semiring inject_bug layout_stress
    inject_fault attempts site kill_restart concurrent domains ingests quiet =
  if kill_restart then run_kill_restart seed quiet
  else if inject_fault then run_crashtest seed attempts site quiet
  else if concurrent then run_concurrent seed count domains ingests quiet
  else
  let shapes =
    match shapes with
    | [] -> Gen.all_shapes
    | names ->
        List.map
          (fun n ->
            match Gen.shape_of_string n with
            | Some s -> s
            | None ->
                Printf.eprintf "unknown shape %S (want: %s)\n%!" n
                  (String.concat ", " (List.map Gen.shape_to_string Gen.all_shapes));
                exit 2)
          names
  in
  let spec = { Gen.shapes; max_relations; semiring } in
  let progress i =
    if (not quiet) && (i + 1) mod 100 = 0 then Printf.eprintf "... %d queries\n%!" (i + 1)
  in
  let summary =
    Lh_obs.Obs.with_enabled true (fun () ->
        Diff.run ~progress ~inject_bug ~layout_stress ~first_index ~seed ~count spec)
  in
  print_endline (Diff.summary_to_string summary);
  Printf.printf "evaluators: %s\n"
    (String.concat ", " (Diff.evaluator_names ~inject_bug));
  Printf.printf "counters: %s\n"
    (String.concat " "
       (List.filter_map
          (fun (name, v) ->
            if String.length name >= 5 && String.sub name 0 5 = "fuzz." then
              Some (Printf.sprintf "%s=%d" name v)
            else None)
          (Lh_obs.Obs.snapshot ())));
  if summary.Diff.s_discrepancies = [] then begin
    Printf.printf "OK: %d queries, 0 discrepancies\n" count;
    0
  end
  else begin
    Printf.printf "FAIL: %d discrepancies\n" (List.length summary.Diff.s_discrepancies);
    1
  end

let cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Base PRNG seed") in
  let count = Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Number of queries") in
  let index =
    Arg.(value & opt int 0 & info [ "index" ] ~docv:"N"
           ~doc:"First query index (use with --count 1 to replay a reported discrepancy)")
  in
  let shape =
    Arg.(value & opt_all string [] & info [ "shape" ] ~docv:"SHAPE"
           ~doc:"Restrict generation to this shape (repeatable): scan, chain, star, cycle, la")
  in
  let max_relations =
    Arg.(value & opt int Gen.default_spec.Gen.max_relations
         & info [ "max-relations" ] ~docv:"N" ~doc:"Largest FROM-list to generate")
  in
  let semiring =
    Arg.(value & flag & info [ "semiring" ]
           ~doc:"Also generate semiring aggregates — MIN_PLUS(...), REACHES(...) and \
                 agg('name', ...) over the builtin registry — exercising the generalized \
                 fold kernels against the brute-force oracle's hardcoded semantics")
  in
  let inject_bug =
    Arg.(value & flag & info [ "inject-bug" ]
           ~doc:"Add a deliberately wrong evaluator (sign-flips floats) to demonstrate \
                 mismatch detection and shrinking")
  in
  let layout_stress =
    Arg.(value & flag & info [ "layout-stress" ]
           ~doc:"Register the sparse/dense layout-crossover relations (ls_d, ls_s, ls_m) \
                 in the fuzzing dataset: distinct-key matrices whose trie sets straddle \
                 the bitset/uint layout boundary, driving generated joins through every \
                 layout-pair intersection kernel and the count-only WCOJ leaves")
  in
  let inject_fault =
    Arg.(value & flag & info [ "inject-fault" ]
           ~doc:"Run the fault-injection crash-recovery harness instead of differential \
                 fuzzing: arm every registered fault site (generic/timeout/oom kinds), \
                 assert a typed error surfaces and that re-running the same workload on \
                 the same engine matches a clean engine bit-for-bit")
  in
  let attempts =
    Arg.(value & opt int 40 & info [ "attempts" ] ~docv:"N"
           ~doc:"With --inject-fault: per-site bound on the search for a generated query \
                 that reaches the site")
  in
  let site =
    Arg.(value & opt (some string) None & info [ "site" ] ~docv:"GLOB"
           ~doc:"With --inject-fault: only run scenarios for fault sites matching GLOB \
                 ('*' wildcards, e.g. 'wal.*') — the single-site repro loop")
  in
  let kill_restart =
    Arg.(value & flag & info [ "kill-restart" ]
           ~doc:"Run the kill-and-restart durability harness: spawn a real lhserve child \
                 on a temp --data-dir, SIGKILL it mid-ingest at LH_KILL-selected fault \
                 sites (including torn writes and kills during recovery itself), restart \
                 on the same directory and assert every acknowledged batch is \
                 query-visible and bit-identical to a sequential oracle rebuild \
                 (\\$LH_KILL_COUNT batches per scenario, default 6)")
  in
  let concurrent =
    Arg.(value & flag & info [ "concurrent" ]
           ~doc:"Run the concurrent-sessions evaluator instead of differential fuzzing: \
                 N reader domains issue generated ad-hoc and prepared queries through the \
                 query service while a writer publishes new epochs; every query must be \
                 bit-identical to a sequential replay against the epoch it pinned \
                 (--count is queries per domain)")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"N"
           ~doc:"With --concurrent: number of reader domains (sessions)")
  in
  let ingests =
    Arg.(value & opt int 4 & info [ "ingests" ] ~docv:"N"
           ~doc:"With --concurrent: number of epochs the writer publishes")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No progress output") in
  Cmd.v
    (Cmd.info "lhfuzz" ~doc:"Differential query fuzzer for the LevelHeaded engine")
    Term.(
      const run $ seed $ count $ index $ shape $ max_relations $ semiring $ inject_bug
      $ layout_stress $ inject_fault $ attempts $ site $ kill_restart $ concurrent $ domains
      $ ingests $ quiet)

let () = exit (Cmd.eval' cmd)
