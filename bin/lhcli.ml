(* lhcli — load delimited files into a LevelHeaded engine and query them.

   Subcommands:

     gen    generate benchmark datasets as delimited files
     query  load tables and run SQL (or EXPLAIN it)

   Examples:

     lhcli gen tpch --sf 0.01 --out /tmp/tpch
     lhcli query \
       --table "lineitem:/tmp/tpch/lineitem.tbl:l_orderkey int key,l_partkey int key,..." \
       --sql "select count(*) c from lineitem"
     lhcli query --tpch /tmp/tpch --sql "select ... " --explain
*)

module L = Levelheaded
module Schema = Lh_storage.Schema
module Table = Lh_storage.Table
open Cmdliner

(* ---- schema syntax: "name dtype [key]" comma-separated ---- *)

let parse_schema spec =
  let col s =
    match String.split_on_char ' ' (String.trim s) |> List.filter (fun x -> x <> "") with
    | [ name; dtype ] -> (name, Lh_storage.Dtype.of_string dtype, Schema.Annotation)
    | [ name; dtype; "key" ] -> (name, Lh_storage.Dtype.of_string dtype, Schema.Key)
    | _ -> failwith (Printf.sprintf "bad column spec %S (want: name dtype [key])" s)
  in
  Schema.create (List.map col (String.split_on_char ',' spec))

let parse_table_arg arg =
  match String.split_on_char ':' arg with
  | name :: path :: rest when rest <> [] ->
      (name, path, parse_schema (String.concat ":" rest))
  | _ -> failwith (Printf.sprintf "bad --table %S (want name:path:schema)" arg)

(* ---- gen ---- *)

let write_table dir sep (t : Table.t) =
  let path = Filename.concat dir (t.Table.name ^ ".tbl") in
  let rows =
    List.init t.Table.nrows (fun r ->
        List.init (Schema.ncols t.Table.schema) (fun c ->
            Lh_storage.Dtype.value_to_string (Table.value t ~row:r ~col:c)))
  in
  Lh_util.Csv.write_file ~sep path rows;
  Printf.printf "wrote %s (%d rows)\n%!" path t.Table.nrows

let gen_run dataset sf n out seed =
  if not (Sys.file_exists out) then Unix.mkdir out 0o755;
  let dict = Lh_storage.Dict.create () in
  (match dataset with
  | "tpch" -> List.iter (write_table out '|') (Lh_datagen.Tpch.generate ~dict ~sf ~seed ())
  | "matrix" ->
      let m = Lh_datagen.Matrices.banded ~dict ~name:"matrix" ~n ~nnz_per_row:20 ~seed () in
      write_table out ',' m.Lh_datagen.Matrices.table
  | "voter" ->
      let voters, precincts = Lh_datagen.Voter.generate ~dict ~nvoters:n ~nprecincts:(max 1 (n / 200)) ~seed () in
      write_table out ',' voters;
      write_table out ',' precincts
  | other -> failwith (Printf.sprintf "unknown dataset %S (tpch | matrix | voter)" other));
  0

let gen_cmd =
  let dataset = Arg.(required & pos 0 (some string) None & info [] ~docv:"DATASET" ~doc:"tpch, matrix or voter") in
  let sf = Arg.(value & opt float 0.01 & info [ "sf" ] ~doc:"TPC-H scale factor") in
  let n = Arg.(value & opt int 10_000 & info [ "size"; "n" ] ~doc:"matrix dimension / voter count") in
  let out = Arg.(value & opt string "." & info [ "out"; "o" ] ~doc:"output directory") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"generator seed") in
  Cmd.v (Cmd.info "gen" ~doc:"Generate benchmark datasets as delimited files")
    Term.(const gen_run $ dataset $ sf $ n $ out $ seed)

(* ---- query ---- *)

let tpch_schema_sep name =
  (List.assoc name Lh_datagen.Tpch.schemas, '|')

let print_result (result : Table.t) =
  for c = 0 to Schema.ncols result.Table.schema - 1 do
    if c > 0 then print_char '|';
    print_string (Schema.col result.Table.schema c).Schema.name
  done;
  print_newline ();
  for r = 0 to result.Table.nrows - 1 do
    Format.printf "%a@." (fun fmt () -> Table.pp_row fmt result r) ()
  done

let path_name = function
  | L.Engine.Scan_path -> "scan"
  | L.Engine.Wcoj_path -> "wcoj"
  | L.Engine.Blas_path -> "blas"

(* --param values: narrowest type that parses wins (int, float, date),
   falling back to string. Force a string with quotes: --param "'42'". *)
let parse_param s =
  let unquoted =
    let n = String.length s in
    if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then Some (String.sub s 1 (n - 2)) else None
  in
  match unquoted with
  | Some str -> Lh_storage.Dtype.VString str
  | None -> (
      match int_of_string_opt s with
      | Some i -> Lh_storage.Dtype.VInt i
      | None -> (
          match float_of_string_opt s with
          | Some f -> Lh_storage.Dtype.VFloat f
          | None -> (
              match Lh_storage.Date.of_string s with
              | d -> Lh_storage.Dtype.VDate d
              | exception _ -> Lh_storage.Dtype.VString s)))

let query_run tables tpch_dir sql explain_only analyze trace_file metrics_file sep domains params
    repeat prepare_flag profile_flag slow_log slow_ms =
  let failed = ref false in
  (* Configure domains before loading: ingest parallelizes too. *)
  let config = { L.Config.default with L.Config.domains = max 1 domains } in
  (* Slow-log threshold: --slow-ms wins, then LH_SLOW_MS (already folded
     into the default config), and a bare --slow-log means "log every
     query" rather than the log-nothing default. *)
  let config =
    match (slow_ms, slow_log) with
    | Some ms, _ -> { config with L.Config.slow_log_ms = ms }
    | None, Some _ when config.L.Config.slow_log_ms = infinity ->
        { config with L.Config.slow_log_ms = 0.0 }
    | _ -> config
  in
  let eng = L.Engine.create ~config () in
  (* Profiles are only assembled while telemetry is on; --analyze would
     enable it per-run, but --profile / --slow-log want every query. *)
  if profile_flag || slow_log <> None then Lh_obs.Obs.set_enabled true;
  let slow_oc =
    match slow_log with
    | None -> None
    | Some path -> (
        try Some (open_out path)
        with Sys_error msg ->
          Printf.eprintf "cannot open --slow-log file: %s\n" msg;
          exit 2)
  in
  Option.iter
    (fun oc ->
      L.Engine.set_profile_sink eng
        (Some
           (fun p ->
             output_string oc (L.Profile.to_string p);
             output_char oc '\n')))
    slow_oc;
  let finish () =
    (if profile_flag then
       match L.Engine.last_profile eng with
       | Some p -> Printf.eprintf "%s\n" (L.Profile.to_string p)
       | None -> ());
    Option.iter
      (fun oc ->
        close_out oc;
        Option.iter (Printf.eprintf "wrote slow-query log to %s\n") slow_log)
      slow_oc
  in
  let go () =
  (match tpch_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun (name, _) ->
          let path = Filename.concat dir (name ^ ".tbl") in
          if Sys.file_exists path then begin
            let schema, sep = tpch_schema_sep name in
            ignore (L.Engine.load_csv eng ~name ~schema ~sep path);
            Printf.printf "loaded %s\n%!" path
          end)
        Lh_datagen.Tpch.schemas);
  List.iter
    (fun arg ->
      let name, path, schema = parse_table_arg arg in
      ignore (L.Engine.load_csv eng ~name ~schema ~sep path);
      Printf.printf "loaded %s as %s\n%!" path name)
    tables;
  let instrumented = analyze || trace_file <> None || metrics_file <> None in
  let use_prepared = prepare_flag || params <> [] || repeat > 1 in
  let write_sinks report =
    let write what path json k =
      match Lh_obs.Report.write_file path json with
      | () -> Printf.eprintf "wrote %s to %s%s\n" what path k
      | exception Sys_error msg ->
          Printf.eprintf "error: cannot write %s: %s\n" what msg;
          failed := true
    in
    Option.iter
      (fun path ->
        write "Chrome trace" path (Lh_obs.Report.chrome_trace report)
          " (open via chrome://tracing)")
      trace_file;
    Option.iter
      (fun path -> write "metrics JSON" path (Lh_obs.Report.metrics_json report) "")
      metrics_file
  in
  (match sql with
  | None -> Printf.eprintf "no --sql given\n"
  | Some sql ->
      if explain_only then print_string (L.Engine.explain eng sql).L.Engine.etext
      else if use_prepared then begin
        let values = List.map parse_param params in
        let stmt, prep_dt = Lh_util.Timing.time (fun () -> L.Engine.prepare eng sql) in
        let n = L.Engine.Stmt.nparams stmt in
        Printf.eprintf "-- prepared in %s (%d parameter%s)\n%!"
          (Lh_util.Timing.duration_to_string prep_dt)
          n
          (if n = 1 then "" else "s");
        for k = 1 to max 1 repeat do
          let last = k = max 1 repeat in
          if last && instrumented then begin
            let result, report = L.Engine.Stmt.exec_analyze stmt values in
            print_result result;
            Printf.eprintf "-- exec %d/%d: %d rows in %s\n" k (max 1 repeat) result.Table.nrows
              (Lh_util.Timing.duration_to_string report.Lh_obs.Report.total_s);
            prerr_string (Lh_obs.Report.to_text report);
            write_sinks report
          end
          else begin
            let result, dt = Lh_util.Timing.time (fun () -> L.Engine.Stmt.exec stmt values) in
            if last then print_result result;
            Printf.eprintf "-- exec %d/%d: %d rows in %s\n%!" k (max 1 repeat) result.Table.nrows
              (Lh_util.Timing.duration_to_string dt)
          end
        done
      end
      else if instrumented then begin
        let result, ex, report = L.Engine.query_analyze eng sql in
        print_result result;
        Printf.eprintf "-- %d rows in %s (%s path)\n" result.Table.nrows
          (Lh_util.Timing.duration_to_string report.Lh_obs.Report.total_s)
          (path_name ex.L.Engine.epath);
        prerr_string (Lh_obs.Report.to_text report);
        write_sinks report
      end
      else begin
        let (result, ex), dt = Lh_util.Timing.time (fun () -> L.Engine.query_explain eng sql) in
        print_result result;
        Printf.eprintf "-- %d rows in %s (%s path)\n" result.Table.nrows
          (Lh_util.Timing.duration_to_string dt)
          (path_name ex.L.Engine.epath)
      end);
  if !failed then 1 else 0
  in
  (* Typed failures (including injected faults and budget overruns) get a
     clean one-line error and exit 1 rather than cmdliner's uncaught-
     exception banner. *)
  match go () with
  | code ->
      finish ();
      code
  | exception L.Engine.Error e ->
      Printf.eprintf "error: %s\n" (L.Engine.Error.to_string e);
      finish ();
      1
  | exception (Lh_util.Budget.Timed_out | Lh_util.Budget.Out_of_memory_budget) ->
      Printf.eprintf "error: budget exceeded (time or memory limit hit mid-execution)\n";
      finish ();
      1

let query_cmd =
  let tables =
    Arg.(value & opt_all string [] & info [ "table"; "t" ] ~docv:"NAME:PATH:SCHEMA"
           ~doc:"Load a delimited file; SCHEMA is 'col dtype [key], ...'")
  in
  let tpch = Arg.(value & opt (some string) None & info [ "tpch" ] ~doc:"Directory of lhcli-generated TPC-H .tbl files to load") in
  let sql = Arg.(value & opt (some string) None & info [ "sql"; "q" ] ~doc:"SQL to run") in
  let explain = Arg.(value & flag & info [ "explain" ] ~doc:"Print the plan instead of executing") in
  let analyze =
    Arg.(value & flag & info [ "analyze" ]
           ~doc:"EXPLAIN ANALYZE: run with telemetry and print the per-phase time breakdown and counters")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome chrome://tracing-compatible trace of the run to $(docv)")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the run's telemetry (phases, counters, spans) as JSON to $(docv)")
  in
  let sep = Arg.(value & opt char ',' & info [ "sep" ] ~doc:"Field separator for --table files") in
  let domains =
    Arg.(value
         & opt int (Lh_util.Parfor.default_domains ())
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains for ingest, trie builds and query execution (default: \
                   \\$LH_DOMAINS if set, else 1)")
  in
  let params =
    Arg.(value & opt_all string [] & info [ "param"; "p" ] ~docv:"VALUE"
           ~doc:"Bind a positional parameter (repeat for \\$1, \\$2, ...). Typed by narrowest \
                 parse: int, float, date (YYYY-MM-DD), else string; quote ('42') to force \
                 string. Implies the prepared path.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Prepare once and execute $(docv) times, timing each execution")
  in
  let prepare_flag =
    Arg.(value & flag & info [ "prepare" ]
           ~doc:"Use Engine.prepare / Stmt.exec even without parameters or --repeat")
  in
  let profile_flag =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Print the per-query profile record (normalized SQL, plan summary, cache \
                 disposition, rows, per-phase seconds, counter deltas, outcome) as one JSON \
                 line on stderr. Composes with --analyze and --metrics. On --repeat, the \
                 last execution's profile is printed.")
  in
  let slow_log =
    Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE"
           ~doc:"Append the profile of every query at least --slow-ms milliseconds long to \
                 $(docv) as JSON lines. Without --slow-ms (or \\$LH_SLOW_MS), logs every query.")
  in
  let slow_ms =
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~docv:"MS"
           ~doc:"Slow-query threshold in milliseconds for --slow-log (overrides \\$LH_SLOW_MS)")
  in
  Cmd.v (Cmd.info "query" ~doc:"Load delimited files and run SQL")
    Term.(
      const query_run $ tables $ tpch $ sql $ explain $ analyze $ trace $ metrics $ sep $ domains
      $ params $ repeat $ prepare_flag $ profile_flag $ slow_log $ slow_ms)

let () =
  let info = Cmd.info "lhcli" ~doc:"LevelHeaded command-line interface" in
  exit (Cmd.eval' (Cmd.group info [ gen_cmd; query_cmd ]))
