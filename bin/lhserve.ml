(* lhserve — line-protocol server over the epoch-pinned query service.

   Reads one command per line from stdin and answers on stdout; the first
   token of every response is "ok" or "error", so a driving script can
   pipe commands in and assert on the transcript (ci.sh does exactly
   that). Sessions query immutable epoch snapshots; "ingest" publishes a
   new epoch without disturbing queries in flight or explicit pins.

   Commands:

     open                         -> ok session <id>
     close <id>                   -> ok
     pin <id>                     -> ok epoch <e>
     unpin <id>                   -> ok
     query <id> <sql>             -> ok epoch <e> rows <n>   (then n rows)
     prepare <id> <sql>           -> ok stmt <sid>
     exec <sid> [v1 v2 ...]       -> ok epoch <e> rows <n>   (then n rows)
     ingest <table> <schema>      -> ok epoch <e>   (rows follow as CSV
                                     lines, terminated by a "." line)
     load <table> <schema> <path> -> ok epoch <e>
     epoch                        -> ok epoch <e>
     epochs                       -> ok epochs <k>  (then k "id pins retired" lines)
     stats                        -> ok sessions=S inflight=I epochs=E current=C
     quit                         -> ok bye
     shutdown                     -> ok bye   (graceful: drain, fsync WAL)

   Schemas are comma-separated "name:dtype[:key]" specs (no spaces), e.g.
   row:int:key,col:int:key,v:float. Typed service failures come back as
   one "error <kind>: ..." line; the server never exits on a bad command.

   With --data-dir the server is durable: every acknowledged ingest is
   in the directory's write-ahead log (fsync policy from --wal-sync /
   LH_WAL_SYNC) before the "ok epoch" line is printed, checkpoints are
   taken every --checkpoint-every ingests, and a restart on the same
   directory recovers to the last acknowledged epoch (torn WAL tails
   from a crash are truncated, never fatal). SIGINT/SIGTERM trigger a
   graceful shutdown: new work is refused, in-flight queries get a
   bounded drain window, the WAL is fsynced, and the process exits 0.

   Example:

     printf 'open\nquery 1 select 1 as x from t\nquit\n' \
       | lhserve --table t:/tmp/t.csv:'k int key,v float'
*)

module L = Levelheaded
module Serve = Lh_serve.Serve
module Schema = Lh_storage.Schema
module Dtype = Lh_storage.Dtype
module Table = Lh_storage.Table
open Cmdliner

exception Bad of string

(* ---- parsing ---- *)

let parse_colspec s =
  match String.split_on_char ':' (String.trim s) with
  | [ name; dt ] -> (name, Dtype.of_string dt, Schema.Annotation)
  | [ name; dt; "key" ] -> (name, Dtype.of_string dt, Schema.Key)
  | _ -> raise (Bad (Printf.sprintf "bad column %S (want name:dtype[:key])" s))

let parse_schema spec =
  match String.split_on_char ',' spec with
  | [] | [ "" ] -> raise (Bad "empty schema")
  | cols -> Schema.create (List.map parse_colspec cols)

let parse_cell dtype s =
  let s = String.trim s in
  match dtype with
  | Dtype.String -> Dtype.VString s
  | _ -> (
      try
        match dtype with
        | Dtype.Int -> Dtype.VInt (int_of_string s)
        | Dtype.Float -> Dtype.VFloat (float_of_string s)
        | Dtype.Date -> Dtype.VDate (Lh_storage.Date.of_string s)
        | Dtype.String -> assert false
      with _ ->
        raise (Bad (Printf.sprintf "cannot parse %S as %s" s (Dtype.to_string dtype))))

let parse_row schema line =
  let cells = String.split_on_char ',' line in
  let ncols = Schema.ncols schema in
  if List.length cells <> ncols then
    raise (Bad (Printf.sprintf "row has %d cells, schema has %d columns" (List.length cells) ncols));
  List.mapi (fun c cell -> parse_cell (Schema.col schema c).Schema.dtype cell) cells

(* exec parameters: narrowest parse wins (int, float, date), else string;
   quote ('x') to force string — same convention as lhcli --param. *)
let parse_param s =
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then Dtype.VString (String.sub s 1 (n - 2))
  else
    match int_of_string_opt s with
    | Some i -> Dtype.VInt i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Dtype.VFloat f
        | None -> (
            match Lh_storage.Date.of_string s with
            | d -> Dtype.VDate d
            | exception _ -> Dtype.VString s))

(* first token and the untrimmed rest of the line *)
let split_word line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))

let int_arg what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Bad (Printf.sprintf "%s: want an integer, got %S" what s))

(* ---- server state ---- *)

type state = {
  svc : Serve.t;
  sessions : (int, Serve.session) Hashtbl.t;
  stmts : (int, Serve.prepared) Hashtbl.t;
  mutable next_stmt : int;
}

let respond fmt = Printf.ksprintf (fun s -> print_string s; print_char '\n'; flush stdout) fmt

let err_kind = function
  | Serve.Overloaded _ -> "overloaded"
  | Serve.Closed _ -> "closed"
  | Serve.Engine_error _ -> "engine"

let session_of st id =
  match Hashtbl.find_opt st.sessions id with
  | Some s -> s
  | None -> raise (Bad (Printf.sprintf "no session %d" id))

let print_result (t : Table.t) epoch =
  respond "ok epoch %d rows %d" epoch t.Table.nrows;
  for r = 0 to t.Table.nrows - 1 do
    print_string (Format.asprintf "%a" (fun fmt () -> Table.pp_row fmt t r) ());
    print_char '\n'
  done;
  flush stdout

let handle st line =
  let cmd, rest = split_word line in
  match cmd with
  | "" -> ()
  | "open" ->
      let s = Serve.open_session st.svc in
      Hashtbl.replace st.sessions (Serve.session_id s) s;
      respond "ok session %d" (Serve.session_id s)
  | "close" ->
      let id = int_arg "close" rest in
      Serve.close_session (session_of st id);
      Hashtbl.remove st.sessions id;
      respond "ok"
  | "pin" -> respond "ok epoch %d" (Serve.pin (session_of st (int_arg "pin" rest)))
  | "unpin" ->
      Serve.unpin (session_of st (int_arg "unpin" rest));
      respond "ok"
  | "query" -> (
      let id, sql = split_word rest in
      if sql = "" then raise (Bad "query: want <session> <sql>");
      match Serve.query_epoch (session_of st (int_arg "query" id)) sql with
      | Ok (t, e) -> print_result t e
      | Error e -> respond "error %s: %s" (err_kind e) (Serve.error_to_string e))
  | "prepare" -> (
      let id, sql = split_word rest in
      if sql = "" then raise (Bad "prepare: want <session> <sql>");
      match Serve.prepare (session_of st (int_arg "prepare" id)) sql with
      | Ok p ->
          st.next_stmt <- st.next_stmt + 1;
          Hashtbl.replace st.stmts st.next_stmt p;
          respond "ok stmt %d" st.next_stmt
      | Error e -> respond "error %s: %s" (err_kind e) (Serve.error_to_string e))
  | "exec" -> (
      let id, args = split_word rest in
      let sid = int_arg "exec" id in
      let p =
        match Hashtbl.find_opt st.stmts sid with
        | Some p -> p
        | None -> raise (Bad (Printf.sprintf "no statement %d" sid))
      in
      let values =
        if args = "" then []
        else List.map parse_param (List.filter (( <> ) "") (String.split_on_char ' ' args))
      in
      match Serve.exec_prepared p values with
      | Ok (t, e) -> print_result t e
      | Error e -> respond "error %s: %s" (err_kind e) (Serve.error_to_string e))
  | "ingest" -> (
      let name, spec = split_word rest in
      if name = "" || spec = "" then raise (Bad "ingest: want <table> <schema>");
      let schema = parse_schema spec in
      let rows = ref [] in
      let rec slurp () =
        match input_line stdin with
        | "." -> ()
        | line ->
            rows := parse_row schema line :: !rows;
            slurp ()
        | exception End_of_file -> ()
      in
      slurp ();
      match Serve.ingest_rows st.svc ~name ~schema (List.rev !rows) with
      | Ok e -> respond "ok epoch %d" e
      | Error e -> respond "error %s: %s" (err_kind e) (Serve.error_to_string e))
  | "load" -> (
      let name, rest = split_word rest in
      let spec, path = split_word rest in
      if name = "" || spec = "" || path = "" then raise (Bad "load: want <table> <schema> <path>");
      match Serve.load_csv st.svc ~name ~schema:(parse_schema spec) path with
      | Ok e -> respond "ok epoch %d" e
      | Error e -> respond "error %s: %s" (err_kind e) (Serve.error_to_string e))
  | "epoch" -> respond "ok epoch %d" (Serve.current_epoch st.svc)
  | "epochs" ->
      let es = Serve.epochs st.svc in
      respond "ok epochs %d" (List.length es);
      List.iter
        (fun (id, pins, retired) ->
          respond "%d %d %s" id pins (if retired then "retired" else "live"))
        es
  | "stats" ->
      let s = Serve.stats st.svc in
      respond "ok sessions=%d inflight=%d epochs=%d current=%d" s.Serve.st_sessions
        s.Serve.st_inflight s.Serve.st_epochs s.Serve.st_current
  | "quit" ->
      respond "ok bye";
      Serve.close st.svc;
      exit 0
  | "shutdown" ->
      (* Graceful variant of quit: drain in-flight queries (bounded),
         then close — which fsyncs the WAL's group-commit remainder. *)
      if not (Serve.shutdown st.svc) then
        Printf.eprintf "lhserve: shutdown drain deadline expired\n%!";
      respond "ok bye";
      exit 0
  | other -> raise (Bad (Printf.sprintf "unknown command %S" other))

(* ---- startup ---- *)

let parse_table_arg arg =
  (* lhcli syntax: name:path:"col dtype [key], ..." *)
  let colspec s =
    match String.split_on_char ' ' (String.trim s) |> List.filter (fun x -> x <> "") with
    | [ name; dtype ] -> (name, Dtype.of_string dtype, Schema.Annotation)
    | [ name; dtype; "key" ] -> (name, Dtype.of_string dtype, Schema.Key)
    | _ -> failwith (Printf.sprintf "bad column spec %S (want: name dtype [key])" s)
  in
  match String.split_on_char ':' arg with
  | name :: path :: rest when rest <> [] ->
      ( name,
        path,
        Schema.create (List.map colspec (String.split_on_char ',' (String.concat ":" rest))) )
  | _ -> failwith (Printf.sprintf "bad --table %S (want name:path:schema)" arg)

let serve tables sep domains max_sessions queue_depth data_dir wal_sync checkpoint_every =
  let wal_sync =
    match wal_sync with
    | None -> None
    | Some s -> (
        match Lh_durable.Wal.sync_of_string s with
        | Ok m -> Some m
        | Error m -> failwith m)
  in
  let config =
    {
      L.Config.default with
      L.Config.domains = max 1 domains;
      wal_sync =
        (match wal_sync with Some m -> m | None -> L.Config.default.L.Config.wal_sync);
    }
  in
  let eng = L.Engine.create ~config () in
  (* Durable boot: recover the store before any preloads — recovered
     state is the base, --table files then layer on top (and get logged
     like any other ingest below, via the service). All chatter goes to
     stderr; stdout carries only protocol responses. *)
  let store =
    match data_dir with
    | None -> None
    | Some dir ->
        let store, recovered =
          Lh_durable.Store.open_dir ~sync:config.L.Config.wal_sync dir
        in
        Lh_durable.Store.replay_into recovered (fun ~name ~schema rows ->
            ignore (L.Engine.register_rows eng ~name ~schema rows));
        Printf.eprintf
          "lhserve: recovered %s: %d checkpoint table(s), %d wal batch(es), seq %d%s\n%!" dir
          (List.length recovered.Lh_durable.Store.rc_tables)
          (List.length recovered.Lh_durable.Store.rc_batches)
          recovered.Lh_durable.Store.rc_seq
          (if recovered.Lh_durable.Store.rc_torn then " (torn tail truncated)" else "");
        Some store
  in
  List.iter
    (fun arg ->
      let name, path, schema = parse_table_arg arg in
      ignore (L.Engine.load_csv eng ~name ~schema ~sep path);
      Printf.eprintf "loaded %s as %s\n%!" path name)
    tables;
  let st =
    {
      svc = Serve.create ?max_sessions ?queue_depth ?store ?checkpoint_every eng;
      sessions = Hashtbl.create 8;
      stmts = Hashtbl.create 8;
      next_stmt = 0;
    }
  in
  (* SIGINT/SIGTERM: graceful shutdown. The handler itself must NOT call
     Serve.shutdown — OCaml runs handlers at safe points on the main
     thread, possibly inside a Serve call that already holds the service
     lock, and re-locking there deadlocks (or raises from the
     error-checking mutex at an arbitrary point). So the handler only
     sets a flag and closes the stdin fd: a blocked input_line wakes
     with Sys_error, and the main loop — outside every lock — performs
     the bounded drain. Serve.shutdown bounds that drain, so a query
     wedged past the deadline cannot hold the exit hostage. *)
  let stop = Atomic.make false in
  let graceful _ =
    if not (Atomic.exchange stop true) then
      try Unix.close Unix.stdin with Unix.Unix_error _ -> ()
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful) with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle graceful) with Invalid_argument _ -> ());
  Printf.eprintf "lhserve: epoch %d, reading commands from stdin\n%!"
    (Serve.current_epoch st.svc);
  let graceful_exit () =
    if not (Serve.shutdown st.svc) then
      Printf.eprintf "lhserve: shutdown drain deadline expired\n%!";
    Printf.eprintf "lhserve: shutting down\n%!";
    0
  in
  let rec loop () =
    if Atomic.get stop then graceful_exit ()
    else
      match input_line stdin with
      | exception (End_of_file | Sys_error _) ->
          if Atomic.get stop then graceful_exit ()
          else begin
            Serve.close st.svc;
            0
          end
      | line ->
          (try handle st line with
          | Bad msg -> respond "error protocol: %s" msg
          | Serve.Error e -> respond "error %s: %s" (err_kind e) (Serve.error_to_string e)
          | Failure msg -> respond "error protocol: %s" msg
          (* stdin was closed by the signal handler mid-command (e.g.
             while slurping ingest rows): fall through to the shutdown
             check at the top of the loop *)
          | Sys_error _ when Atomic.get stop -> ());
          loop ()
  in
  loop ()

let cmd =
  let tables =
    Arg.(value & opt_all string [] & info [ "table"; "t" ] ~docv:"NAME:PATH:SCHEMA"
           ~doc:"Preload a delimited file; SCHEMA is 'col dtype [key], ...'")
  in
  let sep = Arg.(value & opt char ',' & info [ "sep" ] ~doc:"Field separator for --table files") in
  let domains =
    Arg.(value
         & opt int (Lh_util.Parfor.default_domains ())
         & info [ "domains" ] ~docv:"N"
             ~doc:"Worker domains for ingest and query execution (default: \\$LH_DOMAINS if \
                   set, else 1)")
  in
  let max_sessions =
    Arg.(value & opt (some int) None & info [ "max-sessions" ] ~docv:"N"
           ~doc:"Concurrent session cap (default: \\$LH_MAX_SESSIONS if set, else 8)")
  in
  let queue_depth =
    Arg.(value & opt (some int) None & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Service-wide admitted-query cap (default: \\$LH_QUEUE_DEPTH if set, else 32)")
  in
  let data_dir =
    Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR"
           ~doc:"Durable store directory: recover it on boot, write-ahead-log every ingest \
                 (acknowledged batches survive SIGKILL), checkpoint periodically")
  in
  let wal_sync =
    Arg.(value & opt (some string) None & info [ "wal-sync" ] ~docv:"MODE"
           ~doc:"WAL fsync discipline: always | group[:N] | none (default: \\$LH_WAL_SYNC if \
                 set, else group:8)")
  in
  let checkpoint_every =
    Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Checkpoint the catalog and reset the WAL every N durable ingests (default: \
                 \\$LH_CHECKPOINT_EVERY if set, else never)")
  in
  Cmd.v
    (Cmd.info "lhserve"
       ~doc:"Line-protocol query server with snapshot-isolated epoch reads")
    Term.(const serve $ tables $ sep $ domains $ max_sessions $ queue_depth $ data_dir
          $ wal_sync $ checkpoint_every)

let () = exit (Cmd.eval' cmd)
