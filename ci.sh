#!/bin/sh
# CI entry point: build, run the test suites (sequential and parallel
# legs), then the telemetry smoke test (one query per experiment family
# with telemetry enabled; fails if any counter is absent or never
# incremented — see bench/main.ml).
set -eu

dune build
dune runtest
# Second leg: every engine default switches to 4 domains, so the whole
# suite re-runs on the parallel ingest/build/execute paths. test/dune
# declares (deps (env_var LH_DOMAINS)) so this is never a cache hit.
LH_DOMAINS=4 dune runtest
dune exec bench/main.exe -- --smoke
# lhserve pipe smoke: drive the line-protocol server end to end and diff
# the exact transcript — a pinned session keeps answering 4 from the
# retired epoch while the post-ingest epoch answers 10 (snapshot
# isolation), prepared exec binds $1, and a bad command yields a typed
# protocol error instead of killing the server.
lhserve_out=$(printf 'open\ningest t k:int:key,v:float\n0,1.5\n1,2.5\n.\nquery 0 select sum(v) as s from t\npin 0\ningest t k:int:key,v:float\n0,10\n.\nquery 0 select sum(v) as s from t\nepochs\nunpin 0\nquery 0 select sum(v) as s from t\nprepare 0 select sum(v) as s from t where k >= $1\nexec 1 0\nbogus\nclose 0\nstats\nquit\n' \
  | dune exec bin/lhserve.exe 2>/dev/null)
lhserve_want='ok session 0
ok epoch 1
ok epoch 1 rows 1
4
ok epoch 1
ok epoch 2
ok epoch 1 rows 1
4
ok epochs 2
2 0 live
1 1 retired
ok
ok epoch 2 rows 1
10
ok stmt 1
ok epoch 2 rows 1
10
error protocol: unknown command "bogus"
ok
ok sessions=0 inflight=0 epochs=1 current=2
ok bye'
if [ "$lhserve_out" != "$lhserve_want" ]; then
  echo "ci FAIL: lhserve transcript mismatch" >&2
  printf 'got:\n%s\n\nwant:\n%s\n' "$lhserve_out" "$lhserve_want" >&2
  exit 1
fi
echo "lhserve pipe smoke ok"
# Durable lhserve smoke: two server runs over one --data-dir. Run 1
# ingests three epochs (checkpoint after the second, so recovery takes
# the checkpoint + a one-batch WAL suffix) and exits via the graceful
# "shutdown" verb; run 2 recovers the directory and must answer the
# last acknowledged state before any new ingest. stdout is diffed
# exactly; recovery chatter goes to stderr.
lh_data=$(mktemp -d)
durable_out1=$(printf 'open\ningest t k:int:key,v:float\n0,1.5\n1,2.5\n.\ningest t k:int:key,v:float\n0,4\n1,6\n.\ningest t k:int:key,v:float\n0,7\n1,3\n.\nquery 0 select sum(v) as s from t\nshutdown\n' \
  | dune exec bin/lhserve.exe -- --data-dir "$lh_data" --wal-sync always --checkpoint-every 2 2>/dev/null)
durable_want1='ok session 0
ok epoch 1
ok epoch 2
ok epoch 3
ok epoch 3 rows 1
10
ok bye'
durable_out2=$(printf 'open\nquery 0 select sum(v) as s from t\nquit\n' \
  | dune exec bin/lhserve.exe -- --data-dir "$lh_data" 2>/dev/null)
durable_want2='ok session 0
ok epoch 2 rows 1
10
ok bye'
rm -rf "$lh_data"
if [ "$durable_out1" != "$durable_want1" ] || [ "$durable_out2" != "$durable_want2" ]; then
  echo "ci FAIL: durable lhserve transcript mismatch" >&2
  printf 'run1 got:\n%s\n\nrun1 want:\n%s\n\nrun2 got:\n%s\n\nrun2 want:\n%s\n' \
    "$durable_out1" "$durable_want1" "$durable_out2" "$durable_want2" >&2
  exit 1
fi
echo "lhserve durable restart smoke ok"
# Differential fuzzing leg: a pinned seed so CI is deterministic; raise
# LH_FUZZ_COUNT locally for a longer hunt. Exits non-zero on any
# discrepancy between the engine configurations, the pairwise baselines
# and the brute-force oracle (see bin/lhfuzz.ml and DESIGN.md).
dune exec bin/lhfuzz.exe -- --seed 42 --count "${LH_FUZZ_COUNT:-1000}" --quiet
# Semiring leg: the generator also draws MIN_PLUS / REACHES / agg('name')
# aggregates (argument shapes matched to each semiring's decomposition
# class), so the generalized fold kernels, the count-only-soundness
# gating and the streaming ⊕-repetition path are all differentially
# checked against the oracle's hardcoded (min,+)/(∨,∧) semantics.
dune exec bin/lhfuzz.exe -- --semiring --seed 42 --count "${LH_FUZZ_COUNT:-1000}" --quiet
# Layout-stress leg: the dataset gains three relations engineered to pin
# the set-kernel layout regimes (dense bitset roots, all-uint over a wide
# domain, dense-over-sparse) with leaf-unit tries, so generated joins
# exercise the count-only and streaming WCOJ leaves against the
# engine-generic-leaf evaluator and the oracle (see lib/qgen/dataset.ml).
dune exec bin/lhfuzz.exe -- --layout-stress --seed 42 --count "${LH_FUZZ_COUNT:-1000}" --quiet
# Same seed with the plan cache disabled: every query replans from
# scratch, so a cache-keying or invalidation bug that the cached leg
# masks (stale plan reused across configs) shows up as a discrepancy.
LH_PLAN_CACHE=0 dune exec bin/lhfuzz.exe -- --seed 42 --count "${LH_FUZZ_COUNT:-1000}" --quiet
# Concurrent-sessions leg: reader domains issue generated ad-hoc and
# prepared queries through the epoch-pinned query service while a writer
# publishes new epochs mid-run; every query must be bit-identical to a
# sequential replay against the epoch it pinned (snapshot-consistency
# oracle; see lib/serve and lib/qgen/concurrent.ml). Run under both
# domain settings so view queries race parallel ingest-side builds too.
dune exec bin/lhfuzz.exe -- --concurrent --seed 42 --count 30 --domains 4 --ingests 4 --quiet
LH_DOMAINS=4 dune exec bin/lhfuzz.exe -- --concurrent --seed 42 --count 30 --domains 4 --ingests 4 --quiet
# Fault-injection legs: for every registered fault site, arm it (generic,
# timeout and OOM kinds), drive a workload into it, and require a typed
# error plus a bit-identical re-query on the same engine (crash-only
# recovery; see lib/fault and lib/qgen/crashtest.ml). LH_FAULT_COUNT
# bounds the per-site search for a reaching query. The LH_DOMAINS=4 leg
# additionally covers the pool worker capture/re-park path (pool.chunk is
# unreachable at domains=1 and excused there).
dune exec bin/lhfuzz.exe -- --inject-fault --seed 42 --attempts "${LH_FAULT_COUNT:-40}" --quiet
LH_DOMAINS=4 dune exec bin/lhfuzz.exe -- --inject-fault --seed 42 --attempts "${LH_FAULT_COUNT:-40}" --quiet
# Kill-and-restart recovery leg: spawn real lhserve children, SIGKILL
# them mid-ingest at WAL/checkpoint/manifest fault sites (including
# torn-write variants and kills during recovery itself), restart on the
# same --data-dir and require every acknowledged batch to be
# query-visible and bit-identical to a sequential oracle — unacked
# batches may be absent or complete, never partial. LH_KILL_COUNT
# scales the batches per scenario (default 6); pinned seed for CI.
dune exec bin/lhfuzz.exe -- --kill-restart --seed 42 --quiet
# Bench-baseline regression gate (see BENCH_10.json / EXPERIMENTS.md).
# Deterministic legs first: the baseline must compare clean against
# itself, and the gate must actually fire on a synthetic 3x slowdown.
dune exec bench/main.exe -- --compare BENCH_10.json --compare-with BENCH_10.json
if dune exec bench/main.exe -- --compare BENCH_10.json --compare-with BENCH_10.json --compare-slowdown 3 > /dev/null; then
  echo "ci FAIL: --compare accepted a 3x slowdown" >&2
  exit 1
fi
# Live leg: re-run the baseline's experiment subset (now including the
# service-concurrency, set-layout kernel, semiring graph-iteration and
# durable ingest/recovery cells) on this machine and compare. Warn-only —
# shared CI runners are too noisy for a hard wall-clock gate; the
# comparison text still lands in the CI log.
if dune exec bench/main.exe -- fig5a fig5c fig6 table4 repeated concurrency layouts graph durability --sf 0.01 --runs 3 \
     --json /tmp/lh_bench_ci.json --compare BENCH_10.json > /tmp/lh_bench_ci.log 2>&1; then
  tail -n 1 /tmp/lh_bench_ci.log
else
  echo "ci warn: bench regressed vs BENCH_10.json (soft gate):" >&2
  grep -E '^(REGRESSION|baseline compare)' /tmp/lh_bench_ci.log >&2 || tail -n 20 /tmp/lh_bench_ci.log >&2
fi
