#!/bin/sh
# CI entry point: build, run the test suites, then the telemetry smoke
# test (one query per experiment family with telemetry enabled; fails if
# any counter is absent or never incremented — see bench/main.ml).
set -eu

dune build
dune runtest
dune exec bench/main.exe -- --smoke
