#!/bin/sh
# CI entry point: build, run the test suites (sequential and parallel
# legs), then the telemetry smoke test (one query per experiment family
# with telemetry enabled; fails if any counter is absent or never
# incremented — see bench/main.ml).
set -eu

dune build
dune runtest
# Second leg: every engine default switches to 4 domains, so the whole
# suite re-runs on the parallel ingest/build/execute paths. test/dune
# declares (deps (env_var LH_DOMAINS)) so this is never a cache hit.
LH_DOMAINS=4 dune runtest
dune exec bench/main.exe -- --smoke
# Differential fuzzing leg: a pinned seed so CI is deterministic; raise
# LH_FUZZ_COUNT locally for a longer hunt. Exits non-zero on any
# discrepancy between the engine configurations, the pairwise baselines
# and the brute-force oracle (see bin/lhfuzz.ml and DESIGN.md).
dune exec bin/lhfuzz.exe -- --seed 42 --count "${LH_FUZZ_COUNT:-1000}" --quiet
# Same seed with the plan cache disabled: every query replans from
# scratch, so a cache-keying or invalidation bug that the cached leg
# masks (stale plan reused across configs) shows up as a discrepancy.
LH_PLAN_CACHE=0 dune exec bin/lhfuzz.exe -- --seed 42 --count "${LH_FUZZ_COUNT:-1000}" --quiet
# Fault-injection legs: for every registered fault site, arm it (generic,
# timeout and OOM kinds), drive a workload into it, and require a typed
# error plus a bit-identical re-query on the same engine (crash-only
# recovery; see lib/fault and lib/qgen/crashtest.ml). LH_FAULT_COUNT
# bounds the per-site search for a reaching query. The LH_DOMAINS=4 leg
# additionally covers the pool worker capture/re-park path (pool.chunk is
# unreachable at domains=1 and excused there).
dune exec bin/lhfuzz.exe -- --inject-fault --seed 42 --attempts "${LH_FAULT_COUNT:-40}" --quiet
LH_DOMAINS=4 dune exec bin/lhfuzz.exe -- --inject-fault --seed 42 --attempts "${LH_FAULT_COUNT:-40}" --quiet
