module Dense = Lh_blas.Dense
module Logreg = Lh_ml.Logreg
module Encoder = Lh_ml.Encoder

let rng = Lh_util.Prng.create 2024

let test_sigmoid () =
  Alcotest.(check (float 1e-9)) "zero" 0.5 (Logreg.sigmoid 0.0);
  Alcotest.(check bool) "monotone" true (Logreg.sigmoid 1.0 > Logreg.sigmoid (-1.0));
  Alcotest.(check bool) "saturates stably" true
    (Logreg.sigmoid (-1000.0) >= 0.0 && Logreg.sigmoid 1000.0 <= 1.0)

(* Finite-difference check of the analytic gradient. *)
let test_gradient_finite_difference () =
  let n = 40 and k = 4 in
  let x = Dense.init ~rows:n ~cols:k (fun _ _ -> Lh_util.Prng.float rng 2.0 -. 1.0) in
  let y = Array.init n (fun _ -> if Lh_util.Prng.bool rng then 1.0 else 0.0) in
  let w = Array.init k (fun _ -> Lh_util.Prng.float rng 0.5) in
  let g = Logreg.gradient ~weights:w ~x ~y in
  let eps = 1e-5 in
  for c = 0 to k - 1 do
    let bump delta =
      let w' = Array.copy w in
      w'.(c) <- w'.(c) +. delta;
      Logreg.loss { Logreg.weights = w' } ~x ~y
    in
    let fd = (bump eps -. bump (-.eps)) /. (2.0 *. eps) in
    if Float.abs (fd -. g.(c)) > 1e-4 then
      Alcotest.failf "gradient mismatch at %d: fd=%f analytic=%f" c fd g.(c)
  done

let test_training_reduces_loss () =
  let n = 200 and k = 3 in
  let x = Dense.init ~rows:n ~cols:k (fun _ c -> if c = 0 then 1.0 else Lh_util.Prng.float rng 2.0 -. 1.0) in
  let y = Array.init n (fun r -> if Dense.get x r 1 +. Dense.get x r 2 > 0.0 then 1.0 else 0.0) in
  let l0 = Logreg.loss { Logreg.weights = Array.make k 0.0 } ~x ~y in
  let m5 = Logreg.train ~x ~y ~iterations:5 () in
  let m50 = Logreg.train ~x ~y ~iterations:50 () in
  Alcotest.(check bool) "5 iters improve" true (Logreg.loss m5 ~x ~y < l0);
  Alcotest.(check bool) "50 iters improve further" true (Logreg.loss m50 ~x ~y < Logreg.loss m5 ~x ~y)

let test_separable_accuracy () =
  let n = 400 in
  let x = Dense.init ~rows:n ~cols:2 (fun _ c -> if c = 0 then 1.0 else Lh_util.Prng.float rng 4.0 -. 2.0) in
  let y = Array.init n (fun r -> if Dense.get x r 1 > 0.0 then 1.0 else 0.0) in
  let m = Logreg.train ~x ~y ~iterations:200 ~learning_rate:0.5 () in
  Alcotest.(check bool) "accuracy > 0.95" true (Logreg.accuracy m ~x ~y > 0.95)

(* Convergence on a linearly separable toy set with a clear margin: the
   loss must decrease monotonically along the iteration schedule, end
   near zero, and the final model must classify perfectly. *)
let test_logreg_convergence () =
  let rng = Lh_util.Prng.create 77 in
  let n = 200 in
  let x =
    Dense.init ~rows:n ~cols:3 (fun r c ->
        match c with
        | 0 -> 1.0
        | _ ->
            let v = Lh_util.Prng.float rng 2.0 -. 1.0 in
            (* push points away from the separator x1 + x2 = 0 *)
            let sign = if r land 1 = 0 then 1.0 else -1.0 in
            v +. (sign *. 1.5))
  in
  let y = Array.init n (fun r -> if r land 1 = 0 then 1.0 else 0.0) in
  let losses =
    List.map
      (fun iters -> Logreg.loss (Logreg.train ~x ~y ~iterations:iters ~learning_rate:0.5 ()) ~x ~y)
      [ 5; 20; 80; 320 ]
  in
  let rec monotone = function
    | a :: (b :: _ as tl) -> a > b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "loss decreases with iterations" true (monotone losses);
  let final = List.nth losses 3 in
  Alcotest.(check bool) (Printf.sprintf "final loss %.4f < 0.1" final) true (final < 0.1);
  let m = Logreg.train ~x ~y ~iterations:320 ~learning_rate:0.5 () in
  Alcotest.(check (float 1e-9)) "separable set classified perfectly" 1.0
    (Logreg.accuracy m ~x ~y)

let test_encoder_shapes () =
  let dict = Lh_storage.Dict.create () in
  let voters, _ = Lh_datagen.Voter.generate ~dict ~nvoters:500 ~nprecincts:10 () in
  let enc = Encoder.encode ~table:voters ~numeric:[ "v_age"; "v_income" ] ~categorical:[ "v_gender"; "v_party" ] in
  (* bias + 2 numeric + 2 genders + 5 parties *)
  Alcotest.(check int) "feature count" 10 enc.Encoder.matrix.Dense.cols;
  Alcotest.(check int) "rows" 500 enc.Encoder.matrix.Dense.rows;
  Alcotest.(check int) "names" 10 (Array.length enc.Encoder.feature_names);
  (* one-hot: exactly one gender and one party column set per row *)
  for r = 0 to 499 do
    let ones cols = List.fold_left (fun acc c -> acc +. Dense.get enc.Encoder.matrix r c) 0.0 cols in
    Alcotest.(check (float 1e-9)) "gender one-hot" 1.0 (ones [ 3; 4 ]);
    Alcotest.(check (float 1e-9)) "party one-hot" 1.0 (ones [ 5; 6; 7; 8; 9 ])
  done

let test_encoder_standardizes () =
  let dict = Lh_storage.Dict.create () in
  let voters, _ = Lh_datagen.Voter.generate ~dict ~nvoters:2000 ~nprecincts:10 () in
  let enc = Encoder.encode ~table:voters ~numeric:[ "v_age" ] ~categorical:[] in
  let n = enc.Encoder.matrix.Dense.rows in
  let mean = ref 0.0 and sq = ref 0.0 in
  for r = 0 to n - 1 do
    let v = Dense.get enc.Encoder.matrix r 1 in
    mean := !mean +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !mean /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 1e-9);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 1e-6)

(* Round-trip: each row's hot one-hot column must decode — via its
   feature name, "col=value" — back to the category string actually
   stored in the table. *)
let test_encoder_onehot_roundtrip () =
  let dict = Lh_storage.Dict.create () in
  let voters, _ = Lh_datagen.Voter.generate ~dict ~nvoters:300 ~nprecincts:8 () in
  let enc = Encoder.encode ~table:voters ~numeric:[] ~categorical:[ "v_party" ] in
  let party = Lh_storage.Schema.find_exn voters.Lh_storage.Table.schema "v_party" in
  for r = 0 to voters.Lh_storage.Table.nrows - 1 do
    let hot = ref [] in
    for c = 1 to enc.Encoder.matrix.Dense.cols - 1 do
      if Dense.get enc.Encoder.matrix r c = 1.0 then hot := c :: !hot
    done;
    match !hot with
    | [ c ] -> (
        match Lh_storage.Table.value voters ~row:r ~col:party with
        | Lh_storage.Dtype.VString s ->
            Alcotest.(check string)
              (Printf.sprintf "row %d decodes" r)
              ("v_party=" ^ s) enc.Encoder.feature_names.(c)
        | _ -> Alcotest.fail "v_party is not a string column")
    | hs -> Alcotest.failf "row %d has %d hot columns" r (List.length hs)
  done

(* Round-trip: de-standardizing with the column's own mean and sd must
   recover every raw numeric value exactly (up to float tolerance). *)
let test_encoder_destandardize_roundtrip () =
  let dict = Lh_storage.Dict.create () in
  let voters, _ = Lh_datagen.Voter.generate ~dict ~nvoters:400 ~nprecincts:8 () in
  let enc = Encoder.encode ~table:voters ~numeric:[ "v_income" ] ~categorical:[] in
  Alcotest.(check string) "numeric feature named" "v_income" enc.Encoder.feature_names.(1);
  let col = Lh_storage.Schema.find_exn voters.Lh_storage.Table.schema "v_income" in
  let n = voters.Lh_storage.Table.nrows in
  let mean = ref 0.0 and sq = ref 0.0 in
  for r = 0 to n - 1 do
    let v = Lh_storage.Table.number voters col r in
    mean := !mean +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !mean /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  let sd = if var <= 1e-12 then 1.0 else sqrt var in
  for r = 0 to n - 1 do
    let raw = Lh_storage.Table.number voters col r in
    let recovered = (Dense.get enc.Encoder.matrix r 1 *. sd) +. mean in
    if Float.abs (recovered -. raw) > 1e-6 *. (1.0 +. Float.abs raw) then
      Alcotest.failf "row %d: de-standardized %f <> raw %f" r recovered raw
  done

let test_voter_pipeline_learns () =
  (* the full §VII pipeline at small scale: join is identity here; encode +
     train and expect better than chance *)
  let dict = Lh_storage.Dict.create () in
  let voters, _ = Lh_datagen.Voter.generate ~dict ~nvoters:3000 ~nprecincts:30 () in
  let enc =
    Encoder.encode ~table:voters ~numeric:[ "v_age"; "v_income" ] ~categorical:[ "v_party" ]
  in
  let y = Encoder.labels ~table:voters ~column:"v_voted" in
  let base = Array.fold_left ( +. ) 0.0 y /. float_of_int (Array.length y) in
  let base_acc = Float.max base (1.0 -. base) in
  let m = Logreg.train ~x:enc.Encoder.matrix ~y ~iterations:100 ~learning_rate:0.5 () in
  let acc = Logreg.accuracy m ~x:enc.Encoder.matrix ~y in
  Alcotest.(check bool)
    (Printf.sprintf "acc %.3f > baseline %.3f" acc base_acc)
    true (acc > base_acc +. 0.02)

let test_labels_from_int_column () =
  let dict = Lh_storage.Dict.create () in
  let voters, _ = Lh_datagen.Voter.generate ~dict ~nvoters:100 ~nprecincts:5 () in
  let y = Encoder.labels ~table:voters ~column:"v_voted" in
  Alcotest.(check bool) "binary" true (Array.for_all (fun v -> v = 0.0 || v = 1.0) y)

let () =
  Alcotest.run "lh_ml"
    [
      ( "logreg",
        [
          Alcotest.test_case "sigmoid" `Quick test_sigmoid;
          Alcotest.test_case "gradient finite-difference" `Quick test_gradient_finite_difference;
          Alcotest.test_case "training reduces loss" `Quick test_training_reduces_loss;
          Alcotest.test_case "separable accuracy" `Quick test_separable_accuracy;
          Alcotest.test_case "convergence on separable set" `Quick test_logreg_convergence;
        ] );
      ( "encoder",
        [
          Alcotest.test_case "shapes + one-hot" `Quick test_encoder_shapes;
          Alcotest.test_case "standardization" `Quick test_encoder_standardizes;
          Alcotest.test_case "one-hot round-trip" `Quick test_encoder_onehot_roundtrip;
          Alcotest.test_case "de-standardize round-trip" `Quick test_encoder_destandardize_roundtrip;
          Alcotest.test_case "labels" `Quick test_labels_from_int_column;
        ] );
      ("pipeline", [ Alcotest.test_case "voter pipeline learns" `Quick test_voter_pipeline_learns ]);
    ]
