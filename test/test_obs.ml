(* Telemetry subsystem tests: counter/gauge semantics, span nesting,
   session reports, the trie-cache hit/miss lifecycle across repeated
   engine queries, and JSON / Chrome-trace round-trips through the
   in-repo parser. *)

module L = Levelheaded
module Obs = Lh_obs.Obs
module Report = Lh_obs.Report
module Json = Lh_obs.Json
module Table = Lh_storage.Table
module Dtype = Lh_storage.Dtype

let cval name (r : Report.t) = Option.value (List.assoc_opt name r.Report.counters) ~default:0

(* ---- counters and gauges ---- *)

let test_counter_disabled_noop () =
  let c = Obs.counter "test.disabled" in
  Obs.set_enabled false;
  let before = Obs.value c in
  Obs.incr c;
  Obs.add c 10;
  Alcotest.(check int) "no-op when disabled" before (Obs.value c)

let test_counter_monotone () =
  let c = Obs.counter "test.monotone" in
  Obs.with_enabled true (fun () ->
      let v0 = Obs.value c in
      Obs.incr c;
      Alcotest.(check int) "incr" (v0 + 1) (Obs.value c);
      Obs.add c 4;
      Alcotest.(check int) "add" (v0 + 5) (Obs.value c))

let test_counter_idempotent_register () =
  let a = Obs.counter "test.same" and b = Obs.counter "test.same" in
  Obs.with_enabled true (fun () ->
      let v0 = Obs.value a in
      Obs.incr b;
      Alcotest.(check int) "one cell" (v0 + 1) (Obs.value a))

let test_gauge_set_max () =
  let g = Obs.gauge "test.gauge" in
  Obs.with_enabled true (fun () ->
      Obs.set g 7;
      Obs.set_max g 3;
      Alcotest.(check int) "set_max keeps larger" 7 (Obs.value g);
      Obs.set_max g 11;
      Alcotest.(check int) "set_max raises" 11 (Obs.value g));
  Alcotest.(check bool) "is_gauge" true (Obs.is_gauge "test.gauge");
  Alcotest.(check bool) "counter is not" false (Obs.is_gauge "test.monotone")

let test_diff_semantics () =
  let c = Obs.counter "test.diffc" and g = Obs.gauge "test.diffg" in
  Obs.with_enabled true (fun () ->
      Obs.add c 2;
      Obs.set g 5;
      let before = Obs.snapshot () in
      Obs.add c 3;
      Obs.set g 4;
      let after = Obs.snapshot () in
      let d = Obs.diff ~before ~after in
      Alcotest.(check int) "counter delta" 3 (List.assoc "test.diffc" d);
      Alcotest.(check int) "gauge end value" 4 (List.assoc "test.diffg" d))

let test_with_enabled_restores () =
  Obs.set_enabled false;
  (try Obs.with_enabled true (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "restored after raise" false (Obs.is_enabled ())

(* ---- spans ---- *)

let test_span_nesting () =
  Obs.with_enabled true (fun () ->
      Obs.clear_spans ();
      Obs.span "a" (fun () ->
          Obs.span ~args:[ ("k", "v") ] "b" (fun () -> ());
          Obs.span "c" (fun () -> ()));
      let ss = Obs.spans () in
      Alcotest.(check (list string)) "start order" [ "a"; "b"; "c" ]
        (List.map (fun s -> s.Obs.sname) ss);
      Alcotest.(check (list int)) "depths" [ 0; 1; 1 ] (List.map (fun s -> s.Obs.sdepth) ss);
      let a = List.nth ss 0 and b = List.nth ss 1 in
      Alcotest.(check bool) "b inside a" true
        (b.Obs.sstart >= a.Obs.sstart && b.Obs.sdur <= a.Obs.sdur);
      Alcotest.(check (list (pair string string))) "args" [ ("k", "v") ] b.Obs.sargs)

let test_span_exception_safe () =
  Obs.with_enabled true (fun () ->
      Obs.clear_spans ();
      (try Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> failwith "boom"))
       with Failure _ -> ());
      let ss = Obs.spans () in
      Alcotest.(check (list string)) "both recorded" [ "outer"; "inner" ]
        (List.map (fun s -> s.Obs.sname) ss);
      (* depth state must be restored: a fresh root span is depth 0 again *)
      Obs.span "again" (fun () -> ());
      let last = List.nth (Obs.spans ()) 2 in
      Alcotest.(check int) "depth restored" 0 last.Obs.sdepth)

let test_span_disabled_passthrough () =
  Obs.set_enabled false;
  Obs.clear_spans ();
  Alcotest.(check int) "result" 41 (Obs.span "nope" (fun () -> 41));
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.spans ()))

(* ---- session reports ---- *)

let test_session_deltas () =
  let c = Obs.counter "test.session" in
  let session () = Report.with_session (fun () -> Obs.incr c; Obs.add c 4) in
  let (), r1 = session () in
  let (), r2 = session () in
  Alcotest.(check int) "first delta" 5 (cval "test.session" r1);
  Alcotest.(check int) "second delta (not cumulative)" 5 (cval "test.session" r2);
  Alcotest.(check bool) "total positive" true (r1.Report.total_s >= 0.0)

(* ---- engine integration: trie cache lifecycle + stale-cache fix ---- *)

let matrix_rows vals = List.map (fun (i, j, v) -> [ Dtype.VInt i; Dtype.VInt j; Dtype.VFloat v ]) vals

let engine_with vals =
  let e = L.Engine.create () in
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows vals));
  e

let smm =
  "select m1.row, m2.col, sum(m1.v * m2.v) as v from m m1, m m2 where m1.col = m2.row group by \
   m1.row, m2.col"

let test_trie_cache_hit_miss () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0); (5, 0, 1.0) ] in
  let run () = ignore (L.Engine.query e smm) in
  let (), cold = Report.with_session run in
  let (), hot = Report.with_session run in
  Alcotest.(check bool) "cold run misses" true (cval "trie_cache.miss" cold >= 1);
  Alcotest.(check bool) "cold run builds tries" true (cval "trie.built" cold >= 1);
  Alcotest.(check bool) "hot run hits" true (cval "trie_cache.hit" hot >= 1);
  Alcotest.(check int) "hot run never misses" 0 (cval "trie_cache.miss" hot);
  (* re-registering the table must invalidate: back to a cold run *)
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows [ (0, 1, 2.0); (1, 2, 3.0) ]));
  let (), recold = Report.with_session run in
  Alcotest.(check bool) "miss again after register_rows" true (cval "trie_cache.miss" recold >= 1)

let test_register_rows_invalidates () =
  (* the stale-cache regression: register_rows used to leave the trie
     cache intact, so a hot query kept answering from the old table *)
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0) ] in
  Helpers.check_rows_equal "initial join"
    [ [ Dtype.VInt 0; Dtype.VInt 2; Dtype.VFloat 6.0 ] ]
    (Table.to_rows (L.Engine.query e smm));
  ignore
    (L.Engine.register_rows e ~name:"m" ~schema:Lh_datagen.Matrices.matrix_schema
       (matrix_rows [ (5, 6, 1.0) ]));
  Alcotest.(check int) "replacement visible" 0 (L.Engine.query e smm).Table.nrows

let test_analyze_phases_and_rows () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0); (2, 0, 4.0) ] in
  let result, ex, r = L.Engine.query_analyze e smm in
  Alcotest.(check bool) "wcoj path" true (ex.L.Engine.epath = L.Engine.Wcoj_path);
  Alcotest.(check int) "rows.emitted matches result" result.Table.nrows (cval "rows.emitted" r);
  let phases = Report.phases r in
  let names = List.map fst phases in
  Alcotest.(check bool) "has parse phase" true (List.mem "parse" names);
  Alcotest.(check bool) "has finalize phase" true (List.mem "finalize" names);
  let accounted = List.fold_left (fun a (_, d) -> a +. d) 0.0 phases in
  Alcotest.(check bool) "phases within total" true (accounted <= r.Report.total_s *. 1.05);
  Alcotest.(check bool) "phases non-trivial" true (accounted > 0.0);
  (* the text report renders without raising and mentions the cache *)
  let text = Report.to_text r in
  Alcotest.(check bool) "text has phase table" true
    (String.length text > 0 && List.mem "parse" names)

(* ---- JSON round-trips ---- *)

let test_json_parse_basics () =
  Alcotest.(check bool) "scalars" true
    (Json.parse "[1, -2.5, \"a\\nb\", true, false, null]"
    = Json.List
        [ Json.Int 1; Json.Float (-2.5); Json.String "a\nb"; Json.Bool true; Json.Bool false; Json.Null ]);
  Alcotest.(check bool) "nested object" true
    (Json.parse "{\"k\": {\"n\": -3}}" = Json.Obj [ ("k", Json.Obj [ ("n", Json.Int (-3)) ]) ]);
  Alcotest.(check bool) "unicode escape" true (Json.parse "\"\\u0041\"" = Json.String "A")

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected Parse_error on %S" s)
    [ "{"; "1 2"; "[1,]"; "nul"; "\"unterminated" ]

let test_json_roundtrip_tree () =
  let t =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 0.1);
        ("whole", Json.Float 2.0);
        ("s", Json.String "quote\" slash\\ newline\n tab\t π");
        ("l", Json.List [ Json.Bool true; Json.Null; Json.Int (-7) ]);
      ]
  in
  Alcotest.(check bool) "tree survives print+parse" true (Json.parse (Json.to_string t) = t)

let test_report_sinks_roundtrip () =
  let e = engine_with [ (0, 1, 2.0); (1, 2, 3.0) ] in
  let _, _, r = L.Engine.query_analyze e smm in
  let metrics = Report.metrics_json r in
  let reparsed = Json.parse (Json.to_string metrics) in
  Alcotest.(check bool) "metrics survive round-trip" true (reparsed = metrics);
  (match Json.member "total_seconds" reparsed with
  | Some v ->
      Alcotest.(check (float 1e-9)) "total preserved" r.Report.total_s
        (Option.get (Json.to_float v))
  | None -> Alcotest.fail "missing total_seconds");
  let trace = Report.chrome_trace r in
  let tre = Json.parse (Json.to_string trace) in
  Alcotest.(check bool) "trace survives round-trip" true (tre = trace);
  match Json.member "traceEvents" tre with
  | Some (Json.List evs) ->
      Alcotest.(check bool) "has events" true (List.length evs > 0);
      List.iter
        (fun ev ->
          match Json.member "ph" ev with
          | Some (Json.String ("X" | "C" | "M")) -> ()
          | _ -> Alcotest.fail "unexpected event phase")
        evs
  | _ -> Alcotest.fail "missing traceEvents"

let () =
  Alcotest.run "lh_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "disabled no-op" `Quick test_counter_disabled_noop;
          Alcotest.test_case "monotone incr/add" `Quick test_counter_monotone;
          Alcotest.test_case "idempotent register" `Quick test_counter_idempotent_register;
          Alcotest.test_case "gauge set/set_max" `Quick test_gauge_set_max;
          Alcotest.test_case "diff semantics" `Quick test_diff_semantics;
          Alcotest.test_case "with_enabled restores" `Quick test_with_enabled_restores;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting + ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "disabled passthrough" `Quick test_span_disabled_passthrough;
        ] );
      ( "sessions",
        [ Alcotest.test_case "counter deltas per session" `Quick test_session_deltas ] );
      ( "engine",
        [
          Alcotest.test_case "trie cache hit/miss lifecycle" `Quick test_trie_cache_hit_miss;
          Alcotest.test_case "register_rows invalidates caches" `Quick
            test_register_rows_invalidates;
          Alcotest.test_case "analyze phases + rows.emitted" `Quick test_analyze_phases_and_rows;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "tree round-trip" `Quick test_json_roundtrip_tree;
          Alcotest.test_case "report sinks round-trip" `Quick test_report_sinks_roundtrip;
        ] );
    ]
